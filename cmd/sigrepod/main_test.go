package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"iotsec/internal/sigrepo"
)

// buildSigrepod compiles the daemon once per test binary.
func buildSigrepod(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sigrepod")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon wraps one running sigrepod process, scanning its stdout.
type daemon struct {
	cmd  *exec.Cmd
	mu   sync.Mutex
	out  []string
	addr string
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{cmd: exec.Command(bin, args...)}
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = d.cmd.Stdout
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.out = append(d.out, line)
			if strings.Contains(line, "listening on ") {
				d.addr = strings.TrimSpace(strings.Split(
					strings.SplitN(line, "listening on ", 2)[1], " ")[0])
			}
			d.mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		_ = d.cmd.Process.Kill()
		_, _ = d.cmd.Process.Wait()
	})
	return d
}

func (d *daemon) waitAddr(t *testing.T) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		d.mu.Lock()
		addr := d.addr
		d.mu.Unlock()
		if addr != "" {
			return addr
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never reported a listen address; output:\n%s", d.dump())
	return ""
}

func (d *daemon) dump() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return strings.Join(d.out, "\n")
}

func (d *daemon) sawLine(substr string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, l := range d.out {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatalf("daemon did not exit on SIGTERM; output:\n%s", d.dump())
	}
}

// TestSigrepodRestartFromSnapshot is the operational smoke test for
// the resilience work: a real sigrepod process restores a snapshot
// (including per-SKU cursors), serves cursor replay to a client that
// subscribes with since=0, persists on SIGTERM, and restores again on
// the next start.
func TestSigrepodRestartFromSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildSigrepod(t)
	dir := t.TempDir()
	snap := filepath.Join(dir, "sigrepo.json")

	// Seed a snapshot with three cleared signatures from a trusted
	// publisher, using the same library the daemon links.
	seed := sigrepo.NewRepository("smoke-salt")
	pseudo := seed.Pseudonym("publisher")
	for i := 0; i < 20; i++ {
		seed.Reputation().RecordOutcome(pseudo, true)
	}
	for i := 1; i <= 3; i++ {
		rule := fmt.Sprintf(`block tcp any any -> any 80 (msg:"m%d"; content:"tok%d"; sid:%d;)`, i, i, i)
		if _, err := seed.Publish(context.Background(), "publisher", "sku-a", rule, "seed"); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.SaveFile(snap); err != nil {
		t.Fatal(err)
	}

	// First run: restore the snapshot, replay history to a client.
	d := startDaemon(t, bin, "-listen", "127.0.0.1:0", "-state", snap,
		"-salt", "smoke-salt", "-event-log", "64")
	addr := d.waitAddr(t)
	if !d.sawLine("restored 3 signatures") {
		t.Fatalf("daemon did not report snapshot restore; output:\n%s", d.dump())
	}

	c, err := sigrepo.DialClient(addr, "gw")
	if err != nil {
		t.Fatal(err)
	}
	var cmu sync.Mutex
	replayed := 0
	c.SetOnPush(func(p sigrepo.Push) {
		cmu.Lock()
		if p.Replay {
			replayed++
		}
		cmu.Unlock()
	})
	head, err := c.SubscribeSince("sku-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if head != 3 {
		t.Errorf("restored head cursor = %d, want 3", head)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cmu.Lock()
		n := replayed
		cmu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed %d of 3 after restart", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.Close()

	// SIGTERM persists; remove the seed to prove the daemon rewrote it.
	if err := os.Remove(snap); err != nil {
		t.Fatal(err)
	}
	d.stop(t)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("daemon did not persist snapshot on SIGTERM: %v\noutput:\n%s", err, d.dump())
	}

	// Second run restores the daemon-written snapshot.
	d2 := startDaemon(t, bin, "-listen", "127.0.0.1:0", "-state", snap, "-salt", "smoke-salt")
	d2.waitAddr(t)
	deadline = time.Now().Add(5 * time.Second)
	for !d2.sawLine("restored 3 signatures") {
		if time.Now().After(deadline) {
			t.Fatalf("second run did not restore; output:\n%s", d2.dump())
		}
		time.Sleep(10 * time.Millisecond)
	}
	d2.stop(t)
}
