package packet

import "fmt"

// Payload is an opaque application payload — the innermost layer of
// most packets.
type Payload struct {
	base
	Data []byte
}

// NewPayload wraps raw application bytes for serialization.
func NewPayload(data []byte) *Payload { return &Payload{Data: data} }

// LayerType implements Layer.
func (p *Payload) LayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements DecodingLayer.
func (p *Payload) DecodeFromBytes(data []byte) error {
	p.Data = data
	p.contents = data
	p.payload = nil
	return nil
}

// NextLayerType implements DecodingLayer.
func (p *Payload) NextLayerType() LayerType { return LayerTypeInvalid }

// SerializeTo implements SerializableLayer.
func (p *Payload) SerializeTo(b *SerializeBuffer) error {
	hdr, err := b.Prepend(len(p.Data))
	if err != nil {
		return err
	}
	copy(hdr, p.Data)
	return nil
}

// String summarizes the payload.
func (p *Payload) String() string { return fmt.Sprintf("Payload %d bytes", len(p.Data)) }
