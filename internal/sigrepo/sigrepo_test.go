package sigrepo

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

const testRule = `alert tcp any any -> any 80 (msg:"wemo backdoor"; content:"wemo-dbg"; sid:100;)`

func TestValidate(t *testing.T) {
	if err := Validate("sku1", testRule); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
	if err := Validate("", testRule); err == nil {
		t.Error("empty SKU accepted")
	}
	if err := Validate("sku1", "garbage rule"); err == nil {
		t.Error("garbage rule accepted")
	}
	// The block-everything denial-of-service is refused.
	if err := Validate("sku1", `block ip any any -> any any (msg:"oops"; sid:1;)`); err == nil {
		t.Error("block-everything rule accepted")
	}
}

func TestAnonymizerPseudonyms(t *testing.T) {
	a := NewAnonymizer("salt1")
	p1, p2 := a.Pseudonym("acme-corp"), a.Pseudonym("acme-corp")
	if p1 != p2 {
		t.Error("pseudonym not stable")
	}
	if a.Pseudonym("other-corp") == p1 {
		t.Error("distinct identities collide")
	}
	if NewAnonymizer("salt2").Pseudonym("acme-corp") == p1 {
		t.Error("pseudonym should depend on salt")
	}
	if strings.Contains(p1, "acme") {
		t.Error("pseudonym leaks identity")
	}
}

func TestAnonymizerScrubsInternalAddresses(t *testing.T) {
	a := NewAnonymizer("s")
	rule := `alert tcp 192.168.1.5 any -> 10.0.0.7/32 80 (msg:"x"; content:"y"; sid:1;)`
	scrubbed := a.ScrubRule(rule)
	if strings.Contains(scrubbed, "192.168") || strings.Contains(scrubbed, "10.0.0.7") {
		t.Errorf("internal addresses survive: %q", scrubbed)
	}
	// And the scrubbed rule must still parse.
	if err := Validate("sku", scrubbed); err != nil {
		t.Errorf("scrubbed rule invalid: %v (%q)", err, scrubbed)
	}
	desc := a.ScrubDescription("seen from 10.1.2.3 in our lab")
	if strings.Contains(desc, "10.1.2.3") {
		t.Errorf("description leaks address: %q", desc)
	}
}

func TestReputationDynamics(t *testing.T) {
	r := NewReputationSystem()
	if s := r.Score("newbie"); s != 0.3 {
		t.Errorf("initial score = %v", s)
	}
	for i := 0; i < 10; i++ {
		r.RecordOutcome("good", true)
	}
	for i := 0; i < 3; i++ {
		r.RecordOutcome("bad", false)
	}
	if r.Score("good") <= r.Score("newbie") || r.Score("bad") >= r.Score("newbie") {
		t.Errorf("ordering violated: good=%.2f newbie=%.2f bad=%.2f",
			r.Score("good"), r.Score("newbie"), r.Score("bad"))
	}
	if w := r.VoteWeight("bad"); w < 0.05 {
		t.Errorf("vote weight below floor: %v", w)
	}
}

func TestReputationBoundsProperty(t *testing.T) {
	f := func(outcomes []bool) bool {
		r := NewReputationSystem()
		for _, up := range outcomes {
			r.RecordOutcome("x", up)
		}
		s := r.Score("x")
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPublishQuarantineAndClearing(t *testing.T) {
	repo := NewRepository("salt")
	sig, err := repo.Publish(context.Background(), "contributor-a", "belkin-wemo", testRule, "backdoor traffic")
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Quarantined {
		t.Fatal("new-contributor signature should quarantine")
	}
	if got := repo.Fetch("belkin-wemo"); len(got) != 0 {
		t.Fatalf("quarantined signature visible: %v", got)
	}

	// Votes from three average-trust members clear it.
	var cleared []Signature
	repo.Subscribe("subscriber-z", "belkin-wemo", func(n Notification) {
		cleared = append(cleared, n.Signature)
	})
	for i, voter := range []string{"v1", "v2", "v3"} {
		if _, err := repo.Vote(context.Background(), voter, sig.ID, true); err != nil {
			t.Fatalf("vote %d: %v", i, err)
		}
	}
	if got := repo.Fetch("belkin-wemo"); len(got) != 1 {
		t.Fatalf("cleared signature not visible: %v", got)
	}
	if len(cleared) != 1 {
		t.Errorf("subscriber notified %d times, want 1", len(cleared))
	}
	// Contributor reputation rose.
	if repo.Reputation().Score(repo.Pseudonym("contributor-a")) <= 0.3 {
		t.Error("confirmed contribution did not raise reputation")
	}
}

func TestVoteGuards(t *testing.T) {
	repo := NewRepository("salt")
	sig, err := repo.Publish(context.Background(), "author", "sku1", testRule, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Vote(context.Background(), "author", sig.ID, true); !errors.Is(err, ErrDuplicateVote) {
		t.Errorf("self-vote: %v", err)
	}
	if _, err := repo.Vote(context.Background(), "v1", sig.ID, true); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Vote(context.Background(), "v1", sig.ID, true); !errors.Is(err, ErrDuplicateVote) {
		t.Errorf("double vote: %v", err)
	}
	if _, err := repo.Vote(context.Background(), "v1", "sig-999999", true); !errors.Is(err, ErrUnknownSignature) {
		t.Errorf("vote on ghost: %v", err)
	}
}

func TestDownvotesRetireSignatureAndBurnReputation(t *testing.T) {
	repo := NewRepository("salt")
	sig, err := repo.Publish(context.Background(), "spammer", "sku1", testRule, "bogus")
	if err != nil {
		t.Fatal(err)
	}
	before := repo.Reputation().Score(repo.Pseudonym("spammer"))
	for _, voter := range []string{"v1", "v2", "v3"} {
		if _, err := repo.Vote(context.Background(), voter, sig.ID, false); err != nil {
			// Once the score crosses the reject threshold the
			// signature is retired; later votes see it gone.
			if errors.Is(err, ErrUnknownSignature) {
				break
			}
			t.Fatal(err)
		}
	}
	total, _ := repo.Stats()
	if total != 0 {
		t.Errorf("refuted signature not retired: %d left", total)
	}
	after := repo.Reputation().Score(repo.Pseudonym("spammer"))
	if after >= before {
		t.Errorf("reputation did not burn: %.2f -> %.2f", before, after)
	}
}

func TestTrustedContributorSkipsQuarantine(t *testing.T) {
	repo := NewRepository("salt")
	pseudo := repo.Pseudonym("veteran")
	for i := 0; i < 30; i++ {
		repo.Reputation().RecordOutcome(pseudo, true)
	}
	sig, err := repo.Publish(context.Background(), "veteran", "sku1", testRule, "")
	if err != nil {
		t.Fatal(err)
	}
	if sig.Quarantined {
		t.Error("high-reputation submission quarantined")
	}
}

func TestContributorPriorityNotification(t *testing.T) {
	repo := NewRepository("salt")
	repo.PriorityLag = 50 * time.Millisecond

	// contributor-b has shared before; freeloader-c has not.
	if _, err := repo.Publish(context.Background(), "contributor-b", "other-sku", testRule, ""); err != nil {
		t.Fatal(err)
	}

	type arrival struct {
		who      string
		when     time.Time
		priority bool
	}
	var mu sync.Mutex
	var arrivals []arrival
	record := func(who string) Subscriber {
		return func(n Notification) {
			mu.Lock()
			arrivals = append(arrivals, arrival{who, time.Now(), n.Priority})
			mu.Unlock()
		}
	}
	repo.Subscribe("contributor-b", "belkin-wemo", record("contributor"))
	repo.Subscribe("freeloader-c", "belkin-wemo", record("freeloader"))

	sig, err := repo.Publish(context.Background(), "contributor-a", "belkin-wemo", testRule, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"v1", "v2", "v3"} {
		if _, err := repo.Vote(context.Background(), v, sig.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(150 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	var contribAt, freeAt time.Time
	for _, a := range arrivals {
		if a.who == "contributor" {
			contribAt = a.when
			if !a.priority {
				t.Error("contributor not flagged priority")
			}
		} else {
			freeAt = a.when
		}
	}
	if !contribAt.Before(freeAt) {
		t.Error("contributor did not hear first")
	}
	if lag := freeAt.Sub(contribAt); lag < 30*time.Millisecond {
		t.Errorf("priority lag = %v, want >= ~50ms", lag)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	repo := NewRepository("salt")
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	publisher, err := DialClient(addr, "org-a")
	if err != nil {
		t.Fatal(err)
	}
	defer publisher.Close()

	subscriber, err := DialClient(addr, "org-b")
	if err != nil {
		t.Fatal(err)
	}
	defer subscriber.Close()
	pushed := make(chan Signature, 4)
	subscriber.SetOnNotify(func(sig Signature, _ bool) { pushed <- sig })
	if err := subscriber.Subscribe("belkin-wemo"); err != nil {
		t.Fatal(err)
	}

	sig, err := publisher.Publish("belkin-wemo", testRule, "seen in the wild")
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Quarantined {
		t.Error("expected quarantine over the wire too")
	}
	// Three voters clear it.
	for i := 0; i < 3; i++ {
		voter, err := DialClient(addr, fmt.Sprintf("voter-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := voter.Vote(sig.ID, true); err != nil {
			t.Fatal(err)
		}
		voter.Close()
	}
	select {
	case got := <-pushed:
		if got.ID != sig.ID {
			t.Errorf("pushed %s, want %s", got.ID, sig.ID)
		}
		if strings.Contains(got.Contributor, "org-a") {
			t.Error("contributor identity leaked over the wire")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no push notification")
	}

	sigs, err := subscriber.Fetch("belkin-wemo")
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 1 {
		t.Errorf("fetched %d signatures", len(sigs))
	}
	skus, err := subscriber.SKUs()
	if err != nil {
		t.Fatal(err)
	}
	if len(skus) != 1 || skus[0] != "belkin-wemo" {
		t.Errorf("skus = %v", skus)
	}
	// Server rejects invalid publishes.
	if _, err := publisher.Publish("belkin-wemo", "nonsense", ""); err == nil {
		t.Error("invalid rule accepted over the wire")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	repo := NewRepository("salt")
	sig, err := repo.Publish(context.Background(), "org-a", "sku-1", testRule, "desc")
	if err != nil {
		t.Fatal(err)
	}
	// Clear it with votes so scores and reputations are non-trivial.
	for _, v := range []string{"v1", "v2", "v3"} {
		if _, err := repo.Vote(context.Background(), v, sig.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	quarantined, err := repo.Publish(context.Background(), "org-b", "sku-2", testRule, "pending")
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/repo.json"
	if err := repo.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	restored := NewRepository("salt")
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	// Cleared signature visible for its SKU.
	got := restored.Fetch("sku-1")
	if len(got) != 1 || got[0].ID != sig.ID || got[0].Quarantined {
		t.Fatalf("restored sku-1 = %+v", got)
	}
	// Quarantined one stays hidden but counted.
	if len(restored.Fetch("sku-2")) != 0 {
		t.Error("quarantined signature leaked after restore")
	}
	total, q := restored.Stats()
	if total != 2 || q != 1 {
		t.Errorf("stats = %d/%d", total, q)
	}
	// Reputation carried over: org-a gained from the confirmation.
	if restored.Reputation().Score(restored.Pseudonym("org-a")) <= 0.3 {
		t.Error("reputation lost across restore")
	}
	// Double-vote protection survives: v1 already voted on sig.
	if _, err := restored.Vote(context.Background(), "v1", sig.ID, true); !errors.Is(err, ErrDuplicateVote) {
		t.Errorf("vote dedup lost: %v", err)
	}
	// New IDs continue after the highest allocated one.
	newSig, err := restored.Publish(context.Background(), "org-c", "sku-3", testRule, "")
	if err != nil {
		t.Fatal(err)
	}
	if newSig.ID == sig.ID || newSig.ID == quarantined.ID {
		t.Errorf("ID collision after restore: %s", newSig.ID)
	}
}

func TestLoadFileMissingAndCorrupt(t *testing.T) {
	repo := NewRepository("s")
	if err := repo.LoadFile(t.TempDir() + "/nope.json"); err == nil {
		t.Error("missing file loaded")
	}
	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte("{nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := repo.LoadFile(bad); err == nil {
		t.Error("corrupt file loaded")
	}
}
