package mbox

import (
	"sync/atomic"

	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// Mbox is one deployed µmbox: a bump-in-the-wire node with a south
// port (toward the protected device) and a north port (toward the rest
// of the network). Frames entering south are FromDevice; frames
// entering north are ToDevice. The pipeline decides their fate.
type Mbox struct {
	name     string
	pipeline *Pipeline

	south *netsim.Port
	north *netsim.Port

	// protected, when set, scopes the pipeline to traffic involving
	// this address: on shared/flooded segments, foreign frames pass
	// through untouched (they are not this µmbox's job).
	protected    packet.IPv4Address
	hasProtected atomic.Bool

	forwarded atomic.Uint64
	dropped   atomic.Uint64
}

// NewMbox wraps a pipeline as a deployable node.
func NewMbox(name string, pipeline *Pipeline) *Mbox {
	return &Mbox{name: name, pipeline: pipeline}
}

// NodeName implements netsim.Node.
func (m *Mbox) NodeName() string { return m.name }

// Pipeline exposes the element chain for live reconfiguration.
func (m *Mbox) Pipeline() *Pipeline { return m.pipeline }

// SetProtectedIP scopes the pipeline to traffic to/from the given
// device address. Call before traffic flows.
func (m *Mbox) SetProtectedIP(ip packet.IPv4Address) {
	m.protected = ip
	m.hasProtected.Store(true)
}

// AttachInline creates the south and north ports on the network.
// Callers wire south toward the device's access port and north toward
// the switch/uplink.
func (m *Mbox) AttachInline(n *netsim.Network) (south, north *netsim.Port) {
	m.south = n.NewPort(m, 1)
	m.north = n.NewPort(m, 2)
	return m.south, m.north
}

// HandleFrame implements netsim.Node.
func (m *Mbox) HandleFrame(ingress *netsim.Port, frame netsim.Frame) {
	var dir Direction
	var egress, back *netsim.Port
	if ingress == m.south {
		dir = FromDevice
		egress, back = m.north, m.south
	} else {
		dir = ToDevice
		egress, back = m.south, m.north
	}
	// Both ports deliver concurrently; the pooled decoder's packet view
	// must not outlive this frame (pipeline elements do not retain it,
	// and a Reparse swaps in an eagerly decoded packet).
	dec := packet.GetDecoder()
	defer packet.PutDecoder(dec)
	decoded := dec.Decode(frame, packet.LayerTypeEthernet)
	// Scoping: foreign IPv4 traffic flooded onto this leg is not ours
	// to police — pass it through (the device's own stack discards
	// frames not addressed to it). ARP and non-IP frames always pass
	// through the pipeline-free path too unless they involve us.
	if m.hasProtected.Load() {
		if ip := decoded.IPv4(); ip != nil && ip.SrcIP != m.protected && ip.DstIP != m.protected {
			m.forwarded.Add(1)
			mForwarded.Inc()
			egress.Send(frame)
			return
		}
	}
	ctx := &Context{
		Frame:  frame,
		Packet: decoded,
		Dir:    dir,
		Inject: func(f []byte) { back.Send(f) },
	}
	switch m.pipeline.Process(ctx) {
	case Forward:
		m.forwarded.Add(1)
		mForwarded.Inc()
		egress.Send(ctx.Frame)
	case Drop:
		m.dropped.Add(1)
		mDropped.Inc()
	case Consumed:
		// The element already responded (or absorbed) the frame.
	}
}

// Counters reports forwarded/dropped totals.
func (m *Mbox) Counters() (forwarded, dropped uint64) {
	return m.forwarded.Load(), m.dropped.Load()
}

// InsertInline splices the µmbox into the link between a device-side
// port and a network-side port: the original link (if any) is ignored;
// callers normally build topology with the µmbox from the start or use
// the switch to steer traffic through it.
func InsertInline(n *netsim.Network, m *Mbox, deviceSide, networkSide *netsim.Port, opts netsim.LinkOptions) {
	south, north := m.AttachInline(n)
	n.Connect(deviceSide, south, opts)
	n.Connect(north, networkSide, opts)
}
