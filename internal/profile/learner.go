package profile

import (
	"math"
	"sync"
	"time"

	"iotsec/internal/learn"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// Identity binds a device name to its SKU and its registered network
// identity. Enforcement privilege follows this identity — the MAC the
// deployment admitted and the address it registered — never the
// address a frame happens to carry.
type Identity struct {
	Name string
	SKU  string
	MAC  packet.MACAddress
	IP   packet.IPv4Address
}

// Learner buffers frames from the training window and distills them
// into per-SKU profiles. It is fed from a netsim tap (via the Engine)
// and is safe for concurrent use.
type Learner struct {
	mu     sync.Mutex
	frames []netsim.CapturedFrame
	// Limit bounds retained frames (default 65536, oldest dropped).
	Limit int
	// RateHeadroom multiplies the observed peak device rate into the
	// profile envelope (default 4).
	RateHeadroom float64
	// MinRate floors the learned envelope so short quiet windows do
	// not produce hair-trigger rate limits (default 50 frames/s).
	MinRate float64
}

// NewLearner returns an empty learner with default bounds.
func NewLearner() *Learner {
	return &Learner{Limit: 65536, RateHeadroom: 4, MinRate: 50}
}

// Observe records one frame hop. The engine calls this for every tap
// delivery while a training window is open.
func (l *Learner) Observe(srcNode, dstNode string, data netsim.Frame, when time.Time) {
	cp := make(netsim.Frame, len(data))
	copy(cp, data)
	l.mu.Lock()
	l.frames = append(l.frames, netsim.CapturedFrame{
		When: when, SrcNode: srcNode, DstNode: dstNode, Data: cp,
	})
	if l.Limit > 0 && len(l.frames) > l.Limit {
		l.frames = l.frames[len(l.frames)-l.Limit:]
	}
	l.mu.Unlock()
}

// FrameCount reports buffered frames.
func (l *Learner) FrameCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.frames)
}

// Reset discards the buffered window.
func (l *Learner) Reset() {
	l.mu.Lock()
	l.frames = nil
	l.mu.Unlock()
}

// Distill aggregates the buffered window into one profile per SKU.
// Devices of the same SKU merge (service union, generalized remotes,
// max rate). A device with zero observed flows still contributes an
// empty — deny-everything — profile for its SKU; absence of traffic
// is evidence of a narrow device, not an error.
func (l *Learner) Distill(identities []Identity, version int) map[string]*Profile {
	l.mu.Lock()
	frames := make([]netsim.CapturedFrame, len(l.frames))
	copy(frames, l.frames)
	l.mu.Unlock()

	headroom := l.RateHeadroom
	if headroom <= 0 {
		headroom = 4
	}
	if version <= 0 {
		version = 1
	}

	profiles := make(map[string]*Profile)
	for _, id := range identities {
		obs := learn.ObserveFlows(frames, id.Name, id.IP)
		dev := &Profile{SKU: id.SKU, Version: version, Devices: 1}
		var (
			total       int
			first, last time.Time
		)
		for _, o := range obs {
			svc := Service{Proto: o.Proto, Port: o.Port, Initiated: o.Initiated}
			if o.Initiated {
				svc.Remote = o.Remote.String()
			}
			dev.Services = append(dev.Services, svc)
			total += o.Frames
			if first.IsZero() || o.First.Before(first) {
				first = o.First
			}
			if o.Last.After(last) {
				last = o.Last
			}
		}
		if total > 0 {
			span := last.Sub(first).Seconds()
			if span < 1 {
				span = 1
			}
			rate := math.Ceil(float64(total) / span * headroom)
			if rate < l.MinRate {
				rate = l.MinRate
			}
			dev.MaxRate = rate
		}
		dev.normalize()
		if merged, ok := profiles[id.SKU]; ok {
			_ = merged.Merge(dev)
		} else {
			profiles[id.SKU] = dev
		}
	}
	return profiles
}
