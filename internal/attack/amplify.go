package attack

import (
	"fmt"
	"sync/atomic"
	"time"

	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// AmplificationResult reports a DNS-reflection campaign.
type AmplificationResult struct {
	QueriesSent     int
	QueryBytes      int
	ReflectedFrames uint64
	ReflectedBytes  uint64
	// Factor is reflected/query bytes — the amplification the open
	// resolver provides (~0 when the defense blocks it).
	Factor float64
}

// Victim counts reflected traffic arriving at a host — attach its
// stack to the fabric and point amplification at it.
type Victim struct {
	Stack  *netsim.Stack
	frames atomic.Uint64
	bytes  atomic.Uint64
}

// NewVictim binds a counter to the victim's reflected-traffic port.
func NewVictim(st *netsim.Stack, port uint16) (*Victim, error) {
	v := &Victim{Stack: st}
	err := st.HandleUDP(port, func(_ packet.IPv4Address, _ uint16, payload []byte) {
		v.frames.Add(1)
		v.bytes.Add(uint64(len(payload)))
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Counters reports frames/bytes received so far.
func (v *Victim) Counters() (frames, bytes uint64) {
	return v.frames.Load(), v.bytes.Load()
}

// AmplifyDNS sends spoofed DNS queries to the resolver with the
// victim's address as source, so responses reflect onto the victim
// (the Wemo DDoS of Table 1 row 6). Spoofing requires crafting raw
// frames: the attacker needs the resolver's MAC, learned via its own
// stack's ARP (we cheat with a direct query-and-learn helper since the
// fabric floods ARP anyway).
func AmplifyDNS(attacker *netsim.Stack, resolverIP, victimIP packet.IPv4Address, victimPort uint16, queries int) (*AmplificationResult, error) {
	res := &AmplificationResult{}

	// Resolve the resolver's MAC the honest way first.
	if err := attacker.SendUDP(resolverIP, 9, 9, []byte("arp-warm")); err != nil {
		return nil, err
	}
	time.Sleep(20 * time.Millisecond)

	resolverMAC, ok := attacker.LookupARP(resolverIP)
	if !ok {
		return nil, fmt.Errorf("attack: resolver %s did not resolve", resolverIP)
	}

	q := &packet.DNS{
		ID:         0xdead,
		RecDesired: true,
		Questions:  []packet.DNSQuestion{{Name: "big.example.com", Type: packet.DNSTypeANY, Class: packet.DNSClassIN}},
	}
	qb := packet.NewSerializeBuffer()
	if err := q.SerializeTo(qb); err != nil {
		return nil, err
	}
	dnsBytes := make([]byte, qb.Len())
	copy(dnsBytes, qb.Bytes())

	for i := 0; i < queries; i++ {
		udp := &packet.UDP{SrcPort: victimPort, DstPort: 53}
		udp.SetNetworkForChecksum(victimIP, resolverIP) // spoofed source!
		b := packet.NewSerializeBuffer()
		err := packet.SerializeLayers(b,
			&packet.Ethernet{SrcMAC: attacker.MAC(), DstMAC: resolverMAC, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: victimIP, DstIP: resolverIP, Protocol: packet.IPProtocolUDP},
			udp,
			packet.NewPayload(dnsBytes),
		)
		if err != nil {
			return nil, err
		}
		attacker.InjectFrame(b.Bytes())
		res.QueriesSent++
		res.QueryBytes += len(dnsBytes)
	}
	return res, nil
}

// Finalize folds the victim's counters into the result.
func (r *AmplificationResult) Finalize(v *Victim) {
	r.ReflectedFrames, r.ReflectedBytes = v.Counters()
	if r.QueryBytes > 0 {
		r.Factor = float64(r.ReflectedBytes) / float64(r.QueryBytes)
	}
}
