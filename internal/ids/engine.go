package ids

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/packet"
)

// Alert is one rule match against a packet.
type Alert struct {
	Rule   *Rule
	Msg    string
	SID    int
	Action Action
	SrcIP  packet.IPv4Address
	DstIP  packet.IPv4Address
	When   time.Time
}

// Engine evaluates a ruleset against decoded packets. Immutable after
// NewEngine, so one engine may serve many goroutines.
//
// Matching is staged: content rules go through the Aho-Corasick
// prefilter (one pass over the payload regardless of ruleset size), and
// contentless rules are pre-grouped by proto/port at compile time so a
// packet only visits the buckets its own headers select — not the whole
// ruleset.
type Engine struct {
	rules []*Rule
	// ac indexes every content pattern across all rules; patIndex
	// maps automaton pattern index → (rule index, content) pair.
	ac       *ahoCorasick
	patIndex []patRef
	// rulePositives[i] is the number of positive contents of rules[i]:
	// a rule is a prefilter candidate when all of them were seen.
	rulePositives []int32
	// contentless rules, bucketed by proto/port (see ruleBuckets).
	tcpRules, udpRules, ipRules ruleBuckets
	// noCase is true when any compiled content is case-insensitive,
	// requiring a second scan over the lowercased payload.
	noCase bool

	scratchPool sync.Pool

	scanned atomic.Uint64
	matched atomic.Uint64
}

type patRef struct {
	rule    int32 // index into Engine.rules
	content int
}

// ruleBuckets groups contentless rules of one protocol by their
// concrete port, so Match visits only the buckets the packet's own
// ports select. Bidirectional rules and rules with no concrete port go
// in any (a bidir rule's concrete port may face either direction).
type ruleBuckets struct {
	byDst map[uint16][]*Rule
	bySrc map[uint16][]*Rule
	any   []*Rule
}

func (b *ruleBuckets) add(r *Rule) {
	switch {
	case r.Bidir:
		b.any = append(b.any, r)
	case !r.DstPort.Any:
		if b.byDst == nil {
			b.byDst = make(map[uint16][]*Rule)
		}
		b.byDst[r.DstPort.Port] = append(b.byDst[r.DstPort.Port], r)
	case !r.SrcPort.Any:
		if b.bySrc == nil {
			b.bySrc = make(map[uint16][]*Rule)
		}
		b.bySrc[r.SrcPort.Port] = append(b.bySrc[r.SrcPort.Port], r)
	default:
		b.any = append(b.any, r)
	}
}

// matchScratch is the per-Match working set, pooled and sparsely reset
// so a packet's cost scales with its own hits, not the ruleset size.
type matchScratch struct {
	patSeen     []bool
	ruleHits    []int32
	touchedPats []int32
	touchedRul  []int32
}

func (s *matchScratch) reset() {
	for _, i := range s.touchedPats {
		s.patSeen[i] = false
	}
	for _, i := range s.touchedRul {
		s.ruleHits[i] = 0
	}
	s.touchedPats = s.touchedPats[:0]
	s.touchedRul = s.touchedRul[:0]
}

// NewEngine compiles the rules: each rule is staged into the prefilter
// or a proto/port bucket by addRule, then the shared Aho-Corasick
// automaton is built once over all positive contents. Positive contents
// feed the prefilter (a content matching within a region necessarily
// matches somewhere, so "hit anywhere" is a sound prefilter); negated
// contents and region/dsize constraints are verified per candidate.
func NewEngine(rules []*Rule) *Engine {
	e := &Engine{
		rules:         rules,
		rulePositives: make([]int32, len(rules)),
	}
	var patterns [][]byte
	for ri, r := range rules {
		patterns = e.addRule(int32(ri), r, patterns)
	}
	e.ac = newAhoCorasick(patterns)
	nPats, nRules := len(e.patIndex), len(e.rules)
	e.scratchPool.New = func() any {
		return &matchScratch{
			patSeen:  make([]bool, nPats),
			ruleHits: make([]int32, nRules),
		}
	}
	return e
}

// addRule stages one rule: positive contents are appended to the
// pattern list for the prefilter; contentless rules land in the
// proto/port bucket their header select.
func (e *Engine) addRule(ri int32, r *Rule, patterns [][]byte) [][]byte {
	positives := int32(0)
	for ci, c := range r.Contents {
		if c.Negated {
			continue
		}
		positives++
		patterns = append(patterns, c.Pattern)
		e.patIndex = append(e.patIndex, patRef{rule: ri, content: ci})
		if c.NoCase {
			e.noCase = true
		}
	}
	e.rulePositives[ri] = positives
	if positives == 0 {
		// Only negated contents (or none): header buckets select it.
		switch r.Proto {
		case ProtoTCP:
			e.tcpRules.add(r)
		case ProtoUDP:
			e.udpRules.add(r)
		default:
			e.ipRules.add(r)
		}
	}
	return patterns
}

// contentMatches verifies one content predicate precisely against the
// payload (region, case and negation).
func contentMatches(c Content, payload []byte) bool {
	region := payload
	if c.Offset > 0 {
		if c.Offset >= len(region) {
			region = nil
		} else {
			region = region[c.Offset:]
		}
	}
	if c.Depth > 0 && c.Depth < len(region) {
		region = region[:c.Depth]
	}
	var found bool
	if c.NoCase {
		found = containsNaive(bytes.ToLower(region), c.Pattern)
	} else {
		found = containsNaive(region, c.Pattern)
	}
	return found != c.Negated
}

// ruleContentsMatch verifies every content predicate of a rule.
func ruleContentsMatch(r *Rule, payload []byte) bool {
	for _, c := range r.Contents {
		if !contentMatches(c, payload) {
			return false
		}
	}
	return true
}

// RuleCount reports the compiled ruleset size.
func (e *Engine) RuleCount() int { return len(e.rules) }

// Stats reports packets scanned and alerts raised.
func (e *Engine) Stats() (scanned, matched uint64) {
	return e.scanned.Load(), e.matched.Load()
}

// pktView carries the packet header fields Match extracts once, so
// per-candidate verification does not re-walk the layer list.
type pktView struct {
	ip               *packet.IPv4
	payload          []byte
	srcPort, dstPort uint16
	hasTCP, hasUDP   bool
}

// Match evaluates the packet, returning all alerts (block rules first
// is NOT guaranteed; callers wanting a verdict use Verdict).
func (e *Engine) Match(p *packet.Packet) []Alert {
	e.scanned.Add(1)
	mPacketsScanned.Inc()
	ip := p.IPv4()
	if ip == nil {
		return nil
	}
	v := pktView{ip: ip, payload: p.ApplicationPayload()}
	if t := p.TCP(); t != nil {
		v.hasTCP, v.srcPort, v.dstPort = true, t.SrcPort, t.DstPort
	} else if u := p.UDP(); u != nil {
		v.hasUDP, v.srcPort, v.dstPort = true, u.SrcPort, u.DstPort
	}

	var alerts []Alert

	// Stage 1: content rules via the prefilter. One automaton pass
	// finds every candidate whose positive contents all appear.
	if len(v.payload) > 0 && len(e.patIndex) > 0 {
		s := e.scratchPool.Get().(*matchScratch)
		e.scanInto(v.payload, s)
		if e.noCase {
			// nocase contents are stored lowercased; scan a lowered
			// copy too. bytes.ToLower (not an ASCII fold) keeps the
			// prefilter's candidate set identical to what the precise
			// contentMatches pass lowercases — only engines that
			// compiled a nocase content pay this copy.
			e.scanInto(bytes.ToLower(v.payload), s)
		}
		for _, ri := range s.touchedRul {
			if s.ruleHits[ri] >= e.rulePositives[ri] {
				alerts = e.consider(e.rules[ri], &v, alerts)
			}
		}
		s.reset()
		e.scratchPool.Put(s)
	}

	// Stage 2: contentless rules from the buckets the packet's own
	// headers select.
	alerts = e.considerBuckets(&e.ipRules, &v, alerts)
	if v.hasTCP {
		alerts = e.considerBuckets(&e.tcpRules, &v, alerts)
	} else if v.hasUDP {
		alerts = e.considerBuckets(&e.udpRules, &v, alerts)
	}
	return alerts
}

func (e *Engine) considerBuckets(b *ruleBuckets, v *pktView, alerts []Alert) []Alert {
	if b.byDst != nil {
		for _, r := range b.byDst[v.dstPort] {
			alerts = e.consider(r, v, alerts)
		}
	}
	if b.bySrc != nil {
		for _, r := range b.bySrc[v.srcPort] {
			alerts = e.consider(r, v, alerts)
		}
	}
	for _, r := range b.any {
		alerts = e.consider(r, v, alerts)
	}
	return alerts
}

// consider verifies one candidate rule precisely and appends an alert
// on a match.
func (e *Engine) consider(r *Rule, v *pktView, alerts []Alert) []Alert {
	if !r.Dsize.Matches(len(v.payload)) {
		return alerts
	}
	if !ruleContentsMatch(r, v.payload) {
		return alerts
	}
	if !headerMatch(r, v) {
		return alerts
	}
	e.matched.Add(1)
	mRuleMatches.Inc()
	return append(alerts, Alert{
		Rule: r, Msg: r.Msg, SID: r.SID, Action: r.Action,
		SrcIP: v.ip.SrcIP, DstIP: v.ip.DstIP, When: time.Now(),
	})
}

// headerMatch applies the non-content predicates.
func headerMatch(r *Rule, v *pktView) bool {
	var srcPort, dstPort uint16
	switch r.Proto {
	case ProtoTCP:
		if !v.hasTCP {
			return false
		}
		srcPort, dstPort = v.srcPort, v.dstPort
	case ProtoUDP:
		if !v.hasUDP {
			return false
		}
		srcPort, dstPort = v.srcPort, v.dstPort
	case ProtoIP:
		srcPort, dstPort = v.srcPort, v.dstPort
	}
	forward := r.SrcIP.Matches(v.ip.SrcIP) && r.SrcPort.Matches(srcPort) &&
		r.DstIP.Matches(v.ip.DstIP) && r.DstPort.Matches(dstPort)
	if forward {
		return true
	}
	if r.Bidir {
		return r.SrcIP.Matches(v.ip.DstIP) && r.SrcPort.Matches(dstPort) &&
			r.DstIP.Matches(v.ip.SrcIP) && r.DstPort.Matches(srcPort)
	}
	return false
}

// Verdict reduces the alerts for a packet to a forwarding decision:
// any block rule blocks; pass rules are advisory here.
func (e *Engine) Verdict(p *packet.Packet) (blocked bool, alerts []Alert) {
	alerts = e.Match(p)
	for _, a := range alerts {
		if a.Action == ActionBlock {
			mBlocks.Inc()
			return true, alerts
		}
	}
	return false, alerts
}
