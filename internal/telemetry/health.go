package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// HealthState is a component's coarse condition. The numeric order is
// deliberate — Down < Degraded < Healthy — so the exported
// iotsec_component_health gauge reads naturally on a dashboard (2 is
// good, 0 is an outage) and matches the sigrepo LinkState convention.
type HealthState int32

// Health states, worst first.
const (
	HealthDown     HealthState = 0
	HealthDegraded HealthState = 1
	HealthHealthy  HealthState = 2
)

// String renders the state for JSON and human output.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// MarshalJSON encodes the state as its string form.
func (s HealthState) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the string form (clients decoding /readyz
// bodies need the round trip).
func (s *HealthState) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "healthy":
		*s = HealthHealthy
	case "degraded":
		*s = HealthDegraded
	default:
		*s = HealthDown
	}
	return nil
}

// HealthReporter is polled at probe/scrape time and returns the
// component's current state plus a short human reason ("" when
// healthy). Reporters must be cheap (a few atomic loads) and safe to
// call concurrently — they run on every /readyz probe and every
// metrics scrape.
type HealthReporter func() (HealthState, string)

// ComponentHealth is one component's evaluated status.
type ComponentHealth struct {
	Component string      `json:"component"`
	Critical  bool        `json:"critical"`
	State     HealthState `json:"state"`
	Reason    string      `json:"reason,omitempty"`
	// Since is when the component last changed state (as observed by
	// this registry — transitions between polls are invisible, which is
	// fine for a liveness plane that cares about sustained conditions).
	Since time.Time `json:"since"`
}

// healthEntry tracks one registered reporter plus the last observed
// state so Since can be computed on transition.
type healthEntry struct {
	critical bool
	reporter HealthReporter

	seen      bool
	lastState HealthState
	since     time.Time
}

// HealthRegistry aggregates per-component HealthReporters into the
// process's readiness signal. Components register once (idempotent by
// name: re-registering replaces the reporter, preserving transition
// history) and the registry polls them on demand.
type HealthRegistry struct {
	mu    sync.Mutex
	order []string
	comps map[string]*healthEntry
	now   func() time.Time // test seam
}

// NewHealthRegistry builds an empty health registry.
func NewHealthRegistry() *HealthRegistry {
	return &HealthRegistry{comps: make(map[string]*healthEntry), now: time.Now}
}

// Register installs (or replaces) a component's reporter. Critical
// components gate /readyz: any critical component reporting Down flips
// readiness to 503. Non-critical components are reported but do not
// gate.
func (h *HealthRegistry) Register(component string, critical bool, rep HealthReporter) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.comps[component]; ok {
		e.critical = critical
		e.reporter = rep
		return
	}
	h.comps[component] = &healthEntry{critical: critical, reporter: rep}
	h.order = append(h.order, component)
}

// Unregister removes a component (used by tests and by instances that
// shut down cleanly; a crashed component should keep its reporter so
// it shows Down rather than vanishing).
func (h *HealthRegistry) Unregister(component string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.comps[component]; !ok {
		return
	}
	delete(h.comps, component)
	for i, c := range h.order {
		if c == component {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
}

// Snapshot polls every reporter and returns statuses in registration
// order, updating per-component transition times.
func (h *HealthRegistry) Snapshot() []ComponentHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ComponentHealth, 0, len(h.order))
	for _, name := range h.order {
		e := h.comps[name]
		state, reason := e.reporter()
		if !e.seen || state != e.lastState {
			e.seen = true
			e.lastState = state
			e.since = h.now()
		}
		out = append(out, ComponentHealth{
			Component: name,
			Critical:  e.critical,
			State:     state,
			Reason:    reason,
			Since:     e.since,
		})
	}
	return out
}

// Ready evaluates readiness: true unless some critical component is
// Down. The full component list is returned either way so /readyz can
// serve the detail.
func (h *HealthRegistry) Ready() (bool, []ComponentHealth) {
	comps := h.Snapshot()
	for _, c := range comps {
		if c.Critical && c.State == HealthDown {
			return false, comps
		}
	}
	return true, comps
}

// HealthJSON is the /readyz (and /healthz?verbose) response body.
type HealthJSON struct {
	Ready      bool              `json:"ready"`
	TakenAt    time.Time         `json:"taken_at"`
	Components []ComponentHealth `json:"components"`
}

// LivenessHandler serves /healthz: 200 as long as the process can
// answer HTTP at all. Liveness deliberately ignores component state —
// restarting a process because its southbound link is down would make
// the outage worse, not better; that belongs to readiness.
func (h *HealthRegistry) LivenessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
}

// ReadinessHandler serves /readyz: 200 with the component detail when
// every critical component is up, 503 with the same JSON shape (so
// probes and humans see *which* component and why) when not.
func (h *HealthRegistry) ReadinessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ready, comps := h.Ready()
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(HealthJSON{Ready: ready, TakenAt: time.Now(), Components: comps})
	})
}

// Health returns the registry's component-health aggregator. Every
// scrape of r additionally exposes one
// iotsec_component_health{component=...} gauge per registered
// component (0 down, 1 degraded, 2 healthy) and
// iotsec_component_critical{component=...} marking readiness-gating
// components.
func (r *Registry) Health() *HealthRegistry { return r.health }

// healthCollector emits the component gauges at scrape time.
func healthCollector(h *HealthRegistry) Collector {
	return func(emit func(name string, kind Kind, help string, labels Labels, value float64)) {
		for _, c := range h.Snapshot() {
			labels := Labels{{Key: "component", Value: c.Component}}
			emit("iotsec_component_health", KindGauge,
				"Component health (0 down, 1 degraded, 2 healthy).",
				labels, float64(c.State))
			crit := 0.0
			if c.Critical {
				crit = 1
			}
			emit("iotsec_component_critical", KindGauge,
				"Whether the component gates /readyz (1 critical).",
				labels, crit)
		}
	}
}
