package netsim

import (
	"testing"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/openflow"
	"iotsec/internal/resilience"
)

// resHandler records connect/disconnect/flow-removed events.
type resHandler struct {
	connected    chan uint64
	disconnected chan uint64
	removed      chan *openflow.FlowRemoved
	packetIns    chan *openflow.PacketIn
}

func newResHandler() *resHandler {
	return &resHandler{
		connected:    make(chan uint64, 8),
		disconnected: make(chan uint64, 8),
		removed:      make(chan *openflow.FlowRemoved, 64),
		packetIns:    make(chan *openflow.PacketIn, 64),
	}
}

func (h *resHandler) SwitchConnected(dpid uint64, _ []uint16) { h.connected <- dpid }
func (h *resHandler) SwitchDisconnected(dpid uint64)          { h.disconnected <- dpid }
func (h *resHandler) HandlePacketIn(pi *openflow.PacketIn)    { h.packetIns <- pi }
func (h *resHandler) HandleFlowRemoved(fr *openflow.FlowRemoved) {
	h.removed <- fr
}

// fastBackoff keeps chaos iterations snappy and deterministic.
func fastBackoff() resilience.BackoffOptions {
	return resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 11}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAgentReconnectReplay kills the controller endpoint mid-session,
// lets FLOW_REMOVED notifications accumulate in the degradation
// buffer, restarts the endpoint on the same address, and asserts the
// agent reconnects (with backoff) and replays every buffered event
// exactly once.
func TestAgentReconnectReplay(t *testing.T) {
	start := time.Now()
	h := newResHandler()
	ep := openflow.NewControllerEndpoint(h, nil)
	addr, err := ep.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	n := NewNetwork()
	sw := NewSwitch("sw", 91)
	sw.AttachPort(n, 1)
	n.Start()
	defer n.Stop()

	agent := SuperviseAgent(sw, addr, AgentOptions{Backoff: fastBackoff()})
	defer func() { agent.Stop(); agent.Wait() }()

	select {
	case <-h.connected:
	case <-time.After(2 * time.Second):
		t.Fatal("switch never connected")
	}

	// Controller "crashes": listener and sessions drop, state survives.
	ep.Interrupt()
	waitCond(t, "agent to notice the outage", func() bool { return !agent.Connected() })

	// Expire three flows during the outage; the FLOW_REMOVED events
	// must enter the degradation buffer instead of vanishing.
	for i, cookie := range []uint64{1001, 1002, 1003} {
		sw.Table().Insert(openflow.FlowEntry{
			Match:       openflow.MatchAll().WithTpDst(uint16(9000 + i)),
			Priority:    7,
			HardTimeout: time.Millisecond,
			Cookie:      cookie,
		})
	}
	waitCond(t, "expired flows to buffer", func() bool { return agent.BufferedEvents() >= 3 })

	// Controller restarts on the same address.
	if _, err := ep.Listen(addr); err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	select {
	case dpid := <-h.connected:
		if dpid != 91 {
			t.Fatalf("reconnect dpid = %d, want 91", dpid)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent never reconnected")
	}

	// Every buffered FLOW_REMOVED arrives exactly once.
	seen := map[uint64]int{}
	for len(seen) < 3 {
		select {
		case fr := <-h.removed:
			seen[fr.Cookie]++
		case <-time.After(5 * time.Second):
			t.Fatalf("replayed flow-removed missing; got %v", seen)
		}
	}
	// A short grace window catches duplicates.
	grace := time.After(100 * time.Millisecond)
drain:
	for {
		select {
		case fr := <-h.removed:
			seen[fr.Cookie]++
		case <-grace:
			break drain
		}
	}
	for _, cookie := range []uint64{1001, 1002, 1003} {
		if seen[cookie] != 1 {
			t.Errorf("cookie %d delivered %d times, want exactly once", cookie, seen[cookie])
		}
	}
	if got := agent.Reconnects(); got != 1 {
		t.Errorf("Reconnects = %d, want 1", got)
	}
	waitCond(t, "replay counter", func() bool { return agent.Replayed() >= 3 })
	if got := agent.BufferedEvents(); got != 0 {
		t.Errorf("BufferedEvents after replay = %d, want 0", got)
	}

	// The forensic journal can reconstruct the whole episode:
	// disconnect → reconnect → replay appear as typed events.
	for _, typ := range []journal.Type{journal.TypeSouthDown, journal.TypeSouthUp, journal.TypeSouthReplay} {
		if evs := journal.Default.Snapshot(journal.Filter{Type: typ, Since: start}); len(evs) == 0 {
			t.Errorf("journal has no %q events; outage not reconstructable", typ)
		}
	}
}

// TestAgentFailModes drives the degradation policy directly: a
// supervised agent whose controller never answers buffers punts under
// fail-static and drops (counting) under fail-closed. FLOW_REMOVED
// events are buffered in both modes.
func TestAgentFailModes(t *testing.T) {
	cases := []struct {
		name     string
		mode     FailMode
		wantDrop bool
	}{
		{"fail-static buffers punts", FailStatic, false},
		{"fail-closed drops punts", FailClosed, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := NewNetwork()
			sw := NewSwitch("sw-"+tc.mode.String(), 5)
			sp := sw.AttachPort(n, 1)
			src := newSink("src")
			n.Connect(n.NewPort(src, 1), sp, LinkOptions{})
			n.Start()
			defer n.Stop()

			// Nothing listens on this address: the agent stays in the
			// disconnected/degraded regime for the whole test.
			agent := SuperviseAgent(sw, "127.0.0.1:1", AgentOptions{
				FailMode: tc.mode,
				Backoff:  fastBackoff(),
			})
			defer func() { agent.Stop(); agent.Wait() }()

			frame := buildFrame(t, mac1, mac2, ip1, ip2, 80)
			sendViaPeer(sp, frame) // table miss → punt → degradation path
			if tc.wantDrop {
				waitCond(t, "punt drop counter", func() bool { return agent.PuntsDropped() >= 1 })
				if got := agent.BufferedEvents(); got != 0 {
					t.Errorf("fail-closed buffered %d punts, want 0", got)
				}
			} else {
				waitCond(t, "punt to buffer", func() bool { return agent.BufferedEvents() >= 1 })
				if got := agent.PuntsDropped(); got != 0 {
					t.Errorf("fail-static dropped %d punts, want 0", got)
				}
			}

			// FLOW_REMOVED is state the controller must learn: buffered
			// under both modes.
			before := agent.BufferedEvents()
			sw.Table().Insert(openflow.FlowEntry{
				Match:       openflow.MatchAll().WithTpDst(4242),
				Priority:    3,
				HardTimeout: time.Millisecond,
				Cookie:      77,
			})
			waitCond(t, "flow-removed to buffer", func() bool { return agent.BufferedEvents() > before })
		})
	}
}

// TestAgentBufferEviction verifies the degradation ring is bounded:
// overflowing it evicts oldest-first and counts the loss.
func TestAgentBufferEviction(t *testing.T) {
	n := NewNetwork()
	sw := NewSwitch("sw-evict", 6)
	sp := sw.AttachPort(n, 1)
	src := newSink("src")
	n.Connect(n.NewPort(src, 1), sp, LinkOptions{})
	n.Start()
	defer n.Stop()

	agent := SuperviseAgent(sw, "127.0.0.1:1", AgentOptions{
		BufferCap: 4,
		Backoff:   fastBackoff(),
	})
	defer func() { agent.Stop(); agent.Wait() }()

	frame := buildFrame(t, mac1, mac2, ip1, ip2, 80)
	for i := 0; i < 10; i++ {
		sendViaPeer(sp, frame)
	}
	waitCond(t, "ring to saturate", func() bool { return agent.BufferedEvents() == 4 })
}
