package attack

import (
	"fmt"

	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/learn"
	"iotsec/internal/packet"
)

// TargetInfo tells the executor how to reach and exploit one device
// named in an abstract attack plan.
type TargetInfo struct {
	IP packet.IPv4Address
	// Exploit yields credentials/args that make commands succeed
	// after StepExploit: either a backdoor token appended to args, or
	// a user/pass pair.
	BackdoorToken string
	User, Pass    string
}

// Executor carries an abstract attack path (from learn.AttackSearch)
// out against the live emulated deployment: exploit steps establish
// access, command steps become real management requests, wait steps
// advance the physical environment. This is the adversary the paper's
// §4.2 wants to predict — and the one IoTSec must stop.
type Executor struct {
	Attacker *Attacker
	// Targets maps abstract device names to concrete reach info.
	Targets map[string]TargetInfo
	// Env advances on wait steps.
	Env *envsim.Environment
	// WaitTicks is environment steps per wait (default 120 —
	// enough simulated time for thermal effects).
	WaitTicks int
}

// ExecutionResult reports how far the plan got.
type ExecutionResult struct {
	StepsAttempted int
	StepsSucceeded int
	// FailedStep describes the first failing step ("" if all
	// succeeded).
	FailedStep string
}

// Succeeded reports whether the whole plan executed.
func (r ExecutionResult) Succeeded() bool { return r.FailedStep == "" }

// Execute runs the plan step by step, stopping at the first failure
// (a blocked command means the defense held).
func (e *Executor) Execute(path []learn.AttackStep) ExecutionResult {
	waitTicks := e.WaitTicks
	if waitTicks <= 0 {
		waitTicks = 120
	}
	res := ExecutionResult{}
	// compromised tracks which devices the attacker has "shelled";
	// for emulated devices this means its exploit primitive worked
	// once.
	compromised := map[string]bool{}

	for _, step := range path {
		res.StepsAttempted++
		switch step.Kind {
		case learn.StepExploit:
			target, ok := e.Targets[step.Device]
			if !ok {
				res.FailedStep = fmt.Sprintf("exploit(%s): unknown target", step.Device)
				return res
			}
			// Probe access with a harmless STATUS through the exploit
			// primitive.
			probe := e.authedRequest(step.Device, target, "STATUS", nil)
			resp, err := e.Attacker.call(target.IP, probe)
			if err != nil || !resp.OK {
				res.FailedStep = fmt.Sprintf("exploit(%s): %v / %s", step.Device, err, resp.Data)
				return res
			}
			compromised[step.Device] = true
		case learn.StepCommand:
			target, ok := e.Targets[step.Device]
			if !ok {
				res.FailedStep = fmt.Sprintf("%s.%s: unknown target", step.Device, step.Cmd)
				return res
			}
			if !compromised[step.Device] && target.BackdoorToken == "" && target.User == "" {
				res.FailedStep = fmt.Sprintf("%s.%s: no access", step.Device, step.Cmd)
				return res
			}
			req := e.authedRequest(step.Device, target, step.Cmd, nil)
			resp, err := e.Attacker.call(target.IP, req)
			if err != nil || !resp.OK {
				res.FailedStep = fmt.Sprintf("%s.%s: %v / %s", step.Device, step.Cmd, err, resp.Data)
				return res
			}
		case learn.StepWait:
			if e.Env != nil {
				e.Env.Run(waitTicks)
			}
		}
		res.StepsSucceeded++
	}
	return res
}

// authedRequest builds a request using the target's exploit primitive.
func (e *Executor) authedRequest(_ string, target TargetInfo, cmd string, args []string) device.Request {
	req := device.Request{Cmd: cmd, Args: args, User: target.User, Pass: target.Pass}
	if target.BackdoorToken != "" {
		req.Args = append(append([]string{}, args...), target.BackdoorToken)
	}
	return req
}
