package envsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStepAppliesLawsSynchronously(t *testing.T) {
	env := New(map[string]float64{"a": 1, "b": 10})
	// Both laws read the pre-step snapshot: law2 must see a's OLD
	// value even though law1 updates it.
	env.AddLaw(Law{Name: "inc-a", Apply: func(s Snapshot, dt float64) map[string]float64 {
		return map[string]float64{"a": s.Get("a") + 1}
	}})
	var law2Saw float64
	env.AddLaw(Law{Name: "watch-a", Apply: func(s Snapshot, dt float64) map[string]float64 {
		law2Saw = s.Get("a")
		return nil
	}})
	env.Step()
	if env.Get("a") != 2 {
		t.Errorf("a = %v, want 2", env.Get("a"))
	}
	if law2Saw != 1 {
		t.Errorf("law2 saw a=%v, want pre-step value 1", law2Saw)
	}
	if env.Tick() != 1 {
		t.Errorf("tick = %d", env.Tick())
	}
}

func TestObserversSeeChanges(t *testing.T) {
	env := New(map[string]float64{"x": 0})
	env.AddLaw(Law{Name: "bump", Apply: func(s Snapshot, dt float64) map[string]float64 {
		return map[string]float64{"x": s.Get("x") + 1}
	}})
	var changes []map[string]float64
	env.AddObserver(func(s Snapshot, changed map[string]float64) {
		changes = append(changes, changed)
	})
	env.Run(3)
	if len(changes) != 3 {
		t.Fatalf("observer fired %d times", len(changes))
	}
	if changes[2]["x"] != 3 {
		t.Errorf("final change = %v", changes[2])
	}
}

func TestThermalLawRelaxesTowardOutside(t *testing.T) {
	env := StandardHome() // inside 22, outside 30
	env.Run(600)          // 10 simulated minutes, windows closed
	closedTemp := env.Get(VarTemperature)
	if closedTemp <= 22 || closedTemp >= 30 {
		t.Errorf("closed-window temp = %.2f, want between 22 and 30", closedTemp)
	}

	// With the window open the room tracks outside much faster.
	env2 := StandardHome()
	env2.Set(VarWindowOpen, 1)
	env2.Run(600)
	openTemp := env2.Get(VarTemperature)
	if openTemp <= closedTemp {
		t.Errorf("open-window temp %.2f should exceed closed-window temp %.2f", openTemp, closedTemp)
	}
	if math.Abs(openTemp-30) > 1 {
		t.Errorf("open-window temp %.2f should be near outside 30", openTemp)
	}
}

func TestThermalHeatSource(t *testing.T) {
	// This is the paper's §2.1 attack physics: kill the A/C (here:
	// add oven heat), room heats past the threshold.
	env := StandardHome()
	env.Set("oven_heat_rate", 0.01) // +0.01 °C/s
	env.Run(600)
	if env.Get(VarTemperature) < 26 {
		t.Errorf("temp = %.2f, want noticeably heated", env.Get(VarTemperature))
	}
}

func TestSmokeLawSourceAndVentilation(t *testing.T) {
	env := StandardHome()
	env.Set("smoke_source_rate", 0.01)
	env.Run(60)
	smokey := env.Get(VarSmoke)
	if smokey < 0.2 {
		t.Fatalf("smoke = %.3f, want above alarm threshold", smokey)
	}
	// Stop the source, open the window: smoke clears fast.
	env.Set("smoke_source_rate", 0)
	env.Set(VarWindowOpen, 1)
	env.Run(120)
	if env.Get(VarSmoke) > smokey/2 {
		t.Errorf("smoke after ventilation = %.3f, want well below %.3f", env.Get(VarSmoke), smokey)
	}
}

func TestSmokeClamped(t *testing.T) {
	env := StandardHome()
	env.Set("smoke_source_rate", 10)
	env.Run(100)
	if s := env.Get(VarSmoke); s > 1 {
		t.Errorf("smoke = %v, must be clamped to 1", s)
	}
}

func TestPowerLawAggregates(t *testing.T) {
	env := StandardHome()
	env.Set("hvac_power", 2000)
	env.Set("oven_power", 1500)
	env.Step()
	if got := env.Get(VarPower); got != 120+2000+1500 {
		t.Errorf("power = %v", got)
	}
}

func TestDiscretizerBands(t *testing.T) {
	d := StandardDiscretizer()
	cases := []struct {
		varName string
		v       float64
		want    string
	}{
		{VarTemperature, 10, "low"},
		{VarTemperature, 22, "normal"},
		{VarTemperature, 35, "high"},
		{VarSmoke, 0, "no"},
		{VarSmoke, 0.9, "yes"},
		{VarOccupancy, 0, "away"},
		{VarOccupancy, 1, "home"},
		{VarWindowOpen, 0, "closed"},
		{VarWindowOpen, 1, "open"},
	}
	for _, c := range cases {
		if got := d.Value(c.varName, c.v); got != c.want {
			t.Errorf("Value(%s, %v) = %q, want %q", c.varName, c.v, got, c.want)
		}
	}
	if got := d.Value("unknown_var", 5); got != "" {
		t.Errorf("unknown variable discretized to %q", got)
	}
}

func TestDiscretizerBoundariesProperty(t *testing.T) {
	d := StandardDiscretizer()
	// Every float maps to exactly one non-empty level for defined
	// variables.
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		lv := d.Value(VarTemperature, v)
		return lv == "low" || lv == "normal" || lv == "high"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyStable(t *testing.T) {
	a := Key(map[string]string{"b": "2", "a": "1"})
	b := Key(map[string]string{"a": "1", "b": "2"})
	if a != b || a != "a=1,b=2" {
		t.Errorf("keys %q / %q", a, b)
	}
}

func TestDiscretizeSnapshot(t *testing.T) {
	env := StandardHome()
	d := StandardDiscretizer()
	got := d.Discretize(env.Snapshot())
	if got[VarTemperature] != "normal" || got[VarSmoke] != "no" || got[VarOccupancy] != "home" {
		t.Errorf("discretized = %v", got)
	}
}

func TestSnapshotAccessorsAndAdjust(t *testing.T) {
	env := New(map[string]float64{"b": 2, "a": 1})
	env.Adjust("a", 0.5)
	if env.Get("a") != 1.5 {
		t.Errorf("adjust: %v", env.Get("a"))
	}
	s := env.Snapshot()
	if !s.Has("a") || s.Has("ghost") {
		t.Error("Has wrong")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	str := env.String()
	if !strings.Contains(str, "tick=0") || !strings.Contains(str, "a=1.50") {
		t.Errorf("string = %q", str)
	}
}

func TestDiscretizerIntrospection(t *testing.T) {
	d := StandardDiscretizer()
	vars := d.Variables()
	if len(vars) < 5 {
		t.Errorf("variables = %v", vars)
	}
	levels := d.Levels(VarTemperature)
	if len(levels) != 3 || levels[0] != "low" || levels[2] != "high" {
		t.Errorf("levels = %v", levels)
	}
	if got := d.Levels("ghost"); len(got) != 0 {
		t.Errorf("ghost levels = %v", got)
	}
}
