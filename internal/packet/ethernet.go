package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MACAddress is a 48-bit Ethernet hardware address.
type MACAddress [6]byte

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = MACAddress{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in colon-hex form.
func (m MACAddress) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MACAddress) IsBroadcast() bool { return m == BroadcastMAC }

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes the library understands.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// String names well-known EtherTypes.
func (e EtherType) String() string {
	switch e {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(e))
	}
}

// ethernetHeaderLen is the fixed (untagged) Ethernet II header size.
const ethernetHeaderLen = 14

// ErrTruncated reports a layer whose bytes are shorter than its header.
var ErrTruncated = errors.New("packet: truncated layer")

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	base
	SrcMAC, DstMAC MACAddress
	EtherType      EtherType
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// DecodeFromBytes implements DecodingLayer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < ethernetHeaderLen {
		return fmt.Errorf("ethernet header: %w (%d bytes)", ErrTruncated, len(data))
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EtherType = EtherType(binary.BigEndian.Uint16(data[12:14]))
	e.contents = data[:ethernetHeaderLen]
	e.payload = data[ethernetHeaderLen:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (e *Ethernet) NextLayerType() LayerType {
	switch e.EtherType {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeARP:
		return LayerTypeARP
	default:
		return LayerTypePayload
	}
}

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer) error {
	hdr, err := b.Prepend(ethernetHeaderLen)
	if err != nil {
		return err
	}
	copy(hdr[0:6], e.DstMAC[:])
	copy(hdr[6:12], e.SrcMAC[:])
	binary.BigEndian.PutUint16(hdr[12:14], uint16(e.EtherType))
	return nil
}

// String summarizes the frame header.
func (e *Ethernet) String() string {
	return fmt.Sprintf("Ethernet %s > %s %s", e.SrcMAC, e.DstMAC, e.EtherType)
}
