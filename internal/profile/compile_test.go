package profile

import (
	"testing"

	"iotsec/internal/openflow"
	"iotsec/internal/packet"
)

// compiledTable applies the compiled mods to a fresh flow table the
// way a switch would.
func compiledTable(mods []*openflow.FlowMod) *openflow.FlowTable {
	tbl := openflow.NewFlowTable()
	for _, fm := range mods {
		tbl.Insert(openflow.FlowEntry{
			Match: fm.Match, Priority: fm.Priority,
			Actions: fm.Actions, Cookie: fm.Cookie,
		})
	}
	return tbl
}

func TestCompileRuleShape(t *testing.T) {
	id := camIdentity()
	p := &Profile{SKU: id.SKU, Version: 1, Services: []Service{
		{Proto: "udp", Port: 5683},
		{Proto: "udp", Port: 9000, Initiated: true, Remote: cloudIP.String()},
	}}
	mods := Compile(p, id)
	// 2 deny floor + 2 ARP + 2 per service.
	if len(mods) != 8 {
		t.Fatalf("compiled %d mods, want 8", len(mods))
	}
	var deny, infra, allow int
	for _, fm := range mods {
		if fm.Cookie != Cookie(id.MAC) {
			t.Errorf("cookie %#x, want %#x", fm.Cookie, Cookie(id.MAC))
		}
		switch fm.Priority {
		case PriorityDeny:
			deny++
			if len(fm.Actions) != 0 {
				t.Errorf("deny floor has actions: %v", fm.Actions)
			}
		case PriorityInfra:
			infra++
		case PriorityAllow:
			allow++
			if len(fm.Actions) == 0 {
				t.Error("allow rule with no actions")
			}
		default:
			t.Errorf("unexpected priority %d", fm.Priority)
		}
	}
	if deny != 2 || infra != 2 || allow != 4 {
		t.Fatalf("deny=%d infra=%d allow=%d, want 2/2/4", deny, infra, allow)
	}
	if Cookie(id.MAC)>>48 != CookieTag {
		t.Errorf("cookie tag byte = %#x", Cookie(id.MAC)>>48)
	}
}

// TestCompiledTableIdentityPinning is the data-plane half of the
// address-hop defense: the same switch table that floods the device's
// authorized, correctly-addressed traffic drops the identical service
// tuple the moment the source address is spoofed — privilege follows
// the registered identity, not whatever address a frame carries.
func TestCompiledTableIdentityPinning(t *testing.T) {
	id := camIdentity()
	p := &Profile{SKU: id.SKU, Version: 1, Services: []Service{
		{Proto: "udp", Port: 5683},                                          // served
		{Proto: "udp", Port: 9000, Initiated: true, Remote: cloudIP.String()}, // pinned check-in
	}}
	tbl := compiledTable(Compile(p, id))

	lookup := func(frame []byte) (openflow.FlowEntry, bool) {
		return tbl.Lookup(packet.Decode(frame, packet.LayerTypeEthernet), 1, len(frame))
	}
	allowed := func(frame []byte) bool {
		e, ok := lookup(frame)
		return ok && len(e.Actions) > 0
	}

	// Authorized traffic flows: served reply, pinned check-in, inbound
	// request to the served port, ARP both ways.
	if !allowed(udpFrame(t, camMAC, hostMAC, camIP, hostIP, 5683, 40000)) {
		t.Error("served reply dropped")
	}
	if !allowed(udpFrame(t, camMAC, hostMAC, camIP, cloudIP, 41000, 9000)) {
		t.Error("pinned cloud check-in dropped")
	}
	if !allowed(udpFrame(t, hostMAC, camMAC, hostIP, camIP, 40000, 5683)) {
		t.Error("inbound request to served port dropped")
	}
	if !allowed(arpFrame(t, camMAC, camIP, hostIP)) {
		t.Error("device ARP dropped")
	}

	// Address hop: same MAC, same authorized tuple, spoofed source
	// address → deny floor.
	hop := udpFrame(t, camMAC, hostMAC, plugIP, cloudIP, 41000, 9000)
	if e, ok := lookup(hop); !ok || e.Priority != PriorityDeny || len(e.Actions) != 0 {
		t.Errorf("address-hopped frame not pinned to the deny floor: %+v", e)
	}
	// Unauthorized service and unpinned remote both die on the floor.
	if allowed(udpFrame(t, camMAC, hostMAC, camIP, hostIP, 7000, 4444)) {
		t.Error("unauthorized service allowed")
	}
	if allowed(udpFrame(t, camMAC, hostMAC, camIP, hostIP, 41000, 9000)) {
		t.Error("check-in to a non-pinned endpoint allowed")
	}
	// Inbound junk toward the device also drops (deny floor on dst).
	if allowed(udpFrame(t, hostMAC, camMAC, hostIP, camIP, 40000, 2323)) {
		t.Error("inbound unauthorized port allowed")
	}
	// Traffic not touching the device misses the profile table
	// entirely (falls through to default forwarding).
	other := udpFrame(t, hostMAC, rogueMAC, hostIP, cloudIP, 1, 2)
	if _, ok := lookup(other); ok {
		t.Error("unrelated traffic caught by the device's profile rules")
	}
}

// TestCompileEmptyProfileDeniesEverything: a zero-service profile (a
// silent device) still compiles to a working deny floor + ARP.
func TestCompileEmptyProfileDeniesEverything(t *testing.T) {
	id := camIdentity()
	tbl := compiledTable(Compile(&Profile{SKU: id.SKU, Version: 1}, id))
	e, ok := tbl.Lookup(packet.Decode(udpFrame(t, camMAC, hostMAC, camIP, hostIP, 5683, 40000), packet.LayerTypeEthernet), 1, 60)
	if !ok || len(e.Actions) != 0 {
		t.Fatalf("silent-device traffic not denied: %+v ok=%v", e, ok)
	}
	if len(tbl.Entries()) != 4 {
		t.Errorf("empty profile compiled %d entries, want 4", len(tbl.Entries()))
	}
}
