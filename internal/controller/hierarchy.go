package controller

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/policy"
	"iotsec/internal/telemetry"
)

// PostureSink receives recomputed postures for devices whose
// treatment changed; the enforcement layer (µmbox orchestrator) wires
// in here. ctx carries the causal trace of the event that forced the
// recomputation, so enforcement spans and journal entries link back
// to it.
type PostureSink func(ctx context.Context, deviceName string, p policy.Posture, version uint64)

// Global is the logically centralized controller: it owns the
// authoritative view and the full policy, recomputing postures on
// every committed change.
type Global struct {
	View *View
	fsm  *policy.FSM

	mu           sync.Mutex
	sink         PostureSink
	lastPostures map[string]string // device → posture key

	// commitTimes retains the commit wall-clock of recent versions so
	// the enforcement layer can measure event→enforcement latency
	// (Figure 2's end-to-end loop). Bounded to the last commitWindow
	// versions.
	commitMu    sync.Mutex
	commitTimes map[uint64]time.Time

	recomputes atomic.Uint64
	changes    atomic.Uint64

	fleetOnce sync.Once
	fleet     *FleetAggregator
}

// commitWindow bounds Global's retained commit timestamps.
const commitWindow = 4096

// NewGlobal builds the global controller over a fresh view.
func NewGlobal(fsm *policy.FSM, sink PostureSink) *Global {
	g := &Global{
		View:         NewView(),
		fsm:          fsm,
		sink:         sink,
		lastPostures: make(map[string]string),
		commitTimes:  make(map[uint64]time.Time),
	}
	g.View.Observe(func(ctx context.Context, c ViewChange) {
		g.recordCommit(c.Version, c.When)
		g.reconcile(ctx, c.Version)
	})
	return g
}

// recordCommit retains a version's commit time (bounded window).
func (g *Global) recordCommit(version uint64, when time.Time) {
	g.commitMu.Lock()
	g.commitTimes[version] = when
	delete(g.commitTimes, version-commitWindow) // monotonic versions: evict the tail
	g.commitMu.Unlock()
}

// CommitTime reports when the given store version was committed, if
// still retained.
func (g *Global) CommitTime(version uint64) (time.Time, bool) {
	g.commitMu.Lock()
	defer g.commitMu.Unlock()
	t, ok := g.commitTimes[version]
	return t, ok
}

// reconcile recomputes all postures and pushes the deltas.
func (g *Global) reconcile(ctx context.Context, version uint64) {
	g.recomputes.Add(1)
	mRecomputes.Inc()
	state := g.View.State()
	postures := g.fsm.Lookup(state)

	g.mu.Lock()
	var changed []struct {
		dev string
		p   policy.Posture
	}
	for dev, p := range postures {
		key := p.Key()
		if g.lastPostures[dev] != key {
			g.lastPostures[dev] = key
			changed = append(changed, struct {
				dev string
				p   policy.Posture
			}{dev, p})
		}
	}
	sink := g.sink
	g.mu.Unlock()

	for _, c := range changed {
		g.changes.Add(1)
		mPostureChanges.Inc()
		if sink != nil {
			sink(ctx, c.dev, c.p, version)
		}
	}
}

// Metrics reports recomputation and posture-change counts.
func (g *Global) Metrics() (recomputes, postureChanges uint64) {
	return g.recomputes.Load(), g.changes.Load()
}

// Hierarchy splits event handling between per-partition local
// controllers and the global controller (§5.1): events whose policy
// consequences stay within one partition are resolved locally;
// everything else escalates and pays the global round trip.
type Hierarchy struct {
	Global       *Global
	partitioning *Partitioning
	fsm          *policy.FSM
	sink         PostureSink

	// GlobalDelay models the extra round trip an escalation pays
	// (zero = no modeling).
	GlobalDelay time.Duration

	// localVars[g] is the variable support a partition can resolve
	// alone; globalVars is the remainder.
	localRuleVars map[int]map[string]bool
	globalVars    map[string]bool

	// localRules retains each partition's delegated rule subset so a
	// replacement local can be rebuilt after a failover.
	localRules map[int][]policy.Rule

	locals map[int]*Local

	localHandled atomic.Uint64
	escalated    atomic.Uint64

	// fleetStats, when attached, carries per-partition telemetry up the
	// rollup plane; nil keeps the hot path at one atomic load + branch.
	fleetStats atomic.Pointer[fleetStatsSet]

	// rehomes, when non-nil, overrides event routing for failed-over
	// partitions (see rehome.go). Copy-on-write: the hot path pays one
	// atomic load + nil branch until the first failover.
	rehomes  atomic.Pointer[rehomeTable]
	rehomeMu sync.Mutex
	// adopted counts extra devices each surviving group hosts, so
	// consecutive failovers spread deterministically by load.
	adopted map[int]int
}

// Local is one partition's controller: it keeps a local view and
// resolves partition-local rules itself.
type Local struct {
	Group int
	View  *View
	fsm   *policy.FSM // the partition-local rule subset
	sink  PostureSink

	// down is the crash flag: a dead local absorbs nothing until the
	// supervisor declares it failed and re-homes its partition.
	down atomic.Bool

	mu           sync.Mutex
	lastPostures map[string]string
}

// Alive reports whether the local controller is running.
func (l *Local) Alive() bool { return !l.down.Load() }

// Kill crashes the local controller (chaos harnesses and fault
// injection): it stops absorbing events immediately. Its partition's
// devices are unprotected until the supervisor's deadman notices and
// re-homes them — exactly the window the failover machinery bounds.
func (l *Local) Kill() { l.down.Store(true) }

// Postures snapshots the local's last pushed posture keys (device →
// posture key) — checkpoint material.
func (l *Local) Postures() map[string]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]string, len(l.lastPostures))
	for dev, key := range l.lastPostures {
		out[dev] = key
	}
	return out
}

// seedPostures primes the posture cache from a checkpoint so the
// post-restore reconcile only pushes deltas instead of re-delivering
// every posture the dead controller had already enforced.
func (l *Local) seedPostures(m map[string]string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for dev, key := range m {
		l.lastPostures[dev] = key
	}
}

// NewHierarchy builds the hierarchy over a partitioning. Rules whose
// device and condition variables all fall within one partition are
// delegated to that partition's local controller; all other rules run
// globally. Environment variables are local to a partition when named
// in envLocality.
func NewHierarchy(fsm *policy.FSM, part *Partitioning, envLocality map[string]int, sink PostureSink) *Hierarchy {
	return NewHierarchyWithGlobal(NewGlobal(fsm, sink), fsm, part, envLocality, sink)
}

// NewHierarchyWithGlobal builds the hierarchy over an existing global
// controller (a platform that assembled its Global first can adopt the
// partition tier later). g must have been built over the same fsm.
func NewHierarchyWithGlobal(g *Global, fsm *policy.FSM, part *Partitioning, envLocality map[string]int, sink PostureSink) *Hierarchy {
	h := &Hierarchy{
		Global:        g,
		partitioning:  part,
		fsm:           fsm,
		sink:          sink,
		localRuleVars: make(map[int]map[string]bool),
		globalVars:    make(map[string]bool),
		localRules:    make(map[int][]policy.Rule),
		locals:        make(map[int]*Local),
		adopted:       make(map[int]int),
	}
	// Expose the partition shape on the default registry; the fixed id
	// means a rebuilt hierarchy replaces its predecessor's collector.
	part.ExportTelemetry(nil, "hierarchy")

	// Classify each rule.
	localRules := make(map[int][]policy.Rule)
	varGroup := func(v string) (int, bool) {
		if name, ok := strings.CutPrefix(v, "dev:"); ok {
			g := part.GroupOf(name)
			return g, g >= 0
		}
		if name, ok := strings.CutPrefix(v, "env:"); ok {
			g, ok := envLocality[name]
			return g, ok
		}
		return 0, false
	}
	for _, r := range fsm.Rules() {
		g := part.GroupOf(r.Device)
		local := g >= 0
		for _, c := range r.Conditions {
			cg, ok := varGroup(c.Var)
			if !ok || cg != g {
				local = false
				break
			}
		}
		if local {
			localRules[g] = append(localRules[g], r)
			if h.localRuleVars[g] == nil {
				h.localRuleVars[g] = make(map[string]bool)
			}
			for _, c := range r.Conditions {
				h.localRuleVars[g][c.Var] = true
			}
		} else {
			for _, c := range r.Conditions {
				h.globalVars[c.Var] = true
			}
		}
	}

	// Build the local controllers. Each local FSM gets a *scoped*
	// domain holding only its partition's devices and the env vars its
	// rules reference: FSM.Lookup walks the whole domain to assign
	// default postures, so sharing the fleet-wide domain would make
	// every local reconcile O(fleet) instead of O(shard).
	h.localRules = localRules
	for g := range localRules {
		h.locals[g] = h.newLocalFor(g)
	}
	return h
}

// newLocalFor builds a fresh local controller for one partition from
// its retained rule subset — used both at construction and when a
// replacement is rebuilt after a failover.
func (h *Hierarchy) newLocalFor(g int) *Local {
	rules := h.localRules[g]
	scoped := policy.NewDomain()
	if g >= 0 && g < len(h.partitioning.Groups) {
		for _, dev := range h.partitioning.Groups[g] {
			scoped.AddDevice(dev, h.fsm.Domain.DeviceContexts(dev)...)
		}
	}
	for _, r := range rules {
		for _, c := range r.Conditions {
			if name, ok := strings.CutPrefix(c.Var, "env:"); ok {
				scoped.AddEnvVar(name, h.fsm.Domain.EnvLevels(name)...)
			}
		}
	}
	lf := policy.NewFSM(scoped)
	for _, r := range rules {
		lf.AddRule(r)
	}
	local := &Local{
		Group:        g,
		View:         NewView(),
		fsm:          lf,
		sink:         h.sink,
		lastPostures: make(map[string]string),
	}
	local.View.Observe(func(ctx context.Context, c ViewChange) { local.reconcile(ctx, c.Version) })
	return local
}

// reconcile runs the local rule subset.
func (l *Local) reconcile(ctx context.Context, version uint64) {
	state := l.View.State()
	postures := l.fsm.Lookup(state)
	l.mu.Lock()
	var changed []struct {
		dev string
		p   policy.Posture
	}
	for dev, p := range postures {
		// Only devices in this group are authoritative locally.
		key := p.Key()
		if l.lastPostures[dev] != key {
			l.lastPostures[dev] = key
			changed = append(changed, struct {
				dev string
				p   policy.Posture
			}{dev, p})
		}
	}
	sink := l.sink
	l.mu.Unlock()
	for _, c := range changed {
		if sink != nil {
			sink(ctx, c.dev, c.p, version)
		}
	}
}

// HandleDeviceEvent routes an event: the owning partition's local
// controller absorbs it; only events touching globally referenced
// variables escalate (paying GlobalDelay). The trace carried by ctx
// crosses the local/global boundary with the event, so escalated
// enforcement still links back to the original sensor reading.
func (h *Hierarchy) HandleDeviceEvent(ctx context.Context, e device.Event) {
	group := h.partitioning.GroupOf(e.Device)
	local, failGlobal := h.routeFor(group)
	if local != nil {
		local.View.HandleDeviceEvent(ctx, e)
	}

	// Re-homed-to-global partitions route everything up: the global
	// controller runs the full policy, so it can stand in for the dead
	// local at the cost of the global round trip (degraded mode).
	escalate := h.eventGloballyRelevant(e) || failGlobal
	h.recordShardEvent(group, e.Device, escalate)
	if escalate {
		h.escalated.Add(1)
		mEscalations.Inc()
		ctx, span := telemetry.StartSpan(ctx, "controller.escalate")
		span.SetAttr("device", e.Device)
		if h.GlobalDelay > 0 {
			time.Sleep(h.GlobalDelay)
		}
		h.Global.View.HandleDeviceEvent(ctx, e)
		span.End()
		return
	}
	h.localHandled.Add(1)
	mLocalHandled.Inc()
}

// eventGloballyRelevant decides whether the global policy could care
// about this event.
func (h *Hierarchy) eventGloballyRelevant(e device.Event) bool {
	// Context-affecting events matter if any global rule references
	// the device's context.
	switch e.Kind {
	case device.EventBackdoorAccess, device.EventAuthFailure:
		return h.globalVars["dev:"+e.Device]
	case device.EventStateChange, device.EventSensor:
		if attr, _, ok := strings.Cut(e.Detail, "="); ok {
			return h.globalVars["env:"+e.Device+"_"+attr]
		}
	}
	return false
}

// HandleEnv routes an environment reading to the owning partition (if
// local) and to the global view when globally referenced.
func (h *Hierarchy) HandleEnv(ctx context.Context, envVar, level string, group int, reason string) {
	local, failGlobal := h.routeFor(group)
	if local != nil {
		local.View.SetEnv(ctx, envVar, level, reason)
	}
	escalate := h.globalVars["env:"+envVar] || failGlobal
	h.recordShardEvent(group, envVar, escalate)
	if escalate {
		h.escalated.Add(1)
		mEscalations.Inc()
		ctx, span := telemetry.StartSpan(ctx, "controller.escalate")
		span.SetAttr("env", envVar)
		if h.GlobalDelay > 0 {
			time.Sleep(h.GlobalDelay)
		}
		h.Global.View.SetEnv(ctx, envVar, level, reason)
		span.End()
		return
	}
	h.localHandled.Add(1)
	mLocalHandled.Inc()
}

// routeFor resolves the partition's current controller: the
// replacement local after a re-home, the original while it is alive,
// or (nil, true) when the partition runs in degraded fail-global mode.
// A dead, not-yet-re-homed partition resolves to (nil, false) — its
// events are absorbed by nobody, which is exactly the unprotected
// window the supervisor's deadman bounds.
func (h *Hierarchy) routeFor(group int) (local *Local, failGlobal bool) {
	if rt := h.rehomes.Load(); rt != nil {
		if ent, ok := rt.targets[group]; ok {
			return ent.local, ent.local == nil
		}
	}
	if l, ok := h.locals[group]; ok && l.Alive() {
		return l, false
	}
	return nil, false
}

// Metrics reports locally absorbed vs escalated events.
func (h *Hierarchy) Metrics() (local, escalated uint64) {
	return h.localHandled.Load(), h.escalated.Load()
}

// Locals reports the number of local controllers.
func (h *Hierarchy) Locals() int { return len(h.locals) }

// LocalFor returns a partition's ORIGINAL local controller (nil when
// the partition has no delegated rules). Chaos harnesses crash
// controllers through it via Kill; routing consults routeFor, so a
// killed original never absorbs events even before the supervisor
// notices.
func (h *Hierarchy) LocalFor(group int) *Local { return h.locals[group] }
