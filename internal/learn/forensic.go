package learn

import (
	"fmt"
	"strings"

	"iotsec/internal/journal"
)

// ForensicChain is a journal timeline re-expressed in attack-graph
// vocabulary: the observed offensive moves (what the attacker / the
// anomaly evidence shows happening) and the defensive mitigations the
// platform answered with. It bridges the §4.2 model-library view
// (predicted attacks) and the journal's forensic view (observed
// attacks): the same AttackStep/Mitigation types render both, so a
// predicted path and a reconstructed incident can be compared
// side-by-side.
type ForensicChain struct {
	TraceID uint64
	// Observed is the detection-side evidence as attack steps.
	Observed []AttackStep
	// Applied is the enforcement the platform answered with.
	Applied []Mitigation
	// Complete mirrors Timeline.Complete: the loop closed.
	Complete bool
}

// FromTimeline translates one reconstructed journal timeline into an
// attack-graph chain. Detection-stage events become observed steps
// (anomalies and alerts as exploit evidence, device events as
// commands); controller/µmbox enforcement events become mitigations.
func FromTimeline(t *journal.Timeline) *ForensicChain {
	c := &ForensicChain{TraceID: t.TraceID, Complete: t.Complete()}
	for _, e := range t.Events {
		switch e.Type {
		case journal.TypeAnomaly, journal.TypeAlert:
			c.Observed = append(c.Observed, AttackStep{Kind: StepExploit, Device: e.Device})
		case journal.TypeDeviceEvent:
			c.Observed = append(c.Observed, AttackStep{Kind: StepCommand, Device: e.Device, Cmd: firstWord(e.Detail)})
		case journal.TypeFlowMod, journal.TypeMboxReconfig, journal.TypePosture:
			c.Applied = append(c.Applied, Mitigation{Device: e.Device, Cmd: string(e.Type)})
		}
	}
	return c
}

// firstWord trims a detail line to its leading token (the event kind
// or command name), dropping the ":"-separated tail.
func firstWord(detail string) string {
	if i := strings.IndexAny(detail, ": "); i >= 0 {
		return detail[:i]
	}
	return detail
}

// String renders the chain: the observed path in the attack-graph
// notation, then the mitigations.
func (c *ForensicChain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d observed: %s", c.TraceID, PathString(c.Observed))
	if len(c.Applied) > 0 {
		b.WriteString("\n  mitigated by:")
		for _, m := range c.Applied {
			fmt.Fprintf(&b, " %s(%s)", m.Cmd, m.Device)
		}
	}
	if c.Complete {
		b.WriteString("\n  loop closed (detect -> policy -> enforce)")
	}
	return b.String()
}

// ForensicReport renders chains for every causal trace a device was
// involved in — the journal's answer to "show me every attack this
// camera was part of, in attack-graph terms".
func ForensicReport(events []journal.Event, device string) string {
	timelines := journal.ReconstructDevice(events, device)
	if len(timelines) == 0 {
		return "no traced events for " + device
	}
	parts := make([]string, 0, len(timelines))
	for _, t := range timelines {
		parts = append(parts, FromTimeline(t).String())
	}
	return strings.Join(parts, "\n")
}
