package netsim

import (
	"fmt"
	"net"
	"sync"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/openflow"
)

// SwitchAgent connects a Switch to a controller over the southbound
// wire protocol: it punts table misses as PACKET_IN, applies FLOW_MOD
// and PACKET_OUT, answers FEATURES/ECHO/BARRIER/STATS, and reports
// expired entries as FLOW_REMOVED.
type SwitchAgent struct {
	sw   *Switch
	conn *openflow.Conn

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// ConnectAgent dials the controller at addr, runs the handshake
// passively (the controller drives it) and starts the agent loops.
func ConnectAgent(sw *Switch, addr string) (*SwitchAgent, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: agent dial controller: %w", err)
	}
	a := &SwitchAgent{
		sw:      sw,
		conn:    openflow.NewConn(raw),
		stopped: make(chan struct{}),
	}
	sw.SetPacketInHandler(a.onPacketIn)
	a.wg.Add(2)
	go a.readLoop()
	go a.expiryLoop()
	return a, nil
}

// onPacketIn relays a punted frame to the controller.
func (a *SwitchAgent) onPacketIn(inPort uint16, reason uint8, frame Frame) {
	_, _ = a.conn.Send(&openflow.PacketIn{
		DatapathID: a.sw.DatapathID(),
		InPort:     inPort,
		Reason:     reason,
		Data:       frame,
	})
}

// readLoop serves controller requests until the connection drops.
func (a *SwitchAgent) readLoop() {
	defer a.wg.Done()
	for {
		m, xid, err := a.conn.Receive()
		if err != nil {
			a.Stop()
			return
		}
		switch msg := m.(type) {
		case *openflow.Hello:
			_ = a.conn.SendWithXID(&openflow.Hello{}, xid)
		case *openflow.FeaturesRequest:
			_ = a.conn.SendWithXID(&openflow.FeaturesReply{
				DatapathID: a.sw.DatapathID(),
				Ports:      a.sw.PortIDs(),
			}, xid)
		case *openflow.Echo:
			if !msg.Reply {
				_ = a.conn.SendWithXID(&openflow.Echo{Reply: true, Payload: msg.Payload}, xid)
			}
		case *openflow.FlowMod:
			a.applyFlowMod(msg, xid)
		case *openflow.PacketOut:
			a.sw.ApplyActions(msg.Actions, msg.InPort, Frame(msg.Data))
		case *openflow.BarrierRequest:
			// Messages are processed in order on this single loop, so
			// everything before the barrier has already been applied.
			_ = a.conn.SendWithXID(&openflow.BarrierReply{}, xid)
		case *openflow.StatsRequest:
			in, out, miss, flows := a.sw.Stats()
			_ = a.conn.SendWithXID(&openflow.StatsReply{
				DatapathID: a.sw.DatapathID(),
				FlowCount:  uint32(flows),
				PacketsIn:  in,
				PacketsOut: out,
				TableMiss:  miss,
			}, xid)
		default:
			_ = a.conn.SendWithXID(&openflow.ErrorMsg{Code: 1, Text: "unsupported " + m.Type().String()}, xid)
		}
	}
}

func (a *SwitchAgent) applyFlowMod(fm *openflow.FlowMod, xid uint32) {
	switch fm.Command {
	case openflow.FlowAdd:
		a.sw.Table().Insert(openflow.FlowEntry{
			Match:       fm.Match,
			Priority:    fm.Priority,
			Actions:     fm.Actions,
			IdleTimeout: fm.IdleTimeout,
			HardTimeout: fm.HardTimeout,
			Cookie:      fm.Cookie,
		})
	case openflow.FlowDelete:
		a.sw.Table().Delete(fm.Match)
	case openflow.FlowDeleteByCookie:
		a.sw.Table().DeleteByCookie(fm.Cookie)
	default:
		_ = a.conn.SendWithXID(&openflow.ErrorMsg{Code: 2, Text: "unknown flow-mod command"}, xid)
		return
	}
	// Journal the application on the switch side of the wire; the
	// trace ID rode inside the FLOW_MOD, proving the causal chain
	// crossed the southbound protocol.
	journal.RecordTrace(fm.TraceID, journal.TypeFlowApplied, journal.Debug, "",
		fmt.Sprintf("dpid %d: %s prio %d cookie %#x", a.sw.DatapathID(), fm.Command, fm.Priority, fm.Cookie))
}

// expiryLoop periodically evicts timed-out flows and notifies the
// controller.
func (a *SwitchAgent) expiryLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-a.stopped:
			return
		case now := <-ticker.C:
			for _, e := range a.sw.ExpireFlows(now) {
				pkts, bytes := e.Stats()
				_, _ = a.conn.Send(&openflow.FlowRemoved{
					DatapathID: a.sw.DatapathID(),
					Match:      e.Match,
					Priority:   e.Priority,
					Cookie:     e.Cookie,
					Packets:    pkts,
					Bytes:      bytes,
				})
			}
		}
	}
}

// Stop tears the agent down and closes the southbound connection.
func (a *SwitchAgent) Stop() {
	a.stopOnce.Do(func() {
		close(a.stopped)
		_ = a.conn.Close()
	})
}

// Wait blocks until the agent's goroutines have exited.
func (a *SwitchAgent) Wait() { a.wg.Wait() }
