package slo_test

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/core"
	"iotsec/internal/device"
	"iotsec/internal/ids"
	"iotsec/internal/journal"
	"iotsec/internal/netsim"
	"iotsec/internal/openflow"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
	"iotsec/internal/resilience"
	"iotsec/internal/slo"
	"iotsec/internal/telemetry"
)

// slPlatform builds a one-device platform whose policy isolates the
// wemo plug on suspicion, with a steering app listening. The switch
// side is attached by the caller (real agent or fake switch).
func sloPlatform(t *testing.T, ip string) (*core.Platform, *controller.Steering, string) {
	t.Helper()
	d := policy.NewDomain()
	d.AddDevice("wemo", policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "quarantine-wemo-suspicious",
		Conditions: []policy.Condition{policy.DeviceIs("wemo", policy.ContextSuspicious)},
		Device:     "wemo",
		Posture:    policy.Posture{Isolate: true},
		Priority:   100,
	})
	p, err := core.New(core.Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	plug := device.NewCamera("wemo", packet.MustParseIPv4(ip)).Device
	if _, err := p.AddDevice(plug); err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)

	s := controller.NewSteering(nil)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return p, s, addr
}

// waitSwitches blocks until the steering app has n registered switch
// sessions.
func waitSwitches(t *testing.T, s *controller.Steering, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for s.Switches() != n {
		if time.Now().After(deadline) {
			t.Fatalf("steering never reached %d switches: %s", n, s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLiveAnomalyPopulatesEveryStage is the tentpole acceptance test:
// one injected anomaly, flowing through the real platform (FSM →
// steering → OpenFlow wire → switch agent → µmbox manager), must
// populate iotsec_mttr_stage_seconds for every canonical stage and an
// iotsec_mttr_e2e_seconds observation at least as large as the sum of
// the critical-path stage latencies — all measured online, with no
// journal replay.
func TestLiveAnomalyPopulatesEveryStage(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := slo.NewTracker(journal.Default, slo.Options{Registry: reg, ChainTimeout: 30 * time.Second})
	defer tr.Close()

	p, s, addr := sloPlatform(t, "10.0.0.41")
	agent, err := netsim.ConnectAgent(p.Switch, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Stop)
	waitSwitches(t, s, 1)
	p.UseSteering(s)

	p.ReportAnomaly(ids.Anomaly{
		Device: "wemo",
		Kind:   ids.AnomalyRate,
		Detail: "synthetic: 40 msg/s against baseline 2.1",
		Score:  0.93,
		When:   time.Now(),
	})

	// The chain closes when the switch agent acknowledges the FLOW_MOD
	// (async over the wire) and the tracker folds it in.
	waitFor(t, "live chain completion", func() bool {
		v, ok := sample(reg, "iotsec_mttr_complete_total", "", nil)
		return ok && v >= 1
	})

	var criticalPath float64
	for _, stage := range slo.Stages {
		c, ok := sample(reg, "iotsec_mttr_stage_seconds", "_count", map[string]string{"stage": stage})
		if !ok || c < 1 {
			t.Errorf("stage %q count = %v (ok=%v), want >= 1", stage, c, ok)
		}
		if stage != slo.StageMboxReconfig {
			v, _ := sample(reg, "iotsec_mttr_stage_seconds", "_sum", map[string]string{"stage": stage})
			criticalPath += v
		}
	}
	e2e, ok := sample(reg, "iotsec_mttr_e2e_seconds", "_sum", nil)
	if !ok {
		t.Fatal("no e2e observation")
	}
	if e2e+1e-9 < criticalPath {
		t.Fatalf("e2e %gs < critical-path stage sum %gs: a stage delta overlaps", e2e, criticalPath)
	}
	if state, reason := tr.Health(); state != telemetry.HealthHealthy {
		t.Fatalf("tracker health = %v (%s), want healthy", state, reason)
	}
}

// fakeSwitch dials the steering endpoint and completes the OpenFlow
// handshake like a real switch, answers ECHO and BARRIER (so nothing
// upstream stalls), but silently swallows FLOW_MODs: rules are
// "accepted" on the wire yet never applied, and no flow-applied
// journal event ever appears — the stalled-enforcement failure the SLO
// plane exists to catch.
func fakeSwitch(t *testing.T, addr string, dpid uint64) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = raw.Close() })
	conn := openflow.NewConn(raw)
	go func() {
		for {
			m, xid, err := conn.Receive()
			if err != nil {
				return
			}
			switch msg := m.(type) {
			case *openflow.Hello:
				_, _ = conn.Send(&openflow.Hello{})
			case *openflow.FeaturesRequest:
				_, _ = conn.Send(&openflow.FeaturesReply{DatapathID: dpid, Ports: []uint16{1, 2, 3, 4}})
			case *openflow.Echo:
				if !msg.Reply {
					_ = conn.SendWithXID(&openflow.Echo{Reply: true, Payload: msg.Payload}, xid)
				}
			case *openflow.BarrierRequest:
				_ = conn.SendWithXID(&openflow.BarrierReply{}, xid)
			default:
				// FLOW_MOD and friends: accepted, never applied.
			}
		}
	}()
}

// TestStalledFlowModFlipsReadiness is the second acceptance test: with
// a switch that accepts but never applies FLOW_MODs, the chain times
// out under missing_stage="flow-applied" and /readyz turns 503 naming
// the mttr-pipeline component and the missing stage.
func TestStalledFlowModFlipsReadiness(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(2000, 0))
	reg := telemetry.NewRegistry()
	tr := slo.NewTracker(journal.Default, slo.Options{Registry: reg, ChainTimeout: time.Second, Clock: clk})
	defer tr.Close()
	tr.RegisterHealth(reg.Health())

	p, s, addr := sloPlatform(t, "10.0.0.42")
	fakeSwitch(t, addr, 77)
	waitSwitches(t, s, 1)
	p.UseSteering(s)

	p.ReportAnomaly(ids.Anomaly{Device: "wemo", Kind: ids.AnomalyRate, Detail: "synthetic burst", Score: 0.95})

	// The tracker must see the FLOW_MOD emission and the µmbox reconfig
	// before fake time moves, so the deadline reflects chain start.
	waitFor(t, "flow-mod stage observed", func() bool {
		v, ok := sample(reg, "iotsec_mttr_stage_seconds", "_count", map[string]string{"stage": slo.StageFlowMod})
		return ok && v >= 1
	})
	if got := tr.Inflight(); got != 1 {
		t.Fatalf("Inflight = %d, want 1 (chain waiting on flow-applied)", got)
	}

	clk.Advance(5 * time.Second)
	tr.Sync()
	waitFor(t, "incomplete sweep", func() bool { return tr.Incomplete() >= 1 })
	if v, ok := sample(reg, "iotsec_mttr_incomplete_total", "", map[string]string{"missing_stage": "flow-applied"}); !ok || v < 1 {
		t.Fatalf(`incomplete_total{missing_stage="flow-applied"} = %v (ok=%v), want >= 1`, v, ok)
	}

	// /readyz: 503, with the offending component and stage named.
	srv, taddr, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + taddr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d, want 503", resp.StatusCode)
	}
	var body telemetry.HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Ready {
		t.Fatal("/readyz body claims ready alongside a 503")
	}
	found := false
	for _, c := range body.Components {
		if c.Component != slo.Component {
			continue
		}
		found = true
		if c.State != telemetry.HealthDown || !c.Critical {
			t.Fatalf("component %+v, want critical and down", c)
		}
		if !strings.Contains(c.Reason, "flow-applied") {
			t.Fatalf("reason %q must name the missing stage", c.Reason)
		}
	}
	if !found {
		t.Fatalf("mttr-pipeline missing from /readyz body: %+v", body.Components)
	}

	// /healthz stays 200: a stalled enforcement path is a readiness
	// problem, not a liveness one.
	live, err := http.Get("http://" + taddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", live.StatusCode)
	}

	// Scrape carries the component gauge at 0 (down).
	if v, ok := sample(reg, "iotsec_component_health", "", map[string]string{"component": slo.Component}); !ok || v != 0 {
		t.Fatalf("iotsec_component_health{mttr-pipeline} = %v (ok=%v), want 0", v, ok)
	}
}
