// Command benchgate is the hot-path benchmark regression gate: it
// parses `go test -bench` output from stdin (or a file), compares each
// gated benchmark's ns/op against the reference values recorded in a
// BENCH_*.json baseline, and exits non-zero when any gated benchmark
// regressed more than the allowed percentage.
//
// Only benchmarks listed under the baseline's "gate.reference" map are
// gated; everything else in the stream is reported informationally.
// When a benchmark appears multiple times in the input (-count=N), the
// fastest run is compared — benchstat-style damping for noisy
// single-CPU runners.
//
// Usage:
//
//	go test -bench 'PacketDecode$|FlowTableLookup|IDSEngine' -benchtime=2s -count=3 . |
//	    go run ./cmd/benchgate -baseline BENCH_5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	Gate struct {
		MaxRegressionPct float64            `json:"max_regression_pct"`
		Reference        map[string]float64 `json:"reference"`
	} `json:"gate"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_5.json", "baseline JSON with a gate.reference map")
	input := flag.String("input", "-", "benchmark output to check ('-' = stdin)")
	maxPct := flag.Float64("max", 0, "override max regression percent (0 = use baseline's gate.max_regression_pct)")
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	limit := base.Gate.MaxRegressionPct
	if *maxPct > 0 {
		limit = *maxPct
	}
	if limit <= 0 {
		limit = 10
	}
	if len(base.Gate.Reference) == 0 {
		fatal(fmt.Errorf("%s has no gate.reference benchmarks", *baselinePath))
	}

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := parseBench(r)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(base.Gate.Reference))
	for name := range base.Gate.Reference {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		ref := base.Gate.Reference[name]
		got, ok := results[name]
		if !ok {
			fmt.Printf("FAIL  %-44s missing from benchmark output\n", name)
			failed = true
			continue
		}
		delta := (got - ref) / ref * 100
		status := "ok  "
		if delta > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-44s %10.1f ns/op  baseline %10.1f  (%+.1f%%, limit +%.0f%%)\n",
			status, name, got, ref, delta, limit)
	}
	if failed {
		fmt.Println("benchgate: hot-path regression detected")
		os.Exit(1)
	}
	fmt.Println("benchgate: all gated benchmarks within budget")
}

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &b, nil
}

// parseBench extracts "BenchmarkName<tab>iters<tab>N ns/op ..." lines,
// keeping the fastest result per benchmark. The trailing -N GOMAXPROCS
// suffix is stripped so names match the baseline regardless of runner
// core count.
func parseBench(r io.Reader) (map[string]float64, error) {
	results := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines are: name iterations value "ns/op" [more pairs]
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var nsPerOp float64
		found := false
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
				}
				nsPerOp, found = v, true
				break
			}
		}
		if !found {
			continue
		}
		if prev, ok := results[name]; !ok || nsPerOp < prev {
			results[name] = nsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
