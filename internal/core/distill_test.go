package core

import (
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
	"iotsec/internal/sigrepo"
)

// wemoIDSPolicy is the Wemo-behind-an-IDS posture both deployments
// run.
func wemoIDSPolicy() *policy.FSM {
	d := policy.NewDomain()
	d.AddDevice("wemo", policy.ContextNormal, policy.ContextSuspicious, policy.ContextCompromised)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:     "wemo-ids",
		Device:   "wemo",
		Posture:  policy.Posture{Modules: []policy.ModuleSpec{{Kind: "ids"}}},
		Priority: 1,
	})
	return f
}

// deployWemoHome builds one smart home with a Wemo, an owner host and
// an attacker host.
func deployWemoHome(t *testing.T, capture bool) (p *Platform, plug *device.SmartPlug, owner, attacker *device.Client) {
	t.Helper()
	var err error
	p, err = New(Options{Policy: wemoIDSPolicy(), Capture: capture})
	if err != nil {
		t.Fatal(err)
	}
	plug = device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.10"), device.Appliance{Name: "lamp"})
	if _, err := p.AddDevice(plug.Device); err != nil {
		t.Fatal(err)
	}
	mk := func(ip string) *device.Client {
		addr := packet.MustParseIPv4(ip)
		st := netsim.NewStack("host-"+ip, device.MACFor(addr), addr)
		p.AttachHost(st)
		t.Cleanup(st.Stop)
		return &device.Client{Stack: st, Timeout: time.Second}
	}
	owner = mk("10.0.0.2")
	attacker = mk("10.0.0.66")
	p.Start()
	t.Cleanup(p.Stop)
	return p, plug, owner, attacker
}

// TestDistillPublishProtectFleet is the full §4.1 story on live
// systems: deployment A is exploited, distills a signature from its
// own capture, publishes it; the community confirms; deployment B —
// same SKU, never attacked before — blocks the exploit on first
// contact.
func TestDistillPublishProtectFleet(t *testing.T) {
	repo := sigrepo.NewRepository("salt")
	srv := sigrepo.NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// --- Deployment A: the first victim (capture on) ---
	pA, plugA, ownerA, attackerA := deployWemoHome(t, true)
	for i := 0; i < 4; i++ {
		if _, err := ownerA.Call(plugA.IP(), device.Request{Cmd: "STATUS", User: "owner", Pass: "wemo123"}); err != nil {
			t.Fatal(err)
		}
		if _, err := attackerA.Call(plugA.IP(), device.Request{Cmd: "ON", Args: []string{device.PlugBackdoorToken}}); err != nil {
			t.Fatalf("attack %d should succeed pre-signature: %v", i, err)
		}
	}
	// Post-incident: distill and publish.
	rule, err := pA.DistillSignature("wemo", packet.MustParseIPv4("10.0.0.66"), "auto: wemo backdoor", 9300)
	if err != nil {
		t.Fatalf("distill: %v", err)
	}
	linkA, err := pA.ConnectSigrepo(addr, "home-a")
	if err != nil {
		t.Fatal(err)
	}
	defer linkA.Close()
	sig, err := linkA.Publish(plugA.Profile.SKU, rule, "distilled from capture")
	if err != nil {
		t.Fatalf("publish %q: %v", rule, err)
	}

	// --- Deployment B subscribes before the signature clears ---
	pB, plugB, ownerB, attackerB := deployWemoHome(t, false)
	linkB, err := pB.ConnectSigrepo(addr, "home-b")
	if err != nil {
		t.Fatal(err)
	}
	defer linkB.Close()

	// Community confirms (three votes clear quarantine).
	for _, org := range []string{"org-1", "org-2", "org-3"} {
		voter, err := sigrepo.DialClient(addr, org)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := voter.Vote(sig.ID, true); err != nil {
			t.Fatal(err)
		}
		voter.Close()
	}

	// Deployment B now blocks the first-ever attack it sees, while
	// the owner's app keeps working.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, err := attackerB.Call(plugB.IP(), device.Request{Cmd: "ON", Args: []string{device.PlugBackdoorToken}})
		if err != nil {
			break // blocked
		}
		if time.Now().After(deadline) {
			t.Fatal("deployment B never picked up the distilled signature")
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err := ownerB.Call(plugB.IP(), device.Request{Cmd: "STATUS", User: "owner", Pass: "wemo123"})
	if err != nil || !resp.OK {
		t.Fatalf("owner collateral damage: %v %+v", err, resp)
	}
}

func TestDistillRequiresCapture(t *testing.T) {
	p, _, _, _ := deployWemoHome(t, false)
	if _, err := p.DistillSignature("wemo", packet.MustParseIPv4("10.0.0.66"), "x", 1); err == nil {
		t.Error("distillation without capture should fail")
	}
}
