// Package ids implements the signature and anomaly detection engines
// the µmboxes embed: a Snort-dialect rule language with an
// Aho-Corasick multi-pattern content matcher, plus per-device
// behavioral profiles (rates, peers, command transitions) for anomaly
// detection — the two standard approaches §4 of the paper builds on.
package ids

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"iotsec/internal/packet"
)

// Action is what a rule does on match.
type Action string

// Rule actions.
const (
	ActionAlert Action = "alert"
	ActionBlock Action = "block"
	ActionPass  Action = "pass"
)

// Proto restricts a rule to a transport.
type Proto string

// Rule protocols.
const (
	ProtoTCP Proto = "tcp"
	ProtoUDP Proto = "udp"
	ProtoIP  Proto = "ip"
)

// AddrSpec is an IP predicate: any, exact, or CIDR prefix.
type AddrSpec struct {
	Any    bool
	IP     packet.IPv4Address
	Prefix uint8
}

// Matches applies the predicate.
func (a AddrSpec) Matches(ip packet.IPv4Address) bool {
	if a.Any {
		return true
	}
	p := a.Prefix
	if p == 0 {
		p = 32
	}
	mask := ^uint32(0)
	if p < 32 {
		mask <<= 32 - p
	}
	w := uint32(a.IP[0])<<24 | uint32(a.IP[1])<<16 | uint32(a.IP[2])<<8 | uint32(a.IP[3])
	g := uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
	return w&mask == g&mask
}

// PortSpec is a port predicate: any or exact.
type PortSpec struct {
	Any  bool
	Port uint16
}

// Matches applies the predicate.
func (p PortSpec) Matches(port uint16) bool { return p.Any || p.Port == port }

// Content is one payload pattern predicate.
type Content struct {
	Pattern []byte
	NoCase  bool
	// Negated inverts the predicate: the pattern must NOT appear.
	Negated bool
	// Offset skips this many payload bytes before searching.
	Offset int
	// Depth bounds the search to this many bytes from Offset
	// (0 = to the end).
	Depth int
}

// DsizeOp compares payload length.
type DsizeOp int

// Dsize comparators.
const (
	DsizeNone DsizeOp = iota
	DsizeEq
	DsizeGT
	DsizeLT
)

// Dsize is a payload-length predicate.
type Dsize struct {
	Op DsizeOp
	N  int
}

// Matches applies the predicate.
func (d Dsize) Matches(payloadLen int) bool {
	switch d.Op {
	case DsizeEq:
		return payloadLen == d.N
	case DsizeGT:
		return payloadLen > d.N
	case DsizeLT:
		return payloadLen < d.N
	default:
		return true
	}
}

// Rule is one parsed signature.
type Rule struct {
	Action   Action
	Proto    Proto
	SrcIP    AddrSpec
	SrcPort  PortSpec
	DstIP    AddrSpec
	DstPort  PortSpec
	Bidir    bool // "<>" matches either direction
	Msg      string
	SID      int
	Contents []Content
	Dsize    Dsize
}

// ErrBadRule reports a parse failure.
var ErrBadRule = errors.New("ids: malformed rule")

// ParseRule parses one rule line of the dialect:
//
//	alert tcp any any -> 10.0.0.0/24 80 (msg:"admin login"; content:"admin"; nocase; sid:1001;)
//
// Comment lines (#...) and blank lines yield (nil, nil).
func ParseRule(line string) (*Rule, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil, nil
	}
	head, opts, hasOpts := strings.Cut(line, "(")
	fields := strings.Fields(head)
	if len(fields) != 7 {
		return nil, fmt.Errorf("%w: want 'action proto src sport dir dst dport (...)', got %q", ErrBadRule, line)
	}
	r := &Rule{}
	switch Action(fields[0]) {
	case ActionAlert, ActionBlock, ActionPass:
		r.Action = Action(fields[0])
	default:
		return nil, fmt.Errorf("%w: action %q", ErrBadRule, fields[0])
	}
	switch Proto(fields[1]) {
	case ProtoTCP, ProtoUDP, ProtoIP:
		r.Proto = Proto(fields[1])
	default:
		return nil, fmt.Errorf("%w: proto %q", ErrBadRule, fields[1])
	}
	var err error
	if r.SrcIP, err = parseAddr(fields[2]); err != nil {
		return nil, err
	}
	if r.SrcPort, err = parsePort(fields[3]); err != nil {
		return nil, err
	}
	switch fields[4] {
	case "->":
	case "<>":
		r.Bidir = true
	default:
		return nil, fmt.Errorf("%w: direction %q", ErrBadRule, fields[4])
	}
	if r.DstIP, err = parseAddr(fields[5]); err != nil {
		return nil, err
	}
	if r.DstPort, err = parsePort(fields[6]); err != nil {
		return nil, err
	}
	if hasOpts {
		if err := parseOptions(r, strings.TrimSuffix(strings.TrimSpace(opts), ")")); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func parseAddr(s string) (AddrSpec, error) {
	if s == "any" {
		return AddrSpec{Any: true}, nil
	}
	ipStr, prefixStr, hasPrefix := strings.Cut(s, "/")
	ip, ok := packet.ParseIPv4(ipStr)
	if !ok {
		return AddrSpec{}, fmt.Errorf("%w: address %q", ErrBadRule, s)
	}
	spec := AddrSpec{IP: ip, Prefix: 32}
	if hasPrefix {
		n, err := strconv.Atoi(prefixStr)
		if err != nil || n < 0 || n > 32 {
			return AddrSpec{}, fmt.Errorf("%w: prefix %q", ErrBadRule, s)
		}
		spec.Prefix = uint8(n)
	}
	return spec, nil
}

func parsePort(s string) (PortSpec, error) {
	if s == "any" {
		return PortSpec{Any: true}, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > 65535 {
		return PortSpec{}, fmt.Errorf("%w: port %q", ErrBadRule, s)
	}
	return PortSpec{Port: uint16(n)}, nil
}

// parseOptions handles the parenthesized option list. Within
// content:"..." strings, escaped quotes (\") and semicolons are
// honored.
func parseOptions(r *Rule, s string) error {
	for _, opt := range splitOptions(s) {
		key, val, _ := strings.Cut(opt, ":")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "msg":
			r.Msg = unquote(val)
		case "content":
			c := Content{}
			if rest, neg := strings.CutPrefix(strings.TrimSpace(val), "!"); neg {
				c.Negated = true
				val = rest
			}
			c.Pattern = []byte(unquote(val))
			if len(c.Pattern) == 0 {
				return fmt.Errorf("%w: empty content", ErrBadRule)
			}
			r.Contents = append(r.Contents, c)
		case "nocase":
			if len(r.Contents) == 0 {
				return fmt.Errorf("%w: nocase before any content", ErrBadRule)
			}
			last := &r.Contents[len(r.Contents)-1]
			last.NoCase = true
			last.Pattern = []byte(strings.ToLower(string(last.Pattern)))
		case "offset":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 || len(r.Contents) == 0 {
				return fmt.Errorf("%w: offset %q", ErrBadRule, val)
			}
			r.Contents[len(r.Contents)-1].Offset = n
		case "depth":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 || len(r.Contents) == 0 {
				return fmt.Errorf("%w: depth %q", ErrBadRule, val)
			}
			r.Contents[len(r.Contents)-1].Depth = n
		case "dsize":
			d, err := parseDsize(val)
			if err != nil {
				return err
			}
			r.Dsize = d
		case "sid":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("%w: sid %q", ErrBadRule, val)
			}
			r.SID = n
		case "rev", "classtype", "priority", "reference":
			// Accepted and ignored: common in real rulesets.
		case "":
			// trailing semicolon
		default:
			return fmt.Errorf("%w: unknown option %q", ErrBadRule, key)
		}
	}
	return nil
}

// parseDsize parses "N", ">N" or "<N".
func parseDsize(val string) (Dsize, error) {
	op := DsizeEq
	switch {
	case strings.HasPrefix(val, ">"):
		op = DsizeGT
		val = val[1:]
	case strings.HasPrefix(val, "<"):
		op = DsizeLT
		val = val[1:]
	}
	n, err := strconv.Atoi(strings.TrimSpace(val))
	if err != nil || n < 0 {
		return Dsize{}, fmt.Errorf("%w: dsize %q", ErrBadRule, val)
	}
	return Dsize{Op: op, N: n}, nil
}

// splitOptions splits on semicolons outside quoted strings.
func splitOptions(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	escaped := false
	for _, c := range s {
		switch {
		case escaped:
			cur.WriteRune(c)
			escaped = false
		case c == '\\' && inQuote:
			cur.WriteRune(c)
			escaped = true
		case c == '"':
			inQuote = !inQuote
			cur.WriteRune(c)
		case c == ';' && !inQuote:
			if t := strings.TrimSpace(cur.String()); t != "" {
				out = append(out, t)
			}
			cur.Reset()
		default:
			cur.WriteRune(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out
}

// unquote strips surrounding quotes and unescapes \" and \\.
func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	s = strings.ReplaceAll(s, `\"`, `"`)
	s = strings.ReplaceAll(s, `\\`, `\`)
	return s
}

// ParseRules parses a whole ruleset, skipping blanks and comments.
func ParseRules(text string) ([]*Rule, error) {
	var rules []*Rule
	for i, line := range strings.Split(text, "\n") {
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		if r != nil {
			rules = append(rules, r)
		}
	}
	return rules, nil
}

// String renders the rule back into (canonical) dialect form.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s %s ", r.Action, r.Proto, addrString(r.SrcIP), portString(r.SrcPort))
	if r.Bidir {
		b.WriteString("<> ")
	} else {
		b.WriteString("-> ")
	}
	fmt.Fprintf(&b, "%s %s (", addrString(r.DstIP), portString(r.DstPort))
	if r.Msg != "" {
		fmt.Fprintf(&b, "msg:%q; ", r.Msg)
	}
	for _, c := range r.Contents {
		if c.Negated {
			fmt.Fprintf(&b, "content:!%q; ", string(c.Pattern))
		} else {
			fmt.Fprintf(&b, "content:%q; ", string(c.Pattern))
		}
		if c.NoCase {
			b.WriteString("nocase; ")
		}
		if c.Offset > 0 {
			fmt.Fprintf(&b, "offset:%d; ", c.Offset)
		}
		if c.Depth > 0 {
			fmt.Fprintf(&b, "depth:%d; ", c.Depth)
		}
	}
	switch r.Dsize.Op {
	case DsizeEq:
		fmt.Fprintf(&b, "dsize:%d; ", r.Dsize.N)
	case DsizeGT:
		fmt.Fprintf(&b, "dsize:>%d; ", r.Dsize.N)
	case DsizeLT:
		fmt.Fprintf(&b, "dsize:<%d; ", r.Dsize.N)
	}
	fmt.Fprintf(&b, "sid:%d;)", r.SID)
	return b.String()
}

func addrString(a AddrSpec) string {
	if a.Any {
		return "any"
	}
	if a.Prefix != 0 && a.Prefix != 32 {
		return fmt.Sprintf("%s/%d", a.IP, a.Prefix)
	}
	return a.IP.String()
}

func portString(p PortSpec) string {
	if p.Any {
		return "any"
	}
	return strconv.Itoa(int(p.Port))
}
