package profile

import (
	"iotsec/internal/openflow"
	"iotsec/internal/packet"
)

// Flow-rule priorities for profile enforcement. The deny floor sits
// above per-device tunnel steering (150–220) and ordinary forwarding
// (50) but below quarantine drops (400): an enforced device keeps its
// allowlist until the posture plane quarantines it outright, at which
// point nothing passes.
const (
	// PriorityDeny is the per-device drop-all floor.
	PriorityDeny uint16 = 250
	// PriorityAllow is where per-service allow rules start.
	PriorityAllow uint16 = 300
	// PriorityInfra is for ARP and other per-device infrastructure
	// allows that every profiled device needs regardless of services.
	PriorityInfra uint16 = 310
)

// CookieTag is the high byte ('P') of every profile-owned flow-rule
// cookie, mirroring the quarantine plane's 'Q' tag, so profile rules
// are identifiable and bulk-deletable on the switch.
const CookieTag = 0x50

// Cookie derives the profile-plane cookie for a device MAC.
func Cookie(mac packet.MACAddress) uint64 {
	c := uint64(CookieTag)
	for _, b := range mac {
		c = c<<8 | uint64(b)
	}
	return c
}

// Compile lowers an accepted profile into the default-deny flow rules
// for one concrete device: a MAC-keyed drop floor in both directions,
// ARP infrastructure allows, and one allow rule per authorized
// service. Every allow conjoins the device MAC with its registered
// address — privilege is pinned to identity, so a device that hops to
// another source address falls through to the deny floor with the
// profile still intact.
func Compile(p *Profile, id Identity) []*openflow.FlowMod {
	cookie := Cookie(id.MAC)
	add := func(match openflow.Match, priority uint16, actions ...openflow.Action) *openflow.FlowMod {
		return &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    match,
			Priority: priority,
			Actions:  actions,
			Cookie:   cookie,
		}
	}
	withARP := func(m openflow.Match) openflow.Match {
		m.Wildcards &^= openflow.WEtherType
		m.EtherType = packet.EtherTypeARP
		return m
	}

	mods := []*openflow.FlowMod{
		// Deny floor: everything to or from the device MAC drops
		// unless a higher-priority allow matches (no actions = drop).
		add(openflow.MatchAll().WithEthSrc(id.MAC), PriorityDeny),
		add(openflow.MatchAll().WithEthDst(id.MAC), PriorityDeny),
		// ARP must flow both ways or the device cannot resolve (or be
		// resolved by) any authorized peer.
		add(withARP(openflow.MatchAll().WithEthSrc(id.MAC)), PriorityInfra, openflow.Flood()),
		add(withARP(openflow.MatchAll().WithEthDst(id.MAC)), PriorityInfra, openflow.Flood()),
	}

	for _, s := range p.Services {
		proto := packet.IPProtocolTCP
		if s.Proto == "udp" {
			proto = packet.IPProtocolUDP
		}
		if s.Initiated {
			// Outbound request: device identity → remote:port.
			out := openflow.MatchAll().
				WithEthSrc(id.MAC).WithSrcIP(id.IP, 32).
				WithProto(proto).WithTpDst(s.Port)
			// Inbound reply: remote:port → device identity.
			in := openflow.MatchAll().
				WithEthDst(id.MAC).WithDstIP(id.IP, 32).
				WithProto(proto).WithTpSrc(s.Port)
			if r, pinned := s.RemoteIP(); pinned {
				out = out.WithDstIP(r, 32)
				in = in.WithSrcIP(r, 32)
			}
			mods = append(mods,
				add(out, PriorityAllow, openflow.Flood()),
				add(in, PriorityAllow, openflow.Flood()))
		} else {
			// Inbound request: anyone → device identity at its port.
			in := openflow.MatchAll().
				WithEthDst(id.MAC).WithDstIP(id.IP, 32).
				WithProto(proto).WithTpDst(s.Port)
			// Outbound reply: device identity from its port.
			out := openflow.MatchAll().
				WithEthSrc(id.MAC).WithSrcIP(id.IP, 32).
				WithProto(proto).WithTpSrc(s.Port)
			mods = append(mods,
				add(in, PriorityAllow, openflow.Flood()),
				add(out, PriorityAllow, openflow.Flood()))
		}
	}
	return mods
}
