package core

import (
	"context"
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

// newClient attaches a fresh host stack (attacker or app) to the
// platform's uplink.
func newClient(t *testing.T, p *Platform, ip string) *device.Client {
	t.Helper()
	addr := packet.MustParseIPv4(ip)
	st := netsim.NewStack("host-"+ip, device.MACFor(addr), addr)
	p.AttachHost(st)
	t.Cleanup(st.Stop)
	return &device.Client{Stack: st, Timeout: time.Second}
}

func TestFigure4PasswordProxyScenario(t *testing.T) {
	// Policy: the camera always sits behind a password proxy
	// enforcing administrator-chosen credentials.
	d := policy.NewDomain()
	d.AddDevice("cam")
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:   "cam-proxy",
		Device: "cam",
		Posture: policy.Posture{Modules: []policy.ModuleSpec{{
			Kind:   "password-proxy",
			Config: map[string]string{"user": "homeadmin", "pass": "s3cret"},
		}}},
		Priority: 1,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	if _, err := p.AddDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	attacker := newClient(t, p, "10.0.0.200")
	// The factory default that compromises the unprotected camera is
	// now dead on arrival.
	if _, err := attacker.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "admin", Pass: "admin"}); err == nil {
		t.Fatal("factory credentials still work through IoTSec")
	}
	// The administrator's credentials work.
	admin := newClient(t, p, "10.0.0.201")
	resp, err := admin.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "homeadmin", Pass: "s3cret"})
	if err != nil || !resp.OK {
		t.Fatalf("admin call failed: %v %+v", err, resp)
	}
}

// figure3Platform assembles the fire-alarm + window deployment with
// the Figure 3 policy.
func figure3Platform(t *testing.T) (*Platform, *device.FireAlarm, *device.WindowActuator) {
	t.Helper()
	d := policy.NewDomain()
	d.AddDevice("firealarm", policy.ContextNormal, policy.ContextSuspicious)
	d.AddDevice("window", policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "alarm-suspicious-blocks-window-open",
		Conditions: []policy.Condition{policy.DeviceIs("firealarm", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{BlockCommands: []string{"OPEN"}},
		Priority:   10,
	})
	f.AddRule(policy.Rule{
		Name:       "window-suspicious-robot-check",
		Conditions: []policy.Condition{policy.DeviceIs("window", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{Modules: []policy.ModuleSpec{{Kind: "robot-check"}}},
		Priority:   10,
	})
	p, err := New(Options{Policy: f, ChallengeSolution: "tulip"})
	if err != nil {
		t.Fatal(err)
	}
	alarm := device.NewFireAlarm("firealarm", packet.MustParseIPv4("10.0.0.20"))
	win := device.NewWindowActuator("window", packet.MustParseIPv4("10.0.0.21"))
	if _, err := p.AddDevice(alarm.Device); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddDevice(win.Device); err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)
	return p, alarm, win
}

func TestFigure3BackdoorLocksWindow(t *testing.T) {
	p, alarm, win := figure3Platform(t)
	attacker := newClient(t, p, "10.0.0.210")

	// Sanity: before the attack, the window opens with its (weak)
	// password.
	resp, err := attacker.Call(win.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: device.WindowPassword})
	if err != nil || !resp.OK {
		t.Fatalf("pre-attack open failed: %v %+v", err, resp)
	}
	if _, err := attacker.Call(win.IP(), device.Request{Cmd: "CLOSE", User: "admin", Pass: device.WindowPassword}); err != nil {
		t.Fatal(err)
	}

	// The attacker touches the fire alarm's backdoor. IoTSec flips
	// the alarm to suspicious and re-postures the WINDOW.
	if _, err := attacker.Call(alarm.IP(), device.Request{Cmd: "TEST", Args: []string{device.AlarmBackdoorToken}}); err != nil {
		t.Fatalf("backdoor call: %v", err)
	}
	if !p.WaitForContext("firealarm", policy.ContextSuspicious, 2*time.Second) {
		t.Fatal("view never marked the alarm suspicious")
	}
	// Now the break-in step is dead: OPEN is blocked in-network even
	// with valid credentials.
	time.Sleep(20 * time.Millisecond) // let the reconfigure land
	if _, err := attacker.Call(win.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: device.WindowPassword}); err == nil {
		t.Fatal("window OPEN still possible after alarm compromise")
	}
	if win.Get("window") == "open" {
		t.Fatal("window physically opened")
	}
	// CLOSE (not in the block list) still works — the posture is
	// surgical, not an outage.
	if resp, err := attacker.Call(win.IP(), device.Request{Cmd: "CLOSE", User: "admin", Pass: device.WindowPassword}); err != nil || !resp.OK {
		t.Fatalf("CLOSE should still pass: %v %+v", err, resp)
	}
}

func TestFigure3BruteForceTriggersRobotCheck(t *testing.T) {
	p, _, win := figure3Platform(t)
	attacker := newClient(t, p, "10.0.0.211")

	// Online brute force: five wrong PINs.
	for i := 0; i < 5; i++ {
		resp, err := attacker.Call(win.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: "9999"})
		if err != nil {
			t.Fatalf("attempt %d transport error: %v", i, err)
		}
		if resp.OK {
			t.Fatal("wrong PIN accepted")
		}
	}
	if !p.WaitForContext("window", policy.ContextSuspicious, 2*time.Second) {
		t.Fatal("brute force never escalated")
	}
	time.Sleep(20 * time.Millisecond)

	// The brute-forcer's scripted attempts now die at the robot
	// check, even with the CORRECT password.
	if _, err := attacker.Call(win.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: device.WindowPassword}); err == nil {
		t.Fatal("scripted request passed the robot check")
	}
	// A human presenting the challenge solution gets through.
	resp, err := attacker.Call(win.IP(), device.Request{
		Cmd: "OPEN", User: "admin", Pass: device.WindowPassword,
		Args: []string{"captcha:tulip"},
	})
	if err != nil || !resp.OK {
		t.Fatalf("challenged request failed: %v %+v", err, resp)
	}
	if win.Get("window") != "open" {
		t.Error("window did not open for the verified human")
	}
}

func TestFigure5CrossDevicePolicy(t *testing.T) {
	// Policy: the Wemo plug's ON command requires the camera to see a
	// person (occupancy=home), expressed as a context gate bound to
	// the global view.
	d := policy.NewDomain()
	d.AddDevice("wemo")
	d.AddDevice("cam")
	d.AddEnvVar(envsim.VarOccupancy, "away", "home")
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:   "oven-needs-person",
		Device: "wemo",
		Posture: policy.Posture{Modules: []policy.ModuleSpec{{
			Kind: "context-gate",
			Config: map[string]string{
				"guard":         "ON",
				"require_env":   envsim.VarOccupancy,
				"require_value": "home",
			},
		}}},
		Priority: 1,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.30"), device.Appliance{
		Name: "oven", PowerVar: "oven_power", Watts: 1800, HeatVar: "oven_heat_rate", HeatRate: 0.02,
	})
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.31"))
	if _, err := p.AddDevice(plug.Device); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddDevice(cam.Device); err != nil {
		t.Fatal(err)
	}

	// Nobody home.
	p.Env.Set(envsim.VarOccupancy, 0)
	p.Start()
	defer p.Stop()
	p.RunEnvironment(1) // propagate occupancy=away into the view

	attacker := newClient(t, p, "10.0.0.220")
	// Remote attacker uses the Wemo backdoor: the gate must block ON.
	if _, err := attacker.Call(plug.IP(), device.Request{Cmd: "ON", Args: []string{device.PlugBackdoorToken}}); err == nil {
		t.Fatal("ON reached the plug while nobody home")
	}
	if plug.Get("power") == "on" {
		t.Fatal("oven powered while away")
	}

	// Person comes home; the same command now passes (legitimate use
	// keeps working — context-aware, not static).
	p.Env.Set(envsim.VarOccupancy, 1)
	p.RunEnvironment(1)
	time.Sleep(10 * time.Millisecond)
	resp, err := attacker.Call(plug.IP(), device.Request{Cmd: "ON", Args: []string{device.PlugBackdoorToken}})
	if err != nil || !resp.OK {
		t.Fatalf("ON while home failed: %v %+v", err, resp)
	}
	if plug.Get("power") != "on" {
		t.Error("plug not on")
	}
}

func TestIsolationPosture(t *testing.T) {
	d := policy.NewDomain()
	d.AddDevice("stb", policy.ContextNormal, policy.ContextCompromised)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "quarantine-compromised",
		Conditions: []policy.Condition{policy.DeviceIs("stb", policy.ContextCompromised)},
		Device:     "stb",
		Posture:    policy.Posture{Isolate: true},
		Priority:   10,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	stb := device.NewSetTopBox("stb", packet.MustParseIPv4("10.0.0.40"))
	if _, err := p.AddDevice(stb.Device); err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	client := newClient(t, p, "10.0.0.230")
	if resp, err := client.Call(stb.IP(), device.Request{Cmd: "INFO"}); err != nil || !resp.OK {
		t.Fatalf("pre-quarantine call failed: %v %+v", err, resp)
	}
	// The admin marks it compromised (e.g., after a sigrepo alert).
	p.Global.View.SetDeviceContext(context.Background(), "stb", policy.ContextCompromised, "manual quarantine")
	time.Sleep(20 * time.Millisecond)
	if _, err := client.Call(stb.IP(), device.Request{Cmd: "INFO"}); err == nil {
		t.Fatal("isolated device still reachable")
	}
}

func TestSignatureRuleDeployment(t *testing.T) {
	// An IDS posture starts with zero rules; a crowdsourced signature
	// arrives and the running µmbox picks it up, flagging the device
	// on match.
	d := policy.NewDomain()
	d.AddDevice("wemo", policy.ContextNormal, policy.ContextSuspicious, policy.ContextCompromised)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:     "wemo-ids",
		Device:   "wemo",
		Posture:  policy.Posture{Modules: []policy.ModuleSpec{{Kind: "ids"}}},
		Priority: 1,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.50"), device.Appliance{Name: "lamp"})
	if _, err := p.AddDevice(plug.Device); err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	client := newClient(t, p, "10.0.0.240")

	// Backdoor traffic passes silently pre-signature (transport OK).
	if _, err := client.Call(plug.IP(), device.Request{Cmd: "OFF", Args: []string{device.PlugBackdoorToken}}); err != nil {
		t.Fatalf("pre-signature call: %v", err)
	}
	if p.Global.View.DeviceContext("wemo") == policy.ContextCompromised {
		t.Skip("backdoor event already escalated — fine, but this test targets the IDS path")
	}

	// The community publishes the backdoor token signature.
	sig := `block tcp any any -> any 80 (msg:"wemo backdoor token"; content:"` + device.PlugBackdoorToken + `"; sid:9001;)`
	if err := p.AddSignatureRule(plug.Profile.SKU, sig); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)

	// The same attack now dies in the IDS, and the view escalates to
	// compromised (block-action alert).
	if _, err := client.Call(plug.IP(), device.Request{Cmd: "OFF", Args: []string{device.PlugBackdoorToken}}); err == nil {
		t.Fatal("signature did not block the backdoor traffic")
	}
	if !p.WaitForContext("wemo", policy.ContextCompromised, 2*time.Second) {
		t.Error("block alert did not escalate the context")
	}
}

func TestMetricsAndManagerIntegration(t *testing.T) {
	p, _, _ := figure3Platform(t)
	boots, mean, _ := p.Manager.Metrics()
	if boots != 2 {
		t.Errorf("boots = %d", boots)
	}
	if mean <= 0 {
		t.Errorf("mean boot = %v", mean)
	}
	reconf, _ := p.Metrics()
	if reconf == 0 {
		t.Error("no initial posture applications recorded")
	}
}

func TestHotPlugDeviceGetsPostureImmediately(t *testing.T) {
	d := policy.NewDomain()
	d.AddDevice("cam")
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:   "cam-proxy",
		Device: "cam",
		Posture: policy.Posture{Modules: []policy.ModuleSpec{{
			Kind:   "password-proxy",
			Config: map[string]string{"user": "homeadmin", "pass": "pw"},
		}}},
		Priority: 1,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	p.Start() // started BEFORE the device exists
	defer p.Stop()

	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	if _, err := p.AddDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	attacker := newClient(t, p, "10.0.0.200")
	// The proxy must already be in place — no window of exposure.
	if _, err := attacker.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "admin", Pass: "admin"}); err == nil {
		t.Fatal("hot-plugged device exposed before posture applied")
	}
	if resp, err := attacker.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "homeadmin", Pass: "pw"}); err != nil || !resp.OK {
		t.Fatalf("admin path broken: %v %+v", err, resp)
	}
}
