package packet

import (
	"fmt"
	"sync"
)

// Decoder is a reusable decoding context: every layer struct and the
// Packet itself are pre-allocated once and overwritten on each Decode,
// so the steady-state data path decodes frames without touching the
// heap.
//
// Reuse contract: the *Packet returned by Decode (and every layer
// reached through it) aliases the Decoder's internal storage and is
// valid only until the next Decode call on the same Decoder. Callers
// that need a packet to outlive the next frame — or to share it across
// goroutines — must use the eager package-level Decode, which dedicates
// a fresh Decoder to the packet. A Decoder itself is not safe for
// concurrent use; concurrent paths take one per frame from GetDecoder.
type Decoder struct {
	eth  Ethernet
	arp  ARP
	ip   IPv4
	tcp  TCP
	udp  UDP
	dns  DNS
	pay  Payload
	fail DecodeFailure

	pkt    Packet
	layers [8]Layer
}

// NewDecoder returns a Decoder ready for its first Decode.
func NewDecoder() *Decoder { return &Decoder{} }

// layerFor returns the pre-allocated decoder for the given type, or nil
// for types without one (mirroring newLayer).
func (d *Decoder) layerFor(t LayerType) DecodingLayer {
	switch t {
	case LayerTypeEthernet:
		return &d.eth
	case LayerTypeARP:
		return &d.arp
	case LayerTypeIPv4:
		return &d.ip
	case LayerTypeTCP:
		return &d.tcp
	case LayerTypeUDP:
		return &d.udp
	case LayerTypeDNS:
		return &d.dns
	case LayerTypePayload:
		return &d.pay
	default:
		return nil
	}
}

// Decode parses data starting at the given first layer type, reusing
// the Decoder's pre-allocated layers. Like the package-level Decode it
// never fails outright: unparseable bytes become a trailing
// DecodeFailure layer.
//
// DNS is parsed lazily: label decompression is the one step that must
// allocate (label strings), and the flow-table and IDS paths never look
// at it. The sub-parse runs on first access through any Packet method
// that could observe it (Layers, Layer, DNS, ApplicationPayload,
// ErrorLayer, String).
func (d *Decoder) Decode(data []byte, first LayerType) *Packet {
	d.pkt = Packet{data: data, layers: d.layers[:0], dec: d}
	p := &d.pkt
	rest := data
	next := first
	for len(rest) > 0 && next != LayerTypeInvalid {
		if next == LayerTypeDNS {
			p.lazyRest = rest
			return p
		}
		layer := d.layerFor(next)
		if layer == nil {
			_ = d.pay.DecodeFromBytes(rest)
			p.layers = append(p.layers, &d.pay)
			return p
		}
		if err := layer.DecodeFromBytes(rest); err != nil {
			d.fail = DecodeFailure{Err: fmt.Errorf("decoding %s: %w", next, err)}
			d.fail.contents = rest
			p.layers = append(p.layers, &d.fail)
			return p
		}
		p.layers = append(p.layers, layer)
		rest = layer.LayerPayload()
		next = layer.NextLayerType()
	}
	return p
}

// materialize finishes a lazily deferred DNS sub-parse, continuing the
// decode chain exactly as the eager loop would have.
func (p *Packet) materialize() {
	if p.lazyRest == nil {
		return
	}
	rest := p.lazyRest
	p.lazyRest = nil
	next := LayerTypeDNS
	for len(rest) > 0 && next != LayerTypeInvalid {
		var layer DecodingLayer
		if p.dec != nil {
			layer = p.dec.layerFor(next)
		} else {
			layer = newLayer(next)
		}
		if layer == nil {
			pl := &Payload{}
			_ = pl.DecodeFromBytes(rest)
			p.layers = append(p.layers, pl)
			return
		}
		if err := layer.DecodeFromBytes(rest); err != nil {
			var fail *DecodeFailure
			if p.dec != nil {
				p.dec.fail = DecodeFailure{}
				fail = &p.dec.fail
			} else {
				fail = &DecodeFailure{}
			}
			fail.Err = fmt.Errorf("decoding %s: %w", next, err)
			fail.contents = rest
			p.layers = append(p.layers, fail)
			return
		}
		p.layers = append(p.layers, layer)
		rest = layer.LayerPayload()
		next = layer.NextLayerType()
	}
}

// decoderPool recycles Decoders for data-path call sites that handle
// frames on multiple goroutines (switch and middlebox ports). Callers
// must be done with the returned Packet before PutDecoder.
var decoderPool = sync.Pool{New: func() any { return NewDecoder() }}

// GetDecoder takes a Decoder from the shared pool.
func GetDecoder() *Decoder { return decoderPool.Get().(*Decoder) }

// PutDecoder returns a Decoder to the shared pool. The Packet from its
// last Decode must no longer be referenced.
func PutDecoder(d *Decoder) { decoderPool.Put(d) }
