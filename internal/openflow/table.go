package openflow

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"iotsec/internal/packet"
)

// FlowEntry is one installed rule: a classifier, a priority, the
// actions to apply, and optional expiry.
type FlowEntry struct {
	Match    Match
	Priority uint16
	Actions  []Action
	// IdleTimeout evicts the entry after this long without a hit
	// (zero = never).
	IdleTimeout time.Duration
	// HardTimeout evicts the entry this long after installation
	// (zero = never).
	HardTimeout time.Duration
	// Cookie is an opaque controller tag used for bulk deletion.
	Cookie uint64

	installed time.Time
	lastHit   time.Time
	packets   uint64
	bytes     uint64
}

// Stats reports the entry's hit counters.
func (e *FlowEntry) Stats() (packets, bytes uint64) { return e.packets, e.bytes }

// String summarizes the rule.
func (e *FlowEntry) String() string {
	acts := make([]string, len(e.Actions))
	for i, a := range e.Actions {
		acts[i] = a.String()
	}
	actStr := "drop"
	if len(acts) > 0 {
		actStr = strings.Join(acts, ",")
	}
	return fmt.Sprintf("prio=%d %s -> %s", e.Priority, e.Match, actStr)
}

// FlowTable is a priority-ordered, thread-safe rule table. Lookup
// returns the highest-priority matching entry; ties break toward the
// earlier-installed entry.
type FlowTable struct {
	mu      sync.RWMutex
	entries []*FlowEntry // sorted by descending priority, stable
	seq     uint64
	// MissCount counts lookups that matched no entry.
	missCount uint64
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable { return &FlowTable{} }

// Insert installs the entry, replacing any existing entry with an
// identical match and priority.
func (t *FlowTable) Insert(e FlowEntry) {
	now := time.Now()
	e.installed = now
	e.lastHit = now
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, old := range t.entries {
		if old.Priority == e.Priority && old.Match == e.Match {
			t.entries[i] = &e
			return
		}
	}
	t.entries = append(t.entries, &e)
	sort.SliceStable(t.entries, func(i, j int) bool {
		return t.entries[i].Priority > t.entries[j].Priority
	})
}

// matchSubsumes reports whether every packet matching sub also matches
// the filter fields of f (used for OpenFlow-style delete filters: a
// filter with more wildcards deletes more entries).
func matchSubsumes(filter, sub Match) bool {
	if filter.Wildcards == WAll {
		return true
	}
	if filter.Wildcards&WInPort == 0 && (sub.Wildcards&WInPort != 0 || sub.InPort != filter.InPort) {
		return false
	}
	if filter.Wildcards&WEthSrc == 0 && (sub.Wildcards&WEthSrc != 0 || sub.EthSrc != filter.EthSrc) {
		return false
	}
	if filter.Wildcards&WEthDst == 0 && (sub.Wildcards&WEthDst != 0 || sub.EthDst != filter.EthDst) {
		return false
	}
	if filter.Wildcards&WEtherType == 0 && (sub.Wildcards&WEtherType != 0 || sub.EtherType != filter.EtherType) {
		return false
	}
	if filter.Wildcards&WSrcIP == 0 && (sub.Wildcards&WSrcIP != 0 || sub.SrcMask < filter.SrcMask || !prefixMatches(filter.SrcIP, sub.SrcIP, filter.SrcMask)) {
		return false
	}
	if filter.Wildcards&WDstIP == 0 && (sub.Wildcards&WDstIP != 0 || sub.DstMask < filter.DstMask || !prefixMatches(filter.DstIP, sub.DstIP, filter.DstMask)) {
		return false
	}
	if filter.Wildcards&WProto == 0 && (sub.Wildcards&WProto != 0 || sub.Proto != filter.Proto) {
		return false
	}
	if filter.Wildcards&WTpSrc == 0 && (sub.Wildcards&WTpSrc != 0 || sub.TpSrc != filter.TpSrc) {
		return false
	}
	if filter.Wildcards&WTpDst == 0 && (sub.Wildcards&WTpDst != 0 || sub.TpDst != filter.TpDst) {
		return false
	}
	return true
}

// Delete removes entries whose match is subsumed by the filter,
// returning how many were removed.
func (t *FlowTable) Delete(filter Match) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if matchSubsumes(filter, e.Match) {
			removed++
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return removed
}

// DeleteByCookie removes entries tagged with the cookie.
func (t *FlowTable) DeleteByCookie(cookie uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if e.Cookie == cookie && cookie != 0 {
			removed++
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return removed
}

// Lookup returns a copy of the highest-priority entry matching the
// packet, updating its counters. ok is false on a table miss.
func (t *FlowTable) Lookup(p *packet.Packet, inPort uint16, size int) (FlowEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.Match.Matches(p, inPort) {
			e.packets++
			e.bytes += uint64(size)
			e.lastHit = time.Now()
			return *e, true
		}
	}
	t.missCount++
	return FlowEntry{}, false
}

// Expire removes entries whose idle or hard timeout has passed as of
// now, returning the expired entries (copies) so the switch can emit
// FLOW_REMOVED notifications.
func (t *FlowTable) Expire(now time.Time) []FlowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var expired []FlowEntry
	kept := t.entries[:0]
	for _, e := range t.entries {
		idleDead := e.IdleTimeout > 0 && now.Sub(e.lastHit) >= e.IdleTimeout
		hardDead := e.HardTimeout > 0 && now.Sub(e.installed) >= e.HardTimeout
		if idleDead || hardDead {
			expired = append(expired, *e)
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return expired
}

// Len reports the number of installed entries.
func (t *FlowTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Misses reports how many lookups found no entry.
func (t *FlowTable) Misses() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.missCount
}

// Entries returns copies of all entries in priority order.
func (t *FlowTable) Entries() []FlowEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]FlowEntry, len(t.entries))
	for i, e := range t.entries {
		out[i] = *e
	}
	return out
}
