package experiment

import (
	"strings"
	"testing"

	"iotsec/internal/controller"
)

func TestRunFailoverChaos(t *testing.T) {
	var progress strings.Builder
	tbl, results, err := RunFailover(FailoverOptions{
		Sizes:      []int{512},
		ShardSize:  32,
		KillShards: 2,
		Progress:   &progress,
	})
	if err != nil {
		t.Fatalf("RunFailover: %v\n%s", err, progress.String())
	}
	if tbl.ID != "A12" {
		t.Fatalf("table ID = %q", tbl.ID)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if r.Killed != 2 {
		t.Fatalf("killed %d locals, want 2", r.Killed)
	}
	if r.ViolatingFrames != 0 {
		t.Fatalf("%d frames delivered to quarantined devices during the failover window", r.ViolatingFrames)
	}
	if r.WindowFrames == 0 {
		t.Fatal("no frames pumped during the failover window — the 0-violations claim is vacuous")
	}
	if !r.StateMatch {
		t.Fatalf("post-recovery state diverged: %s != %s", r.Fingerprint, r.ControlFP)
	}
	if r.Quarantined == 0 || r.QuarantinesRepushed < r.Quarantined {
		t.Fatalf("re-pushed %d quarantines for %d quarantined devices — union must cover intent",
			r.QuarantinesRepushed, r.Quarantined)
	}
	if r.EventsReplayed == 0 {
		t.Fatal("no journal events replayed — post-checkpoint wave did not travel")
	}
	if !r.TracesComplete {
		t.Fatal("failover journal traces incomplete")
	}
	if !r.WithinSLO {
		t.Fatalf("recovery p99 %.4fs over SLO", r.RecoveryP99Seconds)
	}
	if r.FailedOverShards != r.Killed {
		t.Fatalf("fleet view shows %d failed-over shards, want %d", r.FailedOverShards, r.Killed)
	}
	for _, rec := range r.Records {
		if rec.Target == "" || rec.Target == "global" {
			t.Fatalf("re-home target %q — expected a surviving shard in rehome mode", rec.Target)
		}
	}
}

func TestRunFailoverFailGlobal(t *testing.T) {
	_, results, err := RunFailover(FailoverOptions{
		Sizes:      []int{128},
		ShardSize:  32,
		KillShards: 1,
		FailMode:   controller.FailModeGlobal,
	})
	if err != nil {
		// Fail-global is degraded by design: the global controller runs
		// the full policy over restored state, so enforcement equality
		// with the control run is NOT part of its contract — only the
		// fail-closed quarantine guarantees are.
		if len(results) == 1 && results[0].ViolatingFrames == 0 && !results[0].StateMatch {
			t.Skipf("fail-global degraded as documented: %v", err)
		}
		t.Fatalf("RunFailover fail-global: %v", err)
	}
	r := results[0]
	if r.ViolatingFrames != 0 {
		t.Fatalf("%d violations in fail-global mode", r.ViolatingFrames)
	}
	for _, rec := range r.Records {
		if rec.Target != "global" {
			t.Fatalf("target %q, want global", rec.Target)
		}
	}
}
