package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"iotsec/internal/packet"
)

// Errors returned by the host stack.
var (
	ErrPortInUse    = errors.New("netsim: port already in use")
	ErrStackStopped = errors.New("netsim: stack stopped")
	ErrTimeout      = errors.New("netsim: operation timed out")
	ErrReset        = errors.New("netsim: connection reset by peer")
	ErrClosed       = errors.New("netsim: stream closed")
)

// UDPHandler receives a datagram addressed to a bound UDP port. It
// runs on the stack's port goroutine and must not block.
type UDPHandler func(srcIP packet.IPv4Address, srcPort uint16, payload []byte)

// Stack is a miniature host network stack bound to one fabric port: it
// answers ARP, demultiplexes IPv4/UDP, and offers reliable,
// message-oriented streams (a deliberately simplified TCP: SYN
// handshake, per-message sequence numbers, ACKs, retransmission,
// FIN/RST teardown). IoT devices, µmboxes and attack tools all ride on
// it.
type Stack struct {
	name string
	mac  packet.MACAddress
	ip   packet.IPv4Address
	port *Port
	net  *Network

	arpMu      sync.Mutex
	arpTable   map[packet.IPv4Address]packet.MACAddress
	arpPending map[packet.IPv4Address][]pendingSend

	udpMu       sync.RWMutex
	udpHandlers map[uint16]UDPHandler

	streamMu  sync.Mutex
	listeners map[uint16]StreamHandler
	conns     map[connKey]*Stream
	nextPort  uint16

	// RetransmitInterval and MaxRetransmits tune stream reliability
	// (shrunk in tests exercising loss).
	RetransmitInterval time.Duration
	MaxRetransmits     int

	stopOnce sync.Once
	stopped  chan struct{}
}

// pendingSend is an IP payload awaiting ARP resolution.
type pendingSend struct {
	serialize func(dstMAC packet.MACAddress) ([]byte, error)
}

// connKey identifies a stream by its 4-tuple (local side first).
type connKey struct {
	localPort  uint16
	remoteIP   packet.IPv4Address
	remotePort uint16
}

// NewStack creates a host stack. Attach it to the fabric with
// AttachStack or by wiring the stack's port manually.
func NewStack(name string, mac packet.MACAddress, ip packet.IPv4Address) *Stack {
	return &Stack{
		name:               name,
		mac:                mac,
		ip:                 ip,
		arpTable:           make(map[packet.IPv4Address]packet.MACAddress),
		arpPending:         make(map[packet.IPv4Address][]pendingSend),
		udpHandlers:        make(map[uint16]UDPHandler),
		listeners:          make(map[uint16]StreamHandler),
		conns:              make(map[connKey]*Stream),
		nextPort:           32768,
		RetransmitInterval: 25 * time.Millisecond,
		MaxRetransmits:     8,
		stopped:            make(chan struct{}),
	}
}

// Attach binds the stack to the fabric via a new port on network n.
func (s *Stack) Attach(n *Network) *Port {
	p := n.NewPort(s, 1)
	s.port = p
	s.net = n
	return p
}

// Network reports the fabric this stack is attached to (nil before
// Attach); callers use it to reach Network.Quiesce.
func (s *Stack) Network() *Network { return s.net }

// NodeName implements Node.
func (s *Stack) NodeName() string { return s.name }

// MAC returns the stack's hardware address.
func (s *Stack) MAC() packet.MACAddress { return s.mac }

// IP returns the stack's IPv4 address.
func (s *Stack) IP() packet.IPv4Address { return s.ip }

// Stop halts the stack: all streams error out and no further frames
// are processed.
func (s *Stack) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopped)
		s.streamMu.Lock()
		conns := make([]*Stream, 0, len(s.conns))
		for _, c := range s.conns {
			conns = append(conns, c)
		}
		s.streamMu.Unlock()
		for _, c := range conns {
			c.teardown(ErrStackStopped)
		}
	})
}

// HandleFrame implements Node.
func (s *Stack) HandleFrame(_ *Port, frame Frame) {
	select {
	case <-s.stopped:
		return
	default:
	}
	// One port per stack, but decode via the shared pool anyway: the
	// UDP/TCP handlers keep only payload byte slices (which point into
	// the per-delivery frame copy), never layer structs.
	dec := packet.GetDecoder()
	defer packet.PutDecoder(dec)
	p := dec.Decode(frame, packet.LayerTypeEthernet)
	eth := p.Ethernet()
	if eth == nil {
		return
	}
	if eth.DstMAC != s.mac && !eth.DstMAC.IsBroadcast() {
		return // not for us (switches may flood)
	}
	if arp, ok := p.Layer(packet.LayerTypeARP).(*packet.ARP); ok {
		s.handleARP(arp)
		return
	}
	ip := p.IPv4()
	if ip == nil || ip.DstIP != s.ip {
		return
	}
	switch {
	case p.UDP() != nil:
		s.handleUDP(ip, p.UDP())
	case p.TCP() != nil:
		s.handleTCP(ip, p.TCP())
	}
}

// --- ARP ---

func (s *Stack) handleARP(arp *packet.ARP) {
	switch arp.Operation {
	case packet.ARPRequest:
		if arp.TargetIP != s.ip {
			return
		}
		// Learn the asker, then reply.
		s.learnARP(arp.SenderIP, arp.SenderMAC)
		reply := &packet.ARP{
			Operation: packet.ARPReply,
			SenderMAC: s.mac, SenderIP: s.ip,
			TargetMAC: arp.SenderMAC, TargetIP: arp.SenderIP,
		}
		s.sendFrame(arp.SenderMAC, packet.EtherTypeARP, reply)
	case packet.ARPReply:
		s.learnARP(arp.SenderIP, arp.SenderMAC)
	}
}

// learnARP records a mapping and flushes queued sends.
func (s *Stack) learnARP(ip packet.IPv4Address, mac packet.MACAddress) {
	s.arpMu.Lock()
	s.arpTable[ip] = mac
	pending := s.arpPending[ip]
	delete(s.arpPending, ip)
	s.arpMu.Unlock()
	for _, ps := range pending {
		if frame, err := ps.serialize(mac); err == nil {
			s.transmit(frame)
		}
	}
}

// resolveAndSend serializes and transmits once the destination MAC is
// known, triggering ARP if needed.
func (s *Stack) resolveAndSend(dstIP packet.IPv4Address, serialize func(dstMAC packet.MACAddress) ([]byte, error)) error {
	s.arpMu.Lock()
	mac, known := s.arpTable[dstIP]
	if !known {
		// Queue (bounded) and (re-)broadcast a request on every
		// attempt: callers retransmit, so a lost ARP exchange heals
		// itself instead of stranding the queue.
		if len(s.arpPending[dstIP]) < 256 {
			s.arpPending[dstIP] = append(s.arpPending[dstIP], pendingSend{serialize})
		}
		s.arpMu.Unlock()
		req := &packet.ARP{
			Operation: packet.ARPRequest,
			SenderMAC: s.mac, SenderIP: s.ip,
			TargetIP: dstIP,
		}
		s.sendFrame(packet.BroadcastMAC, packet.EtherTypeARP, req)
		return nil
	}
	s.arpMu.Unlock()
	frame, err := serialize(mac)
	if err != nil {
		return err
	}
	s.transmit(frame)
	return nil
}

// sendFrame serializes a single L2 payload layer and transmits it.
func (s *Stack) sendFrame(dstMAC packet.MACAddress, et packet.EtherType, body packet.SerializableLayer) {
	b := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: s.mac, DstMAC: dstMAC, EtherType: et},
		body,
	)
	if err != nil {
		return
	}
	s.transmit(b.Bytes())
}

// transmit puts raw bytes on the wire.
func (s *Stack) transmit(frame []byte) {
	if s.port != nil {
		s.port.Send(frame)
	}
}

// InjectFrame transmits arbitrary raw bytes — the capability a
// compromised host uses to spoof source addresses. The frame is
// copied.
func (s *Stack) InjectFrame(frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	s.transmit(cp)
}

// LookupARP reads the ARP cache.
func (s *Stack) LookupARP(ip packet.IPv4Address) (packet.MACAddress, bool) {
	s.arpMu.Lock()
	defer s.arpMu.Unlock()
	mac, ok := s.arpTable[ip]
	return mac, ok
}

// --- UDP ---

// HandleUDP binds a handler to a UDP port.
func (s *Stack) HandleUDP(port uint16, h UDPHandler) error {
	s.udpMu.Lock()
	defer s.udpMu.Unlock()
	if _, dup := s.udpHandlers[port]; dup {
		return fmt.Errorf("%w: udp/%d on %s", ErrPortInUse, port, s.name)
	}
	s.udpHandlers[port] = h
	return nil
}

// SendUDP transmits a datagram. srcPort 0 picks an ephemeral port.
func (s *Stack) SendUDP(dstIP packet.IPv4Address, dstPort, srcPort uint16, payload []byte) error {
	if srcPort == 0 {
		srcPort = s.allocPort()
	}
	return s.resolveAndSend(dstIP, func(dstMAC packet.MACAddress) ([]byte, error) {
		udp := &packet.UDP{SrcPort: srcPort, DstPort: dstPort}
		udp.SetNetworkForChecksum(s.ip, dstIP)
		b := packet.NewSerializeBuffer()
		err := packet.SerializeLayers(b,
			&packet.Ethernet{SrcMAC: s.mac, DstMAC: dstMAC, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: s.ip, DstIP: dstIP, Protocol: packet.IPProtocolUDP},
			udp,
			packet.NewPayload(payload),
		)
		if err != nil {
			return nil, err
		}
		// Copy out: the serialize buffer is reused per call.
		out := make([]byte, b.Len())
		copy(out, b.Bytes())
		return out, nil
	})
}

func (s *Stack) handleUDP(ip *packet.IPv4, udp *packet.UDP) {
	s.udpMu.RLock()
	h := s.udpHandlers[udp.DstPort]
	s.udpMu.RUnlock()
	if h != nil {
		h(ip.SrcIP, udp.SrcPort, udp.LayerPayload())
	}
}

// allocPort returns a fresh ephemeral port.
func (s *Stack) allocPort() uint16 {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	for {
		p := s.nextPort
		s.nextPort++
		if s.nextPort < 32768 {
			s.nextPort = 32768
		}
		if _, used := s.listeners[p]; !used {
			return p
		}
	}
}
