package baseline

import (
	"testing"

	"iotsec/internal/ids"
	"iotsec/internal/mbox"
	"iotsec/internal/packet"
)

func mkCtx(t *testing.T, srcIP, dstIP string, payload string) *mbox.Context {
	t.Helper()
	src, dst := packet.MustParseIPv4(srcIP), packet.MustParseIPv4(dstIP)
	tcp := &packet.TCP{SrcPort: 40000, DstPort: 80, Flags: packet.TCPPsh | packet.TCPAck}
	tcp.SetNetworkForChecksum(src, dst)
	b := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(b,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
		tcp, packet.NewPayload([]byte(payload)),
	)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, b.Len())
	copy(frame, b.Bytes())
	return &mbox.Context{Frame: frame, Packet: packet.Decode(frame, packet.LayerTypeEthernet), Dir: mbox.ToDevice}
}

func TestPerimeterBlocksCrossingAttack(t *testing.T) {
	rules, err := ids.ParseRules(`block tcp any any -> any 80 (msg:"default creds"; content:"admin:admin"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPerimeterDefense(rules, packet.MustParseIPv4("10.0.0.0"), 24)

	// Outside → inside attack: inspected and blocked.
	if v := p.Process(mkCtx(t, "203.0.113.9", "10.0.0.5", "auth: admin:admin")); v != mbox.Drop {
		t.Error("perimeter missed a crossing attack")
	}
	// Outside → inside benign: passes.
	if v := p.Process(mkCtx(t, "203.0.113.9", "10.0.0.5", "hello")); v != mbox.Forward {
		t.Error("perimeter dropped benign traffic")
	}
}

func TestPerimeterBlindToInternalTraffic(t *testing.T) {
	rules, _ := ids.ParseRules(`block tcp any any -> any 80 (msg:"default creds"; content:"admin:admin"; sid:1;)`)
	p := NewPerimeterDefense(rules, packet.MustParseIPv4("10.0.0.0"), 24)

	// The SAME attack from a compromised internal device sails
	// through — Figure 1's "deep access to attacker".
	if v := p.Process(mkCtx(t, "10.0.0.66", "10.0.0.5", "auth: admin:admin")); v != mbox.Drop {
		// expected: Forward — document the blind spot explicitly
		if v != mbox.Forward {
			t.Fatalf("unexpected verdict %v", v)
		}
	} else {
		t.Fatal("perimeter somehow inspected internal traffic")
	}
	_, blocked, bypassed := p.Counters()
	if blocked != 0 || bypassed != 1 {
		t.Errorf("counters: blocked=%d bypassed=%d", blocked, bypassed)
	}
}

func TestHostDefenseFeasibility(t *testing.T) {
	report := EvaluateHostDefense(TypicalIoTFleet())
	if report.Total == 0 {
		t.Fatal("empty fleet")
	}
	frac := float64(report.Uncovered) / float64(report.Total)
	// The paper's claim: the bulk of IoT devices can run neither
	// antivirus nor receive patches.
	if frac < 0.25 {
		t.Errorf("uncovered fraction = %.2f; fleet should be largely unprotectable", frac)
	}
	if report.AntivirusCapable == 0 {
		t.Error("even the set-top boxes can run AV")
	}
	// A microcontroller with 2 MB RAM must not count as AV-capable.
	r2 := EvaluateHostDefense([]DeviceClassSpec{{Class: "mote", RAMMB: 2, HasOS: false, Count: 10}})
	if r2.AntivirusCapable != 0 || r2.Uncovered != 10 {
		t.Errorf("mote report = %+v", r2)
	}
}
