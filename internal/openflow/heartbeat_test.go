package openflow

import (
	"net"
	"sync"
	"testing"
	"time"

	"iotsec/internal/resilience"
)

// recordingHandler collects endpoint callbacks.
type recordingHandler struct {
	mu           sync.Mutex
	connected    chan uint64
	disconnected chan uint64
}

func newRecordingHandler() *recordingHandler {
	return &recordingHandler{
		connected:    make(chan uint64, 8),
		disconnected: make(chan uint64, 8),
	}
}

func (h *recordingHandler) SwitchConnected(dpid uint64, ports []uint16) { h.connected <- dpid }
func (h *recordingHandler) SwitchDisconnected(dpid uint64)              { h.disconnected <- dpid }
func (h *recordingHandler) HandlePacketIn(pi *PacketIn)                 {}
func (h *recordingHandler) HandleFlowRemoved(fr *FlowRemoved)           {}

// fakeSwitch dials the endpoint and completes the handshake by hand.
// answerEchoes selects whether it behaves (pongs) or plays dead after
// the handshake (the half-dead session heartbeats must reap).
func fakeSwitch(t *testing.T, addr string, dpid uint64, answerEchoes bool) *Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	conn := NewConn(raw)
	t.Cleanup(func() { _ = conn.Close() })
	// Controller drives: Hello, FeaturesRequest.
	m, xid, err := conn.Receive()
	if err != nil || m.Type() != TypeHello {
		t.Fatalf("want HELLO, got %v (%v)", m, err)
	}
	if err := conn.SendWithXID(&Hello{}, xid); err != nil {
		t.Fatalf("send hello: %v", err)
	}
	m, xid, err = conn.Receive()
	if err != nil || m.Type() != TypeFeaturesRequest {
		t.Fatalf("want FEATURES_REQUEST, got %v (%v)", m, err)
	}
	if err := conn.SendWithXID(&FeaturesReply{DatapathID: dpid, Ports: []uint16{1, 2}}, xid); err != nil {
		t.Fatalf("send features: %v", err)
	}
	// Post-handshake behaviour.
	go func() {
		for {
			m, xid, err := conn.Receive()
			if err != nil {
				return
			}
			if e, ok := m.(*Echo); ok && !e.Reply && answerEchoes {
				_ = conn.SendWithXID(&Echo{Reply: true, Payload: e.Payload}, xid)
			}
		}
	}()
	return conn
}

// advanceUntil steps the fake clock one heartbeat interval at a time
// (with short real pauses so goroutines observe each tick) until cond
// fires or the step budget runs out.
func advanceUntil(clk *resilience.FakeClock, interval time.Duration, steps int, cond func() bool) bool {
	for i := 0; i < steps; i++ {
		if cond() {
			return true
		}
		clk.Advance(interval)
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// TestHeartbeatReapsSilentSwitch drives the reaper with a frozen
// clock: a switch that completes the handshake but never answers
// ECHOes is reaped after the missed-beat threshold, surfacing as
// SwitchDisconnected.
func TestHeartbeatReapsSilentSwitch(t *testing.T) {
	h := newRecordingHandler()
	ep := NewControllerEndpoint(h, nil)
	clk := resilience.NewFakeClock(time.Unix(1000, 0))
	ep.SetClock(clk)
	const interval = time.Second
	ep.SetHeartbeat(interval, 2)
	addr, err := ep.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	fakeSwitch(t, addr, 42, false /* play dead */)
	select {
	case dpid := <-h.connected:
		if dpid != 42 {
			t.Fatalf("connected dpid = %d, want 42", dpid)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SwitchConnected never fired")
	}
	before := mSessionsReaped.Value()

	reaped := advanceUntil(clk, interval, 20, func() bool {
		select {
		case dpid := <-h.disconnected:
			if dpid != 42 {
				t.Fatalf("disconnected dpid = %d, want 42", dpid)
			}
			return true
		default:
			return false
		}
	})
	if !reaped {
		t.Fatal("silent switch was never reaped: SwitchDisconnected did not fire")
	}
	if got := mSessionsReaped.Value(); got != before+1 {
		t.Fatalf("sessions_reaped = %d, want %d", got, before+1)
	}
	if got := len(ep.Switches()); got != 0 {
		t.Fatalf("Switches() = %d after reap, want 0", got)
	}
}

// TestHeartbeatKeepsResponsiveSwitch verifies a switch that pongs
// survives many heartbeat intervals.
func TestHeartbeatKeepsResponsiveSwitch(t *testing.T) {
	h := newRecordingHandler()
	ep := NewControllerEndpoint(h, nil)
	clk := resilience.NewFakeClock(time.Unix(1000, 0))
	ep.SetClock(clk)
	const interval = time.Second
	ep.SetHeartbeat(interval, 2)
	addr, err := ep.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	fakeSwitch(t, addr, 7, true /* answer echoes */)
	select {
	case <-h.connected:
	case <-time.After(2 * time.Second):
		t.Fatal("SwitchConnected never fired")
	}

	for i := 0; i < 10; i++ {
		clk.Advance(interval)
		time.Sleep(10 * time.Millisecond)
		select {
		case dpid := <-h.disconnected:
			t.Fatalf("responsive switch %d reaped at tick %d", dpid, i)
		default:
		}
	}
	if got := len(ep.Switches()); got != 1 {
		t.Fatalf("Switches() = %d, want 1", got)
	}
}
