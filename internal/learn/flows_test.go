package learn

import (
	"testing"
	"time"

	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

var (
	flowCamMAC  = packet.MACAddress{0x02, 0, 0, 0, 0, 0x30}
	flowHostMAC = packet.MACAddress{0x02, 0, 0, 0, 0, 0x31}
	flowCamIP   = packet.MustParseIPv4("10.0.9.10")
	flowHostIP  = packet.MustParseIPv4("10.0.9.200")
	flowCloudIP = packet.MustParseIPv4("198.51.100.7")
)

func flowFrame(t *testing.T, when time.Time, srcNode, dstNode string,
	srcMAC, dstMAC packet.MACAddress, srcIP, dstIP packet.IPv4Address,
	srcPort, dstPort uint16) netsim.CapturedFrame {
	t.Helper()
	udp := &packet.UDP{SrcPort: srcPort, DstPort: dstPort}
	udp.SetNetworkForChecksum(srcIP, dstIP)
	b := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: srcMAC, DstMAC: dstMAC, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: srcIP, DstIP: dstIP, Protocol: packet.IPProtocolUDP},
		udp,
		packet.NewPayload([]byte("payload")),
	)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, b.Len())
	copy(data, b.Bytes())
	return netsim.CapturedFrame{When: when, SrcNode: srcNode, DstNode: dstNode, Data: data}
}

// TestObserveFlowsZeroFlows is the regression test for the
// zero-observed-flows path: a device that saw no traffic during the
// window must yield an empty, non-nil observation set — "saw nothing"
// is a valid result feeding a deny-everything profile, not a panic or
// a nil map.
func TestObserveFlowsZeroFlows(t *testing.T) {
	if got := ObserveFlows(nil, "cam", flowCamIP); got == nil || len(got) != 0 {
		t.Fatalf("ObserveFlows(nil) = %#v, want empty non-nil", got)
	}
	// Frames exist, but none touch the device's access link.
	frames := []netsim.CapturedFrame{
		flowFrame(t, time.Unix(10, 0), "host", "sw", flowHostMAC, flowCamMAC, flowHostIP, flowCloudIP, 1, 2),
	}
	if got := ObserveFlows(frames, "cam", flowCamIP); got == nil || len(got) != 0 {
		t.Fatalf("unrelated capture = %#v, want empty non-nil", got)
	}
	// Same, via the Distill caller: no panic, an empty valid slice.
	if got := ObserveFlows([]netsim.CapturedFrame{{When: time.Unix(1, 0), SrcNode: "cam", DstNode: "sw", Data: []byte{0x01}}}, "cam", flowCamIP); len(got) != 0 {
		t.Fatalf("undecodable frame produced observations: %#v", got)
	}
}

func TestObserveFlowsAggregation(t *testing.T) {
	t0 := time.Unix(100, 0)
	frames := []netsim.CapturedFrame{
		// Served conversation on udp/5683: request in, two replies out.
		flowFrame(t, t0, "host", "cam", flowHostMAC, flowCamMAC, flowHostIP, flowCamIP, 40000, 5683),
		flowFrame(t, t0.Add(time.Second), "cam", "host", flowCamMAC, flowHostMAC, flowCamIP, flowHostIP, 5683, 40000),
		flowFrame(t, t0.Add(2*time.Second), "cam", "host", flowCamMAC, flowHostMAC, flowCamIP, flowHostIP, 5683, 40000),
		// Device-initiated cloud check-in on udp/9000, with its reply.
		flowFrame(t, t0.Add(3*time.Second), "cam", "sw", flowCamMAC, flowHostMAC, flowCamIP, flowCloudIP, 41000, 9000),
		flowFrame(t, t0.Add(4*time.Second), "sw", "cam", flowHostMAC, flowCamMAC, flowCloudIP, flowCamIP, 9000, 41000),
		// Flooded transit: reaches the device's link but is not
		// addressed to or from it — must not be counted.
		flowFrame(t, t0.Add(5*time.Second), "sw", "cam", flowHostMAC, flowCamMAC, flowHostIP, flowCloudIP, 7, 7),
		// Mid-capture hop on someone else's link: ignored.
		flowFrame(t, t0.Add(6*time.Second), "mb-cam", "sw", flowCamMAC, flowHostMAC, flowCamIP, flowHostIP, 5683, 40000),
	}

	obs := ObserveFlows(frames, "cam", flowCamIP)
	if len(obs) != 2 {
		t.Fatalf("observations = %+v, want served 5683 + initiated 9000", obs)
	}
	served, initiated := obs[0], obs[1]
	if served.Port != 5683 || served.Initiated || served.Proto != "udp" {
		t.Fatalf("first observation = %+v, want served udp/5683", served)
	}
	if served.Frames != 3 {
		t.Errorf("served frames = %d, want 3 (request + replies folded)", served.Frames)
	}
	if served.Remote != flowHostIP {
		t.Errorf("served remote = %s, want %s", served.Remote, flowHostIP)
	}
	if initiated.Port != 9000 || !initiated.Initiated {
		t.Fatalf("second observation = %+v, want initiated udp/9000", initiated)
	}
	if initiated.Frames != 2 {
		t.Errorf("initiated frames = %d, want 2 (request + reply folded)", initiated.Frames)
	}
	if initiated.Remote != flowCloudIP {
		t.Errorf("initiated remote = %s, want %s", initiated.Remote, flowCloudIP)
	}
	if !initiated.First.Equal(t0.Add(3*time.Second)) || !initiated.Last.Equal(t0.Add(4*time.Second)) {
		t.Errorf("initiated interval = [%v, %v]", initiated.First, initiated.Last)
	}
	if served.Bytes == 0 || initiated.Bytes == 0 {
		t.Error("byte accounting missing")
	}
}
