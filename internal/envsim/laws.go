package envsim

import "math"

// ThermalLaw models room temperature: it relaxes toward the outside
// temperature with a time constant that shrinks drastically when the
// window is open, and rises while heat sources run. Heat sources are
// reported through the named input variables (watts of heating,
// negative for cooling).
type ThermalLaw struct {
	// TimeConstantClosed is the relaxation time constant (seconds)
	// with windows closed.
	TimeConstantClosed float64
	// TimeConstantOpen applies when window_open >= 0.5.
	TimeConstantOpen float64
	// HeatSources lists variable names contributing °C/s while
	// positive (e.g. "hvac_heat_rate", "oven_heat_rate").
	HeatSources []string
}

// DefaultThermalLaw returns thermal behavior tuned so scenario effects
// show within tens of simulated seconds.
func DefaultThermalLaw() ThermalLaw {
	return ThermalLaw{
		TimeConstantClosed: 1800,
		TimeConstantOpen:   120,
		HeatSources:        []string{"hvac_heat_rate", "oven_heat_rate"},
	}
}

// Law converts the configuration into a registrable Law.
func (t ThermalLaw) Law() Law {
	return Law{
		Name: "thermal",
		Apply: func(s Snapshot, dt float64) map[string]float64 {
			temp := s.Get(VarTemperature)
			outside := s.Get(VarOutsideTemp)
			tau := t.TimeConstantClosed
			if s.Get(VarWindowOpen) >= 0.5 {
				tau = t.TimeConstantOpen
			}
			// Exponential relaxation toward outside temperature.
			alpha := 1 - math.Exp(-dt/tau)
			temp += (outside - temp) * alpha
			for _, src := range t.HeatSources {
				temp += s.Get(src) * dt
			}
			return map[string]float64{VarTemperature: temp}
		},
	}
}

// SmokeLaw models smoke concentration: sources add, ventilation and
// natural decay remove.
type SmokeLaw struct {
	// DecayRate is the fraction removed per second with windows
	// closed.
	DecayRate float64
	// VentilatedDecayRate applies when window_open >= 0.5.
	VentilatedDecayRate float64
	// Sources lists variable names contributing concentration/s.
	Sources []string
}

// DefaultSmokeLaw returns standard smoke behavior.
func DefaultSmokeLaw() SmokeLaw {
	return SmokeLaw{DecayRate: 0.005, VentilatedDecayRate: 0.05, Sources: []string{"smoke_source_rate"}}
}

// Law converts the configuration into a registrable Law.
func (l SmokeLaw) Law() Law {
	return Law{
		Name: "smoke",
		Apply: func(s Snapshot, dt float64) map[string]float64 {
			smoke := s.Get(VarSmoke)
			rate := l.DecayRate
			if s.Get(VarWindowOpen) >= 0.5 {
				rate = l.VentilatedDecayRate
			}
			smoke *= math.Exp(-rate * dt)
			for _, src := range l.Sources {
				smoke += s.Get(src) * dt
			}
			if smoke < 0 {
				smoke = 0
			}
			if smoke > 1 {
				smoke = 1
			}
			return map[string]float64{VarSmoke: smoke}
		},
	}
}

// LightLaw models indoor light as ambient daylight plus lamp output.
type LightLaw struct {
	// AmbientVar usually tracks time of day (scripted externally).
	AmbientVar string
	// LampVars contribute lux while on.
	LampVars []string
}

// DefaultLightLaw returns standard lighting behavior.
func DefaultLightLaw() LightLaw {
	return LightLaw{AmbientVar: "daylight", LampVars: []string{"lamp_output"}}
}

// Law converts the configuration into a registrable Law.
func (l LightLaw) Law() Law {
	return Law{
		Name: "light",
		Apply: func(s Snapshot, dt float64) map[string]float64 {
			light := s.Get(l.AmbientVar)
			for _, lamp := range l.LampVars {
				light += s.Get(lamp)
			}
			return map[string]float64{VarLight: light}
		},
	}
}

// PowerLaw sums per-device power-draw variables into the aggregate the
// smart meter reports.
type PowerLaw struct {
	// DeviceVars lists per-device draw variables (watts).
	DeviceVars []string
	// Baseline is the always-on household draw.
	Baseline float64
}

// Law converts the configuration into a registrable Law.
func (p PowerLaw) Law() Law {
	return Law{
		Name: "power",
		Apply: func(s Snapshot, dt float64) map[string]float64 {
			total := p.Baseline
			for _, v := range p.DeviceVars {
				total += s.Get(v)
			}
			return map[string]float64{VarPower: total}
		},
	}
}

// StandardHome builds an environment with the default physics laws and
// sensible initial conditions for the smart-home scenarios.
func StandardHome() *Environment {
	env := New(map[string]float64{
		VarTemperature: 22,
		VarOutsideTemp: 30,
		VarSmoke:       0,
		VarLight:       300,
		VarOccupancy:   1,
		VarWindowOpen:  0,
		"daylight":     300,
	})
	env.AddLaw(DefaultThermalLaw().Law())
	env.AddLaw(DefaultSmokeLaw().Law())
	env.AddLaw(DefaultLightLaw().Law())
	env.AddLaw(PowerLaw{
		Baseline:   120,
		DeviceVars: []string{"hvac_power", "oven_power", "lamp_power"},
	}.Law())
	return env
}
