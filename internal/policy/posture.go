package policy

import (
	"fmt"
	"sort"
	"strings"
)

// ModuleSpec names a µmbox element the posture requires in front of
// the device, with its configuration.
type ModuleSpec struct {
	// Kind is the element type: "password-proxy", "ids",
	// "rate-limiter", "dns-guard", "stateful-fw", "context-gate",
	// "logger".
	Kind string
	// Config carries element-specific settings.
	Config map[string]string
}

// key renders a canonical identity for equality and hashing.
func (m ModuleSpec) key() string {
	keys := make([]string, 0, len(m.Config))
	for k := range m.Config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(m.Kind)
	for _, k := range keys {
		fmt.Fprintf(&b, ";%s=%s", k, m.Config[k])
	}
	return b.String()
}

// Posture is the security treatment a device's traffic receives in a
// given state: the module chain plus coarse controls. The zero value
// is the permissive default ("just forward").
type Posture struct {
	// Modules to interpose, in order.
	Modules []ModuleSpec
	// BlockCommands lists management commands to block outright.
	BlockCommands []string
	// RateLimit caps the device's traffic (frames/second; 0 = none).
	RateLimit float64
	// Isolate quarantines the device entirely (drop everything).
	Isolate bool
}

// Key renders a canonical identity: equal keys = equal postures. Used
// by posture-equivalence collapsing.
func (p Posture) Key() string {
	var b strings.Builder
	for _, m := range p.Modules {
		b.WriteString(m.key())
		b.WriteByte('|')
	}
	cmds := append([]string(nil), p.BlockCommands...)
	sort.Strings(cmds)
	fmt.Fprintf(&b, "block=%s|rate=%g|iso=%v", strings.Join(cmds, ","), p.RateLimit, p.Isolate)
	return b.String()
}

// Equal compares postures canonically.
func (p Posture) Equal(q Posture) bool { return p.Key() == q.Key() }

// Merge overlays q on p: module union (by key), command union, the
// stricter rate limit, and Isolate if either demands it. Used when
// several rules apply to the same device in the same state at the
// same priority and their postures are compatible.
func (p Posture) Merge(q Posture) Posture {
	out := Posture{Isolate: p.Isolate || q.Isolate}
	seen := map[string]bool{}
	for _, m := range append(append([]ModuleSpec{}, p.Modules...), q.Modules...) {
		if !seen[m.key()] {
			seen[m.key()] = true
			out.Modules = append(out.Modules, m)
		}
	}
	cmdSeen := map[string]bool{}
	for _, c := range append(append([]string{}, p.BlockCommands...), q.BlockCommands...) {
		if !cmdSeen[c] {
			cmdSeen[c] = true
			out.BlockCommands = append(out.BlockCommands, c)
		}
	}
	switch {
	case p.RateLimit == 0:
		out.RateLimit = q.RateLimit
	case q.RateLimit == 0:
		out.RateLimit = p.RateLimit
	default:
		out.RateLimit = min(p.RateLimit, q.RateLimit)
	}
	return out
}

// String summarizes the posture.
func (p Posture) String() string {
	if p.Isolate {
		return "ISOLATE"
	}
	var parts []string
	for _, m := range p.Modules {
		parts = append(parts, m.Kind)
	}
	if len(p.BlockCommands) > 0 {
		parts = append(parts, "block:"+strings.Join(p.BlockCommands, "/"))
	}
	if p.RateLimit > 0 {
		parts = append(parts, fmt.Sprintf("rate<=%.0f/s", p.RateLimit))
	}
	if len(parts) == 0 {
		return "allow"
	}
	return strings.Join(parts, "+")
}
