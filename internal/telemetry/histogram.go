package telemetry

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// maxBuckets bounds fixed-bucket histograms; shards inline the bucket
// array so shards never share cache lines through a common backing
// slice.
const maxBuckets = 32

// histShard is one writer shard: its own count/sum and an inline
// bucket array, padded so adjacent shards never share a cache line.
type histShard struct {
	count   atomic.Uint64
	sum     atomicFloat64
	buckets [maxBuckets]atomic.Uint64
	_       [64]byte // pad to keep the next shard off this line
}

// Histogram is a fixed-bucket histogram with per-shard atomics:
// Observe picks a shard from the caller's stack address (a cheap
// goroutine-stable hash), then does two atomic adds and one CAS-add —
// no locks, no allocation. Bounds are upper bounds in ascending order;
// a +Inf bucket is implicit.
type Histogram struct {
	meta
	bounds []float64
	shards []histShard
	mask   uint64
}

// LatencyBuckets covers 1µs .. ~16s in powers of 4 (seconds).
var LatencyBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 16,
}

// SizeBuckets covers 64B .. 64KB frames in powers of 4 (bytes).
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536}

func newHistogram(m meta, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	if len(bounds) >= maxBuckets {
		panic(fmt.Sprintf("telemetry: %s: %d buckets exceeds max %d", m.name, len(bounds), maxBuckets-1))
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must ascend: " + m.name)
	}
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 16 {
		n <<= 1
	}
	return &Histogram{
		meta:   m,
		bounds: append([]float64(nil), bounds...),
		shards: make([]histShard, n),
		mask:   uint64(n - 1),
	}
}

// shardIndex hashes the caller's stack address: distinct goroutines
// run on distinct stacks, so concurrent writers spread across shards
// without any shared state.
func (h *Histogram) shardIndex() uint64 {
	var probe byte
	a := uint64(uintptr(unsafe.Pointer(&probe)))
	// splitmix-style finalizer over the page-granular stack address.
	a >>= 10
	a ^= a >> 33
	a *= 0xff51afd7ed558ccd
	a ^= a >> 33
	return a & h.mask
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	s := &h.shards[h.shardIndex()]
	s.count.Add(1)
	s.sum.Add(v)
	// Linear scan: bucket counts are small and the slice is hot.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	s.buckets[i].Add(1)
}

// snapshot folds the shards.
func (h *Histogram) snapshot() (count uint64, sum float64, buckets []uint64) {
	buckets = make([]uint64, len(h.bounds)+1)
	for i := range h.shards {
		s := &h.shards[i]
		count += s.count.Load()
		sum += s.sum.Load()
		for b := 0; b <= len(h.bounds); b++ {
			buckets[b] += s.buckets[b].Load()
		}
	}
	return count, sum, buckets
}

// Count reports total observations.
func (h *Histogram) Count() uint64 {
	c, _, _ := h.snapshot()
	return c
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 {
	_, s, _ := h.snapshot()
	return s
}

// Quantile estimates q in [0,1] by linear interpolation within the
// winning bucket (the usual Prometheus-style estimate).
func (h *Histogram) Quantile(q float64) float64 {
	_, _, buckets := h.snapshot()
	return QuantileFromBuckets(h.bounds, buckets, q)
}

// Bounds returns the histogram's upper bucket bounds (ascending; the
// +Inf bucket is implicit). The returned slice is a copy.
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// Snapshot folds the shards into (count, sum, per-bucket counts). The
// buckets slice has len(Bounds())+1 entries — the last is the +Inf
// bucket — and holds per-bucket (non-cumulative) counts. Safe to call
// concurrently with writers; the fold is not atomic across shards, so
// concurrent observations may be partially visible (fine for scrapes
// and windowed deltas).
func (h *Histogram) Snapshot() (count uint64, sum float64, buckets []uint64) {
	return h.snapshot()
}

// Rollup snapshots the histogram in the mergeable rollup form.
func (h *Histogram) Rollup() HistogramRollup {
	count, sum, buckets := h.snapshot()
	return HistogramRollup{
		Bounds:  append([]float64(nil), h.bounds...),
		Count:   count,
		Sum:     sum,
		Buckets: buckets,
	}
}

// Merge folds an external rollup into the live histogram (bucket-wise
// atomic adds into shard 0, so writers stay lock-free). Bounds must
// match the histogram's exactly; a mismatch errors without recording
// anything — merging across different bucket layouts would silently
// corrupt quantiles.
func (h *Histogram) Merge(r HistogramRollup) error {
	if !boundsEqual(h.bounds, r.Bounds) {
		return fmt.Errorf("telemetry: %s: merge bounds mismatch (%v vs %v)", h.name, h.bounds, r.Bounds)
	}
	if len(r.Buckets) != len(r.Bounds)+1 {
		return fmt.Errorf("telemetry: %s: merge %d buckets for %d bounds", h.name, len(r.Buckets), len(r.Bounds))
	}
	s := &h.shards[0]
	s.count.Add(r.Count)
	s.sum.Add(r.Sum)
	for i, b := range r.Buckets {
		s.buckets[i].Add(b)
	}
	return nil
}

// NewStandaloneHistogram builds an unregistered histogram (per-shard
// stats that export through rollups rather than registry scrapes).
// nil bounds use LatencyBuckets, like registered histograms.
func NewStandaloneHistogram(bounds []float64) *Histogram {
	return newHistogram(meta{}, bounds)
}

// QuantileFromBuckets estimates q in [0,1] from per-bucket
// (non-cumulative) counts against the given upper bounds, with linear
// interpolation inside the winning bucket. buckets may have
// len(bounds) or len(bounds)+1 entries (the extra one is +Inf); the
// +Inf bucket reports the last finite bound, since nothing better is
// known. Used by Histogram.Quantile, by the SLO watchdog over windowed
// deltas, and by mboxctl when re-deriving quantiles from a scraped
// snapshot.
func QuantileFromBuckets(bounds []float64, buckets []uint64, q float64) float64 {
	count := uint64(0)
	for _, b := range buckets {
		count += b
	}
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	cum := uint64(0)
	lower := 0.0
	for i, b := range buckets {
		prev := cum
		cum += b
		if float64(cum) >= rank {
			upper := lower
			if i < len(bounds) {
				upper = bounds[i]
			} else if len(bounds) > 0 {
				// +Inf bucket: report the last finite bound.
				return bounds[len(bounds)-1]
			}
			if b == 0 {
				return upper
			}
			frac := (rank - float64(prev)) / float64(b)
			return lower + (upper-lower)*frac
		}
		if i < len(bounds) {
			lower = bounds[i]
		}
	}
	if len(bounds) > 0 {
		return bounds[len(bounds)-1]
	}
	return 0
}

// MetricKind implements Metric.
func (h *Histogram) MetricKind() Kind { return KindHistogram }

// Samples implements Metric: cumulative _bucket series, then _sum and
// _count.
func (h *Histogram) Samples() []Sample {
	return h.samplesWithLabels(nil)
}

func (h *Histogram) samplesWithLabels(base Labels) []Sample {
	count, sum, buckets := h.snapshot()
	out := make([]Sample, 0, len(buckets)+2)
	cum := uint64(0)
	for i, b := range buckets {
		cum += b
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		ls := make(Labels, 0, len(base)+1)
		ls = append(ls, base...)
		ls = append(ls, Label{Key: "le", Value: le})
		out = append(out, Sample{Suffix: "_bucket", Labels: ls, Value: float64(cum)})
	}
	out = append(out,
		Sample{Suffix: "_sum", Labels: base, Value: sum},
		Sample{Suffix: "_count", Labels: base, Value: float64(count)})
	return out
}

// HistogramVec is a family of histograms keyed by label values
// (copy-on-write index; resolve children once on hot paths).
type HistogramVec struct {
	meta
	keys   []string
	bounds []float64
	idx    atomic.Pointer[map[string]*Histogram]
	mu     sync.Mutex
}

// With returns (creating if needed) the child histogram.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	key := joinLabelValues(labelValues)
	if h, ok := (*v.idx.Load())[key]; ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	old := *v.idx.Load()
	if h, ok := old[key]; ok {
		return h
	}
	nw := make(map[string]*Histogram, len(old)+1)
	for k, h := range old {
		nw[k] = h
	}
	h := newHistogram(meta{}, v.bounds)
	nw[key] = h
	v.idx.Store(&nw)
	return h
}

// MetricKind implements Metric.
func (v *HistogramVec) MetricKind() Kind { return KindHistogram }

// Samples implements Metric.
func (v *HistogramVec) Samples() []Sample {
	idx := *v.idx.Load()
	var out []Sample
	for key, h := range idx {
		out = append(out, h.samplesWithLabels(splitLabels(v.keys, key))...)
	}
	return out
}

func formatFloat(f float64) string { return fmt.Sprintf("%g", f) }
