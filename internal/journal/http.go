package journal

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// SnapshotJSON is the /debug/journal response shape.
type SnapshotJSON struct {
	TakenAt   time.Time `json:"taken_at"`
	Appended  uint64    `json:"appended_total"`
	TailDrops uint64    `json:"tail_drops_total"`
	Events    []Event   `json:"events"`
}

// parseFilter reads the query-string filter parameters:
//
//	trace=<id>       one causal chain
//	device=<name>    one device
//	type=<type>      one event type
//	since=<dur|rfc3339>  5m = last five minutes; or an absolute time
//	until=<dur|rfc3339>  upper bound of the time range (same forms)
//	sev=<name>       minimum severity (debug|info|warn|critical)
//	limit=<n>        most recent n matches (default 256; 0 = all)
func parseFilter(req *http.Request) (Filter, error) {
	f := Filter{Limit: 256}
	q := req.URL.Query()
	if s := q.Get("trace"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return f, errBadParam{"trace", s}
		}
		f.TraceID = v
	}
	f.Device = q.Get("device")
	f.Type = Type(q.Get("type"))
	if s := q.Get("since"); s != "" {
		t, err := parseTimeBound(s)
		if err != nil {
			return f, errBadParam{"since", s}
		}
		f.Since = t
	}
	if s := q.Get("until"); s != "" {
		t, err := parseTimeBound(s)
		if err != nil {
			return f, errBadParam{"until", s}
		}
		f.Until = t
	}
	if s := q.Get("sev"); s != "" {
		sev, ok := ParseSeverity(s)
		if !ok {
			return f, errBadParam{"sev", s}
		}
		f.MinSeverity = sev
	}
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return f, errBadParam{"limit", s}
		}
		f.Limit = v
	}
	return f, nil
}

// parseTimeBound accepts either a relative duration ("5m" = five
// minutes ago) or an absolute RFC3339 timestamp.
func parseTimeBound(s string) (time.Time, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return time.Now().Add(-d), nil
	}
	return time.Parse(time.RFC3339, s)
}

type errBadParam struct{ name, value string }

func (e errBadParam) Error() string { return "bad " + e.name + " parameter: " + e.value }

// Handler serves the journal (mount at /debug/journal). Plain GETs
// return a JSON snapshot filtered by the query parameters; follow=1
// switches to a streaming tail: the filtered backlog followed by live
// matching events, one JSON object per line, until the client goes
// away.
func (j *Journal) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		f, err := parseFilter(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.URL.Query().Get("follow") == "1" {
			j.serveFollow(w, req, f)
			return
		}
		appended, drops := j.Stats()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&SnapshotJSON{
			TakenAt:   time.Now(),
			Appended:  appended,
			TailDrops: drops,
			Events:    j.Snapshot(f),
		})
	})
}

// serveFollow streams NDJSON: backlog first, then the live tail.
func (j *Journal) serveFollow(w http.ResponseWriter, req *http.Request, f Filter) {
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)

	// Subscribe before snapshotting so no event falls in the gap;
	// duplicates across the boundary are suppressed by sequence.
	events, cancel := j.Tail(512)
	defer cancel()
	var lastSeq uint64
	for _, e := range j.Snapshot(f) {
		if enc.Encode(e) != nil {
			return
		}
		lastSeq = e.Seq
	}
	if flusher != nil {
		flusher.Flush()
	}
	done := req.Context().Done()
	for {
		select {
		case <-done:
			return
		case e, ok := <-events:
			if !ok {
				return
			}
			if e.Seq <= lastSeq || !f.matches(e) {
				continue
			}
			if enc.Encode(e) != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
