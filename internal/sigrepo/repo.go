package sigrepo

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/telemetry"
)

// Notification announces a newly cleared signature to a subscriber.
type Notification struct {
	Signature Signature
	// Seq is the per-SKU monotonic event sequence of the clearing.
	// Subscribers persist the highest Seq they have processed and
	// resume from it (SubscribeSince) after an outage.
	Seq uint64
	// Priority is true for contributors (the paper's incentive:
	// those who share get told first).
	Priority bool
	// Replay marks a cursor-replayed event (the subscriber may have
	// seen it before the outage; consumers dedupe by signature ID).
	Replay bool
}

// clearedEvent is one entry of the per-SKU cleared-signature event
// log: the sequence plus the signature it cleared. The log is the
// bounded replay source behind SubscribeSince; it is persisted with
// the snapshot so cursors survive repository restarts.
type clearedEvent struct {
	Seq   uint64 `json:"seq"`
	SigID string `json:"sig_id"`
}

// Subscriber receives notifications for a SKU. Must not block.
type Subscriber func(n Notification)

// Repository is the in-process core: per-SKU signature storage,
// validation, anonymization, reputation-weighted voting with
// quarantine, and contributor-priority notification. The TCP server
// wraps this.
type Repository struct {
	anon *Anonymizer
	rep  *ReputationSystem

	mu        sync.Mutex
	nextID    int
	nextSubID uint64
	bySKU     map[string][]*Signature
	byID      map[string]*Signature
	votes     map[string]map[string]bool // sigID → pseudonym → voted up?
	subs      map[string][]subscription
	contrib   map[string]bool // pseudonyms that have ever contributed
	// dedup indexes live (non-retired) signatures by contributor+SKU+
	// rule so idempotent republish is O(1) per call. Entries are
	// removed when a signature is retired by down-votes, so a rejected
	// rule CAN be resubmitted as a fresh signature.
	dedup map[string]string // dedupKey → signature ID

	// seqs is the per-SKU monotonic cleared-event sequence; events is
	// the bounded per-SKU event log backing cursor replay.
	seqs   map[string]uint64
	events map[string][]clearedEvent

	// ClearScore releases a quarantined signature at/above this
	// weighted score (default 1.0 ≈ two average-trust upvotes).
	ClearScore float64
	// RejectScore retires a signature at/below this (default -1.0).
	RejectScore float64
	// PriorityLag delays non-contributor notifications (incentive
	// mechanism); contributors get them immediately. Default 0 in
	// process-level use; the server sets a real lag.
	PriorityLag time.Duration
	// EventLogCap bounds the per-SKU cleared-event log (default
	// 1024). Cursors older than the retained window fall back to a
	// full cleared-set replay, so bounding the log never loses
	// signatures — only replay granularity.
	EventLogCap int
}

type subscription struct {
	id        uint64
	pseudonym string
	fn        Subscriber
}

// NewRepository builds a repository.
func NewRepository(salt string) *Repository {
	return &Repository{
		anon:        NewAnonymizer(salt),
		rep:         NewReputationSystem(),
		bySKU:       make(map[string][]*Signature),
		byID:        make(map[string]*Signature),
		votes:       make(map[string]map[string]bool),
		subs:        make(map[string][]subscription),
		contrib:     make(map[string]bool),
		dedup:       make(map[string]string),
		seqs:        make(map[string]uint64),
		events:      make(map[string][]clearedEvent),
		ClearScore:  1.0,
		RejectScore: -1.0,
	}
}

// dedupKey indexes a live signature for idempotent republish.
// Contributor pseudonyms are hash-derived (never contain NUL), so the
// NUL joins keep distinct (contributor, sku, rule) triples distinct.
func dedupKey(contributor, sku, rule string) string {
	return contributor + "\x00" + sku + "\x00" + rule
}

// eventLogCap returns the effective bound for the per-SKU event log.
func (r *Repository) eventLogCap() int {
	if r.EventLogCap < 1 {
		return 1024
	}
	return r.EventLogCap
}

// recordClearLocked assigns the next per-SKU sequence to a freshly
// cleared signature and appends it to the bounded event log. Caller
// holds r.mu.
func (r *Repository) recordClearLocked(sig *Signature) uint64 {
	r.seqs[sig.SKU]++
	seq := r.seqs[sig.SKU]
	sig.ClearSeq = seq
	log := append(r.events[sig.SKU], clearedEvent{Seq: seq, SigID: sig.ID})
	if bound := r.eventLogCap(); len(log) > bound {
		log = append([]clearedEvent(nil), log[len(log)-bound:]...)
	}
	r.events[sig.SKU] = log
	return seq
}

// Head reports the current cleared-event sequence for a SKU — the
// cursor a fully caught-up subscriber holds.
func (r *Repository) Head(sku string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seqs[sku]
}

// Reputation exposes the reputation system (for experiments).
func (r *Repository) Reputation() *ReputationSystem { return r.rep }

// Pseudonym maps an identity (e.g., an enterprise account) to its
// anonymous handle.
func (r *Repository) Pseudonym(identity string) string { return r.anon.Pseudonym(identity) }

// Publish validates, anonymizes and stores a signature. It enters
// quarantined unless the contributor's reputation already exceeds the
// clear threshold's worth of trust. The context carries the causal
// trace of the detection that distilled the signature.
func (r *Repository) Publish(ctx context.Context, identity, sku, ruleText, description string) (*Signature, error) {
	ctx, span := telemetry.StartSpan(ctx, "sigrepo.publish")
	span.SetAttr("sku", sku)
	defer span.End()
	scrubbed := r.anon.ScrubRule(ruleText)
	if err := Validate(sku, scrubbed); err != nil {
		mPublishRejected.Inc()
		return nil, err
	}
	pseudo := r.anon.Pseudonym(identity)

	r.mu.Lock()
	// Idempotent republish: a contributor resubmitting the exact rule
	// for the same SKU (an outbox retry after an ambiguous connection
	// loss) gets the existing signature back instead of a duplicate —
	// the server-side half of exactly-once publish delivery. The index
	// only holds live signatures (retired entries are unlinked), so a
	// rule the community rejected can be resubmitted fresh; note the
	// returned signature may still be quarantined — the retry observes
	// the pending vote rather than forking a duplicate row.
	if id, ok := r.dedup[dedupKey(pseudo, sku, scrubbed)]; ok {
		if existing, live := r.byID[id]; live {
			cp := *existing
			r.mu.Unlock()
			mPublishDedup.Inc()
			journal.Record(ctx, journal.TypeSigPublish, journal.Debug, sku,
				fmt.Sprintf("%s republished by %s (idempotent retry)", cp.ID, pseudo))
			return &cp, nil
		}
	}
	r.nextID++
	sig := &Signature{
		ID:          fmt.Sprintf("sig-%06d", r.nextID),
		SKU:         sku,
		Rule:        scrubbed,
		Description: r.anon.ScrubDescription(description),
		Contributor: pseudo,
		Submitted:   time.Now(),
		Quarantined: true,
	}
	// Highly trusted contributors skip quarantine: their track record
	// is the evidence.
	if r.rep.Score(pseudo) >= 0.8 {
		sig.Quarantined = false
	}
	r.bySKU[sku] = append(r.bySKU[sku], sig)
	r.byID[sig.ID] = sig
	r.votes[sig.ID] = make(map[string]bool)
	r.contrib[pseudo] = true
	r.dedup[dedupKey(pseudo, sku, scrubbed)] = sig.ID
	cleared := !sig.Quarantined
	var seq uint64
	if cleared {
		seq = r.recordClearLocked(sig)
	}
	cp := *sig
	r.mu.Unlock()

	mPublishes.Inc()
	journal.Record(ctx, journal.TypeSigPublish, journal.Info, sku,
		fmt.Sprintf("%s by %s (quarantined=%v)", cp.ID, pseudo, cp.Quarantined))
	if cleared {
		mCleared.Inc()
		r.notify(cp, seq)
	}
	return &cp, nil
}

// Vote records a reputation-weighted community verdict on a
// signature. When the accumulated score clears or rejects the
// signature, contributor reputations update and (on clearing)
// subscribers are notified.
func (r *Repository) Vote(ctx context.Context, identity, sigID string, up bool) (*Signature, error) {
	ctx, span := telemetry.StartSpan(ctx, "sigrepo.vote")
	span.SetAttr("sig", sigID)
	defer span.End()
	pseudo := r.anon.Pseudonym(identity)
	weight := r.rep.VoteWeight(pseudo)

	r.mu.Lock()
	sig, ok := r.byID[sigID]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownSignature, sigID)
	}
	if _, dup := r.votes[sigID][pseudo]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s on %s", ErrDuplicateVote, pseudo, sigID)
	}
	if sig.Contributor == pseudo {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: self-vote on %s", ErrDuplicateVote, sigID)
	}
	r.votes[sigID][pseudo] = up
	if up {
		sig.Score += weight
	} else {
		sig.Score -= weight
	}

	var clearedCopy *Signature
	var clearedSeq uint64
	var outcome *bool
	switch {
	case sig.Quarantined && sig.Score >= r.ClearScore:
		sig.Quarantined = false
		clearedSeq = r.recordClearLocked(sig)
		cp := *sig
		clearedCopy = &cp
		v := true
		outcome = &v
	case sig.Score <= r.RejectScore:
		// Retire: remove from the SKU feed and unlink the republish
		// index, so the contributor may submit the rule anew (as a
		// fresh quarantined signature) rather than being answered with
		// the rejected one forever.
		skuSigs := r.bySKU[sig.SKU]
		for i, s := range skuSigs {
			if s.ID == sigID {
				r.bySKU[sig.SKU] = append(skuSigs[:i], skuSigs[i+1:]...)
				break
			}
		}
		delete(r.byID, sigID)
		delete(r.dedup, dedupKey(sig.Contributor, sig.SKU, sig.Rule))
		v := false
		outcome = &v
	}
	contributor := sig.Contributor
	var voterSides map[string]bool
	if outcome != nil {
		voterSides = make(map[string]bool, len(r.votes[sigID]))
		for voter, votedUp := range r.votes[sigID] {
			voterSides[voter] = votedUp
		}
	}
	cp := *sig
	r.mu.Unlock()

	mVotes.Inc()
	verdict := "down"
	if up {
		verdict = "up"
	}
	journal.Record(ctx, journal.TypeSigVote, journal.Debug, cp.SKU,
		fmt.Sprintf("%s %s by %s (score %.2f)", sigID, verdict, pseudo, cp.Score))
	if outcome != nil {
		if *outcome {
			mCleared.Inc()
		} else {
			mRetired.Inc()
		}
		r.rep.RecordOutcome(contributor, *outcome)
		// Credence-style voter accountability: voters on the wrong
		// side of the settled outcome burn reputation, voters on the
		// right side earn it. Sock puppets that upvote poison lose
		// their voting power after the first refutation.
		for voter, votedUp := range voterSides {
			r.rep.RecordOutcome(voter, votedUp == *outcome)
		}
	}
	if clearedCopy != nil {
		r.notify(*clearedCopy, clearedSeq)
	}
	return &cp, nil
}

// Subscribe registers for cleared signatures on a SKU, starting from
// "now" (no replay). The returned cancel removes the subscription.
func (r *Repository) Subscribe(identity, sku string, fn Subscriber) (cancel func()) {
	cancel, _, _ = r.SubscribeSince(identity, sku, ^uint64(0), fn)
	return cancel
}

// SubscribeSince registers for cleared signatures on a SKU and
// returns, atomically with the registration, every cleared event
// after the `since` cursor — so there is no window in which a
// clearing can be neither replayed nor streamed. Passing since=0
// replays the SKU's full cleared history; passing the previously
// observed head resumes loss-free after an outage; passing ^uint64(0)
// (or the current head) replays nothing. head is the SKU's current
// event sequence at registration time.
func (r *Repository) SubscribeSince(identity, sku string, since uint64, fn Subscriber) (cancel func(), replay []Notification, head uint64) {
	pseudo := r.anon.Pseudonym(identity)
	r.mu.Lock()
	r.nextSubID++
	id := r.nextSubID
	r.subs[sku] = append(r.subs[sku], subscription{id: id, pseudonym: pseudo, fn: fn})
	head = r.seqs[sku]
	if since < head {
		replay = r.replayLocked(sku, since, r.contrib[pseudo])
	}
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		subs := r.subs[sku]
		for i := range subs {
			if subs[i].id == id {
				r.subs[sku] = append(subs[:i], subs[i+1:]...)
				return
			}
		}
	}, replay, head
}

// replayLocked builds the catch-up notifications for a cursor. When
// the bounded event log still covers (since, head] it is walked
// directly; when eviction has truncated past the cursor, the full
// cleared set with ClearSeq > since is replayed instead (over-
// delivery is safe: subscribers dedupe by signature ID). Caller
// holds r.mu.
func (r *Repository) replayLocked(sku string, since uint64, priority bool) []Notification {
	var out []Notification
	log := r.events[sku]
	if len(log) > 0 && log[0].Seq <= since+1 {
		for _, ev := range log {
			if ev.Seq <= since {
				continue
			}
			if s, ok := r.byID[ev.SigID]; ok && !s.Quarantined {
				out = append(out, Notification{Signature: *s, Seq: ev.Seq, Priority: priority, Replay: true})
			}
		}
		return out
	}
	for _, s := range r.bySKU[sku] {
		if !s.Quarantined && s.ClearSeq > since {
			out = append(out, Notification{Signature: *s, Seq: s.ClearSeq, Priority: priority, Replay: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// notify fans a cleared signature out: contributors first, others
// after PriorityLag.
func (r *Repository) notify(sig Signature, seq uint64) {
	r.mu.Lock()
	subs := append([]subscription(nil), r.subs[sig.SKU]...)
	lag := r.PriorityLag
	contrib := make(map[string]bool, len(subs))
	for _, s := range subs {
		contrib[s.pseudonym] = r.contrib[s.pseudonym]
	}
	r.mu.Unlock()

	for _, s := range subs {
		isContrib := contrib[s.pseudonym]
		n := Notification{Signature: sig, Seq: seq, Priority: isContrib}
		mNotifies.Inc()
		if isContrib || lag == 0 {
			s.fn(n)
			continue
		}
		sub := s
		time.AfterFunc(lag, func() { sub.fn(n) })
	}
}

// Fetch lists cleared signatures for a SKU, newest first.
func (r *Repository) Fetch(sku string) []Signature {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Signature
	for _, s := range r.bySKU[sku] {
		if !s.Quarantined {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Submitted.After(out[j].Submitted) })
	return out
}

// SKUs lists SKUs with at least one signature (cleared or not).
func (r *Repository) SKUs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.bySKU))
	for sku, sigs := range r.bySKU {
		if len(sigs) > 0 {
			out = append(out, sku)
		}
	}
	sort.Strings(out)
	return out
}

// Stats reports totals for diagnostics.
func (r *Repository) Stats() (total, quarantined int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.byID {
		total++
		if s.Quarantined {
			quarantined++
		}
	}
	return total, quarantined
}
