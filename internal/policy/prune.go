package policy

import (
	"strings"
)

// PruneReport quantifies the state-space reduction the two §3.2
// strategies achieve on a policy.
type PruneReport struct {
	// FullStates is |S| over the whole domain.
	FullStates float64
	// ReferencedVars is the policy's support.
	ReferencedVars []string
	// IndependentStates is |S| restricted to referenced variables
	// (independence pruning: unreferenced devices/variables factor
	// out).
	IndependentStates float64
	// EquivalenceClasses counts distinct posture assignments over the
	// referenced space (posture-equivalence collapsing) — the true
	// size of the compiled policy.
	EquivalenceClasses int
	// Enumerated reports how many projected states were walked
	// (equals IndependentStates unless the limit tripped).
	Enumerated int
	// Complete is false if the enumeration limit was hit before
	// covering the projected space.
	Complete bool
}

// Compiled is the pruned lookup structure: posture assignments keyed
// by the projection of the state onto the referenced variables.
// Lookups cost one projection + one map hit regardless of how many
// irrelevant devices the deployment has.
type Compiled struct {
	vars    []string
	classes map[string]map[string]Posture // projection key → device → posture
	fsm     *FSM
}

// Compile enumerates the projected space (bounded by limit; 0 = up to
// 1<<20 states) and builds the pruned structure plus its report.
func (f *FSM) Compile(limit int) (*Compiled, PruneReport) {
	if limit <= 0 {
		limit = 1 << 20
	}
	report := PruneReport{
		FullStates:     f.Domain.StateCount(),
		ReferencedVars: f.ReferencedVars(),
	}

	// Projected domain: only referenced variables.
	proj := NewDomain()
	refSet := map[string]bool{}
	for _, v := range report.ReferencedVars {
		refSet[v] = true
		if name, ok := strings.CutPrefix(v, "dev:"); ok {
			proj.AddDevice(name, f.Domain.DeviceContexts(name)...)
		} else if name, ok := strings.CutPrefix(v, "env:"); ok {
			proj.AddEnvVar(name, f.Domain.EnvLevels(name)...)
		}
	}
	report.IndependentStates = proj.StateCount()

	c := &Compiled{
		vars:    report.ReferencedVars,
		classes: make(map[string]map[string]Posture),
		fsm:     f,
	}
	classKeys := map[string]bool{}
	visited, complete := proj.EnumerateStates(limit, func(s State) bool {
		postures := f.Lookup(s)
		// Drop devices not declared in the projection... they default
		// to allow and do not affect equivalence.
		key := s.ProjectionKey(report.ReferencedVars)
		relevant := make(map[string]Posture)
		var sig strings.Builder
		for _, dev := range f.Domain.Devices() {
			p := postures[dev]
			relevant[dev] = p
			sig.WriteString(dev)
			sig.WriteByte('=')
			sig.WriteString(p.Key())
			sig.WriteByte('&')
		}
		c.classes[key] = relevant
		classKeys[sig.String()] = true
		return true
	})
	report.Enumerated = visited
	report.Complete = complete
	report.EquivalenceClasses = len(classKeys)
	return c, report
}

// Lookup resolves postures through the pruned structure; states
// differing only in unreferenced variables share one entry. Falls
// back to direct evaluation if the projection was not covered
// (enumeration limit).
func (c *Compiled) Lookup(s State) map[string]Posture {
	key := s.ProjectionKey(c.vars)
	if postures, ok := c.classes[key]; ok {
		return postures
	}
	return c.fsm.Lookup(s)
}

// Size reports the number of stored projected states.
func (c *Compiled) Size() int { return len(c.classes) }
