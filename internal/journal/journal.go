// Package journal is IoTSec's forensic event log: a bounded,
// lock-cheap ring of structured events covering the whole Figure 2
// loop — detected anomalies, IDS alerts, device events, FSM posture
// transitions, FLOW_MOD emission/application, µmbox boots and
// reconfigurations, and signature publishes/votes. Every event
// carries the trace ID of the causal chain it belongs to (threaded
// end-to-end via context.Context and internal/telemetry spans), a
// wall-clock timestamp and a monotonic offset, so a single sensor
// anomaly can be reconstructed into the exact enforcement it caused.
//
// The write path is one short mutex-guarded slot store (no
// allocation, no fan-out unless a tail subscriber is attached); the
// BenchmarkJournalAppend budget is < 100ns/op so hot paths can
// journal unconditionally.
package journal

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/telemetry"
)

// Type classifies an event.
type Type string

// Event types, one per observable stage of the detect → policy →
// controller → µmbox chain.
const (
	// TypeDeviceEvent is a raw device-emitted event entering the view.
	TypeDeviceEvent Type = "device-event"
	// TypeAnomaly is a behavioral-anomaly detection.
	TypeAnomaly Type = "anomaly"
	// TypeAlert is a signature (IDS) match.
	TypeAlert Type = "alert"
	// TypeViewChange is a committed state-variable change (the FSM
	// input transition).
	TypeViewChange Type = "view-change"
	// TypePosture is a recomputed posture applied to a device.
	TypePosture Type = "posture"
	// TypeFlowMod is a FLOW_MOD emitted southbound by the controller.
	TypeFlowMod Type = "flow-mod"
	// TypeFlowApplied is a FLOW_MOD applied by a switch agent (the far
	// side of the OpenFlow wire; proves the trace ID crossed it).
	TypeFlowApplied Type = "flow-applied"
	// TypeMboxBoot is a µmbox instance boot.
	TypeMboxBoot Type = "mbox-boot"
	// TypeMboxReconfig is a live µmbox pipeline reconfiguration.
	TypeMboxReconfig Type = "mbox-reconfig"
	// TypeSigPublish is a signature published to a repository.
	TypeSigPublish Type = "sig-publish"
	// TypeSigVote is a community vote on a signature.
	TypeSigVote Type = "sig-vote"
	// TypeSouthDown is a southbound session loss (either side of the
	// wire: an agent losing its controller, or the controller reaping
	// a dead switch session).
	TypeSouthDown Type = "southbound-down"
	// TypeSouthUp is a southbound session (re-)establishment.
	TypeSouthUp Type = "southbound-up"
	// TypeSouthReplay is an agent replaying events buffered while
	// disconnected (fail-static degradation) after a re-handshake.
	TypeSouthReplay Type = "southbound-replay"
	// TypeSigrepoDown is a northbound (signature repository) session
	// loss on the gateway side.
	TypeSigrepoDown Type = "sigrepo-down"
	// TypeSigrepoUp is a northbound session (re-)establishment.
	TypeSigrepoUp Type = "sigrepo-up"
	// TypeSigrepoReplay covers northbound catch-up after a reconnect:
	// cursor-based re-delivery of cleared signatures missed during the
	// outage, and the durable publish/vote outbox draining.
	TypeSigrepoReplay Type = "sigrepo-replay"
	// TypeMboxPanic is a µmbox pipeline element panicking on a frame;
	// the pipeline recovered and applied its fail-mode instead of
	// crashing the gateway.
	TypeMboxPanic Type = "mbox-panic"
	// TypeSLOBurn is the SLO watchdog detecting sustained burn: the
	// windowed detect→enforce latency (or incomplete-chain rate)
	// exceeded the configured objective's error budget.
	TypeSLOBurn Type = "slo-burn"
	// TypeProfileLearned is a SKU behavior profile distilled from a
	// training window (or updated by a crowd fetch).
	TypeProfileLearned Type = "profile-learned"
	// TypeProfileEnforced is a device placed under (or refreshed
	// into) deny-by-default profile enforcement.
	TypeProfileEnforced Type = "profile-enforced"
	// TypeProfileViolation is live traffic deviating from an enforced
	// device's SKU profile (unauthorized service, address hop, rate
	// envelope breach).
	TypeProfileViolation Type = "profile-violation"
	// TypeRogueQuarantine is an unregistered MAC detected under
	// lockdown and cut off at the switch.
	TypeRogueQuarantine Type = "rogue-quarantine"
	// TypeCtrlFailover is a partition-local controller declared dead by
	// the deadman supervisor (the start of a recovery trace).
	TypeCtrlFailover Type = "controller-failover"
	// TypeCtrlRehomed is an orphaned partition re-assigned to a new home
	// (a surviving local controller, or the global controller in
	// fail-global mode) with its state rebuilt from checkpoint + journal
	// replay + flow-table readback.
	TypeCtrlRehomed Type = "partition-rehomed"
	// TypeCtrlRecovered closes a recovery trace: quarantines re-pushed,
	// state rebuilt, postures reconciled — the partition is protected
	// again. The detail carries the measured recovery duration.
	TypeCtrlRecovered Type = "recovery-complete"
)

// Severity ranks events for filtering.
type Severity uint8

// Severities, in ascending order.
const (
	Debug Severity = iota
	Info
	Warn
	Critical
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Critical:
		return "critical"
	default:
		return "unknown"
	}
}

// MarshalJSON renders severities as their names.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a severity name (clients decoding /debug/journal
// responses need the round trip).
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sev, ok := ParseSeverity(name)
	if !ok {
		return fmt.Errorf("journal: unknown severity %q", name)
	}
	*s = sev
	return nil
}

// ParseSeverity maps a name back to a Severity (ok=false on unknown).
func ParseSeverity(name string) (Severity, bool) {
	switch name {
	case "debug":
		return Debug, true
	case "info":
		return Info, true
	case "warn":
		return Warn, true
	case "critical":
		return Critical, true
	}
	return 0, false
}

// Event is one forensic record.
type Event struct {
	// Seq is the journal-assigned sequence number; within one journal
	// it is a total order consistent with causality of the emitting
	// call chain.
	Seq uint64 `json:"seq"`
	// TraceID links the event to the causal chain that produced it
	// (0 = emitted outside any trace).
	TraceID uint64 `json:"trace_id,omitempty"`
	// Wall is the wall-clock timestamp.
	Wall time.Time `json:"wall"`
	// Mono is the monotonic offset since the journal was created —
	// immune to wall-clock steps, so intervals between events are
	// trustworthy.
	Mono time.Duration `json:"mono_ns"`
	// Type classifies the event.
	Type Type `json:"type"`
	// Severity ranks it.
	Severity Severity `json:"severity"`
	// Device is the device the event concerns ("" when not
	// device-scoped, e.g. signature publishes carry the SKU here).
	Device string `json:"device,omitempty"`
	// Detail is a one-line human-readable description.
	Detail string `json:"detail,omitempty"`
}

// Journal is the bounded event ring. The zero value is not usable;
// call New (or use Default).
type Journal struct {
	start time.Time

	mu   sync.Mutex
	ring []Event
	pos  int
	full bool
	seq  uint64
	subs []*tailSub
	taps []*Subscription

	// nsubs mirrors len(subs)+len(taps) so the append fast path can
	// skip subscriber fan-out with one atomic load.
	nsubs   atomic.Int32
	dropped atomic.Uint64 // tail-subscriber drops
}

// New builds a journal retaining up to capacity events (values < 1
// default to 8192).
func New(capacity int) *Journal {
	if capacity < 1 {
		capacity = 8192
	}
	return &Journal{start: time.Now(), ring: make([]Event, capacity)}
}

// Default is the process-wide journal that instrumented packages
// record into and that cmd binaries expose at /debug/journal.
var Default = New(8192)

// The journal's own metrics are a scrape-time collector over Default
// rather than per-append counter increments: the append fast path
// stays within its <100ns budget, and the scrape sees exact totals
// (the sequence number is the append count).
func init() {
	telemetry.Default.RegisterCollector("journal", func(emit func(name string, kind telemetry.Kind, help string, labels telemetry.Labels, value float64)) {
		appended, drops := Default.Stats()
		emit("iotsec_journal_events_total", telemetry.KindCounter,
			"Events appended to the forensic journal.", nil, float64(appended))
		emit("iotsec_journal_tail_drops_total", telemetry.KindCounter,
			"Events dropped on full tail-subscriber buffers.", nil, float64(drops))
	})
}

// Record stamps and appends an event, deriving the trace ID from the
// span carried by ctx. This is the call instrumented code makes.
func (j *Journal) Record(ctx context.Context, t Type, sev Severity, device, detail string) {
	now := time.Now()
	e := Event{
		TraceID:  telemetry.TraceID(ctx),
		Wall:     now,
		Mono:     now.Sub(j.start),
		Type:     t,
		Severity: sev,
		Device:   device,
		Detail:   detail,
	}
	j.append(e)
}

// Record appends to the Default journal.
func Record(ctx context.Context, t Type, sev Severity, device, detail string) {
	Default.Record(ctx, t, sev, device, detail)
}

// RecordTrace appends an event with an explicit trace ID — for code
// on the far side of a wire protocol where the trace arrives in the
// decoded message rather than a context (e.g. switch agents applying
// a FLOW_MOD).
func (j *Journal) RecordTrace(traceID uint64, t Type, sev Severity, device, detail string) {
	now := time.Now()
	j.append(Event{
		TraceID:  traceID,
		Wall:     now,
		Mono:     now.Sub(j.start),
		Type:     t,
		Severity: sev,
		Device:   device,
		Detail:   detail,
	})
}

// RecordTrace appends to the Default journal.
func RecordTrace(traceID uint64, t Type, sev Severity, device, detail string) {
	Default.RecordTrace(traceID, t, sev, device, detail)
}

// append assigns the sequence number and stores the event.
func (j *Journal) append(e Event) {
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	j.ring[j.pos] = e
	j.pos++
	if j.pos == len(j.ring) {
		j.pos = 0
		j.full = true
	}
	if j.nsubs.Load() > 0 {
		for _, s := range j.subs {
			select {
			case s.ch <- e:
			default:
				j.dropped.Add(1)
			}
		}
		for _, t := range j.taps {
			t.notify()
		}
	}
	j.mu.Unlock()
}

// Filter selects events. Zero-valued fields match everything.
type Filter struct {
	// TraceID restricts to one causal chain.
	TraceID uint64
	// Device restricts to one device.
	Device string
	// Type restricts to one event type.
	Type Type
	// Since drops events whose wall clock is before it.
	Since time.Time
	// Until drops events whose wall clock is after it (zero = no
	// upper bound), giving Since..Until range queries.
	Until time.Time
	// MinSeverity drops events below it.
	MinSeverity Severity
	// Limit keeps only the most recent N matches (0 = all retained).
	Limit int
}

// matches applies the filter.
func (f Filter) matches(e Event) bool {
	if f.TraceID != 0 && e.TraceID != f.TraceID {
		return false
	}
	if f.Device != "" && e.Device != f.Device {
		return false
	}
	if f.Type != "" && e.Type != f.Type {
		return false
	}
	if !f.Since.IsZero() && e.Wall.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && e.Wall.After(f.Until) {
		return false
	}
	if e.Severity < f.MinSeverity {
		return false
	}
	return true
}

// Snapshot returns retained events matching f in causal (sequence)
// order, oldest first. With Limit set, only the most recent Limit
// matches are kept (still oldest-first).
func (j *Journal) Snapshot(f Filter) []Event {
	j.mu.Lock()
	size := j.pos
	if j.full {
		size = len(j.ring)
	}
	out := make([]Event, 0, size)
	for i := 0; i < size; i++ {
		idx := i
		if j.full {
			idx = (j.pos + i) % len(j.ring)
		}
		if e := j.ring[idx]; f.matches(e) {
			out = append(out, e)
		}
	}
	j.mu.Unlock()
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Stats reports events appended since creation and tail drops. The
// sequence counter doubles as the append total.
func (j *Journal) Stats() (appended, tailDrops uint64) {
	j.mu.Lock()
	appended = j.seq
	j.mu.Unlock()
	return appended, j.dropped.Load()
}

// tailSub is one streaming subscriber.
type tailSub struct {
	ch chan Event
}

// Tail subscribes to the live event stream: every subsequent append
// is offered to the returned channel. Slow consumers lose events
// (non-blocking send; drops are counted) rather than stalling
// writers. cancel unsubscribes and closes the channel.
func (j *Journal) Tail(buffer int) (events <-chan Event, cancel func()) {
	if buffer < 1 {
		buffer = 256
	}
	s := &tailSub{ch: make(chan Event, buffer)}
	j.mu.Lock()
	j.subs = append(j.subs, s)
	j.nsubs.Store(int32(len(j.subs) + len(j.taps)))
	j.mu.Unlock()
	var once sync.Once
	return s.ch, func() {
		once.Do(func() {
			j.mu.Lock()
			for i, sub := range j.subs {
				if sub == s {
					j.subs = append(j.subs[:i], j.subs[i+1:]...)
					break
				}
			}
			j.nsubs.Store(int32(len(j.subs) + len(j.taps)))
			j.mu.Unlock()
			close(s.ch)
		})
	}
}

// Subscription is a bounded drop-oldest fan-out of the live event
// stream — the journal tap behind the online SLO plane. Unlike Tail
// (whose non-blocking channel sends lose the NEWEST events when the
// consumer lags), a Subscription keeps the newest events and evicts
// the OLDEST, like the southbound degradation ring and the sigrepo
// notify rings: for SLO accounting the recent past is what matters,
// and anything old enough to be evicted belongs to a chain that has
// already aged past the correlator's incomplete-chain timeout (the
// eviction is counted, so accounting loss is observable, never
// silent).
//
// A Subscription does not buffer its own copy of the stream: the
// journal's ring already holds every event, so the tap is just a
// cursor into it. The append-side cost is one subtraction-and-compare
// (plus a non-blocking wake on the empty→non-empty transition); no
// copy, no allocation. Drain copies the unread window out of the
// shared ring on the consumer's side of the lock. With no
// subscription attached the append fast path is untouched (one atomic
// load, same as before).
type Subscription struct {
	j *Journal

	// cursor/cap/limit/evicted are guarded by j.mu (the wake check runs
	// inside append's critical section; consumer-side accessors take the
	// same lock).
	cursor  uint64 // last sequence number delivered (or skipped)
	cap     uint64 // max unread backlog before oldest events are evicted
	limit   uint64 // Close fence: events past this seq are never delivered
	evicted uint64

	wake   chan struct{}
	closed chan struct{}
	once   sync.Once
}

// Subscribe attaches a drop-oldest tap retaining up to buffer pending
// events (values < 1 default to 1024; values beyond the journal's own
// ring are clamped to it, since overwritten slots are gone either
// way). Consumers loop on Wait and Drain; Close detaches.
func (j *Journal) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1024
	}
	j.mu.Lock()
	if buffer > len(j.ring) {
		buffer = len(j.ring)
	}
	s := &Subscription{
		j:      j,
		cursor: j.seq,
		cap:    uint64(buffer),
		limit:  ^uint64(0),
		wake:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	j.taps = append(j.taps, s)
	j.nsubs.Store(int32(len(j.subs) + len(j.taps)))
	j.mu.Unlock()
	return s
}

// notify is called with j.mu held after each append. The wake is only
// sent on the empty→non-empty transition: while events are already
// pending the consumer has an outstanding wake (or is mid-drain and
// will pick these up anyway), so a bursty stream pays one channel send
// per batch, not per event.
func (s *Subscription) notify() {
	if s.j.seq-s.cursor == 1 {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// reconcileLocked advances the cursor past events the journal ring has
// outgrown (or that exceed the subscription's own backlog cap),
// counting them as evicted. Called with j.mu held.
func (s *Subscription) reconcileLocked() {
	end := s.j.seq
	if end > s.limit {
		end = s.limit
	}
	if unread := end - s.cursor; unread > s.cap {
		excess := unread - s.cap
		s.evicted += excess
		s.cursor += excess
	}
}

// Drain removes and returns all pending events, oldest first (nil
// when empty). The unread window is copied out of the journal's ring;
// the lock is held for the copy, but the window is bounded by the
// subscription's buffer.
func (s *Subscription) Drain() []Event {
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
	s.reconcileLocked()
	end := s.j.seq
	if end > s.limit {
		end = s.limit
	}
	if end == s.cursor {
		return nil
	}
	out := make([]Event, 0, end-s.cursor)
	ring := s.j.ring
	for q := s.cursor + 1; q <= end; q++ {
		out = append(out, ring[int((q-1)%uint64(len(ring)))])
	}
	s.cursor = end
	return out
}

// Pending reports buffered, undrained events.
func (s *Subscription) Pending() int {
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
	s.reconcileLocked()
	end := s.j.seq
	if end > s.limit {
		end = s.limit
	}
	return int(end - s.cursor)
}

// Evicted reports events dropped (oldest-first) to make room for
// newer ones while the consumer lagged.
func (s *Subscription) Evicted() uint64 {
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
	s.reconcileLocked()
	return s.evicted
}

// Wait returns a channel that receives (at least) one wake-up after
// events become pending. Spurious wake-ups are possible; pair with
// Drain in a loop.
func (s *Subscription) Wait() <-chan struct{} { return s.wake }

// Done is closed when the subscription is detached.
func (s *Subscription) Done() <-chan struct{} { return s.closed }

// Close detaches the tap. Idempotent; pending events remain drainable.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.j.mu.Lock()
		for i, t := range s.j.taps {
			if t == s {
				s.j.taps = append(s.j.taps[:i], s.j.taps[i+1:]...)
				break
			}
		}
		s.j.nsubs.Store(int32(len(s.j.subs) + len(s.j.taps)))
		// Fence the cursor window: events appended after Close are
		// never delivered, but the backlog accumulated before it
		// remains drainable.
		s.limit = s.j.seq
		s.j.mu.Unlock()
		close(s.closed)
	})
}
