package forensics

import (
	"context"
	"testing"

	"iotsec/internal/journal"
	"iotsec/internal/telemetry"
)

// BenchmarkJournalAppendCapturerDetached is the baseline: the journal
// hot path with no incident capturer attached (identical to the SLO
// plane's no-tap baseline, re-measured here so the pair shares one
// run's noise floor).
func BenchmarkJournalAppendCapturerDetached(b *testing.B) {
	j := journal.New(8192)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record(ctx, journal.TypeDeviceEvent, journal.Debug, "bench", "routine")
	}
}

// BenchmarkJournalAppendCapturerAttached measures the append hot path
// with a live capturer draining the tap — the attached-tap budget the
// issue bounds at ≤5% over baseline. The workload is routine traffic
// (the overwhelming majority in production): the capturer drains and
// discards it without opening incidents.
func BenchmarkJournalAppendCapturerAttached(b *testing.B) {
	j := journal.New(8192)
	c := NewCapturer(j, Options{Registry: telemetry.NewRegistry()})
	defer c.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record(ctx, journal.TypeDeviceEvent, journal.Debug, "bench", "routine")
	}
}

// BenchmarkStorePut measures the durable seal path: marshal + append +
// index of a 4-event incident. Off the hot path (incidents are rare),
// but bounded so a capture storm cannot stall the consumer goroutine
// for long.
func BenchmarkStorePut(b *testing.B) {
	store, err := OpenStore(b.TempDir(), StoreOptions{SegmentBytes: 4 << 20, MaxBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	inc := testIncident(1, "cam", 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.TraceID = uint64(i + 1)
		inc.ID = IncidentID(inc.TraceID)
		if err := store.Put(inc); err != nil {
			b.Fatal(err)
		}
	}
}
