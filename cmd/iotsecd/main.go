// Command iotsecd runs a live IoTSec deployment: a simulated smart
// home (camera, Wemo plug + oven, fire alarm, window actuator,
// thermostat) under the combined Figure 3/4/5 policy, with the admin
// API served for cmd/mboxctl. The physical environment advances in
// real time (one tick per -tick).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/core"
	"iotsec/internal/journal"
	"iotsec/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7700", "admin API address")
	tick := flag.Duration("tick", 250*time.Millisecond, "wall time per environment tick")
	telemetryAddr := flag.String("telemetry-addr", "",
		"serve /metrics, /debug/telemetry, /debug/journal and /debug/pprof on this address (empty = disabled)")
	debugRemote := flag.Bool("debug-remote", false,
		"allow non-loopback clients to reach the unauthenticated /debug/ surfaces (pprof, journal); off by default")
	slowSpan := flag.Duration("slow-span", 0,
		"log spans slower than this threshold to stderr (0 = disabled)")
	flag.Parse()

	if *slowSpan > 0 {
		telemetry.Default.Spans().SetSlowThreshold(*slowSpan, func(fs telemetry.FinishedSpan) {
			fmt.Fprintf(os.Stderr, "iotsecd: slow span %s took %s (trace %d)\n", fs.Name, fs.Duration, fs.TraceID)
		})
	}

	p, err := core.DemoHome()
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotsecd: %v\n", err)
		os.Exit(1)
	}
	p.Start()
	defer p.Stop()

	if *telemetryAddr != "" {
		p.Switch.ExportTelemetry(telemetry.Default)
		tsrv, taddr, err := telemetry.Default.Serve(*telemetryAddr,
			telemetry.Mount{Pattern: "/debug/journal", Handler: journal.Default.Handler()})
		if err != nil {
			fmt.Fprintf(os.Stderr, "iotsecd: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer tsrv.Close()
		if *debugRemote {
			tsrv.AllowRemoteDebug()
		}
		fmt.Printf("iotsecd: telemetry on http://%s/metrics\n", taddr)
	}

	admin, addr, err := p.ServeAdmin(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotsecd: %v\n", err)
		os.Exit(1)
	}
	defer admin.Close()
	fmt.Printf("iotsecd: admin API on %s (try: mboxctl -addr %s status)\n", addr, addr)

	// Surface state changes on stdout.
	p.Global.View.Observe(func(_ context.Context, c controller.ViewChange) {
		fmt.Printf("iotsecd: [v%d] %s = %s (%s) trace=%d\n", c.Version, c.Var, c.Value, c.Reason, c.TraceID)
	})

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\niotsecd: shutting down")
			return
		case <-ticker.C:
			p.Env.Step()
		}
	}
}
