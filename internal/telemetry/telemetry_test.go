package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("iotsec_test_ops_total", "ops")
	g := r.NewGauge("iotsec_test_depth", "depth")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Dec()
	g.Add(3)
	if g.Value() != 9 {
		t.Fatalf("gauge = %d, want 9", g.Value())
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("iotsec_test_total", "x")
	b := r.NewCounter("iotsec_test_total", "x")
	if a != b {
		t.Fatal("re-registration should return the original metric")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.NewGauge("iotsec_test_total", "x")
}

func TestCounterVecCopyOnWrite(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("iotsec_test_verdicts_total", "verdicts", "element", "verdict")
	v.With("ids", "drop").Add(3)
	v.With("ids", "forward").Inc()
	if v.With("ids", "drop") != v.With("ids", "drop") {
		t.Fatal("With must be stable")
	}
	samples := v.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	for _, s := range samples {
		if len(s.Labels) != 2 || s.Labels[0].Key != "element" || s.Labels[1].Key != "verdict" {
			t.Fatalf("bad labels: %+v", s.Labels)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("iotsec_test_latency_seconds", "lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got < 5.5 || got > 5.6 {
		t.Fatalf("sum = %v, want ~5.555", got)
	}
	_, _, buckets := h.snapshot()
	want := []uint64{1, 1, 1, 1}
	for i, w := range want {
		if buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (%v)", i, buckets[i], w, buckets)
		}
	}
	// Median falls in the (0.1, 1] bucket.
	if q := h.Quantile(0.5); q < 0.01 || q > 1 {
		t.Fatalf("p50 = %v out of range", q)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("iotsec_test_elem_seconds", "x", []float64{1}, "element")
	v.With("logger").Observe(0.5)
	v.With("ids").Observe(2)
	var lines strings.Builder
	if err := r.WritePrometheus(&lines); err != nil {
		t.Fatal(err)
	}
	out := lines.String()
	for _, want := range []string{
		`iotsec_test_elem_seconds_bucket{element="logger",le="1"} 1`,
		`iotsec_test_elem_seconds_bucket{element="ids",le="+Inf"} 1`,
		`iotsec_test_elem_seconds_count{element="ids"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("iotsec_test_frames_total", "frames seen")
	c.Add(42)
	v := r.NewGaugeVec("iotsec_test_ports", "ports", "switch")
	v.With("uplink").Set(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP iotsec_test_frames_total frames seen",
		"# TYPE iotsec_test_frames_total counter",
		"iotsec_test_frames_total 42",
		`iotsec_test_ports{switch="uplink"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector("ports:sw1", func(emit func(string, Kind, string, Labels, float64)) {
		emit("iotsec_test_port_tx_frames", KindGauge, "tx", Labels{{Key: "port", Value: "1"}}, 10)
		emit("iotsec_test_port_tx_frames", KindGauge, "tx", Labels{{Key: "port", Value: "2"}}, 20)
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `iotsec_test_port_tx_frames{port="2"} 20`) {
		t.Fatalf("collector output missing:\n%s", b.String())
	}
	// Replace-on-reregister.
	r.RegisterCollector("ports:sw1", func(emit func(string, Kind, string, Labels, float64)) {})
	b.Reset()
	_ = r.WritePrometheus(&b)
	if strings.Contains(b.String(), "port_tx_frames{") {
		t.Fatal("replaced collector still emitting")
	}
	r.UnregisterCollector("ports:sw1")
}

func TestSpans(t *testing.T) {
	st := NewSpanStore(8, 1)
	ctx, root := st.StartSpan(context.Background(), "event-to-enforcement")
	root.SetAttr("device", "cam")
	_, child := st.StartSpan(ctx, "reconfigure")
	child.End()
	root.End()
	root.End() // idempotent

	spans := st.Recent(0)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// Newest first: root ended last.
	if spans[0].Name != "event-to-enforcement" || spans[1].Name != "reconfigure" {
		t.Fatalf("order wrong: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].ParentID != spans[0].ID || spans[1].TraceID != spans[0].TraceID {
		t.Fatalf("child not linked: %+v vs %+v", spans[1], spans[0])
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Value != "cam" {
		t.Fatalf("attrs lost: %+v", spans[0].Attrs)
	}
	started, finished := st.Stats()
	if started != 2 || finished != 2 {
		t.Fatalf("stats = %d/%d, want 2/2", started, finished)
	}
}

func TestSpanSampling(t *testing.T) {
	st := NewSpanStore(64, 4)
	for i := 0; i < 16; i++ {
		_, sp := st.StartSpan(context.Background(), "op")
		sp.End()
	}
	if got := len(st.Recent(0)); got != 4 {
		t.Fatalf("sampled spans = %d, want 4 (1 in 4 of 16)", got)
	}
}

func TestSpanRingBounded(t *testing.T) {
	st := NewSpanStore(4, 1)
	for i := 0; i < 10; i++ {
		_, sp := st.StartSpan(context.Background(), fmt.Sprintf("op%d", i))
		sp.End()
	}
	spans := st.Recent(0)
	if len(spans) != 4 {
		t.Fatalf("ring = %d, want 4", len(spans))
	}
	if spans[0].Name != "op9" || spans[3].Name != "op6" {
		t.Fatalf("ring order wrong: %v", spans)
	}
}

// TestConcurrentWritersAndScrapes hammers counters, gauges, vectors
// and histograms from many goroutines while scraping concurrently —
// the -race guarantee the exposition path promises.
func TestConcurrentWritersAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("iotsec_test_total", "t")
	g := r.NewGauge("iotsec_test_gauge", "g")
	v := r.NewCounterVec("iotsec_test_vec_total", "v", "who")
	h := r.NewHistogram("iotsec_test_hist_seconds", "h", []float64{0.001, 0.01, 0.1})

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			who := fmt.Sprintf("w%d", w%3)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				v.With(who).Inc()
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	// Concurrent scrapes.
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 3; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
					var b strings.Builder
					_ = r.WritePrometheus(&b)
					_ = r.Snapshot(8)
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	if c.Value() != writers*perWriter {
		t.Fatalf("counter = %d, want %d", c.Value(), writers*perWriter)
	}
	if h.Count() != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perWriter)
	}
	var vecTotal uint64
	for _, s := range v.Samples() {
		vecTotal += uint64(s.Value)
	}
	if vecTotal != writers*perWriter {
		t.Fatalf("vec total = %d, want %d", vecTotal, writers*perWriter)
	}
}

func TestServeAndScrapeHTTP(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("iotsec_test_http_total", "via http").Add(3)
	srv, addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "iotsec_test_http_total 3") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + addr + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	var snap SnapshotJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Serve registers the runtime-stats collector, so the snapshot
	// carries the explicit counter plus iotsec_runtime_* gauges.
	var sawCounter, sawRuntime bool
	for _, m := range snap.Metrics {
		switch {
		case m.Name == "iotsec_test_http_total":
			sawCounter = len(m.Samples) == 1 && m.Samples[0].Value == 3
		case strings.HasPrefix(m.Name, "iotsec_runtime_"):
			sawRuntime = true
		}
	}
	if !sawCounter {
		t.Fatalf("snapshot missing iotsec_test_http_total=3: %+v", snap.Metrics)
	}
	if !sawRuntime {
		t.Fatalf("snapshot missing iotsec_runtime_* gauges: %+v", snap.Metrics)
	}
}

// TestServerCloseNoGoroutineLeak verifies telemetry server teardown
// releases every goroutine it started.
func TestServerCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		r := NewRegistry()
		srv, addr, err := r.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestFlusher(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("iotsec_test_flush_total", "f")
	c.Add(2)
	var mu sync.Mutex
	var got []*SnapshotJSON
	stop := r.StartFlusher(5*time.Millisecond, func(s *SnapshotJSON) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("flushes = %d, want >= 2 (periodic + final)", len(got))
	}
	last := got[len(got)-1]
	if len(last.Metrics) != 1 || last.Metrics[0].Samples[0].Value != 2 {
		t.Fatalf("final snapshot wrong: %+v", last.Metrics)
	}
}

func TestTimeHelper(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("iotsec_test_op_seconds", "op", []float64{10})
	func() { defer Time(h)() }()
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
}
