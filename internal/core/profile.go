package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"iotsec/internal/ids"
	"iotsec/internal/journal"
	"iotsec/internal/packet"
	"iotsec/internal/profile"
	"iotsec/internal/telemetry"
)

// ProfileOptions configure the platform's behavior-profile plane.
type ProfileOptions struct {
	// Enforce pushes compiled deny-by-default rules automatically:
	// when a device registers whose SKU already has a profile, and
	// whenever a profile lands or changes.
	Enforce bool
	// Lockdown quarantines any unregistered MAC that sources traffic
	// (rogue device join).
	Lockdown bool
	// RateHeadroom tunes the learner's envelope multiplier
	// (default 4).
	RateHeadroom float64
}

// ProfilePlane is the platform-side driver of the profile subsystem:
// it owns the engine, feeds learned profiles to the crowd repository,
// installs crowd-validated profiles, pushes compiled enforcement
// through steering, and escalates live violations into the standard
// anomaly→posture→FLOW_MOD pipeline so detect→enforce MTTR covers
// profile events too.
type ProfilePlane struct {
	p      *Platform
	engine *profile.Engine

	mu         sync.Mutex
	enforceAll bool
	generation int
	pending    map[string]bool // enforce requests awaiting steering
}

// EnableProfiles activates the behavior-profile plane: an engine is
// tapped into the fabric, every managed device (current and future)
// is registered with its identity, and attached hosts are whitelisted
// for lockdown. Idempotent; returns the existing plane if already
// enabled.
func (p *Platform) EnableProfiles(opts ProfileOptions) *ProfilePlane {
	p.mu.Lock()
	if p.profilePlane != nil {
		pl := p.profilePlane
		p.mu.Unlock()
		return pl
	}
	pl := &ProfilePlane{
		p:          p,
		enforceAll: opts.Enforce,
		pending:    make(map[string]bool),
	}
	pl.engine = profile.NewEngine(profile.Options{
		OnViolation: pl.onViolation,
		OnRogue:     pl.onRogue,
		Lockdown:    opts.Lockdown,
	})
	if opts.RateHeadroom > 0 {
		pl.engine.Learner().RateHeadroom = opts.RateHeadroom
	}
	p.profilePlane = pl
	devices := make([]*Managed, 0, len(p.devices))
	for _, m := range p.devices {
		devices = append(devices, m)
	}
	hosts := append([]packet.MACAddress(nil), p.hostMACs...)
	p.mu.Unlock()

	for _, m := range devices {
		pl.engine.Register(identityOf(m))
	}
	for _, mac := range hosts {
		pl.engine.RegisterHostMAC(mac)
	}
	p.Network.AddTap(pl.engine.Tap())
	return pl
}

// Profiles returns the plane, if enabled.
func (p *Platform) Profiles() (*ProfilePlane, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.profilePlane, p.profilePlane != nil
}

// identityOf derives a device's enforcement identity.
func identityOf(m *Managed) profile.Identity {
	return profile.Identity{
		Name: m.Device.Name,
		SKU:  m.Device.Profile.SKU,
		MAC:  m.Device.MAC(),
		IP:   m.Device.IP(),
	}
}

// Engine exposes the underlying engine (debug handler, stats, health).
func (pl *ProfilePlane) Engine() *profile.Engine { return pl.engine }

// Generation reports the installed-profile generation (bumped by each
// FinishLearning). Controller checkpoints record it so recovery knows
// which profile set enforcement was running.
func (pl *ProfilePlane) Generation() uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return uint64(pl.generation)
}

// RegisterHealth adds the profile engine to a health registry
// (non-critical: a degraded profile plane signals active containment,
// not an inability to serve).
func (pl *ProfilePlane) RegisterHealth(h *telemetry.HealthRegistry) {
	h.Register("profile-engine", false, pl.engine.Health)
}

// deviceAdded is called by Platform.AddDevice under no locks.
func (pl *ProfilePlane) deviceAdded(m *Managed) {
	pl.engine.Register(identityOf(m))
	pl.mu.Lock()
	auto := pl.enforceAll
	pl.mu.Unlock()
	if !auto {
		return
	}
	if _, ok := pl.engine.Profile(m.Device.Profile.SKU); ok {
		_ = pl.EnforceDevice(context.Background(), m.Device.Name)
	}
}

// hostAttached whitelists a benign host MAC for lockdown.
func (pl *ProfilePlane) hostAttached(mac packet.MACAddress) {
	pl.engine.RegisterHostMAC(mac)
}

// StartLearning opens a training window; close it with
// FinishLearning.
func (pl *ProfilePlane) StartLearning() {
	pl.engine.StartLearning()
	journal.RecordTrace(0, journal.TypeProfileLearned, journal.Debug, "profiles",
		"training window opened")
}

// FinishLearning closes the window, distills one profile per managed
// SKU, publishes each to the crowd repository (when a sigrepo link is
// attached — queued durably if the link is down), and, in enforce
// mode, pushes enforcement for every device of a profiled SKU. Each
// FinishLearning bumps the profile generation, so re-learning after a
// legitimate behavior change (firmware update) supersedes the old
// profile everywhere.
func (pl *ProfilePlane) FinishLearning(ctx context.Context) []*profile.Profile {
	pl.mu.Lock()
	pl.generation++
	version := pl.generation
	pl.mu.Unlock()

	distilled := pl.engine.FinishLearning(version)
	skus := make([]string, 0, len(distilled))
	for sku := range distilled {
		skus = append(skus, sku)
	}
	sort.Strings(skus)

	out := make([]*profile.Profile, 0, len(skus))
	for _, sku := range skus {
		prof := distilled[sku]
		out = append(out, prof)
		journal.Record(ctx, journal.TypeProfileLearned, journal.Info, sku,
			fmt.Sprintf("v%d: %d services, %d device(s), envelope %.0f f/s",
				prof.Version, len(prof.Services), prof.Devices, prof.MaxRate))
		pl.publish(prof)
	}
	pl.enforceProfiled(ctx, skus)
	return out
}

// publish shares a profile through the crowd link, if one is
// attached. Transport failures land in the durable outbox inside
// Publish; encode failures are impossible for engine-produced
// profiles but logged defensively.
func (pl *ProfilePlane) publish(prof *profile.Profile) {
	pl.p.mu.Lock()
	link := pl.p.crowd
	pl.p.mu.Unlock()
	if link == nil {
		return
	}
	encoded, err := profile.Encode(prof)
	if err != nil {
		journal.RecordTrace(0, journal.TypeProfileLearned, journal.Warn, prof.SKU,
			fmt.Sprintf("encode for publish failed: %v", err))
		return
	}
	_, _ = link.Publish(prof.SKU, encoded,
		fmt.Sprintf("behavior profile v%d (%d services)", prof.Version, len(prof.Services)))
}

// Install folds a profile (crowd-fetched or hand-authored) into the
// engine and refreshes enforcement if it changed.
func (pl *ProfilePlane) Install(ctx context.Context, prof *profile.Profile, source string) {
	eff, changed := pl.engine.AcceptProfile(prof)
	if eff == nil {
		return
	}
	if !changed {
		return
	}
	journal.Record(ctx, journal.TypeProfileLearned, journal.Info, eff.SKU,
		fmt.Sprintf("v%d installed from %s: %d services", eff.Version, source, len(eff.Services)))
	pl.enforceProfiled(ctx, []string{eff.SKU})
}

// installCrowd is the sigrepo push/replay path.
func (pl *ProfilePlane) installCrowd(rule string) {
	prof, err := profile.Decode(rule)
	if err != nil {
		journal.RecordTrace(0, journal.TypeProfileLearned, journal.Warn, "crowd",
			fmt.Sprintf("rejected crowd profile: %v", err))
		return
	}
	pl.Install(context.Background(), prof, "crowd")
}

// enforceProfiled (re-)pushes enforcement in enforce mode: every
// managed device whose SKU is in the list and has a profile, plus
// devices already enforced (profile refresh).
func (pl *ProfilePlane) enforceProfiled(ctx context.Context, skus []string) {
	pl.mu.Lock()
	auto := pl.enforceAll
	pl.mu.Unlock()
	want := make(map[string]bool, len(skus))
	for _, sku := range skus {
		want[sku] = true
	}
	enforced := make(map[string]bool)
	for _, name := range pl.engine.EnforcedDevices() {
		enforced[name] = true
	}
	pl.p.mu.Lock()
	names := make([]string, 0, len(pl.p.devices))
	for name, m := range pl.p.devices {
		if want[m.Device.Profile.SKU] && (auto || enforced[name]) {
			names = append(names, name)
		}
	}
	pl.p.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		_ = pl.EnforceDevice(ctx, name)
	}
}

// EnforceDevice compiles the device's SKU profile and installs it as
// a persisted steering rule set (deny floor + identity-pinned
// allows). Without steering attached yet, the request is parked and
// replayed by UseSteering. Live violation checking starts immediately
// either way — detection does not wait for the switch.
func (pl *ProfilePlane) EnforceDevice(ctx context.Context, name string) error {
	mods, prof, err := pl.engine.Enforce(name)
	if err != nil {
		return err
	}
	pl.p.mu.Lock()
	steering := pl.p.steering
	pl.p.mu.Unlock()
	if steering == nil {
		pl.mu.Lock()
		pl.pending[name] = true
		pl.mu.Unlock()
		journal.Record(ctx, journal.TypeProfileEnforced, journal.Debug, name,
			"enforcement parked: no steering attached")
		return nil
	}
	ctx, span := telemetry.StartSpan(ctx, "core.profile_enforce")
	span.SetAttr("device", name)
	steering.InstallRuleSet(ctx, "profile:"+name, mods)
	journal.Record(ctx, journal.TypeProfileEnforced, journal.Info, name,
		fmt.Sprintf("sku %s v%d: deny floor + %d rules (%d services)",
			prof.SKU, prof.Version, len(mods), len(prof.Services)))
	span.End()
	return nil
}

// UnenforceDevice lifts profile enforcement for one device.
func (pl *ProfilePlane) UnenforceDevice(ctx context.Context, name string) {
	if !pl.engine.Unenforce(name) {
		return
	}
	pl.mu.Lock()
	delete(pl.pending, name)
	pl.mu.Unlock()
	pl.p.mu.Lock()
	steering := pl.p.steering
	pl.p.mu.Unlock()
	if steering != nil {
		steering.RemoveRuleSet(ctx, "profile:"+name)
	}
	journal.Record(ctx, journal.TypeProfileEnforced, journal.Info, name, "enforcement lifted")
}

// steeringAttached is called by Platform.UseSteering: parked
// enforcement requests are replayed now that rules have somewhere to
// go.
func (pl *ProfilePlane) steeringAttached() {
	pl.mu.Lock()
	parked := make([]string, 0, len(pl.pending))
	for name := range pl.pending {
		parked = append(parked, name)
	}
	pl.pending = make(map[string]bool)
	pl.mu.Unlock()
	sort.Strings(parked)
	for _, name := range parked {
		_ = pl.EnforceDevice(context.Background(), name)
	}
}

// onViolation escalates a live profile violation: the violation and
// the anomaly it implies are journaled on one fresh causal chain, and
// the anomaly drives the posture FSM — so the familiar
// anomaly→posture→FLOW_MOD→mbox-reconfig sequence (and its MTTR
// accounting) covers profile events.
func (pl *ProfilePlane) onViolation(v profile.Violation) {
	ctx, span := telemetry.StartSpan(context.Background(), "core.profile_violation")
	span.SetAttr("device", v.Device)
	span.SetAttr("kind", v.Kind)
	journal.Record(ctx, journal.TypeProfileViolation, journal.Warn, v.Device,
		fmt.Sprintf("%s: %s", v.Kind, v.Detail))
	journal.Record(ctx, journal.TypeAnomaly, journal.Warn, v.Device,
		fmt.Sprintf("%s: %s: %s (score 1.00)", ids.AnomalyProfile, v.Kind, v.Detail))
	pl.p.Global.View.HandleAnomaly(ctx, ids.Anomaly{
		Device: v.Device,
		Kind:   ids.AnomalyProfile,
		Detail: v.Kind + ": " + v.Detail,
		Score:  1,
		When:   v.When,
	})
	span.End()
}

// onRogue cuts an unregistered sender off at the switch. The
// quarantine persists in steering state (re-emitted on every switch
// reconnect) under a synthetic "rogue-<mac>" name.
func (pl *ProfilePlane) onRogue(mac packet.MACAddress, srcNode string) {
	ctx, span := telemetry.StartSpan(context.Background(), "core.rogue_quarantine")
	span.SetAttr("mac", mac.String())
	journal.Record(ctx, journal.TypeRogueQuarantine, journal.Critical, srcNode,
		fmt.Sprintf("unregistered MAC %s sourcing traffic; quarantining", mac))
	pl.p.mu.Lock()
	steering := pl.p.steering
	pl.p.mu.Unlock()
	if steering != nil {
		steering.Isolate(ctx, "rogue-"+mac.String(), mac)
	}
	span.End()
}
