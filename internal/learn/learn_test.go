package learn

import (
	"testing"
)

// smartHomeWorld builds the canonical test deployment: plug-powered
// heater, A/C, IFTTT window, bulb, light sensor, fire alarm, oven,
// lock.
func smartHomeWorld() *World {
	lib := StandardLibrary()
	w := NewWorld(map[string]string{
		"temperature":    "normal",
		"light":          "dark",
		"smoke":          "no",
		"window":         "closed",
		"door":           "locked",
		"alarm_sounding": "no",
	})
	get := func(c string) *Model {
		m, ok := lib.Get(c)
		if !ok {
			panic("missing model " + c)
		}
		return m
	}
	w.AddInstance("plug", get("plug"))
	w.AddInstance("window", get("window"))
	w.AddInstance("bulb", get("bulb"))
	w.AddInstance("lightsensor", get("light-sensor"))
	w.AddInstance("firealarm", get("fire-alarm"))
	w.AddInstance("oven", get("oven"))
	w.AddInstance("lock", get("lock"))
	return w
}

func TestLibraryValidation(t *testing.T) {
	lib := StandardLibrary()
	if len(lib.Classes()) < 7 {
		t.Errorf("library classes = %v", lib.Classes())
	}
	bad := &Model{Class: "bad", States: []string{"a"}, Initial: "zzz"}
	if err := NewLibrary().Add(bad); err == nil {
		t.Error("invalid model accepted")
	}
	bad2 := &Model{
		Class: "bad2", States: []string{"a"}, Initial: "a",
		Transitions: map[string]map[string]string{"GO": {"a": "ghost"}},
	}
	if err := NewLibrary().Add(bad2); err == nil {
		t.Error("ghost transition accepted")
	}
}

func TestWorldImplicitCoupling(t *testing.T) {
	// The paper's flagship implicit dependency: bulb ON → light=lit →
	// light sensor transitions, with no network path between them.
	w := smartHomeWorld()
	w.Step()
	ls, _ := w.Instance("lightsensor")
	if ls.State != "dark" {
		t.Fatalf("sensor initial = %q", ls.State)
	}
	if !w.Command("bulb", "ON") {
		t.Fatal("bulb ON rejected")
	}
	w.Step()
	if ls.State != "lit" {
		t.Errorf("sensor = %q after bulb on", ls.State)
	}
	w.Command("bulb", "OFF")
	w.Step()
	w.Step()
	if ls.State != "dark" {
		t.Errorf("sensor = %q after bulb off (default restore broken)", ls.State)
	}
}

func TestWorldAttackChainPhysics(t *testing.T) {
	// §2.1 chain: plug ON → heat → temperature high → IFTTT window
	// opens.
	w := smartHomeWorld()
	w.Step()
	win, _ := w.Instance("window")
	if win.State != "closed" {
		t.Fatal("window should start closed")
	}
	w.Command("plug", "ON")
	w.Step()
	w.Step()
	if win.State != "open" {
		t.Errorf("window = %q; heat-driven open failed (temp=%s)", win.State, w.Env("temperature"))
	}
}

func TestWorldResetAndKey(t *testing.T) {
	w := smartHomeWorld()
	k1 := w.Key()
	w.Command("plug", "ON")
	w.Step()
	if w.Key() == k1 {
		t.Error("key did not change with state")
	}
	w.Reset()
	if w.Key() != k1 {
		t.Error("reset did not restore initial key")
	}
}

func TestFuzzerDiscoversImplicitInteractions(t *testing.T) {
	f := NewFuzzer(smartHomeWorld, 7)
	result := f.Run(300)
	keys := map[string]bool{}
	for k := range result.Discovered {
		keys[k] = true
	}
	// Must find: bulb→lightsensor, plug→window (through heat),
	// oven→window and oven→firealarm (smoke).
	for _, want := range []string{
		"bulb.ON->lightsensor=lit",
		"plug.ON->window=open",
		"oven.ON->window=open",
		"oven.ON->firealarm=alarm",
	} {
		if !keys[want] {
			t.Errorf("fuzzer missed %s (found %v)", want, result.Interactions())
		}
	}
	// Coverage curve is monotone.
	prev := 0
	for _, c := range result.CoverageCurve {
		if c < prev {
			t.Fatal("coverage curve decreased")
		}
		prev = c
	}
}

func TestFuzzingBeatsPassiveObservation(t *testing.T) {
	truth := ExhaustiveInteractions(smartHomeWorld, 1, 3)
	if len(truth) == 0 {
		t.Fatal("no ground-truth interactions")
	}
	fuzz := NewFuzzer(smartHomeWorld, 3).Run(400)
	passive := PassiveObserve(smartHomeWorld, 400)
	fc, pc := Coverage(fuzz, truth), Coverage(passive, truth)
	if fc < 0.8 {
		t.Errorf("fuzz coverage = %.2f, want >= 0.8", fc)
	}
	if pc >= fc {
		t.Errorf("passive coverage %.2f should trail fuzzing %.2f", pc, fc)
	}
}

func TestAttackSearchFindsMultiStagePath(t *testing.T) {
	// Goal: get the window open (physical break-in) with only the
	// plug exploitable. The only route is the implicit one: exploit
	// plug, turn it on, wait for heat, window opens itself.
	search := &AttackSearch{
		Build:      smartHomeWorld,
		Vulnerable: map[string]bool{"plug": true},
		Open:       map[string]bool{},
		MaxDepth:   8,
	}
	path, exhausted := search.FindAttack(GoalEnv("window", "open"))
	if exhausted || path == nil {
		t.Fatal("no attack found")
	}
	var sawExploit, sawOn, sawWait bool
	for _, s := range path {
		if s.Kind == StepExploit && s.Device == "plug" {
			sawExploit = true
		}
		if s.Kind == StepCommand && s.Device == "plug" && s.Cmd == "ON" {
			sawOn = true
		}
		if s.Kind == StepWait {
			sawWait = true
		}
	}
	if !sawExploit || !sawOn || !sawWait {
		t.Errorf("path = %s", PathString(path))
	}
}

func TestAttackSearchRespectsGoalAlreadyMet(t *testing.T) {
	search := &AttackSearch{Build: smartHomeWorld, MaxDepth: 3}
	path, exhausted := search.FindAttack(GoalEnv("door", "locked"))
	if exhausted || path == nil || len(path) != 0 {
		t.Errorf("path = %v exhausted = %v", path, exhausted)
	}
}

func TestAttackSearchExhaustsWhenNoRoute(t *testing.T) {
	// Nothing vulnerable, nothing open: the attacker can only wait.
	search := &AttackSearch{Build: smartHomeWorld, MaxDepth: 5}
	path, exhausted := search.FindAttack(GoalEnv("window", "open"))
	if path != nil || !exhausted {
		t.Errorf("found %v in a fully locked deployment", path)
	}
}

func TestMitigationCutsAttackGraph(t *testing.T) {
	search := &AttackSearch{
		Build:      smartHomeWorld,
		Vulnerable: map[string]bool{"plug": true},
		MaxDepth:   8,
	}
	// Unmitigated: attack exists.
	if path, _ := search.FindAttack(GoalEnv("window", "open")); path == nil {
		t.Fatal("baseline attack missing")
	}
	// Blocking plug.ON (the Figure 5 posture) severs the route.
	path, exhausted := search.FindAttackWithMitigations(
		GoalEnv("window", "open"),
		[]Mitigation{{Device: "plug", Cmd: "ON"}},
	)
	if path != nil || !exhausted {
		t.Errorf("mitigated attack still found: %s", PathString(path))
	}
}

func TestAttackSearchUnlockViaOvenSmoke(t *testing.T) {
	// A deeper chain: with only the oven open (say a smart-hub bug),
	// reach door unlocked? There is no rule unlocking the door from
	// smoke in these models — the search must say so rather than
	// hallucinate.
	search := &AttackSearch{
		Build:    smartHomeWorld,
		Open:     map[string]bool{"oven": true},
		MaxDepth: 8,
	}
	path, exhausted := search.FindAttack(GoalEnv("door", "unlocked"))
	if path != nil || !exhausted {
		t.Errorf("impossible goal reached: %s", PathString(path))
	}
	// But with the lock also vulnerable, the direct path exists and
	// is short.
	search.Vulnerable = map[string]bool{"lock": true}
	path, _ = search.FindAttack(GoalEnv("door", "unlocked"))
	if path == nil || len(path) > 4 {
		t.Errorf("direct unlock path = %s", PathString(path))
	}
}

func TestDescribeAttack(t *testing.T) {
	if DescribeAttack(nil) != "no attack found" {
		t.Error("nil path description")
	}
	if DescribeAttack([]AttackStep{}) != "goal already satisfied" {
		t.Error("empty path description")
	}
	got := DescribeAttack([]AttackStep{
		{Kind: StepExploit, Device: "plug"},
		{Kind: StepCommand, Device: "plug", Cmd: "ON"},
		{Kind: StepWait},
	})
	for _, want := range []string{"exploit(plug)", "plug.ON", "wait"} {
		if !contains(got, want) {
			t.Errorf("description %q missing %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
