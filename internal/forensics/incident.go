// Package forensics is the incident plane: it turns the bounded
// in-memory journal ring into durable, queryable, replayable incident
// records. A tail-based capturer (a journal.Subscription consumer,
// the same attached-tap pattern as the online SLO tracker) watches
// the live event stream for incident-opening events — anomalies,
// profile violations, rogue quarantines, SLO burns, controller
// failovers — and pins the *entire* causal chain of the trace into a
// size-capped, segment-rotated NDJSON store on disk before ring
// eviction can lose it. Routine traffic never leaves the ring.
//
// On top of the captured incidents sit an indexed query surface
// (/debug/incidents, mboxctl incidents), a cross-shard assembly path
// (fleet aggregators merge per-shard events for one trace into a
// single causal timeline), and a replay exporter: any incident can be
// exported as a self-contained scenario JSON that iotsim -replay
// re-drives through the real enforcement path — the mechanism behind
// "every discovered chain becomes a regression scenario".
package forensics

import (
	"fmt"
	"time"

	"iotsec/internal/journal"
)

// Incident kinds, named after the journal event type that opens them.
const (
	KindAnomaly          = "anomaly"
	KindProfileViolation = "profile-violation"
	KindRogueQuarantine  = "rogue-quarantine"
	KindSLOBurn          = "slo-burn"
	KindFailover         = "controller-failover"
)

// KindOf maps an incident-opening journal event type to its incident
// kind (ok=false for routine event types, which never open incidents).
func KindOf(t journal.Type) (string, bool) {
	switch t {
	case journal.TypeAnomaly:
		return KindAnomaly, true
	case journal.TypeProfileViolation:
		return KindProfileViolation, true
	case journal.TypeRogueQuarantine:
		return KindRogueQuarantine, true
	case journal.TypeSLOBurn:
		return KindSLOBurn, true
	case journal.TypeCtrlFailover:
		return KindFailover, true
	}
	return "", false
}

// IncidentID derives the stable incident identifier from a trace ID.
// One trace is one incident, so the mapping is deterministic: the
// same chain captured on two shards (or re-captured after a restart)
// gets the same ID and merges instead of duplicating.
func IncidentID(traceID uint64) string {
	return fmt.Sprintf("inc-%016x", traceID)
}

// Incident is one captured causal chain: every journal event sharing
// the trace, plus the classification the capturer derived from them.
type Incident struct {
	// ID is IncidentID(TraceID).
	ID string `json:"id"`
	// TraceID is the causal chain the incident pins.
	TraceID uint64 `json:"trace_id"`
	// Kind names the opening event class (anomaly, profile-violation,
	// rogue-quarantine, slo-burn, controller-failover).
	Kind string `json:"kind"`
	// Device is the device the opening event concerned ("" for
	// device-less chains, e.g. a shard-wide failover).
	Device string `json:"device,omitempty"`
	// SKU is the device's SKU when the capturer could resolve it
	// (replay needs it to rebuild an equivalent device).
	SKU string `json:"sku,omitempty"`
	// Shard names the reporting shard (cross-shard assembly keys).
	Shard string `json:"shard,omitempty"`
	// Severity is the maximum severity observed across the chain.
	Severity journal.Severity `json:"severity"`
	// OpenedAt is the wall clock of the chain's first captured event.
	OpenedAt time.Time `json:"opened_at"`
	// ClosedAt is when the capturer sealed the incident (quiet period
	// elapsed or forced flush). Zero while still open.
	ClosedAt time.Time `json:"closed_at,omitempty"`
	// Complete reports the chain closed its loop: detect→policy→enforce
	// for detection kinds, failover→rehomed→recovered for failovers.
	Complete bool `json:"complete"`
	// Truncated counts chain events dropped beyond the per-incident
	// event cap (capture loss is surfaced, never silent).
	Truncated int `json:"truncated,omitempty"`
	// Events is the captured chain, sequence-ordered.
	Events []journal.Event `json:"events"`
}

// Digest is the compact incident summary that travels in fleet shard
// reports and list views — everything except the event bodies.
type Digest struct {
	ID        string           `json:"id"`
	TraceID   uint64           `json:"trace_id"`
	Kind      string           `json:"kind"`
	Device    string           `json:"device,omitempty"`
	SKU       string           `json:"sku,omitempty"`
	Shard     string           `json:"shard,omitempty"`
	Severity  journal.Severity `json:"severity"`
	OpenedAt  time.Time        `json:"opened_at"`
	ClosedAt  time.Time        `json:"closed_at,omitempty"`
	Complete  bool             `json:"complete"`
	Truncated int              `json:"truncated,omitempty"`
	Events    int              `json:"events"`
}

// Digest summarizes the incident.
func (in *Incident) Digest() Digest {
	return Digest{
		ID:        in.ID,
		TraceID:   in.TraceID,
		Kind:      in.Kind,
		Device:    in.Device,
		SKU:       in.SKU,
		Shard:     in.Shard,
		Severity:  in.Severity,
		OpenedAt:  in.OpenedAt,
		ClosedAt:  in.ClosedAt,
		Complete:  in.Complete,
		Truncated: in.Truncated,
		Events:    len(in.Events),
	}
}

// Open reports whether the incident is still accumulating events.
func (d Digest) Open() bool { return d.ClosedAt.IsZero() }

// Timeline renders the incident as a journal timeline (chain and
// report rendering reuse the journal's own machinery).
func (in *Incident) Timeline() *journal.Timeline {
	return journal.Reconstruct(in.Events, in.TraceID)
}

// chainComplete evaluates loop closure for a chain of the given kind:
// failover chains must carry failover→rehomed→recovered in order;
// detection chains must close the Figure 2 detect→policy→enforce loop.
func chainComplete(kind string, events []journal.Event) bool {
	if kind == KindFailover {
		want := []journal.Type{journal.TypeCtrlFailover, journal.TypeCtrlRehomed, journal.TypeCtrlRecovered}
		i := 0
		for _, e := range events {
			if i < len(want) && e.Type == want[i] {
				i++
			}
		}
		return i == len(want)
	}
	var detect, policy, enforce bool
	for _, e := range events {
		switch journal.Stage(e.Type) {
		case "detect":
			detect = true
		case "policy":
			policy = true
		case "controller", "mbox":
			enforce = true
		}
	}
	return detect && policy && enforce
}
