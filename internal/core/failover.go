// Control-plane failover wiring: SuperviseControllers attaches the
// §5.1 partition tier to a running platform and puts every local
// controller under deadman supervision, so a crashed local is
// detected, its critical security state is rebuilt from checkpoint +
// forensic-journal replay + switch flow-table readback, and its
// devices are re-homed — quarantines re-pushed first (fail-closed).
package core

import (
	"context"
	"sort"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/packet"
	"iotsec/internal/resilience"
)

// SupervisionOptions configure SuperviseControllers.
type SupervisionOptions struct {
	// Partitioning overrides the interaction partitioning; when nil one
	// is computed over the currently managed devices from Edges.
	Partitioning *controller.Partitioning
	// Edges weight device interactions for the computed partitioning.
	Edges []controller.InteractionEdge
	// MaxGroupSize caps computed partition sizes (default 8).
	MaxGroupSize int
	// EnvLocality declares which partition privately owns an env
	// variable; unlisted variables stay on the Global-only path.
	EnvLocality map[string]int

	// Heartbeat / Misses / CheckpointEvery / CheckpointKeep / FailMode /
	// Clock tune the supervisor (see controller.SupervisorOptions).
	Heartbeat       time.Duration
	Misses          int
	CheckpointEvery time.Duration
	CheckpointKeep  int
	FailMode        controller.FailMode
	Clock           resilience.Clock

	// Fleet, when set, receives failover state for /debug/fleet.
	Fleet *controller.FleetAggregator
	// OnFailover observes completed failovers (must not block).
	OnFailover func(controller.FailoverRecord)
}

// SuperviseControllers builds the local/global controller hierarchy
// over the platform's policy and devices, routes future device events
// through it, and returns it together with a supervisor wired to the
// platform's enforcement plane:
//
//   - quarantine state for checkpoints comes from managed postures,
//   - flow-table readback comes from the attached steering app,
//   - quarantine re-push goes through steering.Isolate (idempotent),
//   - the installed-profile generation comes from the profile plane.
//
// The supervisor is returned un-started: call Start (or drive Tick
// from a test clock). Calling SuperviseControllers twice returns the
// existing pair.
func (p *Platform) SuperviseControllers(opts SupervisionOptions) (*controller.Hierarchy, *controller.Supervisor) {
	p.mu.Lock()
	if p.hierarchy != nil {
		h, sup := p.hierarchy, p.supervisor
		p.mu.Unlock()
		return h, sup
	}
	part := opts.Partitioning
	if part == nil {
		names := make([]string, 0, len(p.devices))
		for name := range p.devices {
			names = append(names, name)
		}
		sort.Strings(names)
		part = controller.Partition(names, opts.Edges, opts.MaxGroupSize)
	}
	p.mu.Unlock()

	h := controller.NewHierarchyWithGlobal(p.Global, p.fsm, part, opts.EnvLocality, p.applyPosture)
	sup := h.Supervise(controller.SupervisorOptions{
		Clock:           opts.Clock,
		Heartbeat:       opts.Heartbeat,
		Misses:          opts.Misses,
		CheckpointEvery: opts.CheckpointEvery,
		CheckpointKeep:  opts.CheckpointKeep,
		FailMode:        opts.FailMode,
		Fleet:           opts.Fleet,
		OnFailover:      opts.OnFailover,
		QuarantinedOf:   func(group int) []string { return p.quarantinedIn(part, group) },
		ReadbackQuarantines: func(group int) []string {
			return p.steeringQuarantinesIn(part, group)
		},
		RepushQuarantine: p.repushQuarantine,
		ProfileGen: func() uint64 {
			if pl, ok := p.Profiles(); ok {
				return pl.Generation()
			}
			return 0
		},
	})

	p.mu.Lock()
	p.hierarchy = h
	p.partitioning = part
	p.envLocality = opts.EnvLocality
	p.supervisor = sup
	p.mu.Unlock()
	return h, sup
}

// Supervision returns the attached hierarchy and supervisor (nil, nil
// before SuperviseControllers).
func (p *Platform) Supervision() (*controller.Hierarchy, *controller.Supervisor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hierarchy, p.supervisor
}

// quarantinedIn lists a partition's devices whose current posture
// isolates them — the control plane's intended quarantine set,
// checkpoint material.
func (p *Platform) quarantinedIn(part *controller.Partitioning, group int) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for name, m := range p.devices {
		if m.CurrentPosture.Isolate && part.GroupOf(name) == group {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// steeringQuarantinesIn reads back the quarantine drops resident in
// the switch flow tables for one partition — the readback leg of
// recovery's quarantine union.
func (p *Platform) steeringQuarantinesIn(part *controller.Partitioning, group int) []string {
	p.mu.Lock()
	st := p.steering
	p.mu.Unlock()
	if st == nil {
		return nil
	}
	var out []string
	for name := range st.IsolatedDevices() {
		if part.GroupOf(name) == group {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// repushQuarantine re-asserts one device's quarantine on the wire.
// Steering.Isolate is idempotent, so re-pushing a rule the switches
// already hold is harmless — recovery calls this for the whole union
// before any state restore.
func (p *Platform) repushQuarantine(ctx context.Context, deviceName string) {
	p.mu.Lock()
	m, ok := p.devices[deviceName]
	st := p.steering
	var mac packet.MACAddress
	if ok {
		mac = m.Device.MAC()
		m.isolated = true
	}
	p.mu.Unlock()
	if !ok || st == nil {
		return
	}
	st.Isolate(ctx, deviceName, mac)
}
