// Package packet implements a small, allocation-conscious packet layer
// library in the spirit of gopacket: typed layers, layered decoding,
// prepend-style serialization buffers, and hashable flow/endpoint
// identifiers. It covers the protocols the IoTSec data path needs:
// Ethernet, ARP, IPv4, TCP, UDP, DNS and opaque application payloads.
package packet

import "fmt"

// LayerType identifies a protocol layer. Values are stable across a
// process lifetime and usable as map keys.
type LayerType int

// Known layer types.
const (
	LayerTypeInvalid LayerType = iota
	LayerTypeEthernet
	LayerTypeARP
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeDNS
	LayerTypePayload
	LayerTypeDecodeFailure
)

var layerTypeNames = map[LayerType]string{
	LayerTypeInvalid:       "Invalid",
	LayerTypeEthernet:      "Ethernet",
	LayerTypeARP:           "ARP",
	LayerTypeIPv4:          "IPv4",
	LayerTypeTCP:           "TCP",
	LayerTypeUDP:           "UDP",
	LayerTypeDNS:           "DNS",
	LayerTypePayload:       "Payload",
	LayerTypeDecodeFailure: "DecodeFailure",
}

// String returns the layer type's protocol name.
func (t LayerType) String() string {
	if s, ok := layerTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Layer is a decoded protocol layer within a packet.
type Layer interface {
	// LayerType reports which protocol this layer is.
	LayerType() LayerType
	// LayerContents returns the bytes of this layer's header.
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries (the next
	// layer's contents plus everything after it).
	LayerPayload() []byte
}

// DecodingLayer is a Layer that can populate itself from raw bytes.
// DecodeFromBytes must not retain data beyond the call unless the
// decode options promise the buffer is immutable.
type DecodingLayer interface {
	Layer
	// DecodeFromBytes parses data into the receiver, returning an
	// error if the bytes do not form a valid header.
	DecodeFromBytes(data []byte) error
	// NextLayerType reports the type of the layer carried in
	// LayerPayload, or LayerTypePayload if unknown/opaque.
	NextLayerType() LayerType
}

// SerializableLayer is a Layer that can write itself into a
// SerializeBuffer. SerializeTo prepends the layer's header bytes, so a
// full packet is built by serializing layers innermost-first (the
// SerializeLayers helper does this for you).
type SerializableLayer interface {
	// SerializeTo prepends this layer's wire representation onto b.
	// The buffer's current contents are treated as this layer's
	// payload (e.g. for length and checksum computation).
	SerializeTo(b *SerializeBuffer) error
	// LayerType reports which protocol this layer is.
	LayerType() LayerType
}

// base carries the contents/payload split shared by all concrete layers.
type base struct {
	contents []byte
	payload  []byte
}

func (b *base) LayerContents() []byte { return b.contents }
func (b *base) LayerPayload() []byte  { return b.payload }

// DecodeFailure is the layer recorded when decoding a packet's bytes
// fails partway: its contents are the undecodable remainder and Err
// explains why.
type DecodeFailure struct {
	base
	Err error
}

// LayerType implements Layer.
func (d *DecodeFailure) LayerType() LayerType { return LayerTypeDecodeFailure }

// Error returns the decode error that produced this layer.
func (d *DecodeFailure) Error() error { return d.Err }
