package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// Rollup is the mergeable telemetry unit the fleet hierarchy ships
// upward: a bounded, self-describing delta of one reporting source's
// metrics since its previous rollup. The semantics per section are
// chosen so that merging is associative and loss-tolerant:
//
//   - Counters carry monotonic *deltas* (observations since the last
//     rollup). An aggregator sums deltas into cumulative totals, so a
//     dropped rollup loses a window of counts but never double-counts
//     and never goes backwards.
//   - Histograms carry per-bucket *delta* counts against declared
//     bounds. Aggregators merge bucket-wise (bounds must match
//     exactly; a mismatch is an error, never silent corruption) and
//     re-derive quantiles with QuantileFromBuckets.
//   - Gauges are instantaneous values: an aggregator keeps the latest
//     per source and sums (or maxes) across sources at read time.
//   - TopK sections are cumulative space-saving *snapshots*: an
//     aggregator keeps the latest per source and merges across
//     sources with MergeTopK at read time. Snapshots (not deltas)
//     keep the heavy-hitter error bounds meaningful after drops.
//
// The Seq number makes reports idempotent: an aggregator drops any
// rollup whose Seq is not greater than the last one it applied from
// the same Source, so retried pushes cannot double-count.
type Rollup struct {
	// Source identifies the reporting shard/process ("shard-3",
	// "gateway"). Aggregators key state by it.
	Source string `json:"source"`
	// Seq increases by one per rollup taken from this source.
	Seq uint64 `json:"seq"`
	// TakenAt is the source's wall clock at snapshot time.
	TakenAt time.Time `json:"taken_at"`
	// WindowSeconds is the span this delta covers (0 for the first
	// rollup of a source). Aggregators use it to turn counter deltas
	// into rates.
	WindowSeconds float64 `json:"window_seconds"`

	Counters   map[string]uint64          `json:"counters,omitempty"`
	Gauges     map[string]float64         `json:"gauges,omitempty"`
	Histograms map[string]HistogramRollup `json:"histograms,omitempty"`
	TopK       map[string]TopKRollup      `json:"topk,omitempty"`
}

// HistogramRollup is a mergeable fixed-bucket histogram snapshot (or
// delta — the struct doesn't care, only the producer's bookkeeping
// does). Buckets holds per-bucket (non-cumulative) counts with
// len(Bounds)+1 entries, the last being the +Inf bucket.
type HistogramRollup struct {
	Bounds  []float64 `json:"bounds"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Buckets []uint64  `json:"buckets"`
}

// boundsEqual compares bucket bounds exactly. Merging histograms with
// different bucket layouts has no meaningful result, so equality is
// strict (no tolerance): rollup producers and consumers must share the
// bound constants.
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds o into h bucket-wise. Both sides must declare identical
// bounds; a mismatch errors without touching h (never corrupt).
// Merging into a zero-value h adopts o's bounds.
func (h *HistogramRollup) Merge(o HistogramRollup) error {
	if len(h.Bounds) == 0 && h.Count == 0 && len(h.Buckets) == 0 {
		h.Bounds = append([]float64(nil), o.Bounds...)
		h.Buckets = make([]uint64, len(o.Bounds)+1)
	}
	if !boundsEqual(h.Bounds, o.Bounds) {
		return fmt.Errorf("telemetry: histogram merge: bounds mismatch (%v vs %v)", h.Bounds, o.Bounds)
	}
	if len(o.Buckets) != len(o.Bounds)+1 {
		return fmt.Errorf("telemetry: histogram merge: %d buckets for %d bounds", len(o.Buckets), len(o.Bounds))
	}
	if len(h.Buckets) != len(h.Bounds)+1 {
		return fmt.Errorf("telemetry: histogram merge: target has %d buckets for %d bounds", len(h.Buckets), len(h.Bounds))
	}
	for i := range o.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	return nil
}

// DeltaFrom returns h minus prev (both cumulative snapshots of the
// same series). Bounds must match; a zero-value prev yields h itself
// (first window). Counts that went backwards (reset source) clamp to
// the current snapshot rather than underflowing.
func (h HistogramRollup) DeltaFrom(prev HistogramRollup) (HistogramRollup, error) {
	if len(prev.Buckets) == 0 && prev.Count == 0 {
		return h.Clone(), nil
	}
	if !boundsEqual(h.Bounds, prev.Bounds) {
		return HistogramRollup{}, fmt.Errorf("telemetry: histogram delta: bounds mismatch (%v vs %v)", h.Bounds, prev.Bounds)
	}
	out := HistogramRollup{Bounds: append([]float64(nil), h.Bounds...), Buckets: make([]uint64, len(h.Buckets))}
	reset := h.Count < prev.Count
	for i := range h.Buckets {
		if reset || (i < len(prev.Buckets) && h.Buckets[i] < prev.Buckets[i]) {
			out.Buckets[i] = h.Buckets[i]
			continue
		}
		d := h.Buckets[i]
		if i < len(prev.Buckets) {
			d -= prev.Buckets[i]
		}
		out.Buckets[i] = d
	}
	if reset {
		out.Count, out.Sum = h.Count, h.Sum
	} else {
		out.Count = h.Count - prev.Count
		out.Sum = h.Sum - prev.Sum
	}
	return out, nil
}

// Clone deep-copies the rollup.
func (h HistogramRollup) Clone() HistogramRollup {
	return HistogramRollup{
		Bounds:  append([]float64(nil), h.Bounds...),
		Count:   h.Count,
		Sum:     h.Sum,
		Buckets: append([]uint64(nil), h.Buckets...),
	}
}

// Quantile estimates q in [0,1] over the rollup's buckets.
func (h HistogramRollup) Quantile(q float64) float64 {
	return QuantileFromBuckets(h.Bounds, h.Buckets, q)
}

// Mean reports Sum/Count (0 when empty).
func (h HistogramRollup) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// RollupBuilder assembles successive delta Rollups from live metrics.
// Register the metrics once, then call Take periodically; the builder
// remembers the previous cumulative snapshot of every counter and
// histogram so each Rollup carries exactly the observations since the
// last Take. Gauges and TopKs are snapshotted as-is (their rollup
// semantics are instantaneous/cumulative, see Rollup).
//
// Take is safe to call concurrently with metric writers (metric
// snapshots are atomic-read folds), but the builder itself is
// single-consumer: guard concurrent Take calls externally (the fleet
// rollup plane has one pusher goroutine per builder).
type RollupBuilder struct {
	source string

	mu       sync.Mutex
	seq      uint64
	lastTake time.Time

	counters map[string]*Counter
	gauges   map[string]func() float64
	hists    map[string]*Histogram
	topks    map[string]*TopK

	prevCounters map[string]uint64
	prevHists    map[string]HistogramRollup
}

// NewRollupBuilder builds an empty builder for one source.
func NewRollupBuilder(source string) *RollupBuilder {
	return &RollupBuilder{
		source:       source,
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]func() float64),
		hists:        make(map[string]*Histogram),
		topks:        make(map[string]*TopK),
		prevCounters: make(map[string]uint64),
		prevHists:    make(map[string]HistogramRollup),
	}
}

// Source reports the builder's source name.
func (b *RollupBuilder) Source() string { return b.source }

// AddCounter includes a counter (exported as monotonic deltas).
func (b *RollupBuilder) AddCounter(name string, c *Counter) *RollupBuilder {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.counters[name] = c
	return b
}

// AddGauge includes an instantaneous value read at Take time.
func (b *RollupBuilder) AddGauge(name string, read func() float64) *RollupBuilder {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gauges[name] = read
	return b
}

// AddHistogram includes a histogram (exported as bucket deltas).
func (b *RollupBuilder) AddHistogram(name string, h *Histogram) *RollupBuilder {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hists[name] = h
	return b
}

// AddTopK includes a heavy-hitter summary (exported as a cumulative
// snapshot, merged across sources at read time).
func (b *RollupBuilder) AddTopK(name string, t *TopK) *RollupBuilder {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.topks[name] = t
	return b
}

// Take snapshots every registered metric and returns the delta since
// the previous Take (the first Take returns everything observed so
// far, with WindowSeconds 0).
func (b *RollupBuilder) Take(now time.Time) Rollup {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	r := Rollup{
		Source:  b.source,
		Seq:     b.seq,
		TakenAt: now,
	}
	if !b.lastTake.IsZero() {
		r.WindowSeconds = now.Sub(b.lastTake).Seconds()
	}
	b.lastTake = now

	if len(b.counters) > 0 {
		r.Counters = make(map[string]uint64, len(b.counters))
		for name, c := range b.counters {
			v := c.Value()
			prev := b.prevCounters[name]
			if v < prev {
				prev = 0 // counter reset upstream; re-export everything
			}
			r.Counters[name] = v - prev
			b.prevCounters[name] = v
		}
	}
	if len(b.gauges) > 0 {
		r.Gauges = make(map[string]float64, len(b.gauges))
		for name, read := range b.gauges {
			r.Gauges[name] = read()
		}
	}
	if len(b.hists) > 0 {
		r.Histograms = make(map[string]HistogramRollup, len(b.hists))
		for name, h := range b.hists {
			cur := h.Rollup()
			delta, err := cur.DeltaFrom(b.prevHists[name])
			if err != nil {
				// Bounds never change on a live histogram; defensive only.
				delta = cur.Clone()
			}
			r.Histograms[name] = delta
			b.prevHists[name] = cur
		}
	}
	if len(b.topks) > 0 {
		r.TopK = make(map[string]TopKRollup, len(b.topks))
		for name, t := range b.topks {
			r.TopK[name] = t.Snapshot()
		}
	}
	return r
}
