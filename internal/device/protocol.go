// Package device emulates IoT devices at the network-protocol level:
// each device runs a management service on the simulated fabric (a
// simple line protocol over reliable streams, mirroring the HTTP-ish
// interfaces real devices expose) with the vulnerability classes of
// the paper's Table 1 baked in — hardcoded default credentials, fully
// open access, firmware-exposed keys, open DNS resolvers, and
// backdoors. Devices also couple to the simulated physical
// environment: actuators write environment variables, sensors read
// them.
package device

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// MgmtPort is the TCP port every device's management service listens
// on.
const MgmtPort = 80

// Protocol errors.
var (
	ErrBadRequest   = errors.New("device: malformed request")
	ErrUnauthorized = errors.New("device: unauthorized")
	ErrUnknownCmd   = errors.New("device: unknown command")
)

// Request is one management command.
//
// Wire form (one stream message):
//
//	IOT/1 <CMD> [args...]
//	auth: <user>:<pass>        (optional)
type Request struct {
	Cmd  string
	Args []string
	User string
	Pass string
}

// Encode renders the wire form.
func (r Request) Encode() []byte {
	var b strings.Builder
	b.WriteString("IOT/1 ")
	b.WriteString(r.Cmd)
	for _, a := range r.Args {
		b.WriteByte(' ')
		b.WriteString(a)
	}
	b.WriteByte('\n')
	if r.User != "" || r.Pass != "" {
		fmt.Fprintf(&b, "auth: %s:%s\n", r.User, r.Pass)
	}
	return []byte(b.String())
}

// ParseRequest decodes the wire form.
func ParseRequest(data []byte) (Request, error) {
	var r Request
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 {
		return r, ErrBadRequest
	}
	fields := strings.Fields(lines[0])
	if len(fields) < 2 || fields[0] != "IOT/1" {
		return r, fmt.Errorf("%w: %q", ErrBadRequest, lines[0])
	}
	r.Cmd = strings.ToUpper(fields[1])
	r.Args = fields[2:]
	for _, line := range lines[1:] {
		if creds, ok := strings.CutPrefix(line, "auth: "); ok {
			user, pass, found := strings.Cut(creds, ":")
			if found {
				r.User, r.Pass = user, pass
			}
		}
	}
	return r, nil
}

// Response is a management reply.
//
// Wire form: "IOT/1 OK <data>" or "IOT/1 ERR <reason>".
type Response struct {
	OK   bool
	Data string
}

// Encode renders the wire form.
func (r Response) Encode() []byte {
	status := "ERR"
	if r.OK {
		status = "OK"
	}
	return []byte(fmt.Sprintf("IOT/1 %s %s", status, r.Data))
}

// ParseResponse decodes the wire form.
func ParseResponse(data []byte) (Response, error) {
	s := string(data)
	rest, ok := strings.CutPrefix(s, "IOT/1 ")
	if !ok {
		return Response{}, fmt.Errorf("%w: %q", ErrBadRequest, s)
	}
	status, payload, _ := strings.Cut(rest, " ")
	switch status {
	case "OK":
		return Response{OK: true, Data: payload}, nil
	case "ERR":
		return Response{OK: false, Data: payload}, nil
	default:
		return Response{}, fmt.Errorf("%w: status %q", ErrBadRequest, status)
	}
}

// Client issues management commands to devices over the fabric; it is
// what apps, hubs — and attackers — use.
type Client struct {
	Stack *netsim.Stack
	// Timeout bounds each call (default 2s).
	Timeout time.Duration
}

// Call dials the device, sends one request and waits for one response.
func (c *Client) Call(deviceIP packet.IPv4Address, req Request) (Response, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	conn, err := c.Stack.Dial(deviceIP, MgmtPort, timeout)
	if err != nil {
		return Response{}, fmt.Errorf("device call %s: %w", deviceIP, err)
	}
	defer conn.Close()

	replyCh := make(chan Response, 1)
	errCh := make(chan error, 1)
	conn.OnMessage(func(msg []byte) {
		resp, err := ParseResponse(msg)
		if err != nil {
			select {
			case errCh <- err:
			default:
			}
			return
		}
		select {
		case replyCh <- resp:
		default:
		}
	})
	if err := conn.Send(req.Encode()); err != nil {
		return Response{}, err
	}
	select {
	case resp := <-replyCh:
		return resp, nil
	case err := <-errCh:
		return Response{}, err
	case <-time.After(timeout):
		return Response{}, fmt.Errorf("device call %s %s: %w", deviceIP, req.Cmd, netsim.ErrTimeout)
	}
}
