package openflow

import (
	"fmt"

	"iotsec/internal/packet"
)

// ActionType discriminates the forwarding actions a flow entry can
// apply. An empty action list means drop.
type ActionType uint8

// Action types.
const (
	ActionTypeOutput ActionType = iota + 1
	ActionTypeFlood
	ActionTypeController
	ActionTypeSetEthDst
	ActionTypeSetEthSrc
)

// Action is a single forwarding/rewrite step. Only the fields relevant
// to Type are meaningful; keeping one flat struct makes the wire codec
// and table copies trivial.
type Action struct {
	Type ActionType
	Port uint16            // Output: egress port
	MAC  packet.MACAddress // SetEthDst / SetEthSrc: new address
}

// Output forwards the packet out of the given switch port.
func Output(port uint16) Action { return Action{Type: ActionTypeOutput, Port: port} }

// Flood forwards out of every port except the ingress.
func Flood() Action { return Action{Type: ActionTypeFlood} }

// ToController punts the packet to the controller as a PACKET_IN.
func ToController() Action { return Action{Type: ActionTypeController} }

// SetEthDst rewrites the destination MAC before subsequent outputs.
func SetEthDst(mac packet.MACAddress) Action {
	return Action{Type: ActionTypeSetEthDst, MAC: mac}
}

// SetEthSrc rewrites the source MAC before subsequent outputs.
func SetEthSrc(mac packet.MACAddress) Action {
	return Action{Type: ActionTypeSetEthSrc, MAC: mac}
}

// String names the action.
func (a Action) String() string {
	switch a.Type {
	case ActionTypeOutput:
		return fmt.Sprintf("output:%d", a.Port)
	case ActionTypeFlood:
		return "flood"
	case ActionTypeController:
		return "controller"
	case ActionTypeSetEthDst:
		return "set_eth_dst:" + a.MAC.String()
	case ActionTypeSetEthSrc:
		return "set_eth_src:" + a.MAC.String()
	default:
		return fmt.Sprintf("action(%d)", a.Type)
	}
}
