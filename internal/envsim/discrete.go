package envsim

import (
	"fmt"
	"sort"
	"strings"
)

// Level is a named band of a continuous variable ("low", "high", ...).
type Level struct {
	Name string
	// UpTo is the exclusive upper bound; the last level's bound is
	// ignored (catches everything above).
	UpTo float64
}

// Discretizer maps continuous environment variables onto the discrete
// values the policy FSM reasons over (§3.2: Temperature=High/Low,
// Smoke=Yes/No, Window=Open/Closed).
type Discretizer struct {
	bands map[string][]Level
}

// NewDiscretizer returns an empty discretizer.
func NewDiscretizer() *Discretizer {
	return &Discretizer{bands: make(map[string][]Level)}
}

// Define sets the bands for a variable; levels must be given in
// ascending bound order.
func (d *Discretizer) Define(varName string, levels ...Level) {
	d.bands[varName] = levels
}

// Value maps one variable reading to its level name, or "" if the
// variable has no bands defined.
func (d *Discretizer) Value(varName string, v float64) string {
	levels := d.bands[varName]
	if len(levels) == 0 {
		return ""
	}
	for _, l := range levels[:len(levels)-1] {
		if v < l.UpTo {
			return l.Name
		}
	}
	return levels[len(levels)-1].Name
}

// Variables lists the variables with bands, sorted.
func (d *Discretizer) Variables() []string {
	out := make([]string, 0, len(d.bands))
	for k := range d.bands {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Levels returns the level names defined for a variable.
func (d *Discretizer) Levels(varName string) []string {
	levels := d.bands[varName]
	out := make([]string, len(levels))
	for i, l := range levels {
		out[i] = l.Name
	}
	return out
}

// Discretize maps a snapshot to discrete variable values for every
// variable with defined bands.
func (d *Discretizer) Discretize(s Snapshot) map[string]string {
	out := make(map[string]string, len(d.bands))
	for varName := range d.bands {
		out[varName] = d.Value(varName, s.Get(varName))
	}
	return out
}

// Key renders a discretized state as a stable string key.
func Key(discrete map[string]string) string {
	names := make([]string, 0, len(discrete))
	for k := range discrete {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%s", n, discrete[n])
	}
	return strings.Join(parts, ",")
}

// StandardDiscretizer covers the standard home variables with the
// bands the paper's examples use.
func StandardDiscretizer() *Discretizer {
	d := NewDiscretizer()
	d.Define(VarTemperature,
		Level{Name: "low", UpTo: 18},
		Level{Name: "normal", UpTo: 27},
		Level{Name: "high"},
	)
	d.Define(VarSmoke,
		Level{Name: "no", UpTo: 0.2},
		Level{Name: "yes"},
	)
	d.Define(VarOccupancy,
		Level{Name: "away", UpTo: 0.5},
		Level{Name: "home"},
	)
	d.Define(VarWindowOpen,
		Level{Name: "closed", UpTo: 0.5},
		Level{Name: "open"},
	)
	d.Define(VarLight,
		Level{Name: "dark", UpTo: 100},
		Level{Name: "lit"},
	)
	return d
}
