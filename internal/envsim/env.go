// Package envsim simulates the physical environment that couples IoT
// devices implicitly (§2.1 of the paper: "IoT devices can also be
// coupled through the physical environment"). The environment is a set
// of named continuous variables advanced in discrete time steps by
// physics laws; actuators perturb variables, sensors read them, and
// observers watch for changes — exactly the side channel an attacker
// exploits when, e.g., turning off the A/C to heat the room until the
// windows open.
package envsim

import (
	"fmt"
	"sort"
	"sync"
)

// Standard variable names used by the built-in laws and devices.
// Environments are not limited to these.
const (
	VarTemperature = "temperature" // °C
	VarOutsideTemp = "outside_temperature"
	VarSmoke       = "smoke"     // concentration, 0..1
	VarLight       = "light"     // lux-ish, 0..1000
	VarOccupancy   = "occupancy" // people present, 0/1
	VarWindowOpen  = "window_open"
	VarHumidity    = "humidity"
	VarPower       = "power_draw" // watts drawn in the home
)

// Law advances some part of the physics each step. It reads the
// pre-step snapshot and returns variable updates; all laws in a step
// observe the same snapshot (synchronous update), which keeps results
// independent of law registration order unless two laws write the same
// variable (later-registered wins — avoid that).
type Law struct {
	Name  string
	Apply func(snapshot Snapshot, dt float64) map[string]float64
}

// Snapshot is an immutable view of the environment at a step boundary.
type Snapshot struct {
	Tick int64
	vars map[string]float64
}

// Get reads a variable (zero if absent).
func (s Snapshot) Get(name string) float64 { return s.vars[name] }

// Has reports whether the variable exists.
func (s Snapshot) Has(name string) bool {
	_, ok := s.vars[name]
	return ok
}

// Names lists variables in sorted order.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.vars))
	for k := range s.vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Observer is notified after each step with the new snapshot and the
// set of variables that changed. Runs on the stepping goroutine.
type Observer func(s Snapshot, changed map[string]float64)

// Environment is the simulated physical world.
type Environment struct {
	mu        sync.RWMutex
	tick      int64
	vars      map[string]float64
	laws      []Law
	observers []Observer
	// StepSeconds is the simulated wall time per tick (default 1s).
	StepSeconds float64
}

// New creates an environment with the given initial variables.
func New(initial map[string]float64) *Environment {
	vars := make(map[string]float64, len(initial))
	for k, v := range initial {
		vars[k] = v
	}
	return &Environment{vars: vars, StepSeconds: 1}
}

// Set writes a variable immediately (actuator effect or scripted
// scenario input).
func (e *Environment) Set(name string, v float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.vars[name] = v
}

// Adjust adds a delta to a variable.
func (e *Environment) Adjust(name string, delta float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.vars[name] += delta
}

// Get reads a variable.
func (e *Environment) Get(name string) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.vars[name]
}

// Tick reports the current step count.
func (e *Environment) Tick() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tick
}

// Snapshot captures the current state.
func (e *Environment) Snapshot() Snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.snapshotLocked()
}

func (e *Environment) snapshotLocked() Snapshot {
	cp := make(map[string]float64, len(e.vars))
	for k, v := range e.vars {
		cp[k] = v
	}
	return Snapshot{Tick: e.tick, vars: cp}
}

// AddLaw registers a physics law.
func (e *Environment) AddLaw(l Law) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.laws = append(e.laws, l)
}

// AddObserver registers a change observer.
func (e *Environment) AddObserver(o Observer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observers = append(e.observers, o)
}

// Step advances one tick: all laws see the same pre-step snapshot and
// their updates merge into the new state.
func (e *Environment) Step() Snapshot {
	e.mu.Lock()
	pre := e.snapshotLocked()
	changed := make(map[string]float64)
	for _, law := range e.laws {
		for k, v := range law.Apply(pre, e.StepSeconds) {
			if e.vars[k] != v {
				changed[k] = v
			}
			e.vars[k] = v
		}
	}
	e.tick++
	post := e.snapshotLocked()
	observers := e.observers
	e.mu.Unlock()

	for _, o := range observers {
		o(post, changed)
	}
	return post
}

// Run advances n ticks.
func (e *Environment) Run(n int) Snapshot {
	var s Snapshot
	for i := 0; i < n; i++ {
		s = e.Step()
	}
	return s
}

// String renders the current variables for diagnostics.
func (e *Environment) String() string {
	s := e.Snapshot()
	out := fmt.Sprintf("tick=%d", s.Tick)
	for _, name := range s.Names() {
		out += fmt.Sprintf(" %s=%.2f", name, s.Get(name))
	}
	return out
}
