package sigrepo

import "iotsec/internal/telemetry"

// Crowdsourced-repository telemetry: publish/vote/notify rates, the
// quarantine outcome split, and server connection counts.
var (
	mPublishes = telemetry.NewCounter(
		"iotsec_sigrepo_publishes_total",
		"Signatures accepted by repositories (validated + stored).")
	mPublishRejected = telemetry.NewCounter(
		"iotsec_sigrepo_publish_rejected_total",
		"Signature submissions failing validation.")
	mVotes = telemetry.NewCounter(
		"iotsec_sigrepo_votes_total",
		"Community votes recorded.")
	mCleared = telemetry.NewCounter(
		"iotsec_sigrepo_cleared_total",
		"Signatures cleared out of quarantine (by trust or votes).")
	mRetired = telemetry.NewCounter(
		"iotsec_sigrepo_retired_total",
		"Signatures retired by down-votes.")
	mNotifies = telemetry.NewCounter(
		"iotsec_sigrepo_notifies_total",
		"Subscriber notifications delivered or scheduled.")
	mServerConns = telemetry.NewGauge(
		"iotsec_sigrepo_server_connections",
		"Open TCP connections across sigrepo servers.")
	mServerRequests = telemetry.NewCounter(
		"iotsec_sigrepo_server_requests_total",
		"Wire requests handled by sigrepo servers.")
)
