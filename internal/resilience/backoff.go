// Package resilience holds the failure-handling primitives the
// southbound control plane is built on: exponential backoff with full
// jitter for supervised reconnect loops, a bounded event ring for
// fail-static degradation buffers, a pluggable clock so liveness
// timers can be frozen in tests, and a fault-injection net.Conn
// wrapper (probabilistic connection kills, latency, one-way
// partitions) for chaos testing the detect → policy → controller →
// µmbox chain under controller restarts, link flaps and partitions —
// the fail-safe behaviour §5.1 of the paper demands of a security
// control plane.
//
// The package depends only on the standard library so every layer
// (netsim agents, the openflow endpoint, cmd binaries, tests) can use
// it without import cycles.
package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// BackoffOptions parameterize a reconnect schedule.
type BackoffOptions struct {
	// Base is the first retry ceiling (default 50ms).
	Base time.Duration
	// Cap bounds any single delay (default 5s).
	Cap time.Duration
	// MaxElapsed bounds the cumulative delay handed out since the last
	// Reset; once exceeded, Next reports done (0 = retry forever).
	MaxElapsed time.Duration
	// Multiplier grows the ceiling between attempts (default 2).
	Multiplier float64
	// NoJitter disables full jitter, making Next return the raw
	// exponential ceiling (deterministic schedules for tests).
	NoJitter bool
	// Seed makes the jitter sequence deterministic (0 = seeded from
	// the clock).
	Seed int64
}

// Backoff produces delays for a supervised retry loop: full-jitter
// exponential growth (delay drawn uniformly from [0, ceiling], the
// AWS "full jitter" scheme that decorrelates reconnect stampedes),
// a per-attempt cap, an optional total budget, and reset-on-success.
// Not safe for concurrent use; each supervisor owns one.
type Backoff struct {
	opts    BackoffOptions
	rng     *rand.Rand
	attempt int
	elapsed time.Duration
}

// NewBackoff builds a schedule, applying defaults for zero fields.
func NewBackoff(opts BackoffOptions) *Backoff {
	if opts.Base <= 0 {
		opts.Base = 50 * time.Millisecond
	}
	if opts.Cap <= 0 {
		opts.Cap = 5 * time.Second
	}
	if opts.Multiplier < 1 {
		opts.Multiplier = 2
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{opts: opts, rng: rand.New(rand.NewSource(seed))}
}

// Ceiling reports the upper bound the next delay will be drawn from.
func (b *Backoff) Ceiling() time.Duration {
	c := float64(b.opts.Base)
	for i := 0; i < b.attempt; i++ {
		c *= b.opts.Multiplier
		if c >= float64(b.opts.Cap) {
			return b.opts.Cap
		}
	}
	if c > float64(b.opts.Cap) {
		return b.opts.Cap
	}
	return time.Duration(c)
}

// Next returns the delay to wait before the next attempt and whether
// the caller should keep retrying. ok=false means the MaxElapsed
// budget is spent; the returned delay is then zero.
func (b *Backoff) Next() (delay time.Duration, ok bool) {
	if b.opts.MaxElapsed > 0 && b.elapsed >= b.opts.MaxElapsed {
		return 0, false
	}
	ceiling := b.Ceiling()
	delay = ceiling
	if !b.opts.NoJitter {
		delay = time.Duration(b.rng.Int63n(int64(ceiling) + 1))
	}
	if b.opts.MaxElapsed > 0 && b.elapsed+delay > b.opts.MaxElapsed {
		// Truncate the final wait to the budget boundary; the attempt
		// after it reports done.
		delay = b.opts.MaxElapsed - b.elapsed
	}
	b.attempt++
	b.elapsed += delay
	return delay, true
}

// Attempt reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset returns the schedule to its base state; call it after a
// successful attempt so the next failure restarts from Base.
func (b *Backoff) Reset() {
	b.attempt = 0
	b.elapsed = 0
}

// Ring is a bounded FIFO buffer that evicts the oldest element when
// full (drop-oldest), counting evictions. It backs the fail-static
// degradation buffer: while the southbound session is down, punted
// PACKET_INs and FLOW_REMOVED notifications queue here and are
// replayed on reconnect. Safe for concurrent use.
type Ring[T any] struct {
	mu      sync.Mutex
	buf     []T
	start   int
	n       int
	evicted uint64
}

// NewRing builds a ring holding up to capacity elements (values < 1
// default to 1024).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1024
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends v, evicting the oldest element if the ring is full;
// the return value reports whether an eviction happened.
func (r *Ring[T]) Push(v T) (evictedOldest bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == len(r.buf) {
		r.buf[r.start] = v
		r.start = (r.start + 1) % len(r.buf)
		r.evicted++
		return true
	}
	r.buf[(r.start+r.n)%len(r.buf)] = v
	r.n++
	return false
}

// Drain removes and returns all buffered elements, oldest first.
func (r *Ring[T]) Drain() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.start + i) % len(r.buf)
		out = append(out, r.buf[idx])
		var zero T
		r.buf[idx] = zero
	}
	r.start, r.n = 0, 0
	return out
}

// Snapshot returns a copy of the buffered elements, oldest first,
// without consuming them. Durable outboxes use it to persist their
// pending entries without disturbing delivery order.
func (r *Ring[T]) Snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// Len reports the buffered element count.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Evicted reports how many elements were dropped to make room.
func (r *Ring[T]) Evicted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}
