package policy

import (
	"sort"
	"strings"
)

// PruneReport quantifies the state-space reduction the two §3.2
// strategies achieve on a policy.
type PruneReport struct {
	// FullStates is |S| over the whole domain.
	FullStates float64
	// ReferencedVars is the policy's support.
	ReferencedVars []string
	// IndependentStates is |S| restricted to referenced variables
	// (independence pruning: unreferenced devices/variables factor
	// out).
	IndependentStates float64
	// EquivalenceClasses counts distinct posture assignments over the
	// referenced space (posture-equivalence collapsing) — the true
	// size of the compiled policy.
	EquivalenceClasses int
	// Enumerated reports how many projected states were walked
	// (equals IndependentStates unless the limit tripped).
	Enumerated int
	// Complete is false if the enumeration limit was hit before
	// covering the projected space.
	Complete bool
}

// Compiled is the pruned lookup structure: posture assignments keyed
// by the projection of the state onto the referenced variables.
// Lookups cost one projection + one map hit regardless of how many
// irrelevant devices the deployment has.
type Compiled struct {
	vars    []string
	proj    projector
	classes map[string]map[string]Posture // projection key → device → posture
	fsm     *FSM
}

// projector renders a state's projection key over a fixed, presorted
// variable list. The prefix-split and sort happen once at Compile
// time, so per-lookup key construction is a single pass with one
// string allocation — this is what lets the compiled form actually
// beat direct FSM evaluation instead of paying a sort per lookup.
type projector struct {
	parts []projPart
	width int // size hint for the key builder
}

type projPart struct {
	prefix string // "dev:<name>=" or "env:<name>="
	name   string
	dev    bool
}

// newProjector builds the key renderer. The variable order (sorted)
// is fixed here; Compile-time inserts and Lookup-time probes use the
// same renderer, so keys always agree.
func newProjector(vars []string) projector {
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	pr := projector{parts: make([]projPart, 0, len(sorted))}
	for _, v := range sorted {
		if name, ok := strings.CutPrefix(v, "dev:"); ok {
			pr.parts = append(pr.parts, projPart{prefix: v + "=", name: name, dev: true})
		} else if name, ok := strings.CutPrefix(v, "env:"); ok {
			pr.parts = append(pr.parts, projPart{prefix: v + "=", name: name})
		}
		pr.width += len(v) + 16
	}
	return pr
}

// key renders the projection of s.
func (pr projector) key(s State) string {
	var b strings.Builder
	b.Grow(pr.width)
	for i, p := range pr.parts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.prefix)
		if p.dev {
			b.WriteString(string(s.Contexts[p.name]))
		} else {
			b.WriteString(s.Env[p.name])
		}
	}
	return b.String()
}

// Compile enumerates the projected space (bounded by limit; 0 = up to
// 1<<20 states) and builds the pruned structure plus its report.
func (f *FSM) Compile(limit int) (*Compiled, PruneReport) {
	if limit <= 0 {
		limit = 1 << 20
	}
	report := PruneReport{
		FullStates:     f.Domain.StateCount(),
		ReferencedVars: f.ReferencedVars(),
	}

	// Projected domain: only referenced variables.
	proj := NewDomain()
	refSet := map[string]bool{}
	for _, v := range report.ReferencedVars {
		refSet[v] = true
		if name, ok := strings.CutPrefix(v, "dev:"); ok {
			proj.AddDevice(name, f.Domain.DeviceContexts(name)...)
		} else if name, ok := strings.CutPrefix(v, "env:"); ok {
			proj.AddEnvVar(name, f.Domain.EnvLevels(name)...)
		}
	}
	report.IndependentStates = proj.StateCount()

	c := &Compiled{
		vars:    report.ReferencedVars,
		proj:    newProjector(report.ReferencedVars),
		classes: make(map[string]map[string]Posture),
		fsm:     f,
	}
	classKeys := map[string]bool{}
	visited, complete := proj.EnumerateStates(limit, func(s State) bool {
		postures := f.Lookup(s)
		// Drop devices not declared in the projection... they default
		// to allow and do not affect equivalence.
		key := c.proj.key(s)
		relevant := make(map[string]Posture)
		var sig strings.Builder
		for _, dev := range f.Domain.Devices() {
			p := postures[dev]
			relevant[dev] = p
			sig.WriteString(dev)
			sig.WriteByte('=')
			sig.WriteString(p.Key())
			sig.WriteByte('&')
		}
		c.classes[key] = relevant
		classKeys[sig.String()] = true
		return true
	})
	report.Enumerated = visited
	report.Complete = complete
	report.EquivalenceClasses = len(classKeys)
	return c, report
}

// Lookup resolves postures through the pruned structure; states
// differing only in unreferenced variables share one entry. Falls
// back to direct evaluation if the projection was not covered
// (enumeration limit).
func (c *Compiled) Lookup(s State) map[string]Posture {
	key := c.proj.key(s)
	if postures, ok := c.classes[key]; ok {
		return postures
	}
	return c.fsm.Lookup(s)
}

// Size reports the number of stored projected states.
func (c *Compiled) Size() int { return len(c.classes) }
