// Package learn implements §4.2 of the paper: a library of abstract
// per-class device models (simple FSMs with environment effects and
// observations), a model-fuzzing engine that discovers cross-device
// interactions — including the implicit ones coupled through the
// physical environment — and attack-graph search that turns those
// interactions plus per-device vulnerabilities into concrete
// multi-stage attack paths (e.g., compromise the plug, heat the room,
// watch the window open).
package learn

import (
	"fmt"
	"sort"
	"strings"
)

// Effect is an environment write a model state holds while active:
// "while the bulb is on, light=lit".
type Effect struct {
	Var   string
	Level string
}

// Observation is a sensor rule: "when temperature=high, transition to
// state open" (used by autonomous devices like IFTTT-driven windows
// or alarms).
type Observation struct {
	Var     string
	Level   string
	ToState string
}

// Model is an abstract device class: states, command transitions,
// environment effects per state, and observation-driven transitions.
// Models are deliberately simple — the paper's point is that
// class-level models (toaster, bulb) suffice to reason about
// interaction spaces without per-SKU fidelity.
type Model struct {
	Class   string
	States  []string
	Initial string
	// Transitions: command → (fromState → toState).
	Transitions map[string]map[string]string
	// Effects the device exerts while in a state.
	Effects map[string][]Effect
	// Observations fire at each world step.
	Observations []Observation
}

// Commands lists the model's command vocabulary, sorted.
func (m *Model) Commands() []string {
	out := make([]string, 0, len(m.Transitions))
	for c := range m.Transitions {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Validate checks internal consistency.
func (m *Model) Validate() error {
	states := map[string]bool{}
	for _, s := range m.States {
		states[s] = true
	}
	if !states[m.Initial] {
		return fmt.Errorf("learn: model %s: initial state %q undeclared", m.Class, m.Initial)
	}
	for cmd, trans := range m.Transitions {
		for from, to := range trans {
			if !states[from] || !states[to] {
				return fmt.Errorf("learn: model %s: transition %s: %s->%s uses undeclared state", m.Class, cmd, from, to)
			}
		}
	}
	for _, o := range m.Observations {
		if !states[o.ToState] {
			return fmt.Errorf("learn: model %s: observation -> %q undeclared", m.Class, o.ToState)
		}
	}
	return nil
}

// Library is the community-maintained model collection the paper
// envisions.
type Library struct {
	models map[string]*Model
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{models: make(map[string]*Model)} }

// Add registers a model after validation.
func (l *Library) Add(m *Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	l.models[m.Class] = m
	return nil
}

// Get looks up a model by class.
func (l *Library) Get(class string) (*Model, bool) {
	m, ok := l.models[class]
	return m, ok
}

// Classes lists registered classes, sorted.
func (l *Library) Classes() []string {
	out := make([]string, 0, len(l.models))
	for c := range l.models {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// StandardLibrary builds models for the smart-home classes the
// paper's scenarios use.
func StandardLibrary() *Library {
	l := NewLibrary()
	must := func(m *Model) {
		if err := l.Add(m); err != nil {
			panic(err)
		}
	}
	must(&Model{
		Class:   "bulb",
		States:  []string{"off", "on"},
		Initial: "off",
		Transitions: map[string]map[string]string{
			"ON":  {"off": "on", "on": "on"},
			"OFF": {"on": "off", "off": "off"},
		},
		Effects: map[string][]Effect{"on": {{Var: "light", Level: "lit"}}},
	})
	must(&Model{
		Class:   "light-sensor",
		States:  []string{"dark", "lit"},
		Initial: "dark",
		Observations: []Observation{
			{Var: "light", Level: "lit", ToState: "lit"},
			{Var: "light", Level: "dark", ToState: "dark"},
		},
	})
	must(&Model{
		Class:   "plug",
		States:  []string{"off", "on"},
		Initial: "off",
		Transitions: map[string]map[string]string{
			"ON":  {"off": "on", "on": "on"},
			"OFF": {"on": "off", "off": "off"},
		},
		// The plug powers an appliance that heats (the oven of Fig 5).
		Effects: map[string][]Effect{"on": {{Var: "temperature", Level: "high"}}},
	})
	must(&Model{
		Class:   "ac",
		States:  []string{"off", "cooling"},
		Initial: "cooling",
		Transitions: map[string]map[string]string{
			"ON":  {"off": "cooling", "cooling": "cooling"},
			"OFF": {"cooling": "off", "off": "off"},
		},
		Effects: map[string][]Effect{"cooling": {{Var: "temperature", Level: "normal"}}},
	})
	must(&Model{
		// IFTTT-driven window: opens autonomously when hot (the §2.1
		// attack chain), plus explicit commands.
		Class:   "window",
		States:  []string{"closed", "open"},
		Initial: "closed",
		Transitions: map[string]map[string]string{
			"OPEN":  {"closed": "open", "open": "open"},
			"CLOSE": {"open": "closed", "closed": "closed"},
		},
		Effects: map[string][]Effect{"open": {{Var: "window", Level: "open"}}},
		Observations: []Observation{
			{Var: "temperature", Level: "high", ToState: "open"},
		},
	})
	must(&Model{
		Class:   "fire-alarm",
		States:  []string{"ok", "alarm"},
		Initial: "ok",
		Transitions: map[string]map[string]string{
			"SILENCE": {"alarm": "ok", "ok": "ok"},
			"TEST":    {"ok": "alarm", "alarm": "alarm"},
		},
		Observations: []Observation{
			{Var: "smoke", Level: "yes", ToState: "alarm"},
		},
		Effects: map[string][]Effect{"alarm": {{Var: "alarm_sounding", Level: "yes"}}},
	})
	must(&Model{
		Class:   "oven",
		States:  []string{"off", "baking"},
		Initial: "off",
		Transitions: map[string]map[string]string{
			"ON":  {"off": "baking", "baking": "baking"},
			"OFF": {"baking": "off", "off": "off"},
		},
		Effects: map[string][]Effect{"baking": {
			{Var: "temperature", Level: "high"},
			{Var: "smoke", Level: "yes"},
		}},
	})
	must(&Model{
		Class:   "lock",
		States:  []string{"locked", "unlocked"},
		Initial: "locked",
		Transitions: map[string]map[string]string{
			"LOCK":   {"unlocked": "locked", "locked": "locked"},
			"UNLOCK": {"locked": "unlocked", "unlocked": "unlocked"},
		},
		Effects: map[string][]Effect{"unlocked": {{Var: "door", Level: "unlocked"}}},
	})
	return l
}

// Instance is one deployed model with its current state.
type Instance struct {
	Name  string
	Model *Model
	State string
}

// World is the abstract closed-loop of instances and discrete
// environment variables: the substrate §4.2's fuzzing explores.
type World struct {
	instances []*Instance
	byName    map[string]*Instance
	env       map[string]string
	// defaults restore env variables not currently driven by any
	// effect (e.g., the room cools back to normal once nothing heats
	// it).
	defaults map[string]string
}

// NewWorld builds a world with the given default environment levels.
func NewWorld(envDefaults map[string]string) *World {
	w := &World{
		byName:   make(map[string]*Instance),
		env:      make(map[string]string),
		defaults: make(map[string]string, len(envDefaults)),
	}
	for k, v := range envDefaults {
		w.env[k] = v
		w.defaults[k] = v
	}
	return w
}

// AddInstance deploys a model under a name.
func (w *World) AddInstance(name string, m *Model) *Instance {
	inst := &Instance{Name: name, Model: m, State: m.Initial}
	w.instances = append(w.instances, inst)
	w.byName[name] = inst
	return inst
}

// Instance looks an instance up.
func (w *World) Instance(name string) (*Instance, bool) {
	i, ok := w.byName[name]
	return i, ok
}

// Instances lists deployment names, in insertion order.
func (w *World) Instances() []string {
	out := make([]string, len(w.instances))
	for i, inst := range w.instances {
		out[i] = inst.Name
	}
	return out
}

// Env reads an environment level.
func (w *World) Env(name string) string { return w.env[name] }

// SetEnv writes an environment level (scenario scripting).
func (w *World) SetEnv(name, level string) { w.env[name] = level }

// Command applies a command to an instance; unknown commands or
// commands without a transition from the current state are no-ops
// returning false.
func (w *World) Command(device, cmd string) bool {
	inst, ok := w.byName[device]
	if !ok {
		return false
	}
	trans, ok := inst.Model.Transitions[cmd]
	if !ok {
		return false
	}
	to, ok := trans[inst.State]
	if !ok {
		return false
	}
	inst.State = to
	return true
}

// Step advances the world: effects write the environment (variables
// with no active effect fall back to their defaults), then
// observations fire. One step propagates one hop of an interaction
// chain; run several steps to settle.
func (w *World) Step() {
	// Recompute environment from defaults + active effects.
	next := make(map[string]string, len(w.env))
	for k, v := range w.defaults {
		next[k] = v
	}
	// Preserve scripted variables that have no default.
	for k, v := range w.env {
		if _, ok := next[k]; !ok {
			next[k] = v
		}
	}
	for _, inst := range w.instances {
		for _, e := range inst.Model.Effects[inst.State] {
			next[e.Var] = e.Level
		}
	}
	w.env = next
	// Observations act on the settled environment.
	for _, inst := range w.instances {
		for _, o := range inst.Model.Observations {
			if w.env[o.Var] == o.Level {
				inst.State = o.ToState
			}
		}
	}
}

// Snapshot captures instance states and env levels.
func (w *World) Snapshot() map[string]string {
	out := make(map[string]string, len(w.instances)+len(w.env))
	for _, inst := range w.instances {
		out["dev:"+inst.Name] = inst.State
	}
	for k, v := range w.env {
		out["env:"+k] = v
	}
	return out
}

// Reset restores every instance to its initial state and the
// environment to its defaults.
func (w *World) Reset() {
	for _, inst := range w.instances {
		inst.State = inst.Model.Initial
	}
	w.env = make(map[string]string, len(w.defaults))
	for k, v := range w.defaults {
		w.env[k] = v
	}
}

// Key renders the snapshot as a stable string (search node identity).
func (w *World) Key() string {
	snap := w.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(snap[k])
		b.WriteByte(';')
	}
	return b.String()
}
