package controller

import (
	"sort"
	"sync"
	"time"
)

// Replica is a weakly consistent follower of a Store: updates become
// visible only after a replication lag, the way traditional SDN state
// distribution works (§5.1: "traditional mechanisms for scaling SDN
// typically exploit weak consistency semantics"). IoTSec's critical
// security state cannot ride on this — the replica exists so the
// ablation can measure exactly why.
//
// Time is injected explicitly (Offer records the commit time,
// AdvanceTo applies everything older than now-lag), so experiments
// are deterministic; FollowStore provides the convenience live mode.
type Replica struct {
	// Lag is the replication delay.
	Lag time.Duration

	mu      sync.Mutex
	pending []timedUpdate
	// dirty marks pending as out of version order. Offers almost always
	// arrive in order (a store watch delivers commits sequentially), so
	// AdvanceTo only pays the sort after an actual inversion instead of
	// re-sorting the whole backlog every tick.
	dirty  bool
	values map[string]Update
}

type timedUpdate struct {
	u  Update
	at time.Time
}

// NewReplica builds a follower with the given lag.
func NewReplica(lag time.Duration) *Replica {
	return &Replica{Lag: lag, values: make(map[string]Update)}
}

// Offer records one committed update with its commit time.
func (r *Replica) Offer(u Update, committedAt time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.pending); n > 0 && r.pending[n-1].u.Version > u.Version {
		r.dirty = true
	}
	r.pending = append(r.pending, timedUpdate{u: u, at: committedAt})
	mReplicaPending.Inc()
}

// AdvanceTo applies every pending update whose commit time is at
// least Lag in the past, in version order.
func (r *Replica) AdvanceTo(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dirty {
		sort.SliceStable(r.pending, func(i, j int) bool {
			return r.pending[i].u.Version < r.pending[j].u.Version
		})
		r.dirty = false
	}
	kept := r.pending[:0]
	for _, tu := range r.pending {
		if age := now.Sub(tu.at); age >= r.Lag {
			if cur, ok := r.values[tu.u.Key]; !ok || tu.u.Version > cur.Version {
				r.values[tu.u.Key] = tu.u
			}
			mReplicaLagSeconds.Observe(age.Seconds())
			mReplicaPending.Dec()
		} else {
			kept = append(kept, tu)
		}
	}
	r.pending = kept
}

// Get reads the replica's (possibly stale) view.
func (r *Replica) Get(key string) (value string, version uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.values[key]
	return u.Value, u.Version, ok
}

// Staleness reports how many updates are known but not yet visible.
func (r *Replica) Staleness() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// FollowStore wires the replica to a live store with wall-clock
// timing. Returns a stop function.
func (r *Replica) FollowStore(s *Store) (stop func()) {
	ch := s.Watch(1024)
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case u := <-ch:
				r.Offer(u, time.Now())
			case now := <-ticker.C:
				r.AdvanceTo(now)
			}
		}
	}()
	return func() { close(done) }
}
