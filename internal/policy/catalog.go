package policy

import (
	"fmt"
	"math/rand"
)

// Table2Device is one row of the paper's Table 2: a device and how
// many cross-device IFTTT recipes reference it.
type Table2Device struct {
	Device  string
	Recipes int
	Typical string
}

// Table2 reproduces the published counts and typical examples.
func Table2() []Table2Device {
	return []Table2Device{
		{
			Device:  "NEST Protect",
			Recipes: 188,
			Typical: "If Nest Protect detects smoke, then turn Philips hue lights on.",
		},
		{
			Device:  "Wemo Plugin",
			Recipes: 227,
			Typical: "Turn off WeMo Insight if SmartThings shows no body is at home.",
		},
		{
			Device:  "Scout Alarm",
			Recipes: 63,
			Typical: "Activate your Manythings Camera if Alarm is Triggered.",
		},
	}
}

// recipe vocabulary for corpus synthesis: realistic triggers and
// actions in the smart-home ecosystem.
var (
	corpusTriggers = []struct {
		device, state string
	}{
		{"nest_protect", "smoke=yes"},
		{"nest_protect", "co=yes"},
		{"smartthings", "presence=away"},
		{"smartthings", "presence=home"},
		{"scout_alarm", "alarm=triggered"},
		{"scout_alarm", "alarm=armed"},
		{"motion_sensor", "motion=detected"},
		{"door_sensor", "door=open"},
		{"env", "sunset=yes"},
		{"env", "sunrise=yes"},
		{"thermostat", "temperature=high"},
		{"thermostat", "temperature=low"},
		{"camera", "person=yes"},
		{"camera", "person=no"},
		{"meter", "usage=high"},
	}
	corpusActions = []struct {
		device, cmd string
	}{
		{"hue_lights", "ON"},
		{"hue_lights", "OFF"},
		{"wemo_insight", "ON"},
		{"wemo_insight", "OFF"},
		{"manythings_camera", "ON"},
		{"window", "OPEN"},
		{"window", "CLOSE"},
		{"front_door", "LOCK"},
		{"front_door", "UNLOCK"},
		{"thermostat", "ON"},
		{"thermostat", "OFF"},
		{"siren", "ON"},
	}
)

// SynthesizeCorpus generates a recipe population with the Table 2
// marginals: for each listed device, Recipes many recipes that
// reference it (as trigger or action), drawn deterministically from
// the vocabulary.
func SynthesizeCorpus(seed int64) []Recipe {
	rng := rand.New(rand.NewSource(seed))
	var out []Recipe
	aliases := map[string]string{
		"NEST Protect": "nest_protect",
		"Wemo Plugin":  "wemo_insight",
		"Scout Alarm":  "scout_alarm",
	}
	for _, row := range Table2() {
		anchor := aliases[row.Device]
		// Vocabulary entries mentioning the anchor, by side.
		var anchorTrigs, anchorActs []int
		for i, t := range corpusTriggers {
			if t.device == anchor {
				anchorTrigs = append(anchorTrigs, i)
			}
		}
		for i, a := range corpusActions {
			if a.device == anchor {
				anchorActs = append(anchorActs, i)
			}
		}
		for i := 0; i < row.Recipes; i++ {
			// Alternate which side is pinned to the anchor, falling
			// back to whichever side the vocabulary supports.
			useTrigAnchor := len(anchorTrigs) > 0 && (i%2 == 0 || len(anchorActs) == 0)
			trig := corpusTriggers[rng.Intn(len(corpusTriggers))]
			act := corpusActions[rng.Intn(len(corpusActions))]
			if useTrigAnchor {
				trig = corpusTriggers[anchorTrigs[rng.Intn(len(anchorTrigs))]]
			} else if len(anchorActs) > 0 {
				act = corpusActions[anchorActs[rng.Intn(len(anchorActs))]]
			}
			out = append(out, Recipe{
				Name:          fmt.Sprintf("%s-%03d", anchor, i),
				TriggerDevice: trig.device,
				TriggerState:  trig.state,
				ActionDevice:  act.device,
				ActionCommand: act.cmd,
			})
		}
	}
	return out
}
