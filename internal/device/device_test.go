package device

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"iotsec/internal/envsim"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

func TestRequestCodecRoundTrip(t *testing.T) {
	cases := []Request{
		{Cmd: "STATUS"},
		{Cmd: "ON", User: "admin", Pass: "admin"},
		{Cmd: "SET_TARGET", Args: []string{"25.5"}, User: "nest", Pass: "nest"},
		{Cmd: "RELAY", Args: []string{"10.0.0.9", "100"}},
	}
	for _, want := range cases {
		got, err := ParseRequest(want.Encode())
		if err != nil {
			t.Fatalf("parse %q: %v", want.Encode(), err)
		}
		if got.Cmd != want.Cmd || got.User != want.User || got.Pass != want.Pass {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
		if len(got.Args) != len(want.Args) {
			t.Errorf("args: got %v want %v", got.Args, want.Args)
		}
	}
}

func TestRequestCodecProperty(t *testing.T) {
	// Any command/user/pass without whitespace or separators must
	// survive the round trip.
	clean := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r == ' ' || r == '\n' || r == ':' || r < 32 || r > 126 {
				return -1
			}
			return r
		}, s)
		if s == "" {
			return "X"
		}
		return s
	}
	f := func(cmd, user, pass string) bool {
		want := Request{Cmd: strings.ToUpper(clean(cmd)), User: clean(user), Pass: clean(pass)}
		got, err := ParseRequest(want.Encode())
		return err == nil && got.Cmd == want.Cmd && got.User == want.User && got.Pass == want.Pass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResponseCodec(t *testing.T) {
	ok, err := ParseResponse(Response{OK: true, Data: "power=on"}.Encode())
	if err != nil || !ok.OK || ok.Data != "power=on" {
		t.Errorf("ok response: %+v %v", ok, err)
	}
	bad, err := ParseResponse(Response{OK: false, Data: "unauthorized"}.Encode())
	if err != nil || bad.OK || bad.Data != "unauthorized" {
		t.Errorf("err response: %+v %v", bad, err)
	}
	if _, err := ParseResponse([]byte("HTTP/1.1 200")); err == nil {
		t.Error("foreign protocol accepted")
	}
}

// testbed wires devices and a client stack onto one flooding switch.
type testbed struct {
	net    *netsim.Network
	sw     *netsim.Switch
	env    *envsim.Environment
	client *Client
	nextPt uint16
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	tb := &testbed{
		net: netsim.NewNetwork(),
		sw:  netsim.NewSwitch("sw", 1),
		env: envsim.StandardHome(),
	}
	tb.sw.SetMissBehavior(netsim.MissFlood)
	tb.nextPt = 1

	clientStack := netsim.NewStack("client", MACFor(packet.MustParseIPv4("10.0.0.250")), packet.MustParseIPv4("10.0.0.250"))
	tb.connect(clientStack.Attach(tb.net))
	tb.client = &Client{Stack: clientStack}
	t.Cleanup(func() {
		clientStack.Stop()
		tb.net.Stop()
	})
	return tb
}

func (tb *testbed) connect(hostPort *netsim.Port) {
	sp := tb.sw.AttachPort(tb.net, tb.nextPt)
	tb.nextPt++
	tb.net.Connect(hostPort, sp, netsim.LinkOptions{})
}

// add attaches a device to the fabric and environment.
func (tb *testbed) add(t *testing.T, d *Device) {
	t.Helper()
	p, err := d.Attach(tb.net)
	if err != nil {
		t.Fatal(err)
	}
	tb.connect(p)
	d.BindEnvironment(tb.env)
	t.Cleanup(d.Stop)
}

func TestCameraDefaultCredentialVulnerability(t *testing.T) {
	tb := newTestbed(t)
	cam := NewCamera("cam1", packet.MustParseIPv4("10.0.0.10"))
	tb.add(t, cam.Device)
	tb.net.Start()

	// Wrong password refused.
	resp, err := tb.client.Call(cam.IP(), Request{Cmd: "SNAPSHOT", User: "admin", Pass: "wrong"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Error("wrong password accepted")
	}
	// Factory default accepted — the Table 1 row 1 flaw.
	resp, err = tb.client.Call(cam.IP(), Request{Cmd: "SNAPSHOT", User: "admin", Pass: "admin"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !strings.HasPrefix(resp.Data, "jpeg:") {
		t.Errorf("default creds should yield a snapshot: %+v", resp)
	}
	// And the firmware refuses to change the password.
	resp, _ = tb.client.Call(cam.IP(), Request{Cmd: "SET_PASSWORD", User: "admin", Pass: "admin", Args: []string{"better"}})
	if resp.OK {
		t.Error("SET_PASSWORD should be unsupported on this firmware")
	}
}

func TestPlugBackdoorBypassesAuth(t *testing.T) {
	tb := newTestbed(t)
	plug := NewSmartPlug("wemo1", packet.MustParseIPv4("10.0.0.11"), Appliance{
		Name: "oven", PowerVar: "oven_power", Watts: 1800, HeatVar: "oven_heat_rate", HeatRate: 0.02,
	})
	tb.add(t, plug.Device)
	tb.net.Start()

	var events []Event
	var mu sync.Mutex
	plug.SetEventSink(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})

	// No credentials, no backdoor token: refused.
	resp, err := tb.client.Call(plug.IP(), Request{Cmd: "ON"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("unauthenticated ON accepted without backdoor")
	}
	// Backdoor token: accepted, and the appliance heats the room.
	resp, err = tb.client.Call(plug.IP(), Request{Cmd: "ON", Args: []string{PlugBackdoorToken}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("backdoor rejected: %+v", resp)
	}
	if tb.env.Get("oven_heat_rate") != 0.02 || tb.env.Get("oven_power") != 1800 {
		t.Errorf("appliance env vars not driven: heat=%v power=%v",
			tb.env.Get("oven_heat_rate"), tb.env.Get("oven_power"))
	}
	mu.Lock()
	defer mu.Unlock()
	var sawBackdoor bool
	for _, e := range events {
		if e.Kind == EventBackdoorAccess {
			sawBackdoor = true
		}
	}
	if !sawBackdoor {
		t.Error("backdoor access did not emit an event")
	}
}

func TestOpenAccessDevices(t *testing.T) {
	tb := newTestbed(t)
	tl := NewTrafficLight("tl1", packet.MustParseIPv4("10.0.0.12"))
	stb := NewSetTopBox("stb1", packet.MustParseIPv4("10.0.0.13"))
	tb.add(t, tl.Device)
	tb.add(t, stb.Device)
	tb.net.Start()

	// Traffic light: no credentials needed (Table 1 row 5).
	resp, err := tb.client.Call(tl.IP(), Request{Cmd: "SET", Args: []string{"green"}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || tl.Get("phase") != "green" {
		t.Errorf("open traffic light refused: %+v", resp)
	}
	if resp, _ := tb.client.Call(tl.IP(), Request{Cmd: "SET", Args: []string{"purple"}}); resp.OK {
		t.Error("invalid phase accepted")
	}
	// Set-top box leaks subscriber info without auth (row 2).
	resp, err = tb.client.Call(stb.IP(), Request{Cmd: "INFO"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !strings.Contains(resp.Data, "subscriber=") {
		t.Errorf("set-top box info: %+v", resp)
	}
}

func TestCCTVExposedKeyCompromisesWholeSKU(t *testing.T) {
	tb := newTestbed(t)
	const sharedKey = "rsa-XYZZY-3000"
	cam1 := NewCCTV("cctv1", packet.MustParseIPv4("10.0.0.20"), sharedKey)
	cam2 := NewCCTV("cctv2", packet.MustParseIPv4("10.0.0.21"), sharedKey)
	tb.add(t, cam1.Device)
	tb.add(t, cam2.Device)
	tb.net.Start()

	// Step 1: download firmware from cam1 without credentials.
	resp, err := tb.client.Call(cam1.IP(), Request{Cmd: "FIRMWARE"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("firmware download refused: %+v", resp)
	}
	// Step 2: extract the key.
	idx := strings.Index(resp.Data, "rsa_private=")
	if idx < 0 {
		t.Fatalf("no key in firmware blob %q", resp.Data)
	}
	key := resp.Data[idx+len("rsa_private="):]
	// Step 3: the key unlocks a *different* unit of the same SKU.
	resp, err = tb.client.Call(cam2.IP(), Request{Cmd: "SNAPSHOT", User: "fwadmin", Pass: key})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Errorf("extracted key should compromise every unit: %+v", resp)
	}
}

func TestWindowActuatorDrivesEnvironment(t *testing.T) {
	tb := newTestbed(t)
	win := NewWindowActuator("win1", packet.MustParseIPv4("10.0.0.14"))
	tb.add(t, win.Device)
	tb.net.Start()

	resp, err := tb.client.Call(win.IP(), Request{Cmd: "OPEN", User: "admin", Pass: WindowPassword})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("open refused: %+v", resp)
	}
	if tb.env.Get(envsim.VarWindowOpen) != 1 {
		t.Error("window_open not set in environment")
	}
	if _, err := tb.client.Call(win.IP(), Request{Cmd: "CLOSE", User: "admin", Pass: WindowPassword}); err != nil {
		t.Fatal(err)
	}
	if tb.env.Get(envsim.VarWindowOpen) != 0 {
		t.Error("window_open not cleared")
	}
}

func TestFireAlarmSensesSmoke(t *testing.T) {
	tb := newTestbed(t)
	alarm := NewFireAlarm("fa1", packet.MustParseIPv4("10.0.0.15"))
	tb.add(t, alarm.Device)
	tb.net.Start()

	events := make(chan Event, 16)
	alarm.SetEventSink(func(e Event) {
		select {
		case events <- e:
		default:
		}
	})

	tb.env.Set("smoke_source_rate", 0.02)
	tb.env.Run(30)
	if alarm.Get("alarm") != "alarm" {
		t.Fatalf("alarm state = %q after smoke", alarm.Get("alarm"))
	}
	var sawSmoke bool
	for {
		select {
		case e := <-events:
			if e.Kind == EventSensor && e.Detail == "smoke=yes" {
				sawSmoke = true
			}
			continue
		default:
		}
		break
	}
	if !sawSmoke {
		t.Error("no smoke sensor event emitted")
	}
	// Clear the smoke: alarm resets.
	tb.env.Set("smoke_source_rate", 0)
	tb.env.Set(envsim.VarWindowOpen, 1)
	tb.env.Run(300)
	if alarm.Get("alarm") != "ok" {
		t.Errorf("alarm did not reset, smoke=%v", tb.env.Get(envsim.VarSmoke))
	}
}

func TestThermostatControlLoop(t *testing.T) {
	tb := newTestbed(t)
	th := NewThermostat("th1", packet.MustParseIPv4("10.0.0.16"))
	tb.add(t, th.Device)
	tb.net.Start()

	// Room starts at 22, outside 30; target 22 → idle-ish. Crank the
	// target up: the thermostat should switch to heating.
	resp, err := tb.client.Call(th.IP(), Request{Cmd: "SET_TARGET", Args: []string{"28"}, User: "nest", Pass: "nest"})
	if err != nil || !resp.OK {
		t.Fatalf("set target: %v %+v", err, resp)
	}
	tb.env.Run(5)
	if th.Get("hvac") != "heating" {
		t.Errorf("hvac = %q, want heating", th.Get("hvac"))
	}
	before := tb.env.Get(envsim.VarTemperature)
	tb.env.Run(600)
	after := tb.env.Get(envsim.VarTemperature)
	if after <= before {
		t.Errorf("temperature did not rise under heating: %.2f -> %.2f", before, after)
	}
	// Mode off stops the HVAC.
	if resp, _ := tb.client.Call(th.IP(), Request{Cmd: "SET_MODE", Args: []string{"off"}, User: "nest", Pass: "nest"}); !resp.OK {
		t.Fatalf("set mode: %+v", resp)
	}
	tb.env.Run(2)
	if tb.env.Get("hvac_power") != 0 {
		t.Error("hvac power still drawn in mode off")
	}
}

func TestSmartMeterCalibrationFraud(t *testing.T) {
	tb := newTestbed(t)
	meter := NewSmartMeter("meter1", packet.MustParseIPv4("10.0.0.17"))
	tb.add(t, meter.Device)
	tb.net.Start()
	tb.env.Step()

	honest, err := tb.client.Call(meter.IP(), Request{Cmd: "READ"})
	if err != nil || !honest.OK {
		t.Fatalf("read: %v %+v", err, honest)
	}
	// Anyone can lower the bill (no auth on calibration).
	if resp, _ := tb.client.Call(meter.IP(), Request{Cmd: "SET_CALIBRATION", Args: []string{"0.1"}}); !resp.OK {
		t.Fatalf("calibration refused: %+v", resp)
	}
	cooked, _ := tb.client.Call(meter.IP(), Request{Cmd: "READ"})
	if cooked.Data == honest.Data {
		t.Errorf("calibration fraud had no effect: %q vs %q", cooked.Data, honest.Data)
	}
}

func TestFridgeSpamRelay(t *testing.T) {
	tb := newTestbed(t)
	fridge := NewSmartFridge("fridge1", packet.MustParseIPv4("10.0.0.18"))
	tb.add(t, fridge.Device)

	// A victim mail server on the LAN counts arriving spam.
	victimStack := netsim.NewStack("victim", MACFor(packet.MustParseIPv4("10.0.0.99")), packet.MustParseIPv4("10.0.0.99"))
	tb.connect(victimStack.Attach(tb.net))
	t.Cleanup(victimStack.Stop)
	var got sync.WaitGroup
	got.Add(25)
	var count int
	var mu sync.Mutex
	if err := victimStack.HandleUDP(25, func(_ packet.IPv4Address, _ uint16, payload []byte) {
		mu.Lock()
		count++
		mu.Unlock()
		got.Done()
	}); err != nil {
		t.Fatal(err)
	}
	tb.net.Start()

	resp, err := tb.client.Call(fridge.IP(), Request{Cmd: "RELAY", Args: []string{"10.0.0.99", "25"}})
	if err != nil || !resp.OK {
		t.Fatalf("relay: %v %+v", err, resp)
	}
	done := make(chan struct{})
	go func() { got.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		mu.Lock()
		t.Fatalf("only %d/25 spam messages arrived", count)
	}
	if fridge.SpamSent() != 25 {
		t.Errorf("spam counter = %d", fridge.SpamSent())
	}
}

func TestPlugOpenDNSResolverAmplifies(t *testing.T) {
	tb := newTestbed(t)
	plug := NewSmartPlug("wemo2", packet.MustParseIPv4("10.0.0.30"), Appliance{Name: "lamp"})
	tb.add(t, plug.Device)
	if err := plug.StartDNSResolver(20); err != nil {
		t.Fatal(err)
	}
	tb.net.Start()

	// Query from the client: response must be much larger.
	respLen := make(chan int, 1)
	if err := tb.client.Stack.HandleUDP(5353, func(_ packet.IPv4Address, _ uint16, payload []byte) {
		respLen <- len(payload)
	}); err != nil {
		t.Fatal(err)
	}
	query := &packet.DNS{
		ID:         7,
		RecDesired: true,
		Questions:  []packet.DNSQuestion{{Name: "example.com", Type: packet.DNSTypeANY, Class: packet.DNSClassIN}},
	}
	b := packet.NewSerializeBuffer()
	if err := query.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	qLen := b.Len()
	if err := tb.client.Stack.SendUDP(plug.IP(), 53, 5353, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	select {
	case rl := <-respLen:
		if rl < qLen*10 {
			t.Errorf("amplification factor %d/%d too small", rl, qLen)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("resolver never answered")
	}
}

func TestDeviceUnknownCommandAndBadRequest(t *testing.T) {
	tb := newTestbed(t)
	tl := NewTrafficLight("tl2", packet.MustParseIPv4("10.0.0.40"))
	tb.add(t, tl.Device)
	tb.net.Start()

	resp, err := tb.client.Call(tl.IP(), Request{Cmd: "EXPLODE"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Error("unknown command accepted")
	}
}

func TestFailedLoginCounting(t *testing.T) {
	tb := newTestbed(t)
	win := NewWindowActuator("win2", packet.MustParseIPv4("10.0.0.41"))
	tb.add(t, win.Device)
	tb.net.Start()

	for i := 0; i < 3; i++ {
		_, _ = tb.client.Call(win.IP(), Request{Cmd: "OPEN", User: "admin", Pass: "guess"})
	}
	if got := win.FailedLogins(tb.client.Stack.IP()); got != 3 {
		t.Errorf("failed logins = %d, want 3", got)
	}
	// A success resets the counter.
	_, _ = tb.client.Call(win.IP(), Request{Cmd: "CLOSE", User: "admin", Pass: WindowPassword})
	if got := win.FailedLogins(tb.client.Stack.IP()); got != 0 {
		t.Errorf("failed logins after success = %d", got)
	}
}
