package telemetry

import (
	"math"
	"testing"
	"time"
)

func rollupBounds() []float64 { return []float64{0.001, 0.01, 0.1, 1} }

// TestHistogramRollupMergeEmptyIntoPopulated covers both directions:
// merging an empty rollup into a populated one is a no-op, and merging
// a populated rollup into a zero-value target adopts its bounds and
// contents exactly.
func TestHistogramRollupMergeEmptyIntoPopulated(t *testing.T) {
	h := NewStandaloneHistogram(rollupBounds())
	for _, v := range []float64{0.0005, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	populated := h.Rollup()

	// Empty into populated: nothing changes.
	target := populated.Clone()
	empty := NewStandaloneHistogram(rollupBounds()).Rollup()
	if err := target.Merge(empty); err != nil {
		t.Fatalf("merge empty: %v", err)
	}
	if target.Count != populated.Count || target.Sum != populated.Sum {
		t.Fatalf("empty merge changed count/sum: %+v vs %+v", target, populated)
	}
	for i := range target.Buckets {
		if target.Buckets[i] != populated.Buckets[i] {
			t.Fatalf("bucket %d changed: %d vs %d", i, target.Buckets[i], populated.Buckets[i])
		}
	}

	// Populated into zero value: adopts bounds and contents.
	var zero HistogramRollup
	if err := zero.Merge(populated); err != nil {
		t.Fatalf("merge into zero: %v", err)
	}
	if zero.Count != populated.Count {
		t.Fatalf("zero-merge count = %d, want %d", zero.Count, populated.Count)
	}
	if !boundsEqual(zero.Bounds, populated.Bounds) {
		t.Fatalf("zero-merge bounds = %v, want %v", zero.Bounds, populated.Bounds)
	}
}

// TestHistogramRollupMergeBoundsMismatch: merging across different
// bucket layouts must error and must not touch the target.
func TestHistogramRollupMergeBoundsMismatch(t *testing.T) {
	a := NewStandaloneHistogram(rollupBounds())
	a.Observe(0.05)
	target := a.Rollup()
	before := target.Clone()

	b := NewStandaloneHistogram([]float64{0.002, 0.02, 0.2})
	b.Observe(0.05)
	if err := target.Merge(b.Rollup()); err == nil {
		t.Fatal("merge with mismatched bounds did not error")
	}
	if target.Count != before.Count {
		t.Fatalf("failed merge mutated target count: %d vs %d", target.Count, before.Count)
	}
	for i := range target.Buckets {
		if target.Buckets[i] != before.Buckets[i] {
			t.Fatalf("failed merge mutated bucket %d", i)
		}
	}

	// Malformed bucket slice lengths error too.
	bad := HistogramRollup{Bounds: rollupBounds(), Buckets: []uint64{1, 2}}
	if err := target.Merge(bad); err == nil {
		t.Fatal("merge with truncated buckets did not error")
	}

	// Live-histogram merge enforces the same contract.
	live := NewStandaloneHistogram(rollupBounds())
	if err := live.Merge(b.Rollup()); err == nil {
		t.Fatal("Histogram.Merge with mismatched bounds did not error")
	}
	if live.Count() != 0 {
		t.Fatalf("failed live merge recorded observations: count=%d", live.Count())
	}
}

// TestHistogramMergeQuantileMatchesDirect: observing a stream sharded
// across several histograms then merging must yield the same quantile
// estimates as observing the whole stream into one histogram.
func TestHistogramMergeQuantileMatchesDirect(t *testing.T) {
	direct := NewStandaloneHistogram(rollupBounds())
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = NewStandaloneHistogram(rollupBounds())
	}
	// Deterministic spread across all buckets, including +Inf.
	vals := []float64{0.0002, 0.0007, 0.004, 0.008, 0.03, 0.07, 0.3, 0.9, 1.5, 3}
	for i := 0; i < 1000; i++ {
		v := vals[i%len(vals)]
		direct.Observe(v)
		shards[i%len(shards)].Observe(v)
	}

	// Merge via rollup structs.
	var merged HistogramRollup
	for _, s := range shards {
		if err := merged.Merge(s.Rollup()); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	// And via a live aggregation histogram.
	liveAgg := NewStandaloneHistogram(rollupBounds())
	for _, s := range shards {
		if err := liveAgg.Merge(s.Rollup()); err != nil {
			t.Fatalf("live merge: %v", err)
		}
	}

	if merged.Count != direct.Count() {
		t.Fatalf("merged count = %d, direct = %d", merged.Count, direct.Count())
	}
	if liveAgg.Count() != direct.Count() {
		t.Fatalf("live merged count = %d, direct = %d", liveAgg.Count(), direct.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := direct.Quantile(q)
		if got := merged.Quantile(q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("q%.2f: merged %v, direct %v", q, got, want)
		}
		if got := liveAgg.Quantile(q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("q%.2f: live-merged %v, direct %v", q, got, want)
		}
	}
}

// TestHistogramRollupDeltaFrom: delta windows subtract cleanly,
// tolerate zero-value baselines, clamp on resets, and reject
// mismatched bounds.
func TestHistogramRollupDeltaFrom(t *testing.T) {
	h := NewStandaloneHistogram(rollupBounds())
	h.Observe(0.005)
	first := h.Rollup()

	d0, err := first.DeltaFrom(HistogramRollup{})
	if err != nil {
		t.Fatalf("delta from zero: %v", err)
	}
	if d0.Count != 1 {
		t.Fatalf("first delta count = %d", d0.Count)
	}

	h.Observe(0.05)
	h.Observe(0.5)
	second := h.Rollup()
	d1, err := second.DeltaFrom(first)
	if err != nil {
		t.Fatalf("delta: %v", err)
	}
	if d1.Count != 2 {
		t.Fatalf("window delta count = %d, want 2", d1.Count)
	}
	if d1.Buckets[0] != 0 || d1.Buckets[2] != 1 || d1.Buckets[3] != 1 {
		t.Fatalf("window delta buckets = %v", d1.Buckets)
	}

	// Reset source: current < prev clamps to current, never underflows.
	fresh := NewStandaloneHistogram(rollupBounds())
	fresh.Observe(0.005)
	dr, err := fresh.Rollup().DeltaFrom(second)
	if err != nil {
		t.Fatalf("reset delta: %v", err)
	}
	if dr.Count != 1 {
		t.Fatalf("reset delta count = %d, want 1", dr.Count)
	}

	other := NewStandaloneHistogram([]float64{1, 2, 3})
	if _, err := other.Rollup().DeltaFrom(first); err == nil {
		t.Fatal("delta across mismatched bounds did not error")
	}
}

// TestRollupBuilderDeltas: counters and histograms export monotonic
// deltas per Take; gauges snapshot; seq increases; the window spans
// takes.
func TestRollupBuilderDeltas(t *testing.T) {
	c := &Counter{}
	h := NewStandaloneHistogram(rollupBounds())
	tk := NewStandaloneTopK(4)
	gaugeVal := 7.0
	b := NewRollupBuilder("shard-0").
		AddCounter("events_total", c).
		AddHistogram("e2e_seconds", h).
		AddTopK("top_producers", tk).
		AddGauge("devices", func() float64 { return gaugeVal })

	c.Add(10)
	h.Observe(0.05)
	tk.Inc("cam-1")
	t0 := time.Unix(100, 0)
	r1 := b.Take(t0)
	if r1.Source != "shard-0" || r1.Seq != 1 {
		t.Fatalf("rollup identity: %+v", r1)
	}
	if r1.WindowSeconds != 0 {
		t.Fatalf("first window = %v, want 0", r1.WindowSeconds)
	}
	if r1.Counters["events_total"] != 10 {
		t.Fatalf("first counter delta = %d", r1.Counters["events_total"])
	}
	if r1.Histograms["e2e_seconds"].Count != 1 {
		t.Fatalf("first hist delta count = %d", r1.Histograms["e2e_seconds"].Count)
	}
	if r1.Gauges["devices"] != 7 {
		t.Fatalf("gauge = %v", r1.Gauges["devices"])
	}

	c.Add(5)
	h.Observe(0.5)
	h.Observe(0.5)
	gaugeVal = 9
	r2 := b.Take(t0.Add(2 * time.Second))
	if r2.Seq != 2 {
		t.Fatalf("seq = %d", r2.Seq)
	}
	if r2.WindowSeconds != 2 {
		t.Fatalf("window = %v", r2.WindowSeconds)
	}
	if r2.Counters["events_total"] != 5 {
		t.Fatalf("second counter delta = %d, want 5", r2.Counters["events_total"])
	}
	if r2.Histograms["e2e_seconds"].Count != 2 {
		t.Fatalf("second hist delta count = %d, want 2", r2.Histograms["e2e_seconds"].Count)
	}
	if r2.Gauges["devices"] != 9 {
		t.Fatalf("gauge after update = %v", r2.Gauges["devices"])
	}

	// Nothing observed: third delta is all-zero, not a repeat.
	r3 := b.Take(t0.Add(3 * time.Second))
	if r3.Counters["events_total"] != 0 || r3.Histograms["e2e_seconds"].Count != 0 {
		t.Fatalf("idle delta not zero: %+v", r3)
	}
}
