package experiment

import (
	"fmt"

	"iotsec/internal/baseline"
	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/ids"
	"iotsec/internal/mbox"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

// RunFigure1 reproduces Figure 1's argument as a measured matrix:
// three attack classes against three defense regimes. Traditional
// defenses handle only the first; IoTSec handles all three.
func RunFigure1() (*Table, error) {
	t := &Table{
		ID:      "F1",
		Title:   "Attack classes vs defenses (blocked?)",
		Columns: []string{"Attack", "Perimeter FW/IDS", "Host AV/patch", "IoTSec"},
	}

	// The perimeter appliance with the relevant signature loaded.
	rules, err := ids.ParseRules(`block tcp any any -> any 80 (msg:"default creds"; content:"admin:admin"; sid:1;)`)
	if err != nil {
		return nil, err
	}
	perimeter := baseline.NewPerimeterDefense(rules, packet.MustParseIPv4("10.0.0.0"), 24)

	mkAttack := func(srcIP string, payload string) *mbox.Context {
		src, dst := packet.MustParseIPv4(srcIP), packet.MustParseIPv4("10.0.0.5")
		tcp := &packet.TCP{SrcPort: 40000, DstPort: 80, Flags: packet.TCPPsh | packet.TCPAck}
		tcp.SetNetworkForChecksum(src, dst)
		b := packet.NewSerializeBuffer()
		if err := packet.SerializeLayers(b,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
			tcp, packet.NewPayload([]byte(payload)),
		); err != nil {
			panic(err)
		}
		frame := make([]byte, b.Len())
		copy(frame, b.Bytes())
		return &mbox.Context{Frame: frame, Packet: packet.Decode(frame, packet.LayerTypeEthernet), Dir: mbox.ToDevice}
	}
	credPayload := "IOT/1 SNAPSHOT\nauth: admin:admin\n"

	// Host-defense feasibility: can the camera class run AV or get
	// patched? (64 MB, no vendor patching → no.)
	camSpec := baseline.DeviceClassSpec{Class: "camera", RAMMB: 64, HasOS: true, VendorPatching: false, Count: 1}
	hostReport := baseline.EvaluateHostDefense([]baseline.DeviceClassSpec{camSpec})
	hostCovers := hostReport.Uncovered == 0

	// IoTSec outcomes, measured on the live platform.
	iotsecExternal, iotsecInternal, err := measureIoTSecCredentialDefense()
	if err != nil {
		return nil, err
	}
	iotsecContext, err := measureIoTSecContextDefense()
	if err != nil {
		return nil, err
	}

	// Attack 1: external attacker, known signature → perimeter wins
	// too.
	extBlocked := perimeter.Process(mkAttack("203.0.113.9", credPayload)) == mbox.Drop
	t.AddRow("external default-credential login", blockedAllowed(extBlocked), blockedAllowed(hostCovers), blockedAllowed(iotsecExternal))

	// Attack 2: the same exploit launched from a compromised internal
	// device — the "launchpad for deep attacks" of Figure 1.
	intBlocked := perimeter.Process(mkAttack("10.0.0.66", credPayload)) == mbox.Drop
	t.AddRow("lateral attack from inside the LAN", blockedAllowed(intBlocked), blockedAllowed(hostCovers), blockedAllowed(iotsecInternal))

	// Attack 3: context-dependent abuse — a syntactically legitimate
	// command at the wrong time. No signature exists by definition.
	ctxBlocked := perimeter.Process(mkAttack("203.0.113.9", "IOT/1 ON wemo-dbg-7f3a\n")) == mbox.Drop
	t.AddRow("context abuse (oven ON while away)", blockedAllowed(ctxBlocked), blockedAllowed(hostCovers), blockedAllowed(iotsecContext))

	fleet := baseline.EvaluateHostDefense(baseline.TypicalIoTFleet())
	t.Note("host-defense coverage across a representative fleet: %d/%d devices can run AV, %d/%d patchable, %d/%d covered by neither",
		fleet.AntivirusCapable, fleet.Total, fleet.Patchable, fleet.Total, fleet.Uncovered, fleet.Total)
	return t, nil
}

// measureIoTSecCredentialDefense runs the Figure 4 posture against an
// in-LAN attacker, standing in for both vantage points (the µmbox
// sits at the device, so attacker location is irrelevant — that's the
// point).
func measureIoTSecCredentialDefense() (externalBlocked, internalBlocked bool, err error) {
	prot, err := newProtectedLab(policyFor("cam", device.CameraProfile()))
	if err != nil {
		return false, false, err
	}
	defer prot.stop()
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	if _, err := prot.platform.AddDevice(cam.Device); err != nil {
		return false, false, err
	}
	prot.platform.Start()
	success := prot.attacker.TryDefaultCredentials(cam.IP(), "SNAPSHOT").Success
	return !success, !success, nil
}

// measureIoTSecContextDefense runs the Figure 5 context gate in the
// away state.
func measureIoTSecContextDefense() (blocked bool, err error) {
	d := policy.NewDomain()
	d.AddDevice("wemo")
	d.AddEnvVar(envsim.VarOccupancy, "away", "home")
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:   "gate",
		Device: "wemo",
		Posture: policy.Posture{Modules: []policy.ModuleSpec{{
			Kind:   "context-gate",
			Config: map[string]string{"guard": "ON", "require_env": envsim.VarOccupancy, "require_value": "home"},
		}}},
		Priority: 1,
	})
	prot, err := newProtectedLab(f)
	if err != nil {
		return false, err
	}
	defer prot.stop()
	plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.40"), device.Appliance{Name: "oven"})
	if _, err := prot.platform.AddDevice(plug.Device); err != nil {
		return false, err
	}
	prot.platform.Env.Set(envsim.VarOccupancy, 0)
	prot.platform.Start()
	prot.platform.RunEnvironment(1)
	settle()
	res := prot.attacker.TryBackdoor(plug.IP(), "ON", device.PlugBackdoorToken)
	if res.Success {
		return false, nil
	}
	// Sanity that the gate (not an outage) is the cause: home state
	// must allow.
	prot.platform.Env.Set(envsim.VarOccupancy, 1)
	prot.platform.RunEnvironment(1)
	settle()
	if !prot.attacker.TryBackdoor(plug.IP(), "ON", device.PlugBackdoorToken).Success {
		return false, fmt.Errorf("context gate blocks unconditionally (broken)")
	}
	return true, nil
}
