package netsim

import (
	"sync"
	"time"
)

// CapturedFrame is one observed frame with its wire context.
type CapturedFrame struct {
	When    time.Time
	SrcNode string
	DstNode string
	Data    Frame
}

// Recorder is a Tap that stores frames for later analysis — the
// simulator's pcap. Bounded: once Limit frames are stored, older
// frames are discarded.
type Recorder struct {
	mu     sync.Mutex
	frames []CapturedFrame
	// Limit bounds retained frames (default 65536).
	Limit int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{Limit: 65536} }

// Tap returns the function to register with Network.AddTap.
func (r *Recorder) Tap() Tap {
	return func(src, dst *Port, frame Frame) {
		cp := make(Frame, len(frame))
		copy(cp, frame)
		cf := CapturedFrame{
			When:    time.Now(),
			SrcNode: src.Owner().NodeName(),
			DstNode: dst.Owner().NodeName(),
			Data:    cp,
		}
		r.mu.Lock()
		r.frames = append(r.frames, cf)
		if r.Limit > 0 && len(r.frames) > r.Limit {
			r.frames = r.frames[len(r.frames)-r.Limit:]
		}
		r.mu.Unlock()
	}
}

// Frames snapshots the captured frames.
func (r *Recorder) Frames() []CapturedFrame {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CapturedFrame, len(r.frames))
	copy(out, r.frames)
	return out
}

// Count reports how many frames are retained.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.frames)
}

// Reset discards all captured frames.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frames = nil
}
