// Command iotsecd runs a live IoTSec deployment: a simulated smart
// home (camera, Wemo plug + oven, fire alarm, window actuator,
// thermostat) under the combined Figure 3/4/5 policy, with the admin
// API served for cmd/mboxctl. The physical environment advances in
// real time (one tick per -tick).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/core"
	"iotsec/internal/forensics"
	"iotsec/internal/journal"
	"iotsec/internal/netsim"
	"iotsec/internal/openflow"
	"iotsec/internal/resilience"
	"iotsec/internal/sigrepo"
	"iotsec/internal/slo"
	"iotsec/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7700", "admin API address")
	tick := flag.Duration("tick", 250*time.Millisecond, "wall time per environment tick")
	telemetryAddr := flag.String("telemetry-addr", "",
		"serve /metrics, /debug/telemetry, /debug/journal and /debug/pprof on this address (empty = disabled)")
	debugRemote := flag.Bool("debug-remote", false,
		"allow non-loopback clients to reach the unauthenticated /debug/ surfaces (pprof, journal); off by default")
	slowSpan := flag.Duration("slow-span", 0,
		"log spans slower than this threshold to stderr (0 = disabled)")
	sbAddr := flag.String("sb-addr", "127.0.0.1:0",
		"southbound (switch control) listen address; empty = southbound disabled")
	sbHeartbeat := flag.Duration("sb-heartbeat", openflow.DefaultHeartbeatInterval,
		"southbound heartbeat probe interval (<=0 disables liveness probing)")
	sbReconnectMax := flag.Duration("sb-reconnect-max", 5*time.Second,
		"cap on the switch agent's exponential reconnect backoff")
	sbFailMode := flag.String("sb-fail-mode", "static",
		"southbound degradation while disconnected: static (serve installed table, buffer events) or closed (drop table-miss traffic)")
	sigrepoAddr := flag.String("sigrepo-addr", "",
		"crowdsourced signature repository address (empty = crowd learning disabled)")
	sigrepoIdentity := flag.String("sigrepo-identity", "gateway",
		"identity presented to the signature repository (pseudonymized server-side)")
	sigrepoOutbox := flag.String("sigrepo-outbox", "",
		"durable outbox file for publishes/votes queued while the repository is unreachable (empty = in-memory only)")
	sigrepoReconnectMax := flag.Duration("sigrepo-reconnect-max", 5*time.Second,
		"cap on the sigrepo link's exponential reconnect backoff")
	sloTarget := flag.Duration("slo-mttr-p99", 0,
		"detect→enforce MTTR objective at the -slo-quantile (0 = watchdog disabled; the MTTR pipeline itself is always on)")
	sloQuantile := flag.Float64("slo-quantile", 0.99,
		"quantile the MTTR objective is stated at")
	sloWindow := flag.Duration("slo-window", time.Minute,
		"SLO evaluation window")
	sloBurnFactor := flag.Float64("slo-burn-factor", 1.0,
		"error-budget multiplier per window: budget = (1-quantile)*factor of chains may miss the objective")
	sloChainTimeout := flag.Duration("slo-chain-timeout", 5*time.Second,
		"how long a detect→enforce chain may stay open before it counts as incomplete")
	sloEscalate := flag.Bool("slo-escalate", false,
		"on sustained SLO burn, escalate all µmbox pipelines to fail-closed (restored when the burn clears)")
	ctrlHeartbeat := flag.Duration("ctrl-heartbeat", 0,
		"supervise partition-local controllers with this deadman heartbeat period (0 = supervision disabled)")
	ctrlCheckpoint := flag.Duration("ctrl-checkpoint", 2*time.Second,
		"checkpoint each partition's critical security state at this period (<0 disables periodic checkpoints)")
	ctrlFailMode := flag.String("ctrl-fail-mode", "rehome",
		"orphaned-partition fate after a controller death: rehome (least-loaded surviving local) or fail-global (degraded)")
	sloRecovery := flag.Duration("slo-recovery-p99", 0,
		"controller failover recovery objective at p99 (0 = recovery watchdog disabled)")
	fleetRollup := flag.Duration("fleet-rollup", time.Second,
		"push this gateway's telemetry rollups into the fleet aggregator at this interval and serve /debug/fleet (0 = disabled)")
	fleetSource := flag.String("fleet-source", "gateway",
		"shard name this gateway reports to the fleet aggregator as")
	profileLearnWindow := flag.Duration("profile-learn-window", 0,
		"observe device traffic for this long, then distill per-SKU behavior profiles (0 = no training window)")
	profileEnforce := flag.Bool("profile-enforce", false,
		"enforce learned/crowd SKU profiles as deny-by-default flow rules and quarantine rogue MACs")
	journalCap := flag.Int("journal-cap", 0,
		"forensic journal ring capacity in events (0 = default 8192); small caps exercise incident capture under eviction")
	forensicsDir := flag.String("forensics-dir", "",
		"durable incident store directory: incident-opening journal events pin their full trace chains here before ring eviction (empty = forensics disabled)")
	forensicsMaxBytes := flag.Int64("forensics-max-bytes", 0,
		"incident store size cap in bytes; oldest sealed segments are deleted over this (0 = default 64MiB)")
	forensicsSegmentBytes := flag.Int64("forensics-segment-bytes", 0,
		"incident store segment rotation threshold in bytes (0 = default 4MiB)")
	flag.Parse()

	failMode, err := netsim.ParseFailMode(*sbFailMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotsecd: %v\n", err)
		os.Exit(2)
	}

	if *journalCap > 0 {
		// Replace the process-wide ring before anything journals to it.
		journal.Default = journal.New(*journalCap)
		fmt.Printf("iotsecd: journal ring capped at %d events\n", *journalCap)
	}

	if *slowSpan > 0 {
		telemetry.Default.Spans().SetSlowThreshold(*slowSpan, func(fs telemetry.FinishedSpan) {
			fmt.Fprintf(os.Stderr, "iotsecd: slow span %s took %s (trace %d)\n", fs.Name, fs.Duration, fs.TraceID)
		})
	}

	bi := telemetry.RegisterBuildInfo(telemetry.Default, "iotsecd")
	fmt.Printf("iotsecd: version %s (%s)\n", bi.Version, bi.GoVersion)

	p, err := core.DemoHome()
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotsecd: %v\n", err)
		os.Exit(1)
	}
	p.Start()
	defer p.Stop()
	p.RegisterHealth(telemetry.Default.Health())

	// The MTTR pipeline is always on: it taps the forensic journal
	// (drop-oldest, zero cost on the hot path when idle) and folds
	// trace-correlated detect→enforce chains into live histograms.
	tracker := slo.NewTracker(journal.Default, slo.Options{ChainTimeout: *sloChainTimeout})
	defer tracker.Close()
	tracker.RegisterHealth(telemetry.Default.Health())

	if *sloTarget > 0 {
		watchdog := slo.NewWatchdog(tracker, slo.Objectives{
			Target:     *sloTarget,
			Quantile:   *sloQuantile,
			Window:     *sloWindow,
			BurnFactor: *sloBurnFactor,
		}, slo.WatchdogOptions{
			OnBurn: func(ev slo.Evaluation) {
				fmt.Fprintf(os.Stderr, "iotsecd: SLO burn: window p%g=%s (%d/%d violating)\n",
					*sloQuantile*100, ev.Quantile, ev.OverTarget+ev.Incomplete, ev.Total)
				if *sloEscalate {
					n := p.EscalateFailMode("SLO burn: " + ev.Quantile.String() + " over objective")
					fmt.Fprintf(os.Stderr, "iotsecd: escalated %d pipeline(s) to fail-closed\n", n)
				}
			},
			OnRecover: func(ev slo.Evaluation) {
				fmt.Fprintf(os.Stderr, "iotsecd: SLO burn cleared (window p%g=%s)\n", *sloQuantile*100, ev.Quantile)
				if *sloEscalate {
					p.DeescalateFailMode("SLO burn cleared")
				}
			},
		})
		watchdog.Start()
		defer watchdog.Stop()
		fmt.Printf("iotsecd: SLO watchdog armed: %s%s\n",
			watchdog.Objectives(), map[bool]string{true: " (escalating)", false: ""}[*sloEscalate])
	}

	if *sbAddr != "" {
		sb, err := p.AttachSouthbound(core.SouthboundOptions{
			Addr:              *sbAddr,
			HeartbeatInterval: *sbHeartbeat,
			Agent: netsim.AgentOptions{
				FailMode: failMode,
				Backoff:  resilience.BackoffOptions{Cap: *sbReconnectMax},
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "iotsecd: southbound: %v\n", err)
			os.Exit(1)
		}
		defer sb.Close()
		sb.RegisterHealth(telemetry.Default.Health())
		fmt.Printf("iotsecd: southbound on %s (heartbeat %s, fail-%s)\n", sb.Addr, *sbHeartbeat, failMode)
	}

	if *sigrepoAddr != "" {
		link, err := p.ConnectSigrepoOpts(*sigrepoAddr, *sigrepoIdentity, sigrepo.ManagedOptions{
			Backoff:    resilience.BackoffOptions{Cap: *sigrepoReconnectMax},
			OutboxPath: *sigrepoOutbox,
			OnStateChange: func(s sigrepo.LinkState) {
				fmt.Printf("iotsecd: sigrepo link %s\n", s)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "iotsecd: sigrepo: %v\n", err)
			os.Exit(1)
		}
		defer link.Close()
		link.RegisterHealth(telemetry.Default.Health(), *sigrepoIdentity)
		fmt.Printf("iotsecd: crowd learning via %s as %q (reconnect cap %s)\n",
			*sigrepoAddr, *sigrepoIdentity, *sigrepoReconnectMax)
	}

	var sup *controller.Supervisor
	if *ctrlHeartbeat > 0 {
		cfm, ok := controller.ParseFailMode(*ctrlFailMode)
		if !ok {
			fmt.Fprintf(os.Stderr, "iotsecd: bad -ctrl-fail-mode %q (rehome or fail-global)\n", *ctrlFailMode)
			os.Exit(2)
		}
		var fleet *controller.FleetAggregator
		if *fleetRollup > 0 {
			fleet = p.Global.Fleet()
		}
		_, sup = p.SuperviseControllers(core.SupervisionOptions{
			Heartbeat:       *ctrlHeartbeat,
			CheckpointEvery: *ctrlCheckpoint,
			FailMode:        cfm,
			Fleet:           fleet,
			OnFailover: func(rec controller.FailoverRecord) {
				fmt.Fprintf(os.Stderr, "iotsecd: partition %d failed over to %s in %s (%d quarantines re-pushed)\n",
					rec.Group, rec.Target, rec.Recovery, rec.QuarantinesRepushed)
			},
		})
		sup.Start()
		defer sup.Stop()
		fmt.Printf("iotsecd: controller supervision armed (heartbeat %s, checkpoint %s, %s mode)\n",
			*ctrlHeartbeat, *ctrlCheckpoint, cfm)
	}

	if *sloRecovery > 0 {
		// The recovery-MTTR histogram rides the same SLO watchdog tap as
		// detect→enforce, labeled so the two series stay distinct.
		rw := slo.NewWatchdogSource(slo.HistogramSource{H: controller.RecoveryHistogram()}, slo.Objectives{
			Target:     *sloRecovery,
			Quantile:   0.99,
			Window:     *sloWindow,
			BurnFactor: *sloBurnFactor,
		}, slo.WatchdogOptions{
			ID: "slo-recovery",
			OnBurn: func(ev slo.Evaluation) {
				fmt.Fprintf(os.Stderr, "iotsecd: recovery SLO burn: window p99=%s (%d/%d violating)\n",
					ev.Quantile, ev.OverTarget+ev.Incomplete, ev.Total)
			},
			OnRecover: func(ev slo.Evaluation) {
				fmt.Fprintf(os.Stderr, "iotsecd: recovery SLO burn cleared (window p99=%s)\n", ev.Quantile)
			},
		})
		rw.Start()
		defer rw.Stop()
		fmt.Printf("iotsecd: recovery SLO watchdog armed: %s\n", rw.Objectives())
	}

	var plane *core.ProfilePlane
	if *profileLearnWindow > 0 || *profileEnforce {
		plane = p.EnableProfiles(core.ProfileOptions{
			Enforce:  *profileEnforce,
			Lockdown: *profileEnforce,
		})
		plane.RegisterHealth(telemetry.Default.Health())
		if *profileEnforce {
			fmt.Println("iotsecd: profile enforcement armed (deny-by-default + rogue lockdown)")
		}
		if *profileLearnWindow > 0 {
			plane.StartLearning()
			fmt.Printf("iotsecd: profile training window open for %s\n", *profileLearnWindow)
			timer := time.AfterFunc(*profileLearnWindow, func() {
				profs := plane.FinishLearning(context.Background())
				fmt.Printf("iotsecd: profile training done: %d SKU profile(s) distilled\n", len(profs))
			})
			defer timer.Stop()
		}
	}

	var capt *forensics.Capturer
	if *forensicsDir != "" {
		store, err := forensics.OpenStore(*forensicsDir, forensics.StoreOptions{
			MaxBytes:     *forensicsMaxBytes,
			SegmentBytes: *forensicsSegmentBytes,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "iotsecd: forensics: %v\n", err)
			os.Exit(1)
		}
		defer store.Close()
		// Close before the deferred store.Close above: Close force-seals
		// open incidents into the store so in-flight chains survive a
		// restart.
		capt = p.EnableForensics(forensics.Options{Store: store, Shard: *fleetSource})
		defer capt.Close()
		st := store.Stats()
		fmt.Printf("iotsecd: incident forensics on %s (%d incident(s) recovered, shard %q)\n",
			*forensicsDir, st.Incidents, *fleetSource)
	}

	if *fleetRollup > 0 {
		// The gateway reports itself as one shard of the fleet plane;
		// the tracker's e2e histogram supplies detect→enforce latency.
		report := p.StartFleetSelfReport(*fleetSource, *fleetRollup, tracker.E2E())
		defer report.Stop()
		p.Global.Fleet().ExportTelemetry(telemetry.Default, *fleetSource)
		fmt.Printf("iotsecd: fleet rollups every %s as %q\n", *fleetRollup, *fleetSource)
	}

	if *telemetryAddr != "" {
		p.Switch.ExportTelemetry(telemetry.Default)
		mounts := []telemetry.Mount{{Pattern: "/debug/journal", Handler: journal.Default.Handler()}}
		if plane != nil {
			mounts = append(mounts, telemetry.Mount{Pattern: "/debug/profiles", Handler: plane.Engine().Handler()})
		}
		if capt != nil {
			mounts = append(mounts, telemetry.Mount{Pattern: "/debug/incidents", Handler: capt.Handler()})
		}
		if *fleetRollup > 0 {
			mounts = append(mounts, telemetry.Mount{Pattern: "/debug/fleet", Handler: p.Global.Fleet().Handler()})
			mounts = append(mounts, telemetry.Mount{Pattern: "/debug/fleet/incidents", Handler: p.Global.Fleet().IncidentsHandler()})
		}
		if sup != nil {
			mounts = append(mounts, telemetry.Mount{Pattern: "/debug/controllers", Handler: sup.Handler()})
		}
		tsrv, taddr, err := telemetry.Default.Serve(*telemetryAddr, mounts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iotsecd: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer tsrv.Close()
		if *debugRemote {
			tsrv.AllowRemoteDebug()
		}
		fmt.Printf("iotsecd: telemetry on http://%s/metrics\n", taddr)
	}

	admin, addr, err := p.ServeAdmin(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotsecd: %v\n", err)
		os.Exit(1)
	}
	defer admin.Close()
	fmt.Printf("iotsecd: admin API on %s (try: mboxctl -addr %s status)\n", addr, addr)

	// Surface state changes on stdout.
	p.Global.View.Observe(func(_ context.Context, c controller.ViewChange) {
		fmt.Printf("iotsecd: [v%d] %s = %s (%s) trace=%d\n", c.Version, c.Var, c.Value, c.Reason, c.TraceID)
	})

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\niotsecd: shutting down")
			return
		case <-ticker.C:
			p.Env.Step()
		}
	}
}
