package openflow

import (
	"testing"

	"iotsec/internal/packet"
)

var (
	macA = packet.MACAddress{2, 0, 0, 0, 0, 0xa}
	macB = packet.MACAddress{2, 0, 0, 0, 0, 0xb}
	ipA  = packet.MustParseIPv4("10.1.0.5")
	ipB  = packet.MustParseIPv4("10.2.0.9")
)

// makeTCP builds a decoded eth/ip/tcp packet for match tests.
func makeTCP(t *testing.T, srcPort, dstPort uint16) *packet.Packet {
	t.Helper()
	tcp := &packet.TCP{SrcPort: srcPort, DstPort: dstPort, Flags: packet.TCPSyn}
	tcp.SetNetworkForChecksum(ipA, ipB)
	b := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: macA, DstMAC: macB, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: ipA, DstIP: ipB, Protocol: packet.IPProtocolTCP},
		tcp,
	)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return packet.Decode(b.Bytes(), packet.LayerTypeEthernet)
}

func TestMatchAllMatchesEverything(t *testing.T) {
	p := makeTCP(t, 1, 2)
	if !MatchAll().Matches(p, 7) {
		t.Error("MatchAll should match any packet")
	}
}

func TestMatchFields(t *testing.T) {
	p := makeTCP(t, 4444, 80)
	cases := []struct {
		name string
		m    Match
		want bool
	}{
		{"in_port hit", MatchAll().WithInPort(3), true},
		{"in_port miss", MatchAll().WithInPort(4), false},
		{"eth_src hit", MatchAll().WithEthSrc(macA), true},
		{"eth_src miss", MatchAll().WithEthSrc(macB), false},
		{"eth_dst hit", MatchAll().WithEthDst(macB), true},
		{"src ip exact hit", MatchAll().WithSrcIP(ipA, 32), true},
		{"src ip exact miss", MatchAll().WithSrcIP(ipB, 32), false},
		{"src ip prefix hit", MatchAll().WithSrcIP(packet.MustParseIPv4("10.1.0.0"), 16), true},
		{"src ip prefix miss", MatchAll().WithSrcIP(packet.MustParseIPv4("10.2.0.0"), 16), false},
		{"dst ip hit", MatchAll().WithDstIP(ipB, 32), true},
		{"proto hit", MatchAll().WithProto(packet.IPProtocolTCP), true},
		{"proto miss", MatchAll().WithProto(packet.IPProtocolUDP), false},
		{"tp_src hit", MatchAll().WithTpSrc(4444), true},
		{"tp_src miss", MatchAll().WithTpSrc(4445), false},
		{"tp_dst hit", MatchAll().WithTpDst(80), true},
		{"tp_dst miss", MatchAll().WithTpDst(81), false},
		{"combined hit", MatchIPv4().WithDstIP(ipB, 32).WithProto(packet.IPProtocolTCP).WithTpDst(80), true},
		{"combined miss on one field", MatchIPv4().WithDstIP(ipB, 32).WithProto(packet.IPProtocolTCP).WithTpDst(81), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.m.Matches(p, 3); got != c.want {
				t.Errorf("match %q on packet: got %v, want %v", c.m, got, c.want)
			}
		})
	}
}

func TestMatchARPPacketAgainstIPFields(t *testing.T) {
	b := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: macA, DstMAC: packet.BroadcastMAC, EtherType: packet.EtherTypeARP},
		&packet.ARP{Operation: packet.ARPRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB},
	)
	if err != nil {
		t.Fatal(err)
	}
	p := packet.Decode(b.Bytes(), packet.LayerTypeEthernet)
	// An IP-field match must not match a non-IP packet.
	if MatchAll().WithSrcIP(ipA, 32).Matches(p, 0) {
		t.Error("IP match should fail on ARP packet")
	}
	if !MatchAll().WithEthSrc(macA).Matches(p, 0) {
		t.Error("L2 match should succeed on ARP packet")
	}
}

func TestPrefixMatches(t *testing.T) {
	a := packet.MustParseIPv4("192.168.17.5")
	if !prefixMatches(packet.MustParseIPv4("192.168.0.0"), a, 16) {
		t.Error("/16 should match")
	}
	if prefixMatches(packet.MustParseIPv4("192.169.0.0"), a, 16) {
		t.Error("different /16 should not match")
	}
	if !prefixMatches(packet.IPv4Address{}, a, 0) {
		t.Error("/0 should match anything")
	}
	if !prefixMatches(a, a, 32) {
		t.Error("/32 exact should match")
	}
}

func TestMatchString(t *testing.T) {
	if MatchAll().String() != "any" {
		t.Errorf("MatchAll string = %q", MatchAll())
	}
	m := MatchIPv4().WithDstIP(ipB, 32).WithTpDst(80)
	s := m.String()
	for _, want := range []string{"dst=10.2.0.9/32", "tp_dst=80"} {
		if !contains(s, want) {
			t.Errorf("match string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
