package core

import "iotsec/internal/telemetry"

// End-to-end platform telemetry. The event→enforcement histogram is
// the live version of Figure 2's loop: from the view committing a
// state change (device event, alert, anomaly or environment reading)
// to the device's µmbox running the recomputed posture.
var (
	mEnforceSeconds = telemetry.NewHistogram(
		"iotsec_core_event_to_enforcement_seconds",
		"Latency from view commit to µmbox reconfiguration (Fig. 2 loop).",
		telemetry.LatencyBuckets)
	mPostureApplies = telemetry.NewCounter(
		"iotsec_core_posture_applies_total",
		"Postures applied to device µmboxes.")
	mDevicesAdded = telemetry.NewCounter(
		"iotsec_core_devices_added_total",
		"Devices brought under management.")
	mSigRulesAdded = telemetry.NewCounter(
		"iotsec_core_signature_rules_total",
		"Signature rules installed from repositories or operators.")
	mSigRulesDup = telemetry.NewCounter(
		"iotsec_core_signature_rules_dup_total",
		"Already-installed signature rules skipped (idempotent installs).")
)
