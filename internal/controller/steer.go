package controller

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/openflow"
	"iotsec/internal/packet"
	"iotsec/internal/telemetry"
)

// SteeredDevice describes one protected device on a steered switch:
// where the device hangs and where its µmbox's two legs connect.
type SteeredDevice struct {
	Name string
	MAC  packet.MACAddress
	// DevicePort is the switch port the device connects to.
	DevicePort uint16
	// MboxNorthPort / MboxSouthPort are the switch ports wired to the
	// µmbox's network-side and device-side legs.
	MboxNorthPort uint16
	MboxSouthPort uint16
}

// Steering is the Figure 2 tunnel fabric: an SDN application that
// programs switches (over the real southbound protocol) so every
// frame to or from a protected device traverses its µmbox, while
// plain hosts talk directly.
//
// Per protected device D with ports (P_dev, A=north, B=south):
//
//	prio 220: in_port=B            -> output P_dev   (processed, toward device)
//	prio 220: in_port=P_dev        -> output B       (device-origin, into µmbox)
//	prio 200: in_port=A            -> output {host ports}  (processed, outward)
//	prio 150: eth_dst=D.MAC        -> output A       (device-bound, into µmbox)
//	prio  50: (default)            -> output {host ports} + {A for broadcast}
//
// Beyond tunnel programming, Steering can install per-device
// quarantine rules (Isolate/Release): priority-400 drop rules keyed
// by the device MAC, emitted with the trace ID of the causal chain
// that requested them, so forensic timelines show which anomaly
// produced which FLOW_MOD.
type Steering struct {
	mu      sync.Mutex
	devices []SteeredDevice
	// pending switches connect before AddDevice in some orders; we
	// reprogram on every change.
	endpoint *openflow.ControllerEndpoint
	switches map[uint64][]uint16 // dpid → ports
	// isolated holds the quarantine set (device name → MAC). It is the
	// source of truth for which drop rules must exist on every switch:
	// program() re-emits them after any table rebuild, and a switch
	// that connects (or reconnects) mid-quarantine receives them
	// immediately — AddDevice or an agent reconnect can never silently
	// lift a quarantine.
	isolated map[string]packet.MACAddress
	// ruleSets holds named standing rule sets (e.g. one compiled
	// behavior profile per enforced device). Like quarantines they are
	// persisted controller state: program() re-emits every set after a
	// table rebuild and on every switch (re)connect, so enforcement
	// survives agent restarts.
	ruleSets map[string][]*openflow.FlowMod
	// connectWaiters are closed (and cleared) when a switch completes
	// the handshake, so WaitForSwitch blocks without polling.
	connectWaiters []chan struct{}
	logger         *log.Logger
}

// NewSteering builds the application and its southbound endpoint.
// Call Listen, point switch agents at the address, then AddDevice.
func NewSteering(logger *log.Logger) *Steering {
	if logger == nil {
		logger = log.New(discardWriter{}, "", 0)
	}
	s := &Steering{
		switches: make(map[uint64][]uint16),
		isolated: make(map[string]packet.MACAddress),
		ruleSets: make(map[string][]*openflow.FlowMod),
		logger:   logger,
	}
	s.endpoint = openflow.NewControllerEndpoint(s, logger)
	return s
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// Listen starts the southbound listener, returning the bound address.
// After Interrupt it may be called again to resume accepting.
func (s *Steering) Listen(addr string) (string, error) {
	return s.endpoint.Listen(addr)
}

// SetHeartbeat tunes the southbound liveness probe (an ECHO every
// interval, reap after misses unanswered beats; interval <= 0
// disables). Call before Listen.
func (s *Steering) SetHeartbeat(interval time.Duration, misses int) {
	s.endpoint.SetHeartbeat(interval, misses)
}

// Interrupt models a controller crash: every southbound session and
// the listener drop, but the steering state (devices, standing
// quarantines) survives, so switches reconnecting after a later
// Listen are re-programmed and re-quarantined through the normal
// SwitchConnected path.
func (s *Steering) Interrupt() { s.endpoint.Interrupt() }

// Close tears down the southbound endpoint.
func (s *Steering) Close() error { return s.endpoint.Close() }

// Endpoint exposes the raw southbound endpoint (for stats requests in
// experiments).
func (s *Steering) Endpoint() *openflow.ControllerEndpoint { return s.endpoint }

// AddDevice registers a protected device and reprograms all connected
// switches. The context carries the causal trace (if any) into the
// emitted FLOW_MODs.
func (s *Steering) AddDevice(ctx context.Context, d SteeredDevice) {
	s.mu.Lock()
	s.devices = append(s.devices, d)
	dpids := make([]uint64, 0, len(s.switches))
	for dpid := range s.switches {
		dpids = append(dpids, dpid)
	}
	s.mu.Unlock()
	for _, dpid := range dpids {
		s.program(ctx, dpid)
	}
}

// SwitchConnected implements openflow.SwitchHandler. Programming is
// asynchronous: this callback runs on the switch's receive goroutine,
// which must stay free to deliver the barrier replies program waits
// for.
func (s *Steering) SwitchConnected(dpid uint64, ports []uint16) {
	s.mu.Lock()
	s.switches[dpid] = ports
	waiters := s.connectWaiters
	s.connectWaiters = nil
	s.mu.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
	go s.program(context.Background(), dpid)
}

// WaitForSwitch blocks until at least one switch has completed the
// southbound handshake (or the timeout expires), without polling —
// polling loops contend with the handshake itself for CPU on small
// hosts. Returns true when a switch is connected.
func (s *Steering) WaitForSwitch(timeout time.Duration) bool {
	s.mu.Lock()
	if len(s.switches) > 0 {
		s.mu.Unlock()
		return true
	}
	ch := make(chan struct{})
	s.connectWaiters = append(s.connectWaiters, ch)
	s.mu.Unlock()
	select {
	case <-ch:
		return true
	case <-time.After(timeout):
		return false
	}
}

// SwitchDisconnected implements openflow.SwitchHandler.
func (s *Steering) SwitchDisconnected(dpid uint64) {
	s.mu.Lock()
	delete(s.switches, dpid)
	s.mu.Unlock()
}

// HandlePacketIn implements openflow.SwitchHandler: with proactive
// rules installed nothing should punt; log for diagnosis.
func (s *Steering) HandlePacketIn(pi *openflow.PacketIn) {
	s.logger.Printf("steering: unexpected packet-in from dpid %d port %d (%d bytes)",
		pi.DatapathID, pi.InPort, len(pi.Data))
}

// HandleFlowRemoved implements openflow.SwitchHandler.
func (s *Steering) HandleFlowRemoved(fr *openflow.FlowRemoved) {}

// hostPorts lists switch ports that belong to neither devices nor
// µmbox legs.
func hostPorts(ports []uint16, devices []SteeredDevice) []uint16 {
	special := map[uint16]bool{}
	for _, d := range devices {
		special[d.DevicePort] = true
		special[d.MboxNorthPort] = true
		special[d.MboxSouthPort] = true
	}
	var hosts []uint16
	for _, p := range ports {
		if !special[p] {
			hosts = append(hosts, p)
		}
	}
	return hosts
}

// send stamps a FLOW_MOD with the context's trace ID, journals it,
// and pushes it to one switch.
func (s *Steering) send(ctx context.Context, dpid uint64, fm *openflow.FlowMod, what string) {
	fm.TraceID = telemetry.TraceID(ctx)
	mFlowMods.Inc()
	journal.Record(ctx, journal.TypeFlowMod, journal.Info, what,
		fmt.Sprintf("%s prio %d cookie %#x to dpid %d", fm.Command, fm.Priority, fm.Cookie, dpid))
	if err := s.endpoint.SendFlowMod(dpid, fm); err != nil {
		s.logger.Printf("steering: flow-mod to %d: %v", dpid, err)
	}
}

// program pushes the full steering rule set to one switch, fencing
// with a barrier so enforcement is in place before program returns.
// With no registered devices it is a no-op: a connected switch keeps
// its existing table until steering actually has something to steer.
func (s *Steering) program(ctx context.Context, dpid uint64) {
	s.mu.Lock()
	ports, connected := s.switches[dpid]
	devices := append([]SteeredDevice(nil), s.devices...)
	quarantined := make(map[string]packet.MACAddress, len(s.isolated))
	for name, mac := range s.isolated {
		quarantined[name] = mac
	}
	ruleSets := make(map[string][]*openflow.FlowMod, len(s.ruleSets))
	for name, mods := range s.ruleSets {
		ruleSets[name] = mods
	}
	s.mu.Unlock()
	if !connected || (len(devices) == 0 && len(quarantined) == 0 && len(ruleSets) == 0) {
		return
	}
	ctx, span := telemetry.StartSpan(ctx, "controller.steer.program")
	span.SetAttr("dpid", fmt.Sprintf("%d", dpid))
	defer span.End()
	defer telemetry.Time(mProgramSeconds)()

	// With steered devices the table is rebuilt from scratch; with only
	// quarantines the existing table is kept and the drop rules are
	// (re-)inserted on top (Insert replaces identical match+priority
	// entries, so this is idempotent).
	if len(devices) > 0 {
		s.programSteering(ctx, dpid, ports, devices)
	}

	// Standing rule sets (profile enforcement) survive the wipe the
	// same way quarantines do: re-emitted on every reprogram.
	for name, mods := range ruleSets {
		s.sendRuleSet(ctx, dpid, name, mods)
	}

	// Quarantine rules last, so a table wipe above can never leave a
	// window where they are re-issued "eventually": every reprogram and
	// every switch (re)connect restores the full quarantine set.
	for name, mac := range quarantined {
		s.sendQuarantine(ctx, dpid, name, mac)
	}

	if err := s.endpoint.Barrier(dpid, 2*time.Second); err != nil {
		s.logger.Printf("steering: barrier to %d: %v", dpid, err)
	}
}

// programSteering pushes the tunnel rule set for the registered
// devices to one switch, starting from a clean table.
func (s *Steering) programSteering(ctx context.Context, dpid uint64, ports []uint16, devices []SteeredDevice) {
	hosts := hostPorts(ports, devices)

	// Start from a clean table. Quarantine drop rules are wiped too,
	// but program() unconditionally re-emits them right after this
	// returns, before the fencing barrier.
	s.send(ctx, dpid, &openflow.FlowMod{Command: openflow.FlowDelete, Match: openflow.MatchAll()}, "")

	outputsTo := func(ports []uint16) []openflow.Action {
		acts := make([]openflow.Action, len(ports))
		for i, p := range ports {
			acts[i] = openflow.Output(p)
		}
		return acts
	}

	for _, d := range devices {
		// Processed traffic exiting the µmbox toward the device.
		s.send(ctx, dpid, &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    openflow.MatchAll().WithInPort(d.MboxSouthPort),
			Priority: 220,
			Actions:  []openflow.Action{openflow.Output(d.DevicePort)},
			Cookie:   dpid,
		}, d.Name)
		// Device-origin traffic enters the µmbox south leg.
		s.send(ctx, dpid, &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    openflow.MatchAll().WithInPort(d.DevicePort),
			Priority: 220,
			Actions:  []openflow.Action{openflow.Output(d.MboxSouthPort)},
			Cookie:   dpid,
		}, d.Name)
		// Processed device-origin traffic exits toward the hosts and
		// toward other protected devices' tunnels (device-to-device
		// traffic crosses both µmboxes).
		northActions := outputsTo(hosts)
		for _, other := range devices {
			if other.Name != d.Name {
				northActions = append(northActions, openflow.Output(other.MboxNorthPort))
			}
		}
		s.send(ctx, dpid, &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    openflow.MatchAll().WithInPort(d.MboxNorthPort),
			Priority: 200,
			Actions:  northActions,
			Cookie:   dpid,
		}, d.Name)
		// Device-bound traffic detours into the µmbox north leg.
		s.send(ctx, dpid, &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    openflow.MatchAll().WithEthDst(d.MAC),
			Priority: 150,
			Actions:  []openflow.Action{openflow.Output(d.MboxNorthPort)},
			Cookie:   dpid,
		}, d.Name)
	}

	// Default: host-to-host plus broadcast reach into every µmbox
	// north leg (so ARP finds the devices through their tunnels).
	var defaults []openflow.Action
	defaults = append(defaults, outputsTo(hosts)...)
	for _, d := range devices {
		defaults = append(defaults, openflow.Output(d.MboxNorthPort))
	}
	s.send(ctx, dpid, &openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    openflow.MatchAll(),
		Priority: 50,
		Actions:  defaults,
		Cookie:   dpid,
	}, "")
}

// quarantineCookie derives a stable per-device cookie from its MAC so
// Release can delete exactly the rules Isolate installed. The high
// byte tags the rule class so steering cookies (= dpid) never collide.
func quarantineCookie(mac packet.MACAddress) uint64 {
	var c uint64 = 0x51 // 'Q'
	for _, b := range mac {
		c = c<<8 | uint64(b)
	}
	return c
}

// sendQuarantine emits the two priority-400 drop rules (eth_src and
// eth_dst on the device MAC, empty action list = drop) to one switch.
func (s *Steering) sendQuarantine(ctx context.Context, dpid uint64, name string, mac packet.MACAddress) {
	cookie := quarantineCookie(mac)
	s.send(ctx, dpid, &openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    openflow.MatchAll().WithEthSrc(mac),
		Priority: 400,
		Cookie:   cookie,
	}, name)
	s.send(ctx, dpid, &openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    openflow.MatchAll().WithEthDst(mac),
		Priority: 400,
		Cookie:   cookie,
	}, name)
}

// Isolate puts one device MAC under quarantine: priority-400 drop
// rules on every connected switch, fenced by a barrier. The quarantine
// persists in the steering state, so table reprograms (AddDevice) and
// switches that connect later re-receive the rules until Release. The
// rules carry the context's trace ID, so the forensic journal links
// them to the anomaly that triggered the posture change.
func (s *Steering) Isolate(ctx context.Context, name string, mac packet.MACAddress) {
	ctx, span := telemetry.StartSpan(ctx, "controller.steer.isolate")
	span.SetAttr("device", name)
	defer span.End()
	s.mu.Lock()
	s.isolated[name] = mac
	s.mu.Unlock()
	for _, dpid := range s.dpids() {
		s.sendQuarantine(ctx, dpid, name, mac)
		if err := s.endpoint.Barrier(dpid, 2*time.Second); err != nil {
			s.logger.Printf("steering: isolate barrier to %d: %v", dpid, err)
		}
	}
}

// Release lifts the quarantine: the device leaves the persisted set
// and the rules Isolate installed are removed from every connected
// switch (delete-by-cookie), barrier-fenced.
func (s *Steering) Release(ctx context.Context, name string, mac packet.MACAddress) {
	ctx, span := telemetry.StartSpan(ctx, "controller.steer.release")
	span.SetAttr("device", name)
	defer span.End()
	s.mu.Lock()
	delete(s.isolated, name)
	s.mu.Unlock()
	cookie := quarantineCookie(mac)
	for _, dpid := range s.dpids() {
		s.send(ctx, dpid, &openflow.FlowMod{
			Command: openflow.FlowDeleteByCookie,
			Match:   openflow.MatchAll(),
			Cookie:  cookie,
		}, name)
		if err := s.endpoint.Barrier(dpid, 2*time.Second); err != nil {
			s.logger.Printf("steering: release barrier to %d: %v", dpid, err)
		}
	}
}

// sendRuleSet emits one named rule set to one switch. Each FLOW_MOD
// is sent as a copy so the persisted set is never mutated (send
// stamps the trace ID on the message it pushes).
func (s *Steering) sendRuleSet(ctx context.Context, dpid uint64, name string, mods []*openflow.FlowMod) {
	for _, fm := range mods {
		cp := *fm
		s.send(ctx, dpid, &cp, name)
	}
}

// ruleSetCookies collects the distinct cookies a rule set uses.
func ruleSetCookies(mods []*openflow.FlowMod) []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for _, fm := range mods {
		if !seen[fm.Cookie] {
			seen[fm.Cookie] = true
			out = append(out, fm.Cookie)
		}
	}
	return out
}

// InstallRuleSet installs (or replaces) a named standing rule set on
// every connected switch, barrier-fenced, and persists it so table
// reprograms and later switch connects re-receive it — the same
// durability contract as quarantines. Replacement deletes the prior
// set's cookies first, so stale rules cannot linger when a set
// shrinks. Rule cookies should be stable per set (see profile.Cookie)
// and must not collide with quarantine ('Q'-tagged) or steering
// (= dpid) cookies.
func (s *Steering) InstallRuleSet(ctx context.Context, name string, mods []*openflow.FlowMod) {
	ctx, span := telemetry.StartSpan(ctx, "controller.steer.install_rule_set")
	span.SetAttr("set", name)
	defer span.End()
	kept := make([]*openflow.FlowMod, len(mods))
	for i, fm := range mods {
		cp := *fm
		kept[i] = &cp
	}
	s.mu.Lock()
	prior := s.ruleSets[name]
	s.ruleSets[name] = kept
	s.mu.Unlock()
	stale := ruleSetCookies(prior)
	for _, dpid := range s.dpids() {
		for _, cookie := range stale {
			s.send(ctx, dpid, &openflow.FlowMod{
				Command: openflow.FlowDeleteByCookie,
				Match:   openflow.MatchAll(),
				Cookie:  cookie,
			}, name)
		}
		s.sendRuleSet(ctx, dpid, name, kept)
		if err := s.endpoint.Barrier(dpid, 2*time.Second); err != nil {
			s.logger.Printf("steering: rule-set barrier to %d: %v", dpid, err)
		}
	}
}

// RemoveRuleSet drops a named rule set from the persisted state and
// deletes its rules (by cookie) from every connected switch.
func (s *Steering) RemoveRuleSet(ctx context.Context, name string) {
	ctx, span := telemetry.StartSpan(ctx, "controller.steer.remove_rule_set")
	span.SetAttr("set", name)
	defer span.End()
	s.mu.Lock()
	mods, ok := s.ruleSets[name]
	delete(s.ruleSets, name)
	s.mu.Unlock()
	if !ok {
		return
	}
	for _, dpid := range s.dpids() {
		for _, cookie := range ruleSetCookies(mods) {
			s.send(ctx, dpid, &openflow.FlowMod{
				Command: openflow.FlowDeleteByCookie,
				Match:   openflow.MatchAll(),
				Cookie:  cookie,
			}, name)
		}
		if err := s.endpoint.Barrier(dpid, 2*time.Second); err != nil {
			s.logger.Printf("steering: rule-set barrier to %d: %v", dpid, err)
		}
	}
}

// RuleSetNames lists installed rule sets.
func (s *Steering) RuleSetNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.ruleSets))
	for name := range s.ruleSets {
		out = append(out, name)
	}
	return out
}

// Isolated reports whether the named device is currently quarantined.
func (s *Steering) Isolated(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.isolated[name]
	return ok
}

// IsolatedDevices snapshots the full quarantine set (device → MAC).
// Because program() re-emits these rules on every table rebuild and
// switch (re)connect, this set mirrors exactly the drop rules resident
// in connected switches' flow tables — it is the controller-side
// flow-table readback the failover recovery path rebuilds quarantine
// state from.
func (s *Steering) IsolatedDevices() map[string]packet.MACAddress {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]packet.MACAddress, len(s.isolated))
	for name, mac := range s.isolated {
		out[name] = mac
	}
	return out
}

// dpids snapshots the connected switch IDs.
func (s *Steering) dpids() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.switches))
	for dpid := range s.switches {
		out = append(out, dpid)
	}
	return out
}

// String summarizes the steering state.
func (s *Steering) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("steering: %d devices, %d switches, %d quarantined",
		len(s.devices), len(s.switches), len(s.isolated))
}

// Switches reports how many southbound switch sessions are currently
// connected — the health plane's "can a quarantine FLOW_MOD reach the
// network at all" signal.
func (s *Steering) Switches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.switches)
}

// Quarantined reports how many devices are currently isolated.
func (s *Steering) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.isolated)
}
