package openflow

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"iotsec/internal/packet"
)

// roundTrip encodes then decodes a message, failing on any mismatch.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf, err := Encode(m, 77)
	if err != nil {
		t.Fatalf("encode %s: %v", m.Type(), err)
	}
	got, err := newMessage(m.Type())
	if err != nil {
		t.Fatal(err)
	}
	if err := got.decodeBody(buf[headerLen:]); err != nil {
		t.Fatalf("decode %s: %v", m.Type(), err)
	}
	return got
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []Message{
		&Hello{},
		&Echo{Payload: []byte("ping")},
		&Echo{Reply: true, Payload: []byte("pong")},
		&FeaturesRequest{},
		&FeaturesReply{DatapathID: 0xdeadbeef, Ports: []uint16{1, 2, 3}},
		&PacketIn{DatapathID: 9, InPort: 4, Reason: 1, Data: []byte{1, 2, 3}},
		&PacketOut{InPort: 2, Actions: []Action{Output(7), Flood()}, Data: []byte("pkt")},
		&FlowMod{
			Command:     FlowAdd,
			Match:       MatchIPv4().WithDstIP(ipB, 24).WithProto(packet.IPProtocolTCP).WithTpDst(80),
			Priority:    1000,
			Actions:     []Action{SetEthDst(macB), Output(3)},
			IdleTimeout: 5 * time.Second,
			HardTimeout: time.Minute,
			Cookie:      0xabc,
		},
		&FlowMod{
			Command:  FlowAdd,
			Match:    MatchAll().WithEthSrc(macB),
			Priority: 400,
			Actions:  []Action{}, // quarantine drop rule: no actions
			Cookie:   0x51abc,
			TraceID:  0xfeedfacecafe,
		},
		&FlowMod{Command: FlowDeleteByCookie, Match: MatchAll(), Actions: []Action{}, Cookie: 7},
		&FlowRemoved{DatapathID: 3, Match: MatchAll().WithTpSrc(53), Priority: 9, Cookie: 11, Packets: 100, Bytes: 9999},
		&StatsRequest{},
		&StatsReply{DatapathID: 5, FlowCount: 10, PacketsIn: 1, PacketsOut: 2, TableMiss: 3},
		&BarrierRequest{},
		&BarrierReply{},
		&ErrorMsg{Code: 2, Text: "bad flow"},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s round trip:\n got  %#v\n want %#v", m.Type(), got, m)
		}
	}
}

func TestMatchCodecProperty(t *testing.T) {
	f := func(wild uint32, inPort uint16, ethSrc, ethDst [6]byte, et uint16, src, dst [4]byte, sm, dm, proto uint8, tps, tpd uint16) bool {
		m := Match{
			Wildcards: wild & WAll, InPort: inPort,
			EthSrc: ethSrc, EthDst: ethDst,
			EtherType: packet.EtherType(et),
			SrcIP:     src, DstIP: dst,
			SrcMask: sm % 33, DstMask: dm % 33,
			Proto: packet.IPProtocol(proto),
			TpSrc: tps, TpDst: tpd,
		}
		enc := encodeMatch(nil, m)
		got, rest, err := decodeMatch(enc)
		return err == nil && len(rest) == 0 && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// encodeLegacyFlowModBody reproduces the pre-TraceID wire layout:
// command, match, then only the 18 fixed bytes (priority, idle, hard,
// cookie) before the action list.
func encodeLegacyFlowModBody(f *FlowMod) []byte {
	body := []byte{uint8(f.Command)}
	body = encodeMatch(body, f.Match)
	body = binary.BigEndian.AppendUint16(body, f.Priority)
	body = binary.BigEndian.AppendUint32(body, uint32(f.IdleTimeout/time.Millisecond))
	body = binary.BigEndian.AppendUint32(body, uint32(f.HardTimeout/time.Millisecond))
	body = binary.BigEndian.AppendUint64(body, f.Cookie)
	return encodeActions(body, f.Actions)
}

// TestFlowModDecodesLegacyBodyWithoutTraceID checks wire compatibility
// with peers that predate the TraceID field: their shorter body must
// decode with TraceID = 0 instead of erroring (or misparsing).
func TestFlowModDecodesLegacyBodyWithoutTraceID(t *testing.T) {
	cases := []*FlowMod{
		{
			Command:     FlowAdd,
			Match:       MatchIPv4().WithDstIP(ipB, 24).WithProto(packet.IPProtocolTCP).WithTpDst(80),
			Priority:    1000,
			Actions:     []Action{SetEthDst(macB), Output(3)},
			IdleTimeout: 5 * time.Second,
			HardTimeout: time.Minute,
			Cookie:      0xabc,
		},
		// Drop rule with an empty action list (the quarantine shape).
		{Command: FlowAdd, Match: MatchAll().WithEthSrc(macB), Priority: 400, Actions: []Action{}, Cookie: 0x51abc},
		{Command: FlowDeleteByCookie, Match: MatchAll(), Actions: []Action{}, Cookie: 7},
	}
	for i, want := range cases {
		var got FlowMod
		if err := got.decodeBody(encodeLegacyFlowModBody(want)); err != nil {
			t.Fatalf("case %d: legacy body rejected: %v", i, err)
		}
		if got.TraceID != 0 {
			t.Errorf("case %d: legacy body decoded TraceID %#x, want 0", i, got.TraceID)
		}
		got.TraceID = want.TraceID // compare everything else
		if !reflect.DeepEqual(&got, want) {
			t.Errorf("case %d: legacy decode:\n got  %#v\n want %#v", i, &got, want)
		}
	}
}

func TestDecodeRejectsTruncatedBodies(t *testing.T) {
	fm := &FlowMod{Command: FlowAdd, Match: MatchAll(), Priority: 1}
	buf, err := Encode(fm, 1)
	if err != nil {
		t.Fatal(err)
	}
	for cut := headerLen; cut < len(buf)-1; cut += 3 {
		var got FlowMod
		if err := got.decodeBody(buf[headerLen:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestConnFraming(t *testing.T) {
	client, server := net.Pipe()
	c1, c2 := NewConn(client), NewConn(server)
	defer c1.Close()
	defer c2.Close()

	done := make(chan error, 1)
	go func() {
		m, xid, err := c2.Receive()
		if err != nil {
			done <- err
			return
		}
		done <- c2.SendWithXID(&Echo{Reply: true, Payload: m.(*Echo).Payload}, xid)
	}()

	xid, err := c1.Send(&Echo{Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	reply, gotXID, err := c1.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if gotXID != xid {
		t.Errorf("xid = %d, want %d", gotXID, xid)
	}
	e, ok := reply.(*Echo)
	if !ok || !e.Reply || !bytes.Equal(e.Payload, []byte("hello")) {
		t.Errorf("reply = %#v", reply)
	}
}

func TestConnRejectsBadVersion(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	c := NewConn(server)
	defer c.Close()
	go func() {
		buf, _ := Encode(&Hello{}, 1)
		buf[0] = 99 // corrupt version
		client.Write(buf)
	}()
	if _, _, err := c.Receive(); err == nil {
		t.Error("bad version accepted")
	}
}

// fakeHandler records controller events for endpoint tests.
type fakeHandler struct {
	connected    chan uint64
	disconnected chan uint64
	packetIns    chan *PacketIn
	flowRemoved  chan *FlowRemoved
}

func newFakeHandler() *fakeHandler {
	return &fakeHandler{
		connected:    make(chan uint64, 4),
		disconnected: make(chan uint64, 4),
		packetIns:    make(chan *PacketIn, 16),
		flowRemoved:  make(chan *FlowRemoved, 16),
	}
}

func (h *fakeHandler) SwitchConnected(dpid uint64, ports []uint16) { h.connected <- dpid }
func (h *fakeHandler) SwitchDisconnected(dpid uint64)              { h.disconnected <- dpid }
func (h *fakeHandler) HandlePacketIn(pi *PacketIn)                 { h.packetIns <- pi }
func (h *fakeHandler) HandleFlowRemoved(fr *FlowRemoved)           { h.flowRemoved <- fr }

// dialFakeSwitch performs the switch side of the handshake.
func dialFakeSwitch(t *testing.T, addr string, dpid uint64) *Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(raw)
	if m, _, err := conn.Receive(); err != nil || m.Type() != TypeHello {
		t.Fatalf("expected HELLO: %v %v", m, err)
	}
	if _, err := conn.Send(&Hello{}); err != nil {
		t.Fatal(err)
	}
	if m, _, err := conn.Receive(); err != nil || m.Type() != TypeFeaturesRequest {
		t.Fatalf("expected FEATURES_REQUEST: %v %v", m, err)
	}
	if _, err := conn.Send(&FeaturesReply{DatapathID: dpid, Ports: []uint16{1, 2}}); err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestControllerEndpointSession(t *testing.T) {
	h := newFakeHandler()
	ep := NewControllerEndpoint(h, nil)
	addr, err := ep.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	sw := dialFakeSwitch(t, addr, 42)
	defer sw.Close()

	select {
	case dpid := <-h.connected:
		if dpid != 42 {
			t.Fatalf("connected dpid = %d", dpid)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("switch never registered")
	}

	// Switch punts a packet; controller handler receives it.
	if _, err := sw.Send(&PacketIn{DatapathID: 42, InPort: 1, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	select {
	case pi := <-h.packetIns:
		if pi.DatapathID != 42 || pi.InPort != 1 {
			t.Errorf("packet-in = %+v", pi)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet-in never dispatched")
	}

	// Controller programs the switch.
	fm := &FlowMod{Command: FlowAdd, Match: MatchAll(), Priority: 7, Actions: []Action{Flood()}}
	if err := ep.SendFlowMod(42, fm); err != nil {
		t.Fatal(err)
	}
	m, _, err := sw.Receive()
	if err != nil {
		t.Fatal(err)
	}
	gotFM, ok := m.(*FlowMod)
	if !ok || gotFM.Priority != 7 {
		t.Errorf("switch received %#v", m)
	}

	// Barrier round trip.
	go func() {
		m, xid, err := sw.Receive()
		if err == nil && m.Type() == TypeBarrierRequest {
			_ = sw.SendWithXID(&BarrierReply{}, xid)
		}
	}()
	if err := ep.Barrier(42, 2*time.Second); err != nil {
		t.Fatalf("barrier: %v", err)
	}

	// Unknown datapath errors.
	if err := ep.SendFlowMod(999, fm); err == nil {
		t.Error("send to unknown dpid should fail")
	}

	sw.Close()
	select {
	case dpid := <-h.disconnected:
		if dpid != 42 {
			t.Errorf("disconnected dpid = %d", dpid)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("disconnect never reported")
	}
}
