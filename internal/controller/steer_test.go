package controller

import (
	"context"
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/mbox"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// TestSDNSteeredTunnel exercises the Figure 2 tunnel with the REAL
// southbound path: a switch agent connects to the steering controller
// over TCP, FLOW_MODs program the tunnel, and device traffic
// provably traverses the µmbox.
func TestSDNSteeredTunnel(t *testing.T) {
	steering := NewSteering(nil)
	addr, err := steering.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer steering.Close()

	n := netsim.NewNetwork()
	sw := netsim.NewSwitch("edge", 42)
	sw.SetMissBehavior(netsim.MissDrop) // only controller rules forward

	// Topology: camera on port 1; µmbox legs on ports 2 (north) and
	// 3 (south); client host on port 4.
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	camPort, err := cam.Device.Attach(n)
	if err != nil {
		t.Fatal(err)
	}
	n.Connect(camPort, sw.AttachPort(n, 1), netsim.LinkOptions{})

	proxy := mbox.NewPasswordProxy("homeadmin", "Str0ng!", "admin", "admin")
	mb := mbox.NewMbox("mb-cam", mbox.NewPipeline(proxy))
	south, north := mb.AttachInline(n)
	n.Connect(north, sw.AttachPort(n, 2), netsim.LinkOptions{})
	n.Connect(south, sw.AttachPort(n, 3), netsim.LinkOptions{})

	clientIP := packet.MustParseIPv4("10.0.0.100")
	clientStack := netsim.NewStack("client", device.MACFor(clientIP), clientIP)
	n.Connect(clientStack.Attach(n), sw.AttachPort(n, 4), netsim.LinkOptions{})

	n.Start()
	defer n.Stop()
	defer cam.Stop()
	defer clientStack.Stop()

	agent, err := netsim.ConnectAgent(sw, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Stop()

	// Wait for the handshake, then register the protected device
	// (which programs the switch and fences with a barrier).
	deadline := time.Now().Add(2 * time.Second)
	for len(steering.Endpoint().Switches()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("switch never connected to the steering controller")
		}
		time.Sleep(5 * time.Millisecond)
	}
	steering.AddDevice(context.Background(), SteeredDevice{
		Name: "cam", MAC: cam.MAC(),
		DevicePort: 1, MboxNorthPort: 2, MboxSouthPort: 3,
	})

	client := &device.Client{Stack: clientStack, Timeout: 2 * time.Second}

	// Factory credentials die in the tunneled µmbox.
	if _, err := client.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "admin", Pass: "admin"}); err == nil {
		t.Fatal("factory credentials worked: traffic is NOT traversing the µmbox")
	}
	// Administrator credentials pass through the proxy translation.
	resp, err := client.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "homeadmin", Pass: "Str0ng!"})
	if err != nil || !resp.OK {
		t.Fatalf("admin call through tunnel failed: %v %+v", err, resp)
	}
	// The µmbox actually saw the traffic.
	forwarded, dropped := mb.Counters()
	if forwarded == 0 {
		t.Error("µmbox forwarded nothing — tunnel not in path")
	}
	if dropped == 0 {
		t.Error("µmbox dropped nothing — factory-credential block did not happen there")
	}
	// And the switch's table carries the steering rules.
	if sw.Table().Len() < 5 {
		t.Errorf("flow table has %d entries, want the steering rule set", sw.Table().Len())
	}
}

// TestSteeringMultipleDevices checks device-to-device traffic crosses
// both tunnels.
func TestSteeringMultipleDevices(t *testing.T) {
	steering := NewSteering(nil)
	addr, err := steering.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer steering.Close()

	n := netsim.NewNetwork()
	sw := netsim.NewSwitch("edge", 43)
	sw.SetMissBehavior(netsim.MissDrop)

	mkDevice := func(name, ip string, devPort, northPort, southPort uint16) (*device.Device, *mbox.Mbox) {
		d := device.New(name, device.Profile{SKU: "plain-" + name, Class: "test"}, device.MACFor(packet.MustParseIPv4(ip)), packet.MustParseIPv4(ip))
		port, err := d.Attach(n)
		if err != nil {
			t.Fatal(err)
		}
		n.Connect(port, sw.AttachPort(n, devPort), netsim.LinkOptions{})
		mb := mbox.NewMbox("mb-"+name, mbox.NewPipeline(&mbox.Logger{}))
		south, north := mb.AttachInline(n)
		n.Connect(north, sw.AttachPort(n, northPort), netsim.LinkOptions{})
		n.Connect(south, sw.AttachPort(n, southPort), netsim.LinkOptions{})
		return d, mb
	}
	// Open-access devices so calls need no credentials.
	d1, mb1 := mkDevice("d1", "10.0.0.11", 1, 2, 3)
	d2, mb2 := mkDevice("d2", "10.0.0.12", 4, 5, 6)
	d1.Profile.Vulns = []device.Vulnerability{{Class: device.VulnOpenAccess}}
	d2.Profile.Vulns = []device.Vulnerability{{Class: device.VulnOpenAccess}}
	defer d1.Stop()
	defer d2.Stop()

	n.Start()
	defer n.Stop()

	agent, err := netsim.ConnectAgent(sw, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for len(steering.Endpoint().Switches()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("switch never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	steering.AddDevice(context.Background(), SteeredDevice{Name: "d1", MAC: d1.MAC(), DevicePort: 1, MboxNorthPort: 2, MboxSouthPort: 3})
	steering.AddDevice(context.Background(), SteeredDevice{Name: "d2", MAC: d2.MAC(), DevicePort: 4, MboxNorthPort: 5, MboxSouthPort: 6})

	// d1 calls d2 directly: the request crosses d1's µmbox outbound
	// and d2's µmbox inbound.
	client := &device.Client{Stack: d1.Stack(), Timeout: 2 * time.Second}
	resp, err := client.Call(d2.IP(), device.Request{Cmd: "STATUS"})
	if err != nil || !resp.OK {
		t.Fatalf("device-to-device call failed: %v %+v", err, resp)
	}
	if f, _ := mb1.Counters(); f == 0 {
		t.Error("d1's µmbox saw no traffic")
	}
	if f, _ := mb2.Counters(); f == 0 {
		t.Error("d2's µmbox saw no traffic")
	}
}

// quarantineRules counts priority-400 entries in a switch table.
func quarantineRules(sw *netsim.Switch) int {
	n := 0
	for _, e := range sw.Table().Entries() {
		if e.Priority == 400 {
			n++
		}
	}
	return n
}

// waitQuarantineRules polls until the table carries want priority-400
// entries (programming after a switch connect is asynchronous).
func waitQuarantineRules(t *testing.T, sw *netsim.Switch, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if quarantineRules(sw) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("switch dpid %d has %d quarantine rules, want %d (table len %d)",
				sw.DatapathID(), quarantineRules(sw), want, sw.Table().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQuarantinePersistsAcrossReprogramAndReconnect is the regression
// test for two quarantine-lifting holes: (1) AddDevice reprograms the
// table from scratch, which used to wipe the priority-400 drop rules
// without re-issuing them; (2) a switch that connects after Isolate
// used to receive steering rules but no quarantine rules.
func TestQuarantinePersistsAcrossReprogramAndReconnect(t *testing.T) {
	steering := NewSteering(nil)
	addr, err := steering.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer steering.Close()

	sw := netsim.NewSwitch("edge", 44)
	sw.SetMissBehavior(netsim.MissDrop)
	agent, err := netsim.ConnectAgent(sw, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for len(steering.Endpoint().Switches()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("switch never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx := context.Background()
	mac := device.MACFor(packet.MustParseIPv4("10.0.0.50"))
	steering.Isolate(ctx, "cam", mac)
	if !steering.Isolated("cam") {
		t.Fatal("Isolate did not record the quarantine")
	}
	waitQuarantineRules(t, sw, 2) // Isolate is barrier-fenced, but agent applies async

	// (1) Registering a device rebuilds the whole table; the
	// quarantine must survive the wipe.
	steering.AddDevice(ctx, SteeredDevice{
		Name: "other", MAC: device.MACFor(packet.MustParseIPv4("10.0.0.51")),
		DevicePort: 1, MboxNorthPort: 2, MboxSouthPort: 3,
	})
	waitQuarantineRules(t, sw, 2)
	if sw.Table().Len() < 6 {
		t.Errorf("reprogrammed table has %d entries, want steering set + quarantine", sw.Table().Len())
	}

	// (2) A switch connecting mid-quarantine receives the drop rules
	// even though it never saw the Isolate call.
	late := netsim.NewSwitch("late", 45)
	late.SetMissBehavior(netsim.MissDrop)
	lateAgent, err := netsim.ConnectAgent(late, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer lateAgent.Stop()
	waitQuarantineRules(t, late, 2)

	// Release lifts the quarantine everywhere and forgets it, so a
	// subsequent reconnect does not resurrect the rules.
	steering.Release(ctx, "cam", mac)
	if steering.Isolated("cam") {
		t.Fatal("Release did not clear the quarantine")
	}
	waitQuarantineRules(t, sw, 0)
	waitQuarantineRules(t, late, 0)
}
