package netsim

import (
	"testing"
	"time"
)

// TestQuiesceDrainsLatentFrames verifies Quiesce is a true barrier:
// after it returns true, every frame sent before it — including ones
// parked on link latency timers — has been delivered.
func TestQuiesceDrainsLatentFrames(t *testing.T) {
	n := NewNetwork()
	a, b := newSink("a"), newSink("b")
	pa, pb := n.NewPort(a, 1), n.NewPort(b, 1)
	n.Connect(pa, pb, LinkOptions{Latency: 20 * time.Millisecond})
	n.Start()
	defer n.Stop()

	const total = 25
	for i := 0; i < total; i++ {
		pa.Send(Frame{byte(i)})
	}
	if !n.Quiesce(2 * time.Second) {
		t.Fatal("Quiesce timed out with frames in flight")
	}
	// No waiting after the barrier: delivery must already be complete.
	if got := b.count(); got != total {
		t.Fatalf("after Quiesce: b received %d frames, want %d", got, total)
	}
}

// TestQuiesceSeesCausalCascade verifies the barrier covers frames
// emitted by handlers while processing earlier frames: a relay chain
// a → relay → b over latent links must fully drain before Quiesce
// returns.
func TestQuiesceSeesCausalCascade(t *testing.T) {
	n := NewNetwork()
	a, b := newSink("a"), newSink("b")
	relay := &relayNode{}
	pa := n.NewPort(a, 1)
	rIn, rOut := n.NewPort(relay, 1), n.NewPort(relay, 2)
	relay.out = rOut
	pb := n.NewPort(b, 1)
	n.Connect(pa, rIn, LinkOptions{Latency: 10 * time.Millisecond})
	n.Connect(rOut, pb, LinkOptions{Latency: 10 * time.Millisecond})
	n.Start()
	defer n.Stop()

	const total = 10
	for i := 0; i < total; i++ {
		pa.Send(Frame{byte(i)})
	}
	if !n.Quiesce(2 * time.Second) {
		t.Fatal("Quiesce timed out")
	}
	if got := b.count(); got != total {
		t.Fatalf("after Quiesce: b received %d frames, want %d (cascade not drained)", got, total)
	}
}

// TestQuiesceIdleFastPath verifies an idle fabric quiesces immediately.
func TestQuiesceIdleFastPath(t *testing.T) {
	n := NewNetwork()
	a, b := newSink("a"), newSink("b")
	n.Connect(n.NewPort(a, 1), n.NewPort(b, 1), LinkOptions{})
	n.Start()
	defer n.Stop()
	start := time.Now()
	if !n.Quiesce(time.Second) {
		t.Fatal("idle fabric did not quiesce")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("idle quiesce took %v, want fast path", d)
	}
}

// relayNode forwards every frame out its second port.
type relayNode struct{ out *Port }

func (r *relayNode) NodeName() string { return "relay" }
func (r *relayNode) HandleFrame(_ *Port, f Frame) {
	cp := make(Frame, len(f))
	copy(cp, f)
	r.out.Send(cp)
}
