package device

import (
	"fmt"
	"strconv"
	"strings"

	"iotsec/internal/envsim"
	"iotsec/internal/packet"
)

// Appliance describes what a smart plug powers: the environment
// variables its operation drives.
type Appliance struct {
	// Name labels the appliance ("oven", "ac", ...).
	Name string
	// PowerVar receives Watts while on ("oven_power").
	PowerVar string
	// Watts is the draw while on.
	Watts float64
	// HeatVar receives HeatRate while on ("oven_heat_rate"); empty
	// for appliances without thermal effect.
	HeatVar string
	// HeatRate is °C/s added while on.
	HeatRate float64
}

// SmartPlug emulates a Belkin-Wemo-class plug (Table 1 rows 6–7): a
// remote ON/OFF switch with two flaws — a command backdoor that
// bypasses the companion app's authentication, and an open DNS
// resolver abusable for amplification DDoS.
type SmartPlug struct {
	*Device
	appliance Appliance
}

// PlugBackdoorToken is the undocumented token the Wemo-style backdoor
// accepts; in reality this was reverse-engineered from the firmware.
const PlugBackdoorToken = "wemo-dbg-7f3a"

// SmartPlugProfile is the Wemo-style SKU.
func SmartPlugProfile() Profile {
	return Profile{
		SKU:    "belkin-wemo-insight-fw2.0",
		Class:  "smart-plug",
		Vendor: "Belkin",
		Vulns: []Vulnerability{
			{Class: VulnBackdoor, Detail: PlugBackdoorToken},
			{Class: VulnOpenDNSResolver, Detail: "udp/53 recursion open"},
			{Class: VulnDefaultCredentials, Detail: "owner:wemo123"},
		},
	}
}

// NewSmartPlug builds a plug powering the given appliance.
func NewSmartPlug(name string, ip packet.IPv4Address, appliance Appliance) *SmartPlug {
	p := &SmartPlug{
		Device:    New(name, SmartPlugProfile(), MACFor(ip), ip),
		appliance: appliance,
	}
	p.Set("power", "off")
	p.Set("appliance", appliance.Name)
	p.Handle("ON", func(d *Device, _ Request) Response {
		p.switchPower(true)
		return Response{OK: true, Data: "power=on"}
	})
	p.Handle("OFF", func(d *Device, _ Request) Response {
		p.switchPower(false)
		return Response{OK: true, Data: "power=off"}
	})
	p.Handle("USAGE", func(d *Device, _ Request) Response {
		// The Insight's selling point — energy monitoring — is also
		// the privacy leak when exposed.
		draw := 0.0
		if d.Get("power") == "on" {
			draw = appliance.Watts
		}
		return Response{OK: true, Data: fmt.Sprintf("watts=%.0f", draw)}
	})
	return p
}

// switchPower flips the relay and drives the appliance's environment
// variables.
func (p *SmartPlug) switchPower(on bool) {
	state := "off"
	if on {
		state = "on"
	}
	p.Set("power", state)
	env := p.Env()
	if env == nil {
		return
	}
	if p.appliance.PowerVar != "" {
		watts := 0.0
		if on {
			watts = p.appliance.Watts
		}
		env.Set(p.appliance.PowerVar, watts)
	}
	if p.appliance.HeatVar != "" {
		rate := 0.0
		if on {
			rate = p.appliance.HeatRate
		}
		env.Set(p.appliance.HeatVar, rate)
	}
}

// StartDNSResolver opens the vulnerable resolver (call after Attach).
// It answers ANY/TXT queries from anyone with a heavily padded
// response — roughly amplifying the query size by the given factor.
func (p *SmartPlug) StartDNSResolver(amplification int) error {
	if amplification <= 0 {
		amplification = 20
	}
	return p.Stack().HandleUDP(53, func(srcIP packet.IPv4Address, srcPort uint16, payload []byte) {
		dnsPkt := packet.Decode(payload, packet.LayerTypeDNS)
		q := dnsPkt.DNS()
		if q == nil || q.Response || len(q.Questions) == 0 {
			return
		}
		answer := &packet.DNS{
			ID:        q.ID,
			Response:  true,
			Questions: q.Questions,
		}
		padding := strings.Repeat("x", len(payload)*amplification)
		answer.Answers = []packet.DNSResourceRecord{{
			Name: q.Questions[0].Name, Type: packet.DNSTypeTXT,
			Class: packet.DNSClassIN, TTL: 300, Data: []byte(padding),
		}}
		b := packet.NewSerializeBuffer()
		if err := answer.SerializeTo(b); err != nil {
			return
		}
		// Reflect to whatever source the packet claims — the classic
		// amplification flaw: no ingress validation.
		_ = p.Stack().SendUDP(srcIP, srcPort, 53, b.Bytes())
		p.Emit(EventCommand, fmt.Sprintf("dns-query from %s (%dB -> %dB)", srcIP, len(payload), b.Len()))
	})
}

// WindowActuator opens and closes a motorized window; its password is
// four digits and brute-forceable online (Figure 3's second attack
// arrow).
type WindowActuator struct {
	*Device
}

// WindowPassword is the weak factory password.
const WindowPassword = "0000"

// WindowActuatorProfile is the SKU.
func WindowActuatorProfile() Profile {
	return Profile{
		SKU:    "winact-m1",
		Class:  "window-actuator",
		Vendor: "HomeMotion",
		Vulns: []Vulnerability{
			{Class: VulnWeakPassword, Detail: "admin:" + WindowPassword},
		},
	}
}

// NewWindowActuator builds the actuator.
func NewWindowActuator(name string, ip packet.IPv4Address) *WindowActuator {
	w := &WindowActuator{Device: New(name, WindowActuatorProfile(), MACFor(ip), ip)}
	w.Set("window", "closed")
	w.Handle("OPEN", func(d *Device, _ Request) Response {
		d.Set("window", "open")
		if env := d.Env(); env != nil {
			env.Set(envsim.VarWindowOpen, 1)
		}
		return Response{OK: true, Data: "window=open"}
	})
	w.Handle("CLOSE", func(d *Device, _ Request) Response {
		d.Set("window", "closed")
		if env := d.Env(); env != nil {
			env.Set(envsim.VarWindowOpen, 0)
		}
		return Response{OK: true, Data: "window=closed"}
	})
	return w
}

// SmartLock guards the door; included as an attack-graph goal state.
type SmartLock struct {
	*Device
}

// SmartLockProfile is the SKU (reasonably secured: strong credentials,
// but still only as strong as the devices that can trigger it).
func SmartLockProfile() Profile {
	return Profile{
		SKU:    "lockly-s3",
		Class:  "smart-lock",
		Vendor: "Lockly",
		Vulns:  nil,
	}
}

// NewSmartLock builds a lock with the given owner credentials.
func NewSmartLock(name string, ip packet.IPv4Address, user, pass string) *SmartLock {
	l := &SmartLock{Device: New(name, SmartLockProfile(), MACFor(ip), ip)}
	l.creds[user] = pass
	l.Set("lock", "locked")
	l.Handle("UNLOCK", func(d *Device, _ Request) Response {
		d.Set("lock", "unlocked")
		return Response{OK: true, Data: "lock=unlocked"}
	})
	l.Handle("LOCK", func(d *Device, _ Request) Response {
		d.Set("lock", "locked")
		return Response{OK: true, Data: "lock=locked"}
	})
	return l
}

// SmartBulb is a connected light (the paper's implicit-coupling
// example: a bulb triggers a light sensor through the room, not
// through any network path).
type SmartBulb struct {
	*Device
}

// SmartBulbProfile is the SKU.
func SmartBulbProfile() Profile {
	return Profile{
		SKU:    "hue-a19-fw5",
		Class:  "smart-bulb",
		Vendor: "Philips",
		Vulns: []Vulnerability{
			{Class: VulnDefaultCredentials, Detail: "hue:hue"},
		},
	}
}

// NewSmartBulb builds a bulb.
func NewSmartBulb(name string, ip packet.IPv4Address) *SmartBulb {
	b := &SmartBulb{Device: New(name, SmartBulbProfile(), MACFor(ip), ip)}
	b.Set("light", "off")
	b.Handle("ON", func(d *Device, _ Request) Response {
		d.Set("light", "on")
		if env := d.Env(); env != nil {
			env.Set("lamp_output", 400)
			env.Set("lamp_power", 60)
		}
		return Response{OK: true, Data: "light=on"}
	})
	b.Handle("OFF", func(d *Device, _ Request) Response {
		d.Set("light", "off")
		if env := d.Env(); env != nil {
			env.Set("lamp_output", 0)
			env.Set("lamp_power", 0)
		}
		return Response{OK: true, Data: "light=off"}
	})
	return b
}

// TrafficLight emulates the Table 1 row 5 controllers: 219 lights
// with no credentials at all.
type TrafficLight struct {
	*Device
}

// TrafficLightProfile is the SKU.
func TrafficLightProfile() Profile {
	return Profile{
		SKU:    "siglight-ctl4",
		Class:  "traffic-light",
		Vendor: "SigLight",
		Vulns: []Vulnerability{
			{Class: VulnOpenAccess, Detail: "no credentials"},
		},
	}
}

// NewTrafficLight builds a controller starting at red.
func NewTrafficLight(name string, ip packet.IPv4Address) *TrafficLight {
	tl := &TrafficLight{Device: New(name, TrafficLightProfile(), MACFor(ip), ip)}
	tl.Set("phase", "red")
	tl.Handle("SET", func(d *Device, req Request) Response {
		if len(req.Args) != 1 {
			return Response{OK: false, Data: "usage: SET <red|yellow|green>"}
		}
		phase := strings.ToLower(req.Args[0])
		switch phase {
		case "red", "yellow", "green":
			d.Set("phase", phase)
			return Response{OK: true, Data: "phase=" + phase}
		default:
			return Response{OK: false, Data: "bad phase " + strconv.Quote(phase)}
		}
	})
	return tl
}
