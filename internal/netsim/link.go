package netsim

import (
	"math/rand"
	"sync"
	"time"
)

// LinkOptions configure a virtual wire.
type LinkOptions struct {
	// Latency delays each frame's delivery (store-and-forward).
	Latency time.Duration
	// BandwidthBps caps throughput (bytes/second): each frame takes
	// len/bandwidth to serialize and frames queue behind one another
	// per direction. Zero = infinite.
	BandwidthBps float64
	// LossRate drops frames with this probability in [0,1).
	LossRate float64
	// QueueLen bounds each endpoint's receive queue (default 256).
	QueueLen int
	// Seed makes loss deterministic; 0 derives a fixed default.
	Seed int64
}

// Link is a bidirectional wire between two ports.
type Link struct {
	a, b *Port
	opts LinkOptions

	rngMu sync.Mutex
	rng   *rand.Rand

	// per-direction serialization state: when the "wire" frees up.
	bwMu       sync.Mutex
	nextFreeAB time.Time // a → b
	nextFreeBA time.Time // b → a

	taps *tapSet
	act  *activity
}

// newLink wires two ports together. The loss rng is only materialized
// for lossy links: seeding a rand.Source is ~600 words of setup work,
// and topology builds create links by the hundreds.
func newLink(a, b *Port, opts LinkOptions, taps *tapSet, act *activity) *Link {
	l := &Link{a: a, b: b, opts: opts, taps: taps, act: act}
	if opts.LossRate > 0 {
		seed := opts.Seed
		if seed == 0 {
			seed = 0x10c5ec
		}
		l.rng = rand.New(rand.NewSource(seed))
	}
	a.link.Store(l)
	b.link.Store(l)
	return l
}

// lose samples the loss process.
func (l *Link) lose() bool {
	if l.opts.LossRate <= 0 || l.rng == nil {
		return false
	}
	l.rngMu.Lock()
	defer l.rngMu.Unlock()
	return l.rng.Float64() < l.opts.LossRate
}

// deliver moves a frame from src's side to dst's inbox, applying
// loss, serialization (bandwidth) and propagation latency. Frames are
// copied so senders may reuse buffers.
func (l *Link) deliver(src, dst *Port, frame Frame) {
	if l.taps != nil {
		l.taps.observe(src, dst, frame)
	}
	if l.lose() {
		src.stats.dropsLoss.Add(1)
		mFramesLost.Inc()
		return
	}
	mFramesDelivered.Inc()
	mBytesDelivered.Add(uint64(len(frame)))
	cp := make(Frame, len(frame))
	copy(cp, frame)

	delay := l.opts.Latency
	if l.opts.BandwidthBps > 0 {
		tx := time.Duration(float64(len(frame)) / l.opts.BandwidthBps * float64(time.Second))
		l.bwMu.Lock()
		now := time.Now()
		nextFree := &l.nextFreeAB
		if src == l.b {
			nextFree = &l.nextFreeBA
		}
		start := now
		if nextFree.After(now) {
			start = *nextFree
		}
		done := start.Add(tx)
		*nextFree = done
		l.bwMu.Unlock()
		delay += done.Sub(now)
	}
	if delay > 0 {
		// Count the frame as in flight for the duration of the
		// latency/serialization timer so Network.Quiesce sees it.
		if l.act != nil {
			l.act.add(1)
		}
		time.AfterFunc(delay, func() {
			dst.enqueue(cp)
			if l.act != nil {
				l.act.add(-1)
			}
		})
		return
	}
	dst.enqueue(cp)
}
