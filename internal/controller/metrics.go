package controller

import (
	"strconv"

	"iotsec/internal/telemetry"
)

// Control-plane telemetry. Counters on the commit/reconcile paths are
// process-wide aggregates; the replication-lag histogram captures the
// exact weakness §5.1 calls out in weakly consistent SDN state
// distribution, and the steering program histogram covers the
// FLOW_MOD + barrier round trip that gates enforcement.
var (
	mStoreCommits = telemetry.NewCounter(
		"iotsec_controller_store_commits_total",
		"Writes committed through versioned stores.")
	mStoreWatchDrops = telemetry.NewCounter(
		"iotsec_controller_store_watch_drops_total",
		"Watch notifications dropped on full subscriber channels.")
	mViewChanges = telemetry.NewCounter(
		"iotsec_controller_view_changes_total",
		"State-variable changes committed to views.")
	mRecomputes = telemetry.NewCounter(
		"iotsec_controller_recomputes_total",
		"Global posture recomputations.")
	mPostureChanges = telemetry.NewCounter(
		"iotsec_controller_posture_changes_total",
		"Posture deltas pushed to the enforcement sink.")
	mLocalHandled = telemetry.NewCounter(
		"iotsec_controller_local_handled_total",
		"Events absorbed by partition-local controllers.")
	mEscalations = telemetry.NewCounter(
		"iotsec_controller_escalations_total",
		"Events escalated to the global controller.")
	mReplicaLagSeconds = telemetry.NewHistogram(
		"iotsec_controller_replica_lag_seconds",
		"Commit-to-visibility lag per update applied at a weak replica.",
		telemetry.LatencyBuckets)
	mReplicaPending = telemetry.NewGauge(
		"iotsec_controller_replica_pending",
		"Updates offered to weak replicas but not yet visible.")
	mFlowMods = telemetry.NewCounter(
		"iotsec_controller_flow_mods_total",
		"FLOW_MOD messages sent southbound by the steering app.")
	mProgramSeconds = telemetry.NewHistogram(
		"iotsec_controller_program_seconds",
		"Full switch (re)programming latency including the barrier fence.",
		telemetry.LatencyBuckets)

	// Control-plane failover metrics (§5.1 crash tolerance): the
	// deadman, checkpoint and recovery counters the supervisor drives,
	// plus the recovery-MTTR histogram the SLO watchdog taps.
	mCtrlSupervised = telemetry.NewGauge(
		"iotsec_controller_failover_supervised",
		"Local controllers under deadman supervision.")
	mCtrlMissedBeats = telemetry.NewCounter(
		"iotsec_controller_failover_missed_beats_total",
		"Deadman probes that found a local controller unresponsive.")
	mCtrlFailovers = telemetry.NewCounter(
		"iotsec_controller_failover_total",
		"Local controllers declared dead and failed over.")
	mCtrlCheckpoints = telemetry.NewCounter(
		"iotsec_controller_failover_checkpoints_total",
		"Partition state checkpoints taken by the supervisor.")
	mCtrlQuarantineRepush = telemetry.NewCounter(
		"iotsec_controller_failover_quarantine_repush_total",
		"Quarantines re-asserted during recovery, before state restore.")
	mCtrlRehomed = telemetry.NewGauge(
		"iotsec_controller_failover_rehomed_partitions",
		"Partitions currently routed to a replacement home.")
	mCtrlRecoverySeconds = telemetry.NewHistogram(
		"iotsec_controller_recovery_seconds",
		"Failover detection-to-recovery MTTR per partition.",
		telemetry.LatencyBuckets)
)

// RecoveryHistogram exposes the recovery-MTTR histogram so the SLO
// watchdog (iotsecd -slo-recovery-p99) can tap it as a Source.
func RecoveryHistogram() *telemetry.Histogram { return mCtrlRecoverySeconds }

// ExportTelemetry registers a scrape-time collector exposing this
// partitioning's group sizes as iotsec_controller_partition_devices
// labeled by group index. Re-registering under the same id replaces
// the previous collector.
func (p *Partitioning) ExportTelemetry(reg *telemetry.Registry, id string) {
	if reg == nil {
		reg = telemetry.Default
	}
	groups := make([][]string, len(p.Groups))
	copy(groups, p.Groups)
	reg.RegisterCollector("controller-partitioning:"+id, func(emit func(string, telemetry.Kind, string, telemetry.Labels, float64)) {
		for i, g := range groups {
			emit("iotsec_controller_partition_devices", telemetry.KindGauge,
				"Devices per interaction partition.",
				telemetry.Labels{
					{Key: "partitioning", Value: id},
					{Key: "group", Value: strconv.Itoa(i)},
				}, float64(len(g)))
		}
	})
}
