package learn

import (
	"errors"
	"fmt"
	"math"

	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// Signature generation (§4.1): the paper's repository shares
// "traces or signatures". This distills captured attack traffic into
// a content signature automatically: the most frequent attack n-gram
// that never appears in benign traffic toward the same device. A
// deployment that caught an exploit once can publish a working rule
// without a human reverse-engineering the payload.

// ErrNoDistinctiveToken reports that attack and benign traffic cannot
// be separated by any n-gram at the tried lengths.
var ErrNoDistinctiveToken = errors.New("learn: no distinctive token separates attack from benign traffic")

// GenerateSignatureToken finds a byte token (longest first, down to
// minLen) that appears in at least minSupport fraction of the attack
// payloads and in none of the benign payloads.
func GenerateSignatureToken(attack, benign [][]byte, maxLen, minLen int, minSupport float64) ([]byte, error) {
	if len(attack) == 0 {
		return nil, fmt.Errorf("%w: no attack payloads", ErrNoDistinctiveToken)
	}
	if maxLen <= 0 {
		maxLen = 16
	}
	if minLen <= 0 {
		minLen = 4
	}
	if minSupport <= 0 {
		minSupport = 0.8
	}
	benignSet := buildGramIndex(benign, minLen, maxLen)

	for n := maxLen; n >= minLen; n-- {
		// Count attack-payload support per n-gram (each payload
		// contributes each distinct gram once).
		support := make(map[string]int)
		for _, p := range attack {
			seen := make(map[string]bool)
			for i := 0; i+n <= len(p); i++ {
				g := string(p[i : i+n])
				if !seen[g] {
					seen[g] = true
					support[g]++
				}
			}
		}
		need := int(math.Ceil(minSupport * float64(len(attack))))
		if need < 1 {
			need = 1
		}
		var best string
		bestCount := 0
		for g, c := range support {
			if c < need || benignSet[g] {
				continue
			}
			if c > bestCount || (c == bestCount && g < best) {
				best, bestCount = g, c
			}
		}
		if bestCount > 0 {
			return []byte(best), nil
		}
	}
	return nil, ErrNoDistinctiveToken
}

// buildGramIndex collects every n-gram of each length present in the
// corpus.
func buildGramIndex(corpus [][]byte, minLen, maxLen int) map[string]bool {
	idx := make(map[string]bool)
	for _, p := range corpus {
		for n := minLen; n <= maxLen; n++ {
			for i := 0; i+n <= len(p); i++ {
				idx[string(p[i:i+n])] = true
			}
		}
	}
	return idx
}

// escapeRuleContent renders a token safely for the ids rule dialect
// (quotes and backslashes escaped; non-printable bytes reject the
// token — the dialect carries text patterns).
func escapeRuleContent(token []byte) (string, error) {
	out := make([]byte, 0, len(token)+4)
	for _, b := range token {
		switch {
		case b == '"':
			out = append(out, '\\', '"')
		case b == '\\':
			out = append(out, '\\', '\\')
		case b == '\n' || b == ';':
			return "", fmt.Errorf("learn: token contains unescapable byte %q", b)
		case b < 32 || b > 126:
			return "", fmt.Errorf("learn: token contains non-printable byte 0x%02x", b)
		}
		if b != '"' && b != '\\' {
			out = append(out, b)
		}
	}
	return string(out), nil
}

// GenerateRule distills captured traffic into an ids-dialect block
// rule for the device's management port.
func GenerateRule(attack, benign [][]byte, msg string, sid int) (string, error) {
	token, err := GenerateSignatureToken(attack, benign, 16, 4, 0.8)
	if err != nil {
		return "", err
	}
	content, err := escapeRuleContent(token)
	if err != nil {
		// Fall back to a shorter printable token.
		token, err2 := GenerateSignatureToken(attack, benign, 8, 4, 0.8)
		if err2 != nil {
			return "", err
		}
		content, err = escapeRuleContent(token)
		if err != nil {
			return "", err
		}
	}
	return fmt.Sprintf(`block tcp any any -> any 80 (msg:%q; content:"%s"; sid:%d;)`, msg, content, sid), nil
}

// MgmtPayloads extracts TCP management payloads addressed to the
// device from a capture — the input GenerateRule wants.
func MgmtPayloads(frames []netsim.CapturedFrame, deviceIP packet.IPv4Address) [][]byte {
	return MgmtPayloadsFrom(frames, deviceIP, packet.IPv4Address{})
}

// MgmtPayloadsFrom is MgmtPayloads restricted to one source address
// (how a post-incident analysis separates the attacker's traffic from
// everyone else's; the zero address matches any source).
func MgmtPayloadsFrom(frames []netsim.CapturedFrame, deviceIP, srcIP packet.IPv4Address) [][]byte {
	return mgmtPayloads(frames, deviceIP, func(src packet.IPv4Address) bool {
		return srcIP.IsZero() || src == srcIP
	})
}

// MgmtPayloadsExcluding extracts management payloads to the device
// from every source EXCEPT the given one — the benign pool for
// signature distillation.
func MgmtPayloadsExcluding(frames []netsim.CapturedFrame, deviceIP, excludeSrc packet.IPv4Address) [][]byte {
	return mgmtPayloads(frames, deviceIP, func(src packet.IPv4Address) bool {
		return src != excludeSrc
	})
}

func mgmtPayloads(frames []netsim.CapturedFrame, deviceIP packet.IPv4Address, srcOK func(packet.IPv4Address) bool) [][]byte {
	var out [][]byte
	for _, cf := range frames {
		p := packet.Decode(cf.Data, packet.LayerTypeEthernet)
		ip := p.IPv4()
		tcp := p.TCP()
		if ip == nil || tcp == nil || ip.DstIP != deviceIP || !srcOK(ip.SrcIP) {
			continue
		}
		if payload := tcp.LayerPayload(); len(payload) > 0 {
			cp := make([]byte, len(payload))
			copy(cp, payload)
			out = append(out, cp)
		}
	}
	return out
}
