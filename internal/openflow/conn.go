package openflow

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Conn is a framed, thread-safe message connection over any stream
// transport (normally TCP). Writes from multiple goroutines are
// serialized; Receive must be called from a single reader goroutine.
type Conn struct {
	raw     net.Conn
	r       *bufio.Reader
	writeMu sync.Mutex
	nextXID atomic.Uint32
	closed  atomic.Bool
}

// NewConn wraps a stream connection.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, r: bufio.NewReaderSize(raw, 64*1024)}
}

// Send frames and writes the message with a fresh transaction ID,
// returning the ID used.
func (c *Conn) Send(m Message) (uint32, error) {
	xid := c.nextXID.Add(1)
	return xid, c.SendWithXID(m, xid)
}

// NextXID reserves a transaction ID without sending, so a caller can
// register reply state before the request is on the wire.
func (c *Conn) NextXID() uint32 { return c.nextXID.Add(1) }

// SendWithXID frames and writes the message using the caller's
// transaction ID (for replies that must echo a request's ID).
func (c *Conn) SendWithXID(m Message, xid uint32) error {
	buf, err := Encode(m, xid)
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := c.raw.Write(buf); err != nil {
		return fmt.Errorf("openflow: write %s: %w", m.Type(), err)
	}
	return nil
}

// Receive blocks for the next message, returning it with its
// transaction ID.
func (c *Conn) Receive() (Message, uint32, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, 0, err
	}
	if hdr[0] != Version {
		return nil, 0, fmt.Errorf("%w: got %d", ErrBadVersion, hdr[0])
	}
	total := binary.BigEndian.Uint32(hdr[4:8])
	xid := binary.BigEndian.Uint32(hdr[8:12])
	if total < headerLen || total > maxMessageLen {
		return nil, 0, fmt.Errorf("%w: framed length %d", ErrBadMessage, total)
	}
	body := make([]byte, total-headerLen)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return nil, 0, fmt.Errorf("openflow: read body: %w", err)
	}
	m, err := newMessage(MessageType(hdr[1]))
	if err != nil {
		return nil, 0, err
	}
	if err := m.decodeBody(body); err != nil {
		return nil, 0, err
	}
	return m, xid, nil
}

// Close shuts the underlying transport. Safe to call more than once.
func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	return c.raw.Close()
}

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }
