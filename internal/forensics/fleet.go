package forensics

import (
	"sort"
	"strings"

	"iotsec/internal/journal"
)

// ShardEvent is one journal event tagged with the shard that recorded
// it — the unit of cross-shard assembly.
type ShardEvent struct {
	Shard string `json:"shard"`
	journal.Event
}

// FleetTimeline is one causal chain assembled across shard journals:
// a failover that re-homed a partition, or any chain whose events
// landed in more than one journal, rendered as a single story.
//
// Ordering: per-journal sequence numbers and monotonic offsets are
// meaningless across processes, so the merged order is wall-clock
// first, then shard name, then sequence — good enough for the
// human-facing story (same-shard events keep their exact causal
// order; cross-shard ties resolve deterministically).
type FleetTimeline struct {
	TraceID  uint64       `json:"trace_id"`
	Shards   []string     `json:"shards"`
	Kind     string       `json:"kind,omitempty"`
	Complete bool         `json:"complete"`
	Events   []ShardEvent `json:"events"`
}

// AssembleFleetTimeline merges per-shard event sets for one trace.
func AssembleFleetTimeline(traceID uint64, byShard map[string][]journal.Event) *FleetTimeline {
	t := &FleetTimeline{TraceID: traceID}
	for shard, events := range byShard {
		contributed := false
		for _, e := range events {
			if e.TraceID != traceID {
				continue
			}
			t.Events = append(t.Events, ShardEvent{Shard: shard, Event: e})
			contributed = true
		}
		if contributed {
			t.Shards = append(t.Shards, shard)
		}
	}
	sort.Strings(t.Shards)
	sort.Slice(t.Events, func(i, j int) bool {
		a, b := t.Events[i], t.Events[j]
		if !a.Wall.Equal(b.Wall) {
			return a.Wall.Before(b.Wall)
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	flat := make([]journal.Event, len(t.Events))
	for i, se := range t.Events {
		flat[i] = se.Event
	}
	for _, se := range t.Events {
		if kind, ok := KindOf(se.Type); ok {
			t.Kind = kind
			break
		}
	}
	kind := t.Kind
	if kind == "" {
		kind = KindAnomaly
	}
	t.Complete = chainComplete(kind, flat)
	return t
}

// Chain renders the merged chain in one line, each hop tagged with
// its shard:
//
//	shard-a:controller-failover -> shard-b:partition-rehomed -> ...
func (t *FleetTimeline) Chain() string {
	parts := make([]string, 0, len(t.Events))
	for _, se := range t.Events {
		hop := se.Shard + ":" + string(se.Type)
		if se.Device != "" {
			hop += "(" + se.Device + ")"
		}
		parts = append(parts, hop)
	}
	return strings.Join(parts, " -> ")
}
