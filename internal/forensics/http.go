package forensics

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"iotsec/internal/journal"
)

// ListJSON is the /debug/incidents list response shape.
type ListJSON struct {
	TakenAt   time.Time     `json:"taken_at"`
	Total     int           `json:"total"`
	Offset    int           `json:"offset,omitempty"`
	Stats     CapturerStats `json:"stats"`
	Incidents []Digest      `json:"incidents"`
}

// parseQuery reads the incident filter parameters:
//
//	id=<inc-...>     one incident (full record; add export=1 for a
//	                 replayable scenario)
//	trace=<id>       one causal chain
//	device=<name>    one device
//	kind=<kind>      one incident kind
//	sev=<name>       minimum severity
//	since/until=<dur|rfc3339>  OpenedAt range
//	offset=<n>, limit=<n>      pagination (limit defaults to 64)
func parseQuery(req *http.Request) (Query, error) {
	q := Query{Limit: 64}
	v := req.URL.Query()
	if s := v.Get("trace"); s != "" {
		id, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return q, errBadParam{"trace", s}
		}
		q.TraceID = id
	}
	q.Device = v.Get("device")
	q.Kind = v.Get("kind")
	if s := v.Get("sev"); s != "" {
		sev, ok := journal.ParseSeverity(s)
		if !ok {
			return q, errBadParam{"sev", s}
		}
		q.MinSeverity = sev
	}
	if s := v.Get("since"); s != "" {
		t, err := parseTimeBound(s)
		if err != nil {
			return q, errBadParam{"since", s}
		}
		q.Since = t
	}
	if s := v.Get("until"); s != "" {
		t, err := parseTimeBound(s)
		if err != nil {
			return q, errBadParam{"until", s}
		}
		q.Until = t
	}
	if s := v.Get("offset"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return q, errBadParam{"offset", s}
		}
		q.Offset = n
	}
	if s := v.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return q, errBadParam{"limit", s}
		}
		q.Limit = n
	}
	return q, nil
}

// parseTimeBound accepts a relative duration ("5m" = five minutes
// ago) or an absolute RFC3339 timestamp.
func parseTimeBound(s string) (time.Time, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return time.Now().Add(-d), nil
	}
	return time.Parse(time.RFC3339, s)
}

type errBadParam struct{ name, value string }

func (e errBadParam) Error() string { return "bad " + e.name + " parameter: " + e.value }

// Handler serves the incident index (mount at /debug/incidents).
// Plain GETs list digests filtered by the query parameters; id=
// returns one full incident; id=&export=1 returns its replayable
// scenario.
func (c *Capturer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if id := req.URL.Query().Get("id"); id != "" {
			inc, ok := c.Get(id)
			if !ok {
				http.Error(w, "unknown incident "+id, http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if req.URL.Query().Get("export") == "1" {
				_ = enc.Encode(ExportScenario(inc, 0))
				return
			}
			_ = enc.Encode(inc)
			return
		}
		q, err := parseQuery(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		page, total := c.Incidents(q)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&ListJSON{
			TakenAt:   time.Now(),
			Total:     total,
			Offset:    q.Offset,
			Stats:     c.Stats(),
			Incidents: page,
		})
	})
}
