package core

import (
	"sync"
	"testing"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/device"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
	"iotsec/internal/resilience"
)

// TestSuperviseControllersRecoversQuarantine proves the platform-level
// wiring: a partitioned platform puts its locals under supervision, a
// quarantine posture lands in the checkpoint via QuarantinedOf, the
// crashed partition re-homes, and the replacement keeps serving the
// partition's devices.
func TestSuperviseControllersRecoversQuarantine(t *testing.T) {
	names := []string{"sa0", "sa1", "sb0", "sb1"}
	d := policy.NewDomain()
	f := policy.NewFSM(d)
	for _, name := range names {
		d.AddDevice(name, policy.ContextNormal, policy.ContextSuspicious)
		d.AddEnvVar(name+"_attr", "a", "q")
		f.AddRule(policy.Rule{
			Name:       "quar-" + name,
			Conditions: []policy.Condition{policy.EnvIs(name+"_attr", "q")},
			Device:     name,
			Posture:    policy.Posture{Isolate: true},
			Priority:   9,
		})
	}
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		stb := device.NewSetTopBox(name, packet.MustParseIPv4("10.0.9."+string(rune('1'+i))))
		if _, err := p.AddDevice(stb.Device); err != nil {
			t.Fatal(err)
		}
	}
	p.Start()
	defer p.Stop()

	clock := resilience.NewFakeClock(time.Unix(1_700_000_000, 0))
	envLocality := map[string]int{}
	var mu sync.Mutex
	failovers := 0
	var rec controller.FailoverRecord
	opts := SupervisionOptions{
		Edges: []controller.InteractionEdge{
			{A: "sa0", B: "sa1", Weight: 10},
			{A: "sb0", B: "sb1", Weight: 10},
		},
		MaxGroupSize:    2,
		EnvLocality:     envLocality,
		Heartbeat:       100 * time.Millisecond,
		Misses:          2,
		CheckpointEvery: -1,
		Clock:           clock,
		OnFailover: func(r controller.FailoverRecord) {
			mu.Lock()
			failovers++
			rec = r
			mu.Unlock()
		},
	}
	// Env locality must reference the groups the platform will compute;
	// pre-compute the same partitioning to fill it.
	part := controller.Partition(names, opts.Edges, opts.MaxGroupSize)
	for _, name := range names {
		envLocality[name+"_attr"] = part.GroupOf(name)
	}
	opts.Partitioning = part

	h, sup := p.SuperviseControllers(opts)
	if h.Locals() != 2 {
		t.Fatalf("locals = %d, want 2", h.Locals())
	}
	if h2, sup2 := p.SuperviseControllers(opts); h2 != h || sup2 != sup {
		t.Fatal("SuperviseControllers is not idempotent")
	}

	// Quarantine sa0 through the normal platform event path.
	p.ReportDeviceEvent(device.Event{Device: "sa0", Kind: device.EventStateChange, Detail: "attr=q"})
	sup.Checkpoint()
	g := part.GroupOf("sa0")
	ck, ok := sup.Checkpoints().Latest(g)
	if !ok {
		t.Fatal("no checkpoint for sa0's partition")
	}
	if len(ck.Quarantined) != 1 || ck.Quarantined[0] != "sa0" {
		t.Fatalf("checkpoint quarantined = %v, want [sa0]", ck.Quarantined)
	}
	if ck.Vars["env:sa0_attr"] != "q" {
		t.Fatalf("checkpoint vars = %v, missing sa0_attr=q", ck.Vars)
	}

	// Crash the partition's controller and let the deadman find it.
	h.LocalFor(g).Kill()
	for i := 0; i < 20; i++ {
		sup.Tick()
		mu.Lock()
		done := failovers
		mu.Unlock()
		if done > 0 {
			break
		}
		clock.Advance(100 * time.Millisecond)
	}
	mu.Lock()
	r := rec
	done := failovers
	mu.Unlock()
	if done != 1 {
		t.Fatalf("failovers = %d, want 1", done)
	}
	if r.QuarantinesRepushed != 1 {
		t.Fatalf("quarantines re-pushed = %d, want 1", r.QuarantinesRepushed)
	}
	if r.Target == "global" || r.Target == "" {
		t.Fatalf("target = %q, want the surviving shard", r.Target)
	}
	if _, ok := p.Supervision(); ok == nil {
		t.Fatal("Supervision() lost the supervisor")
	}

	// The replacement serves the partition: releasing the quarantine
	// through the platform path clears it from the next checkpoint.
	p.ReportDeviceEvent(device.Event{Device: "sa0", Kind: device.EventStateChange, Detail: "attr=a"})
	sup.Checkpoint()
	ck, ok = sup.Checkpoints().Latest(g)
	if !ok {
		t.Fatal("no post-recovery checkpoint")
	}
	if len(ck.Quarantined) != 0 {
		t.Fatalf("post-release checkpoint quarantined = %v, want empty", ck.Quarantined)
	}
}
