package netsim

import (
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/openflow"
	"iotsec/internal/resilience"
)

// FailMode selects how a SwitchAgent degrades while its southbound
// session is down — the fail-safe policy §5.1 requires the
// enforcement layer to have.
type FailMode int

// Degradation policies.
const (
	// FailStatic keeps serving the installed flow table (quarantine
	// drop rules always survive locally, since they live in the table)
	// and buffers punted PACKET_INs and FLOW_REMOVED notifications in
	// a bounded ring, replaying them after the re-handshake.
	FailStatic FailMode = iota
	// FailClosed drops table-miss traffic while disconnected: punts
	// are discarded (and counted) instead of buffered. FLOW_REMOVED
	// notifications are still buffered — they report state the
	// controller must eventually learn.
	FailClosed
)

// String names the mode for logs and flags.
func (m FailMode) String() string {
	switch m {
	case FailStatic:
		return "static"
	case FailClosed:
		return "closed"
	default:
		return fmt.Sprintf("failmode(%d)", int(m))
	}
}

// ParseFailMode maps a flag value to a FailMode.
func ParseFailMode(s string) (FailMode, error) {
	switch s {
	case "static", "":
		return FailStatic, nil
	case "closed":
		return FailClosed, nil
	}
	return FailStatic, fmt.Errorf("netsim: unknown fail mode %q (want static|closed)", s)
}

// AgentOptions configure the supervised southbound channel.
type AgentOptions struct {
	// FailMode selects degradation while disconnected (default
	// FailStatic).
	FailMode FailMode
	// BufferCap bounds the degradation ring (default 1024 events).
	BufferCap int
	// Backoff parameterizes the reconnect schedule (full jitter,
	// capped; zero fields take resilience defaults). MaxElapsed, if
	// set, makes the supervisor give up for good once a single outage
	// exceeds the budget.
	Backoff resilience.BackoffOptions
	// Dial overrides the transport dial (fault-injection hook);
	// nil uses net.DialTimeout("tcp", addr, 2s).
	Dial func(addr string) (net.Conn, error)
	// DisableReconnect reproduces the legacy one-shot behaviour: the
	// agent dies when the first session drops (used by a few
	// experiments that measure a single session).
	DisableReconnect bool
}

// SwitchAgent connects a Switch to a controller over the southbound
// wire protocol: it punts table misses as PACKET_IN, applies FLOW_MOD
// and PACKET_OUT, answers FEATURES/ECHO/BARRIER/STATS, and reports
// expired entries as FLOW_REMOVED.
//
// The connection is supervised: when the session drops, a supervisor
// goroutine redials with jittered exponential backoff, re-runs the
// (controller-driven) handshake, and replays events buffered while
// disconnected. Degradation while down follows AgentOptions.FailMode.
type SwitchAgent struct {
	sw   *Switch
	addr string
	opts AgentOptions

	mu   sync.Mutex
	conn *openflow.Conn // nil while disconnected

	// buffer holds events that could not be sent; replayed on
	// re-handshake (fail-static) or drained-and-dropped (fail-closed
	// punts are never buffered in the first place).
	buffer *resilience.Ring[openflow.Message]

	connected  atomic.Bool
	reconnects atomic.Uint64
	replayed   atomic.Uint64
	puntsDrop  atomic.Uint64
	outageWarn atomic.Bool // Warn journaled once per outage

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// ConnectAgent dials the controller at addr, runs the handshake
// passively (the controller drives it) and starts the agent loops.
// The first dial is synchronous — an unreachable controller is
// reported immediately — but the session is supervised from then on:
// later disconnects trigger backoff-paced reconnects with default
// options. Use SuperviseAgent for custom options or a fully
// asynchronous start.
func ConnectAgent(sw *Switch, addr string) (*SwitchAgent, error) {
	a := newAgent(sw, addr, AgentOptions{})
	raw, err := a.dial()
	if err != nil {
		return nil, fmt.Errorf("netsim: agent dial controller: %w", err)
	}
	a.start(openflow.NewConn(raw))
	return a, nil
}

// SuperviseAgent starts a supervised agent without waiting for the
// first dial to succeed: if the controller is down, the supervisor
// keeps retrying on the backoff schedule. It never returns an error;
// inspect Connected to observe session state.
func SuperviseAgent(sw *Switch, addr string, opts AgentOptions) *SwitchAgent {
	a := newAgent(sw, addr, opts)
	a.start(nil)
	return a
}

func newAgent(sw *Switch, addr string, opts AgentOptions) *SwitchAgent {
	if opts.BufferCap < 1 {
		opts.BufferCap = 1024
	}
	return &SwitchAgent{
		sw:      sw,
		addr:    addr,
		opts:    opts,
		buffer:  resilience.NewRing[openflow.Message](opts.BufferCap),
		stopped: make(chan struct{}),
	}
}

// start wires the switch and launches the supervisor + expiry loops.
func (a *SwitchAgent) start(initial *openflow.Conn) {
	a.sw.SetPacketInHandler(a.onPacketIn)
	a.wg.Add(2)
	go a.supervise(initial)
	go a.expiryLoop()
}

// dial opens the raw transport.
func (a *SwitchAgent) dial() (net.Conn, error) {
	if a.opts.Dial != nil {
		return a.opts.Dial(a.addr)
	}
	return net.DialTimeout("tcp", a.addr, 2*time.Second)
}

// supervise owns the connection lifecycle: (re)dial with backoff,
// serve the session until it drops, degrade, repeat.
func (a *SwitchAgent) supervise(conn *openflow.Conn) {
	defer a.wg.Done()
	bo := resilience.NewBackoff(a.opts.Backoff)
	first := true
	for {
		if conn == nil {
			conn = a.redial(bo)
			if conn == nil {
				return // stopped or reconnect budget exhausted
			}
		}
		bo.Reset() // reset-on-success: the next outage starts from Base
		a.sessionUp(conn, first)
		first = false
		a.serve(conn)
		a.sessionDown()
		conn = nil
		select {
		case <-a.stopped:
			return
		default:
		}
		if a.opts.DisableReconnect {
			a.Stop()
			return
		}
	}
}

// redial retries the dial on the backoff schedule until success, stop
// or budget exhaustion.
func (a *SwitchAgent) redial(bo *resilience.Backoff) *openflow.Conn {
	for {
		select {
		case <-a.stopped:
			return nil
		default:
		}
		raw, err := a.dial()
		if err == nil {
			return openflow.NewConn(raw)
		}
		delay, ok := bo.Next()
		if !ok {
			journal.RecordTrace(0, journal.TypeSouthDown, journal.Critical, "",
				fmt.Sprintf("dpid %d: reconnect budget exhausted after %d attempts; agent giving up",
					a.sw.DatapathID(), bo.Attempt()))
			a.Stop()
			return nil
		}
		t := time.NewTimer(delay)
		select {
		case <-a.stopped:
			t.Stop()
			return nil
		case <-t.C:
		}
	}
}

// sessionUp installs the live conn and journals the transition.
func (a *SwitchAgent) sessionUp(conn *openflow.Conn, first bool) {
	a.mu.Lock()
	a.conn = conn
	a.mu.Unlock()
	a.connected.Store(true)
	a.outageWarn.Store(false)
	if !first {
		a.reconnects.Add(1)
		mAgentReconnects.Inc()
		journal.RecordTrace(0, journal.TypeSouthUp, journal.Info, "",
			fmt.Sprintf("dpid %d: southbound session re-established (reconnect #%d, %d events buffered)",
				a.sw.DatapathID(), a.reconnects.Load(), a.buffer.Len()))
	}
}

// sessionDown clears the conn and engages the degradation policy.
func (a *SwitchAgent) sessionDown() {
	a.mu.Lock()
	conn := a.conn
	a.conn = nil
	a.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	a.connected.Store(false)
	select {
	case <-a.stopped:
		return // deliberate teardown, not an outage
	default:
	}
	if a.outageWarn.CompareAndSwap(false, true) {
		journal.RecordTrace(0, journal.TypeSouthDown, journal.Warn, "",
			fmt.Sprintf("dpid %d: southbound session lost; degrading fail-%s (table served locally, quarantine rules intact)",
				a.sw.DatapathID(), a.opts.FailMode))
	}
}

// current returns the live conn, or nil while disconnected.
func (a *SwitchAgent) current() *openflow.Conn {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.conn
}

// Connected reports whether a southbound session is currently live.
func (a *SwitchAgent) Connected() bool { return a.connected.Load() }

// Stopped reports whether the supervisor has terminated for good
// (Close was called or the reconnect budget is exhausted) — the
// health plane's "this link will not come back by itself" signal.
func (a *SwitchAgent) Stopped() bool {
	select {
	case <-a.stopped:
		return true
	default:
		return false
	}
}

// Reconnects reports how many times the supervisor re-established the
// session.
func (a *SwitchAgent) Reconnects() uint64 { return a.reconnects.Load() }

// FailMode reports the configured degradation stance.
func (a *SwitchAgent) FailMode() FailMode { return a.opts.FailMode }

// BufferedEvents reports the degradation ring depth.
func (a *SwitchAgent) BufferedEvents() int { return a.buffer.Len() }

// Replayed reports how many buffered events were replayed across all
// reconnects.
func (a *SwitchAgent) Replayed() uint64 { return a.replayed.Load() }

// PuntsDropped reports punts discarded under fail-closed degradation.
func (a *SwitchAgent) PuntsDropped() uint64 { return a.puntsDrop.Load() }

// onPacketIn relays a punted frame to the controller, routing it into
// the degradation path when the session is down. Send errors are no
// longer discarded: a failed send tears the conn down (waking the
// supervisor) and the event enters the buffer or the drop counter.
func (a *SwitchAgent) onPacketIn(inPort uint16, reason uint8, frame Frame) {
	a.deliver(&openflow.PacketIn{
		DatapathID: a.sw.DatapathID(),
		InPort:     inPort,
		Reason:     reason,
		Data:       frame,
	}, true)
}

// deliver sends m on the live session or degrades. isPunt
// distinguishes PACKET_IN (droppable under fail-closed) from
// FLOW_REMOVED (always buffered: the controller must eventually learn
// about expired state).
func (a *SwitchAgent) deliver(m openflow.Message, isPunt bool) {
	if conn := a.current(); conn != nil {
		if _, err := conn.Send(m); err == nil {
			return
		}
		// The session is half-dead: close it so the supervisor's
		// Receive unblocks and the reconnect loop engages, then treat
		// this event as disconnected-era.
		mAgentSendErrors.Inc()
		_ = conn.Close()
	}
	a.degrade(m, isPunt)
}

// degrade applies the fail-mode policy to one undeliverable event.
func (a *SwitchAgent) degrade(m openflow.Message, isPunt bool) {
	if isPunt && a.opts.FailMode == FailClosed {
		a.puntsDrop.Add(1)
		mPuntsDropped.Inc()
		return
	}
	if a.buffer.Push(m) {
		// Ring full: the oldest event was evicted to make room.
		mBufferEvictions.Inc()
		if isPunt {
			mPuntsDropped.Inc()
		}
	} else {
		mReplayDepth.Inc()
	}
}

// replay drains the degradation buffer onto a fresh session. Called
// from serve after the feature handshake completes, so the controller
// has already registered the switch. Events arrive exactly once: the
// ring is drained atomically and unsent remainders are re-buffered
// only if the session dies mid-replay.
func (a *SwitchAgent) replay(conn *openflow.Conn) {
	events := a.buffer.Drain()
	if len(events) == 0 {
		return
	}
	mReplayDepth.Add(-int64(len(events)))
	sent := 0
	for i, m := range events {
		if _, err := conn.Send(m); err != nil {
			// Session died mid-replay: re-buffer the unsent tail (the
			// failed event's delivery is unknown; re-buffering it risks
			// a duplicate, dropping it risks a loss — we re-buffer,
			// preferring at-least-once for security state).
			for _, rest := range events[i:] {
				a.degrade(rest, false)
			}
			_ = conn.Close()
			break
		}
		sent++
	}
	a.replayed.Add(uint64(sent))
	mAgentReplayed.Add(uint64(sent))
	journal.RecordTrace(0, journal.TypeSouthReplay, journal.Info, "",
		fmt.Sprintf("dpid %d: replayed %d/%d buffered events after re-handshake (%d evicted during outage)",
			a.sw.DatapathID(), sent, len(events), a.buffer.Evicted()))
}

// serve answers controller requests on one session until it drops.
func (a *SwitchAgent) serve(conn *openflow.Conn) {
	for {
		m, xid, err := conn.Receive()
		if err != nil {
			return
		}
		switch msg := m.(type) {
		case *openflow.Hello:
			_ = conn.SendWithXID(&openflow.Hello{}, xid)
		case *openflow.FeaturesRequest:
			_ = conn.SendWithXID(&openflow.FeaturesReply{
				DatapathID: a.sw.DatapathID(),
				Ports:      a.sw.PortIDs(),
			}, xid)
			// The feature reply completes the (re-)handshake: the
			// controller now knows this switch, so buffered events from
			// the outage can follow.
			a.replay(conn)
		case *openflow.Echo:
			if !msg.Reply {
				_ = conn.SendWithXID(&openflow.Echo{Reply: true, Payload: msg.Payload}, xid)
			}
		case *openflow.FlowMod:
			a.applyFlowMod(conn, msg, xid)
		case *openflow.PacketOut:
			a.sw.ApplyActions(msg.Actions, msg.InPort, Frame(msg.Data))
		case *openflow.BarrierRequest:
			// Messages are processed in order on this single loop, so
			// everything before the barrier has already been applied.
			_ = conn.SendWithXID(&openflow.BarrierReply{}, xid)
		case *openflow.StatsRequest:
			in, out, miss, flows := a.sw.Stats()
			// Clamp instead of silently truncating a table larger than
			// 2^32 entries (absurd today, but silent wraparound in a
			// security telemetry path is how absurdities hide).
			fc := uint32(math.MaxUint32)
			if flows >= 0 && uint64(flows) < math.MaxUint32 {
				fc = uint32(flows)
			}
			_ = conn.SendWithXID(&openflow.StatsReply{
				DatapathID: a.sw.DatapathID(),
				FlowCount:  fc,
				PacketsIn:  in,
				PacketsOut: out,
				TableMiss:  miss,
			}, xid)
		default:
			_ = conn.SendWithXID(&openflow.ErrorMsg{Code: 1, Text: "unsupported " + m.Type().String()}, xid)
		}
	}
}

func (a *SwitchAgent) applyFlowMod(conn *openflow.Conn, fm *openflow.FlowMod, xid uint32) {
	switch fm.Command {
	case openflow.FlowAdd:
		a.sw.Table().Insert(openflow.FlowEntry{
			Match:       fm.Match,
			Priority:    fm.Priority,
			Actions:     fm.Actions,
			IdleTimeout: fm.IdleTimeout,
			HardTimeout: fm.HardTimeout,
			Cookie:      fm.Cookie,
		})
	case openflow.FlowDelete:
		a.sw.Table().Delete(fm.Match)
	case openflow.FlowDeleteByCookie:
		a.sw.Table().DeleteByCookie(fm.Cookie)
	default:
		// Carry the offending cookie and trace ID so the forensic
		// timeline on the controller side can attribute the rejected
		// mod to the causal chain that emitted it.
		_ = conn.SendWithXID(&openflow.ErrorMsg{
			Code: 2,
			Text: fmt.Sprintf("unknown flow-mod command %d (cookie %#x trace %d)",
				uint8(fm.Command), fm.Cookie, fm.TraceID),
		}, xid)
		return
	}
	// Journal the application on the switch side of the wire; the
	// trace ID rode inside the FLOW_MOD, proving the causal chain
	// crossed the southbound protocol.
	journal.RecordTrace(fm.TraceID, journal.TypeFlowApplied, journal.Debug, "",
		fmt.Sprintf("dpid %d: %s prio %d cookie %#x", a.sw.DatapathID(), fm.Command, fm.Priority, fm.Cookie))
}

// expiryLoop periodically evicts timed-out flows and notifies the
// controller. It runs for the agent's lifetime (across sessions);
// FLOW_REMOVED notifications raised while disconnected enter the
// degradation buffer and are replayed on reconnect.
func (a *SwitchAgent) expiryLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-a.stopped:
			return
		case now := <-ticker.C:
			for _, e := range a.sw.ExpireFlows(now) {
				pkts, bytes := e.Stats()
				a.deliver(&openflow.FlowRemoved{
					DatapathID: a.sw.DatapathID(),
					Match:      e.Match,
					Priority:   e.Priority,
					Cookie:     e.Cookie,
					Packets:    pkts,
					Bytes:      bytes,
				}, false)
			}
		}
	}
}

// Stop tears the agent down: the supervisor quits, the session (if
// any) closes, and the loops exit.
func (a *SwitchAgent) Stop() {
	a.stopOnce.Do(func() {
		close(a.stopped)
		if conn := a.current(); conn != nil {
			_ = conn.Close()
		}
	})
}

// Wait blocks until the agent's goroutines have exited.
func (a *SwitchAgent) Wait() { a.wg.Wait() }
