// Audit: verify a security policy BEFORE deploying it (§3.2's
// correctness-checking challenge). The deployment's device models —
// one of them extracted automatically from a live emulated device —
// feed an attack-graph search that audits each policy state: in which
// world states can an attacker still reach the bad outcome, and via
// which concrete path?
package main

import (
	"fmt"
	"log"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/learn"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

func main() {
	// --- step 1: extract the window actuator's model from a live
	// unit on an instrumented testbed ---
	fmt.Println("--- extracting the window model from a live device ---")
	winModel := extractWindowModel()
	fmt.Printf("extracted: states=%v initial=%s transitions=%d\n",
		winModel.States, winModel.Initial, len(winModel.Transitions))

	// --- step 2: assemble the abstract deployment ---
	lib := learn.StandardLibrary()
	build := func() *learn.World {
		w := learn.NewWorld(map[string]string{
			"temperature": "normal", "window": "closed", "smoke": "no",
		})
		plugModel, _ := lib.Get("plug")
		alarmModel, _ := lib.Get("fire-alarm")
		w.AddInstance("plug", plugModel)
		w.AddInstance("window", winModel) // the extracted one
		w.AddInstance("firealarm", alarmModel)
		return w
	}

	// --- step 3: the candidate policy (Figure 3, verbatim) ---
	d := policy.NewDomain()
	d.AddDevice("firealarm", policy.ContextNormal, policy.ContextSuspicious)
	d.AddDevice("window", policy.ContextNormal, policy.ContextSuspicious)
	d.AddDevice("plug", policy.ContextNormal, policy.ContextSuspicious)
	fsm := policy.NewFSM(d)
	fsm.AddRule(policy.Rule{
		Name:       "alarm-suspicious-blocks-window-open",
		Conditions: []policy.Condition{policy.DeviceIs("firealarm", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{BlockCommands: []string{"OPEN"}},
		Priority:   10,
	})

	// --- step 4: audit states against the break-in goal ---
	search := &learn.AttackSearch{
		Build:      build,
		Vulnerable: map[string]bool{"window": true, "plug": true},
		MaxDepth:   8,
	}
	bad := learn.GoalDeviceState("window", "open")

	normal := d.DefaultState()
	alarmSuspicious := normal.Clone()
	alarmSuspicious.Contexts["firealarm"] = policy.ContextSuspicious

	fmt.Println("\n--- auditing the Figure 3 policy ---")
	reports := learn.VerifyPolicyStates(search, fsm, []policy.State{normal, alarmSuspicious}, bad)
	for key, r := range reports {
		if r.Holds {
			fmt.Printf("SAFE    %s\n", key)
		} else {
			fmt.Printf("UNSAFE  %s\n        witness: %s\n", key, learn.PathString(r.Witness))
		}
	}

	// --- step 5: the audit exposes the implicit route; patch the
	// policy and re-verify ---
	fmt.Println("\n--- patching the policy with the implicit-route mitigation ---")
	fsm.AddRule(policy.Rule{
		Name:       "alarm-suspicious-blocks-plug-heat",
		Conditions: []policy.Condition{policy.DeviceIs("firealarm", policy.ContextSuspicious)},
		Device:     "plug",
		Posture:    policy.Posture{BlockCommands: []string{"ON"}},
		Priority:   10,
	})
	report := learn.CheckSafety(search, fsm.Lookup(alarmSuspicious), bad)
	if report.Holds {
		fmt.Println("patched policy verified: no attack path reaches 'window open' while the alarm is suspicious ✔")
	} else {
		log.Fatalf("still unsafe: %s", learn.PathString(report.Witness))
	}
	// The all-normal state intentionally allows opening the window —
	// the audit distinguishes "reachable by design" from "reachable
	// by attack" through which states you ask about.
	fmt.Println("\n(the all-normal state stays permissive by design: the owner may open windows)")
}

// extractWindowModel drives a live emulated window actuator on a
// throwaway testbed and returns its learned abstract model.
func extractWindowModel() *learn.Model {
	n := netsim.NewNetwork()
	sw := netsim.NewSwitch("sw", 1)
	sw.SetMissBehavior(netsim.MissFlood)
	env := envsim.StandardHome()

	win := device.NewWindowActuator("win", packet.MustParseIPv4("10.0.0.10"))
	port, err := win.Device.Attach(n)
	if err != nil {
		log.Fatal(err)
	}
	n.Connect(port, sw.AttachPort(n, 1), netsim.LinkOptions{})
	win.BindEnvironment(env)

	probeIP := packet.MustParseIPv4("10.0.0.200")
	probe := netsim.NewStack("probe", device.MACFor(probeIP), probeIP)
	n.Connect(probe.Attach(n), sw.AttachPort(n, 2), netsim.LinkOptions{})
	n.Start()
	defer func() {
		probe.Stop()
		win.Stop()
		n.Stop()
	}()

	tb := &learn.Testbed{
		Client:   &device.Client{Stack: probe, Timeout: time.Second},
		Device:   win.Device,
		Env:      env,
		Disc:     envsim.StandardDiscretizer(),
		StateKey: "window",
		User:     "admin",
		Pass:     device.WindowPassword,
	}
	m, err := learn.ExtractModel(tb, "window-extracted", []string{"OPEN", "CLOSE"})
	if err != nil {
		log.Fatal(err)
	}
	// Graft the known IFTTT observation (open when hot) the testbed
	// cannot elicit without a heat source: community models combine
	// extracted transitions with curated observations.
	m.Observations = append(m.Observations, learn.Observation{
		Var: "temperature", Level: "high", ToState: "open",
	})
	return m
}
