package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"iotsec/internal/core"
	"iotsec/internal/forensics"
)

// buildIotsecd compiles the daemon once per test invocation.
func buildIotsecd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "iotsecd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon wraps one running iotsecd process, scanning its stdout for
// the admin and telemetry addresses.
type daemon struct {
	cmd   *exec.Cmd
	mu    sync.Mutex
	out   []string
	admin string
	debug string
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{cmd: exec.Command(bin, args...)}
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = d.cmd.Stdout
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.out = append(d.out, line)
			if strings.Contains(line, "admin API on ") {
				rest := strings.SplitN(line, "admin API on ", 2)[1]
				d.admin = strings.TrimSpace(strings.Fields(rest)[0])
			}
			if strings.Contains(line, "telemetry on http://") {
				rest := strings.SplitN(line, "telemetry on http://", 2)[1]
				d.debug = strings.TrimSuffix(strings.TrimSpace(rest), "/metrics")
			}
			d.mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		_ = d.cmd.Process.Kill()
		_, _ = d.cmd.Process.Wait()
	})
	return d
}

func (d *daemon) waitReady(t *testing.T) (admin, debug string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		d.mu.Lock()
		admin, debug = d.admin, d.debug
		d.mu.Unlock()
		if admin != "" && debug != "" {
			return admin, debug
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon never reported its addresses; output:\n%s", d.dump())
	return "", ""
}

func (d *daemon) dump() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return strings.Join(d.out, "\n")
}

func (d *daemon) sawLine(substr string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, l := range d.out {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatalf("daemon did not exit on SIGTERM; output:\n%s", d.dump())
	}
}

// getIncidents fetches and decodes /debug/incidents with a query.
func getIncidents(t *testing.T, debugAddr, query string) forensics.ListJSON {
	t.Helper()
	resp, err := http.Get("http://" + debugAddr + "/debug/incidents" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list forensics.ListJSON
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("incidents response: %v", err)
	}
	return list
}

// TestIotsecdForensicsRestartSmoke is the operational smoke test for
// the incident forensics plane: a real iotsecd process (small journal
// ring, durable store) captures an admin-injected anomaly chain as an
// incident, seals it into the store on SIGTERM, and after a restart
// reopens the segments, reports the recovery, serves the pre-restart
// incident (including a valid replay export), and resumes appending
// new captures to the same store.
func TestIotsecdForensicsRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildIotsecd(t)
	// CI points IOTSEC_FORENSICS_DIR at the workspace so the segment
	// files survive as an artifact when the test fails.
	dir := os.Getenv("IOTSEC_FORENSICS_DIR")
	if dir == "" {
		dir = filepath.Join(t.TempDir(), "incidents")
	}
	args := []string{
		"-listen", "127.0.0.1:0",
		"-telemetry-addr", "127.0.0.1:0",
		"-tick", "100ms",
		"-journal-cap", "256",
		"-forensics-dir", dir,
	}

	// Run 1: capture a real chain.
	d := startDaemon(t, bin, args...)
	admin, debug := d.waitReady(t)
	if _, err := core.AdminCall(admin, core.AdminRequest{
		Op: "inject-anomaly", Device: "window", Value: "restart smoke drill",
	}); err != nil {
		t.Fatalf("inject-anomaly: %v\n%s", err, d.dump())
	}
	var incID string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if list := getIncidents(t, debug, "?device=window"); list.Total >= 1 {
			incID = list.Incidents[0].ID
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if incID == "" {
		t.Fatalf("incident never appeared at /debug/incidents; output:\n%s", d.dump())
	}
	d.stop(t) // SIGTERM force-seals open incidents into the store

	// Run 2: same store directory.
	d2 := startDaemon(t, bin, args...)
	_, debug2 := d2.waitReady(t)
	if !d2.sawLine("incident(s) recovered") {
		t.Fatalf("restart did not report store recovery; output:\n%s", d2.dump())
	}

	// The pre-restart incident is served from the reopened store.
	list := getIncidents(t, debug2, "?device=window")
	if list.Total < 1 {
		t.Fatalf("pre-restart incident lost across restart: %+v", list)
	}
	found := false
	for _, dg := range list.Incidents {
		if dg.ID == incID {
			found = true
		}
	}
	if !found {
		t.Fatalf("incident %s not in post-restart listing %+v", incID, list.Incidents)
	}

	// Its replay export still validates.
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/incidents?id=%s&export=1", debug2, incID))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		buf.WriteString(sc.Text())
	}
	resp.Body.Close()
	scenario, err := forensics.LoadScenario([]byte(buf.String()))
	if err != nil {
		t.Fatalf("pre-restart incident no longer exports a valid scenario: %v", err)
	}
	if scenario.Device != "window" || scenario.Incident != incID {
		t.Fatalf("exported scenario identity wrong: %+v", scenario)
	}

	// The reopened store accepts new captures (rotation resumed on the
	// same segment sequence).
	admin2, _ := d2.waitReady(t)
	if _, err := core.AdminCall(admin2, core.AdminRequest{
		Op: "inject-anomaly", Device: "firealarm", Value: "post-restart drill",
	}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if list := getIncidents(t, debug2, "?device=firealarm"); list.Total >= 1 {
			d2.stop(t)
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("post-restart capture never appeared; output:\n%s", d2.dump())
}
