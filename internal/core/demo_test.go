package core

import (
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/policy"
)

// TestDemoHomeScenarios drives the reference deployment through all
// three paper use cases in one session.
func TestDemoHomeScenarios(t *testing.T) {
	p, err := DemoHome()
	if err != nil {
		t.Fatal(err)
	}
	p.Env.Set(envsim.VarOccupancy, 0)
	p.Start()
	defer p.Stop()
	p.RunEnvironment(1)

	attacker := newClient(t, p, "10.0.0.200")
	cam, _ := p.Device("cam")
	wemo, _ := p.Device("wemo")
	alarm, _ := p.Device("firealarm")
	win, _ := p.Device("window")

	// Figure 4: factory creds dead; admin creds live.
	if _, err := attacker.Call(cam.Device.IP(), device.Request{Cmd: "SNAPSHOT", User: "admin", Pass: "admin"}); err == nil {
		t.Error("fig4: factory creds worked")
	}
	if resp, err := attacker.Call(cam.Device.IP(), device.Request{Cmd: "SNAPSHOT", User: "homeadmin", Pass: "Str0ng!pass"}); err != nil || !resp.OK {
		t.Errorf("fig4: admin creds failed: %v %+v", err, resp)
	}

	// Figure 5 + signature: the Wemo backdoor is double-dead — the
	// IDS signature marks the device compromised and the quarantine
	// rule isolates it.
	if _, err := attacker.Call(wemo.Device.IP(), device.Request{Cmd: "ON", Args: []string{device.PlugBackdoorToken}}); err == nil {
		t.Error("fig5: backdoor ON worked while away")
	}
	if !p.WaitForContext("wemo", policy.ContextCompromised, 2*time.Second) {
		t.Error("signature hit did not escalate the wemo")
	}

	// Figure 3: alarm backdoor → window OPEN blocked.
	if _, err := attacker.Call(alarm.Device.IP(), device.Request{Cmd: "TEST", Args: []string{device.AlarmBackdoorToken}}); err != nil {
		t.Fatalf("fig3: alarm backdoor transport error: %v", err)
	}
	if !p.WaitForContext("firealarm", policy.ContextSuspicious, 2*time.Second) {
		t.Fatal("fig3: alarm never suspicious")
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := attacker.Call(win.Device.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: device.WindowPassword}); err == nil {
		t.Error("fig3: window OPEN not blocked")
	}

	// The thermostat keeps doing its job throughout.
	th, _ := p.Device("thermostat")
	if resp, err := attacker.Call(th.Device.IP(), device.Request{Cmd: "READ", User: "nest", Pass: "nest"}); err != nil || !resp.OK {
		t.Errorf("thermostat unavailable: %v %+v", err, resp)
	}
}
