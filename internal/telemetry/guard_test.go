package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestDebugSurfacesLoopbackOnly verifies the default access policy on
// a telemetry server: /metrics answers any client, but the /debug/
// surfaces (pprof, snapshot, mounts such as the forensic journal) are
// loopback-only until AllowRemoteDebug opts in.
func TestDebugSurfacesLoopbackOnly(t *testing.T) {
	r := NewRegistry()
	mounted := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "journal")
	})
	srv, addr, err := r.Serve("127.0.0.1:0", Mount{Pattern: "/debug/journal", Handler: mounted})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Over the real listener the client is loopback: everything works.
	for _, path := range []string{"/metrics", "/debug/telemetry", "/debug/journal", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("loopback GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}

	// Simulate a routable client against the same mux.
	remote := func(path string) int {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		req.RemoteAddr = "203.0.113.9:40000"
		rec := httptest.NewRecorder()
		srv.srv.Handler.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := remote("/metrics"); code != http.StatusOK {
		t.Errorf("remote /metrics: status %d, want 200 (scrapers must stay remote-reachable)", code)
	}
	for _, path := range []string{"/debug/telemetry", "/debug/journal", "/debug/pprof/"} {
		if code := remote(path); code != http.StatusForbidden {
			t.Errorf("remote %s: status %d, want 403", path, code)
		}
	}

	// Opting in opens the debug surfaces.
	srv.AllowRemoteDebug()
	for _, path := range []string{"/debug/telemetry", "/debug/journal"} {
		if code := remote(path); code != http.StatusOK {
			t.Errorf("remote %s after AllowRemoteDebug: status %d, want 200", path, code)
		}
	}
}

// TestIsLoopback pins the guard's address parsing, including the
// fail-closed path for unparseable peers.
func TestIsLoopback(t *testing.T) {
	cases := map[string]bool{
		"127.0.0.1:5000":  true,
		"[::1]:5000":      true,
		"127.8.9.10:1":    true,
		"10.0.0.4:5000":   false,
		"203.0.113.9:80":  false,
		"[2001:db8::1]:1": false,
		"not-an-addr":     false,
		"":                false,
	}
	for addr, want := range cases {
		if got := isLoopback(addr); got != want {
			t.Errorf("isLoopback(%q) = %v, want %v", addr, got, want)
		}
	}
}
