package telemetry

import (
	"runtime"
	"time"
)

// processStart anchors the uptime gauge.
var processStart = time.Now()

// RegisterRuntimeStats installs a scrape-time collector exposing Go
// runtime health as iotsec_runtime_* gauges: goroutine count, heap
// usage, GC activity and process uptime. The collector reads
// runtime.ReadMemStats at scrape time only, so the hot paths pay
// nothing; re-registration replaces the previous collector, so it is
// idempotent.
func (r *Registry) RegisterRuntimeStats() {
	r.RegisterCollector("runtime", func(emit func(name string, kind Kind, help string, labels Labels, value float64)) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		emit("iotsec_runtime_goroutines", KindGauge,
			"Live goroutines.", nil, float64(runtime.NumGoroutine()))
		emit("iotsec_runtime_heap_alloc_bytes", KindGauge,
			"Bytes of allocated heap objects.", nil, float64(ms.HeapAlloc))
		emit("iotsec_runtime_heap_sys_bytes", KindGauge,
			"Heap memory obtained from the OS.", nil, float64(ms.HeapSys))
		emit("iotsec_runtime_heap_objects", KindGauge,
			"Live heap objects.", nil, float64(ms.HeapObjects))
		emit("iotsec_runtime_next_gc_bytes", KindGauge,
			"Heap size target of the next GC cycle.", nil, float64(ms.NextGC))
		emit("iotsec_runtime_gc_runs_total", KindCounter,
			"Completed GC cycles.", nil, float64(ms.NumGC))
		emit("iotsec_runtime_gc_pause_seconds_total", KindCounter,
			"Cumulative stop-the-world GC pause.", nil, float64(ms.PauseTotalNs)/1e9)
		lastPause := 0.0
		if ms.NumGC > 0 {
			lastPause = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
		}
		emit("iotsec_runtime_last_gc_pause_seconds", KindGauge,
			"Duration of the most recent GC pause.", nil, lastPause)
		emit("iotsec_runtime_uptime_seconds", KindGauge,
			"Seconds since the process registered runtime telemetry.", nil,
			time.Since(processStart).Seconds())
	})
}

// RegisterRuntimeStats installs the runtime collector on Default.
func RegisterRuntimeStats() { Default.RegisterRuntimeStats() }
