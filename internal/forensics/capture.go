package forensics

import (
	"sort"
	"sync"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/resilience"
	"iotsec/internal/telemetry"
)

// Options parameterizes a Capturer.
type Options struct {
	// Store receives sealed incidents (nil = memory-only capture; the
	// ring-eviction guarantee still holds, restart durability doesn't).
	Store *Store
	// Shard names this capturer's shard in digests and fleet reports.
	Shard string
	// Buffer is the journal subscription backlog (default 2048).
	Buffer int
	// Quiet seals an open incident after this long without new trace
	// events (default 2s).
	Quiet time.Duration
	// SweepEvery is the quiet-period sweep cadence (default 250ms).
	SweepEvery time.Duration
	// MaxOpen caps concurrently open incidents; opening events beyond
	// it are counted and dropped (default 128).
	MaxOpen int
	// MaxEvents caps events retained per incident; the chain head is
	// kept and the overflow counted as Truncated (default 512).
	MaxEvents int
	// Registry receives the iotsec_forensics_* collector (default
	// telemetry.Default).
	Registry *telemetry.Registry
	// Clock drives quiet-period sweeps (default the real clock).
	Clock resilience.Clock
	// SKUOf resolves a device name to its SKU for replay export (nil =
	// SKUs stay empty).
	SKUOf func(device string) string
}

// Capturer is the tail-based incident capture consumer: a single
// goroutine draining a drop-oldest journal subscription (the same
// attached-tap budget as the SLO tracker — one cursor bump per append
// on the hot path). Incident-opening events open an incident keyed by
// trace ID and backfill the trace's earlier events from the ring;
// subsequent events on an open trace are appended; a quiet period
// seals the incident and persists it to the store. Everything else —
// the overwhelming majority of traffic — never leaves the ring.
type Capturer struct {
	j     *journal.Journal
	sub   *journal.Subscription
	store *Store
	opt   Options
	clock resilience.Clock

	mu        sync.Mutex
	open      map[uint64]*openIncident
	captured  uint64 // incidents sealed
	events    uint64 // chain events captured
	openDrops uint64 // opening events dropped at MaxOpen

	syncCh chan chan struct{}
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
}

// openIncident is an incident still accumulating events.
type openIncident struct {
	inc     *Incident
	lastSeq uint64    // dedupe fence between ring backfill and live drain
	touched time.Time // last activity, by the capturer's clock
}

// NewCapturer attaches a capturer to j and starts its consumer.
func NewCapturer(j *journal.Journal, opt Options) *Capturer {
	if opt.Buffer <= 0 {
		opt.Buffer = 2048
	}
	if opt.Quiet <= 0 {
		opt.Quiet = 2 * time.Second
	}
	if opt.SweepEvery <= 0 {
		opt.SweepEvery = 250 * time.Millisecond
	}
	if opt.MaxOpen <= 0 {
		opt.MaxOpen = 128
	}
	if opt.MaxEvents <= 0 {
		opt.MaxEvents = 512
	}
	if opt.Clock == nil {
		opt.Clock = resilience.System
	}
	c := &Capturer{
		j:      j,
		sub:    j.Subscribe(opt.Buffer),
		store:  opt.Store,
		opt:    opt,
		clock:  opt.Clock,
		open:   make(map[uint64]*openIncident),
		syncCh: make(chan chan struct{}),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	c.register(opt.Registry)
	go c.run()
	return c
}

// run is the consumer loop: wake on pending events, tick for sweeps.
func (c *Capturer) run() {
	defer close(c.done)
	ticker := c.clock.NewTicker(c.opt.SweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-c.sub.Wait():
			c.handle(c.sub.Drain())
		case <-ticker.C():
			c.handle(c.sub.Drain())
			c.sweep(false)
		case ack := <-c.syncCh:
			c.handle(c.sub.Drain())
			c.sweep(false)
			close(ack)
		}
	}
}

// Sync drains and sweeps synchronously — the deterministic barrier
// tests pair with a fake clock.
func (c *Capturer) Sync() {
	ack := make(chan struct{})
	select {
	case c.syncCh <- ack:
		<-ack
	case <-c.done:
	}
}

// Close stops the consumer, drains the subscription backlog, and
// force-seals every open incident into the store — the shutdown flush
// that makes in-flight incidents survive a restart. Idempotent.
func (c *Capturer) Close() {
	c.once.Do(func() {
		close(c.stop)
		<-c.done
		c.sub.Close()
		c.handle(c.sub.Drain())
		c.sweep(true)
	})
}

// handle folds drained events into open incidents.
func (c *Capturer) handle(events []journal.Event) {
	if len(events) == 0 {
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range events {
		if e.TraceID == 0 {
			continue // routine, untraced traffic stays ring-only
		}
		if oi, ok := c.open[e.TraceID]; ok {
			c.appendLocked(oi, e, now)
			continue
		}
		kind, opens := KindOf(e.Type)
		if !opens {
			continue
		}
		if len(c.open) >= c.opt.MaxOpen {
			c.openDrops++
			continue
		}
		c.openLocked(e, kind, now)
	}
}

// openLocked opens an incident for e's trace, backfilling the trace's
// earlier events still in the ring — the pin that beats eviction: the
// chain is copied out of the ring the moment it becomes interesting.
func (c *Capturer) openLocked(e journal.Event, kind string, now time.Time) {
	inc := &Incident{
		ID:      IncidentID(e.TraceID),
		TraceID: e.TraceID,
		Kind:    kind,
		Device:  e.Device,
		Shard:   c.opt.Shard,
	}
	oi := &openIncident{inc: inc, touched: now}
	// A re-opening trace seeds from its stored record first, so the
	// eventual re-seal supersedes the store with the union of old and
	// new chain events rather than clobbering the original capture.
	if c.store != nil {
		if prev, ok := c.store.Get(inc.ID); ok {
			for _, pe := range prev.Events {
				c.appendLocked(oi, pe, now)
			}
			inc.Truncated += prev.Truncated
		}
	}
	// Snapshot includes e itself (it reached the ring before the tap
	// woke us) plus anything earlier on the trace.
	for _, pe := range c.j.Snapshot(journal.Filter{TraceID: e.TraceID}) {
		c.appendLocked(oi, pe, now)
	}
	if oi.lastSeq < e.Seq { // e already evicted from the ring: keep it anyway
		c.appendLocked(oi, e, now)
	}
	if inc.Device == "" {
		inc.Device = e.Device
	}
	if inc.SKU == "" && inc.Device != "" && c.opt.SKUOf != nil {
		inc.SKU = c.opt.SKUOf(inc.Device)
	}
	c.open[e.TraceID] = oi
}

// appendLocked adds one event to an open incident (dedupe by seq).
func (c *Capturer) appendLocked(oi *openIncident, e journal.Event, now time.Time) {
	if e.Seq <= oi.lastSeq {
		return
	}
	oi.lastSeq = e.Seq
	oi.touched = now
	inc := oi.inc
	if e.Severity > inc.Severity {
		inc.Severity = e.Severity
	}
	if inc.Device == "" && e.Device != "" {
		inc.Device = e.Device
		if c.opt.SKUOf != nil {
			inc.SKU = c.opt.SKUOf(e.Device)
		}
	}
	if len(inc.Events) >= c.opt.MaxEvents {
		inc.Truncated++
		return
	}
	if len(inc.Events) == 0 {
		inc.OpenedAt = e.Wall
	}
	inc.Events = append(inc.Events, e)
	c.events++
}

// sweep seals incidents whose quiet period elapsed (or all of them,
// when forced at shutdown).
func (c *Capturer) sweep(force bool) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for trace, oi := range c.open {
		if !force && now.Sub(oi.touched) < c.opt.Quiet {
			continue
		}
		c.sealLocked(oi)
		delete(c.open, trace)
	}
}

// sealLocked finalizes and persists one incident.
func (c *Capturer) sealLocked(oi *openIncident) {
	inc := oi.inc
	inc.Complete = chainComplete(inc.Kind, inc.Events)
	if n := len(inc.Events); n > 0 {
		inc.ClosedAt = inc.Events[n-1].Wall
	} else {
		inc.ClosedAt = c.clock.Now()
	}
	c.captured++
	if c.store != nil {
		_ = c.store.Put(inc)
	}
}

// Digests lists open and stored incidents, newest-opened first. An
// incident both open and stored (re-opened trace) surfaces once, the
// open view winning.
func (c *Capturer) Digests() []Digest {
	byID := make(map[string]Digest)
	if c.store != nil {
		for _, d := range c.store.Digests() {
			byID[d.ID] = d
		}
	}
	c.mu.Lock()
	for _, oi := range c.open {
		byID[oi.inc.ID] = oi.inc.Digest()
	}
	c.mu.Unlock()
	out := make([]Digest, 0, len(byID))
	for _, d := range byID {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].OpenedAt.Equal(out[j].OpenedAt) {
			return out[i].OpenedAt.After(out[j].OpenedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Get returns one incident by ID, open incidents first.
func (c *Capturer) Get(id string) (*Incident, bool) {
	c.mu.Lock()
	for _, oi := range c.open {
		if oi.inc.ID == id {
			cp := *oi.inc
			cp.Events = append([]journal.Event(nil), oi.inc.Events...)
			c.mu.Unlock()
			return &cp, true
		}
	}
	c.mu.Unlock()
	if c.store != nil {
		return c.store.Get(id)
	}
	return nil, false
}

// TraceEvents returns every event this shard knows for a trace — the
// live ring, open incidents, and the durable store, merged and
// deduplicated by sequence. This is the per-shard feed behind
// cross-shard timeline assembly.
func (c *Capturer) TraceEvents(traceID uint64) []journal.Event {
	if traceID == 0 {
		return nil
	}
	seen := make(map[uint64]journal.Event)
	for _, e := range c.j.Snapshot(journal.Filter{TraceID: traceID}) {
		seen[e.Seq] = e
	}
	c.mu.Lock()
	if oi, ok := c.open[traceID]; ok {
		for _, e := range oi.inc.Events {
			seen[e.Seq] = e
		}
	}
	c.mu.Unlock()
	if c.store != nil {
		if inc, ok := c.store.Get(IncidentID(traceID)); ok {
			for _, e := range inc.Events {
				seen[e.Seq] = e
			}
		}
	}
	out := make([]journal.Event, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// CapturerStats is the capture accounting snapshot.
type CapturerStats struct {
	Shard       string `json:"shard,omitempty"`
	Open        int    `json:"open"`
	Captured    uint64 `json:"captured_total"`
	Events      uint64 `json:"events_captured_total"`
	OpenDrops   uint64 `json:"open_drops_total"`
	TapEvicted  uint64 `json:"tap_evicted_total"`
	TapPending  int    `json:"tap_pending"`
	StoreStats  *StoreStats `json:"store,omitempty"`
}

// Stats snapshots the capturer (and its store, when attached).
func (c *Capturer) Stats() CapturerStats {
	c.mu.Lock()
	st := CapturerStats{
		Shard:     c.opt.Shard,
		Open:      len(c.open),
		Captured:  c.captured,
		Events:    c.events,
		OpenDrops: c.openDrops,
	}
	c.mu.Unlock()
	st.TapEvicted = c.sub.Evicted()
	st.TapPending = c.sub.Pending()
	if c.store != nil {
		ss := c.store.Stats()
		st.StoreStats = &ss
	}
	return st
}

// register exposes the capture metrics as a scrape-time collector.
func (c *Capturer) register(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.Default
	}
	reg.RegisterCollector("forensics", func(emit func(name string, kind telemetry.Kind, help string, labels telemetry.Labels, value float64)) {
		st := c.Stats()
		emit("iotsec_forensics_open_incidents", telemetry.KindGauge,
			"Incidents currently accumulating events.", nil, float64(st.Open))
		emit("iotsec_forensics_incidents_total", telemetry.KindCounter,
			"Incidents sealed by the capturer.", nil, float64(st.Captured))
		emit("iotsec_forensics_events_total", telemetry.KindCounter,
			"Chain events pinned into incidents.", nil, float64(st.Events))
		emit("iotsec_forensics_open_drops_total", telemetry.KindCounter,
			"Opening events dropped at the open-incident cap.", nil, float64(st.OpenDrops))
		emit("iotsec_forensics_tap_evicted_total", telemetry.KindCounter,
			"Journal tap events evicted while the capturer lagged.", nil, float64(st.TapEvicted))
		if st.StoreStats != nil {
			emit("iotsec_forensics_store_bytes", telemetry.KindGauge,
				"Incident store size on disk.", nil, float64(st.StoreStats.Bytes))
			emit("iotsec_forensics_store_segments", telemetry.KindGauge,
				"Incident store segment files.", nil, float64(st.StoreStats.Segments))
			emit("iotsec_forensics_store_incidents", telemetry.KindGauge,
				"Incidents retained in the store.", nil, float64(st.StoreStats.Incidents))
		}
	})
}
