package learn

import (
	"fmt"
	"sort"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// Testbed is the deeply instrumented setup §4.2 proposes for building
// empirical device models: one live emulated device, the environment
// it acts on, and credentials good enough to actuate it.
type Testbed struct {
	// Client reaches the device over the fabric.
	Client *device.Client
	// Device is the unit under instrumentation.
	Device *device.Device
	// Env is the physical world; the extractor steps it to observe
	// effects.
	Env *envsim.Environment
	// Disc maps environment variables to the discrete levels the
	// abstract model uses.
	Disc *envsim.Discretizer
	// StateKey is the device state field that defines the FSM state
	// (e.g. "power" for a plug, "window" for an actuator).
	StateKey string
	// User/Pass authenticate actuation commands.
	User, Pass string
	// SettleTicks is how many environment steps to run after each
	// actuation before observing (default 3).
	SettleTicks int
}

// ExtractModel actuates the device through the candidate commands,
// observing state transitions and environment effects, and
// synthesizes an abstract Model — automating the model-library
// population the paper leaves as future work.
//
// The extractor sweeps the command list repeatedly until a sweep
// discovers nothing new, so toggle-style devices get both directions
// of every transition.
func ExtractModel(tb *Testbed, class string, commands []string) (*Model, error) {
	if tb.SettleTicks <= 0 {
		tb.SettleTicks = 3
	}
	settle := func() {
		for i := 0; i < tb.SettleTicks; i++ {
			tb.Env.Step()
		}
	}
	// Baseline: the environment with the device in its initial
	// state. Effects are observed as deviations from this baseline.
	settle()
	baseline := tb.Disc.Discretize(tb.Env.Snapshot())
	initial := tb.Device.Get(tb.StateKey)

	m := &Model{
		Class:       class,
		Initial:     initial,
		Transitions: make(map[string]map[string]string),
		Effects:     make(map[string][]Effect),
	}
	states := map[string]bool{initial: true}
	effectSeen := map[string]map[string]string{} // state → var → level

	recordEffects := func(state string) {
		now := tb.Disc.Discretize(tb.Env.Snapshot())
		for varName, level := range now {
			if baseline[varName] != level {
				if effectSeen[state] == nil {
					effectSeen[state] = map[string]string{}
				}
				effectSeen[state][varName] = level
			}
		}
	}

	const maxSweeps = 8
	for sweep := 0; sweep < maxSweeps; sweep++ {
		discovered := false
		for _, cmd := range commands {
			from := tb.Device.Get(tb.StateKey)
			resp, err := tb.Client.Call(tb.Device.IP(), device.Request{
				Cmd: cmd, User: tb.User, Pass: tb.Pass,
			})
			if err != nil {
				return nil, fmt.Errorf("learn: extracting %s/%s: %w", class, cmd, err)
			}
			if !resp.OK {
				continue // command not applicable; skip
			}
			settle()
			to := tb.Device.Get(tb.StateKey)
			if !states[to] {
				states[to] = true
				discovered = true
			}
			if m.Transitions[cmd] == nil {
				m.Transitions[cmd] = make(map[string]string)
			}
			if prev, ok := m.Transitions[cmd][from]; !ok || prev != to {
				if !ok {
					discovered = true
				}
				m.Transitions[cmd][from] = to
			}
			recordEffects(to)
		}
		if !discovered {
			break
		}
	}

	for s := range states {
		m.States = append(m.States, s)
	}
	for state, vars := range effectSeen {
		for varName, level := range vars {
			m.Effects[state] = append(m.Effects[state], Effect{Var: varName, Level: level})
		}
	}
	// Drain in-flight device events before the caller reuses the
	// fabric: an explicit quiescence barrier, not a guessed sleep.
	if tb.Client != nil && tb.Client.Stack != nil {
		if n := tb.Client.Stack.Network(); n != nil {
			n.Quiesce(time.Second)
		}
	}
	return m, m.Validate()
}

// FlowObservation is one aggregated transport conversation of a
// device, as observed on its access link during a training window.
// Direction is inferred from the first frame seen: if the device sent
// it, the conversation is device-initiated and Port is the remote
// port; otherwise the device serves it and Port is the device port.
type FlowObservation struct {
	// Proto is "tcp" or "udp".
	Proto string
	// Port is the service port (see above).
	Port uint16
	// Remote is the peer address.
	Remote packet.IPv4Address
	// Initiated is true when the device opened the conversation.
	Initiated bool
	// Frames and Bytes count both directions.
	Frames int
	Bytes  int
	// First and Last bound the observation interval.
	First, Last time.Time
}

// flowKey identifies an aggregated conversation.
type flowKey struct {
	proto     string
	port      uint16
	remote    packet.IPv4Address
	initiated bool
}

// ObserveFlows distills the per-device transport conversations from a
// frame capture — the passive half of the §4.2 behavior-model
// pipeline, feeding SKU behavior profiles. Only hops on the device's
// own access link (frames sent or received by deviceNode) are
// counted, so multi-hop captures do not inflate counts; flooded
// frames merely passing the device are ignored via the address check.
//
// A device with zero observed flows yields an empty, non-nil slice —
// "saw nothing" is a valid observation (the resulting profile denies
// everything), not an error.
func ObserveFlows(frames []netsim.CapturedFrame, deviceNode string, deviceIP packet.IPv4Address) []FlowObservation {
	agg := make(map[flowKey]*FlowObservation)
	for _, f := range frames {
		fromDevice := f.SrcNode == deviceNode
		toDevice := f.DstNode == deviceNode
		if !fromDevice && !toDevice {
			continue // not the device's access link
		}
		pkt := packet.Decode(f.Data, packet.LayerTypeEthernet)
		ip := pkt.IPv4()
		if ip == nil {
			continue // ARP and non-IP frames carry no service tuple
		}
		var proto string
		var srcPort, dstPort uint16
		if t := pkt.TCP(); t != nil {
			proto, srcPort, dstPort = "tcp", t.SrcPort, t.DstPort
		} else if u := pkt.UDP(); u != nil {
			proto, srcPort, dstPort = "udp", u.SrcPort, u.DstPort
		} else {
			continue
		}
		var key flowKey
		switch {
		case fromDevice && ip.SrcIP == deviceIP:
			key = flowKey{proto: proto, port: dstPort, remote: ip.DstIP, initiated: true}
			// A reply leaving a served session has the device's port
			// as source; fold it into the served conversation if one
			// is already known rather than inventing an initiated one.
			if served := (flowKey{proto: proto, port: srcPort, remote: ip.DstIP, initiated: false}); agg[served] != nil {
				key = served
			}
		case toDevice && ip.DstIP == deviceIP:
			key = flowKey{proto: proto, port: dstPort, remote: ip.SrcIP, initiated: false}
			// Symmetrically, an inbound reply of a device-initiated
			// conversation arrives with the remote port as source.
			if init := (flowKey{proto: proto, port: srcPort, remote: ip.SrcIP, initiated: true}); agg[init] != nil {
				key = init
			}
		default:
			continue // flooded transit traffic, not the device's
		}
		o := agg[key]
		if o == nil {
			o = &FlowObservation{
				Proto: key.proto, Port: key.port,
				Remote: key.remote, Initiated: key.initiated,
				First: f.When, Last: f.When,
			}
			agg[key] = o
		}
		o.Frames++
		o.Bytes += len(f.Data)
		if f.When.Before(o.First) {
			o.First = f.When
		}
		if f.When.After(o.Last) {
			o.Last = f.When
		}
	}
	out := make([]FlowObservation, 0, len(agg))
	for _, o := range agg {
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Proto != b.Proto {
			return a.Proto < b.Proto
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		if a.Initiated != b.Initiated {
			return !a.Initiated
		}
		return a.Remote.String() < b.Remote.String()
	})
	return out
}
