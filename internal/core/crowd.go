package core

import (
	"fmt"
	"sort"

	"iotsec/internal/learn"
	"iotsec/internal/packet"
	"iotsec/internal/profile"
	"iotsec/internal/sigrepo"
	"iotsec/internal/telemetry"
)

// CrowdLink connects a platform to a signature repository through a
// supervised session (sigrepo.ManagedClient): cleared signatures for
// any managed SKU flow into the running IDS µmboxes, the platform can
// share what it observes, and the link survives repository outages —
// reconnecting under backoff, resuming each SKU feed from its cursor,
// and queueing publishes/votes in a durable outbox meanwhile. Rule
// installation is idempotent, so replayed notifications never
// duplicate IDS state.
type CrowdLink struct {
	platform *Platform
	mc       *sigrepo.ManagedClient
}

// ConnectSigrepo dials the repository as the given identity and
// subscribes to every SKU currently under management, with default
// resilience options. Pushed and replayed signatures are installed
// live and idempotently.
func (p *Platform) ConnectSigrepo(addr, identity string) (*CrowdLink, error) {
	return p.ConnectSigrepoOpts(addr, identity, sigrepo.ManagedOptions{})
}

// ConnectSigrepoOpts is ConnectSigrepo with explicit resilience
// options (backoff schedule, outbox capacity/path, custom dialer for
// fault injection). The platform fills SKUs and OnInstall unless the
// caller overrides them.
func (p *Platform) ConnectSigrepoOpts(addr, identity string, opts sigrepo.ManagedOptions) (*CrowdLink, error) {
	if opts.SKUs == nil {
		opts.SKUs = p.managedSKUs
	}
	if opts.OnInstall == nil {
		opts.OnInstall = func(sig sigrepo.Signature, replayed bool) {
			// Behavior profiles share the signature feed as an alternate
			// payload dialect; route them to the profile plane (a no-op
			// until EnableProfiles). AcceptProfile ignores stale versions,
			// so cursor replays never regress the active profile.
			if profile.IsEncoded(sig.Rule) {
				if plane, ok := p.Profiles(); ok {
					plane.installCrowd(sig.Rule)
				}
				return
			}
			// Installation failures (malformed community rules) must not
			// kill the push loop; AddSignatureRule dedupes replays.
			_ = p.AddSignatureRule(sig.SKU, sig.Rule)
		}
	}
	mc, err := sigrepo.DialManaged(addr, identity, opts)
	if err != nil {
		return nil, fmt.Errorf("core: sigrepo: %w", err)
	}
	mc.ExportTelemetry(telemetry.Default, identity)
	l := &CrowdLink{platform: p, mc: mc}
	p.mu.Lock()
	p.crowd = l
	p.mu.Unlock()
	return l, nil
}

// managedSKUs lists distinct SKUs under management, sorted.
func (p *Platform) managedSKUs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[string]bool{}
	for _, m := range p.devices {
		seen[m.Device.Profile.SKU] = true
	}
	out := make([]string, 0, len(seen))
	for sku := range seen {
		out = append(out, sku)
	}
	sort.Strings(out)
	return out
}

// DistillSignature runs the §4.1 post-incident analysis against the
// platform's capture: the attacker's management traffic toward the
// device is contrasted with everyone else's, and the distinguishing
// token becomes an ids-dialect block rule ready to Publish. Requires
// Options.Capture.
func (p *Platform) DistillSignature(deviceName string, attackerIP packet.IPv4Address, msg string, sid int) (string, error) {
	if p.recorder == nil {
		return "", fmt.Errorf("core: DistillSignature requires Options.Capture")
	}
	m, ok := p.Device(deviceName)
	if !ok {
		return "", fmt.Errorf("core: unknown device %s", deviceName)
	}
	frames := p.recorder.Frames()
	attack := learn.MgmtPayloadsFrom(frames, m.Device.IP(), attackerIP)
	benign := learn.MgmtPayloadsExcluding(frames, m.Device.IP(), attackerIP)
	if len(attack) == 0 {
		return "", fmt.Errorf("core: no captured traffic from %s to %s", attackerIP, deviceName)
	}
	return learn.GenerateRule(attack, benign, msg, sid)
}

// Publish shares a locally observed signature with the community.
// While the link is degraded the signature is queued in the outbox
// and delivered on reconnect; the return is then (nil, nil).
func (l *CrowdLink) Publish(sku, rule, description string) (*sigrepo.Signature, error) {
	return l.mc.Publish(sku, rule, description)
}

// Vote casts this deployment's verdict on a community signature
// (queued while degraded, like Publish).
func (l *CrowdLink) Vote(sigID string, up bool) error {
	_, err := l.mc.Vote(sigID, up)
	return err
}

// Watch subscribes an additional SKU (e.g. a device class onboarded
// after connect); the feed backfills from cursor 0.
func (l *CrowdLink) Watch(sku string) error { return l.mc.Watch(sku) }

// Managed exposes the underlying supervised client (link state,
// cursors, outbox depth).
func (l *CrowdLink) Managed() *sigrepo.ManagedClient { return l.mc }

// Close stops the supervised session and persists any queued work.
func (l *CrowdLink) Close() { l.mc.Close() }
