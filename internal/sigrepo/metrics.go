package sigrepo

import "iotsec/internal/telemetry"

// Crowdsourced-repository telemetry: publish/vote/notify rates, the
// quarantine outcome split, and server connection counts.
var (
	mPublishes = telemetry.NewCounter(
		"iotsec_sigrepo_publishes_total",
		"Signatures accepted by repositories (validated + stored).")
	mPublishRejected = telemetry.NewCounter(
		"iotsec_sigrepo_publish_rejected_total",
		"Signature submissions failing validation.")
	mVotes = telemetry.NewCounter(
		"iotsec_sigrepo_votes_total",
		"Community votes recorded.")
	mCleared = telemetry.NewCounter(
		"iotsec_sigrepo_cleared_total",
		"Signatures cleared out of quarantine (by trust or votes).")
	mRetired = telemetry.NewCounter(
		"iotsec_sigrepo_retired_total",
		"Signatures retired by down-votes.")
	mNotifies = telemetry.NewCounter(
		"iotsec_sigrepo_notifies_total",
		"Subscriber notifications delivered or scheduled.")
	mServerConns = telemetry.NewGauge(
		"iotsec_sigrepo_server_connections",
		"Open TCP connections across sigrepo servers.")
	mServerRequests = telemetry.NewCounter(
		"iotsec_sigrepo_server_requests_total",
		"Wire requests handled by sigrepo servers.")
	mPublishDedup = telemetry.NewCounter(
		"iotsec_sigrepo_publish_dedup_total",
		"Idempotent publish retries answered with the existing signature.")
	mNotifyEvictions = telemetry.NewCounter(
		"iotsec_sigrepo_notify_evictions_total",
		"Notifications evicted from slow subscribers' send rings.")
)

// Managed-link (client-side) telemetry: supervised northbound session
// health, replay/dedupe volumes, and the durable outbox.
var (
	mLinkReconnects = telemetry.NewCounter(
		"iotsec_sigrepo_reconnects_total",
		"Northbound sigrepo session (re-)establishments by managed clients.")
	mLinkReplayed = telemetry.NewCounter(
		"iotsec_sigrepo_replayed_total",
		"Replayed cleared-signature notifications received after reconnect.")
	mLinkDeduped = telemetry.NewCounter(
		"iotsec_sigrepo_dedup_total",
		"Duplicate notifications suppressed by managed-client dedupe.")
	// Outbox depth is exported per link by ManagedClient.ExportTelemetry
	// (iotsec_sigrepo_link_outbox_depth); a process-global gauge here
	// would have multiple links overwriting each other's Set().
	mLinkGaps = telemetry.NewCounter(
		"iotsec_sigrepo_notify_gaps_total",
		"Live notify stream sequence gaps detected by managed clients (server-side evictions), each repaired by a fetch resync.")
	mOutboxEvict = telemetry.NewCounter(
		"iotsec_sigrepo_outbox_evictions_total",
		"Outbox operations dropped (oldest-first) to bounded capacity.")
	mOutboxDelivered = telemetry.NewCounter(
		"iotsec_sigrepo_outbox_delivered_total",
		"Outbox operations delivered to the repository after reconnect.")
	mLinkUp = telemetry.NewGauge(
		"iotsec_sigrepo_link_up",
		"Managed northbound links currently in the up state.")
)
