package learn

import (
	"fmt"
	"math/rand"
	"sort"
)

// Interaction is one discovered cross-device dependency: issuing Cmd
// on Actor eventually moved Affected into NewState — possibly through
// the environment, with no network path between them.
type Interaction struct {
	Actor    string
	Cmd      string
	Affected string
	NewState string
}

// Key renders a stable identity.
func (i Interaction) Key() string {
	return fmt.Sprintf("%s.%s->%s=%s", i.Actor, i.Cmd, i.Affected, i.NewState)
}

// String implements fmt.Stringer.
func (i Interaction) String() string { return i.Key() }

// FuzzResult accumulates a fuzzing campaign's findings.
type FuzzResult struct {
	// Discovered maps interaction key → interaction.
	Discovered map[string]Interaction
	// Trials is the number of fuzz episodes run.
	Trials int
	// CoverageCurve[i] is the discovery count after trial i+1.
	CoverageCurve []int
}

// Interactions lists discoveries sorted by key.
func (r *FuzzResult) Interactions() []Interaction {
	out := make([]Interaction, 0, len(r.Discovered))
	for _, i := range r.Discovered {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key() < out[b].Key() })
	return out
}

// Fuzzer drives a World through randomized command sequences and
// observes which other devices move — the §4.2 claim that fuzzing
// abstract models gives good coverage of the sparse interaction space.
type Fuzzer struct {
	// Build constructs a fresh world per episode (worlds are
	// stateful).
	Build func() *World
	// EpisodeLen is commands per episode (default 6).
	EpisodeLen int
	// SettleSteps is world steps after each command so multi-hop
	// chains propagate (default 3).
	SettleSteps int
	rng         *rand.Rand
}

// NewFuzzer builds a fuzzer with a deterministic seed.
func NewFuzzer(build func() *World, seed int64) *Fuzzer {
	return &Fuzzer{Build: build, EpisodeLen: 6, SettleSteps: 3, rng: rand.New(rand.NewSource(seed))}
}

// Run executes trials episodes.
func (f *Fuzzer) Run(trials int) *FuzzResult {
	result := &FuzzResult{Discovered: make(map[string]Interaction)}
	for t := 0; t < trials; t++ {
		f.episode(result)
		result.Trials++
		result.CoverageCurve = append(result.CoverageCurve, len(result.Discovered))
	}
	return result
}

// episode runs one randomized command sequence against a fresh world.
func (f *Fuzzer) episode(result *FuzzResult) {
	w := f.Build()
	// Settle initial observations.
	for i := 0; i < f.SettleSteps; i++ {
		w.Step()
	}
	names := w.Instances()
	if len(names) == 0 {
		return
	}
	for c := 0; c < f.EpisodeLen; c++ {
		actor := names[f.rng.Intn(len(names))]
		inst, _ := w.Instance(actor)
		cmds := inst.Model.Commands()
		if len(cmds) == 0 {
			continue
		}
		cmd := cmds[f.rng.Intn(len(cmds))]

		before := w.Snapshot()
		if !w.Command(actor, cmd) {
			continue
		}
		for i := 0; i < f.SettleSteps; i++ {
			w.Step()
		}
		after := w.Snapshot()
		for _, other := range names {
			if other == actor {
				continue
			}
			key := "dev:" + other
			if before[key] != after[key] {
				in := Interaction{Actor: actor, Cmd: cmd, Affected: other, NewState: after[key]}
				result.Discovered[in.Key()] = in
			}
		}
	}
}

// PassiveObserve is the baseline the paper argues fails: just watch
// the deployment behave normally (no active actuation) and record
// cross-device movements. Under a static world, nothing moves and
// nothing is learned; under scripted ambient behavior, only exercised
// paths appear.
func PassiveObserve(build func() *World, steps int) *FuzzResult {
	result := &FuzzResult{Discovered: make(map[string]Interaction)}
	w := build()
	prev := w.Snapshot()
	for i := 0; i < steps; i++ {
		w.Step()
		cur := w.Snapshot()
		for _, name := range w.Instances() {
			key := "dev:" + name
			if prev[key] != cur[key] {
				in := Interaction{Actor: "(ambient)", Cmd: "-", Affected: name, NewState: cur[key]}
				result.Discovered[in.Key()] = in
			}
		}
		prev = cur
		result.Trials++
		result.CoverageCurve = append(result.CoverageCurve, len(result.Discovered))
	}
	return result
}

// ExhaustiveInteractions enumerates the ground truth by issuing every
// command on every device from every reachable single-command
// configuration (bounded BFS over command prefixes of the given
// depth). Used to score fuzzing coverage.
func ExhaustiveInteractions(build func() *World, depth, settleSteps int) map[string]Interaction {
	truth := make(map[string]Interaction)
	type prefix []struct {
		dev, cmd string
	}
	var explore func(p prefix)
	explore = func(p prefix) {
		if len(p) > depth {
			return
		}
		w := build()
		for i := 0; i < settleSteps; i++ {
			w.Step()
		}
		for _, step := range p {
			w.Command(step.dev, step.cmd)
			for i := 0; i < settleSteps; i++ {
				w.Step()
			}
		}
		names := w.Instances()
		for _, actor := range names {
			inst, _ := w.Instance(actor)
			for _, cmd := range inst.Model.Commands() {
				w2 := build()
				for i := 0; i < settleSteps; i++ {
					w2.Step()
				}
				for _, step := range p {
					w2.Command(step.dev, step.cmd)
					for i := 0; i < settleSteps; i++ {
						w2.Step()
					}
				}
				before := w2.Snapshot()
				if !w2.Command(actor, cmd) {
					continue
				}
				for i := 0; i < settleSteps; i++ {
					w2.Step()
				}
				after := w2.Snapshot()
				for _, other := range names {
					if other == actor {
						continue
					}
					key := "dev:" + other
					if before[key] != after[key] {
						in := Interaction{Actor: actor, Cmd: cmd, Affected: other, NewState: after[key]}
						truth[in.Key()] = in
					}
				}
				if len(p) < depth {
					explore(append(append(prefix{}, p...), struct{ dev, cmd string }{actor, cmd}))
				}
			}
		}
	}
	explore(prefix{})
	return truth
}

// Coverage scores a result against ground truth in [0,1].
func Coverage(result *FuzzResult, truth map[string]Interaction) float64 {
	if len(truth) == 0 {
		return 1
	}
	hit := 0
	for k := range truth {
		if _, ok := result.Discovered[k]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
