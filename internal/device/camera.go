package device

import (
	"fmt"
	"strings"

	"iotsec/internal/envsim"
	"iotsec/internal/packet"
)

// MACFor derives a stable locally-administered MAC from an IPv4
// address, keeping scenario wiring terse.
func MACFor(ip packet.IPv4Address) packet.MACAddress {
	return packet.MACAddress{0x02, 0x1c, ip[0], ip[1], ip[2], ip[3]}
}

// Camera emulates a consumer IP camera with a hardcoded factory
// password the user cannot change (Table 1 row 1 / Figure 4). Anyone
// with "admin:admin" — i.e. anyone — can pull snapshots and query
// presence detection.
type Camera struct {
	*Device
}

// CameraProfile is the Avtech/D-Link-style SKU.
func CameraProfile() Profile {
	return Profile{
		SKU:    "avtech-cam-fw1.2",
		Class:  "camera",
		Vendor: "Avtech",
		Vulns: []Vulnerability{
			{Class: VulnDefaultCredentials, Detail: "admin:admin"},
		},
	}
}

// NewCamera builds a camera at the given address.
func NewCamera(name string, ip packet.IPv4Address) *Camera {
	c := &Camera{Device: New(name, CameraProfile(), MACFor(ip), ip)}
	c.Set("recording", "on")
	c.Handle("SNAPSHOT", func(d *Device, _ Request) Response {
		// A compromised snapshot is the privacy leak of §1.
		return Response{OK: true, Data: "jpeg:" + strings.Repeat("f", 64)}
	})
	c.Handle("DETECT", func(d *Device, _ Request) Response {
		present := "no"
		if env := d.Env(); env != nil && env.Get(envsim.VarOccupancy) >= 0.5 {
			present = "yes"
		}
		d.Set("person", present)
		return Response{OK: true, Data: "person=" + present}
	})
	c.Handle("SET_PASSWORD", func(d *Device, _ Request) Response {
		// The Figure 4 flaw: the firmware offers no way to replace
		// the factory credentials.
		return Response{OK: false, Data: "unsupported on this firmware"}
	})
	c.OnTick(func(s envsim.Snapshot) {
		present := "no"
		if s.Get(envsim.VarOccupancy) >= 0.5 {
			present = "yes"
		}
		c.Set("person", present)
	})
	return c
}

// CCTV emulates the Table 1 row 4 camera population: ~30k devices
// sharing an RSA key pair embedded in the firmware image. Extracting
// the key from any one unit grants administrative access to all of
// them.
type CCTV struct {
	*Device
	privateKey string
}

// CCTVProfile is the shared-firmware SKU.
func CCTVProfile(privateKey string) Profile {
	return Profile{
		SKU:    "cctv-rsa-fw3.0",
		Class:  "camera",
		Vendor: "GenericCCTV",
		Vulns: []Vulnerability{
			{Class: VulnExposedKey, Detail: privateKey},
		},
	}
}

// NewCCTV builds a CCTV unit; every unit of the SKU shares privateKey.
func NewCCTV(name string, ip packet.IPv4Address, privateKey string) *CCTV {
	c := &CCTV{
		Device:     New(name, CCTVProfile(privateKey), MACFor(ip), ip),
		privateKey: privateKey,
	}
	c.Set("recording", "on")
	// Key-based admin auth: present the firmware key as password.
	c.creds["fwadmin"] = privateKey
	c.HandlePublic("FIRMWARE", func(d *Device, _ Request) Response {
		// Firmware download needs no auth on this SKU — and the blob
		// contains the private key (the Costin et al. finding the
		// paper cites).
		return Response{OK: true, Data: fmt.Sprintf("blob:v3.0;rsa_private=%s", privateKey)}
	})
	c.Handle("SNAPSHOT", func(d *Device, _ Request) Response {
		return Response{OK: true, Data: "jpeg:" + strings.Repeat("c", 64)}
	})
	return c
}

// Firmware returns what an unauthenticated download yields; the
// FIRMWARE command path allows it even without credentials, so mark
// the profile accordingly in attack tooling.
func (c *CCTV) Firmware() string {
	return fmt.Sprintf("blob:v3.0;rsa_private=%s", c.privateKey)
}
