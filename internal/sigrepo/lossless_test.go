package sigrepo

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"iotsec/internal/resilience"
)

// TestReplayBacklogLargerThanNotifyBuffer pins the no-loss guarantee
// for cursor replay: a subscriber backfilling a SKU whose cleared
// history is much larger than the per-connection notify ring must
// still receive every event. (Replays are written synchronously on
// the subscribe path, never through the evictable live ring — with
// the old enqueue-based replay, the drop-oldest ring silently lost
// the head of the backlog and the advancing cursor made the loss
// permanent.)
func TestReplayBacklogLargerThanNotifyBuffer(t *testing.T) {
	const backlog = 40

	repo := NewRepository("s")
	trust(repo, "pub")
	want := make(map[string]bool, backlog)
	for i := 1; i <= backlog; i++ {
		want[publishCleared(t, repo, "pub", "sku-big", i).ID] = true
	}

	srv := NewServer(repo)
	srv.NotifyBuffer = 8 // far smaller than the backlog
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialClient(addr, "gw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var mu sync.Mutex
	got := make(map[string]int)
	c.SetOnPush(func(p Push) {
		mu.Lock()
		got[p.Signature.ID]++
		mu.Unlock()
	})
	head, err := c.SubscribeSince("sku-big", 0)
	if err != nil {
		t.Fatal(err)
	}
	if head != backlog {
		t.Fatalf("head = %d, want %d", head, backlog)
	}
	waitFor(t, "full backlog replay", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == backlog
	})
	mu.Lock()
	defer mu.Unlock()
	for id := range want {
		if got[id] != 1 {
			t.Errorf("signature %s replayed %d times, want exactly 1", id, got[id])
		}
	}
}

// TestLiveGapTriggersFetchResync pins the client-side half of the
// no-loss guarantee: when the server's drop-oldest live ring evicts
// pushes for a slow subscriber, the next live notify arrives with a
// sequence jump; the managed client must detect the gap and recover
// the missing signatures with a fetch resync (the cursor alone cannot
// — it has already advanced past the evicted events).
func TestLiveGapTriggersFetchResync(t *testing.T) {
	base := runtime.NumGoroutine()

	// An offline twin of the repository accumulates three cleared
	// signatures; importing its snapshot into the live repository
	// later simulates events the subscriber's notifications missed
	// (ImportJSON does not notify live subscribers).
	twin := NewRepository("s")
	trust(twin, "pub")
	var missedIDs []string
	for i := 1; i <= 3; i++ {
		missedIDs = append(missedIDs, publishCleared(t, twin, "pub", "sku-x", i).ID)
	}
	var snap bytes.Buffer
	if err := twin.ExportJSON(&snap); err != nil {
		t.Fatal(err)
	}

	repo := NewRepository("s")
	trust(repo, "pub")
	first := publishCleared(t, repo, "pub", "sku-x", 1) // same rule → same ID as twin's seq 1
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	installed := newInstallRecorder()
	mc, err := DialManaged(addr, "gw", ManagedOptions{
		Backoff:   resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 4},
		SKUs:      func() []string { return []string{"sku-x"} },
		OnInstall: installed.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial backfill", func() bool { return installed.count(first.ID) == 1 })
	if first.ID != missedIDs[0] {
		t.Fatalf("test setup: live sig %s != twin seq-1 sig %s", first.ID, missedIDs[0])
	}

	// Silently advance the repository past the subscriber (seqs 2 and
	// 3 now exist but were never pushed), then clear one more
	// signature normally: its live notify carries seq 4 while the
	// client expects seq 2 — a gap, exactly what a ring eviction
	// produces.
	if err := repo.ImportJSON(&snap); err != nil {
		t.Fatal(err)
	}
	fourth := publishCleared(t, repo, "pub", "sku-x", 4)

	waitFor(t, "gap resync convergence", func() bool {
		for _, id := range missedIDs {
			if installed.count(id) != 1 {
				return false
			}
		}
		return installed.count(fourth.ID) == 1
	})
	if got := mc.Gaps(); got != 1 {
		t.Errorf("gaps detected = %d, want 1", got)
	}
	if cur := mc.Cursor("sku-x"); cur != 4 {
		t.Errorf("cursor = %d, want 4", cur)
	}
	// Exactly-once: neither the push path nor the resync may double-install.
	for id, n := range installed.ids() {
		if n != 1 {
			t.Errorf("signature %s installed %d times, want exactly 1", id, n)
		}
	}
	mc.Close()
	waitGoroutines(t, base)
}

// TestConcurrentOutboxPersist hammers the durable outbox from many
// goroutines while the link is down: persists are serialized, so the
// on-disk file must always be one complete, parseable snapshot
// holding every queued op (run under -race this also pins the
// persistMu serialization).
func TestConcurrentOutboxPersist(t *testing.T) {
	dir := t.TempDir()
	outboxPath := filepath.Join(dir, "outbox.json")

	repo := NewRepository("s")
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mc, err := DialManaged(addr, "gw", ManagedOptions{
		Backoff:    resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 6},
		OutboxPath: outboxPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	waitFor(t, "degraded", func() bool { return mc.State() == LinkDegraded })

	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sid := w*perWriter + i + 1
				rule := fmt.Sprintf(`block tcp any any -> any 80 (msg:"m%d"; content:"t%d"; sid:%d;)`, sid, sid, sid)
				if _, err := mc.Publish("sku-x", rule, "d"); err != nil {
					t.Errorf("publish %d: %v", sid, err)
				}
			}
		}(w)
	}
	wg.Wait()
	mc.Close()

	if depth := mc.OutboxDepth(); depth != writers*perWriter {
		t.Fatalf("outbox depth = %d, want %d", depth, writers*perWriter)
	}
	data, err := os.ReadFile(outboxPath)
	if err != nil {
		t.Fatal(err)
	}
	var ops []OutboxOp
	if err := json.Unmarshal(data, &ops); err != nil {
		t.Fatalf("outbox file corrupt: %v", err)
	}
	if len(ops) != writers*perWriter {
		t.Fatalf("persisted %d ops, want %d", len(ops), writers*perWriter)
	}
}

// TestRepublishAfterRejection pins the dedup-index scoping: an
// idempotent-republish match must cover only live signatures, so a
// rule the community rejected can be resubmitted as a fresh
// (quarantined) signature rather than being answered with the retired
// one forever.
func TestRepublishAfterRejection(t *testing.T) {
	r := NewRepository("s")
	rule := `block tcp any any -> any 80 (msg:"m"; content:"tok"; sid:11;)`
	first, err := r.Publish(context.Background(), "gw", "sku-x", rule, "d")
	if err != nil {
		t.Fatal(err)
	}
	if !first.Quarantined {
		t.Fatal("expected initial quarantine")
	}
	// While quarantined (not yet rejected) a retry still dedupes.
	retry, err := r.Publish(context.Background(), "gw", "sku-x", rule, "d")
	if err != nil {
		t.Fatal(err)
	}
	if retry.ID != first.ID {
		t.Fatalf("quarantined retry forked %s from %s", retry.ID, first.ID)
	}

	// Two default-weight downvotes (≈0.55 each) push the score past
	// RejectScore: the signature retires and unlinks from the index.
	for _, voter := range []string{"v1", "v2"} {
		if _, err := r.Vote(context.Background(), voter, first.ID, false); err != nil {
			t.Fatal(err)
		}
	}
	if total, _ := r.Stats(); total != 0 {
		t.Fatalf("rows after rejection = %d, want 0", total)
	}

	second, err := r.Publish(context.Background(), "gw", "sku-x", rule, "d")
	if err != nil {
		t.Fatal(err)
	}
	if second.ID == first.ID {
		t.Fatal("republish after rejection returned the retired signature")
	}
	if !second.Quarantined {
		t.Fatal("fresh submission must re-enter quarantine")
	}
	if total, _ := r.Stats(); total != 1 {
		t.Fatalf("rows after resubmission = %d, want 1", total)
	}
}
