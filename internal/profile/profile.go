// Package profile implements deny-by-default per-SKU device-behavior
// profiles — the paper's observation that IoT traffic is narrow and
// predictable made executable. A Learner observes a device's flows
// during a training window and distills a MUD-like allowlist profile
// (services, endpoints, rate envelope) keyed to the device SKU;
// profiles from multiple devices of one SKU merge into a single
// converged profile; a Compiler lowers an accepted profile into
// default-deny flow rules whose privilege is pinned to the device
// identity (MAC + registered address), so an address-hopping device
// loses its privileges; and an Engine watches live traffic for
// profile violations and rogue (unprofiled) senders, feeding the
// detect→enforce posture pipeline.
package profile

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"iotsec/internal/packet"
)

// EncodedPrefix marks a sigrepo rule payload as an encoded behavior
// profile rather than an ids-dialect signature. Profiles ride the
// existing crowd repository (durable outbox, cursor replay,
// reputation voting) unchanged; only the payload dialect differs.
const EncodedPrefix = "profile-v1 "

// ErrInvalidProfile reports a malformed or unusable profile.
var ErrInvalidProfile = errors.New("profile: invalid profile")

// Service is one authorized network service of a device: a transport
// protocol + port, a direction, and an optional pinned remote
// endpoint. The attack surface of an enforced device is exactly its
// service list — it scales with authorized services, not devices.
type Service struct {
	// Proto is "tcp" or "udp".
	Proto string `json:"proto"`
	// Port is the service port: the device-side port for served
	// services, the remote-side port for device-initiated ones.
	Port uint16 `json:"port"`
	// Initiated is true when the device opens the conversation
	// (cloud check-in, DNS); false when the device serves it.
	Initiated bool `json:"initiated,omitempty"`
	// Remote optionally pins the remote IPv4 endpoint ("" or "any"
	// leaves it open). Only meaningful for initiated services; the
	// crowd repository scrubs deployment-internal addresses to "any".
	Remote string `json:"remote,omitempty"`
}

// remoteAny reports whether the service's remote endpoint is unpinned.
func (s Service) remoteAny() bool {
	return s.Remote == "" || s.Remote == "any"
}

// RemoteIP returns the pinned remote address, if any.
func (s Service) RemoteIP() (packet.IPv4Address, bool) {
	if s.remoteAny() {
		return packet.IPv4Address{}, false
	}
	return packet.ParseIPv4(s.Remote)
}

// Key is the merge identity of the service: direction + proto + port.
// Two observations of the same key with different remotes collapse
// into one service with the remote generalized.
func (s Service) Key() string {
	dir := "serve"
	if s.Initiated {
		dir = "init"
	}
	return fmt.Sprintf("%s/%s/%d", dir, s.Proto, s.Port)
}

// String renders the service for humans.
func (s Service) String() string {
	if s.Initiated {
		remote := s.Remote
		if s.remoteAny() {
			remote = "any"
		}
		return fmt.Sprintf("%s → %s:%d", s.Proto, remote, s.Port)
	}
	return fmt.Sprintf("%s :%d (served)", s.Proto, s.Port)
}

// Profile is the learned behavior allowlist for one device SKU.
type Profile struct {
	// SKU identifies the exact device model/firmware (per-SKU
	// sharing, like signatures).
	SKU string `json:"sku"`
	// Version increments when a SKU's behavior legitimately changes
	// (firmware update); a higher version replaces a lower one.
	Version int `json:"version"`
	// Services is the complete authorized-service list, sorted by
	// Key. Anything outside it is denied.
	Services []Service `json:"services"`
	// MaxRate is the frames/second envelope (0 = unbounded). Learned
	// with headroom over the observed peak.
	MaxRate float64 `json:"max_rate,omitempty"`
	// Devices counts how many devices' observations merged into this
	// profile (crowd confidence signal).
	Devices int `json:"devices,omitempty"`
}

// Validate checks structural sanity.
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("%w: nil", ErrInvalidProfile)
	}
	if strings.TrimSpace(p.SKU) == "" {
		return fmt.Errorf("%w: empty SKU", ErrInvalidProfile)
	}
	if p.Version < 0 {
		return fmt.Errorf("%w: negative version", ErrInvalidProfile)
	}
	if len(p.Services) > 256 {
		return fmt.Errorf("%w: %d services (max 256)", ErrInvalidProfile, len(p.Services))
	}
	for _, s := range p.Services {
		if s.Proto != "tcp" && s.Proto != "udp" {
			return fmt.Errorf("%w: service proto %q", ErrInvalidProfile, s.Proto)
		}
		if s.Port == 0 {
			return fmt.Errorf("%w: service port 0", ErrInvalidProfile)
		}
		if !s.remoteAny() {
			if _, ok := packet.ParseIPv4(s.Remote); !ok {
				return fmt.Errorf("%w: service remote %q", ErrInvalidProfile, s.Remote)
			}
		}
	}
	return nil
}

// Clone deep-copies the profile.
func (p *Profile) Clone() *Profile {
	c := *p
	c.Services = append([]Service(nil), p.Services...)
	return &c
}

// normalize sorts services and collapses duplicate keys (generalizing
// the remote when two entries of one key disagree).
func (p *Profile) normalize() {
	byKey := make(map[string]Service, len(p.Services))
	for _, s := range p.Services {
		k := s.Key()
		if prev, ok := byKey[k]; ok {
			if prev.Remote != s.Remote {
				prev.Remote = "any"
			}
			byKey[k] = prev
			continue
		}
		byKey[k] = s
	}
	out := make([]Service, 0, len(byKey))
	for _, s := range byKey {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	p.Services = out
}

// Merge folds another profile of the same SKU into this one: service
// union (remotes generalized on conflict), max of rate envelopes, sum
// of contributing devices, max of versions. Multiple devices of one
// SKU — or a local and a crowd profile — converge to one allowlist.
func (p *Profile) Merge(q *Profile) error {
	if q == nil {
		return nil
	}
	if p.SKU != q.SKU {
		return fmt.Errorf("%w: merging SKU %q into %q", ErrInvalidProfile, q.SKU, p.SKU)
	}
	p.Services = append(p.Services, q.Services...)
	p.normalize()
	if q.MaxRate > p.MaxRate {
		p.MaxRate = q.MaxRate
	}
	p.Devices += q.Devices
	if q.Version > p.Version {
		p.Version = q.Version
	}
	return nil
}

// Allows reports whether a device-originated frame with the given
// transport tuple is authorized: either the device serves srcPort, or
// it initiated a conversation to dstIP:dstPort.
func (p *Profile) Allows(proto string, srcPort, dstPort uint16, dstIP packet.IPv4Address) bool {
	for _, s := range p.Services {
		if s.Proto != proto {
			continue
		}
		if !s.Initiated && s.Port == srcPort {
			return true
		}
		if s.Initiated && s.Port == dstPort {
			if r, pinned := s.RemoteIP(); pinned && r != dstIP {
				continue
			}
			return true
		}
	}
	return false
}

// Encode renders the profile as a sigrepo rule payload
// (EncodedPrefix + canonical JSON).
func Encode(p *Profile) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	c := p.Clone()
	c.normalize()
	data, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrInvalidProfile, err)
	}
	return EncodedPrefix + string(data), nil
}

// IsEncoded reports whether a sigrepo rule payload carries an encoded
// profile (vs. an ids-dialect signature).
func IsEncoded(rule string) bool {
	return strings.HasPrefix(strings.TrimSpace(rule), EncodedPrefix)
}

// Decode parses an encoded profile payload.
func Decode(rule string) (*Profile, error) {
	body, ok := strings.CutPrefix(strings.TrimSpace(rule), EncodedPrefix)
	if !ok {
		return nil, fmt.Errorf("%w: missing %q prefix", ErrInvalidProfile, strings.TrimSpace(EncodedPrefix))
	}
	var p Profile
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidProfile, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.normalize()
	return &p, nil
}

// ValidateEncoded checks an encoded payload against the SKU it is
// being published for. sigrepo calls this from its Validate path so
// profile payloads are vetted with profile semantics instead of the
// ids rule parser.
func ValidateEncoded(sku, rule string) error {
	p, err := Decode(rule)
	if err != nil {
		return err
	}
	if p.SKU != sku {
		return fmt.Errorf("%w: payload SKU %q published under %q", ErrInvalidProfile, p.SKU, sku)
	}
	return nil
}
