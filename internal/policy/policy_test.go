package policy

import (
	"math/rand"
	"strings"
	"testing"
)

// figure3FSM builds the paper's Figure 3 policy: a fire alarm and a
// window actuator.
//
//   - FireAlarm backdoor accessed → FireAlarm suspicious → block
//     "open" to the window (stop the break-in).
//   - Window password brute-forced → Window suspicious → robot-check
//     (captcha-like challenge module) in front of the window.
func figure3FSM() *FSM {
	d := NewDomain()
	d.AddDevice("firealarm", ContextNormal, ContextSuspicious)
	d.AddDevice("window", ContextNormal, ContextSuspicious)
	d.AddEnvVar("alarm", "ok", "alarm")
	d.AddEnvVar("window_pos", "closed", "open")

	f := NewFSM(d)
	f.AddRule(Rule{
		Name:     "baseline-window",
		Device:   "window",
		Posture:  Posture{Modules: []ModuleSpec{{Kind: "stateful-fw"}}},
		Priority: 0,
	})
	f.AddRule(Rule{
		Name:     "baseline-firealarm",
		Device:   "firealarm",
		Posture:  Posture{Modules: []ModuleSpec{{Kind: "stateful-fw"}}},
		Priority: 0,
	})
	f.AddRule(Rule{
		Name:       "alarm-suspicious-blocks-window-open",
		Conditions: []Condition{DeviceIs("firealarm", ContextSuspicious)},
		Device:     "window",
		Posture:    Posture{BlockCommands: []string{"OPEN"}, Modules: []ModuleSpec{{Kind: "stateful-fw"}}},
		Priority:   10,
	})
	f.AddRule(Rule{
		Name:       "window-suspicious-robot-check",
		Conditions: []Condition{DeviceIs("window", ContextSuspicious)},
		Device:     "window",
		Posture:    Posture{Modules: []ModuleSpec{{Kind: "robot-check"}, {Kind: "stateful-fw"}}},
		Priority:   10,
	})
	return f
}

func TestFigure3Transitions(t *testing.T) {
	f := figure3FSM()

	// All normal: window gets the baseline posture.
	s := f.Domain.defaultState()
	postures := f.Lookup(s)
	if got := postures["window"].String(); got != "stateful-fw" {
		t.Errorf("normal posture = %q", got)
	}

	// FireAlarm backdoor accessed: its context flips to suspicious —
	// the window must now block OPEN.
	s2 := s.Clone()
	s2.Contexts["firealarm"] = ContextSuspicious
	postures = f.Lookup(s2)
	win := postures["window"]
	if len(win.BlockCommands) != 1 || win.BlockCommands[0] != "OPEN" {
		t.Errorf("suspicious-alarm posture = %+v", win)
	}

	// Window brute-forced: robot check interposed.
	s3 := s.Clone()
	s3.Contexts["window"] = ContextSuspicious
	postures = f.Lookup(s3)
	found := false
	for _, m := range postures["window"].Modules {
		if m.Kind == "robot-check" {
			found = true
		}
	}
	if !found {
		t.Errorf("brute-force posture lacks robot-check: %+v", postures["window"])
	}

	// Both suspicious at once: same-priority postures merge (block
	// OPEN and robot check).
	s4 := s2.Clone()
	s4.Contexts["window"] = ContextSuspicious
	win = f.Lookup(s4)["window"]
	hasRobot := false
	for _, m := range win.Modules {
		if m.Kind == "robot-check" {
			hasRobot = true
		}
	}
	if !hasRobot || len(win.BlockCommands) != 1 {
		t.Errorf("merged posture = %+v", win)
	}
}

func TestStateCountExplosion(t *testing.T) {
	d := NewDomain()
	for i := 0; i < 20; i++ {
		d.AddDevice(string(rune('a'+i)), ContextNormal, ContextSuspicious, ContextCompromised)
	}
	for i := 0; i < 5; i++ {
		d.AddEnvVar("v"+string(rune('0'+i)), "lo", "hi")
	}
	// 3^20 × 2^5 ≈ 1.1e11.
	if c := d.StateCount(); c < 1e11 || c > 1.2e11 {
		t.Errorf("state count = %v", c)
	}
	if s := FormatCount(d.StateCount()); !strings.Contains(s, "G") && !strings.Contains(s, "e+") {
		t.Errorf("formatted = %q", s)
	}
}

func TestEnumerateStatesCompleteAndLimited(t *testing.T) {
	d := NewDomain()
	d.AddDevice("a", ContextNormal, ContextSuspicious)
	d.AddEnvVar("x", "1", "2", "3")
	seen := map[string]bool{}
	n, complete := d.EnumerateStates(0, func(s State) bool {
		seen[s.Key()] = true
		return true
	})
	if n != 6 || !complete {
		t.Errorf("enumerated %d complete=%v", n, complete)
	}
	if len(seen) != 6 {
		t.Errorf("distinct states = %d (duplicates?)", len(seen))
	}
	n, complete = d.EnumerateStates(3, func(State) bool { return true })
	if n != 3 || complete {
		t.Errorf("limited enumeration = %d complete=%v", n, complete)
	}
}

func TestPruningIndependenceAndEquivalence(t *testing.T) {
	// 10 devices, but the policy only references 2 of them.
	d := NewDomain()
	for i := 0; i < 10; i++ {
		d.AddDevice(deviceName(i), ContextNormal, ContextSuspicious)
	}
	d.AddEnvVar("occupancy", "away", "home")
	d.AddEnvVar("weather", "sun", "rain") // never referenced

	f := NewFSM(d)
	f.AddRule(Rule{
		Name:       "guard-d0",
		Conditions: []Condition{DeviceIs(deviceName(1), ContextSuspicious), EnvIs("occupancy", "away")},
		Device:     deviceName(0),
		Posture:    Posture{Isolate: true},
		Priority:   5,
	})

	compiled, report := f.Compile(0)
	if report.FullStates != 4096 { // 2^10 × 2 × 2
		t.Errorf("full states = %v", report.FullStates)
	}
	// Referenced: dev:device1, env:occupancy → 2×2 = 4.
	if report.IndependentStates != 4 {
		t.Errorf("independent states = %v (vars %v)", report.IndependentStates, report.ReferencedVars)
	}
	// Posture equivalence: only two behaviors (isolate or not).
	if report.EquivalenceClasses != 2 {
		t.Errorf("equivalence classes = %d", report.EquivalenceClasses)
	}
	if !report.Complete {
		t.Error("projected enumeration incomplete")
	}

	// Soundness: compiled lookup ≡ direct lookup across the FULL
	// space (sampled).
	rng := rand.New(rand.NewSource(1))
	count := 0
	d.EnumerateStates(0, func(s State) bool {
		if rng.Float64() < 0.1 {
			direct := f.Lookup(s)
			pruned := compiled.Lookup(s)
			for dev, p := range direct {
				if !p.Equal(pruned[dev]) {
					t.Fatalf("pruned lookup diverges at %s for %s: %v vs %v", s, dev, p, pruned[dev])
				}
			}
			count++
		}
		return true
	})
	if count == 0 {
		t.Fatal("sampled zero states")
	}
}

func deviceName(i int) string { return "device" + string(rune('0'+i)) }

func TestPruningSoundnessProperty(t *testing.T) {
	// Random small policies: pruned lookup must always equal direct
	// lookup on every state.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		d := NewDomain()
		nDev := 2 + rng.Intn(3)
		for i := 0; i < nDev; i++ {
			d.AddDevice(deviceName(i), ContextNormal, ContextSuspicious)
		}
		d.AddEnvVar("e0", "a", "b")
		d.AddEnvVar("e1", "x", "y", "z")

		f := NewFSM(d)
		nRules := 1 + rng.Intn(4)
		for r := 0; r < nRules; r++ {
			var conds []Condition
			if rng.Float64() < 0.7 {
				conds = append(conds, DeviceIs(deviceName(rng.Intn(nDev)), ContextSuspicious))
			}
			if rng.Float64() < 0.5 {
				conds = append(conds, EnvIs("e0", []string{"a", "b"}[rng.Intn(2)]))
			}
			f.AddRule(Rule{
				Name:       "r" + string(rune('0'+r)),
				Conditions: conds,
				Device:     deviceName(rng.Intn(nDev)),
				Posture:    Posture{RateLimit: float64(1 + rng.Intn(3))},
				Priority:   rng.Intn(3),
			})
		}
		compiled, _ := f.Compile(0)
		d.EnumerateStates(0, func(s State) bool {
			direct := f.Lookup(s)
			pruned := compiled.Lookup(s)
			for dev, p := range direct {
				if !p.Equal(pruned[dev]) {
					t.Fatalf("trial %d: diverged at %s/%s", trial, s, dev)
				}
			}
			return true
		})
	}
}

func TestPostureMerge(t *testing.T) {
	a := Posture{Modules: []ModuleSpec{{Kind: "ids"}}, BlockCommands: []string{"ON"}, RateLimit: 10}
	b := Posture{Modules: []ModuleSpec{{Kind: "ids"}, {Kind: "logger"}}, BlockCommands: []string{"ON", "OFF"}, RateLimit: 5}
	m := a.Merge(b)
	if len(m.Modules) != 2 {
		t.Errorf("modules = %v (dedup failed)", m.Modules)
	}
	if len(m.BlockCommands) != 2 {
		t.Errorf("commands = %v", m.BlockCommands)
	}
	if m.RateLimit != 5 {
		t.Errorf("rate = %v, want stricter 5", m.RateLimit)
	}
	if !a.Merge(Posture{Isolate: true}).Isolate {
		t.Error("isolate must dominate")
	}
	// Merge with zero posture is identity (canonically).
	if !a.Merge(Posture{}).Equal(a) {
		t.Error("merge with zero changed posture")
	}
}

func TestConflictDetection(t *testing.T) {
	d := NewDomain()
	d.AddDevice("oven", ContextNormal, ContextSuspicious)
	d.AddEnvVar("occupancy", "away", "home")
	d.AddEnvVar("smoke", "no", "yes")

	f := NewFSM(d)
	f.AddRule(Rule{
		Name:       "block-on-away",
		Conditions: []Condition{EnvIs("occupancy", "away")},
		Device:     "oven",
		Posture:    Posture{BlockCommands: []string{"ON"}},
		Priority:   5,
	})
	f.AddRule(Rule{
		Name:       "allow-on-smoke-test",
		Conditions: []Condition{EnvIs("smoke", "yes")},
		Device:     "oven",
		Posture:    Posture{Modules: []ModuleSpec{{Kind: "context-gate", Config: map[string]string{"allow": "ON"}}}},
		Priority:   5,
	})
	conflicts := f.Conflicts()
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v", conflicts)
	}
	c := conflicts[0]
	if c.Device != "oven" || !strings.Contains(c.Reason, "ON") {
		t.Errorf("conflict = %+v", c)
	}
	// The example state satisfies both rules.
	if c.Example.Env["occupancy"] != "away" || c.Example.Env["smoke"] != "yes" {
		t.Errorf("example = %v", c.Example)
	}

	// Mutually exclusive conditions cannot conflict.
	f2 := NewFSM(d)
	f2.AddRule(Rule{
		Name:       "a",
		Conditions: []Condition{EnvIs("occupancy", "away")},
		Device:     "oven", Posture: Posture{BlockCommands: []string{"ON"}}, Priority: 5,
	})
	f2.AddRule(Rule{
		Name:       "b",
		Conditions: []Condition{EnvIs("occupancy", "home")},
		Device:     "oven",
		Posture:    Posture{Modules: []ModuleSpec{{Kind: "context-gate", Config: map[string]string{"allow": "ON"}}}},
		Priority:   5,
	})
	if got := f2.Conflicts(); len(got) != 0 {
		t.Errorf("exclusive rules flagged: %v", got)
	}

	// Different priorities resolve, no conflict.
	f3 := NewFSM(d)
	f3.AddRule(Rule{Name: "lo", Device: "oven", Posture: Posture{Isolate: true}, Priority: 1})
	f3.AddRule(Rule{Name: "hi", Device: "oven", Posture: Posture{}, Priority: 2})
	if got := f3.Conflicts(); len(got) != 0 {
		t.Errorf("prioritized rules flagged: %v", got)
	}
}

func TestRecipeParsing(t *testing.T) {
	r, err := ParseRecipe("r1", "IF nest_protect.smoke=yes THEN hue_lights.on")
	if err != nil {
		t.Fatal(err)
	}
	if r.TriggerDevice != "nest_protect" || r.TriggerState != "smoke=yes" ||
		r.ActionDevice != "hue_lights" || r.ActionCommand != "ON" {
		t.Errorf("parsed = %+v", r)
	}
	if r.String() != "IF nest_protect.smoke=yes THEN hue_lights.ON" {
		t.Errorf("string = %q", r.String())
	}
	for _, bad := range []string{
		"WHEN x THEN y", "IF x=1 y.z", "IF x THEN y.z", "IF x.a=1 THEN z",
	} {
		if _, err := ParseRecipe("bad", bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestRecipeConflicts(t *testing.T) {
	recipes := []Recipe{
		{Name: "lights-on-smoke", TriggerDevice: "nest", TriggerState: "smoke=yes", ActionDevice: "hue", ActionCommand: "ON"},
		{Name: "lights-off-away", TriggerDevice: "presence", TriggerState: "home=no", ActionDevice: "hue", ActionCommand: "OFF"},
		{Name: "lock-at-night", TriggerDevice: "env", TriggerState: "sunset=yes", ActionDevice: "door", ActionCommand: "LOCK"},
		{Name: "unlock-for-person", TriggerDevice: "cam", TriggerState: "person=yes", ActionDevice: "door", ActionCommand: "UNLOCK"},
		// Exclusive triggers: same attr, different value.
		{Name: "a", TriggerDevice: "cam", TriggerState: "person=yes", ActionDevice: "siren", ActionCommand: "ON"},
		{Name: "b", TriggerDevice: "cam", TriggerState: "person=no", ActionDevice: "siren", ActionCommand: "OFF"},
	}
	conflicts := FindRecipeConflicts(recipes)
	// hue ON/OFF conflict and door LOCK/UNLOCK conflict; the siren
	// pair is exclusive.
	if len(conflicts) != 2 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	devices := map[string]bool{}
	for _, c := range conflicts {
		devices[c.Device] = true
	}
	if !devices["hue"] || !devices["door"] {
		t.Errorf("conflict devices = %v", devices)
	}
}

func TestRecipeToRule(t *testing.T) {
	r, _ := ParseRecipe("r1", "IF camera.person=yes THEN wemo.on")
	rule := r.ToRule(7)
	if rule.Device != "wemo" || rule.Priority != 7 {
		t.Errorf("rule = %+v", rule)
	}
	if len(rule.Conditions) != 1 || rule.Conditions[0].Var != "env:camera_person" || rule.Conditions[0].Value != "yes" {
		t.Errorf("conditions = %+v", rule.Conditions)
	}
}

func TestSynthesizedCorpusMarginals(t *testing.T) {
	corpus := SynthesizeCorpus(1)
	total := 0
	for _, row := range Table2() {
		total += row.Recipes
	}
	if len(corpus) != total {
		t.Fatalf("corpus size = %d, want %d", len(corpus), total)
	}
	// Determinism.
	again := SynthesizeCorpus(1)
	for i := range corpus {
		if corpus[i] != again[i] {
			t.Fatal("corpus not deterministic")
		}
	}
	// Different seeds differ.
	other := SynthesizeCorpus(2)
	same := true
	for i := range corpus {
		if corpus[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds do not vary the corpus")
	}
	// The strawman exposes real conflicts in a realistic corpus.
	if got := FindRecipeConflicts(corpus); len(got) == 0 {
		t.Error("no conflicts in 478-recipe corpus — implausible for the strawman")
	}
}
