package forensics

import (
	"time"

	"iotsec/internal/journal"
)

// Query selects incident digests. Zero-valued fields match everything.
type Query struct {
	// TraceID restricts to one causal chain.
	TraceID uint64
	// Device restricts to one device.
	Device string
	// Kind restricts to one incident kind.
	Kind string
	// MinSeverity drops incidents below it.
	MinSeverity journal.Severity
	// Since drops incidents opened before it.
	Since time.Time
	// Until drops incidents opened after it.
	Until time.Time
	// Offset skips that many matches (pagination).
	Offset int
	// Limit caps the returned page (0 = all matches).
	Limit int
}

// Matches applies the filter to one digest.
func (q Query) Matches(d Digest) bool {
	if q.TraceID != 0 && d.TraceID != q.TraceID {
		return false
	}
	if q.Device != "" && d.Device != q.Device {
		return false
	}
	if q.Kind != "" && d.Kind != q.Kind {
		return false
	}
	if d.Severity < q.MinSeverity {
		return false
	}
	if !q.Since.IsZero() && d.OpenedAt.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && d.OpenedAt.After(q.Until) {
		return false
	}
	return true
}

// Apply filters an already-ordered digest list and pages it,
// reporting the total match count alongside the page.
func (q Query) Apply(ds []Digest) (page []Digest, total int) {
	matched := make([]Digest, 0, len(ds))
	for _, d := range ds {
		if q.Matches(d) {
			matched = append(matched, d)
		}
	}
	total = len(matched)
	if q.Offset > 0 {
		if q.Offset >= len(matched) {
			return nil, total
		}
		matched = matched[q.Offset:]
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	return matched, total
}

// Incidents runs a query against the capturer's open ∪ stored view.
func (c *Capturer) Incidents(q Query) (page []Digest, total int) {
	return q.Apply(c.Digests())
}
