package mbox

import (
	"fmt"
	"sync"
	"time"

	"iotsec/internal/ids"
	"iotsec/internal/packet"
	"iotsec/internal/telemetry"
)

// --- Logger ---

// Logger counts traffic and optionally reports each frame; always
// forwards. Counting is lock-free telemetry counters: the per-instance
// counters back Totals, and package-level aggregates feed /metrics.
type Logger struct {
	// Report, if set, receives a one-line summary per frame. Set it
	// before traffic flows; it is read without synchronization.
	Report func(line string)

	frames, bytes telemetry.Counter
}

// Name implements Element.
func (l *Logger) Name() string { return "logger" }

// Process implements Element.
func (l *Logger) Process(ctx *Context) Verdict {
	l.frames.Inc()
	l.bytes.Add(uint64(len(ctx.Frame)))
	mLoggerFrames.Inc()
	mLoggerBytes.Add(uint64(len(ctx.Frame)))
	if l.Report != nil {
		l.Report(ctx.Packet.String())
	}
	return Forward
}

// Totals reports frames and bytes seen.
func (l *Logger) Totals() (frames, bytes uint64) {
	return l.frames.Value(), l.bytes.Value()
}

// --- Header filter (ACL) ---

// ACLAction is allow or deny.
type ACLAction bool

// ACL actions.
const (
	Allow ACLAction = true
	Deny  ACLAction = false
)

// ACLRule is one header predicate with an action. Zero-valued fields
// are wildcards.
type ACLRule struct {
	Action  ACLAction
	SrcIP   *packet.IPv4Address
	DstIP   *packet.IPv4Address
	Proto   *packet.IPProtocol
	DstPort *uint16
	Dir     *Direction
}

// matches applies the predicate.
func (r ACLRule) matches(ctx *Context) bool {
	if r.Dir != nil && *r.Dir != ctx.Dir {
		return false
	}
	ip := ctx.Packet.IPv4()
	if r.SrcIP != nil && (ip == nil || ip.SrcIP != *r.SrcIP) {
		return false
	}
	if r.DstIP != nil && (ip == nil || ip.DstIP != *r.DstIP) {
		return false
	}
	if r.Proto != nil && (ip == nil || ip.Protocol != *r.Proto) {
		return false
	}
	if r.DstPort != nil {
		var port uint16
		if t := ctx.Packet.TCP(); t != nil {
			port = t.DstPort
		} else if u := ctx.Packet.UDP(); u != nil {
			port = u.DstPort
		} else {
			return false
		}
		if port != *r.DstPort {
			return false
		}
	}
	return true
}

// HeaderFilter applies the first matching ACL rule; unmatched frames
// get the default action.
type HeaderFilter struct {
	mu      sync.RWMutex
	rules   []ACLRule
	defAct  ACLAction
	nameTag string
}

// NewHeaderFilter builds a filter with a default action.
func NewHeaderFilter(defaultAction ACLAction, rules ...ACLRule) *HeaderFilter {
	return &HeaderFilter{rules: rules, defAct: defaultAction, nameTag: "header-filter"}
}

// Name implements Element.
func (f *HeaderFilter) Name() string { return f.nameTag }

// Process implements Element.
func (f *HeaderFilter) Process(ctx *Context) Verdict {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, r := range f.rules {
		if r.matches(ctx) {
			if r.Action == Allow {
				return Forward
			}
			return Drop
		}
	}
	if f.defAct == Allow {
		return Forward
	}
	return Drop
}

// SetRules replaces the ACL live.
func (f *HeaderFilter) SetRules(defaultAction ACLAction, rules ...ACLRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = rules
	f.defAct = defaultAction
}

// Ptr helpers for terse ACL construction.
func IPPtr(ip packet.IPv4Address) *packet.IPv4Address { return &ip }
func ProtoPtr(p packet.IPProtocol) *packet.IPProtocol { return &p }
func PortPtr(p uint16) *uint16                        { return &p }
func DirPtr(d Direction) *Direction                   { return &d }

// --- Rate limiter ---

// RateLimiter enforces a token bucket over frames (aggregate), the
// countermeasure for DDoS-bot and amplification abuse.
type RateLimiter struct {
	mu         sync.Mutex
	capacity   float64
	tokens     float64
	refillRate float64 // tokens per second
	last       time.Time
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time
}

// NewRateLimiter allows rate frames/second with the given burst.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	return &RateLimiter{
		capacity:   float64(burst),
		tokens:     float64(burst),
		refillRate: rate,
		Clock:      time.Now,
	}
}

// Name implements Element.
func (r *RateLimiter) Name() string { return "rate-limiter" }

// Process implements Element.
func (r *RateLimiter) Process(ctx *Context) Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.Clock()
	if !r.last.IsZero() {
		r.tokens += now.Sub(r.last).Seconds() * r.refillRate
		if r.tokens > r.capacity {
			r.tokens = r.capacity
		}
	}
	r.last = now
	if r.tokens >= 1 {
		r.tokens--
		return Forward
	}
	return Drop
}

// --- IDS element ---

// IDSElement runs a signature engine inline; block rules drop, alerts
// stream to the callback.
type IDSElement struct {
	Engine *ids.Engine
	// OnAlert receives every alert; may be nil.
	OnAlert func(ids.Alert)
}

// Name implements Element.
func (e *IDSElement) Name() string { return "ids" }

// Process implements Element.
func (e *IDSElement) Process(ctx *Context) Verdict {
	blocked, alerts := e.Engine.Verdict(ctx.Packet)
	if e.OnAlert != nil {
		for _, a := range alerts {
			e.OnAlert(a)
		}
	}
	if blocked {
		return Drop
	}
	return Forward
}

// --- Stateful firewall ---

// StatefulFirewall permits inbound traffic only on flows the protected
// device initiated (plus explicitly allowed inbound ports) — the
// connection-state policy of §3.1's stateful-firewall example.
type StatefulFirewall struct {
	mu       sync.Mutex
	outbound map[packet.Flow]bool
	// AllowedInbound lists destination ports open to the world.
	AllowedInbound map[uint16]bool
}

// NewStatefulFirewall builds the firewall with the given open ports.
func NewStatefulFirewall(openPorts ...uint16) *StatefulFirewall {
	open := make(map[uint16]bool, len(openPorts))
	for _, p := range openPorts {
		open[p] = true
	}
	return &StatefulFirewall{
		outbound:       make(map[packet.Flow]bool),
		AllowedInbound: open,
	}
}

// Name implements Element.
func (f *StatefulFirewall) Name() string { return "stateful-fw" }

// Process implements Element.
func (f *StatefulFirewall) Process(ctx *Context) Verdict {
	flow, ok := ctx.Packet.TransportFlow()
	if !ok {
		return Forward // non-transport (ARP etc.) passes
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ctx.Dir == FromDevice {
		f.outbound[flow.Canonical()] = true
		return Forward
	}
	// Inbound: allowed if the canonical flow was initiated outbound,
	// or the destination port is explicitly open.
	if f.outbound[flow.Canonical()] {
		return Forward
	}
	var dstPort uint16
	if t := ctx.Packet.TCP(); t != nil {
		dstPort = t.DstPort
	} else if u := ctx.Packet.UDP(); u != nil {
		dstPort = u.DstPort
	}
	if f.AllowedInbound[dstPort] {
		return Forward
	}
	return Drop
}

// --- DNS guard ---

// DNSGuard neutralizes the open-resolver flaw from outside the device:
// inbound DNS queries are dropped unless the source is whitelisted,
// and (belt and braces) outbound DNS responses above the amplification
// cap are dropped too.
type DNSGuard struct {
	// AllowedClients may query the device's resolver.
	AllowedClients map[packet.IPv4Address]bool
	// MaxResponseBytes caps outbound DNS responses (0 = no cap).
	MaxResponseBytes int

	droppedQueries   uint64
	droppedResponses uint64
	mu               sync.Mutex
}

// Name implements Element.
func (g *DNSGuard) Name() string { return "dns-guard" }

// Process implements Element.
func (g *DNSGuard) Process(ctx *Context) Verdict {
	udp := ctx.Packet.UDP()
	if udp == nil {
		return Forward
	}
	switch ctx.Dir {
	case ToDevice:
		if udp.DstPort != 53 {
			return Forward
		}
		ip := ctx.Packet.IPv4()
		if ip != nil && g.AllowedClients[ip.SrcIP] {
			return Forward
		}
		g.mu.Lock()
		g.droppedQueries++
		g.mu.Unlock()
		return Drop
	case FromDevice:
		if udp.SrcPort != 53 || g.MaxResponseBytes <= 0 {
			return Forward
		}
		if len(udp.LayerPayload()) > g.MaxResponseBytes {
			g.mu.Lock()
			g.droppedResponses++
			g.mu.Unlock()
			return Drop
		}
	}
	return Forward
}

// Dropped reports blocked queries and responses.
func (g *DNSGuard) Dropped() (queries, responses uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.droppedQueries, g.droppedResponses
}

// --- Anomaly element ---

// AnomalyElement feeds device-bound management traffic into a
// behavioral profile and reports deviations; optionally drops frames
// scoring at or above BlockScore.
type AnomalyElement struct {
	Profile *ids.Profile
	// OnAnomaly receives detections; may be nil.
	OnAnomaly func(ids.Anomaly)
	// BlockScore drops frames whose worst anomaly scores >= this
	// (0 = never block).
	BlockScore float64
}

// Name implements Element.
func (e *AnomalyElement) Name() string { return "anomaly" }

// Process implements Element.
func (e *AnomalyElement) Process(ctx *Context) Verdict {
	if ctx.Dir != ToDevice {
		return Forward
	}
	tcp := ctx.Packet.TCP()
	ip := ctx.Packet.IPv4()
	if tcp == nil || ip == nil || len(tcp.LayerPayload()) == 0 {
		return Forward
	}
	cmd := commandOf(tcp.LayerPayload())
	anomalies := e.Profile.ObserveMessage(ip.SrcIP.String(), tcp.DstPort, cmd, time.Now())
	worst := 0.0
	for _, a := range anomalies {
		if e.OnAnomaly != nil {
			e.OnAnomaly(a)
		}
		if a.Score > worst {
			worst = a.Score
		}
	}
	if e.BlockScore > 0 && worst >= e.BlockScore {
		return Drop
	}
	return Forward
}

// commandOf extracts the command token from a management payload
// ("IOT/1 CMD ..."), or a generic tag.
func commandOf(payload []byte) string {
	s := string(payload)
	var proto, cmd string
	if n, _ := fmt.Sscanf(s, "%s %s", &proto, &cmd); n == 2 && proto == "IOT/1" {
		return cmd
	}
	return "<raw>"
}
