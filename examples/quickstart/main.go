// Quickstart: protect a camera whose admin/admin password cannot be
// changed (the paper's Figure 4 use case) in ~40 lines of API.
package main

import (
	"fmt"
	"log"
	"time"

	"iotsec/internal/core"
	"iotsec/internal/device"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

func main() {
	// 1. A policy: the camera always sits behind a password proxy
	//    enforcing administrator-chosen credentials.
	domain := policy.NewDomain()
	domain.AddDevice("cam")
	fsm := policy.NewFSM(domain)
	fsm.AddRule(policy.Rule{
		Name:   "cam-password-proxy",
		Device: "cam",
		Posture: policy.Posture{Modules: []policy.ModuleSpec{{
			Kind:   "password-proxy",
			Config: map[string]string{"user": "homeadmin", "pass": "Str0ng!pass"},
		}}},
		Priority: 1,
	})

	// 2. The platform, the vulnerable camera, and an attacker host.
	platform, err := core.New(core.Options{Policy: fsm})
	if err != nil {
		log.Fatal(err)
	}
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	if _, err := platform.AddDevice(cam.Device); err != nil {
		log.Fatal(err)
	}
	attackerIP := packet.MustParseIPv4("10.0.0.66")
	attacker := netsim.NewStack("attacker", device.MACFor(attackerIP), attackerIP)
	platform.AttachHost(attacker)
	platform.Start()
	defer platform.Stop()

	client := &device.Client{Stack: attacker, Timeout: time.Second}

	// 3. The attack that works against every bare unit of this SKU:
	fmt.Println("attacker tries the factory password (admin/admin)...")
	if _, err := client.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "admin", Pass: "admin"}); err != nil {
		fmt.Printf("  -> BLOCKED by the µmbox password proxy (%v)\n", err)
	} else {
		fmt.Println("  -> succeeded?! the proxy is misconfigured")
	}

	// 4. The owner, with the credentials only IoTSec knows about:
	fmt.Println("owner uses the administrator-chosen credentials...")
	resp, err := client.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "homeadmin", Pass: "Str0ng!pass"})
	if err != nil {
		log.Fatalf("  -> failed: %v", err)
	}
	fmt.Printf("  -> snapshot delivered (%d bytes): the device still only knows admin/admin,\n", len(resp.Data))
	fmt.Println("     but nothing carrying admin/admin from the network ever reaches it.")
}
