package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DNS record types and classes the library understands.
const (
	DNSTypeA     uint16 = 1
	DNSTypeTXT   uint16 = 16
	DNSTypeANY   uint16 = 255
	DNSClassIN   uint16 = 1
	dnsHeaderLen        = 12
)

// DNSQuestion is a single query entry.
type DNSQuestion struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSResourceRecord is a single answer/authority/additional entry.
type DNSResourceRecord struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// DNS is a DNS message (queries and responses). Name compression is
// decoded but never emitted.
type DNS struct {
	base
	ID         uint16
	Response   bool
	RecDesired bool
	RCode      uint8
	Questions  []DNSQuestion
	Answers    []DNSResourceRecord
}

// LayerType implements Layer.
func (d *DNS) LayerType() LayerType { return LayerTypeDNS }

// NextLayerType implements DecodingLayer.
func (d *DNS) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements DecodingLayer.
func (d *DNS) DecodeFromBytes(data []byte) error {
	if len(data) < dnsHeaderLen {
		return fmt.Errorf("dns header: %w (%d bytes)", ErrTruncated, len(data))
	}
	d.ID = binary.BigEndian.Uint16(data[0:2])
	flags := binary.BigEndian.Uint16(data[2:4])
	d.Response = flags&0x8000 != 0
	d.RecDesired = flags&0x0100 != 0
	d.RCode = uint8(flags & 0x000f)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	d.Questions = d.Questions[:0]
	d.Answers = d.Answers[:0]
	off := dnsHeaderLen
	for i := 0; i < qd; i++ {
		name, n, err := decodeDNSName(data, off)
		if err != nil {
			return err
		}
		off += n
		if off+4 > len(data) {
			return fmt.Errorf("dns question: %w", ErrTruncated)
		}
		d.Questions = append(d.Questions, DNSQuestion{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := decodeDNSName(data, off)
		if err != nil {
			return err
		}
		off += n
		if off+10 > len(data) {
			return fmt.Errorf("dns answer: %w", ErrTruncated)
		}
		rr := DNSResourceRecord{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
			TTL:   binary.BigEndian.Uint32(data[off+4 : off+8]),
		}
		rdLen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
		off += 10
		if off+rdLen > len(data) {
			return fmt.Errorf("dns rdata: %w", ErrTruncated)
		}
		rr.Data = data[off : off+rdLen]
		off += rdLen
		d.Answers = append(d.Answers, rr)
	}
	d.contents = data[:off]
	d.payload = data[off:]
	return nil
}

// decodeDNSName reads a (possibly compressed) domain name starting at
// off, returning the dotted name and the number of bytes the name
// occupies at off (pointers count as 2 bytes).
func decodeDNSName(data []byte, off int) (string, int, error) {
	var labels []string
	consumed := 0
	jumped := false
	pos := off
	for hops := 0; ; hops++ {
		if hops > 63 {
			return "", 0, fmt.Errorf("dns name: too many compression hops")
		}
		if pos >= len(data) {
			return "", 0, fmt.Errorf("dns name: %w", ErrTruncated)
		}
		l := int(data[pos])
		switch {
		case l == 0:
			if !jumped {
				consumed = pos - off + 1
			}
			return strings.Join(labels, "."), consumed, nil
		case l&0xc0 == 0xc0:
			if pos+1 >= len(data) {
				return "", 0, fmt.Errorf("dns name pointer: %w", ErrTruncated)
			}
			if !jumped {
				consumed = pos - off + 2
				jumped = true
			}
			pos = int(binary.BigEndian.Uint16(data[pos:pos+2]) & 0x3fff)
		default:
			if pos+1+l > len(data) {
				return "", 0, fmt.Errorf("dns label: %w", ErrTruncated)
			}
			labels = append(labels, string(data[pos+1:pos+1+l]))
			pos += 1 + l
		}
	}
}

// encodeDNSName appends the uncompressed wire form of a dotted name.
func encodeDNSName(dst []byte, name string) ([]byte, error) {
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("dns name: bad label %q in %q", label, name)
			}
			dst = append(dst, byte(len(label)))
			dst = append(dst, label...)
		}
	}
	return append(dst, 0), nil
}

// SerializeTo implements SerializableLayer.
func (d *DNS) SerializeTo(b *SerializeBuffer) error {
	var body []byte
	var err error
	for _, q := range d.Questions {
		if body, err = encodeDNSName(body, q.Name); err != nil {
			return err
		}
		body = binary.BigEndian.AppendUint16(body, q.Type)
		body = binary.BigEndian.AppendUint16(body, q.Class)
	}
	for _, rr := range d.Answers {
		if body, err = encodeDNSName(body, rr.Name); err != nil {
			return err
		}
		body = binary.BigEndian.AppendUint16(body, rr.Type)
		body = binary.BigEndian.AppendUint16(body, rr.Class)
		body = binary.BigEndian.AppendUint32(body, rr.TTL)
		body = binary.BigEndian.AppendUint16(body, uint16(len(rr.Data)))
		body = append(body, rr.Data...)
	}
	hdr, err := b.Prepend(dnsHeaderLen + len(body))
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(hdr[0:2], d.ID)
	var flags uint16
	if d.Response {
		flags |= 0x8000
	}
	if d.RecDesired {
		flags |= 0x0100
	}
	flags |= uint16(d.RCode) & 0x000f
	binary.BigEndian.PutUint16(hdr[2:4], flags)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(d.Questions)))
	binary.BigEndian.PutUint16(hdr[6:8], uint16(len(d.Answers)))
	copy(hdr[dnsHeaderLen:], body)
	return nil
}

// String summarizes the message.
func (d *DNS) String() string {
	kind := "query"
	if d.Response {
		kind = "response"
	}
	return fmt.Sprintf("DNS %s id=%d questions=%d answers=%d", kind, d.ID, len(d.Questions), len(d.Answers))
}
