// Package attack implements the adversary: the concrete exploits for
// every Table 1 vulnerability class, plus the multi-stage and
// amplification attacks of §1–§2. Experiments run these with and
// without IoTSec to measure what the defense actually buys.
package attack

import (
	"fmt"
	"strings"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// Attacker drives exploits from one network vantage point.
type Attacker struct {
	Stack  *netsim.Stack
	client *device.Client
	// Timeout bounds each probe (default 500ms: attackers give up
	// fast).
	Timeout time.Duration
}

// NewAttacker wraps a stack.
func NewAttacker(st *netsim.Stack) *Attacker {
	return &Attacker{
		Stack:   st,
		client:  &device.Client{Stack: st, Timeout: 500 * time.Millisecond},
		Timeout: 500 * time.Millisecond,
	}
}

// Result reports one attack attempt.
type Result struct {
	Technique string
	Success   bool
	Detail    string
}

// call wraps the management client with the attacker's timeout.
func (a *Attacker) call(ip packet.IPv4Address, req device.Request) (device.Response, error) {
	a.client.Timeout = a.Timeout
	return a.client.Call(ip, req)
}

// TryDefaultCredentials attempts the vendor's factory login and, on
// success, exfiltrates (Table 1 rows 1–3 / Figure 4).
func (a *Attacker) TryDefaultCredentials(ip packet.IPv4Address, cmd string) Result {
	r := Result{Technique: "default-credentials"}
	for _, cred := range [][2]string{
		{"admin", "admin"}, {"admin", "password"}, {"root", "root"},
		{"nest", "nest"}, {"hue", "hue"}, {"chef", "chef"}, {"owner", "wemo123"},
	} {
		resp, err := a.call(ip, device.Request{Cmd: cmd, User: cred[0], Pass: cred[1]})
		if err != nil {
			r.Detail = "blocked: " + err.Error()
			continue
		}
		if resp.OK {
			r.Success = true
			r.Detail = fmt.Sprintf("%s:%s -> %s", cred[0], cred[1], truncate(resp.Data, 40))
			return r
		}
		r.Detail = "refused: " + resp.Data
	}
	return r
}

// TryOpenAccess attempts a command with no credentials at all
// (rows 2, 3, 5).
func (a *Attacker) TryOpenAccess(ip packet.IPv4Address, cmd string, args ...string) Result {
	r := Result{Technique: "open-access"}
	resp, err := a.call(ip, device.Request{Cmd: cmd, Args: args})
	if err != nil {
		r.Detail = "blocked: " + err.Error()
		return r
	}
	r.Success = resp.OK
	r.Detail = truncate(resp.Data, 60)
	return r
}

// TryBackdoor attempts the undocumented token path (row 7 / Fig 3).
func (a *Attacker) TryBackdoor(ip packet.IPv4Address, cmd, token string, args ...string) Result {
	r := Result{Technique: "backdoor"}
	resp, err := a.call(ip, device.Request{Cmd: cmd, Args: append(args, token)})
	if err != nil {
		r.Detail = "blocked: " + err.Error()
		return r
	}
	r.Success = resp.OK
	r.Detail = truncate(resp.Data, 60)
	return r
}

// ExtractFirmwareKey downloads firmware and extracts embedded key
// material (row 4), returning the key for replay against sibling
// devices.
func (a *Attacker) ExtractFirmwareKey(ip packet.IPv4Address) (Result, string) {
	r := Result{Technique: "exposed-key"}
	resp, err := a.call(ip, device.Request{Cmd: "FIRMWARE"})
	if err != nil {
		r.Detail = "blocked: " + err.Error()
		return r, ""
	}
	idx := strings.Index(resp.Data, "rsa_private=")
	if !resp.OK || idx < 0 {
		r.Detail = "no key in response"
		return r, ""
	}
	key := resp.Data[idx+len("rsa_private="):]
	r.Success = true
	r.Detail = "extracted " + truncate(key, 20)
	return r, key
}

// ReplayKey authenticates to a sibling device with the extracted key.
func (a *Attacker) ReplayKey(ip packet.IPv4Address, key string) Result {
	r := Result{Technique: "exposed-key-replay"}
	resp, err := a.call(ip, device.Request{Cmd: "SNAPSHOT", User: "fwadmin", Pass: key})
	if err != nil {
		r.Detail = "blocked: " + err.Error()
		return r
	}
	r.Success = resp.OK
	r.Detail = truncate(resp.Data, 40)
	return r
}

// BruteForcePIN tries 4-digit PINs online up to maxAttempts,
// returning on first success (Figure 3's window attack).
func (a *Attacker) BruteForcePIN(ip packet.IPv4Address, cmd, user string, maxAttempts int) Result {
	r := Result{Technique: "pin-brute-force"}
	for i := 0; i < maxAttempts; i++ {
		pin := fmt.Sprintf("%04d", i)
		resp, err := a.call(ip, device.Request{Cmd: cmd, User: user, Pass: pin})
		if err != nil {
			r.Detail = fmt.Sprintf("blocked after %d attempts: %v", i, err)
			return r
		}
		if resp.OK {
			r.Success = true
			r.Detail = fmt.Sprintf("PIN %s after %d attempts", pin, i+1)
			return r
		}
	}
	r.Detail = fmt.Sprintf("exhausted %d attempts", maxAttempts)
	return r
}

// truncate bounds detail strings.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
