package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

const tcpMinHeaderLen = 20

// TCPFlags is the bitfield of TCP control flags.
type TCPFlags uint8

// TCP control flags.
const (
	TCPFin TCPFlags = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// Has reports whether all the given flags are set.
func (f TCPFlags) Has(flags TCPFlags) bool { return f&flags == flags }

// String renders the set flags, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{TCPSyn, "SYN"}, {TCPAck, "ACK"}, {TCPFin, "FIN"},
		{TCPRst, "RST"}, {TCPPsh, "PSH"}, {TCPUrg, "URG"},
	}
	var parts []string
	for _, n := range names {
		if f.Has(n.bit) {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// TCP is a TCP segment header. Serialization fills in the checksum when
// SetNetworkForChecksum was called with the enclosing IPv4 addresses.
type TCP struct {
	base
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16

	srcIP, dstIP IPv4Address
	hasNetwork   bool
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// SetNetworkForChecksum supplies the enclosing IPv4 addresses so
// SerializeTo can compute the pseudo-header checksum.
func (t *TCP) SetNetworkForChecksum(src, dst IPv4Address) {
	t.srcIP, t.dstIP = src, dst
	t.hasNetwork = true
}

// DecodeFromBytes implements DecodingLayer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < tcpMinHeaderLen {
		return fmt.Errorf("tcp header: %w (%d bytes)", ErrTruncated, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	dataOff := int(data[12]>>4) * 4
	if dataOff < tcpMinHeaderLen || len(data) < dataOff {
		return fmt.Errorf("tcp header: bad data offset %d for %d bytes", dataOff, len(data))
	}
	t.Flags = TCPFlags(data[13] & 0x3f)
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.contents = data[:dataOff]
	t.payload = data[dataOff:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// SerializeTo implements SerializableLayer.
func (t *TCP) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	hdr, err := b.Prepend(tcpMinHeaderLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(hdr[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], t.Ack)
	hdr[12] = 5 << 4 // 20-byte header, no options
	hdr[13] = uint8(t.Flags)
	win := t.Window
	if win == 0 {
		win = 65535
	}
	binary.BigEndian.PutUint16(hdr[14:16], win)
	if t.hasNetwork {
		segLen := uint16(tcpMinHeaderLen + payloadLen)
		sum := pseudoHeaderSum(t.srcIP, t.dstIP, uint8(IPProtocolTCP), segLen)
		cs := internetChecksum(b.Bytes()[:segLen], sum)
		binary.BigEndian.PutUint16(hdr[16:18], cs)
		t.Checksum = cs
	}
	return nil
}

// VerifyChecksum recomputes the segment checksum over the decoded
// contents+payload using the given IPv4 addresses.
func (t *TCP) VerifyChecksum(src, dst IPv4Address) bool {
	segLen := len(t.contents) + len(t.payload)
	sum := pseudoHeaderSum(src, dst, uint8(IPProtocolTCP), uint16(segLen))
	full := make([]byte, 0, segLen)
	full = append(full, t.contents...)
	full = append(full, t.payload...)
	return internetChecksum(full, sum) == 0
}

// String summarizes the segment header.
func (t *TCP) String() string {
	return fmt.Sprintf("TCP %d > %d [%s] seq=%d ack=%d", t.SrcPort, t.DstPort, t.Flags, t.Seq, t.Ack)
}
