package core

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"iotsec/internal/policy"
	"iotsec/internal/resilience"
	"iotsec/internal/sigrepo"
)

// trustIdentity makes a contributor trusted enough to skip quarantine
// so repository publishes clear (and notify) immediately.
func trustIdentity(r *sigrepo.Repository, identity string) {
	pseudo := r.Pseudonym(identity)
	for i := 0; i < 20; i++ {
		r.Reputation().RecordOutcome(pseudo, true)
	}
}

func clearedRule(sid int) string {
	return fmt.Sprintf(`block tcp any any -> any 80 (msg:"m%d"; content:"tok%d"; sid:%d;)`, sid, sid, sid)
}

func minimalPlatform(t *testing.T) *Platform {
	t.Helper()
	d := policy.NewDomain()
	f := policy.NewFSM(d)
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

// TestCrowdLinkResubscribeCoversNewSKUs: a SKU that comes under
// management during an outage must get its feed (with full backfill)
// on the next session — the ManagedOptions.SKUs callback is consulted
// at every reconnect.
func TestCrowdLinkResubscribeCoversNewSKUs(t *testing.T) {
	repo := sigrepo.NewRepository("s")
	trustIdentity(repo, "pub")
	srv := sigrepo.NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A signature for sku-b clears before anyone watches that SKU.
	if _, err := repo.Publish(context.Background(), "pub", "sku-b", clearedRule(1), "d"); err != nil {
		t.Fatal(err)
	}

	p := minimalPlatform(t)
	var mu sync.Mutex
	skus := []string{"sku-a"}
	plan := resilience.NewFaultPlan(21)
	link, err := p.ConnectSigrepoOpts(addr, "gw", sigrepo.ManagedOptions{
		Backoff: resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 4},
		Dial: func(a string) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", a, time.Second)
			if err != nil {
				return nil, err
			}
			return resilience.WrapConn(c, plan), nil
		},
		SKUs: func() []string {
			mu.Lock()
			defer mu.Unlock()
			return append([]string(nil), skus...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	if got := len(p.SignatureRules("sku-b")); got != 0 {
		t.Fatalf("sku-b rules before management = %d, want 0", got)
	}

	// sku-b comes under management while the link dies.
	mu.Lock()
	skus = append(skus, "sku-b")
	mu.Unlock()
	plan.SetKillRate(1)
	// Traffic on the dying conn collapses the session.
	if _, err := repo.Publish(context.Background(), "pub", "sku-a", clearedRule(2), "d"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for link.Managed().State() != sigrepo.LinkDegraded {
		if time.Now().After(deadline) {
			t.Fatal("link never degraded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	plan.SetKillRate(0)

	// The next session subscribes sku-b from cursor 0 and backfills
	// its cleared signature into the platform's rule set.
	deadline = time.Now().Add(5 * time.Second)
	for len(p.SignatureRules("sku-b")) != 1 || len(p.SignatureRules("sku-a")) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("rules after reconnect: sku-a=%v sku-b=%v",
				p.SignatureRules("sku-a"), p.SignatureRules("sku-b"))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrowdLinkCloseDuringBackfillNoLeak: closing the link while the
// initial backfill is still streaming must not leak the push
// goroutine or wedge the supervisor.
func TestCrowdLinkCloseDuringBackfillNoLeak(t *testing.T) {
	repo := sigrepo.NewRepository("s")
	trustIdentity(repo, "pub")
	for i := 1; i <= 200; i++ {
		if _, err := repo.Publish(context.Background(), "pub", "sku-a", clearedRule(i), "d"); err != nil {
			t.Fatal(err)
		}
	}
	srv := sigrepo.NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		p := minimalPlatform(t)
		link, err := p.ConnectSigrepoOpts(addr, fmt.Sprintf("gw-%d", i), sigrepo.ManagedOptions{
			Backoff: resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 6},
			SKUs:    func() []string { return []string{"sku-a"} },
		})
		if err != nil {
			t.Fatal(err)
		}
		link.Close() // mid-backfill: 200 replays are still streaming
		if st := link.Managed().State(); st != sigrepo.LinkDown {
			t.Fatalf("state after Close = %v", st)
		}
	}
	waitGoroutines(t, base)
}

// TestAddSignatureRuleIdempotent: replayed community signatures must
// not duplicate IDS rules.
func TestAddSignatureRuleIdempotent(t *testing.T) {
	p := minimalPlatform(t)
	rule := clearedRule(1)
	for i := 0; i < 3; i++ {
		if err := p.AddSignatureRule("sku-a", rule); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.SignatureRules("sku-a"); len(got) != 1 {
		t.Fatalf("rules = %v, want exactly one", got)
	}
	if err := p.AddSignatureRule("sku-a", clearedRule(2)); err != nil {
		t.Fatal(err)
	}
	if got := p.SignatureRules("sku-a"); len(got) != 2 {
		t.Fatalf("rules = %v, want two distinct", got)
	}
}
