package forensics

import (
	"encoding/json"
	"testing"
	"time"

	"iotsec/internal/journal"
)

// chainIncident builds a sealed anomaly incident with a full loop.
func chainIncident() *Incident {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	ev := func(seq uint64, t journal.Type, detail string) journal.Event {
		return journal.Event{Seq: seq, TraceID: 42, Wall: base.Add(time.Duration(seq) * time.Millisecond),
			Type: t, Severity: journal.Warn, Device: "cam", Detail: detail}
	}
	return &Incident{
		ID: IncidentID(42), TraceID: 42, Kind: KindAnomaly, Device: "cam", SKU: "dlink-cam-932L",
		Severity: journal.Warn, OpenedAt: base, ClosedAt: base.Add(time.Second), Complete: true,
		Events: []journal.Event{
			ev(1, journal.TypeAnomaly, "rate anomaly"),
			ev(2, journal.TypePosture, "quarantine"),
			ev(3, journal.TypeFlowMod, "drop rule"),
			ev(4, journal.TypeMboxReconfig, "pipeline swap"),
		},
	}
}

// TestExportScenarioRoundTrip: export condenses the incident into a
// valid scenario whose JSON round-trips through LoadScenario.
func TestExportScenarioRoundTrip(t *testing.T) {
	s := ExportScenario(chainIncident(), 2*time.Second)
	if err := s.Validate(); err != nil {
		t.Fatalf("exported scenario invalid: %v", err)
	}
	if s.Trigger.Type != journal.TypeAnomaly || s.Trigger.Detail != "rate anomaly" {
		t.Fatalf("trigger = %s/%q, want the opening anomaly", s.Trigger.Type, s.Trigger.Detail)
	}
	want := []string{"detect", "policy", "controller", "mbox"}
	if len(s.ExpectedStages) != len(want) {
		t.Fatalf("stages %v, want %v", s.ExpectedStages, want)
	}
	for i, st := range want {
		if s.ExpectedStages[i] != st {
			t.Fatalf("stage[%d] = %s, want %s", i, s.ExpectedStages[i], st)
		}
	}
	if s.SLO() != 2*time.Second {
		t.Fatalf("SLO = %s, want the explicit 2s", s.SLO())
	}

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadScenario(b)
	if err != nil {
		t.Fatalf("round-trip load: %v", err)
	}
	if back.Device != "cam" || back.SKU != "dlink-cam-932L" || back.Kind != KindAnomaly {
		t.Fatalf("round trip lost identity: %+v", back)
	}
	if len(back.Events) != 4 {
		t.Fatalf("round trip lost the original chain: %d events", len(back.Events))
	}
}

// TestExportScenarioFailover: failover incidents expect the three
// recovery event types in order, not Figure 2 stages.
func TestExportScenarioFailover(t *testing.T) {
	inc := chainIncident()
	inc.Kind = KindFailover
	inc.Device = ""
	s := ExportScenario(inc, 0)
	if s.SLO() != DefaultReplaySLO {
		t.Fatalf("SLO = %s, want the default %s", s.SLO(), DefaultReplaySLO)
	}
	want := []string{"controller-failover", "partition-rehomed", "recovery-complete"}
	if len(s.ExpectedStages) != 3 {
		t.Fatalf("failover stages %v, want %v", s.ExpectedStages, want)
	}
	for i, st := range want {
		if s.ExpectedStages[i] != st {
			t.Fatalf("stage[%d] = %s, want %s", i, s.ExpectedStages[i], st)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("device-less failover scenario must validate: %v", err)
	}
}

// TestScenarioValidateRejects: version skew, deviceless detection
// scenarios, unknown kinds and empty stage lists are all refused
// before a replay harness can trip over them.
func TestScenarioValidateRejects(t *testing.T) {
	good := ExportScenario(chainIncident(), 0)
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"version", func(s *Scenario) { s.Version = 99 }},
		{"deviceless", func(s *Scenario) { s.Device = "" }},
		{"unknown kind", func(s *Scenario) { s.Kind = "meteor-strike" }},
		{"no stages", func(s *Scenario) { s.ExpectedStages = nil }},
	}
	for _, tc := range cases {
		cp := *good
		cp.ExpectedStages = append([]string(nil), good.ExpectedStages...)
		tc.mutate(&cp)
		if err := cp.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken scenario", tc.name)
		}
	}
	if _, err := LoadScenario([]byte("not json")); err == nil {
		t.Error("LoadScenario accepted garbage")
	}
}
