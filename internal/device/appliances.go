package device

import (
	"fmt"
	"strconv"

	"iotsec/internal/packet"
)

// SmartOven is the Figure 5 fire hazard: when powered it heats the
// room. It is normally switched through a smart plug, but also exposes
// its own (authenticated) interface.
type SmartOven struct {
	*Device
}

// SmartOvenProfile is the SKU.
func SmartOvenProfile() Profile {
	return Profile{
		SKU:    "bakemaster-900",
		Class:  "oven",
		Vendor: "BakeMaster",
		Vulns: []Vulnerability{
			{Class: VulnDefaultCredentials, Detail: "chef:chef"},
		},
	}
}

// NewSmartOven builds the oven.
func NewSmartOven(name string, ip packet.IPv4Address) *SmartOven {
	o := &SmartOven{Device: New(name, SmartOvenProfile(), MACFor(ip), ip)}
	o.Set("heat", "off")
	o.Handle("ON", func(d *Device, _ Request) Response {
		d.Set("heat", "on")
		if env := d.Env(); env != nil {
			env.Set("oven_heat_rate", 0.02)
			env.Set("oven_power", 1800)
		}
		return Response{OK: true, Data: "heat=on"}
	})
	o.Handle("OFF", func(d *Device, _ Request) Response {
		d.Set("heat", "off")
		if env := d.Env(); env != nil {
			env.Set("oven_heat_rate", 0)
			env.Set("oven_power", 0)
		}
		return Response{OK: true, Data: "heat=off"}
	})
	return o
}

// SetTopBox is the Table 1 row 2 population: 61k boxes with fully
// exposed management.
type SetTopBox struct {
	*Device
}

// SetTopBoxProfile is the SKU.
func SetTopBoxProfile() Profile {
	return Profile{
		SKU:    "streambox-tv8",
		Class:  "set-top-box",
		Vendor: "StreamBox",
		Vulns: []Vulnerability{
			{Class: VulnOpenAccess, Detail: "telnet-style mgmt open"},
		},
	}
}

// NewSetTopBox builds the box.
func NewSetTopBox(name string, ip packet.IPv4Address) *SetTopBox {
	s := &SetTopBox{Device: New(name, SetTopBoxProfile(), MACFor(ip), ip)}
	s.Set("channel", "1")
	s.Handle("TUNE", func(d *Device, req Request) Response {
		if len(req.Args) != 1 {
			return Response{OK: false, Data: "usage: TUNE <channel>"}
		}
		if _, err := strconv.Atoi(req.Args[0]); err != nil {
			return Response{OK: false, Data: "bad channel"}
		}
		d.Set("channel", req.Args[0])
		return Response{OK: true, Data: "channel=" + req.Args[0]}
	})
	s.Handle("INFO", func(d *Device, _ Request) Response {
		return Response{OK: true, Data: "model=tv8;subscriber=acct-4411;mac=" + d.MAC().String()}
	})
	return s
}

// SmartFridge is the Table 1 row 3 population (and §1's "fridge sends
// spam" anecdote): its open mail-relay command lets a botnet herder
// pump spam through the kitchen.
type SmartFridge struct {
	*Device
}

// SmartFridgeProfile is the SKU.
func SmartFridgeProfile() Profile {
	return Profile{
		SKU:    "coolnet-rf28",
		Class:  "refrigerator",
		Vendor: "CoolNet",
		Vulns: []Vulnerability{
			{Class: VulnOpenAccess, Detail: "mgmt + relay open"},
		},
	}
}

// NewSmartFridge builds the fridge.
func NewSmartFridge(name string, ip packet.IPv4Address) *SmartFridge {
	f := &SmartFridge{Device: New(name, SmartFridgeProfile(), MACFor(ip), ip)}
	f.Set("door", "closed")
	f.Set("temp_setpoint", "4")
	f.Handle("RELAY", func(d *Device, req Request) Response {
		// RELAY <targetIP> <count>: sends count "mail" datagrams to
		// the target's port 25 — the spam-bot behavior.
		if len(req.Args) != 2 {
			return Response{OK: false, Data: "usage: RELAY <ip> <count>"}
		}
		dst, ok := packet.ParseIPv4(req.Args[0])
		if !ok {
			return Response{OK: false, Data: "bad target"}
		}
		count, err := strconv.Atoi(req.Args[1])
		if err != nil || count < 0 || count > 10000 {
			return Response{OK: false, Data: "bad count"}
		}
		for i := 0; i < count; i++ {
			_ = d.Stack().SendUDP(dst, 25, 2525, []byte(fmt.Sprintf("SPAM %d buy-now", i)))
		}
		prev, _ := strconv.Atoi(d.Get("spam_sent"))
		d.Set("spam_sent", strconv.Itoa(prev+count))
		return Response{OK: true, Data: fmt.Sprintf("relayed=%d", count)}
	})
	f.Set("spam_sent", "0")
	return f
}

// SpamSent reports how many messages the fridge has relayed.
func (f *SmartFridge) SpamSent() int {
	n, _ := strconv.Atoi(f.Get("spam_sent"))
	return n
}

// HandheldScanner is the §1 logistics-firm entry point: a warehouse
// barcode scanner whose firmware update channel is unauthenticated, so
// it can be turned into a pivot for scanning the internal network.
type HandheldScanner struct {
	*Device
}

// HandheldScannerProfile is the SKU.
func HandheldScannerProfile() Profile {
	return Profile{
		SKU:    "logiscan-hh5",
		Class:  "handheld-scanner",
		Vendor: "LogiScan",
		Vulns: []Vulnerability{
			{Class: VulnOpenAccess, Detail: "firmware update unauthenticated"},
		},
	}
}

// NewHandheldScanner builds the scanner.
func NewHandheldScanner(name string, ip packet.IPv4Address) *HandheldScanner {
	h := &HandheldScanner{Device: New(name, HandheldScannerProfile(), MACFor(ip), ip)}
	h.Set("firmware", "1.0")
	h.Handle("UPDATE", func(d *Device, req Request) Response {
		if len(req.Args) != 1 {
			return Response{OK: false, Data: "usage: UPDATE <version>"}
		}
		d.Set("firmware", req.Args[0])
		return Response{OK: true, Data: "firmware=" + req.Args[0]}
	})
	h.Handle("SCAN_NET", func(d *Device, req Request) Response {
		// A malicious firmware would probe the internal network; we
		// model the capability as a command that probes a /24.
		if len(req.Args) != 1 {
			return Response{OK: false, Data: "usage: SCAN_NET <prefix>"}
		}
		base, ok := packet.ParseIPv4(req.Args[0])
		if !ok {
			return Response{OK: false, Data: "bad prefix"}
		}
		for host := 1; host <= 32; host++ {
			dst := packet.IPv4Address{base[0], base[1], base[2], byte(host)}
			_ = d.Stack().SendUDP(dst, 7, 7, []byte("probe"))
		}
		return Response{OK: true, Data: "probed=32"}
	})
	return h
}
