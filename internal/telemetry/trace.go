package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation. Spans form trees: StartSpan under a
// context carrying a parent span links the child to it and inherits
// the trace ID and sampling decision. End records the span into the
// store's ring buffer when sampled.
type Span struct {
	store    *SpanStore
	TraceID  uint64
	ID       uint64
	ParentID uint64
	Name     string
	Start    time.Time

	sampled bool

	mu    sync.Mutex
	attrs Labels
	ended bool
}

// FinishedSpan is the immutable record of an ended span.
type FinishedSpan struct {
	TraceID  uint64        `json:"trace_id"`
	ID       uint64        `json:"span_id"`
	ParentID uint64        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    Labels        `json:"attrs,omitempty"`
}

// SpanStore retains the most recent sampled spans in a bounded ring
// buffer. Root-span sampling keeps 1 in SampleEvery traces (1 = all);
// child spans inherit the root's decision so traces stay whole.
type SpanStore struct {
	sampleEvery uint64

	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64
	rootSeen  atomic.Uint64

	started  atomic.Uint64
	finished atomic.Uint64

	// slowNS, when > 0, is the duration threshold (ns) above which an
	// ended span is reported to the slow hook regardless of sampling.
	slowNS   atomic.Int64
	slowHook atomic.Pointer[func(FinishedSpan)]
	slowSeen atomic.Uint64

	mu   sync.Mutex
	ring []FinishedSpan
	pos  int
	full bool
}

// NewSpanStore builds a store retaining up to capacity sampled spans,
// sampling one in sampleEvery root spans (values < 1 mean 1).
func NewSpanStore(capacity int, sampleEvery int) *SpanStore {
	if capacity <= 0 {
		capacity = 1024
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &SpanStore{sampleEvery: uint64(sampleEvery), ring: make([]FinishedSpan, capacity)}
}

type spanKey struct{}

// FromContext returns the active span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a span as a child of any span already carried by
// ctx and returns the derived context carrying the new span. Always
// pair with End.
func (st *SpanStore) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	parent := FromContext(ctx)
	sp := &Span{store: st, Name: name, Start: time.Now(), ID: st.nextSpan.Add(1)}
	if parent != nil {
		sp.TraceID = parent.TraceID
		sp.ParentID = parent.ID
		sp.sampled = parent.sampled
	} else {
		sp.TraceID = st.nextTrace.Add(1)
		sp.sampled = st.rootSeen.Add(1)%st.sampleEvery == 1 || st.sampleEvery == 1
	}
	st.started.Add(1)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartSpan begins a span on the Default registry's store.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return Default.Spans().StartSpan(ctx, name)
}

// TraceID reports the trace ID carried by ctx (0 = no active trace).
// Forensic consumers (the event journal, FLOW_MOD metadata) use this
// to stamp records with the causal chain they belong to.
func TraceID(ctx context.Context) uint64 {
	if s := FromContext(ctx); s != nil {
		return s.TraceID
	}
	return 0
}

// SetSlowThreshold arms slow-span reporting: spans whose duration
// meets or exceeds d invoke fn on End (in addition to normal
// recording, and regardless of the sampling decision). d <= 0 or a
// nil fn disarms. fn must be safe for concurrent use and must not
// block.
func (st *SpanStore) SetSlowThreshold(d time.Duration, fn func(FinishedSpan)) {
	if d <= 0 || fn == nil {
		st.slowNS.Store(0)
		st.slowHook.Store(nil)
		return
	}
	st.slowNS.Store(int64(d))
	st.slowHook.Store(&fn)
}

// SlowSpans counts spans that crossed the slow threshold.
func (st *SpanStore) SlowSpans() uint64 { return st.slowSeen.Load() }

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	s.mu.Unlock()
}

// End finishes the span, recording it when sampled. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	s.store.finished.Add(1)
	dur := time.Since(s.Start)
	fs := FinishedSpan{
		TraceID:  s.TraceID,
		ID:       s.ID,
		ParentID: s.ParentID,
		Name:     s.Name,
		Start:    s.Start,
		Duration: dur,
		Attrs:    attrs,
	}
	if slow := s.store.slowNS.Load(); slow > 0 && int64(dur) >= slow {
		s.store.slowSeen.Add(1)
		if fn := s.store.slowHook.Load(); fn != nil {
			(*fn)(fs)
		}
	}
	if !s.sampled {
		return
	}
	s.store.record(fs)
}

func (st *SpanStore) record(fs FinishedSpan) {
	st.mu.Lock()
	st.ring[st.pos] = fs
	st.pos++
	if st.pos == len(st.ring) {
		st.pos = 0
		st.full = true
	}
	st.mu.Unlock()
}

// Recent returns up to n retained spans, newest first (n <= 0 returns
// all retained).
func (st *SpanStore) Recent(n int) []FinishedSpan {
	st.mu.Lock()
	defer st.mu.Unlock()
	size := st.pos
	if st.full {
		size = len(st.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]FinishedSpan, 0, n)
	for i := 0; i < n; i++ {
		idx := st.pos - 1 - i
		if idx < 0 {
			idx += len(st.ring)
		}
		out = append(out, st.ring[idx])
	}
	return out
}

// Stats reports spans started and finished (sampled or not).
func (st *SpanStore) Stats() (started, finished uint64) {
	return st.started.Load(), st.finished.Load()
}
