package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

func floatBits(v float64) uint64  { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Counter is a monotonically increasing integral counter. The zero
// value is usable standalone (unregistered); registered counters come
// from NewCounter. Inc is a single atomic add.
type Counter struct {
	meta
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// MetricKind implements Metric.
func (c *Counter) MetricKind() Kind { return KindCounter }

// Samples implements Metric.
func (c *Counter) Samples() []Sample {
	return []Sample{{Value: float64(c.v.Load())}}
}

// Gauge is a settable instantaneous value. All operations are single
// atomics.
type Gauge struct {
	meta
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MetricKind implements Metric.
func (g *Gauge) MetricKind() Kind { return KindGauge }

// Samples implements Metric.
func (g *Gauge) Samples() []Sample {
	return []Sample{{Value: float64(g.v.Load())}}
}

// labelSep joins multi-label values into one index key; 0xff never
// appears in metric label values we emit.
const labelSep = "\xff"

func joinLabelValues(vals []string) string {
	if len(vals) == 1 {
		return vals[0]
	}
	out := ""
	for i, v := range vals {
		if i > 0 {
			out += labelSep
		}
		out += v
	}
	return out
}

func splitLabels(keys []string, joined string) Labels {
	ls := make(Labels, 0, len(keys))
	start := 0
	ki := 0
	for i := 0; i <= len(joined) && ki < len(keys); i++ {
		if i == len(joined) || joined[i] == labelSep[0] {
			ls = append(ls, Label{Key: keys[ki], Value: joined[start:i]})
			start = i + 1
			ki++
		}
	}
	return ls
}

// CounterVec is a family of counters keyed by label values. The child
// index is copy-on-write: With on an existing child is one atomic
// pointer load plus a map read; creating a new child copies the index
// under a mutex (rare, off the hot path). Callers on hot paths should
// resolve children once and hold the *Counter.
type CounterVec struct {
	meta
	keys []string
	idx  atomic.Pointer[map[string]*Counter]
	mu   sync.Mutex
}

// With returns (creating if needed) the child for the label values,
// which must match the vector's label keys in number and order.
func (v *CounterVec) With(labelValues ...string) *Counter {
	key := joinLabelValues(labelValues)
	if c, ok := (*v.idx.Load())[key]; ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	old := *v.idx.Load()
	if c, ok := old[key]; ok {
		return c
	}
	nw := make(map[string]*Counter, len(old)+1)
	for k, c := range old {
		nw[k] = c
	}
	c := &Counter{}
	nw[key] = c
	v.idx.Store(&nw)
	return c
}

// MetricKind implements Metric.
func (v *CounterVec) MetricKind() Kind { return KindCounter }

// Samples implements Metric.
func (v *CounterVec) Samples() []Sample {
	idx := *v.idx.Load()
	out := make([]Sample, 0, len(idx))
	for key, c := range idx {
		out = append(out, Sample{Labels: splitLabels(v.keys, key), Value: float64(c.Value())})
	}
	return out
}

// GaugeVec is a family of gauges keyed by label values (copy-on-write
// index, same discipline as CounterVec).
type GaugeVec struct {
	meta
	keys []string
	idx  atomic.Pointer[map[string]*Gauge]
	mu   sync.Mutex
}

// With returns (creating if needed) the child gauge.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	key := joinLabelValues(labelValues)
	if g, ok := (*v.idx.Load())[key]; ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	old := *v.idx.Load()
	if g, ok := old[key]; ok {
		return g
	}
	nw := make(map[string]*Gauge, len(old)+1)
	for k, g := range old {
		nw[k] = g
	}
	g := &Gauge{}
	nw[key] = g
	v.idx.Store(&nw)
	return g
}

// MetricKind implements Metric.
func (v *GaugeVec) MetricKind() Kind { return KindGauge }

// Samples implements Metric.
func (v *GaugeVec) Samples() []Sample {
	idx := *v.idx.Load()
	out := make([]Sample, 0, len(idx))
	for key, g := range idx {
		out = append(out, Sample{Labels: splitLabels(v.keys, key), Value: float64(g.Value())})
	}
	return out
}
