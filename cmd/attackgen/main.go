// Command attackgen runs the Table 1 attack suite against an
// UNPROTECTED emulated deployment and prints what succeeds — the
// "current world" the paper opens with.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iotsec/internal/attack"
	"iotsec/internal/device"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

func main() {
	os.Exit(run())
}

func run() int {
	verbose := flag.Bool("v", false, "print attack details")
	flag.Parse()

	n := netsim.NewNetwork()
	sw := netsim.NewSwitch("lan", 1)
	sw.SetMissBehavior(netsim.MissFlood)
	nextPort := uint16(1)
	connect := func(p *netsim.Port) {
		sp := sw.AttachPort(n, nextPort)
		nextPort++
		n.Connect(p, sp, netsim.LinkOptions{})
	}
	defer n.Stop()

	attackerIP := packet.MustParseIPv4("10.0.0.66")
	attackerStack := netsim.NewStack("attacker", device.MACFor(attackerIP), attackerIP)
	connect(attackerStack.Attach(n))
	defer attackerStack.Stop()
	adversary := attack.NewAttacker(attackerStack)

	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	stb := device.NewSetTopBox("stb", packet.MustParseIPv4("10.0.0.11"))
	fridge := device.NewSmartFridge("fridge", packet.MustParseIPv4("10.0.0.12"))
	cctv1 := device.NewCCTV("cctv1", packet.MustParseIPv4("10.0.0.13"), "rsa-FLEET-1")
	cctv2 := device.NewCCTV("cctv2", packet.MustParseIPv4("10.0.0.14"), "rsa-FLEET-1")
	tl := device.NewTrafficLight("tl", packet.MustParseIPv4("10.0.0.15"))
	plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.16"), device.Appliance{Name: "oven"})
	win := device.NewWindowActuator("window", packet.MustParseIPv4("10.0.0.17"))

	for _, d := range []*device.Device{cam.Device, stb.Device, fridge.Device, cctv1.Device, cctv2.Device, tl.Device, plug.Device, win.Device} {
		port, err := d.Attach(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "attackgen: %v\n", err)
			return 1
		}
		connect(port)
		defer d.Stop()
	}
	if err := plug.StartDNSResolver(20); err != nil {
		fmt.Fprintf(os.Stderr, "attackgen: %v\n", err)
		return 1
	}
	n.Start()

	report := func(name string, r attack.Result) {
		status := "FAILED "
		if r.Success {
			status = "SUCCESS"
		}
		fmt.Printf("[%s] %-30s (%s)\n", status, name, r.Technique)
		if *verbose {
			fmt.Printf("          %s\n", r.Detail)
		}
	}

	report("camera default credentials", adversary.TryDefaultCredentials(cam.IP(), "SNAPSHOT"))
	report("set-top box open access", adversary.TryOpenAccess(stb.IP(), "INFO"))
	report("fridge spam relay", adversary.TryOpenAccess(fridge.IP(), "RELAY", "10.0.0.66", "5"))
	res, key := adversary.ExtractFirmwareKey(cctv1.IP())
	report("cctv firmware key extraction", res)
	report("cctv fleet key replay", adversary.ReplayKey(cctv2.IP(), key))
	report("traffic light takeover", adversary.TryOpenAccess(tl.IP(), "SET", "green"))
	report("wemo backdoor", adversary.TryBackdoor(plug.IP(), "ON", device.PlugBackdoorToken))
	report("window PIN brute force", adversary.BruteForcePIN(win.IP(), "OPEN", "admin", 20))

	time.Sleep(50 * time.Millisecond)
	fmt.Println("\nEvery one of these is blocked under IoTSec — see `iotsim -exp t1`.")
	return 0
}
