package sigrepo

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the process goroutine count falls back to
// (or near) base, failing the test if it never does. The slack of two
// absorbs runtime helpers that come and go.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCloseNoGoroutineLeak drives a server with live subscribed
// clients and verifies Close tears down the accept loop and every
// per-connection goroutine.
func TestServerCloseNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	repo := NewRepository("leak-salt")
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := DialClient(addr, fmt.Sprintf("ent-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		if err := c.Subscribe("sku-leak"); err != nil {
			t.Fatal(err)
		}
	}
	// Exercise the wire path so connections are demonstrably live.
	if _, err := clients[0].Publish("sku-leak", `alert tcp any any -> any any (msg:"x"; sid:9001;)`, "d"); err != nil {
		t.Fatal(err)
	}

	srv.Close() // closes listener + connections, waits for handlers
	for _, c := range clients {
		c.Close()
	}
	waitGoroutines(t, base)
}
