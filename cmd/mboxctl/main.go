// Command mboxctl inspects and controls a running iotsecd via its
// admin API.
//
// Usage:
//
//	mboxctl [-addr host:port] status
//	mboxctl [-addr host:port] env
//	mboxctl [-addr host:port] set-env <var> <value>
//	mboxctl [-addr host:port] set-context <device> <context>
//	mboxctl [-telemetry-addr host:port] stats [-json]
//	mboxctl [-telemetry-addr host:port] fleet [-json]
//	mboxctl [-telemetry-addr host:port] health
//	mboxctl [-telemetry-addr host:port] slo
//	mboxctl [-telemetry-addr host:port] crowd
//	mboxctl [-telemetry-addr host:port] trace <id>
//	mboxctl [-telemetry-addr host:port] journal [-trace N] [-device D] [-type T] [-since 5m] [-until 1m] [-sev warn] [-limit N] [-follow]
//	mboxctl [-telemetry-addr host:port] incidents [list] [-trace N] [-device D] [-kind K] [-sev warn] [-since 5m] [-until 1m] [-limit N] [-offset N]
//	mboxctl [-telemetry-addr host:port] incidents show <id>
//	mboxctl [-telemetry-addr host:port] incidents export [-o file] <id>
//	mboxctl [-telemetry-addr host:port] incidents fleet
//	mboxctl [-telemetry-addr host:port] incidents timeline <trace>
//	mboxctl [-telemetry-addr host:port] profiles [list|show <sku>|violations]
//	mboxctl [-telemetry-addr host:port] controllers
//
// stats, fleet, health, slo, crowd, trace, journal and profiles talk
// to the daemon's telemetry listener (iotsecd -telemetry-addr), not
// the admin API. stats -json emits the raw /debug/telemetry snapshot
// for scripting; fleet renders the merged fleet rollup view
// (/debug/fleet): per-shard event rates, staleness, merged
// detect→enforce quantiles, and the bounded top-K device summaries.
// health probes /healthz and /readyz and renders the per-component
// detail; slo renders the live MTTR pipeline (per-stage and
// end-to-end detect→enforce quantiles, incomplete chains, watchdog
// state). crowd shows the health of the northbound
// signature-repository link (state, per-SKU replay cursors, outbox
// depth, reconnect/replay/dedup counters). trace renders the forensic
// timeline of one causal chain; journal dumps (or, with -follow,
// live-tails) the event journal. incidents drives the durable
// incident forensics plane (iotsecd -forensics-dir): list the
// captured-chain index, show one sealed chain's timeline, export a
// replay scenario for iotsim -replay, and — when the daemon runs the
// fleet rollup plane — list the cross-shard merged view or assemble
// one trace's fleet-wide timeline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/core"
	"iotsec/internal/forensics"
	"iotsec/internal/journal"
	"iotsec/internal/profile"
	"iotsec/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "iotsecd admin address")
	telemetryAddr := flag.String("telemetry-addr", "127.0.0.1:7701",
		"iotsecd telemetry address (for the stats subcommand)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var req core.AdminRequest
	switch args[0] {
	case "stats":
		raw := len(args) > 1 && args[1] == "-json"
		if err := printStats(*telemetryAddr, raw); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: stats: %v\n", err)
			os.Exit(1)
		}
		return
	case "fleet":
		raw := len(args) > 1 && args[1] == "-json"
		if err := printFleet(*telemetryAddr, raw); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: fleet: %v\n", err)
			os.Exit(1)
		}
		return
	case "controllers":
		if err := printControllers(*telemetryAddr); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: controllers: %v\n", err)
			os.Exit(1)
		}
		return
	case "health":
		if err := printHealth(*telemetryAddr); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: health: %v\n", err)
			os.Exit(1)
		}
		return
	case "slo":
		if err := printSLO(*telemetryAddr); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: slo: %v\n", err)
			os.Exit(1)
		}
		return
	case "crowd":
		if err := printCrowd(*telemetryAddr); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: crowd: %v\n", err)
			os.Exit(1)
		}
		return
	case "trace":
		if len(args) != 2 {
			usage()
		}
		if err := printTrace(*telemetryAddr, args[1]); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: trace: %v\n", err)
			os.Exit(1)
		}
		return
	case "journal":
		if err := printJournal(*telemetryAddr, args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: journal: %v\n", err)
			os.Exit(1)
		}
		return
	case "incidents":
		if err := printIncidents(*telemetryAddr, args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: incidents: %v\n", err)
			os.Exit(1)
		}
		return
	case "profiles":
		if err := printProfiles(*telemetryAddr, args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: profiles: %v\n", err)
			os.Exit(1)
		}
		return
	case "status":
		req = core.AdminRequest{Op: "status"}
	case "env":
		req = core.AdminRequest{Op: "env"}
	case "set-env":
		if len(args) != 3 {
			usage()
		}
		req = core.AdminRequest{Op: "set-env", Var: args[1], Value: args[2]}
	case "set-context":
		if len(args) != 3 {
			usage()
		}
		req = core.AdminRequest{Op: "set-context", Device: args[1], Value: args[2]}
	default:
		usage()
	}

	resp, err := core.AdminCall(*addr, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mboxctl: %v\n", err)
		os.Exit(1)
	}
	switch args[0] {
	case "status":
		fmt.Printf("µmbox boots: %d   posture reconfigurations: %d   view version: %d\n\n",
			resp.Boots, resp.Reconf, resp.Version)
		for _, d := range resp.Devices {
			fmt.Printf("%-12s %-22s %s\n", d.Name, d.SKU, d.IP)
			fmt.Printf("  context:  %s\n", d.Context)
			fmt.Printf("  posture:  %s\n", d.Posture)
			fmt.Printf("  pipeline: %s\n", strings.Join(d.Pipeline, " -> "))
			fmt.Printf("  state:    %s\n", d.State)
		}
	case "env":
		for k, v := range resp.Env {
			fmt.Printf("%-24s %s\n", k, v)
		}
	default:
		fmt.Println("ok")
	}
}

// printStats fetches the JSON telemetry snapshot and renders it; with
// raw set it relays the snapshot verbatim for scripting.
func printStats(addr string, raw bool) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/telemetry?spans=16")
	if err != nil {
		return fmt.Errorf("%w (is iotsecd running with -telemetry-addr %s?)", err, addr)
	}
	defer resp.Body.Close()
	if raw {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	var snap telemetry.SnapshotJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}

	fmt.Printf("telemetry snapshot @ %s\n", snap.TakenAt.Format(time.RFC3339))
	for _, m := range snap.Metrics {
		if m.Name != "iotsec_build_info" {
			continue
		}
		for _, s := range m.Samples {
			fmt.Printf("build: %s %s (%s)\n",
				labelValue(s.Labels, "component"), labelValue(s.Labels, "version"),
				labelValue(s.Labels, "go_version"))
		}
	}
	fmt.Println()
	for _, m := range snap.Metrics {
		switch m.Kind {
		case telemetry.KindHistogram:
			for _, h := range parseHistogram(m) {
				mean := 0.0
				if h.count > 0 {
					mean = h.sum / h.count
				}
				fmt.Printf("%-52s count=%g mean=%.6g p50=%.6g p95=%.6g p99=%.6g\n",
					m.Name+h.key, h.count, mean,
					h.quantile(0.50), h.quantile(0.95), h.quantile(0.99))
			}
		default:
			if m.Name == "iotsec_build_info" {
				continue // rendered in the header
			}
			for _, s := range m.Samples {
				fmt.Printf("%-52s %g\n", m.Name+s.Labels.String(), s.Value)
			}
		}
	}

	fmt.Printf("\nspans: %d started, %d finished\n", snap.Spans.Started, snap.Spans.Finished)
	recent := snap.Spans.Recent
	sort.SliceStable(recent, func(i, j int) bool { return recent[i].Start.Before(recent[j].Start) })
	for _, sp := range recent {
		attrs := ""
		if len(sp.Attrs) > 0 {
			attrs = " " + sp.Attrs.String()
		}
		fmt.Printf("  %-28s %10s  trace=%d span=%d parent=%d%s\n",
			sp.Name, sp.Duration, sp.TraceID, sp.ID, sp.ParentID, attrs)
	}
	return nil
}

// printFleet renders the merged fleet rollup view from /debug/fleet;
// with raw set it relays the JSON verbatim.
func printFleet(addr string, raw bool) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/fleet")
	if err != nil {
		return fmt.Errorf("%w (is iotsecd running with -telemetry-addr %s?)", err, addr)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %s (fleet rollups enabled?)", resp.Status)
	}
	if raw {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	var v controller.FleetView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return fmt.Errorf("decoding fleet view: %w", err)
	}

	fl := v.Fleet
	fmt.Printf("fleet @ %s: %d shard(s), %d stale, %d failed-over, %.0f device(s)\n",
		v.TakenAt.Format(time.RFC3339), fl.Shards, fl.StaleShards, fl.FailedOverShards, fl.Devices)
	fmt.Printf("events: %d total (%.0f/s), %d escalated, %d violation(s)\n",
		fl.Events, fl.EventsPerSec, fl.Escalations, fl.Violations)
	if fl.MTTR.Count > 0 {
		fmt.Printf("detect→enforce (merged): %d chains, p50=%s p95=%s p99=%s\n",
			fl.MTTR.Count, secs(fl.MTTR.P50), secs(fl.MTTR.P95), secs(fl.MTTR.P99))
	}
	if len(fl.SKUDevices) > 0 {
		skus := make([]string, 0, len(fl.SKUDevices))
		for s := range fl.SKUDevices {
			skus = append(skus, s)
		}
		sort.Strings(skus)
		fmt.Println("\ndevices by SKU:")
		for _, s := range skus {
			fmt.Printf("  %-28s %.0f\n", s, fl.SKUDevices[s])
		}
	}

	if len(v.Shards) > 0 {
		fmt.Printf("\n%-12s %-6s %-9s %-10s %-11s %-10s %-8s %s\n",
			"SHARD", "SEQ", "DEVICES", "EVENTS", "EVENTS/S", "P99", "AGE", "STATE")
		for _, sh := range v.Shards {
			state := "ok"
			if sh.Stale {
				state = "STALE"
			} else if !sh.Healthy {
				state = "unhealthy"
			}
			if sh.FailedOver {
				// The shard's controller died: show where its partition
				// lives now and when recovery completed.
				target := "RE-HOMED-TO(" + sh.RehomedTo + ")"
				if sh.RehomedTo == "global" {
					target = "FAILED-OVER(global)"
				}
				state = target
				if sh.RecoveredAt != nil {
					state += " @ " + sh.RecoveredAt.Format("15:04:05")
				}
			}
			fmt.Printf("%-12s %-6d %-9.0f %-10d %-11.0f %-10s %-8s %s\n",
				sh.Source, sh.LastSeq, sh.Devices, sh.Events, sh.EventsPerSec,
				secs(sh.MTTR.P99), time.Duration(sh.AgeSeconds*float64(time.Second)).Round(time.Millisecond).String(), state)
		}
	}

	printTop := func(title string, entries []telemetry.TopKEntry) {
		if len(entries) == 0 {
			return
		}
		fmt.Printf("\n%s:\n", title)
		for _, e := range entries {
			errNote := ""
			if e.Err > 0 {
				errNote = fmt.Sprintf(" (±%d)", e.Err)
			}
			fmt.Printf("  %-28s %d%s\n", e.Key, e.Count, errNote)
		}
	}
	printTop("top event producers", fl.TopProducers)
	printTop("top violators", fl.TopViolators)
	printTop("top MTTR contributors (µs·events)", fl.TopMTTR)
	return nil
}

// histSeries is one labeled histogram series reassembled from a JSON
// snapshot: finite bucket bounds plus per-bucket (non-cumulative)
// counts, the +Inf bucket last.
type histSeries struct {
	key     string // rendered labels (without le), "" for unlabeled
	bounds  []float64
	buckets []uint64
	count   float64
	sum     float64
}

// quantile re-derives a quantile from the reassembled buckets.
func (h histSeries) quantile(q float64) float64 {
	return telemetry.QuantileFromBuckets(h.bounds, h.buckets, q)
}

// parseHistogram reassembles the labeled series of one histogram
// family from its snapshot samples. Snapshot sample order is sorted
// by label string (not by bound), so buckets are re-sorted numerically
// before converting cumulative values to per-bucket counts.
func parseHistogram(m telemetry.MetricJSON) []histSeries {
	type cumBucket struct {
		bound float64 // +Inf for the le="+Inf" bucket
		cum   float64
	}
	type agg struct {
		cum        []cumBucket
		count, sum float64
	}
	series := map[string]*agg{}
	var order []string
	get := func(ls telemetry.Labels) *agg {
		var kept telemetry.Labels
		for _, l := range ls {
			if l.Key != "le" {
				kept = append(kept, l)
			}
		}
		key := kept.String()
		a := series[key]
		if a == nil {
			a = &agg{}
			series[key] = a
			order = append(order, key)
		}
		return a
	}
	for _, s := range m.Samples {
		a := get(s.Labels)
		switch s.Suffix {
		case "_bucket":
			le := labelValue(s.Labels, "le")
			bound := math.Inf(1)
			if le != "+Inf" {
				if v, err := strconv.ParseFloat(le, 64); err == nil {
					bound = v
				}
			}
			a.cum = append(a.cum, cumBucket{bound: bound, cum: s.Value})
		case "_count":
			a.count = s.Value
		case "_sum":
			a.sum = s.Value
		}
	}
	sort.Strings(order)
	out := make([]histSeries, 0, len(order))
	for _, key := range order {
		a := series[key]
		sort.Slice(a.cum, func(i, j int) bool { return a.cum[i].bound < a.cum[j].bound })
		h := histSeries{key: key, count: a.count, sum: a.sum}
		prev := 0.0
		for _, b := range a.cum {
			if !math.IsInf(b.bound, 1) {
				h.bounds = append(h.bounds, b.bound)
			}
			d := b.cum - prev
			if d < 0 {
				d = 0 // racing scrape; clamp
			}
			h.buckets = append(h.buckets, uint64(d))
			prev = b.cum
		}
		out = append(out, h)
	}
	return out
}

// printControllers renders the supervision state of every partition's
// local controller from /debug/controllers: liveness, last-checkpoint
// age, re-homing target, and the recent failover history.
func printControllers(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/controllers")
	if err != nil {
		return fmt.Errorf("%w (is iotsecd running with -telemetry-addr and -ctrl-heartbeat?)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %s (controller supervision enabled?)", resp.Status)
	}
	var st controller.SupervisorStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decoding supervisor status: %w", err)
	}

	fmt.Printf("supervision: %d partition(s), heartbeat %s, %d misses ⇒ dead, %s mode\n\n",
		len(st.Partitions), time.Duration(st.HeartbeatSecs*float64(time.Second)), st.Misses, st.FailMode)
	if len(st.Partitions) == 0 {
		fmt.Println("no supervised partitions (no rules were delegated to local controllers)")
		return nil
	}
	fmt.Printf("%-10s %-9s %-12s %-14s %-10s %s\n",
		"PARTITION", "DEVICES", "STATE", "CKPT-AGE", "CKPT-SEQ", "RE-HOMED")
	for _, cs := range st.Partitions {
		state := "alive"
		if !cs.Alive {
			state = "DEAD"
			if cs.Misses > 0 {
				state = fmt.Sprintf("DEAD(%d miss)", cs.Misses)
			}
		}
		ckptAge, ckptSeq := "-", "-"
		if cs.LastCheckpoint != nil {
			ckptAge = time.Duration(cs.CheckpointAge * float64(time.Second)).Round(time.Millisecond).String()
			ckptSeq = strconv.FormatUint(cs.CheckpointSeq, 10)
		}
		rehomed := "-"
		if cs.RehomedTo != "" {
			rehomed = cs.RehomedTo
			if cs.RehomedAt != nil {
				rehomed += " @ " + cs.RehomedAt.Format("15:04:05")
			}
		}
		fmt.Printf("%-10d %-9d %-12s %-14s %-10s %s\n",
			cs.Group, cs.Devices, state, ckptAge, ckptSeq, rehomed)
	}
	if len(st.Failovers) > 0 {
		fmt.Println("\nfailover history:")
		for _, rec := range st.Failovers {
			fmt.Printf("  %s partition %d → %s in %s (%d quarantines re-pushed, %d vars, %d replayed)\n",
				rec.DetectedAt.Format("15:04:05.000"), rec.Group, rec.Target, rec.Recovery,
				rec.QuarantinesRepushed, rec.VarsRestored, rec.EventsReplayed)
		}
	}
	return nil
}

// printHealth probes /healthz and /readyz and renders the aggregated
// component detail. Exit status stays 0 even when not ready — the
// command reports, orchestrators should probe the endpoints directly.
func printHealth(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	live, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		return fmt.Errorf("%w (is the daemon running with -telemetry-addr %s?)", err, addr)
	}
	live.Body.Close()
	fmt.Printf("liveness:  %s\n", live.Status)

	resp, err := client.Get("http://" + addr + "/readyz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var hj telemetry.HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&hj); err != nil {
		return fmt.Errorf("decoding /readyz: %w", err)
	}
	if hj.Ready {
		fmt.Printf("readiness: ready (%s)\n\n", resp.Status)
	} else {
		fmt.Printf("readiness: NOT READY (%s)\n\n", resp.Status)
	}
	if len(hj.Components) == 0 {
		fmt.Println("no components registered")
		return nil
	}
	fmt.Printf("%-24s %-9s %-9s %-14s %s\n", "COMPONENT", "STATE", "CRITICAL", "SINCE", "REASON")
	for _, c := range hj.Components {
		crit := ""
		if c.Critical {
			crit = "critical"
		}
		fmt.Printf("%-24s %-9s %-9s %-14s %s\n",
			c.Component, c.State, crit,
			time.Since(c.Since).Round(time.Second).String()+" ago", c.Reason)
	}
	return nil
}

// printSLO renders the live MTTR pipeline and watchdog state: per-
// stage and end-to-end detect→enforce quantiles, incomplete chains by
// missing stage, and the SLO evaluation gauges.
func printSLO(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/telemetry")
	if err != nil {
		return fmt.Errorf("%w (is the daemon running with -telemetry-addr %s?)", err, addr)
	}
	defer resp.Body.Close()
	var snap telemetry.SnapshotJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}

	var sloLines []string
	found := false
	for _, m := range snap.Metrics {
		switch m.Name {
		case "iotsec_mttr_e2e_seconds":
			found = true
			for _, h := range parseHistogram(m) {
				fmt.Printf("detect→enforce (e2e): %g chains, p50=%s p95=%s p99=%s\n",
					h.count, secs(h.quantile(0.50)), secs(h.quantile(0.95)), secs(h.quantile(0.99)))
			}
		case "iotsec_mttr_stage_seconds":
			found = true
			fmt.Println("per-stage latency (from causal predecessor):")
			for _, h := range parseHistogram(m) {
				fmt.Printf("  %-28s n=%-6g p50=%s p95=%s p99=%s\n",
					labelOf(h.key, "stage"), h.count,
					secs(h.quantile(0.50)), secs(h.quantile(0.95)), secs(h.quantile(0.99)))
			}
		case "iotsec_mttr_incomplete_total":
			for _, s := range m.Samples {
				fmt.Printf("incomplete chains (missing %s): %g\n",
					labelValue(s.Labels, "missing_stage"), s.Value)
			}
		case "iotsec_mttr_inflight_chains", "iotsec_mttr_complete_total", "iotsec_mttr_tap_dropped_total":
			for _, s := range m.Samples {
				fmt.Printf("%-44s %g\n", m.Name, s.Value)
			}
		default:
			if strings.HasPrefix(m.Name, "iotsec_slo_") {
				for _, s := range m.Samples {
					sloLines = append(sloLines,
						fmt.Sprintf("  %-40s %g", m.Name+s.Labels.String(), s.Value))
				}
			}
		}
	}
	if !found {
		fmt.Println("no MTTR metrics (is the daemon running the SLO tracker?)")
		return nil
	}
	if len(sloLines) > 0 {
		fmt.Println("\nwatchdog:")
		sort.Strings(sloLines)
		for _, l := range sloLines {
			fmt.Println(l)
		}
	} else {
		fmt.Println("\nwatchdog: disarmed (run iotsecd with -slo-mttr-p99)")
	}
	return nil
}

// secs renders a latency in seconds compactly.
func secs(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// labelOf extracts one label value out of a rendered label-block key
// like {stage="posture"}.
func labelOf(key, label string) string {
	i := strings.Index(key, label+`="`)
	if i < 0 {
		return key
	}
	rest := key[i+len(label)+2:]
	if j := strings.Index(rest, `"`); j >= 0 {
		return rest[:j]
	}
	return rest
}

// crowdLink aggregates the iotsec_sigrepo_link_* samples for one
// northbound link.
type crowdLink struct {
	state, outboxDepth                           float64
	reconnects, replayed, dedup, delivered, gaps float64
	cursors                                      map[string]float64
}

func labelValue(ls telemetry.Labels, key string) string {
	for _, l := range ls {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

func linkStateName(v float64) string {
	switch int(v) {
	case 2:
		return "up"
	case 1:
		return "degraded"
	default:
		return "down"
	}
}

// printCrowd renders the health of every northbound sigrepo link plus
// the process-global crowd-learning counters.
func printCrowd(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/telemetry")
	if err != nil {
		return fmt.Errorf("%w (is iotsecd running with -telemetry-addr %s?)", err, addr)
	}
	defer resp.Body.Close()
	var snap telemetry.SnapshotJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}

	links := map[string]*crowdLink{}
	get := func(ls telemetry.Labels) *crowdLink {
		name := labelValue(ls, "link")
		l := links[name]
		if l == nil {
			l = &crowdLink{cursors: map[string]float64{}}
			links[name] = l
		}
		return l
	}
	var global []string
	for _, m := range snap.Metrics {
		switch m.Name {
		case "iotsec_sigrepo_link_state":
			for _, s := range m.Samples {
				l := get(s.Labels)
				l.state = s.Value
			}
		case "iotsec_sigrepo_link_outbox_depth":
			for _, s := range m.Samples {
				l := get(s.Labels)
				l.outboxDepth = s.Value
			}
		case "iotsec_sigrepo_link_reconnects_total":
			for _, s := range m.Samples {
				l := get(s.Labels)
				l.reconnects = s.Value
			}
		case "iotsec_sigrepo_link_replayed_total":
			for _, s := range m.Samples {
				l := get(s.Labels)
				l.replayed = s.Value
			}
		case "iotsec_sigrepo_link_dedup_total":
			for _, s := range m.Samples {
				l := get(s.Labels)
				l.dedup = s.Value
			}
		case "iotsec_sigrepo_link_outbox_delivered_total":
			for _, s := range m.Samples {
				l := get(s.Labels)
				l.delivered = s.Value
			}
		case "iotsec_sigrepo_link_gaps_total":
			for _, s := range m.Samples {
				l := get(s.Labels)
				l.gaps = s.Value
			}
		case "iotsec_sigrepo_link_cursor":
			for _, s := range m.Samples {
				get(s.Labels).cursors[labelValue(s.Labels, "sku")] = s.Value
			}
		default:
			if strings.HasPrefix(m.Name, "iotsec_sigrepo_") {
				for _, s := range m.Samples {
					global = append(global,
						fmt.Sprintf("%-44s %g", m.Name+s.Labels.String(), s.Value))
				}
			}
		}
	}

	if len(links) == 0 {
		fmt.Println("no sigrepo links (run iotsecd with -sigrepo-addr)")
	}
	names := make([]string, 0, len(links))
	for n := range links {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		l := links[n]
		fmt.Printf("link %q: %s\n", n, linkStateName(l.state))
		fmt.Printf("  outbox depth:  %g (delivered %g)\n", l.outboxDepth, l.delivered)
		fmt.Printf("  reconnects:    %g\n", l.reconnects)
		fmt.Printf("  replayed:      %g (deduped %g)\n", l.replayed, l.dedup)
		fmt.Printf("  gap resyncs:   %g\n", l.gaps)
		skus := make([]string, 0, len(l.cursors))
		for s := range l.cursors {
			skus = append(skus, s)
		}
		sort.Strings(skus)
		for _, s := range skus {
			fmt.Printf("  cursor[%s]: %g\n", s, l.cursors[s])
		}
	}
	if len(global) > 0 {
		fmt.Println("\ncrowd-learning globals:")
		sort.Strings(global)
		for _, g := range global {
			fmt.Printf("  %s\n", g)
		}
	}
	return nil
}

// fetchProfiles pulls the behavior-profile report.
func fetchProfiles(addr string) (*profile.Report, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/profiles")
	if err != nil {
		return nil, fmt.Errorf("%w (is iotsecd running with -telemetry-addr and -profile-enforce or -profile-learn-window?)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: %s (profile plane enabled?)", resp.Status)
	}
	var rep profile.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("decoding report: %w", err)
	}
	return &rep, nil
}

// printProfiles renders the profile plane: `profiles` / `profiles
// list` summarize the accepted set, `profiles show <sku>` details one
// profile, `profiles violations` dumps the recent violation history.
func printProfiles(addr string, args []string) error {
	mode := "list"
	if len(args) > 0 {
		mode = args[0]
	}
	rep, err := fetchProfiles(addr)
	if err != nil {
		return err
	}
	switch mode {
	case "list":
		s := rep.Stats
		fmt.Printf("profiles: %d accepted, %d device(s) enforced, learning=%v\n",
			s.Profiles, s.Enforced, s.Learning)
		fmt.Printf("frames seen: %d   violations: %d (%d frames)   rogues: %d\n\n",
			s.FramesSeen, s.Violations, s.ViolationFrames, s.Rogues)
		if len(rep.Profiles) == 0 {
			fmt.Println("no profiles accepted yet")
		} else {
			fmt.Printf("%-28s %-4s %-9s %-10s %s\n", "SKU", "VER", "SERVICES", "RATE", "DEVICES")
			for _, p := range rep.Profiles {
				rate := "-"
				if p.MaxRate > 0 {
					rate = fmt.Sprintf("%.0f f/s", p.MaxRate)
				}
				fmt.Printf("%-28s %-4d %-9d %-10s %d\n", p.SKU, p.Version, len(p.Services), rate, p.Devices)
			}
		}
		if len(rep.Enforced) > 0 {
			fmt.Printf("\nenforced: %s\n", strings.Join(rep.Enforced, ", "))
		}
		if len(rep.Rogues) > 0 {
			fmt.Printf("rogue MACs: %s\n", strings.Join(rep.Rogues, ", "))
		}
	case "show":
		if len(args) != 2 {
			usage()
		}
		for _, p := range rep.Profiles {
			if p.SKU != args[1] {
				continue
			}
			fmt.Printf("%s v%d (%d contributing device(s))\n", p.SKU, p.Version, p.Devices)
			if p.MaxRate > 0 {
				fmt.Printf("  rate envelope: %.0f frames/s\n", p.MaxRate)
			}
			if len(p.Services) == 0 {
				fmt.Println("  no authorized services (deny everything)")
			}
			for _, svc := range p.Services {
				fmt.Printf("  allow %s\n", svc)
			}
			return nil
		}
		return fmt.Errorf("no profile for SKU %q", args[1])
	case "violations":
		if len(rep.Violations) == 0 {
			fmt.Println("no profile violations recorded")
			return nil
		}
		for _, v := range rep.Violations {
			fmt.Printf("%s %-12s %-20s %-20s %s\n",
				v.When.Format("15:04:05.000"), v.Device, v.SKU, v.Kind, v.Detail)
		}
	default:
		usage()
	}
	return nil
}

// fetchJournal pulls a filtered snapshot from /debug/journal.
func fetchJournal(addr string, query url.Values) (*journal.SnapshotJSON, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/journal?" + query.Encode())
	if err != nil {
		return nil, fmt.Errorf("%w (is iotsecd running with -telemetry-addr %s?)", err, addr)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: %s", resp.Status)
	}
	var snap journal.SnapshotJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding journal: %w", err)
	}
	return &snap, nil
}

// printTrace reconstructs and renders one causal chain.
func printTrace(addr, idArg string) error {
	id, err := strconv.ParseUint(idArg, 10, 64)
	if err != nil || id == 0 {
		return fmt.Errorf("trace id must be a positive integer, got %q", idArg)
	}
	snap, err := fetchJournal(addr, url.Values{"trace": {idArg}, "limit": {"0"}})
	if err != nil {
		return err
	}
	t := journal.Reconstruct(snap.Events, id)
	if len(t.Events) == 0 {
		return fmt.Errorf("no journal events for trace %d", id)
	}
	fmt.Print(t.Render())
	fmt.Printf("chain: %s\n", t.Chain())
	return nil
}

// printJournal dumps (or follows) the event journal.
func printJournal(addr string, args []string) error {
	fs := flag.NewFlagSet("journal", flag.ExitOnError)
	trace := fs.Uint64("trace", 0, "restrict to one causal chain")
	dev := fs.String("device", "", "restrict to one device")
	typ := fs.String("type", "", "restrict to one event type")
	since := fs.String("since", "", "only events since (duration like 5m, or RFC3339)")
	until := fs.String("until", "", "only events until (duration like 5m, or RFC3339)")
	sev := fs.String("sev", "", "minimum severity (debug|info|warn|critical)")
	limit := fs.Int("limit", 64, "most recent N matches (0 = all)")
	follow := fs.Bool("follow", false, "stream live events after the backlog")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := url.Values{}
	if *trace != 0 {
		q.Set("trace", strconv.FormatUint(*trace, 10))
	}
	if *dev != "" {
		q.Set("device", *dev)
	}
	if *typ != "" {
		q.Set("type", *typ)
	}
	if *since != "" {
		q.Set("since", *since)
	}
	if *until != "" {
		q.Set("until", *until)
	}
	if *sev != "" {
		q.Set("sev", *sev)
	}
	q.Set("limit", strconv.Itoa(*limit))

	if *follow {
		q.Set("follow", "1")
		resp, err := http.Get("http://" + addr + "/debug/journal?" + q.Encode())
		if err != nil {
			return fmt.Errorf("%w (is iotsecd running with -telemetry-addr %s?)", err, addr)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			var e journal.Event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				continue
			}
			printEvent(e)
		}
		return sc.Err()
	}

	snap, err := fetchJournal(addr, q)
	if err != nil {
		return err
	}
	fmt.Printf("journal: %d events appended, %d tail drops, %d shown\n",
		snap.Appended, snap.TailDrops, len(snap.Events))
	for _, e := range snap.Events {
		printEvent(e)
	}
	return nil
}

// printEvent renders one journal line.
func printEvent(e journal.Event) {
	fmt.Printf("%6d %s [%s] %-13s %-12s trace=%-6d %s\n",
		e.Seq, e.Wall.Format("15:04:05.000"), e.Severity, e.Type, e.Device, e.TraceID, e.Detail)
}

// getJSON fetches one telemetry endpoint and decodes it into out.
func getJSON(addr, path string, q url.Values, out interface{}) error {
	client := &http.Client{Timeout: 5 * time.Second}
	u := "http://" + addr + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := client.Get(u)
	if err != nil {
		return fmt.Errorf("%w (is iotsecd running with -telemetry-addr %s?)", err, addr)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// printDigest renders one incident summary line.
func printDigest(dg forensics.Digest) {
	state := "open"
	if !dg.ClosedAt.IsZero() {
		state = "closed"
	}
	loop := "complete"
	if !dg.Complete {
		loop = "partial"
	}
	if dg.Truncated > 0 {
		loop += fmt.Sprintf(" trunc=%d", dg.Truncated)
	}
	shard := dg.Shard
	if shard == "" {
		shard = "-"
	}
	dev := dg.Device
	if dev == "" {
		dev = "-"
	}
	fmt.Printf("%-20s %s [%s] %-18s %-12s shard=%-10s trace=%-6d ev=%-3d %s/%s\n",
		dg.ID, dg.OpenedAt.Format("15:04:05.000"), dg.Severity, dg.Kind,
		dev, shard, dg.TraceID, dg.Events, state, loop)
}

// printIncidents drives the incident forensics plane: list the durable
// index, show one captured chain, export a replay scenario, list the
// fleet-merged view, or assemble one cross-shard timeline.
func printIncidents(addr string, args []string) error {
	mode := "list"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		mode = args[0]
		args = args[1:]
	}
	switch mode {
	case "list":
		fs := flag.NewFlagSet("incidents list", flag.ExitOnError)
		trace := fs.Uint64("trace", 0, "restrict to one causal chain")
		dev := fs.String("device", "", "restrict to one device")
		kind := fs.String("kind", "", "restrict to one incident kind")
		sev := fs.String("sev", "", "minimum severity (debug|info|warn|critical)")
		since := fs.String("since", "", "incidents opened since (duration like 5m, or RFC3339)")
		until := fs.String("until", "", "incidents opened until (duration like 5m, or RFC3339)")
		limit := fs.Int("limit", 64, "most recent N matches (0 = all)")
		offset := fs.Int("offset", 0, "skip the most recent N matches")
		if err := fs.Parse(args); err != nil {
			return err
		}
		q := url.Values{}
		if *trace != 0 {
			q.Set("trace", strconv.FormatUint(*trace, 10))
		}
		if *dev != "" {
			q.Set("device", *dev)
		}
		if *kind != "" {
			q.Set("kind", *kind)
		}
		if *sev != "" {
			q.Set("sev", *sev)
		}
		if *since != "" {
			q.Set("since", *since)
		}
		if *until != "" {
			q.Set("until", *until)
		}
		if *offset != 0 {
			q.Set("offset", strconv.Itoa(*offset))
		}
		q.Set("limit", strconv.Itoa(*limit))
		var list forensics.ListJSON
		if err := getJSON(addr, "/debug/incidents", q, &list); err != nil {
			return err
		}
		fmt.Printf("incidents: %d matched, %d shown (open %d, captured %d, tap evicted %d)\n",
			list.Total, len(list.Incidents),
			list.Stats.Open, list.Stats.Captured, list.Stats.TapEvicted)
		if st := list.Stats.StoreStats; st != nil {
			fmt.Printf("store: %s (%d segment(s), %d bytes, %d incident(s); dropped %d segment(s)/%d incident(s) under cap)\n",
				st.Dir, st.Segments, st.Bytes, st.Incidents, st.DroppedSegments, st.DroppedIncidents)
		}
		for _, dg := range list.Incidents {
			printDigest(dg)
		}
		return nil
	case "show":
		if len(args) != 1 {
			return fmt.Errorf("usage: incidents show <id>")
		}
		var inc forensics.Incident
		if err := getJSON(addr, "/debug/incidents", url.Values{"id": {args[0]}}, &inc); err != nil {
			return err
		}
		printDigest(inc.Digest())
		tl := inc.Timeline()
		fmt.Print(tl.Render())
		fmt.Printf("chain: %s\n", tl.Chain())
		return nil
	case "export":
		fs := flag.NewFlagSet("incidents export", flag.ExitOnError)
		out := fs.String("o", "", "write the scenario to a file (default stdout)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: incidents export [-o file] <id>")
		}
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get("http://" + addr + "/debug/incidents?" +
			url.Values{"id": {fs.Arg(0)}, "export": {"1"}}.Encode())
		if err != nil {
			return fmt.Errorf("%w (is iotsecd running with -telemetry-addr %s?)", err, addr)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("server: %s", resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		// Refuse to write an export that iotsim -replay would reject.
		sc, err := forensics.LoadScenario(body)
		if err != nil {
			return fmt.Errorf("server returned an invalid scenario: %w", err)
		}
		if *out == "" {
			_, err := os.Stdout.Write(body)
			return err
		}
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s scenario for %s (device %q, SLO %.1fs) to %s\n",
			sc.Kind, sc.Incident, sc.Device, sc.SLOSeconds, *out)
		fmt.Printf("replay with: iotsim -replay %s\n", *out)
		return nil
	case "fleet":
		var list controller.FleetIncidentsJSON
		if err := getJSON(addr, "/debug/fleet/incidents", nil, &list); err != nil {
			return err
		}
		fmt.Printf("fleet incidents: %d merged across shards\n", list.Total)
		for _, dg := range list.Incidents {
			printDigest(dg)
		}
		return nil
	case "timeline":
		if len(args) != 1 {
			return fmt.Errorf("usage: incidents timeline <trace>")
		}
		id, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil || id == 0 {
			return fmt.Errorf("trace id must be a positive integer, got %q", args[0])
		}
		var tl forensics.FleetTimeline
		if err := getJSON(addr, "/debug/fleet/incidents", url.Values{"trace": {args[0]}}, &tl); err != nil {
			return err
		}
		if len(tl.Events) == 0 {
			return fmt.Errorf("no fleet events for trace %d", id)
		}
		loop := "complete"
		if !tl.Complete {
			loop = "partial"
		}
		fmt.Printf("trace %d: %s chain across %d shard(s) %v (%s)\n",
			tl.TraceID, tl.Kind, len(tl.Shards), tl.Shards, loop)
		for _, se := range tl.Events {
			fmt.Printf("%s %-10s [%s] %-20s %-12s %s\n",
				se.Wall.Format("15:04:05.000"), se.Shard, se.Severity, se.Type, se.Device, se.Detail)
		}
		fmt.Printf("chain: %s\n", tl.Chain())
		return nil
	default:
		return fmt.Errorf("unknown incidents mode %q (want list|show|export|fleet|timeline)", mode)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mboxctl [-addr host:port] status|env|set-env <var> <value>|set-context <device> <context>
       mboxctl [-telemetry-addr host:port] stats [-json]|fleet [-json]|health|slo|crowd|trace <id>|journal [flags]
       mboxctl [-telemetry-addr host:port] incidents [list [flags]|show <id>|export [-o file] <id>|fleet|timeline <trace>]
       mboxctl [-telemetry-addr host:port] profiles [list|show <sku>|violations]
       mboxctl [-telemetry-addr host:port] controllers`)
	os.Exit(2)
}
