package core

import (
	"context"
	"fmt"

	"iotsec/internal/journal"
	"iotsec/internal/mbox"
	"iotsec/internal/telemetry"
)

// RegisterHealth registers the platform's core components in a
// component-health registry (the daemon passes
// telemetry.Default.Health() so /readyz aggregates them):
//
//   - "core" (critical): the policy/enforcement loop itself — Down
//     until Start and after Stop, when anomalies would be accepted but
//     never enforced.
//   - "mbox-cluster" (non-critical): µmbox placement capacity —
//     Degraded when every slot is in use, because the next posture
//     change that needs a fresh launch would fail.
func (p *Platform) RegisterHealth(h *telemetry.HealthRegistry) {
	h.Register("core", true, func() (telemetry.HealthState, string) {
		p.mu.Lock()
		started := p.started
		devices := len(p.devices)
		p.mu.Unlock()
		if !started {
			return telemetry.HealthDown, "platform not started (postures are not being enforced)"
		}
		if devices == 0 {
			return telemetry.HealthDegraded, "no devices under management"
		}
		return telemetry.HealthHealthy, ""
	})
	h.Register("mbox-cluster", false, func() (telemetry.HealthState, string) {
		total, used := p.Manager.Capacity()
		if total > 0 && used >= total {
			return telemetry.HealthDegraded, fmt.Sprintf(
				"cluster at capacity (%d/%d slots): next µmbox launch will fail", used, total)
		}
		return telemetry.HealthHealthy, ""
	})
}

// RegisterHealth registers the southbound channel's two halves:
//
//   - "southbound" (critical): the supervised switch agent. Down when
//     the supervisor has given up (reconnect budget exhausted) — the
//     link will not heal on its own; Degraded while reconnecting under
//     backoff (the switch serves its installed table per fail mode).
//   - "controller-steering" (critical): the controller side. Down when
//     zero switch sessions are connected — a quarantine FLOW_MOD
//     issued now would reach no switch.
func (s *Southbound) RegisterHealth(h *telemetry.HealthRegistry) {
	agent := s.Agent
	h.Register("southbound", true, func() (telemetry.HealthState, string) {
		if agent == nil {
			return telemetry.HealthDown, "no switch agent attached"
		}
		if agent.Stopped() {
			return telemetry.HealthDown, fmt.Sprintf(
				"agent supervisor stopped (reconnect budget exhausted; fail-%s, %d events buffered)",
				agent.FailMode(), agent.BufferedEvents())
		}
		if !agent.Connected() {
			return telemetry.HealthDegraded, fmt.Sprintf(
				"session down, reconnecting (fail-%s, %d events buffered, %d reconnects so far)",
				agent.FailMode(), agent.BufferedEvents(), agent.Reconnects())
		}
		return telemetry.HealthHealthy, ""
	})
	steering := s.Steering
	h.Register("controller-steering", true, func() (telemetry.HealthState, string) {
		if steering == nil {
			return telemetry.HealthDown, "no steering application"
		}
		if n := steering.Switches(); n == 0 {
			return telemetry.HealthDown, "no connected southbound switch sessions (quarantine FLOW_MODs have no target)"
		}
		return telemetry.HealthHealthy, ""
	})
}

// RegisterHealth registers the northbound link as
// "sigrepo-link:<identity>" (non-critical: crowd updates are
// advisory, local enforcement works without them).
func (c *CrowdLink) RegisterHealth(h *telemetry.HealthRegistry, identity string) {
	c.mc.RegisterHealth(h, identity, false)
}

// EscalateFailMode forces every launched µmbox pipeline to
// fail-closed — the SLO watchdog's escalation path: when the
// detect→enforce loop is demonstrably too slow, an element failure
// must drop traffic rather than forward it uninspected, because the
// compensating enforcement may not arrive in time. The per-pipeline
// stance in effect at escalation time is snapshotted so
// DeescalateFailMode restores exactly the operator's configuration.
// Idempotent while escalated. The transition is journaled on a fresh
// trace so forensic timelines show what the burn changed. Returns how
// many pipelines switched.
func (p *Platform) EscalateFailMode(reason string) int {
	p.mu.Lock()
	if p.failModeSnapshot == nil {
		snap := make(map[string]mbox.FailMode)
		for _, name := range p.Manager.Instances() {
			if inst, ok := p.Manager.Instance(name); ok {
				snap[name] = inst.Mbox.Pipeline().FailMode()
			}
		}
		p.failModeSnapshot = snap
	}
	p.mu.Unlock()
	n := p.Manager.SetFailModeAll(mbox.FailClosed)
	ctx, span := telemetry.StartSpan(context.Background(), "core.escalate_fail_mode")
	journal.Record(ctx, journal.TypeMboxReconfig, journal.Warn, "",
		fmt.Sprintf("fail-mode escalated to closed on %d pipeline(s): %s", n, reason))
	span.End()
	return n
}

// DeescalateFailMode restores the fail modes captured at escalation
// (pipelines launched during the episode keep fail-closed, the safe
// stance they were born with). No-op when not escalated.
func (p *Platform) DeescalateFailMode(reason string) int {
	p.mu.Lock()
	snap := p.failModeSnapshot
	p.failModeSnapshot = nil
	p.mu.Unlock()
	if snap == nil {
		return 0
	}
	n := 0
	for name, mode := range snap {
		inst, ok := p.Manager.Instance(name)
		if !ok {
			continue
		}
		if pl := inst.Mbox.Pipeline(); pl.FailMode() != mode {
			pl.SetFailMode(mode)
			n++
		}
	}
	ctx, span := telemetry.StartSpan(context.Background(), "core.deescalate_fail_mode")
	journal.Record(ctx, journal.TypeMboxReconfig, journal.Info, "",
		fmt.Sprintf("fail-mode restored on %d pipeline(s): %s", n, reason))
	span.End()
	return n
}
