package mbox

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/ids"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

func TestChallengeElementDirect(t *testing.T) {
	c := NewChallenge("rose")
	if c.Name() != "robot-check" {
		t.Errorf("name = %q", c.Name())
	}
	mkMgmt := func(args ...string) *Context {
		req := device.Request{Cmd: "OPEN", User: "admin", Pass: "0000", Args: args}
		src, dst := packet.MustParseIPv4("10.0.0.1"), packet.MustParseIPv4("10.0.0.2")
		tcp := &packet.TCP{SrcPort: 40000, DstPort: device.MgmtPort, Flags: packet.TCPPsh | packet.TCPAck}
		tcp.SetNetworkForChecksum(src, dst)
		b := packet.NewSerializeBuffer()
		_ = packet.SerializeLayers(b,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
			tcp, packet.NewPayload(req.Encode()),
		)
		frame := make([]byte, b.Len())
		copy(frame, b.Bytes())
		var injected [][]byte
		return &Context{
			Frame:  frame,
			Packet: packet.Decode(frame, packet.LayerTypeEthernet),
			Dir:    ToDevice,
			Inject: func(f []byte) { injected = append(injected, f) },
		}
	}

	// No captcha: dropped.
	if v := c.Process(mkMgmt()); v != Drop {
		t.Error("uncaptcha'd request passed")
	}
	// Wrong solution: dropped.
	if v := c.Process(mkMgmt("captcha:daisy")); v != Drop {
		t.Error("wrong solution passed")
	}
	// Correct solution: forwarded with the captcha stripped.
	ctx := mkMgmt("captcha:rose")
	if v := c.Process(ctx); v != Forward {
		t.Fatal("correct solution dropped")
	}
	p := packet.Decode(ctx.Frame, packet.LayerTypeEthernet)
	req, err := device.ParseRequest(p.TCP().LayerPayload())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range req.Args {
		if strings.HasPrefix(a, "captcha:") {
			t.Errorf("captcha not stripped: %v", req.Args)
		}
	}
	passed, rejected := c.Counters()
	if passed != 1 || rejected != 2 {
		t.Errorf("counters = %d/%d", passed, rejected)
	}
	// FromDevice and non-mgmt traffic pass untouched.
	rev := mkMgmt()
	rev.Dir = FromDevice
	if v := c.Process(rev); v != Forward {
		t.Error("from-device frame not forwarded")
	}
}

func TestLoggerTotalsAndReport(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	l := &Logger{Report: func(s string) {
		mu.Lock()
		lines = append(lines, s)
		mu.Unlock()
	}}
	if l.Name() != "logger" {
		t.Errorf("name = %q", l.Name())
	}
	ctx := testCtx(t, ToDevice, "x", 80)
	if v := l.Process(ctx); v != Forward {
		t.Error("logger must forward")
	}
	frames, bytes := l.Totals()
	if frames != 1 || bytes == 0 {
		t.Errorf("totals = %d/%d", frames, bytes)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 || !strings.Contains(lines[0], "TCP") {
		t.Errorf("report lines = %v", lines)
	}
}

func TestACLDirAndProtoPredicates(t *testing.T) {
	f := NewHeaderFilter(Allow,
		ACLRule{Action: Deny, Dir: DirPtr(ToDevice), Proto: ProtoPtr(packet.IPProtocolTCP)},
	)
	if v := f.Process(testCtx(t, ToDevice, "x", 80)); v != Drop {
		t.Error("to-device TCP should drop")
	}
	if v := f.Process(testCtx(t, FromDevice, "x", 80)); v != Forward {
		t.Error("from-device TCP should pass (direction predicate)")
	}
}

func TestContextGateSetPredicate(t *testing.T) {
	g := NewContextGate(func(string) bool { return false }, "ON")
	ctx := func() *Context {
		req := device.Request{Cmd: "ON"}
		src, dst := packet.MustParseIPv4("10.0.0.1"), packet.MustParseIPv4("10.0.0.2")
		tcp := &packet.TCP{SrcPort: 40000, DstPort: device.MgmtPort, Flags: packet.TCPPsh | packet.TCPAck}
		tcp.SetNetworkForChecksum(src, dst)
		b := packet.NewSerializeBuffer()
		_ = packet.SerializeLayers(b,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
			tcp, packet.NewPayload(req.Encode()),
		)
		frame := make([]byte, b.Len())
		copy(frame, b.Bytes())
		return &Context{Frame: frame, Packet: packet.Decode(frame, packet.LayerTypeEthernet), Dir: ToDevice}
	}
	if v := g.Process(ctx()); v != Drop {
		t.Error("closed gate passed")
	}
	g.SetPredicate(func(string) bool { return true })
	if v := g.Process(ctx()); v != Forward {
		t.Error("opened gate dropped")
	}
	if g.Blocked() != 1 {
		t.Errorf("blocked = %d", g.Blocked())
	}
}

func TestInsertInlineHelper(t *testing.T) {
	n := netsim.NewNetwork()
	aIP, bIP := packet.MustParseIPv4("10.0.0.1"), packet.MustParseIPv4("10.0.0.2")
	a := netsim.NewStack("a", device.MACFor(aIP), aIP)
	b := netsim.NewStack("b", device.MACFor(bIP), bIP)
	m := NewMbox("wire", NewPipeline(&Logger{}))
	if m.NodeName() != "wire" {
		t.Errorf("node name = %q", m.NodeName())
	}
	InsertInline(n, m, a.Attach(n), b.Attach(n), netsim.LinkOptions{})
	n.Start()
	defer n.Stop()
	defer a.Stop()
	defer b.Stop()

	got := make(chan string, 1)
	if err := b.HandleUDP(9, func(_ packet.IPv4Address, _ uint16, payload []byte) {
		got <- string(payload)
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.SendUDP(bIP, 9, 9, []byte("through the bump")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "through the bump" {
			t.Errorf("payload = %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("nothing crossed the inline µmbox")
	}
	if fwd, _ := m.Counters(); fwd == 0 {
		t.Error("µmbox counters empty")
	}
}

func TestManagerInstanceLookupAndDefaults(t *testing.T) {
	mgr := NewManager() // default single server
	mgr.TimeScale = 0
	if _, ok := mgr.Instance("ghost"); ok {
		t.Error("ghost instance found")
	}
	inst, err := mgr.Launch(context.Background(), "x", PlatformKind("weird"), NewPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if inst.BootTook != 100*time.Millisecond {
		t.Errorf("unknown platform boot = %v", inst.BootTook)
	}
	got, ok := mgr.Instance("x")
	if !ok || got != inst {
		t.Error("instance lookup broken")
	}
	if err := mgr.Terminate("ghost"); !errors.Is(err, ErrUnknownMbox) {
		t.Errorf("terminate ghost: %v", err)
	}
}

func TestAnomalyElementInline(t *testing.T) {
	profile := ids.NewProfile("dev")
	var anomalies []ids.Anomaly
	var mu sync.Mutex
	e := &AnomalyElement{
		Profile: profile,
		OnAnomaly: func(a ids.Anomaly) {
			mu.Lock()
			anomalies = append(anomalies, a)
			mu.Unlock()
		},
	}
	if e.Name() != "anomaly" {
		t.Errorf("name = %q", e.Name())
	}
	mk := func(srcIP, payload string) *Context {
		src, dst := packet.MustParseIPv4(srcIP), packet.MustParseIPv4("10.0.0.2")
		tcp := &packet.TCP{SrcPort: 40000, DstPort: 80, Flags: packet.TCPPsh | packet.TCPAck}
		tcp.SetNetworkForChecksum(src, dst)
		b := packet.NewSerializeBuffer()
		_ = packet.SerializeLayers(b,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
			tcp, packet.NewPayload([]byte(payload)),
		)
		frame := make([]byte, b.Len())
		copy(frame, b.Bytes())
		return &Context{Frame: frame, Packet: packet.Decode(frame, packet.LayerTypeEthernet), Dir: ToDevice}
	}
	// Train on the hub's traffic.
	for i := 0; i < 5; i++ {
		e.Process(mk("10.0.0.3", "IOT/1 STATUS\n"))
	}
	profile.EndTraining()
	// A new peer trips the detector.
	e.Process(mk("10.0.9.9", "IOT/1 STATUS\n"))
	mu.Lock()
	defer mu.Unlock()
	var sawNewPeer bool
	for _, a := range anomalies {
		if a.Kind == ids.AnomalyNewPeer {
			sawNewPeer = true
		}
	}
	if !sawNewPeer {
		t.Errorf("anomalies = %v", anomalies)
	}
}
