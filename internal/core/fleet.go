package core

import (
	"sync"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/telemetry"
)

// FleetSelfReport makes a single-gateway deployment a first-class
// shard of the fleet telemetry plane: the platform periodically rolls
// up its own device counts (total and per SKU), posture-apply volume,
// and detect→enforce latency into the global controller's fleet
// aggregator — the same transport a sharded hierarchy's local
// controllers use, so one gateway and a 10⁵-device fleet render
// through the same /debug/fleet view.
type FleetSelfReport struct {
	p       *Platform
	source  string
	agg     *controller.FleetAggregator
	builder *telemetry.RollupBuilder

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartFleetSelfReport begins pushing this platform's rollups into
// its own fleet aggregator under the given source name every interval
// (default 1s). e2e, when non-nil, supplies the detect→enforce
// histogram (the SLO tracker's end-to-end distribution); otherwise
// the Fig. 2 commit→enforcement histogram is used. Stop flushes one
// final rollup.
func (p *Platform) StartFleetSelfReport(source string, interval time.Duration, e2e *telemetry.Histogram) *FleetSelfReport {
	if source == "" {
		source = "gateway"
	}
	if interval <= 0 {
		interval = time.Second
	}
	if e2e == nil {
		e2e = mEnforceSeconds
	}
	r := &FleetSelfReport{
		p:      p,
		source: source,
		agg:    p.Global.Fleet(),
		// Posture applies stand in for handled events: on a single
		// gateway every committed change ends in (at most) one apply.
		builder: telemetry.NewRollupBuilder(source).
			AddCounter(controller.RollupEvents, mPostureApplies).
			AddHistogram(controller.RollupMTTR, e2e).
			AddGauge(controller.RollupDevices, func() float64 { return float64(p.DeviceCount()) }).
			AddGauge(controller.RollupHealthy, func() float64 { return 1 }),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// With forensics enabled, the shard report carries the incident
	// plane too: live pull handle for cross-shard assembly, digests
	// pushed with every flush.
	if cap := p.Forensics(); cap != nil {
		r.agg.AttachIncidentSource(source, cap)
	}
	go r.run(interval)
	return r
}

func (r *FleetSelfReport) run(interval time.Duration) {
	defer close(r.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			r.flush()
			return
		case <-ticker.C:
			r.flush()
		}
	}
}

// flush pushes one rollup, folding in the live per-SKU device counts
// (and the incident digests, with forensics enabled).
func (r *FleetSelfReport) flush() {
	roll := r.builder.Take(time.Now())
	for sku, n := range r.p.DevicesBySKU() {
		if roll.Gauges == nil {
			roll.Gauges = make(map[string]float64)
		}
		roll.Gauges[controller.RollupSKUPrefix+sku] = float64(n)
	}
	_ = r.agg.Report(roll)
	if cap := r.p.Forensics(); cap != nil {
		r.agg.ReportIncidents(r.source, cap.Digests())
	}
}

// Stop halts the reporter after a final flush. Idempotent.
func (r *FleetSelfReport) Stop() {
	r.once.Do(func() {
		close(r.stop)
		<-r.done
	})
}

// DeviceCount reports how many devices are under management.
func (p *Platform) DeviceCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.devices)
}

// DevicesBySKU counts managed devices per SKU.
func (p *Platform) DevicesBySKU() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int)
	for _, m := range p.devices {
		out[m.Device.Profile.SKU]++
	}
	return out
}
