// Package policy implements the paper's §3.2 security-policy
// abstraction: the system state is the product of every device's
// security context and every environment variable's discrete level,
// and each state assigns every device a security posture (which
// µmbox modules and rules its traffic must traverse). The package
// provides the deliberately brute-force FSM, the state-explosion
// arithmetic that motivates pruning, the two pruning strategies the
// paper sketches (independence and posture-equivalence collapsing),
// conflict detection, and the IFTTT-recipe strawman of §3.1 with its
// failure modes.
package policy

import (
	"fmt"
	"sort"
	"strings"
)

// SecurityContext is a device's security-relevant condition.
type SecurityContext string

// Standard security contexts (domains may extend these).
const (
	ContextNormal      SecurityContext = "normal"
	ContextSuspicious  SecurityContext = "suspicious"
	ContextCompromised SecurityContext = "compromised"
	ContextUnpatched   SecurityContext = "unpatched"
)

// Domain declares the variables the FSM ranges over: per-device
// security contexts and discrete environment variables. (Device
// operational attributes like alarm=on are modeled as environment
// variables of the state space; they are world state just like
// temperature.)
type Domain struct {
	deviceContexts map[string][]SecurityContext
	envLevels      map[string][]string
}

// NewDomain returns an empty domain.
func NewDomain() *Domain {
	return &Domain{
		deviceContexts: make(map[string][]SecurityContext),
		envLevels:      make(map[string][]string),
	}
}

// AddDevice declares a device and its possible security contexts
// (default: normal/suspicious/compromised if none given).
func (d *Domain) AddDevice(name string, contexts ...SecurityContext) {
	if len(contexts) == 0 {
		contexts = []SecurityContext{ContextNormal, ContextSuspicious, ContextCompromised}
	}
	d.deviceContexts[name] = contexts
}

// AddEnvVar declares an environment variable and its levels.
func (d *Domain) AddEnvVar(name string, levels ...string) {
	d.envLevels[name] = levels
}

// Devices lists declared devices, sorted.
func (d *Domain) Devices() []string {
	out := make([]string, 0, len(d.deviceContexts))
	for k := range d.deviceContexts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EnvVars lists declared environment variables, sorted.
func (d *Domain) EnvVars() []string {
	out := make([]string, 0, len(d.envLevels))
	for k := range d.envLevels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DeviceContexts returns a device's context domain.
func (d *Domain) DeviceContexts(name string) []SecurityContext {
	return d.deviceContexts[name]
}

// EnvLevels returns a variable's level domain.
func (d *Domain) EnvLevels(name string) []string { return d.envLevels[name] }

// StateCount is the size of the full product space |S| = ∏|Ci|×∏|Ej| —
// the combinatorial explosion of §3.2.
func (d *Domain) StateCount() float64 {
	count := 1.0
	for _, cs := range d.deviceContexts {
		count *= float64(len(cs))
	}
	for _, ls := range d.envLevels {
		count *= float64(len(ls))
	}
	return count
}

// State is one point of the product space.
type State struct {
	// Contexts maps device → security context.
	Contexts map[string]SecurityContext
	// Env maps environment variable → discrete level.
	Env map[string]string
}

// NewState builds an empty state.
func NewState() State {
	return State{Contexts: make(map[string]SecurityContext), Env: make(map[string]string)}
}

// Clone deep-copies the state.
func (s State) Clone() State {
	c := NewState()
	for k, v := range s.Contexts {
		c.Contexts[k] = v
	}
	for k, v := range s.Env {
		c.Env[k] = v
	}
	return c
}

// Key renders a stable identity string.
func (s State) Key() string {
	parts := make([]string, 0, len(s.Contexts)+len(s.Env))
	for k, v := range s.Contexts {
		parts = append(parts, "dev:"+k+"="+string(v))
	}
	for k, v := range s.Env {
		parts = append(parts, "env:"+k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// ProjectionKey renders the state restricted to the given variables
// (used by the pruned lookup structure). Variable names use the
// "dev:<name>" / "env:<name>" prefix convention.
func (s State) ProjectionKey(vars []string) string {
	parts := make([]string, 0, len(vars))
	for _, v := range vars {
		if name, ok := strings.CutPrefix(v, "dev:"); ok {
			parts = append(parts, v+"="+string(s.Contexts[name]))
		} else if name, ok := strings.CutPrefix(v, "env:"); ok {
			parts = append(parts, v+"="+s.Env[name])
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// String implements fmt.Stringer.
func (s State) String() string { return s.Key() }

// DefaultState is the state with every variable at its first domain
// value, used to complete example states in conflict reports and as a
// baseline in experiments.
func (d *Domain) DefaultState() State { return d.defaultState() }

// defaultState is the state with every variable at its first domain
// value, used to complete example states in conflict reports.
func (d *Domain) defaultState() State {
	s := NewState()
	for dev, ctxs := range d.deviceContexts {
		if len(ctxs) > 0 {
			s.Contexts[dev] = ctxs[0]
		}
	}
	for v, levels := range d.envLevels {
		if len(levels) > 0 {
			s.Env[v] = levels[0]
		}
	}
	return s
}

// EnumerateStates walks the full product space, invoking fn for each
// state; it stops early (returning false) if fn returns false. The
// space is exponential — callers use Limit to bound work.
func (d *Domain) EnumerateStates(limit int, fn func(State) bool) (visited int, complete bool) {
	type variable struct {
		isDevice bool
		name     string
		values   []string
	}
	var vars []variable
	for _, dev := range d.Devices() {
		vals := make([]string, len(d.deviceContexts[dev]))
		for i, c := range d.deviceContexts[dev] {
			vals[i] = string(c)
		}
		vars = append(vars, variable{isDevice: true, name: dev, values: vals})
	}
	for _, ev := range d.EnvVars() {
		vars = append(vars, variable{name: ev, values: d.envLevels[ev]})
	}

	idx := make([]int, len(vars))
	for {
		if limit > 0 && visited >= limit {
			return visited, false
		}
		s := NewState()
		for i, v := range vars {
			if v.isDevice {
				s.Contexts[v.name] = SecurityContext(v.values[idx[i]])
			} else {
				s.Env[v.name] = v.values[idx[i]]
			}
		}
		visited++
		if !fn(s) {
			return visited, false
		}
		// Odometer increment.
		pos := len(vars) - 1
		for pos >= 0 {
			idx[pos]++
			if idx[pos] < len(vars[pos].values) {
				break
			}
			idx[pos] = 0
			pos--
		}
		if pos < 0 {
			return visited, true
		}
	}
}

// FormatCount renders a (possibly astronomically large) state count.
func FormatCount(c float64) string {
	switch {
	case c < 1e6:
		return fmt.Sprintf("%.0f", c)
	case c < 1e9:
		return fmt.Sprintf("%.1fM", c/1e6)
	case c < 1e12:
		return fmt.Sprintf("%.1fG", c/1e9)
	default:
		return fmt.Sprintf("%.2e", c)
	}
}
