package learn

import (
	"fmt"
	"sort"
	"strings"
)

// StepKind classifies one move in an attack path.
type StepKind string

// Attack step kinds.
const (
	// StepExploit compromises a vulnerable device, gaining its
	// command interface.
	StepExploit StepKind = "exploit"
	// StepCommand issues a command on a controlled (or open) device.
	StepCommand StepKind = "command"
	// StepWait lets the physics propagate (the implicit-coupling
	// hop).
	StepWait StepKind = "wait"
)

// AttackStep is one move.
type AttackStep struct {
	Kind   StepKind
	Device string
	Cmd    string
}

// String renders the step.
func (s AttackStep) String() string {
	switch s.Kind {
	case StepExploit:
		return "exploit(" + s.Device + ")"
	case StepCommand:
		return s.Device + "." + s.Cmd
	default:
		return "wait"
	}
}

// PathString renders a whole path.
func PathString(path []AttackStep) string {
	parts := make([]string, len(path))
	for i, s := range path {
		parts[i] = s.String()
	}
	return strings.Join(parts, " -> ")
}

// AttackSearch finds shortest multi-stage attacks over the abstract
// world: the attacker may exploit any device listed vulnerable (to
// gain its command interface), command controlled or open devices,
// and wait for physics. This is the §4.2 use of model libraries for
// automatic multi-stage attack identification, in the spirit of the
// attack-graph literature the paper cites.
type AttackSearch struct {
	// Build constructs a fresh world.
	Build func() *World
	// Vulnerable lists remotely exploitable devices.
	Vulnerable map[string]bool
	// Open lists devices commandable without exploitation (open
	// access).
	Open map[string]bool
	// MaxDepth bounds the search (default 12 steps).
	MaxDepth int
	// SettleSteps is how many world steps one Wait performs
	// (default 2).
	SettleSteps int
}

// searchNode is one BFS state.
type searchNode struct {
	worldKey    string
	compromised string // sorted, comma-joined device set
}

// FindAttack returns a shortest attack path reaching the goal, or nil
// with exhausted=true if the bounded space contains none.
func (a *AttackSearch) FindAttack(goal func(*World) bool) (path []AttackStep, exhausted bool) {
	maxDepth := a.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	settle := a.SettleSteps
	if settle <= 0 {
		settle = 2
	}

	type queued struct {
		path []AttackStep
	}
	replay := func(path []AttackStep) *World {
		w := a.Build()
		compromised := map[string]bool{}
		for _, step := range path {
			switch step.Kind {
			case StepExploit:
				compromised[step.Device] = true
			case StepCommand:
				w.Command(step.Device, step.Cmd)
			case StepWait:
				for i := 0; i < settle; i++ {
					w.Step()
				}
			}
		}
		return w
	}
	compromisedSet := func(path []AttackStep) map[string]bool {
		out := map[string]bool{}
		for _, s := range path {
			if s.Kind == StepExploit {
				out[s.Device] = true
			}
		}
		return out
	}
	nodeOf := func(w *World, comp map[string]bool) searchNode {
		devs := make([]string, 0, len(comp))
		for d := range comp {
			devs = append(devs, d)
		}
		sort.Strings(devs)
		return searchNode{worldKey: w.Key(), compromised: strings.Join(devs, ",")}
	}

	start := a.Build()
	if goal(start) {
		return []AttackStep{}, false
	}
	visited := map[searchNode]bool{nodeOf(start, nil): true}
	queue := []queued{{path: nil}}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.path) >= maxDepth {
			continue
		}
		w := replay(cur.path)
		comp := compromisedSet(cur.path)

		// Candidate moves.
		var moves []AttackStep
		for _, dev := range w.Instances() {
			if a.Vulnerable[dev] && !comp[dev] {
				moves = append(moves, AttackStep{Kind: StepExploit, Device: dev})
			}
			if comp[dev] || a.Open[dev] {
				inst, _ := w.Instance(dev)
				for _, cmd := range inst.Model.Commands() {
					moves = append(moves, AttackStep{Kind: StepCommand, Device: dev, Cmd: cmd})
				}
			}
		}
		moves = append(moves, AttackStep{Kind: StepWait})

		for _, mv := range moves {
			next := append(append([]AttackStep{}, cur.path...), mv)
			w2 := replay(next)
			comp2 := compromisedSet(next)
			if goal(w2) {
				return next, false
			}
			node := nodeOf(w2, comp2)
			if visited[node] {
				continue
			}
			visited[node] = true
			queue = append(queue, queued{path: next})
		}
	}
	return nil, true
}

// Mitigation describes a defense applied during search: a command
// block on a device (what an IoTSec posture enforces).
type Mitigation struct {
	Device string
	Cmd    string
}

// FindAttackWithMitigations searches under enforcement: blocked
// commands are unavailable to the attacker. Used to verify that a
// posture actually cuts the attack graph.
func (a *AttackSearch) FindAttackWithMitigations(goal func(*World) bool, blocked []Mitigation) (path []AttackStep, exhausted bool) {
	blockSet := map[string]bool{}
	for _, m := range blocked {
		blockSet[m.Device+"."+m.Cmd] = true
	}
	orig := a.Build
	defer func() { a.Build = orig }()
	a.Build = func() *World {
		return orig()
	}
	// Wrap the search by filtering moves: easiest via a goal wrapper
	// is not possible, so re-implement with a filtered command set by
	// temporarily removing transitions.
	filtered := func() *World {
		w := orig()
		for _, dev := range w.Instances() {
			inst, _ := w.Instance(dev)
			needsCopy := false
			for cmd := range inst.Model.Transitions {
				if blockSet[dev+"."+cmd] {
					needsCopy = true
				}
			}
			if !needsCopy {
				continue
			}
			// Copy-on-write the model minus blocked transitions.
			m := *inst.Model
			m.Transitions = make(map[string]map[string]string, len(inst.Model.Transitions))
			for cmd, t := range inst.Model.Transitions {
				if !blockSet[dev+"."+cmd] {
					m.Transitions[cmd] = t
				}
			}
			inst.Model = &m
		}
		return w
	}
	a.Build = filtered
	return a.FindAttack(goal)
}

// GoalEnv builds a goal predicate over an environment level.
func GoalEnv(varName, level string) func(*World) bool {
	return func(w *World) bool { return w.Env(varName) == level }
}

// GoalDeviceState builds a goal predicate over a device state.
func GoalDeviceState(device, state string) func(*World) bool {
	return func(w *World) bool {
		inst, ok := w.Instance(device)
		return ok && inst.State == state
	}
}

// DescribeAttack renders a human-readable narrative.
func DescribeAttack(path []AttackStep) string {
	if path == nil {
		return "no attack found"
	}
	if len(path) == 0 {
		return "goal already satisfied"
	}
	var b strings.Builder
	for i, s := range path {
		fmt.Fprintf(&b, "%d. %s\n", i+1, s)
	}
	return b.String()
}
