package learn

import (
	"testing"

	"iotsec/internal/policy"
)

// fig3Policy builds the Figure 3 FSM over the abstract world's device
// names.
func fig3Policy() *policy.FSM {
	d := policy.NewDomain()
	d.AddDevice("firealarm", policy.ContextNormal, policy.ContextSuspicious)
	d.AddDevice("window", policy.ContextNormal, policy.ContextSuspicious)
	d.AddDevice("plug", policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "alarm-suspicious-blocks-window-open",
		Conditions: []policy.Condition{policy.DeviceIs("firealarm", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{BlockCommands: []string{"OPEN"}},
		Priority:   10,
	})
	f.AddRule(policy.Rule{
		Name:       "plug-suspicious-blocks-on",
		Conditions: []policy.Condition{policy.DeviceIs("plug", policy.ContextSuspicious)},
		Device:     "plug",
		Posture:    policy.Posture{BlockCommands: []string{"ON"}},
		Priority:   10,
	})
	return f
}

func TestMitigationsFromPostures(t *testing.T) {
	w := smartHomeWorld()
	ms := MitigationsFromPostures(w, map[string]policy.Posture{
		"plug":   {BlockCommands: []string{"ON"}},
		"window": {Isolate: true},
		"ghost":  {Isolate: true}, // undeclared device: ignored
	})
	got := map[string]bool{}
	for _, m := range ms {
		got[m.Device+"."+m.Cmd] = true
	}
	if !got["plug.ON"] {
		t.Errorf("mitigations = %v", ms)
	}
	// Isolation blocks the window's whole command set.
	if !got["window.OPEN"] || !got["window.CLOSE"] {
		t.Errorf("isolation incomplete: %v", ms)
	}
	if got["ghost.ON"] {
		t.Error("undeclared device produced mitigations")
	}
}

func TestCheckSafetyFindsAndClosesHole(t *testing.T) {
	search := &AttackSearch{
		Build:      smartHomeWorld,
		Vulnerable: map[string]bool{"plug": true, "window": true},
		MaxDepth:   8,
	}
	bad := GoalEnv("window", "open")

	// No enforcement: unsafe, with a concrete witness.
	report := CheckSafety(search, nil, bad)
	if report.Holds {
		t.Fatal("unenforced world reported safe")
	}
	if report.Witness == nil {
		t.Fatal("no witness for the violation")
	}

	// Blocking window.OPEN alone is NOT enough: the implicit route
	// through the plug's heat remains.
	report = CheckSafety(search, map[string]policy.Posture{
		"window": {BlockCommands: []string{"OPEN"}},
	}, bad)
	if report.Holds {
		t.Fatal("verifier missed the implicit route through the environment")
	}
	var usesPlug bool
	for _, s := range report.Witness {
		if s.Device == "plug" {
			usesPlug = true
		}
	}
	if !usesPlug {
		t.Errorf("witness should route through the plug: %s", PathString(report.Witness))
	}

	// Blocking both the explicit and the implicit route closes it.
	report = CheckSafety(search, map[string]policy.Posture{
		"window": {BlockCommands: []string{"OPEN"}},
		"plug":   {BlockCommands: []string{"ON"}},
	}, bad)
	if !report.Holds || !report.Exhausted {
		t.Errorf("full mitigation reported unsafe: %+v", report)
	}
}

func TestVerifyPolicyStates(t *testing.T) {
	fsm := fig3Policy()
	search := &AttackSearch{
		Build:      smartHomeWorld,
		Vulnerable: map[string]bool{"window": true, "plug": true},
		MaxDepth:   8,
	}
	bad := GoalEnv("window", "open")

	normal := fsm.Domain.DefaultState()
	alarmSuspicious := normal.Clone()
	alarmSuspicious.Contexts["firealarm"] = policy.ContextSuspicious
	bothSuspicious := alarmSuspicious.Clone()
	bothSuspicious.Contexts["plug"] = policy.ContextSuspicious

	reports := VerifyPolicyStates(search, fsm, []policy.State{normal, alarmSuspicious, bothSuspicious}, bad)

	// Normal state: no blocks at all → window trivially openable.
	if reports[normal.Key()].Holds {
		t.Error("normal state reported safe (nothing is blocked there)")
	}
	// Alarm suspicious: OPEN blocked, but the plug heat route is
	// still there — the audit must expose this residual hole.
	if reports[alarmSuspicious.Key()].Holds {
		t.Error("audit missed the residual implicit route")
	}
	// Both suspicious: OPEN and plug.ON blocked → safe.
	if !reports[bothSuspicious.Key()].Holds {
		t.Errorf("fully mitigated state reported unsafe: %s",
			PathString(reports[bothSuspicious.Key()].Witness))
	}
}
