package profile

import (
	"encoding/json"
	"net/http"
)

// Report is the /debug/profiles document: the accepted profile set,
// enforcement roster, recent violations, and engine counters.
type Report struct {
	Profiles   []*Profile  `json:"profiles"`
	Enforced   []string    `json:"enforced"`
	Violations []Violation `json:"violations"`
	Rogues     []string    `json:"rogues"`
	Stats      EngineStats `json:"stats"`
}

// Snapshot assembles the report.
func (e *Engine) Snapshot() Report {
	return Report{
		Profiles:   e.Profiles(),
		Enforced:   e.EnforcedDevices(),
		Violations: e.Violations(),
		Rogues:     e.Rogues(),
		Stats:      e.Stats(),
	}
}

// Handler serves the report as JSON (mounted at /debug/profiles; read
// by `mboxctl profiles`).
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Snapshot())
	})
}
