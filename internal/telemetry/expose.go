package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Samples {
			fmt.Fprintf(bw, "%s%s%s %s\n", f.Name, s.Suffix, s.Labels.String(), formatValue(s.Value))
		}
	}
	return bw.Flush()
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SnapshotJSON is the machine-readable registry dump served at
// /debug/telemetry and appended by flush hooks. The shape is stable so
// benchmark runs can be diffed across commits.
type SnapshotJSON struct {
	TakenAt time.Time    `json:"taken_at"`
	Metrics []MetricJSON `json:"metrics"`
	Spans   SpansJSON    `json:"spans"`
}

// MetricJSON is one metric family in a snapshot.
type MetricJSON struct {
	Name    string       `json:"name"`
	Kind    Kind         `json:"kind"`
	Help    string       `json:"help,omitempty"`
	Samples []SampleJSON `json:"samples"`
}

// SampleJSON is one series point in a snapshot.
type SampleJSON struct {
	Suffix string  `json:"suffix,omitempty"`
	Labels Labels  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// SpansJSON summarizes the span store in a snapshot.
type SpansJSON struct {
	Started  uint64         `json:"started"`
	Finished uint64         `json:"finished"`
	Recent   []FinishedSpan `json:"recent,omitempty"`
}

// Snapshot captures the registry (including up to recentSpans recent
// spans; <= 0 means 32).
func (r *Registry) Snapshot(recentSpans int) *SnapshotJSON {
	if recentSpans <= 0 {
		recentSpans = 32
	}
	snap := &SnapshotJSON{TakenAt: time.Now()}
	for _, f := range r.families() {
		mj := MetricJSON{Name: f.Name, Kind: f.Kind, Help: f.Help}
		for _, s := range f.Samples {
			mj.Samples = append(mj.Samples, SampleJSON{Suffix: s.Suffix, Labels: s.Labels, Value: s.Value})
		}
		snap.Metrics = append(snap.Metrics, mj)
	}
	started, finished := r.spans.Stats()
	snap.Spans = SpansJSON{Started: started, Finished: finished, Recent: r.spans.Recent(recentSpans)}
	return snap
}

// Handler serves the Prometheus text format (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugHandler serves the JSON snapshot (mount at /debug/telemetry).
func (r *Registry) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 32
		if s := req.URL.Query().Get("spans"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot(n))
	})
}

// Server is a telemetry HTTP listener serving /metrics and
// /debug/telemetry. Close tears it down without leaking goroutines.
type Server struct {
	srv *http.Server
	ln  net.Listener

	// debugOpen, when set, disables the loopback-only guard on the
	// /debug/ surfaces (pprof, telemetry snapshot, journal mounts).
	debugOpen atomic.Bool

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// AllowRemoteDebug opens the /debug/ surfaces (pprof profiles, span
// snapshots, forensic journal mounts) to non-loopback clients. By
// default they answer only to loopback peers, because profiling and
// forensic event data are served unauthenticated: binding the
// telemetry address to a routable interface must not expose them.
// /metrics is always open (scrapers are expected to be remote).
func (s *Server) AllowRemoteDebug() { s.debugOpen.Store(true) }

// isLoopback reports whether an http RemoteAddr is a loopback peer.
// Unparseable addresses count as non-loopback (fail closed).
func isLoopback(remoteAddr string) bool {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// guardDebug wraps a /debug/ handler in the loopback-only policy.
func (s *Server) guardDebug(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if !s.debugOpen.Load() && !isLoopback(req.RemoteAddr) {
			http.Error(w, "debug endpoints are loopback-only (enable remote debug to open them)",
				http.StatusForbidden)
			return
		}
		h.ServeHTTP(w, req)
	})
}

// Mount adds an extra handler to a telemetry server's mux — how the
// journal (and any future debug surface) rides on the same listener
// without telemetry depending on it.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// Serve starts a telemetry server on addr (use port 0 for ephemeral),
// returning the server and its bound address. Besides /metrics,
// /healthz (liveness), /readyz (aggregated readiness) and
// /debug/telemetry, the mux carries the net/http/pprof surface under
// /debug/pprof/ and any extra mounts; the runtime-stats collector is
// registered so every scrape includes iotsec_runtime_* gauges.
//
// Everything under /debug/ (pprof, telemetry snapshot, and mounts)
// is restricted to loopback clients unless AllowRemoteDebug is called
// on the returned server — binding addr to a routable interface must
// not expose unauthenticated profiling or forensic data. /metrics
// stays open for remote scrapers.
func (r *Registry) Serve(addr string, mounts ...Mount) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry: listen: %w", err)
	}
	r.RegisterRuntimeStats()
	s := &Server{
		ln:   ln,
		done: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	// Probe endpoints are open like /metrics: orchestrators probing
	// liveness/readiness are expected to be remote, and the responses
	// carry operational state only (no profiles, no forensic events).
	mux.Handle("/healthz", r.health.LivenessHandler())
	mux.Handle("/readyz", r.health.ReadinessHandler())
	mux.Handle("/debug/telemetry", s.guardDebug(r.DebugHandler()))
	mux.Handle("/debug/pprof/", s.guardDebug(http.HandlerFunc(pprof.Index)))
	mux.Handle("/debug/pprof/cmdline", s.guardDebug(http.HandlerFunc(pprof.Cmdline)))
	mux.Handle("/debug/pprof/profile", s.guardDebug(http.HandlerFunc(pprof.Profile)))
	mux.Handle("/debug/pprof/symbol", s.guardDebug(http.HandlerFunc(pprof.Symbol)))
	mux.Handle("/debug/pprof/trace", s.guardDebug(http.HandlerFunc(pprof.Trace)))
	for _, m := range mounts {
		mux.Handle(m.Pattern, s.guardDebug(m.Handler))
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns on Close
	}()
	return s, ln.Addr().String(), nil
}

// Addr reports the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, drops open connections, and waits for the
// serve goroutine to exit. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Close()
	<-s.done
	return err
}

// StartFlusher invokes fn with a fresh snapshot every interval until
// the returned stop function runs (which flushes one final time). Use
// it to append benchmark-comparable JSON lines to a file or pipe.
func (r *Registry) StartFlusher(interval time.Duration, fn func(*SnapshotJSON)) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				fn(r.Snapshot(0))
				return
			case <-t.C:
				fn(r.Snapshot(0))
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
