package device

import (
	"fmt"
	"strconv"

	"iotsec/internal/envsim"
	"iotsec/internal/packet"
)

// FireAlarm is a NEST-Protect-class smoke/CO alarm. It senses the
// environment every tick and raises its alarm state when smoke crosses
// the threshold. Its flaw is the Figure 3 backdoor: a maintenance
// token bypasses authentication — the event the policy FSM keys its
// "suspicious" transition on.
type FireAlarm struct {
	*Device
	// Threshold is the smoke concentration that trips the alarm.
	Threshold float64
}

// AlarmBackdoorToken is the undocumented maintenance token.
const AlarmBackdoorToken = "fa-maint-11"

// FireAlarmProfile is the SKU.
func FireAlarmProfile() Profile {
	return Profile{
		SKU:    "nest-protect-fw1.4",
		Class:  "fire-alarm",
		Vendor: "Nest",
		Vulns: []Vulnerability{
			{Class: VulnBackdoor, Detail: AlarmBackdoorToken},
			{Class: VulnDefaultCredentials, Detail: "nest:nest"},
		},
	}
}

// NewFireAlarm builds the alarm.
func NewFireAlarm(name string, ip packet.IPv4Address) *FireAlarm {
	f := &FireAlarm{
		Device:    New(name, FireAlarmProfile(), MACFor(ip), ip),
		Threshold: 0.2,
	}
	f.Set("alarm", "ok")
	f.Handle("SILENCE", func(d *Device, _ Request) Response {
		d.Set("alarm", "ok")
		return Response{OK: true, Data: "alarm=ok"}
	})
	f.Handle("TEST", func(d *Device, _ Request) Response {
		d.Set("alarm", "alarm")
		d.Emit(EventSensor, "test-alarm")
		return Response{OK: true, Data: "alarm=alarm"}
	})
	f.OnTick(func(s envsim.Snapshot) {
		if s.Get(envsim.VarSmoke) >= f.Threshold {
			if f.Get("alarm") != "alarm" {
				f.Emit(EventSensor, "smoke=yes")
			}
			f.Set("alarm", "alarm")
		} else if f.Get("alarm") == "alarm" && s.Get(envsim.VarSmoke) < f.Threshold/2 {
			f.Set("alarm", "ok")
		}
	})
	return f
}

// Thermostat is a NEST-class HVAC controller: it reads room
// temperature each tick and drives heating/cooling toward its target.
type Thermostat struct {
	*Device
}

// ThermostatProfile is the SKU.
func ThermostatProfile() Profile {
	return Profile{
		SKU:    "nest-thermo-v3",
		Class:  "thermostat",
		Vendor: "Nest",
		Vulns: []Vulnerability{
			{Class: VulnDefaultCredentials, Detail: "nest:nest"},
		},
	}
}

// NewThermostat builds a thermostat targeting 22°C, mode auto.
func NewThermostat(name string, ip packet.IPv4Address) *Thermostat {
	t := &Thermostat{Device: New(name, ThermostatProfile(), MACFor(ip), ip)}
	t.Set("target", "22.0")
	t.Set("mode", "auto")
	t.Set("hvac", "idle")
	t.Handle("SET_TARGET", func(d *Device, req Request) Response {
		if len(req.Args) != 1 {
			return Response{OK: false, Data: "usage: SET_TARGET <celsius>"}
		}
		if _, err := strconv.ParseFloat(req.Args[0], 64); err != nil {
			return Response{OK: false, Data: "bad target"}
		}
		d.Set("target", req.Args[0])
		return Response{OK: true, Data: "target=" + req.Args[0]}
	})
	t.Handle("SET_MODE", func(d *Device, req Request) Response {
		if len(req.Args) != 1 || (req.Args[0] != "auto" && req.Args[0] != "off") {
			return Response{OK: false, Data: "usage: SET_MODE <auto|off>"}
		}
		d.Set("mode", req.Args[0])
		return Response{OK: true, Data: "mode=" + req.Args[0]}
	})
	t.Handle("READ", func(d *Device, _ Request) Response {
		temp := 0.0
		if env := d.Env(); env != nil {
			temp = env.Get(envsim.VarTemperature)
		}
		return Response{OK: true, Data: fmt.Sprintf("temperature=%.2f", temp)}
	})
	t.OnTick(func(s envsim.Snapshot) {
		env := t.Env()
		if env == nil {
			return
		}
		if t.Get("mode") != "auto" {
			t.Set("hvac", "off")
			env.Set("hvac_heat_rate", 0)
			env.Set("hvac_power", 0)
			return
		}
		target, _ := strconv.ParseFloat(t.Get("target"), 64)
		temp := s.Get(envsim.VarTemperature)
		switch {
		case temp < target-0.5:
			t.Set("hvac", "heating")
			env.Set("hvac_heat_rate", 0.004)
			env.Set("hvac_power", 2500)
		case temp > target+0.5:
			t.Set("hvac", "cooling")
			env.Set("hvac_heat_rate", -0.004)
			env.Set("hvac_power", 2500)
		default:
			t.Set("hvac", "idle")
			env.Set("hvac_heat_rate", 0)
			env.Set("hvac_power", 0)
		}
	})
	return t
}

// LightSensor reports ambient light; coupled to bulbs only through
// the room (the canonical implicit dependency of §1).
type LightSensor struct {
	*Device
}

// LightSensorProfile is the SKU.
func LightSensorProfile() Profile {
	return Profile{
		SKU:    "luxsense-1",
		Class:  "light-sensor",
		Vendor: "LuxSense",
		Vulns: []Vulnerability{
			{Class: VulnOpenAccess, Detail: "read-only, no auth"},
		},
	}
}

// NewLightSensor builds the sensor.
func NewLightSensor(name string, ip packet.IPv4Address) *LightSensor {
	l := &LightSensor{Device: New(name, LightSensorProfile(), MACFor(ip), ip)}
	l.Set("light", "unknown")
	l.Handle("READ", func(d *Device, _ Request) Response {
		lux := 0.0
		if env := d.Env(); env != nil {
			lux = env.Get(envsim.VarLight)
		}
		return Response{OK: true, Data: fmt.Sprintf("light=%.0f", lux)}
	})
	l.OnTick(func(s envsim.Snapshot) {
		level := "dark"
		if s.Get(envsim.VarLight) >= 100 {
			level = "lit"
		}
		l.Set("light", level)
	})
	return l
}

// MotionSensor reports room occupancy (what the Figure 5 policy keys
// on, via the camera's person detection or this sensor).
type MotionSensor struct {
	*Device
}

// MotionSensorProfile is the SKU.
func MotionSensorProfile() Profile {
	return Profile{
		SKU:    "scout-motion-2",
		Class:  "motion-sensor",
		Vendor: "Scout",
		Vulns:  nil,
	}
}

// NewMotionSensor builds the sensor.
func NewMotionSensor(name string, ip packet.IPv4Address) *MotionSensor {
	m := &MotionSensor{Device: New(name, MotionSensorProfile(), MACFor(ip), ip)}
	m.creds["scout"] = "scout-strong-pw"
	m.Set("presence", "unknown")
	m.OnTick(func(s envsim.Snapshot) {
		presence := "away"
		if s.Get(envsim.VarOccupancy) >= 0.5 {
			presence = "home"
		}
		if m.Get("presence") != presence {
			m.Emit(EventSensor, "presence="+presence)
		}
		m.Set("presence", presence)
	})
	return m
}

// SmartMeter emulates the hacked-to-lower-bills meter of §1: its
// calibration interface is fully open, so anyone can scale the
// readings down.
type SmartMeter struct {
	*Device
}

// SmartMeterProfile is the SKU.
func SmartMeterProfile() Profile {
	return Profile{
		SKU:    "gridmeter-e350",
		Class:  "smart-meter",
		Vendor: "GridCo",
		Vulns: []Vulnerability{
			{Class: VulnOpenAccess, Detail: "calibration interface unauthenticated"},
		},
	}
}

// NewSmartMeter builds a meter with calibration 1.0.
func NewSmartMeter(name string, ip packet.IPv4Address) *SmartMeter {
	m := &SmartMeter{Device: New(name, SmartMeterProfile(), MACFor(ip), ip)}
	m.Set("calibration", "1.0")
	m.Handle("READ", func(d *Device, _ Request) Response {
		power := 0.0
		if env := d.Env(); env != nil {
			power = env.Get(envsim.VarPower)
		}
		cal, _ := strconv.ParseFloat(d.Get("calibration"), 64)
		return Response{OK: true, Data: fmt.Sprintf("watts=%.0f", power*cal)}
	})
	m.Handle("SET_CALIBRATION", func(d *Device, req Request) Response {
		if len(req.Args) != 1 {
			return Response{OK: false, Data: "usage: SET_CALIBRATION <factor>"}
		}
		if _, err := strconv.ParseFloat(req.Args[0], 64); err != nil {
			return Response{OK: false, Data: "bad factor"}
		}
		d.Set("calibration", req.Args[0])
		return Response{OK: true, Data: "calibration=" + req.Args[0]}
	})
	return m
}
