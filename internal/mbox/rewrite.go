package mbox

import (
	"errors"

	"iotsec/internal/packet"
)

// errNotTCPData reports a frame without a rewritable TCP payload.
var errNotTCPData = errors.New("mbox: frame has no TCP payload")

// rewriteTCPPayload rebuilds an eth/ip/tcp frame around a new payload,
// preserving addresses, ports, sequence numbers and flags while
// recomputing lengths and checksums. Our message-oriented transport
// acknowledges whole messages, so payload length changes are safe.
func rewriteTCPPayload(p *packet.Packet, newPayload []byte) ([]byte, error) {
	eth, ip, tcp := p.Ethernet(), p.IPv4(), p.TCP()
	if eth == nil || ip == nil || tcp == nil {
		return nil, errNotTCPData
	}
	out := &packet.TCP{
		SrcPort: tcp.SrcPort, DstPort: tcp.DstPort,
		Seq: tcp.Seq, Ack: tcp.Ack,
		Flags: tcp.Flags, Window: tcp.Window,
	}
	out.SetNetworkForChecksum(ip.SrcIP, ip.DstIP)
	b := packet.NewSerializeBuffer()
	layers := []packet.SerializableLayer{
		&packet.Ethernet{SrcMAC: eth.SrcMAC, DstMAC: eth.DstMAC, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: ip.SrcIP, DstIP: ip.DstIP, Protocol: packet.IPProtocolTCP, TTL: ip.TTL, ID: ip.ID},
		out,
	}
	if len(newPayload) > 0 {
		layers = append(layers, packet.NewPayload(newPayload))
	}
	if err := packet.SerializeLayers(b, layers...); err != nil {
		return nil, err
	}
	frame := make([]byte, b.Len())
	copy(frame, b.Bytes())
	return frame, nil
}

// forgeRST builds a reset segment toward the sender of the given
// packet, terminating its connection attempt.
func forgeRST(p *packet.Packet) ([]byte, error) {
	eth, ip, tcp := p.Ethernet(), p.IPv4(), p.TCP()
	if eth == nil || ip == nil || tcp == nil {
		return nil, errNotTCPData
	}
	rst := &packet.TCP{
		SrcPort: tcp.DstPort, DstPort: tcp.SrcPort,
		Seq: 0, Ack: tcp.Seq + 1,
		Flags: packet.TCPRst,
	}
	rst.SetNetworkForChecksum(ip.DstIP, ip.SrcIP)
	b := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: eth.DstMAC, DstMAC: eth.SrcMAC, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: ip.DstIP, DstIP: ip.SrcIP, Protocol: packet.IPProtocolTCP},
		rst,
	)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, b.Len())
	copy(frame, b.Bytes())
	return frame, nil
}
