package journal

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestSubscribeDeliversInOrder: a tap sees every append, oldest first,
// and Drain empties it.
func TestSubscribeDeliversInOrder(t *testing.T) {
	j := New(64)
	sub := j.Subscribe(16)
	defer sub.Close()

	for i := 0; i < 5; i++ {
		j.RecordTrace(uint64(i+1), TypeAnomaly, Info, "d", fmt.Sprintf("e%d", i))
	}
	select {
	case <-sub.Wait():
	case <-time.After(time.Second):
		t.Fatal("Wait never woke after appends")
	}
	got := sub.Drain()
	if len(got) != 5 {
		t.Fatalf("drained %d events, want 5", len(got))
	}
	for i, e := range got {
		if e.TraceID != uint64(i+1) {
			t.Fatalf("event %d has trace %d, want %d (out of order)", i, e.TraceID, i+1)
		}
	}
	if sub.Pending() != 0 {
		t.Fatalf("Pending = %d after Drain, want 0", sub.Pending())
	}
	if sub.Drain() != nil {
		t.Fatal("second Drain must return nil")
	}
}

// TestSubscribeDropOldest: when the consumer lags past the buffer, the
// OLDEST events are evicted (and counted), the newest retained — the
// opposite of Tail's drop-newest channel sends.
func TestSubscribeDropOldest(t *testing.T) {
	j := New(64)
	sub := j.Subscribe(4)
	defer sub.Close()

	for i := 1; i <= 10; i++ {
		j.RecordTrace(uint64(i), TypeAnomaly, Info, "d", "e")
	}
	if ev := sub.Evicted(); ev != 6 {
		t.Fatalf("Evicted = %d, want 6", ev)
	}
	got := sub.Drain()
	if len(got) != 4 {
		t.Fatalf("drained %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := uint64(7 + i); e.TraceID != want {
			t.Fatalf("event %d has trace %d, want %d (newest must survive)", i, e.TraceID, want)
		}
	}
}

// TestSubscribeCloseDetaches: Close is idempotent, closes Done, stops
// delivery, and leaves already-buffered events drainable.
func TestSubscribeCloseDetaches(t *testing.T) {
	j := New(64)
	sub := j.Subscribe(8)
	j.Record(context.Background(), TypeAnomaly, Info, "d", "before close")

	sub.Close()
	sub.Close() // idempotent
	select {
	case <-sub.Done():
	default:
		t.Fatal("Done not closed after Close")
	}

	j.Record(context.Background(), TypeAnomaly, Info, "d", "after close")
	got := sub.Drain()
	if len(got) != 1 || got[0].Detail != "before close" {
		t.Fatalf("drained %v, want only the pre-close event", got)
	}
}

// TestSubscribeIndependentOfTail: taps and tail subscribers coexist;
// detaching one leaves the other delivering.
func TestSubscribeIndependentOfTail(t *testing.T) {
	j := New(64)
	ch, cancel := j.Tail(8)
	sub := j.Subscribe(8)
	defer sub.Close()

	j.Record(context.Background(), TypeAnomaly, Info, "d", "both")
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("tail subscriber missed the event")
	}
	if sub.Pending() != 1 {
		t.Fatalf("tap Pending = %d, want 1", sub.Pending())
	}
	sub.Drain()

	cancel()
	j.Record(context.Background(), TypeAnomaly, Info, "d", "tap only")
	if sub.Pending() != 1 {
		t.Fatalf("tap Pending = %d after tail cancel, want 1", sub.Pending())
	}
}

// BenchmarkJournalAppendNoTap is the baseline hot path with no
// subscriber of any kind attached: the <100ns, zero-alloc budget the
// instrumented packages rely on. The SLO plane must not change this —
// with no tap the append fast path is one extra atomic load.
func BenchmarkJournalAppendNoTap(b *testing.B) {
	j := New(8192)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record(ctx, TypeDeviceEvent, Debug, "bench", "event")
	}
}

// BenchmarkJournalAppendWithTap measures the same append with an
// attached (undrained) tap: the cost of the SLO plane on the hot path.
// Budget: ≤5% over the no-tap baseline; still zero allocations (the
// tap ring is preallocated and evicts in place).
func BenchmarkJournalAppendWithTap(b *testing.B) {
	j := New(8192)
	sub := j.Subscribe(4096)
	defer sub.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record(ctx, TypeDeviceEvent, Debug, "bench", "event")
	}
}

// BenchmarkJournalAppendWithDrainedTap pairs the tap with a draining
// consumer, the steady state the tracker runs in.
func BenchmarkJournalAppendWithDrainedTap(b *testing.B) {
	j := New(8192)
	sub := j.Subscribe(4096)
	defer sub.Close()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-sub.Wait():
				sub.Drain()
			}
		}
	}()
	defer close(stop)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record(ctx, TypeDeviceEvent, Debug, "bench", "event")
	}
}
