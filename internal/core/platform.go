// Package core is IoTSec itself: the facade that assembles the
// substrates into the Figure 2 architecture. Every device attaches to
// the network through its own dynamically launched µmbox (the tunnel
// of Figure 2); device events, IDS alerts, anomaly detections and
// environment readings feed the controller's global view; the policy
// FSM maps the resulting system state to per-device postures; and the
// orchestrator translates posture deltas into live µmbox pipeline
// reconfigurations.
package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/forensics"
	"iotsec/internal/ids"
	"iotsec/internal/journal"
	"iotsec/internal/mbox"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
	"iotsec/internal/telemetry"
)

// Options configure a Platform.
type Options struct {
	// Policy is the FSM; nil installs an empty (allow-all) policy
	// over an empty domain.
	Policy *policy.FSM
	// Discretizer maps continuous environment variables into the
	// levels the policy conditions on; nil uses the standard bands.
	Discretizer *envsim.Discretizer
	// Environment is the physical world; nil builds StandardHome.
	Environment *envsim.Environment
	// Platform selects the µmbox boot model (default micro-VM).
	Platform mbox.PlatformKind
	// BootTimeScale compresses modeled boot latency in tests
	// (default 0.01).
	BootTimeScale float64
	// AdminIP is the management host allowed through DNS guards etc.
	AdminIP packet.IPv4Address
	// ChallengeSolution is the robot-check answer a human supplies.
	ChallengeSolution string
	// Capture attaches a fabric-wide recorder (needed by
	// DistillSignature).
	Capture bool
}

// Platform is a running IoTSec deployment.
type Platform struct {
	Network *netsim.Network
	Env     *envsim.Environment
	Switch  *netsim.Switch
	Manager *mbox.Manager
	Global  *controller.Global

	opts Options
	disc *envsim.Discretizer
	fsm  *policy.FSM

	mu      sync.Mutex
	devices map[string]*Managed
	// skuRules accumulates per-SKU signature rules (from the
	// crowdsourced repository or local additions); skuRuleTexts
	// remembers the normalized rule texts already installed so
	// replayed/backfilled community signatures install idempotently.
	skuRules     map[string][]*ids.Rule
	skuRuleTexts map[string]map[string]bool
	// profiles holds per-device anomaly profiles.
	profiles map[string]*ids.Profile

	// enforcement bookkeeping
	reconfigures uint64
	lastVersion  uint64

	nextSwitchPort uint16
	started        bool

	// steering, when attached via UseSteering, receives quarantine
	// FLOW_MODs whenever a posture isolates or releases a device.
	steering *controller.Steering

	// hierarchy + supervision (SuperviseControllers): when attached,
	// device events and scoped env readings route through the partition
	// tier instead of straight into the global view.
	hierarchy    *controller.Hierarchy
	partitioning *controller.Partitioning
	envLocality  map[string]int
	supervisor   *controller.Supervisor

	// failModeSnapshot remembers per-pipeline fail modes captured when
	// the SLO watchdog escalated, so de-escalation restores exactly
	// what the operator had configured (nil = not escalated).
	failModeSnapshot map[string]mbox.FailMode

	// profilePlane, when enabled, drives behavior-profile learning,
	// enforcement and rogue detection; hostMACs remembers hosts
	// attached before the plane existed (lockdown whitelist).
	profilePlane *ProfilePlane
	hostMACs     []packet.MACAddress
	// crowd is the sigrepo link, once connected (profile publishing).
	crowd *CrowdLink

	// forensicsCap, when enabled, pins incident chains out of the
	// journal ring into the durable store (EnableForensics).
	forensicsCap *forensics.Capturer

	recorder *netsim.Recorder
}

// Managed is one device under IoTSec protection.
type Managed struct {
	Device   *device.Device
	Instance *mbox.Instance
	// CurrentPosture is the last applied posture.
	CurrentPosture policy.Posture

	// isolated mirrors whether quarantine flow rules are installed.
	isolated bool
}

// New assembles a platform.
func New(opts Options) (*Platform, error) {
	if opts.Policy == nil {
		opts.Policy = policy.NewFSM(policy.NewDomain())
	}
	if opts.Discretizer == nil {
		opts.Discretizer = envsim.StandardDiscretizer()
	}
	if opts.Environment == nil {
		opts.Environment = envsim.StandardHome()
	}
	if opts.Platform == "" {
		opts.Platform = mbox.PlatformMicroVM
	}
	if opts.BootTimeScale == 0 {
		opts.BootTimeScale = 0.01
	}
	if opts.ChallengeSolution == "" {
		opts.ChallengeSolution = "7hills"
	}

	p := &Platform{
		Network:        netsim.NewNetwork(),
		Env:            opts.Environment,
		Switch:         netsim.NewSwitch("iotsec-uplink", 1),
		Manager:        mbox.NewManager(mbox.Server{Name: "onprem0", Slots: 256}, mbox.Server{Name: "onprem1", Slots: 256}),
		opts:           opts,
		disc:           opts.Discretizer,
		fsm:            opts.Policy,
		devices:        make(map[string]*Managed),
		skuRules:       make(map[string][]*ids.Rule),
		skuRuleTexts:   make(map[string]map[string]bool),
		profiles:       make(map[string]*ids.Profile),
		nextSwitchPort: 1,
	}
	p.Manager.TimeScale = opts.BootTimeScale
	p.Switch.SetMissBehavior(netsim.MissFlood)
	if opts.Capture {
		p.recorder = netsim.NewRecorder()
		p.Network.AddTap(p.recorder.Tap())
	}
	if err := p.Network.AddNode(p.Switch); err != nil {
		return nil, err
	}
	p.Global = controller.NewGlobal(opts.Policy, p.applyPosture)

	// Environment → view: discretized levels feed the global state.
	// Each tick is a fresh causal chain (a root span), so any posture
	// change it provokes is traceable back to the reading.
	p.Env.AddObserver(func(s envsim.Snapshot, _ map[string]float64) {
		ctx, span := telemetry.StartSpan(context.Background(), "core.env_tick")
		for _, v := range p.disc.Variables() {
			p.reportEnv(ctx, v, p.disc.Value(v, s.Get(v)))
		}
		span.End()
	})
	return p, nil
}

// attachToSwitch wires a host-side port to a fresh uplink switch port.
func (p *Platform) attachToSwitch(hostPort *netsim.Port) {
	p.mu.Lock()
	id := p.nextSwitchPort
	p.nextSwitchPort++
	p.mu.Unlock()
	sp := p.Switch.AttachPort(p.Network, id)
	p.Network.Connect(hostPort, sp, netsim.LinkOptions{})
}

// AttachHost connects an unmanaged host (app, hub, attacker) directly
// to the uplink switch.
func (p *Platform) AttachHost(st *netsim.Stack) {
	p.attachToSwitch(st.Attach(p.Network))
	p.mu.Lock()
	p.hostMACs = append(p.hostMACs, st.MAC())
	plane := p.profilePlane
	p.mu.Unlock()
	if plane != nil {
		plane.hostAttached(st.MAC())
	}
}

// AddDevice brings a device under management: it attaches through a
// freshly launched µmbox, binds to the environment, wires event
// emission into the view, and declares the device in the policy
// domain if absent.
func (p *Platform) AddDevice(d *device.Device) (*Managed, error) {
	devPort, err := d.Attach(p.Network)
	if err != nil {
		return nil, err
	}
	d.BindEnvironment(p.Env)
	d.SetEventSink(func(e device.Event) { p.ReportDeviceEvent(e) })

	inst, err := p.Manager.Launch(context.Background(), "mb-"+d.Name, p.opts.Platform, mbox.NewPipeline(&mbox.Logger{}))
	if err != nil {
		return nil, fmt.Errorf("core: launching µmbox for %s: %w", d.Name, err)
	}
	inst.Mbox.SetProtectedIP(d.IP())
	south, north := inst.Mbox.AttachInline(p.Network)
	p.Network.Connect(devPort, south, netsim.LinkOptions{})
	p.attachToSwitch(north)

	m := &Managed{Device: d, Instance: inst}
	p.mu.Lock()
	p.devices[d.Name] = m
	p.profiles[d.Name] = ids.NewProfile(d.Name)
	started := p.started
	plane := p.profilePlane
	p.mu.Unlock()
	mDevicesAdded.Inc()
	if plane != nil {
		plane.deviceAdded(m)
	}

	// Hot-plugged devices get their posture immediately; devices
	// added before Start are postured there.
	if started {
		state := p.Global.View.State()
		if posture, ok := p.fsm.Lookup(state)[d.Name]; ok {
			p.applyPosture(context.Background(), d.Name, posture, p.Global.View.Version())
		}
	}
	return m, nil
}

// Device looks up a managed device.
func (p *Platform) Device(name string) (*Managed, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.devices[name]
	return m, ok
}

// Start begins packet delivery and applies the initial postures.
func (p *Platform) Start() {
	p.Network.Start()
	p.mu.Lock()
	started := p.started
	p.started = true
	p.mu.Unlock()
	if started {
		return
	}
	// Apply the policy's posture for the initial (all-normal) state.
	state := p.Global.View.State()
	for dev, posture := range p.fsm.Lookup(state) {
		p.applyPosture(context.Background(), dev, posture, 0)
	}
}

// Stop halts the deployment.
func (p *Platform) Stop() {
	p.mu.Lock()
	devices := make([]*Managed, 0, len(p.devices))
	for _, m := range p.devices {
		devices = append(devices, m)
	}
	p.mu.Unlock()
	for _, m := range devices {
		m.Device.Stop()
	}
	p.Network.Stop()
}

// AddSignatureRule installs a detection rule for a SKU (what a
// sigrepo subscription delivers) and re-applies postures of affected
// devices so running IDS elements pick it up. Installing a rule that
// is already present for the SKU is a no-op (idempotent), so cursor
// replays and reconnect backfills from the repository never duplicate
// IDS rules or trigger spurious reconfigurations.
func (p *Platform) AddSignatureRule(sku, ruleText string) error {
	r, err := ids.ParseRule(ruleText)
	if err != nil {
		return err
	}
	if r == nil {
		return fmt.Errorf("core: empty rule for %s", sku)
	}
	norm := strings.TrimSpace(ruleText)
	p.mu.Lock()
	if p.skuRuleTexts[sku][norm] {
		p.mu.Unlock()
		mSigRulesDup.Inc()
		return nil
	}
	if p.skuRuleTexts[sku] == nil {
		p.skuRuleTexts[sku] = make(map[string]bool)
	}
	p.skuRuleTexts[sku][norm] = true
	mSigRulesAdded.Inc()
	p.skuRules[sku] = append(p.skuRules[sku], r)
	affected := make([]*Managed, 0)
	for _, m := range p.devices {
		if m.Device.Profile.SKU == sku {
			affected = append(affected, m)
		}
	}
	p.mu.Unlock()
	for _, m := range affected {
		p.applyPosture(context.Background(), m.Device.Name, m.CurrentPosture, p.Global.View.Version())
	}
	return nil
}

// SignatureRules reports the normalized rule texts installed for a
// SKU, sorted (diagnostics and convergence tests).
func (p *Platform) SignatureRules(sku string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.skuRuleTexts[sku]))
	for text := range p.skuRuleTexts[sku] {
		out = append(out, text)
	}
	sort.Strings(out)
	return out
}

// applyPosture is the PostureSink: translate the posture into an
// element chain and live-reconfigure the device's µmbox. It closes
// Figure 2's loop, so it also emits the event→enforcement latency
// (measured from the view commit that triggered it) and a span — a
// child of whatever event chain provoked the posture, so the journal
// timeline for the trace reads anomaly → posture → FLOW_MOD →
// mbox-reconfig in sequence order.
func (p *Platform) applyPosture(ctx context.Context, deviceName string, posture policy.Posture, version uint64) {
	p.mu.Lock()
	m, ok := p.devices[deviceName]
	if !ok {
		p.mu.Unlock()
		return // policy mentions a device not (yet) deployed
	}
	m.CurrentPosture = posture
	wasIsolated := m.isolated
	steering := p.steering
	// m.isolated mirrors the quarantine rules actually on the wire, so
	// it only advances when a steering app is attached to receive them.
	// Otherwise a posture that isolates before UseSteering would mark
	// the device isolated without any rules existing, and the real
	// enforcement would never be emitted.
	if steering != nil {
		m.isolated = posture.Isolate
	}
	p.reconfigures++
	p.lastVersion = version
	p.mu.Unlock()

	ctx, span := telemetry.StartSpan(ctx, "core.apply_posture")
	span.SetAttr("device", deviceName)
	span.SetAttr("version", strconv.FormatUint(version, 10))
	sev := journal.Info
	if posture.Isolate {
		sev = journal.Warn
	}
	journal.Record(ctx, journal.TypePosture, sev, deviceName,
		fmt.Sprintf("v%d %s", version, posture))
	// Network-level enforcement first (quarantine rules reach the
	// switches), then the µmbox pipeline swap.
	if steering != nil && posture.Isolate != wasIsolated {
		if posture.Isolate {
			steering.Isolate(ctx, deviceName, m.Device.MAC())
		} else {
			steering.Release(ctx, deviceName, m.Device.MAC())
		}
	}
	elements := p.buildPipeline(m, posture)
	_ = p.Manager.Reconfigure(ctx, "mb-"+deviceName, elements...)
	span.End()
	mPostureApplies.Inc()
	if version > 0 {
		if committed, ok := p.Global.CommitTime(version); ok {
			mEnforceSeconds.Observe(time.Since(committed).Seconds())
		}
	}
}

// UseSteering attaches an SDN steering application: posture changes
// that isolate (or release) a device are additionally enforced as
// quarantine FLOW_MODs on every switch the steering app controls,
// carrying the causal trace ID across the southbound wire. Devices
// whose current posture already isolates are quarantined immediately,
// so attaching steering after an isolation decision still enforces it.
func (p *Platform) UseSteering(s *controller.Steering) {
	type pending struct {
		name string
		mac  packet.MACAddress
	}
	var toIsolate []pending
	p.mu.Lock()
	p.steering = s
	plane := p.profilePlane
	if s != nil {
		for name, m := range p.devices {
			if m.CurrentPosture.Isolate && !m.isolated {
				m.isolated = true
				toIsolate = append(toIsolate, pending{name, m.Device.MAC()})
			}
		}
	}
	p.mu.Unlock()
	for _, q := range toIsolate {
		ctx, span := telemetry.StartSpan(context.Background(), "core.use_steering")
		span.SetAttr("device", q.name)
		journal.Record(ctx, journal.TypePosture, journal.Warn, q.name,
			"steering attached: re-applying standing quarantine")
		s.Isolate(ctx, q.name, q.mac)
		span.End()
	}
	// Parked profile enforcement gets its rules onto the wire now.
	if plane != nil && s != nil {
		plane.steeringAttached()
	}
}

// ReportDeviceEvent feeds one device event into the view as a fresh
// causal chain (root span + journal record). Device event sinks call
// this; tests can inject synthetic events through it.
func (p *Platform) ReportDeviceEvent(e device.Event) {
	ctx, span := telemetry.StartSpan(context.Background(), "core.device_event")
	span.SetAttr("device", e.Device)
	journal.Record(ctx, journal.TypeDeviceEvent, journal.Debug, e.Device,
		fmt.Sprintf("%s: %s", e.Kind, e.Detail))
	p.mu.Lock()
	h, part := p.hierarchy, p.partitioning
	p.mu.Unlock()
	// With a supervised partition tier attached, events from partitioned
	// devices route through it (local absorb or escalate); everything
	// else keeps the Global-only path.
	if h != nil && part.GroupOf(e.Device) >= 0 {
		h.HandleDeviceEvent(ctx, e)
	} else {
		p.Global.View.HandleDeviceEvent(ctx, e)
	}
	span.End()
}

// reportEnv routes one discretized environment level: through the
// partition tier when the variable has declared locality, otherwise
// straight into the global view (pre-hierarchy semantics).
func (p *Platform) reportEnv(ctx context.Context, envVar, level string) {
	p.mu.Lock()
	h := p.hierarchy
	group, scoped := -1, false
	if h != nil && p.envLocality != nil {
		if g, ok := p.envLocality[envVar]; ok {
			group, scoped = g, true
		}
	}
	p.mu.Unlock()
	if h != nil && scoped {
		h.HandleEnv(ctx, envVar, level, group, "environment")
		return
	}
	p.Global.View.SetEnv(ctx, envVar, level, "environment")
}

// ReportAnomaly feeds one behavioral anomaly into the view as a fresh
// causal chain. µmbox anomaly elements call this; tests inject
// synthetic anomalies through it and then follow the resulting trace
// ID through the journal.
func (p *Platform) ReportAnomaly(a ids.Anomaly) {
	ctx, span := telemetry.StartSpan(context.Background(), "core.anomaly")
	span.SetAttr("device", a.Device)
	journal.Record(ctx, journal.TypeAnomaly, journal.Warn, a.Device,
		fmt.Sprintf("%s: %s (score %.2f)", a.Kind, a.Detail, a.Score))
	p.Global.View.HandleAnomaly(ctx, a)
	span.End()
}

// ReportAlert feeds one IDS alert into the view as a fresh causal
// chain.
func (p *Platform) ReportAlert(deviceName string, a ids.Alert) {
	ctx, span := telemetry.StartSpan(context.Background(), "core.alert")
	span.SetAttr("device", deviceName)
	journal.Record(ctx, journal.TypeAlert, journal.Warn, deviceName,
		fmt.Sprintf("sid %d: %s", a.SID, a.Msg))
	p.Global.View.HandleAlert(ctx, deviceName, a)
	span.End()
}

// buildPipeline translates a posture into concrete µmbox elements.
func (p *Platform) buildPipeline(m *Managed, posture policy.Posture) []mbox.Element {
	dev := m.Device
	var out []mbox.Element

	if posture.Isolate {
		return []mbox.Element{mbox.NewHeaderFilter(mbox.Deny)}
	}
	if len(posture.BlockCommands) > 0 {
		blocker := mbox.NewContextGate(func(string) bool { return false }, posture.BlockCommands...)
		out = append(out, blocker)
	}
	if posture.RateLimit > 0 {
		out = append(out, mbox.NewRateLimiter(posture.RateLimit, int(posture.RateLimit)))
	}
	for _, spec := range posture.Modules {
		if e := p.buildElement(dev, spec); e != nil {
			out = append(out, e)
		}
	}
	// Always keep observability.
	out = append(out, &mbox.Logger{})
	return out
}

// buildElement instantiates one ModuleSpec.
func (p *Platform) buildElement(dev *device.Device, spec policy.ModuleSpec) mbox.Element {
	switch spec.Kind {
	case "logger":
		return &mbox.Logger{}
	case "password-proxy":
		factoryUser, factoryPass := splitCreds(dev.Profile.VulnDetail(device.VulnDefaultCredentials))
		user := spec.Config["user"]
		pass := spec.Config["pass"]
		return mbox.NewPasswordProxy(user, pass, factoryUser, factoryPass)
	case "ids":
		p.mu.Lock()
		rules := append([]*ids.Rule(nil), p.skuRules[dev.Profile.SKU]...)
		p.mu.Unlock()
		name := dev.Name
		return &mbox.IDSElement{
			Engine:  ids.NewEngine(rules),
			OnAlert: func(a ids.Alert) { p.ReportAlert(name, a) },
		}
	case "anomaly":
		p.mu.Lock()
		profile := p.profiles[dev.Name]
		p.mu.Unlock()
		return &mbox.AnomalyElement{
			Profile:   profile,
			OnAnomaly: func(a ids.Anomaly) { p.ReportAnomaly(a) },
		}
	case "rate-limiter":
		rate, _ := strconv.ParseFloat(spec.Config["rate"], 64)
		if rate <= 0 {
			rate = 50
		}
		return mbox.NewRateLimiter(rate, int(rate))
	case "dns-guard":
		maxResp, _ := strconv.Atoi(spec.Config["max_response"])
		if maxResp == 0 {
			maxResp = 512
		}
		allowed := map[packet.IPv4Address]bool{}
		if !p.opts.AdminIP.IsZero() {
			allowed[p.opts.AdminIP] = true
		}
		return &mbox.DNSGuard{AllowedClients: allowed, MaxResponseBytes: maxResp}
	case "stateful-fw":
		return mbox.NewStatefulFirewall(device.MgmtPort)
	case "robot-check":
		return mbox.NewChallenge(p.opts.ChallengeSolution)
	case "context-gate":
		guarded := spec.Config["guard"]
		requireVar := spec.Config["require_env"]
		requireVal := spec.Config["require_value"]
		view := p.Global.View
		gate := mbox.NewContextGate(func(string) bool {
			return view.Env(requireVar) == requireVal
		}, guarded)
		return gate
	default:
		return &mbox.Logger{}
	}
}

// splitCreds parses "user:pass".
func splitCreds(s string) (user, pass string) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}

// Recorder exposes the capture (nil unless Options.Capture).
func (p *Platform) Recorder() *netsim.Recorder { return p.recorder }

// Metrics reports enforcement activity.
func (p *Platform) Metrics() (reconfigures uint64, lastVersion uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reconfigures, p.lastVersion
}

// RunEnvironment advances the physical world n ticks (convenience for
// scenarios and experiments).
func (p *Platform) RunEnvironment(n int) { p.Env.Run(n) }

// WaitForContext polls until the view reports the device in the given
// context or the timeout expires.
func (p *Platform) WaitForContext(deviceName string, ctx policy.SecurityContext, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p.Global.View.DeviceContext(deviceName) == ctx {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}
