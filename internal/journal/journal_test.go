package journal

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"iotsec/internal/telemetry"
)

func TestAppendAssignsSequenceAndTrace(t *testing.T) {
	j := New(16)
	ctx, span := telemetry.StartSpan(context.Background(), "test.root")
	j.Record(ctx, TypeAnomaly, Warn, "cam", "weird traffic")
	j.Record(ctx, TypePosture, Info, "cam", "isolate")
	span.End()
	j.Record(context.Background(), TypeAlert, Critical, "wemo", "untraced")

	events := j.Snapshot(Filter{})
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 || events[2].Seq != 3 {
		t.Fatalf("bad sequence numbers: %+v", events)
	}
	if events[0].TraceID == 0 || events[0].TraceID != events[1].TraceID {
		t.Fatalf("span-traced events should share a nonzero trace ID: %+v", events[:2])
	}
	if events[2].TraceID != 0 {
		t.Fatalf("background-context event should be untraced, got trace %d", events[2].TraceID)
	}
	if events[1].Mono < events[0].Mono {
		t.Fatalf("monotonic offsets went backwards: %v then %v", events[0].Mono, events[1].Mono)
	}
}

func TestRingEviction(t *testing.T) {
	j := New(8)
	for i := 0; i < 20; i++ {
		j.RecordTrace(uint64(i+1), TypeDeviceEvent, Debug, "d", fmt.Sprintf("e%d", i))
	}
	events := j.Snapshot(Filter{})
	if len(events) != 8 {
		t.Fatalf("ring should retain 8 events, got %d", len(events))
	}
	// Oldest retained is event 13 (seq 13), newest is 20.
	if events[0].Seq != 13 || events[7].Seq != 20 {
		t.Fatalf("wrong retained window: first seq %d last seq %d", events[0].Seq, events[7].Seq)
	}
	appended, _ := j.Stats()
	if appended != 20 {
		t.Fatalf("appended = %d, want 20", appended)
	}
}

func TestConcurrentWritersKeepTotalOrder(t *testing.T) {
	j := New(256)
	const writers = 8
	const each = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.RecordTrace(uint64(w+1), TypeDeviceEvent, Debug, fmt.Sprintf("dev%d", w), "x")
			}
		}(w)
	}
	wg.Wait()
	appended, _ := j.Stats()
	if appended != writers*each {
		t.Fatalf("appended = %d, want %d", appended, writers*each)
	}
	events := j.Snapshot(Filter{})
	if len(events) != 256 {
		t.Fatalf("retained %d, want 256", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("sequence gap at %d: %d -> %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestFilters(t *testing.T) {
	j := New(64)
	base := time.Now()
	j.RecordTrace(7, TypeAnomaly, Warn, "cam", "a")
	j.RecordTrace(7, TypePosture, Info, "cam", "b")
	j.RecordTrace(9, TypeAnomaly, Critical, "wemo", "c")
	j.RecordTrace(0, TypeDeviceEvent, Debug, "cam", "d")

	if got := j.Snapshot(Filter{TraceID: 7}); len(got) != 2 {
		t.Fatalf("trace filter: got %d, want 2", len(got))
	}
	if got := j.Snapshot(Filter{Device: "wemo"}); len(got) != 1 || got[0].Detail != "c" {
		t.Fatalf("device filter wrong: %+v", got)
	}
	if got := j.Snapshot(Filter{Type: TypeAnomaly}); len(got) != 2 {
		t.Fatalf("type filter: got %d, want 2", len(got))
	}
	if got := j.Snapshot(Filter{MinSeverity: Info}); len(got) != 3 {
		t.Fatalf("severity filter (info): got %d, want 3", len(got))
	}
	if got := j.Snapshot(Filter{MinSeverity: Warn}); len(got) != 2 {
		t.Fatalf("severity filter (warn): got %d, want 2", len(got))
	}
	if got := j.Snapshot(Filter{Since: base.Add(-time.Minute)}); len(got) != 4 {
		t.Fatalf("since filter (past): got %d, want 4", len(got))
	}
	if got := j.Snapshot(Filter{Since: time.Now().Add(time.Minute)}); len(got) != 0 {
		t.Fatalf("since filter (future): got %d, want 0", len(got))
	}
	if got := j.Snapshot(Filter{Limit: 2}); len(got) != 2 || got[1].Detail != "d" {
		t.Fatalf("limit filter wrong: %+v", got)
	}
}

func TestTailDeliversAndDropsWhenFull(t *testing.T) {
	j := New(64)
	events, cancel := j.Tail(2)
	j.RecordTrace(1, TypeAnomaly, Info, "d", "1")
	j.RecordTrace(1, TypeAnomaly, Info, "d", "2")
	j.RecordTrace(1, TypeAnomaly, Info, "d", "3") // buffer full → dropped
	if e := <-events; e.Detail != "1" {
		t.Fatalf("first tailed event = %q", e.Detail)
	}
	if e := <-events; e.Detail != "2" {
		t.Fatalf("second tailed event = %q", e.Detail)
	}
	_, drops := j.Stats()
	if drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}
	cancel()
	if _, ok := <-events; ok {
		t.Fatal("channel should be closed after cancel")
	}
	cancel() // idempotent
}

func TestSeverityJSONAndParse(t *testing.T) {
	b, err := json.Marshal(Warn)
	if err != nil || string(b) != `"warn"` {
		t.Fatalf("marshal: %s %v", b, err)
	}
	for _, name := range []string{"debug", "info", "warn", "critical"} {
		sev, ok := ParseSeverity(name)
		if !ok || sev.String() != name {
			t.Fatalf("roundtrip %q failed", name)
		}
	}
	if _, ok := ParseSeverity("nope"); ok {
		t.Fatal("unknown severity should not parse")
	}
}

func TestHandlerSnapshotAndFilterParams(t *testing.T) {
	j := New(64)
	j.RecordTrace(42, TypeAnomaly, Warn, "cam", "a")
	j.RecordTrace(42, TypePosture, Info, "cam", "b")
	j.RecordTrace(5, TypeAnomaly, Debug, "wemo", "c")
	srv := httptest.NewServer(j.Handler())
	defer srv.Close()

	get := func(q string) SnapshotJSON {
		t.Helper()
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", q, resp.Status)
		}
		var snap SnapshotJSON
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	if snap := get("?trace=42"); len(snap.Events) != 2 {
		t.Fatalf("trace=42: got %d events", len(snap.Events))
	}
	if snap := get("?device=wemo"); len(snap.Events) != 1 || snap.Events[0].Detail != "c" {
		t.Fatalf("device=wemo wrong: %+v", snap.Events)
	}
	if snap := get("?type=anomaly"); len(snap.Events) != 2 {
		t.Fatalf("type=anomaly: got %d events", len(snap.Events))
	}
	if snap := get("?sev=info"); len(snap.Events) != 2 {
		t.Fatalf("sev=info: got %d events", len(snap.Events))
	}
	if snap := get("?since=5m"); len(snap.Events) != 3 {
		t.Fatalf("since=5m: got %d events", len(snap.Events))
	}
	if snap := get("?limit=1"); len(snap.Events) != 1 {
		t.Fatalf("limit=1: got %d events", len(snap.Events))
	}
	if snap := get(""); snap.Appended != 3 {
		t.Fatalf("appended_total = %d, want 3", snap.Appended)
	}

	// Bad parameters are 400s.
	for _, q := range []string{"?trace=xyz", "?since=bogus", "?sev=loud", "?limit=-1"} {
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestHandlerFollowStreamsBacklogAndLive(t *testing.T) {
	j := New(64)
	j.RecordTrace(1, TypeAnomaly, Warn, "cam", "backlog-1")
	srv := httptest.NewServer(j.Handler())
	defer srv.Close()

	ctx, cancelReq := context.WithCancel(context.Background())
	defer cancelReq()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"?follow=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}

	dec := json.NewDecoder(resp.Body)
	var first Event
	if err := dec.Decode(&first); err != nil || first.Detail != "backlog-1" {
		t.Fatalf("backlog event: %+v err=%v", first, err)
	}

	// A live append must arrive on the open stream.
	go func() {
		time.Sleep(10 * time.Millisecond)
		j.RecordTrace(2, TypePosture, Info, "cam", "live-1")
	}()
	var live Event
	if err := dec.Decode(&live); err != nil || live.Detail != "live-1" {
		t.Fatalf("live event: %+v err=%v", live, err)
	}
	if live.Seq <= first.Seq {
		t.Fatalf("live seq %d should follow backlog seq %d", live.Seq, first.Seq)
	}
}

func TestTimelineReconstructAndRender(t *testing.T) {
	events := []Event{
		{Seq: 3, TraceID: 9, Type: TypeFlowMod, Device: "wemo", Mono: 30},
		{Seq: 1, TraceID: 9, Type: TypeAnomaly, Device: "wemo", Severity: Warn, Mono: 10, Detail: "spike"},
		{Seq: 2, TraceID: 9, Type: TypePosture, Device: "wemo", Mono: 20},
		{Seq: 4, TraceID: 9, Type: TypeMboxReconfig, Device: "wemo", Mono: 40},
		{Seq: 5, TraceID: 8, Type: TypeAnomaly, Device: "cam", Mono: 50},
	}
	tl := Reconstruct(events, 9)
	if len(tl.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(tl.Events))
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Seq < tl.Events[i-1].Seq {
			t.Fatal("timeline not sorted by sequence")
		}
	}
	if !tl.Complete() {
		t.Fatal("detect+policy+enforce timeline should be complete")
	}
	chain := tl.Chain()
	want := "anomaly(wemo) -> posture(wemo) -> flow-mod(wemo) -> mbox-reconfig(wemo)"
	if chain != want {
		t.Fatalf("chain = %q, want %q", chain, want)
	}
	rendered := tl.Render()
	if !strings.Contains(rendered, "complete detect->policy->enforce chain") ||
		!strings.Contains(rendered, "spike") {
		t.Fatalf("render missing pieces:\n%s", rendered)
	}

	// Incomplete chain: detection without enforcement.
	partial := Reconstruct(events, 8)
	if partial.Complete() {
		t.Fatal("single-anomaly timeline should be incomplete")
	}
}

func TestReconstructDevice(t *testing.T) {
	events := []Event{
		{Seq: 1, TraceID: 1, Type: TypeAnomaly, Device: "cam"},
		{Seq: 2, TraceID: 1, Type: TypePosture, Device: "cam"},
		{Seq: 3, TraceID: 2, Type: TypeAlert, Device: "cam"},
		{Seq: 4, TraceID: 3, Type: TypeAnomaly, Device: "wemo"},
		{Seq: 5, TraceID: 0, Type: TypeDeviceEvent, Device: "cam"}, // untraced → skipped
	}
	tls := ReconstructDevice(events, "cam")
	if len(tls) != 2 {
		t.Fatalf("got %d timelines, want 2", len(tls))
	}
	if tls[0].TraceID != 1 || tls[1].TraceID != 2 {
		t.Fatalf("timelines out of order: %d, %d", tls[0].TraceID, tls[1].TraceID)
	}
}

func BenchmarkJournalAppend(b *testing.B) {
	j := New(8192)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record(ctx, TypeDeviceEvent, Debug, "bench", "event")
	}
}

func BenchmarkJournalAppendTraced(b *testing.B) {
	j := New(8192)
	ctx, span := telemetry.StartSpan(context.Background(), "bench.trace")
	defer span.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record(ctx, TypeDeviceEvent, Debug, "bench", "event")
	}
}
