package experiment

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTablePrinting(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tbl.AddRow(1, "hello")
	tbl.Note("n=%d", 7)
	var buf bytes.Buffer
	tbl.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "| a | bb", "| 1 | hello", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1(t *testing.T) {
	tbl, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		bare, protected := row[4], row[5]
		if bare != "yes" {
			t.Errorf("row %s: exploit failed on the unprotected device (%s)", row[0], bare)
		}
		if protected != "no" {
			t.Errorf("row %s: exploit succeeded THROUGH IoTSec (%s)", row[0], protected)
		}
	}
}

func TestRunTable2(t *testing.T) {
	tbl := RunTable2(1)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Published counts preserved.
	wants := map[string]string{"NEST Protect": "188", "Wemo Plugin": "227", "Scout Alarm": "63"}
	for _, row := range tbl.Rows {
		if want, ok := wants[row[0]]; ok && row[1] != want {
			t.Errorf("%s count = %s, want %s", row[0], row[1], want)
		}
	}
	joined := strings.Join(tbl.Notes, "\n")
	if !strings.Contains(joined, "478 recipes") {
		t.Errorf("notes = %q", joined)
	}
}

func TestRunFigure1(t *testing.T) {
	tbl, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// Row 1: external+signature — perimeter AND IoTSec block.
	if tbl.Rows[0][1] != "BLOCKED" || tbl.Rows[0][3] != "BLOCKED" {
		t.Errorf("row1 = %v", tbl.Rows[0])
	}
	// Row 2: internal — perimeter blind, IoTSec blocks.
	if tbl.Rows[1][1] != "allowed" || tbl.Rows[1][3] != "BLOCKED" {
		t.Errorf("row2 = %v", tbl.Rows[1])
	}
	// Row 3: context abuse — only IoTSec blocks.
	if tbl.Rows[2][1] != "allowed" || tbl.Rows[2][3] != "BLOCKED" {
		t.Errorf("row3 = %v", tbl.Rows[2])
	}
	// Host defenses cover none of these for the camera class.
	for i, row := range tbl.Rows {
		if row[2] != "allowed" {
			t.Errorf("row %d host column = %s", i, row[2])
		}
	}
}

func TestRunFigure2(t *testing.T) {
	tbl, err := RunFigure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 6 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestRunFigure3(t *testing.T) {
	tbl, err := RunFigure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	if !strings.Contains(tbl.Rows[0][2], "allowed") {
		t.Errorf("baseline row = %v", tbl.Rows[0])
	}
	if !strings.Contains(tbl.Rows[1][2], "BLOCKED") {
		t.Errorf("backdoor row = %v", tbl.Rows[1])
	}
	if !strings.Contains(tbl.Rows[2][2], "scripted OPEN: BLOCKED") ||
		!strings.Contains(tbl.Rows[2][2], "challenged OPEN: allowed") {
		t.Errorf("brute-force row = %v", tbl.Rows[2])
	}
}

func TestRunFigure4(t *testing.T) {
	tbl, err := RunFigure4()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][1] != "yes" {
		t.Errorf("bare exploit = %v", tbl.Rows[0])
	}
	if tbl.Rows[1][1] != "no" {
		t.Errorf("protected exploit = %v", tbl.Rows[1])
	}
}

func TestRunFigure5(t *testing.T) {
	tbl, err := RunFigure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// Bare: succeeds while away. IoTSec away: blocked. IoTSec home:
	// allowed.
	if tbl.Rows[0][2] != "yes" || tbl.Rows[1][2] != "no" || tbl.Rows[2][2] != "yes" {
		t.Errorf("rows = %v", tbl.Rows)
	}
	if tbl.Rows[1][3] == "on" {
		t.Error("oven powered while away under IoTSec")
	}
}

func TestAblationStatePruning(t *testing.T) {
	tbl := RunAblationStatePruning()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// Independence-pruned size must be constant across deployment
	// sizes (the policy's support does not grow).
	first := tbl.Rows[0][2]
	for _, row := range tbl.Rows[1:] {
		if row[2] != first {
			t.Errorf("independence-pruned size varies: %v", tbl.Rows)
		}
	}
}

func TestAblationHierarchy(t *testing.T) {
	tbl := RunAblationHierarchy(2*time.Millisecond, 11)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// Escalations must be a small fraction of events.
	for _, row := range tbl.Rows {
		parts := strings.Split(row[3], "/")
		if len(parts) != 2 {
			t.Fatalf("escalation cell = %q", row[3])
		}
	}
}

func TestAblationMicroMbox(t *testing.T) {
	tbl, err := RunAblationMicroMbox()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestAblationFuzzCoverage(t *testing.T) {
	tbl := RunAblationFuzzCoverage(5)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// At the largest trial count fuzzing must beat passive.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[1] == "0%" {
		t.Errorf("fuzz coverage zero: %v", last)
	}
}

func TestAblationConsistency(t *testing.T) {
	tbl := RunAblationConsistency(7)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	for _, row := range tbl.Rows {
		// The strong column is always zero.
		if row[3] != "0/2000" {
			t.Errorf("strong store admitted unsafe allows: %v", row)
		}
		// The weak column is never zero in these regimes.
		if strings.HasPrefix(row[2], "0/") {
			t.Errorf("weak replica reported no exposure: %v", row)
		}
	}
	// More lag at the same interval must not reduce exposure
	// (rows 0→1 and 2→3 share the interval).
	parse := func(cell string) int {
		var n, d int
		fmt.Sscanf(cell, "%d/%d", &n, &d)
		return n
	}
	if parse(tbl.Rows[1][2]) < parse(tbl.Rows[0][2]) {
		t.Errorf("exposure shrank with more lag: %v", tbl.Rows)
	}
	if parse(tbl.Rows[3][2]) < parse(tbl.Rows[2][2]) {
		t.Errorf("exposure shrank with more lag: %v", tbl.Rows)
	}
}

func TestAblationReputation(t *testing.T) {
	tbl := RunAblationReputation(3)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// Accept-all lets poison through; voting must block all of it
	// while keeping most good signatures.
	if tbl.Rows[0][2] == "0/10" {
		t.Errorf("accept-all blocked poison?! %v", tbl.Rows[0])
	}
	if tbl.Rows[1][2] != "0/10" {
		t.Errorf("voting let poison through: %v", tbl.Rows[1])
	}
	if tbl.Rows[1][1] == "0/10" {
		t.Errorf("voting killed all good signatures: %v", tbl.Rows[1])
	}
}
