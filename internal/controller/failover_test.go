package controller

import (
	"context"
	"fmt"
	"regexp"
	"sync"
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/journal"
	"iotsec/internal/policy"
	"iotsec/internal/resilience"
)

// failoverFixture is a three-partition hierarchy with one fully local
// rule pair (attr=b → Block, attr=q → Isolate) per device, plus the
// enforcement-side state the supervisor hooks read.
type failoverFixture struct {
	h    *Hierarchy
	part *Partitioning

	mu       sync.Mutex
	postures map[string]policy.Posture
	// installed models switch-resident quarantine drops (readback leg).
	installed map[string]bool
	// ops records the enforcement call order for fail-closed checks.
	ops []string
}

var failoverDevs = []string{"fva0", "fva1", "fvb0", "fvb1", "fvc0", "fvc1"}

func newFailoverFixture(t *testing.T) *failoverFixture {
	t.Helper()
	fx := &failoverFixture{
		postures:  map[string]policy.Posture{},
		installed: map[string]bool{},
	}
	d := policy.NewDomain()
	f := policy.NewFSM(d)
	for _, dev := range failoverDevs {
		d.AddDevice(dev, policy.ContextNormal, policy.ContextSuspicious)
		d.AddEnvVar(dev+"_attr", "a", "b", "q")
		f.AddRule(policy.Rule{
			Name:       "block-" + dev,
			Conditions: []policy.Condition{policy.EnvIs(dev+"_attr", "b")},
			Device:     dev,
			Posture:    policy.Posture{BlockCommands: []string{"ON"}},
			Priority:   5,
		})
		f.AddRule(policy.Rule{
			Name:       "quar-" + dev,
			Conditions: []policy.Condition{policy.EnvIs(dev+"_attr", "q")},
			Device:     dev,
			Posture:    policy.Posture{Isolate: true},
			Priority:   9,
		})
	}
	fx.part = Partition(failoverDevs, []InteractionEdge{
		{A: "fva0", B: "fva1", Weight: 10},
		{A: "fvb0", B: "fvb1", Weight: 10},
		{A: "fvc0", B: "fvc1", Weight: 10},
	}, 2)
	envLocality := map[string]int{}
	for _, dev := range failoverDevs {
		envLocality[dev+"_attr"] = fx.part.GroupOf(dev)
	}
	fx.h = NewHierarchy(f, fx.part, envLocality, func(_ context.Context, dev string, p policy.Posture, _ uint64) {
		fx.mu.Lock()
		defer fx.mu.Unlock()
		fx.postures[dev] = p
		fx.ops = append(fx.ops, "sink:"+dev)
		if p.Isolate {
			fx.installed[dev] = true
		} else {
			delete(fx.installed, dev)
		}
	})
	if fx.h.Locals() != 3 {
		t.Fatalf("locals = %d, want 3", fx.h.Locals())
	}
	return fx
}

func (fx *failoverFixture) supervise(clock resilience.Clock, j *journal.Journal, mode FailMode, onFailover func(FailoverRecord)) *Supervisor {
	return fx.h.Supervise(SupervisorOptions{
		Clock:           clock,
		Heartbeat:       100 * time.Millisecond,
		Misses:          2,
		CheckpointEvery: -1,
		FailMode:        mode,
		Journal:         j,
		QuarantinedOf: func(group int) []string {
			fx.mu.Lock()
			defer fx.mu.Unlock()
			var out []string
			for dev, p := range fx.postures {
				if p.Isolate && fx.part.GroupOf(dev) == group {
					out = append(out, dev)
				}
			}
			return out
		},
		ReadbackQuarantines: func(group int) []string {
			fx.mu.Lock()
			defer fx.mu.Unlock()
			var out []string
			for dev := range fx.installed {
				if fx.part.GroupOf(dev) == group {
					out = append(out, dev)
				}
			}
			return out
		},
		RepushQuarantine: func(_ context.Context, dev string) {
			fx.mu.Lock()
			defer fx.mu.Unlock()
			fx.installed[dev] = true
			fx.ops = append(fx.ops, "repush:"+dev)
		},
		OnFailover: onFailover,
	})
}

func (fx *failoverFixture) event(dev, val string) {
	fx.h.HandleDeviceEvent(context.Background(), device.Event{
		Device: dev, Kind: device.EventStateChange, Detail: "attr=" + val,
	})
}

// tickUntilDead advances the fake clock through the deadman schedule.
func tickUntilDead(t *testing.T, clock *resilience.FakeClock, sup *Supervisor, want int, got *int, mu *sync.Mutex) {
	t.Helper()
	for i := 0; i < 20; i++ {
		sup.Tick()
		mu.Lock()
		done := *got
		mu.Unlock()
		if done >= want {
			return
		}
		clock.Advance(100 * time.Millisecond)
	}
	t.Fatalf("no failover after 20 ticks")
}

func TestSupervisorFailoverFailClosedOrdering(t *testing.T) {
	fx := newFailoverFixture(t)
	clock := resilience.NewFakeClock(time.Unix(1_700_000_000, 0))
	j := journal.New(256)

	var mu sync.Mutex
	failovers := 0
	var rec FailoverRecord
	sup := fx.supervise(clock, j, FailModeRehome, func(r FailoverRecord) {
		mu.Lock()
		failovers++
		rec = r
		mu.Unlock()
	})

	g0 := fx.part.GroupOf("fva0")
	// Pre-checkpoint: one quarantine plus a block posture.
	fx.event("fva0", "q")
	fx.event("fva1", "b")
	sup.Checkpoint()
	// Post-checkpoint: a second quarantine that must travel via journal
	// replay + flow-table readback, not the snapshot.
	fx.event("fva1", "q")

	fx.mu.Lock()
	fx.ops = nil // isolate the recovery window's call order
	fx.mu.Unlock()

	fx.h.LocalFor(g0).Kill()
	tickUntilDead(t, clock, sup, 1, &failovers, &mu)

	mu.Lock()
	r := rec
	mu.Unlock()
	if r.Group != g0 {
		t.Fatalf("failed-over group = %d, want %d", r.Group, g0)
	}
	if r.Target == "" || r.Target == "global" {
		t.Fatalf("target = %q, want a surviving shard", r.Target)
	}
	if r.QuarantinesRepushed != 2 {
		t.Fatalf("quarantines re-pushed = %d, want 2 (checkpoint ∪ readback)", r.QuarantinesRepushed)
	}
	if r.VarsRestored == 0 || r.EventsReplayed == 0 {
		t.Fatalf("restore did no work: vars=%d replayed=%d", r.VarsRestored, r.EventsReplayed)
	}

	// Fail-closed ordering: every quarantine re-push happens before any
	// posture the rebuilt controller pushes.
	fx.mu.Lock()
	ops := append([]string(nil), fx.ops...)
	fx.mu.Unlock()
	firstSink := -1
	lastRepush := -1
	for i, op := range ops {
		if firstSink < 0 && len(op) > 5 && op[:5] == "sink:" {
			firstSink = i
		}
		if op == "repush:fva0" || op == "repush:fva1" {
			lastRepush = i
		}
	}
	if lastRepush < 0 {
		t.Fatalf("no quarantine re-push recorded: %v", ops)
	}
	if firstSink >= 0 && firstSink < lastRepush {
		t.Fatalf("posture delivered before quarantine re-push finished: %v", ops)
	}

	// The three recovery events share one trace, in protocol order.
	types := []journal.Type{journal.TypeCtrlFailover, journal.TypeCtrlRehomed, journal.TypeCtrlRecovered}
	events := j.Snapshot(journal.Filter{TraceID: r.TraceID})
	i := 0
	for _, e := range events {
		if i < len(types) && e.Type == types[i] {
			i++
		}
	}
	if i != len(types) {
		t.Fatalf("recovery trace incomplete: got %d/%d protocol events in %v", i, len(types), events)
	}

	// The replacement now owns the partition: a release event lands.
	tgt, ok := fx.h.Rehomed(g0)
	if !ok || tgt.Target != r.Target {
		t.Fatalf("Rehomed(%d) = %+v %v, want target %q", g0, tgt, ok, r.Target)
	}
	fx.event("fva0", "a")
	fx.mu.Lock()
	released := !fx.postures["fva0"].Isolate
	fx.mu.Unlock()
	if !released {
		t.Fatal("replacement controller did not process the release event")
	}
}

func TestSupervisorFailGlobalMode(t *testing.T) {
	fx := newFailoverFixture(t)
	clock := resilience.NewFakeClock(time.Unix(1_700_000_000, 0))
	j := journal.New(256)

	var mu sync.Mutex
	failovers := 0
	sup := fx.supervise(clock, j, FailModeGlobal, func(FailoverRecord) {
		mu.Lock()
		failovers++
		mu.Unlock()
	})

	g0 := fx.part.GroupOf("fva0")
	fx.event("fva0", "q")
	sup.Checkpoint()
	fx.h.LocalFor(g0).Kill()
	tickUntilDead(t, clock, sup, 1, &failovers, &mu)

	tgt, ok := fx.h.Rehomed(g0)
	if !ok || tgt.Target != "global" {
		t.Fatalf("Rehomed = %+v %v, want global", tgt, ok)
	}
	// Degraded mode: the partition's events now pay the global round
	// trip.
	_, beforeEsc := fx.h.Metrics()
	fx.event("fva0", "a")
	_, afterEsc := fx.h.Metrics()
	if afterEsc != beforeEsc+1 {
		t.Fatalf("escalated %d → %d, want +1 (fail-global routes up)", beforeEsc, afterEsc)
	}
	// The restored quarantine state reached the global view: releasing
	// works through it.
	fx.mu.Lock()
	released := !fx.postures["fva0"].Isolate
	fx.mu.Unlock()
	if !released {
		t.Fatal("global controller did not release the quarantine from restored state")
	}
}

// ckptSeqRe normalizes the absolute journal sequence embedded in
// re-homing details: the global journal accumulates across runs, so
// the sequence differs even when the runs are otherwise identical.
var ckptSeqRe = regexp.MustCompile(`seq \d+`)

// runDeterminismScenario drives one complete double-failure scenario
// and returns its observable outcome: re-homing table, failover
// records (trace ids zeroed), and the supervisor's journal as
// (type, device, normalized-detail) tuples.
func runDeterminismScenario(t *testing.T) ([]RehomeTarget, []FailoverRecord, []string) {
	t.Helper()
	fx := newFailoverFixture(t)
	clock := resilience.NewFakeClock(time.Unix(1_700_000_000, 0))
	j := journal.New(256)

	var mu sync.Mutex
	failovers := 0
	sup := fx.supervise(clock, j, FailModeRehome, func(FailoverRecord) {
		mu.Lock()
		failovers++
		mu.Unlock()
	})

	fx.event("fva0", "q")
	fx.event("fvb0", "b")
	fx.event("fvb1", "q")
	sup.Checkpoint()
	fx.event("fva1", "q")
	fx.event("fvb0", "q")

	// Two controllers die in the same heartbeat window; the survivors
	// must absorb both partitions deterministically.
	fx.h.LocalFor(fx.part.GroupOf("fva0")).Kill()
	fx.h.LocalFor(fx.part.GroupOf("fvb0")).Kill()
	tickUntilDead(t, clock, sup, 2, &failovers, &mu)

	recs := sup.History()
	for i := range recs {
		recs[i].TraceID = 0
	}
	var lines []string
	for _, e := range j.Snapshot(journal.Filter{}) {
		lines = append(lines, string(e.Type)+"|"+e.Device+"|"+ckptSeqRe.ReplaceAllString(e.Detail, "seq #"))
	}
	return fx.h.RehomedAll(), recs, lines
}

// TestRehomingDeterminism: the same partitioning and failure sequence
// under a fake clock must produce identical re-assignments and an
// identical journal event order on every run (run with -count=2 -race
// in CI).
func TestRehomingDeterminism(t *testing.T) {
	tgt1, recs1, j1 := runDeterminismScenario(t)
	tgt2, recs2, j2 := runDeterminismScenario(t)

	if fmt.Sprintf("%+v", tgt1) != fmt.Sprintf("%+v", tgt2) {
		t.Fatalf("re-homing diverged:\n run1: %+v\n run2: %+v", tgt1, tgt2)
	}
	if fmt.Sprintf("%+v", recs1) != fmt.Sprintf("%+v", recs2) {
		t.Fatalf("failover records diverged:\n run1: %+v\n run2: %+v", recs1, recs2)
	}
	if len(j1) != len(j2) {
		t.Fatalf("journal lengths diverged: %d vs %d\n run1: %v\n run2: %v", len(j1), len(j2), j1, j2)
	}
	for i := range j1 {
		if j1[i] != j2[i] {
			t.Fatalf("journal event %d diverged:\n run1: %s\n run2: %s", i, j1[i], j2[i])
		}
	}
	// Both dead partitions must have found (possibly distinct) homes,
	// never the global controller in rehome mode.
	if len(tgt1) != 2 {
		t.Fatalf("rehomed %d partitions, want 2: %+v", len(tgt1), tgt1)
	}
	for _, tgt := range tgt1 {
		if tgt.Target == "global" || tgt.Target == "" {
			t.Fatalf("partition %d landed on %q in rehome mode", tgt.Group, tgt.Target)
		}
	}
}

// TestSupervisorPeriodicCheckpoints: the Tick loop takes snapshots on
// the configured cadence under the fake clock.
func TestSupervisorPeriodicCheckpoints(t *testing.T) {
	fx := newFailoverFixture(t)
	clock := resilience.NewFakeClock(time.Unix(1_700_000_000, 0))
	sup := fx.h.Supervise(SupervisorOptions{
		Clock:           clock,
		Heartbeat:       100 * time.Millisecond,
		CheckpointEvery: 300 * time.Millisecond,
		Journal:         journal.New(64),
	})

	fx.event("fva0", "b")
	for i := 0; i < 4; i++ {
		clock.Advance(100 * time.Millisecond)
		sup.Tick()
	}
	g0 := fx.part.GroupOf("fva0")
	ck, ok := sup.Checkpoints().Latest(g0)
	if !ok {
		t.Fatal("no periodic checkpoint taken")
	}
	if ck.Vars["env:fva0_attr"] != "b" {
		t.Fatalf("checkpoint vars = %v, missing fva0_attr=b", ck.Vars)
	}
	if len(ck.Postures) == 0 {
		t.Fatal("checkpoint captured no postures")
	}

	st := sup.Status()
	if len(st.Partitions) != 3 {
		t.Fatalf("status partitions = %d, want 3", len(st.Partitions))
	}
	for _, cs := range st.Partitions {
		if !cs.Alive {
			t.Fatalf("partition %d reported dead: %+v", cs.Group, cs)
		}
	}
}

// BenchmarkFailoverRecovery measures the full detection→recovery path
// for one dead partition (checkpoint restore + journal replay +
// quarantine re-push + re-home) on the 3-partition fixture.
func BenchmarkFailoverRecovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := &testing.T{}
		fx := newFailoverFixture(t)
		clock := resilience.NewFakeClock(time.Unix(1_700_000_000, 0))
		var mu sync.Mutex
		failovers := 0
		sup := fx.supervise(clock, journal.New(256), FailModeRehome, func(FailoverRecord) {
			mu.Lock()
			failovers++
			mu.Unlock()
		})
		fx.event("fva0", "q")
		sup.Checkpoint()
		fx.event("fva1", "q")
		fx.h.LocalFor(fx.part.GroupOf("fva0")).Kill()
		clock.Advance(time.Second)
		b.StartTimer()
		for n := 0; n < 20; n++ {
			sup.Tick()
			mu.Lock()
			done := failovers
			mu.Unlock()
			if done > 0 {
				break
			}
			clock.Advance(100 * time.Millisecond)
		}
		b.StopTimer()
		if failovers == 0 {
			b.Fatal("no failover")
		}
		b.StartTimer()
	}
}
