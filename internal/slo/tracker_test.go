package slo_test

import (
	"strings"
	"testing"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/resilience"
	"iotsec/internal/slo"
	"iotsec/internal/telemetry"
)

// sample digs one series out of a registry snapshot. ok=false when the
// metric or the exact sample is absent.
func sample(reg *telemetry.Registry, metric, suffix string, labels map[string]string) (float64, bool) {
	for _, m := range reg.Snapshot(0).Metrics {
		if m.Name != metric {
			continue
		}
		for _, s := range m.Samples {
			if s.Suffix != suffix {
				continue
			}
			match := true
			for k, want := range labels {
				got := ""
				for _, l := range s.Labels {
					if l.Key == k {
						got = l.Value
					}
				}
				if got != want {
					match = false
				}
			}
			if match {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// waitFor polls cond until it holds (the tracker's consumer goroutine
// handles tapped events asynchronously, so tests poll rather than
// assume a Drain race winner).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitInflight blocks until the tracker has opened n chains (the
// consumer goroutine handles tapped events asynchronously; chains must
// be open before a test advances the fake clock, or their deadlines
// are stamped with the already-advanced time).
func waitInflight(t *testing.T, tr *slo.Tracker, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for tr.Inflight() != n {
		tr.Sync()
		if time.Now().After(deadline) {
			t.Fatalf("tracker never reached %d in-flight chains (have %d)", n, tr.Inflight())
		}
		time.Sleep(time.Millisecond)
	}
}

// emitChain journals a full synthetic detect→enforce chain on trace id.
func emitChain(j *journal.Journal, trace uint64, withFlow bool) {
	j.RecordTrace(trace, journal.TypeAnomaly, journal.Warn, "wemo", "synthetic anomaly")
	j.RecordTrace(trace, journal.TypePosture, journal.Info, "wemo", "posture isolate=true")
	if withFlow {
		j.RecordTrace(trace, journal.TypeFlowMod, journal.Info, "quarantine", "add prio 400")
		j.RecordTrace(trace, journal.TypeFlowApplied, journal.Info, "quarantine", "applied")
	}
	j.RecordTrace(trace, journal.TypeMboxReconfig, journal.Info, "wemo", "pipeline rebuilt")
}

// TestTrackerCorrelatesFullChain drives one synthetic chain through an
// isolated journal and checks every stage histogram plus the
// telescoping e2e ≥ sum-of-stages invariant.
func TestTrackerCorrelatesFullChain(t *testing.T) {
	j := journal.New(256)
	reg := telemetry.NewRegistry()
	tr := slo.NewTracker(j, slo.Options{Registry: reg, ChainTimeout: time.Minute})
	defer tr.Close()

	emitChain(j, 42, true)
	tr.Sync()
	waitFor(t, "chain completion", func() bool {
		v, ok := sample(reg, "iotsec_mttr_complete_total", "", nil)
		return ok && v == 1
	})
	if got := tr.Inflight(); got != 0 {
		t.Fatalf("Inflight = %d after complete chain, want 0", got)
	}
	var stageSum float64
	for _, stage := range slo.Stages {
		c, ok := sample(reg, "iotsec_mttr_stage_seconds", "_count", map[string]string{"stage": stage})
		if !ok || c != 1 {
			t.Fatalf("stage %q count = %v (ok=%v), want 1", stage, c, ok)
		}
		if stage != slo.StageMboxReconfig { // reconfig is a parallel branch, not on the critical path
			s, _ := sample(reg, "iotsec_mttr_stage_seconds", "_sum", map[string]string{"stage": stage})
			stageSum += s
		}
	}
	e2eCount, ok := sample(reg, "iotsec_mttr_e2e_seconds", "_count", nil)
	if !ok || e2eCount != 1 {
		t.Fatalf("e2e count = %v (ok=%v), want 1", e2eCount, ok)
	}
	e2eSum, _ := sample(reg, "iotsec_mttr_e2e_seconds", "_sum", nil)
	if e2eSum+1e-9 < stageSum {
		t.Fatalf("e2e (%g) < sum of critical-path stages (%g): a stage was double-counted", e2eSum, stageSum)
	}
}

// TestTrackerChainWithoutFlowModsCompletes: a posture that emits no
// flow rules (e.g. reconfig-only) must not wait forever for a
// flow-applied that can never come.
func TestTrackerChainWithoutFlowModsCompletes(t *testing.T) {
	j := journal.New(256)
	reg := telemetry.NewRegistry()
	tr := slo.NewTracker(j, slo.Options{Registry: reg, ChainTimeout: time.Minute})
	defer tr.Close()

	emitChain(j, 7, false)
	tr.Sync()
	waitFor(t, "no-flow chain completion", func() bool {
		v, ok := sample(reg, "iotsec_mttr_complete_total", "", nil)
		return ok && v == 1
	})
}

// TestTrackerStalledFlowAppliedCountsIncomplete: flow-mods on the wire
// with no acknowledgment time the chain out under
// missing_stage="flow-applied" and drive the tracker's health Down
// with the stage named.
func TestTrackerStalledFlowAppliedCountsIncomplete(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(1000, 0))
	j := journal.New(256)
	reg := telemetry.NewRegistry()
	tr := slo.NewTracker(j, slo.Options{Registry: reg, ChainTimeout: time.Second, Clock: clk})
	defer tr.Close()

	j.RecordTrace(9, journal.TypeAnomaly, journal.Warn, "wemo", "synthetic anomaly")
	j.RecordTrace(9, journal.TypePosture, journal.Info, "wemo", "posture isolate=true")
	j.RecordTrace(9, journal.TypeFlowMod, journal.Info, "quarantine", "add prio 400")
	j.RecordTrace(9, journal.TypeMboxReconfig, journal.Info, "wemo", "pipeline rebuilt")
	waitInflight(t, tr, 1) // chain must stay open waiting for flow-applied

	clk.Advance(2 * time.Second)
	tr.Sync()
	waitFor(t, "incomplete sweep", func() bool { return tr.Incomplete() == 1 })
	if v, ok := sample(reg, "iotsec_mttr_incomplete_total", "", map[string]string{"missing_stage": "flow-applied"}); !ok || v != 1 {
		t.Fatalf(`incomplete_total{missing_stage="flow-applied"} = %v (ok=%v), want 1`, v, ok)
	}
	state, reason := tr.Health()
	if state != telemetry.HealthDown {
		t.Fatalf("Health = %v (%s), want down", state, reason)
	}
	if !strings.Contains(reason, "flow-applied") || !strings.Contains(reason, "wemo") {
		t.Fatalf("health reason %q must name the missing stage and device", reason)
	}

	// The hold window elapses and the tracker recovers on its own.
	clk.Advance(10 * time.Second)
	if state, reason := tr.Health(); state != telemetry.HealthHealthy {
		t.Fatalf("Health after hold = %v (%s), want healthy", state, reason)
	}
}

// TestTrackerDetectionWithoutPostureDegrades: a detection that never
// produces a posture is Degraded (the FSM may legitimately have no
// matching rule), not Down.
func TestTrackerDetectionWithoutPostureDegrades(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(1000, 0))
	j := journal.New(256)
	reg := telemetry.NewRegistry()
	tr := slo.NewTracker(j, slo.Options{Registry: reg, ChainTimeout: time.Second, Clock: clk})
	defer tr.Close()

	j.RecordTrace(11, journal.TypeAnomaly, journal.Warn, "cam", "synthetic anomaly")
	waitInflight(t, tr, 1)
	clk.Advance(2 * time.Second)
	tr.Sync()
	waitFor(t, "incomplete sweep", func() bool { return tr.Incomplete() == 1 })

	if v, ok := sample(reg, "iotsec_mttr_incomplete_total", "", map[string]string{"missing_stage": "posture"}); !ok || v != 1 {
		t.Fatalf(`incomplete_total{missing_stage="posture"} = %v (ok=%v), want 1`, v, ok)
	}
	if state, _ := tr.Health(); state != telemetry.HealthDegraded {
		t.Fatalf("Health = %v, want degraded", state)
	}
}

// TestTrackerIgnoresForeignAndUntracedEvents: trace-less events and
// stages whose chain was never started here must not open state.
func TestTrackerIgnoresForeignAndUntracedEvents(t *testing.T) {
	j := journal.New(256)
	reg := telemetry.NewRegistry()
	tr := slo.NewTracker(j, slo.Options{Registry: reg})
	defer tr.Close()

	j.RecordTrace(0, journal.TypeAnomaly, journal.Warn, "x", "untraced")
	j.RecordTrace(99, journal.TypePosture, journal.Info, "x", "stage without a detection")
	time.Sleep(20 * time.Millisecond) // let the consumer goroutine see them
	tr.Sync()
	if got := tr.Inflight(); got != 0 {
		t.Fatalf("Inflight = %d, want 0", got)
	}
}

// TestWatchdogBurnsOnIncompleteWindow: a window whose chains all time
// out violates the budget — slo-burn journal event, burn counter,
// OnBurn callback — and a following healthy window recovers.
func TestWatchdogBurnsOnIncompleteWindow(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(1000, 0))
	j := journal.New(256)
	reg := telemetry.NewRegistry()
	tr := slo.NewTracker(j, slo.Options{Registry: reg, ChainTimeout: time.Second, Clock: clk})
	defer tr.Close()

	burned := make(chan slo.Evaluation, 1)
	recovered := make(chan slo.Evaluation, 1)
	w := slo.NewWatchdog(tr, slo.Objectives{
		Target: 100 * time.Millisecond, Quantile: 0.5, Window: time.Minute, MinSamples: 1,
	}, slo.WatchdogOptions{
		Journal: j, Registry: reg, Clock: clk,
		OnBurn:    func(ev slo.Evaluation) { burned <- ev },
		OnRecover: func(ev slo.Evaluation) { recovered <- ev },
	})
	defer w.Stop()

	// Two detections, zero enforcement: both time out inside the window.
	j.RecordTrace(21, journal.TypeAnomaly, journal.Warn, "wemo", "synthetic")
	j.RecordTrace(22, journal.TypeAnomaly, journal.Warn, "wemo", "synthetic")
	waitInflight(t, tr, 2) // chains must open before fake time moves, or their deadlines shift
	clk.Advance(2 * time.Second)
	ev := w.Evaluate()
	if !ev.Burning || ev.Incomplete != 2 || ev.Total != 2 {
		t.Fatalf("evaluation = %+v, want burning with 2/2 incomplete", ev)
	}
	select {
	case <-burned:
	case <-time.After(2 * time.Second):
		t.Fatal("OnBurn never fired")
	}
	if events := j.Snapshot(journal.Filter{Type: journal.TypeSLOBurn}); len(events) != 1 {
		t.Fatalf("journal has %d slo-burn events, want 1", len(events))
	} else if !strings.Contains(events[0].Detail, "p50") {
		t.Fatalf("slo-burn detail %q must state the objective", events[0].Detail)
	}
	if v, ok := sample(reg, "iotsec_slo_burn_total", "", nil); !ok || v != 1 {
		t.Fatalf("burn_total = %v (ok=%v), want 1", v, ok)
	}
	if v, _ := sample(reg, "iotsec_slo_burn_active", "", nil); v != 1 {
		t.Fatalf("burn_active = %v, want 1", v)
	}

	// A healthy window: one fast complete chain, well under target.
	emitChain(j, 23, true)
	waitFor(t, "recovery chain completion", func() bool {
		v, ok := sample(reg, "iotsec_mttr_complete_total", "", nil)
		return ok && v == 1
	})
	ev = w.Evaluate()
	if ev.Burning || ev.OverTarget != 0 || ev.Incomplete != 0 {
		t.Fatalf("recovery evaluation = %+v, want clean", ev)
	}
	select {
	case <-recovered:
	case <-time.After(2 * time.Second):
		t.Fatal("OnRecover never fired")
	}
	if v, _ := sample(reg, "iotsec_slo_burn_active", "", nil); v != 0 {
		t.Fatalf("burn_active after recovery = %v, want 0", v)
	}
	// Burn was one episode: the counter did not move on recovery.
	if v, _ := sample(reg, "iotsec_slo_burn_total", "", nil); v != 1 {
		t.Fatalf("burn_total after recovery = %v, want 1", v)
	}
}

// TestWatchdogSkipsLowTrafficWindows: below MinSamples the verdict is
// Skipped and the burn state holds steady.
func TestWatchdogSkipsLowTrafficWindows(t *testing.T) {
	j := journal.New(256)
	reg := telemetry.NewRegistry()
	tr := slo.NewTracker(j, slo.Options{Registry: reg})
	defer tr.Close()
	w := slo.NewWatchdog(tr, slo.Objectives{Target: time.Second, MinSamples: 5}, slo.WatchdogOptions{
		Journal: j, Registry: reg,
	})
	defer w.Stop()

	emitChain(j, 31, true)
	ev := w.Evaluate()
	if !ev.Skipped || ev.Burning {
		t.Fatalf("evaluation = %+v, want skipped and not burning", ev)
	}
	if events := j.Snapshot(journal.Filter{Type: journal.TypeSLOBurn}); len(events) != 0 {
		t.Fatalf("skipped window journaled %d slo-burn events, want 0", len(events))
	}
}

// TestWatchdogTickerEmitsWithinOneWindow is the acceptance check: with
// the watchdog Started (ticker-driven, fake clock), a window of
// violating traffic produces the slo-burn journal event within one
// evaluation window.
func TestWatchdogTickerEmitsWithinOneWindow(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(1000, 0))
	j := journal.New(256)
	reg := telemetry.NewRegistry()
	tr := slo.NewTracker(j, slo.Options{Registry: reg, ChainTimeout: 10 * time.Millisecond, Clock: clk})
	defer tr.Close()
	w := slo.NewWatchdog(tr, slo.Objectives{
		Target: 50 * time.Millisecond, Quantile: 0.9, Window: time.Second, MinSamples: 1,
	}, slo.WatchdogOptions{Journal: j, Registry: reg, Clock: clk})
	w.Start()
	defer w.Stop()

	j.RecordTrace(41, journal.TypeAnomaly, journal.Warn, "wemo", "synthetic")
	waitInflight(t, tr, 1)
	clk.Advance(time.Second) // one full window: chain times out AND the ticker fires

	deadline := time.Now().Add(3 * time.Second)
	for {
		if events := j.Snapshot(journal.Filter{Type: journal.TypeSLOBurn}); len(events) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slo-burn journal event within one window; last eval %+v", w.Last())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !w.Burning() {
		t.Fatal("watchdog not burning after the violating window")
	}
}
