package telemetry

import (
	"strings"
	"testing"
)

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("iotsec_bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("iotsec_bench_par_total", "b")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.NewCounterVec("iotsec_bench_vec_total", "b", "who")
	v.With("x") // pre-create
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("x").Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("iotsec_bench_seconds", "b", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0001)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("iotsec_bench_par_seconds", "b", LatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0001)
		}
	})
}

func BenchmarkScrape(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.NewCounter("iotsec_bench_c"+string(rune('a'+i))+"_total", "b").Add(uint64(i))
	}
	h := r.NewHistogram("iotsec_bench_scrape_seconds", "b", LatencyBuckets)
	h.Observe(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		_ = r.WritePrometheus(&sb)
	}
}
