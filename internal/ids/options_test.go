package ids

import (
	"strings"
	"testing"
	"testing/quick"

	"iotsec/internal/packet"
)

func TestParseContentModifiers(t *testing.T) {
	r, err := ParseRule(`alert tcp any any -> any 80 (msg:"m"; content:"GET"; offset:0; depth:4; content:!"Referer"; dsize:>10; sid:5;)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Contents) != 2 {
		t.Fatalf("contents = %+v", r.Contents)
	}
	if r.Contents[0].Depth != 4 || r.Contents[0].Negated {
		t.Errorf("first content = %+v", r.Contents[0])
	}
	if !r.Contents[1].Negated || string(r.Contents[1].Pattern) != "Referer" {
		t.Errorf("second content = %+v", r.Contents[1])
	}
	if r.Dsize.Op != DsizeGT || r.Dsize.N != 10 {
		t.Errorf("dsize = %+v", r.Dsize)
	}
	// Canonical round trip with the new options.
	again, err := ParseRule(r.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", r.String(), err)
	}
	if again.String() != r.String() {
		t.Errorf("unstable form:\n%q\n%q", r.String(), again.String())
	}
}

func TestParseContentModifierErrors(t *testing.T) {
	bad := []string{
		`alert tcp any any -> any 80 (offset:3; sid:1;)`,             // offset before content
		`alert tcp any any -> any 80 (content:"x"; depth:0; sid:1;)`, // zero depth
		`alert tcp any any -> any 80 (content:""; sid:1;)`,           // empty content
		`alert tcp any any -> any 80 (dsize:abc; sid:1;)`,            // bad dsize
		`alert tcp any any -> any 80 (content:"x"; offset:-1; sid:1;)`,
	}
	for _, line := range bad {
		if _, err := ParseRule(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestDsizeMatching(t *testing.T) {
	rules, err := ParseRules(`
alert tcp any any -> any 80 (msg:"big"; dsize:>20; sid:1;)
alert tcp any any -> any 80 (msg:"tiny"; dsize:<5; sid:2;)
alert tcp any any -> any 80 (msg:"exact"; dsize:7; sid:3;)
`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	check := func(payload string, wantSIDs ...int) {
		t.Helper()
		p := buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 1, 80, payload)
		var got []int
		for _, a := range e.Match(p) {
			got = append(got, a.SID)
		}
		if !equalIntSets(got, wantSIDs) {
			t.Errorf("payload %q: sids = %v, want %v", payload, got, wantSIDs)
		}
	}
	check(strings.Repeat("x", 30), 1)
	check("abc", 2)
	check("1234567", 3)
	check("123456789012", []int{}...)
}

func TestNegatedContent(t *testing.T) {
	rules, err := ParseRules(`alert tcp any any -> any 80 (msg:"unauth'd GET"; content:"GET"; content:!"auth:"; sid:4;)`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	hit := buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 1, 80, "GET /x")
	miss := buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 1, 80, "GET /x\nauth: a:b")
	if len(e.Match(hit)) != 1 {
		t.Error("credential-less GET not flagged")
	}
	if len(e.Match(miss)) != 0 {
		t.Error("authenticated GET flagged despite negation")
	}
}

func TestOnlyNegatedContentsRule(t *testing.T) {
	// A rule with only negated contents must be evaluated on every
	// packet (nothing for the prefilter to key on).
	rules, err := ParseRules(`alert tcp any any -> any 80 (msg:"no proto tag"; content:!"IOT/1"; sid:6;)`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	raw := buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 1, 80, "mystery bytes")
	tagged := buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 1, 80, "IOT/1 STATUS")
	if len(e.Match(raw)) != 1 {
		t.Error("untagged payload not flagged")
	}
	if len(e.Match(tagged)) != 0 {
		t.Error("tagged payload flagged")
	}
}

func TestOffsetDepthRegions(t *testing.T) {
	rules, err := ParseRules(`alert tcp any any -> any 80 (msg:"method field"; content:"POST"; offset:0; depth:4; sid:7;)`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	atStart := buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 1, 80, "POST /upload")
	later := buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 1, 80, "x POST /upload")
	if len(e.Match(atStart)) != 1 {
		t.Error("POST at offset 0 missed")
	}
	if len(e.Match(later)) != 0 {
		t.Error("POST outside depth window matched")
	}
}

func TestContentMatchesProperty(t *testing.T) {
	// contentMatches must agree with a straightforward reference
	// implementation for random inputs.
	ref := func(c Content, payload []byte) bool {
		start := c.Offset
		if start > len(payload) {
			start = len(payload)
		}
		end := len(payload)
		if c.Depth > 0 && start+c.Depth < end {
			end = start + c.Depth
		}
		region := payload[start:end]
		pat := c.Pattern
		if c.NoCase {
			region = []byte(strings.ToLower(string(region)))
		}
		found := strings.Contains(string(region), string(pat))
		return found != c.Negated
	}
	f := func(payload []byte, pattern []byte, offset, depth uint8, negated, nocase bool) bool {
		if len(pattern) == 0 {
			pattern = []byte{'x'}
		}
		if len(pattern) > 8 {
			pattern = pattern[:8]
		}
		if nocase {
			pattern = []byte(strings.ToLower(string(pattern)))
		}
		c := Content{
			Pattern: pattern, NoCase: nocase, Negated: negated,
			Offset: int(offset % 32), Depth: int(depth % 32),
		}
		return contentMatches(c, payload) == ref(c, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
