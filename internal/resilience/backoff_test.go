package resilience

import (
	"testing"
	"time"
)

// TestBackoffScheduleNoJitter pins the deterministic exponential
// schedule: Base, Base*2, Base*4, ... clamped at Cap.
func TestBackoffScheduleNoJitter(t *testing.T) {
	cases := []struct {
		name string
		opts BackoffOptions
		want []time.Duration
	}{
		{
			name: "defaults double and cap",
			opts: BackoffOptions{Base: 50 * time.Millisecond, Cap: 300 * time.Millisecond, NoJitter: true},
			want: []time.Duration{
				50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
				300 * time.Millisecond, 300 * time.Millisecond,
			},
		},
		{
			name: "custom multiplier",
			opts: BackoffOptions{Base: 10 * time.Millisecond, Cap: time.Second, Multiplier: 3, NoJitter: true},
			want: []time.Duration{
				10 * time.Millisecond, 30 * time.Millisecond, 90 * time.Millisecond, 270 * time.Millisecond,
				810 * time.Millisecond, time.Second,
			},
		},
		{
			name: "cap below base clamps immediately",
			opts: BackoffOptions{Base: 80 * time.Millisecond, Cap: 40 * time.Millisecond, NoJitter: true},
			want: []time.Duration{40 * time.Millisecond, 40 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bo := NewBackoff(tc.opts)
			for i, want := range tc.want {
				got, ok := bo.Next()
				if !ok {
					t.Fatalf("attempt %d: unexpectedly done", i)
				}
				if got != want {
					t.Fatalf("attempt %d: delay = %v, want %v", i, got, want)
				}
			}
		})
	}
}

// TestBackoffJitterBounds checks full jitter stays within [0, ceiling]
// and is deterministic for a fixed seed.
func TestBackoffJitterBounds(t *testing.T) {
	opts := BackoffOptions{Base: 20 * time.Millisecond, Cap: 500 * time.Millisecond, Seed: 42}
	bo := NewBackoff(opts)
	ref := NewBackoff(opts)
	for i := 0; i < 32; i++ {
		ceiling := bo.Ceiling()
		d, ok := bo.Next()
		if !ok {
			t.Fatalf("attempt %d: unexpectedly done", i)
		}
		if d < 0 || d > ceiling {
			t.Fatalf("attempt %d: delay %v outside [0, %v]", i, d, ceiling)
		}
		if ceiling > opts.Cap {
			t.Fatalf("attempt %d: ceiling %v exceeds cap %v", i, ceiling, opts.Cap)
		}
		rd, _ := ref.Next()
		if d != rd {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, d, rd)
		}
	}
}

// TestBackoffResetOnSuccess verifies Reset restarts the schedule at
// Base — the supervisor resets after every successful session.
func TestBackoffResetOnSuccess(t *testing.T) {
	bo := NewBackoff(BackoffOptions{Base: 10 * time.Millisecond, Cap: time.Second, NoJitter: true})
	for i := 0; i < 5; i++ {
		bo.Next()
	}
	if got := bo.Attempt(); got != 5 {
		t.Fatalf("Attempt = %d, want 5", got)
	}
	bo.Reset()
	if got := bo.Attempt(); got != 0 {
		t.Fatalf("Attempt after Reset = %d, want 0", got)
	}
	d, ok := bo.Next()
	if !ok || d != 10*time.Millisecond {
		t.Fatalf("first delay after Reset = (%v, %v), want (10ms, true)", d, ok)
	}
}

// TestBackoffMaxElapsed verifies the total budget: the final wait is
// truncated to the boundary and the attempt after it reports done.
func TestBackoffMaxElapsed(t *testing.T) {
	bo := NewBackoff(BackoffOptions{
		Base: 40 * time.Millisecond, Cap: time.Second,
		MaxElapsed: 100 * time.Millisecond, NoJitter: true,
	})
	var total time.Duration
	steps := 0
	for {
		d, ok := bo.Next()
		if !ok {
			break
		}
		total += d
		steps++
		if steps > 10 {
			t.Fatal("budget never exhausted")
		}
	}
	if total != 100*time.Millisecond {
		t.Fatalf("cumulative delay = %v, want exactly the 100ms budget", total)
	}
	// 40 + 80→truncated to 60 = 100; third attempt is done.
	if steps != 2 {
		t.Fatalf("steps = %d, want 2", steps)
	}
	// Reset restores the budget.
	bo.Reset()
	if _, ok := bo.Next(); !ok {
		t.Fatal("Next after Reset reported done; budget should be restored")
	}
}

func TestRingPushDrainOrder(t *testing.T) {
	r := NewRing[int](4)
	for i := 1; i <= 3; i++ {
		if evicted := r.Push(i); evicted {
			t.Fatalf("Push(%d) evicted from non-full ring", i)
		}
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	got := r.Drain()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Drain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain[%d] = %d, want %d (oldest first)", i, got[i], want[i])
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after Drain = %d, want 0", r.Len())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing[int](3)
	for i := 1; i <= 3; i++ {
		r.Push(i)
	}
	if evicted := r.Push(4); !evicted {
		t.Fatal("Push into full ring did not report eviction")
	}
	r.Push(5)
	if got := r.Evicted(); got != 2 {
		t.Fatalf("Evicted = %d, want 2", got)
	}
	got := r.Drain()
	want := []int{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain = %v, want %v (oldest dropped)", got, want)
		}
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := NewRing[string](0)
	for i := 0; i < 1024; i++ {
		if r.Push("x") {
			t.Fatalf("eviction before default capacity filled (i=%d)", i)
		}
	}
	if !r.Push("overflow") {
		t.Fatal("expected eviction at default capacity 1024")
	}
}

func TestFakeClockTicker(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tick := clk.NewTicker(10 * time.Second)
	defer tick.Stop()
	select {
	case <-tick.C():
		t.Fatal("ticker fired before Advance")
	default:
	}
	clk.Advance(10 * time.Second)
	select {
	case ts := <-tick.C():
		if got := ts.Unix(); got != 10 {
			t.Fatalf("tick time = %d, want 10", got)
		}
	default:
		t.Fatal("ticker did not fire after Advance past its period")
	}
	// Multiple overdue periods coalesce (buffered-1 channel).
	clk.Advance(50 * time.Second)
	n := 0
	for {
		select {
		case <-tick.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("coalesced ticks = %d, want 1", n)
	}
}
