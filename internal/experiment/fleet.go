package experiment

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/device"
	"iotsec/internal/policy"
	"iotsec/internal/telemetry"
)

// FleetOptions parameterizes the fleet load harness (A10).
type FleetOptions struct {
	// Sizes lists the fleet sizes to sweep (default 1e3, 1e4, 1e5).
	Sizes []int
	// ShardSize is the devices-per-local-controller cap (default 64).
	ShardSize int
	// Duration is the event-driving window per size (default 2s).
	Duration time.Duration
	// Workers drive events concurrently (default GOMAXPROCS).
	Workers int
	// RollupInterval is the shard→fleet push period (default 250ms).
	RollupInterval time.Duration
	// Progress, when set, receives one line as each size completes.
	Progress io.Writer
}

// FleetResult is one fleet size's measured outcome.
type FleetResult struct {
	Size         int     `json:"size"`
	Shards       int     `json:"shards"`
	Workers      int     `json:"workers"`
	Events       uint64  `json:"events"`
	Escalated    uint64  `json:"escalated"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Fleet-merged detect→enforce quantiles (seconds), re-derived from
	// the rollup plane's merged histogram.
	P50 float64 `json:"p50_seconds"`
	P95 float64 `json:"p95_seconds"`
	P99 float64 `json:"p99_seconds"`
	// Direct (pooled, unsharded) measurement of the same observations,
	// the ground truth the merged view must reproduce.
	DirectP99   float64 `json:"direct_p99_seconds"`
	MergedCount uint64  `json:"merged_count"`
	DirectCount uint64  `json:"direct_count"`
	StaleShards int     `json:"stale_shards"`

	// View is the final merged fleet snapshot (CI artifact material).
	View controller.FleetView `json:"view"`
}

// fleetSKUs is the synthetic SKU mix assigned round-robin.
var fleetSKUs = []string{"cam-v1", "plug-v2", "lock-v3", "tv-v4"}

// RunFleet (A10) drives 10³–10⁵ emulated devices through sharded
// local controllers with the telemetry rollup plane attached,
// reporting live device-events/sec and detect→enforce latency at each
// fleet size from the *merged* fleet view — the measurement itself
// exercises the hierarchical rollup transport it reports on.
func RunFleet(o FleetOptions) (*Table, []FleetResult, error) {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{1_000, 10_000, 100_000}
	}
	if o.ShardSize <= 0 {
		o.ShardSize = 64
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RollupInterval <= 0 {
		o.RollupInterval = 250 * time.Millisecond
	}

	t := &Table{
		ID:    "A10",
		Title: fmt.Sprintf("Fleet load: sharded control plane + rollup telemetry (%v/size, shard %d)", o.Duration, o.ShardSize),
		Columns: []string{
			"Devices", "Shards", "Events", "Events/sec",
			"p50", "p95", "p99 (merged)", "p99 (direct)", "Escalated",
		},
	}
	var results []FleetResult
	for _, size := range o.Sizes {
		if size <= 0 {
			return nil, nil, fmt.Errorf("experiment: fleet size %d", size)
		}
		r, err := runFleetSize(size, o)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, r)
		t.AddRow(r.Size, r.Shards, r.Events,
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmtSeconds(r.P50), fmtSeconds(r.P95), fmtSeconds(r.P99),
			fmtSeconds(r.DirectP99), r.Escalated)
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, "fleet %d: %.0f events/sec, p99 %s (merged) vs %s (direct), %d shards\n",
				r.Size, r.EventsPerSec, fmtSeconds(r.P99), fmtSeconds(r.DirectP99), r.Shards)
		}
	}
	t.Note("latency is detect→enforce (event injection to posture delivery); quantiles from the fleet-merged rollup histogram")
	t.Note("escalated events pay the global controller round trip; everything else resolves in the owning shard")
	return t, results, nil
}

// fmtSeconds renders a latency compactly (µs/ms/s).
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// fleetDevIndex parses "dev%06d" → index (-1 when not a fleet device).
func fleetDevIndex(name string) int {
	if len(name) < 4 || name[0] != 'd' || name[1] != 'e' || name[2] != 'v' {
		return -1
	}
	n := 0
	for i := 3; i < len(name); i++ {
		c := name[i]
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func runFleetSize(n int, o FleetOptions) (FleetResult, error) {
	devs := make([]string, n)
	d := policy.NewDomain()
	f := policy.NewFSM(d)
	for i := range devs {
		devs[i] = fmt.Sprintf("dev%06d", i)
		d.AddDevice(devs[i], policy.ContextNormal, policy.ContextSuspicious)
		d.AddEnvVar(devs[i]+"_attr", "a", "b")
		// Self-targeting local rule: the device's posture flips
		// zero↔Block as its own attr alternates, so every committed
		// event yields exactly one posture delivery to measure.
		f.AddRule(policy.Rule{
			Name:       "local-" + devs[i],
			Conditions: []policy.Condition{policy.EnvIs(devs[i]+"_attr", "b")},
			Device:     devs[i],
			Posture:    policy.Posture{BlockCommands: []string{"ON"}},
			Priority:   5,
		})
	}
	// One cross-partition rule keeps the global path honest: backdoor
	// probes on its two referenced devices escalate.
	if n > 1 {
		f.AddRule(policy.Rule{
			Name: "global-cross",
			Conditions: []policy.Condition{
				policy.DeviceIs(devs[0], policy.ContextSuspicious),
				policy.DeviceIs(devs[n-1], policy.ContextSuspicious),
			},
			Device:   devs[0],
			Posture:  policy.Posture{Isolate: true},
			Priority: 9,
		})
	}

	// Star edges inside each block of ShardSize devices → blocks map
	// onto shards.
	edges := make([]controller.InteractionEdge, 0, n)
	for i, dev := range devs {
		if anchor := i - i%o.ShardSize; anchor != i {
			edges = append(edges, controller.InteractionEdge{A: devs[anchor], B: dev, Weight: 1})
		}
	}
	part := controller.Partition(devs, edges, o.ShardSize)
	envLocality := make(map[string]int, n)
	for _, dev := range devs {
		envLocality[dev+"_attr"] = part.GroupOf(dev)
	}

	epoch := time.Now()
	inject := make([]int64, n)
	direct := telemetry.NewStandaloneHistogram(nil)
	// statsByIdx is filled after EnableFleetStats; the sink loads it
	// atomically because reconciles may race the setup window.
	var statsByIdx atomic.Pointer[[]*controller.ShardStats]

	sink := func(_ context.Context, dev string, _ policy.Posture, _ uint64) {
		i := fleetDevIndex(dev)
		if i < 0 || i >= n {
			return
		}
		// Swap-to-zero claims the in-flight timestamp exactly once:
		// bulk first-reconcile posture sweeps (every device starts at
		// the zero posture) find 0 and record nothing.
		ts := atomic.SwapInt64(&inject[i], 0)
		if ts == 0 {
			return
		}
		lat := (time.Since(epoch) - time.Duration(ts)).Seconds()
		if lat < 0 {
			return
		}
		if sp := statsByIdx.Load(); sp != nil {
			if s := (*sp)[i]; s != nil {
				s.ObserveE2E(dev, lat)
			}
		}
		direct.Observe(lat)
	}

	h := controller.NewHierarchy(f, part, envLocality, sink)
	byGroup := h.EnableFleetStats()
	idx := make([]*controller.ShardStats, n)
	skuByShard := make(map[int]map[string]int, len(byGroup))
	for i, dev := range devs {
		g := part.GroupOf(dev)
		idx[i] = byGroup[g]
		m := skuByShard[g]
		if m == nil {
			m = make(map[string]int, len(fleetSKUs))
			skuByShard[g] = m
		}
		m[fleetSKUs[i%len(fleetSKUs)]]++
	}
	for g, counts := range skuByShard {
		byGroup[g].SetSKUDevices(counts)
	}
	statsByIdx.Store(&idx)

	agg := h.Global.Fleet()
	plane := h.StartFleetRollups(agg, o.RollupInterval)

	// Drive: each worker owns a contiguous device range and flips its
	// devices' attr every round ("b" first so round 0 already commits a
	// posture change).
	workers := o.Workers
	if workers > n {
		workers = n
	}
	var stop atomic.Bool
	var totalEvents atomic.Uint64
	vals := [2]string{"b", "a"}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int, probes bool) {
			defer wg.Done()
			ctx := context.Background()
			var events uint64
			for round := 0; !stop.Load(); round++ {
				detail := "attr=" + vals[round&1]
				for i := lo; i < hi; i++ {
					if stop.Load() {
						break
					}
					atomic.StoreInt64(&inject[i], int64(time.Since(epoch)))
					h.HandleDeviceEvent(ctx, device.Event{
						Device: devs[i], Kind: device.EventStateChange, Detail: detail,
					})
					events++
				}
				if probes && round%8 == 0 && n > 1 {
					// Rare security probes on the globally referenced
					// pair exercise the escalation path.
					h.HandleDeviceEvent(ctx, device.Event{Device: devs[0], Kind: device.EventBackdoorAccess, Detail: "probe"})
					h.HandleDeviceEvent(ctx, device.Event{Device: devs[n-1], Kind: device.EventBackdoorAccess, Detail: "probe"})
					events += 2
				}
			}
			totalEvents.Add(events)
		}(lo, hi, w == 0)
	}
	time.Sleep(o.Duration)
	stop.Store(true)
	wg.Wait()
	wall := time.Since(start)
	plane.Stop() // final flush: nothing observed is lost

	merged := agg.MergedMTTR()
	view := agg.View()
	_, escalated := h.Metrics()
	r := FleetResult{
		Size:         n,
		Shards:       h.Locals(),
		Workers:      workers,
		Events:       totalEvents.Load(),
		Escalated:    escalated,
		WallSeconds:  wall.Seconds(),
		EventsPerSec: float64(totalEvents.Load()) / wall.Seconds(),
		P50:          merged.Quantile(0.50),
		P95:          merged.Quantile(0.95),
		P99:          merged.Quantile(0.99),
		DirectP99:    direct.Quantile(0.99),
		MergedCount:  merged.Count,
		DirectCount:  direct.Count(),
		StaleShards:  view.Fleet.StaleShards,
		View:         view,
	}
	if r.Events == 0 {
		return r, fmt.Errorf("experiment: fleet %d drove no events", n)
	}
	return r, nil
}
