package packet

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

var (
	testSrcMAC = MACAddress{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	testDstMAC = MACAddress{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	testSrcIP  = MustParseIPv4("10.0.0.1")
	testDstIP  = MustParseIPv4("10.0.0.2")
)

// buildTCPPacket serializes a full eth/ip/tcp/payload stack.
func buildTCPPacket(t *testing.T, payload []byte, srcPort, dstPort uint16) []byte {
	t.Helper()
	tcp := &TCP{SrcPort: srcPort, DstPort: dstPort, Seq: 100, Ack: 200, Flags: TCPPsh | TCPAck}
	tcp.SetNetworkForChecksum(testSrcIP, testDstIP)
	b := NewSerializeBuffer()
	err := SerializeLayers(b,
		&Ethernet{SrcMAC: testSrcMAC, DstMAC: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolTCP},
		tcp,
		NewPayload(payload),
	)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return b.Bytes()
}

func TestEthernetIPv4TCPRoundTrip(t *testing.T) {
	payload := []byte("GET /admin HTTP/1.0\r\n\r\n")
	raw := buildTCPPacket(t, payload, 31337, 80)
	p := Decode(raw, LayerTypeEthernet)
	if fail := p.ErrorLayer(); fail != nil {
		t.Fatalf("decode failed: %v", fail.Error())
	}
	eth := p.Ethernet()
	if eth == nil || eth.SrcMAC != testSrcMAC || eth.DstMAC != testDstMAC {
		t.Fatalf("ethernet mismatch: %+v", eth)
	}
	ip := p.IPv4()
	if ip == nil || ip.SrcIP != testSrcIP || ip.DstIP != testDstIP {
		t.Fatalf("ipv4 mismatch: %+v", ip)
	}
	if !ip.VerifyChecksum() {
		t.Error("ipv4 checksum did not verify")
	}
	tcp := p.TCP()
	if tcp == nil || tcp.SrcPort != 31337 || tcp.DstPort != 80 {
		t.Fatalf("tcp mismatch: %+v", tcp)
	}
	if !tcp.Flags.Has(TCPPsh | TCPAck) {
		t.Errorf("tcp flags = %v, want PSH|ACK", tcp.Flags)
	}
	if !tcp.VerifyChecksum(ip.SrcIP, ip.DstIP) {
		t.Error("tcp checksum did not verify")
	}
	if got := p.ApplicationPayload(); !bytes.Equal(got, payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	udp := &UDP{SrcPort: 5353, DstPort: 9999}
	udp.SetNetworkForChecksum(testSrcIP, testDstIP)
	b := NewSerializeBuffer()
	err := SerializeLayers(b,
		&IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolUDP},
		udp,
		NewPayload([]byte("hello")),
	)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	p := Decode(b.Bytes(), LayerTypeIPv4)
	u := p.UDP()
	if u == nil {
		t.Fatalf("no UDP layer in %v", p)
	}
	if u.SrcPort != 5353 || u.DstPort != 9999 {
		t.Errorf("ports = %d,%d", u.SrcPort, u.DstPort)
	}
	if int(u.Length) != 8+5 {
		t.Errorf("udp length = %d, want 13", u.Length)
	}
	if got := p.ApplicationPayload(); string(got) != "hello" {
		t.Errorf("payload = %q", got)
	}
}

func TestARPRoundTrip(t *testing.T) {
	arp := &ARP{
		Operation: ARPRequest,
		SenderMAC: testSrcMAC, SenderIP: testSrcIP,
		TargetMAC: MACAddress{}, TargetIP: testDstIP,
	}
	b := NewSerializeBuffer()
	err := SerializeLayers(b,
		&Ethernet{SrcMAC: testSrcMAC, DstMAC: BroadcastMAC, EtherType: EtherTypeARP},
		arp,
	)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	p := Decode(b.Bytes(), LayerTypeEthernet)
	got, ok := p.Layer(LayerTypeARP).(*ARP)
	if !ok {
		t.Fatalf("no ARP layer in %v", p)
	}
	if got.Operation != ARPRequest || got.SenderIP != testSrcIP || got.TargetIP != testDstIP {
		t.Errorf("arp mismatch: %+v", got)
	}
}

func TestDNSRoundTrip(t *testing.T) {
	dns := &DNS{
		ID:         0xbeef,
		Response:   true,
		RecDesired: true,
		Questions:  []DNSQuestion{{Name: "iot.example.com", Type: DNSTypeA, Class: DNSClassIN}},
		Answers: []DNSResourceRecord{
			{Name: "iot.example.com", Type: DNSTypeA, Class: DNSClassIN, TTL: 300, Data: []byte{10, 0, 0, 42}},
			{Name: "iot.example.com", Type: DNSTypeTXT, Class: DNSClassIN, TTL: 60, Data: bytes.Repeat([]byte{'x'}, 200)},
		},
	}
	udp := &UDP{SrcPort: 53, DstPort: 4444}
	b := NewSerializeBuffer()
	if err := SerializeLayers(b, udp, dns); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	p := Decode(b.Bytes(), LayerTypeUDP)
	got := p.DNS()
	if got == nil {
		t.Fatalf("no DNS layer in %v", p)
	}
	if got.ID != 0xbeef || !got.Response || !got.RecDesired {
		t.Errorf("dns header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "iot.example.com" {
		t.Errorf("questions = %+v", got.Questions)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers = %+v", got.Answers)
	}
	if !bytes.Equal(got.Answers[0].Data, []byte{10, 0, 0, 42}) {
		t.Errorf("A record data = %v", got.Answers[0].Data)
	}
	if len(got.Answers[1].Data) != 200 {
		t.Errorf("TXT record len = %d", len(got.Answers[1].Data))
	}
}

func TestDNSNameCompression(t *testing.T) {
	// Hand-build a response with a compression pointer: question
	// "a.example" at offset 12, answer name is a pointer to it.
	raw := []byte{
		0x12, 0x34, // ID
		0x80, 0x00, // response flags
		0x00, 0x01, // 1 question
		0x00, 0x01, // 1 answer
		0x00, 0x00, 0x00, 0x00, // ns/ar
		1, 'a', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 0, // name at offset 12
		0x00, 0x01, 0x00, 0x01, // type A class IN
		0xc0, 0x0c, // pointer to offset 12
		0x00, 0x01, 0x00, 0x01, // type A class IN
		0x00, 0x00, 0x00, 0x3c, // TTL 60
		0x00, 0x04, 1, 2, 3, 4, // rdata
	}
	var d DNS
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.Questions[0].Name != "a.example" {
		t.Errorf("question name = %q", d.Questions[0].Name)
	}
	if d.Answers[0].Name != "a.example" {
		t.Errorf("answer name = %q (compression pointer not followed)", d.Answers[0].Name)
	}
}

func TestDNSCompressionLoopRejected(t *testing.T) {
	// A name that points at itself must not hang the decoder.
	raw := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xc0, 0x0c, // pointer to itself at offset 12
		0, 1, 0, 1,
	}
	var d DNS
	if err := d.DecodeFromBytes(raw); err == nil {
		t.Fatal("self-referential compression pointer should fail decoding")
	}
}

func TestDecodeTruncatedProducesFailureLayer(t *testing.T) {
	raw := buildTCPPacket(t, []byte("data"), 1, 2)
	for _, cut := range []int{1, 10, 15, 20, 30} {
		p := Decode(raw[:cut], LayerTypeEthernet)
		// Either everything decoded (short cuts may still form valid
		// prefixes) or a DecodeFailure terminates the layer list; the
		// decoder must never panic or loop.
		if len(p.Layers()) == 0 && cut > 0 {
			t.Errorf("cut=%d produced no layers", cut)
		}
	}
	p := Decode(raw[:5], LayerTypeEthernet)
	if p.ErrorLayer() == nil {
		t.Error("5-byte ethernet frame should yield a DecodeFailure layer")
	}
}

func TestParseIPv4(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"0.0.0.0", true},
		{"255.255.255.255", true},
		{"10.0.0.1", true},
		{"256.0.0.1", false},
		{"1.2.3", false},
		{"1.2.3.4.5", false},
		{"a.b.c.d", false},
		{"", false},
		{"1..2.3", false},
		{"1.2.3.", false},
	}
	for _, c := range cases {
		if _, ok := ParseIPv4(c.in); ok != c.ok {
			t.Errorf("ParseIPv4(%q) ok=%v, want %v", c.in, ok, c.ok)
		}
	}
	if a := MustParseIPv4("192.168.1.99"); a != (IPv4Address{192, 168, 1, 99}) {
		t.Errorf("MustParseIPv4 = %v", a)
	}
}

func TestIPv4StringRoundTripProperty(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		addr := IPv4Address{a, b, c, d}
		got, ok := ParseIPv4(addr.String())
		return ok && got == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCPSerializeDecodeProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flagBits uint8, payload []byte) bool {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		tcp := &TCP{
			SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack,
			Flags: TCPFlags(flagBits & 0x3f),
		}
		tcp.SetNetworkForChecksum(testSrcIP, testDstIP)
		b := NewSerializeBuffer()
		if err := SerializeLayers(b, tcp, NewPayload(payload)); err != nil {
			return false
		}
		var got TCP
		if err := got.DecodeFromBytes(b.Bytes()); err != nil {
			return false
		}
		return got.SrcPort == srcPort && got.DstPort == dstPort &&
			got.Seq == seq && got.Ack == ack &&
			got.Flags == TCPFlags(flagBits&0x3f) &&
			bytes.Equal(got.LayerPayload(), payload) &&
			got.VerifyChecksum(testSrcIP, testDstIP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInternetChecksumProperties(t *testing.T) {
	// Checksum of data with its own checksum folded in verifies to 0.
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		if len(data) < 2 {
			return true
		}
		data[0], data[1] = 0, 0
		cs := internetChecksum(data, 0)
		data[0], data[1] = byte(cs>>8), byte(cs)
		return internetChecksum(data, 0) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSerializeBufferPrependAppend(t *testing.T) {
	b := NewSerializeBuffer()
	s, err := b.Append(3)
	if err != nil {
		t.Fatal(err)
	}
	copy(s, "bcd")
	s, err = b.Prepend(1)
	if err != nil {
		t.Fatal(err)
	}
	s[0] = 'a'
	if err := b.PushBytes([]byte("e")); err != nil {
		t.Fatal(err)
	}
	if got := string(b.Bytes()); got != "abcde" {
		t.Errorf("buffer = %q, want abcde", got)
	}
	if b.Len() != 5 {
		t.Errorf("len = %d", b.Len())
	}
	b.Clear()
	if b.Len() != 0 {
		t.Errorf("len after clear = %d", b.Len())
	}
}

func TestSerializeBufferLargePrepend(t *testing.T) {
	var b SerializeBuffer // zero value, no headroom
	s, err := b.Prepend(1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		s[i] = byte(i)
	}
	if b.Len() != 1000 {
		t.Fatalf("len = %d", b.Len())
	}
	if b.Bytes()[999] != byte(999%256) {
		t.Error("content lost across growth")
	}
}

func TestSerializeBufferMaxSize(t *testing.T) {
	b := NewSerializeBuffer()
	if _, err := b.Append(MaxPacketSize + 1); err == nil {
		t.Error("appending past MaxPacketSize should fail")
	}
}

func TestFlowCanonicalSymmetry(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 byte, pa, pb uint16) bool {
		src := IPv4PortEndpoint(IPv4Address{a1, a2, a3, a4}, pa)
		dst := IPv4PortEndpoint(IPv4Address{b1, b2, b3, b4}, pb)
		fwd := Flow{Src: src, Dst: dst}
		rev := fwd.Reverse()
		return fwd.Canonical() == rev.Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransportFlowExtraction(t *testing.T) {
	raw := buildTCPPacket(t, nil, 1234, 80)
	p := Decode(raw, LayerTypeEthernet)
	fl, ok := p.TransportFlow()
	if !ok {
		t.Fatal("no transport flow")
	}
	a, _ := fl.Src.IPv4Addr()
	port, _ := fl.Src.Port()
	if a != testSrcIP || port != 1234 {
		t.Errorf("src = %v", fl.Src)
	}
	if fl.String() != "10.0.0.1:1234 > 10.0.0.2:80" {
		t.Errorf("flow string = %q", fl.String())
	}
	nf, ok := p.NetworkFlow()
	if !ok {
		t.Fatal("no network flow")
	}
	if nf.String() != "10.0.0.1 > 10.0.0.2" {
		t.Errorf("network flow = %q", nf)
	}
}

func TestEndpointAccessors(t *testing.T) {
	m := MACEndpoint(testSrcMAC)
	if m.String() != "02:00:00:00:00:01" {
		t.Errorf("mac endpoint = %q", m)
	}
	if _, ok := m.IPv4Addr(); ok {
		t.Error("MAC endpoint should not expose an IPv4 address")
	}
	pe := PortEndpoint(8080)
	if p, ok := pe.Port(); !ok || p != 8080 {
		t.Errorf("port endpoint = %v", pe)
	}
}

func TestDecodeUnknownEtherTypeFallsBackToPayload(t *testing.T) {
	b := NewSerializeBuffer()
	err := SerializeLayers(b,
		&Ethernet{SrcMAC: testSrcMAC, DstMAC: testDstMAC, EtherType: EtherType(0x88cc)},
		NewPayload([]byte("lldp-ish")),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(b.Bytes(), LayerTypeEthernet)
	if got := p.ApplicationPayload(); string(got) != "lldp-ish" {
		t.Errorf("payload = %q", got)
	}
}

func TestIPv4TTLDefaultsOnSerialize(t *testing.T) {
	b := NewSerializeBuffer()
	ip := &IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolUDP}
	if err := SerializeLayers(b, ip, NewPayload([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	var got IPv4
	if err := got.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got.TTL != 64 {
		t.Errorf("ttl = %d, want default 64", got.TTL)
	}
}

func TestLayerAndPacketStrings(t *testing.T) {
	raw := buildTCPPacket(t, []byte("hi"), 1234, 80)
	p := Decode(raw, LayerTypeEthernet)
	s := p.String()
	for _, want := range []string{"Ethernet", "IPv4", "TCP", "Payload"} {
		if !strings.Contains(s, want) {
			t.Errorf("packet string %q missing %q", s, want)
		}
	}
	if !strings.Contains(p.Ethernet().String(), "02:00:00:00:00:01") {
		t.Errorf("eth string = %q", p.Ethernet())
	}
	if !strings.Contains(p.IPv4().String(), "10.0.0.1 > 10.0.0.2") {
		t.Errorf("ip string = %q", p.IPv4())
	}
	if !strings.Contains(p.TCP().String(), "[ACK|PSH]") {
		t.Errorf("tcp string = %q", p.TCP())
	}
	if len(p.Data()) != len(raw) {
		t.Error("Data() mismatch")
	}

	udp := &UDP{SrcPort: 1, DstPort: 2, Length: 10}
	if got := udp.String(); got != "UDP 1 > 2 len=10" {
		t.Errorf("udp string = %q", got)
	}
	arp := &ARP{Operation: ARPReply, SenderIP: testSrcIP, TargetIP: testDstIP}
	if !strings.Contains(arp.String(), "reply") {
		t.Errorf("arp string = %q", arp)
	}
	dns := &DNS{ID: 3, Response: true}
	if !strings.Contains(dns.String(), "response") {
		t.Errorf("dns string = %q", dns)
	}
	pl := NewPayload([]byte("abc"))
	if pl.String() != "Payload 3 bytes" {
		t.Errorf("payload string = %q", pl)
	}
	if LayerType(999).String() == "" {
		t.Error("unknown layer type string empty")
	}
	if EtherType(0x1234).String() != "EtherType(0x1234)" {
		t.Errorf("ethertype string = %q", EtherType(0x1234))
	}
	if IPProtocol(99).String() != "IPProtocol(99)" {
		t.Errorf("proto string = %q", IPProtocol(99))
	}
	if TCPFlags(0).String() != "none" {
		t.Errorf("flags string = %q", TCPFlags(0))
	}
}

func TestBroadcastAndZeroHelpers(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() || testSrcMAC.IsBroadcast() {
		t.Error("IsBroadcast wrong")
	}
	if !(IPv4Address{}).IsZero() || testSrcIP.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestDecodeFailureLayerAccessors(t *testing.T) {
	p := Decode([]byte{1, 2, 3}, LayerTypeEthernet)
	fail := p.ErrorLayer()
	if fail == nil {
		t.Fatal("no failure layer")
	}
	if fail.Error() == nil {
		t.Error("failure carries no error")
	}
	if len(fail.LayerContents()) != 3 {
		t.Errorf("failure contents = %v", fail.LayerContents())
	}
	// A failed packet has no protocol layers.
	if p.TCP() != nil || p.UDP() != nil || p.IPv4() != nil || p.DNS() != nil || p.ApplicationPayload() != nil {
		t.Error("accessors returned layers on a failed decode")
	}
	if _, ok := p.TransportFlow(); ok {
		t.Error("transport flow on failed decode")
	}
}

func TestUDPTransportFlow(t *testing.T) {
	udp := &UDP{SrcPort: 9, DstPort: 10}
	udp.SetNetworkForChecksum(testSrcIP, testDstIP)
	b := NewSerializeBuffer()
	if err := SerializeLayers(b,
		&IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolUDP},
		udp, NewPayload([]byte("u")),
	); err != nil {
		t.Fatal(err)
	}
	p := Decode(b.Bytes(), LayerTypeIPv4)
	fl, ok := p.TransportFlow()
	if !ok {
		t.Fatal("no UDP transport flow")
	}
	if port, _ := fl.Dst.Port(); port != 10 {
		t.Errorf("dst port = %d", port)
	}
	// IP-only packet: network flow yes, transport flow no.
	b2 := NewSerializeBuffer()
	if err := SerializeLayers(b2,
		&IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolICMP},
		NewPayload([]byte("ping")),
	); err != nil {
		t.Fatal(err)
	}
	p2 := Decode(b2.Bytes(), LayerTypeIPv4)
	if _, ok := p2.TransportFlow(); ok {
		t.Error("transport flow on ICMP packet")
	}
	if _, ok := p2.NetworkFlow(); !ok {
		t.Error("no network flow on ICMP packet")
	}
}

func TestEndpointOrderingProperty(t *testing.T) {
	// endpointLess is a strict weak order: irreflexive, asymmetric.
	f := func(a1, a2, b1, b2 byte, pa, pb uint16) bool {
		ea := IPv4PortEndpoint(IPv4Address{a1, a2, 0, 1}, pa)
		eb := IPv4PortEndpoint(IPv4Address{b1, b2, 0, 2}, pb)
		if endpointLess(ea, ea) {
			return false
		}
		if endpointLess(ea, eb) && endpointLess(eb, ea) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4VerifyChecksumDetectsCorruption(t *testing.T) {
	raw := buildTCPPacket(t, []byte("x"), 1, 2)
	p := Decode(raw, LayerTypeEthernet)
	if !p.IPv4().VerifyChecksum() {
		t.Fatal("fresh checksum should verify")
	}
	// Corrupt a header byte (TTL) and re-decode.
	raw[14+8] ^= 0xff
	p2 := Decode(raw, LayerTypeEthernet)
	if ip := p2.IPv4(); ip != nil && ip.VerifyChecksum() {
		t.Error("corrupted header verified")
	}
}
