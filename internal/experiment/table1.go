package experiment

import (
	"fmt"
	"time"

	"iotsec/internal/attack"
	"iotsec/internal/device"
	"iotsec/internal/packet"
)

// Table1Row drives one row of the paper's Table 1: the device class,
// the reported vulnerable population, and the exploit — executed
// against the emulated device with and without IoTSec.
type Table1Row struct {
	Row           int
	Device        string
	Population    string
	Vulnerability string
	// run executes the exploit in both worlds, returning success
	// flags.
	run func() (unprotected, protected bool, err error)
}

// RunTable1 reproduces Table 1.
func RunTable1() (*Table, error) {
	rows := []Table1Row{
		{Row: 1, Device: "Avtech Cam", Population: "130k", Vulnerability: "exposed account/password", run: runRow1Camera},
		{Row: 2, Device: "TV Set-top box", Population: "61k", Vulnerability: "exposed access", run: runRow2SetTop},
		{Row: 3, Device: "Smart Refrigerator", Population: "146", Vulnerability: "exposed access", run: runRow3Fridge},
		{Row: 4, Device: "CCTV Cam", Population: "30k (by IP)", Vulnerability: "unprotected RSA key pairs", run: runRow4CCTV},
		{Row: 5, Device: "Traffic Light", Population: "219", Vulnerability: "no credentials", run: runRow5TrafficLight},
		{Row: 6, Device: "Belkin Wemo", Population: ">500k (est.)", Vulnerability: "open DNS resolver, DDoS", run: runRow6WemoDNS},
		{Row: 7, Device: "Belkin Wemo", Population: ">500k (est.)", Vulnerability: "exposed access, bypass app", run: runRow7WemoBackdoor},
	}
	t := &Table{
		ID:      "T1",
		Title:   "Known IoT vulnerabilities: exploitability without vs with IoTSec",
		Columns: []string{"Row", "Device", "Num.", "Vulnerability", "Exploit (bare)", "Exploit (IoTSec)"},
	}
	for _, r := range rows {
		bare, protected, err := r.run()
		if err != nil {
			return nil, fmt.Errorf("table1 row %d: %w", r.Row, err)
		}
		t.AddRow(r.Row, r.Device, r.Population, r.Vulnerability, yesNo(bare), yesNo(protected))
	}
	t.Note("populations are the paper's reported counts; exploits run against one emulated instance per SKU")
	return t, nil
}

func runRow1Camera() (bool, bool, error) {
	raw := newRawLab()
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	if err := raw.add(cam.Device); err != nil {
		return false, false, err
	}
	raw.start()
	bare := raw.attacker.TryDefaultCredentials(cam.IP(), "SNAPSHOT").Success
	raw.stop()

	prot, err := newProtectedLab(policyFor("cam", device.CameraProfile()))
	if err != nil {
		return false, false, err
	}
	defer prot.stop()
	cam2 := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	if _, err := prot.platform.AddDevice(cam2.Device); err != nil {
		return false, false, err
	}
	prot.platform.Start()
	protected := prot.attacker.TryDefaultCredentials(cam2.IP(), "SNAPSHOT").Success
	return bare, protected, nil
}

func runRow2SetTop() (bool, bool, error) {
	raw := newRawLab()
	stb := device.NewSetTopBox("stb", packet.MustParseIPv4("10.0.0.11"))
	if err := raw.add(stb.Device); err != nil {
		return false, false, err
	}
	raw.start()
	bare := raw.attacker.TryOpenAccess(stb.IP(), "TUNE", "666").Success
	raw.stop()

	prot, err := newProtectedLab(policyFor("stb", device.SetTopBoxProfile()))
	if err != nil {
		return false, false, err
	}
	defer prot.stop()
	stb2 := device.NewSetTopBox("stb", packet.MustParseIPv4("10.0.0.11"))
	if _, err := prot.platform.AddDevice(stb2.Device); err != nil {
		return false, false, err
	}
	prot.platform.Start()
	protected := prot.attacker.TryOpenAccess(stb2.IP(), "TUNE", "666").Success
	return bare, protected, nil
}

func runRow3Fridge() (bool, bool, error) {
	raw := newRawLab()
	fridge := device.NewSmartFridge("fridge", packet.MustParseIPv4("10.0.0.12"))
	if err := raw.add(fridge.Device); err != nil {
		return false, false, err
	}
	raw.start()
	bare := raw.attacker.TryOpenAccess(fridge.IP(), "RELAY", "10.0.0.99", "10").Success
	raw.stop()

	prot, err := newProtectedLab(policyFor("fridge", device.SmartFridgeProfile()))
	if err != nil {
		return false, false, err
	}
	defer prot.stop()
	fridge2 := device.NewSmartFridge("fridge", packet.MustParseIPv4("10.0.0.12"))
	if _, err := prot.platform.AddDevice(fridge2.Device); err != nil {
		return false, false, err
	}
	prot.platform.Start()
	protected := prot.attacker.TryOpenAccess(fridge2.IP(), "RELAY", "10.0.0.99", "10").Success
	return bare, protected, nil
}

func runRow4CCTV() (bool, bool, error) {
	const sharedKey = "rsa-FLEET-KEY-77"
	raw := newRawLab()
	c1 := device.NewCCTV("cctv1", packet.MustParseIPv4("10.0.0.20"), sharedKey)
	c2 := device.NewCCTV("cctv2", packet.MustParseIPv4("10.0.0.21"), sharedKey)
	if err := raw.add(c1.Device); err != nil {
		return false, false, err
	}
	if err := raw.add(c2.Device); err != nil {
		return false, false, err
	}
	raw.start()
	res, key := raw.attacker.ExtractFirmwareKey(c1.IP())
	bare := res.Success && raw.attacker.ReplayKey(c2.IP(), key).Success
	raw.stop()

	// Protected: both units behind password proxies; the firmware
	// download (and any key replay) dies at the proxy.
	prot, err := newProtectedLab(policyForMany(map[string]device.Profile{
		"cctv1": device.CCTVProfile(sharedKey),
		"cctv2": device.CCTVProfile(sharedKey),
	}))
	if err != nil {
		return false, false, err
	}
	defer prot.stop()
	p1 := device.NewCCTV("cctv1", packet.MustParseIPv4("10.0.0.20"), sharedKey)
	p2 := device.NewCCTV("cctv2", packet.MustParseIPv4("10.0.0.21"), sharedKey)
	if _, err := prot.platform.AddDevice(p1.Device); err != nil {
		return false, false, err
	}
	if _, err := prot.platform.AddDevice(p2.Device); err != nil {
		return false, false, err
	}
	prot.platform.Start()
	res2, key2 := prot.attacker.ExtractFirmwareKey(p1.IP())
	protected := res2.Success && prot.attacker.ReplayKey(p2.IP(), key2).Success
	return bare, protected, nil
}

func runRow5TrafficLight() (bool, bool, error) {
	raw := newRawLab()
	tl := device.NewTrafficLight("tl", packet.MustParseIPv4("10.0.0.30"))
	if err := raw.add(tl.Device); err != nil {
		return false, false, err
	}
	raw.start()
	bare := raw.attacker.TryOpenAccess(tl.IP(), "SET", "green").Success
	raw.stop()

	prot, err := newProtectedLab(policyFor("tl", device.TrafficLightProfile()))
	if err != nil {
		return false, false, err
	}
	defer prot.stop()
	tl2 := device.NewTrafficLight("tl", packet.MustParseIPv4("10.0.0.30"))
	if _, err := prot.platform.AddDevice(tl2.Device); err != nil {
		return false, false, err
	}
	prot.platform.Start()
	protected := prot.attacker.TryOpenAccess(tl2.IP(), "SET", "green").Success
	return bare, protected, nil
}

func runRow6WemoDNS() (bool, bool, error) {
	run := func(protected bool) (bool, error) {
		victimIP := packet.MustParseIPv4("10.0.0.99")
		if !protected {
			raw := newRawLab()
			defer raw.stop()
			plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.40"), device.Appliance{Name: "x"})
			if err := raw.add(plug.Device); err != nil {
				return false, err
			}
			if err := plug.StartDNSResolver(20); err != nil {
				return false, err
			}
			victimStack := raw.addHost("10.0.0.99")
			victim, err := attack.NewVictim(victimStack, 7777)
			if err != nil {
				return false, err
			}
			raw.start()
			res, err := attack.AmplifyDNS(raw.attacker.Stack, plug.IP(), victimIP, 7777, 30)
			if err != nil {
				return false, err
			}
			time.Sleep(150 * time.Millisecond)
			res.Finalize(victim)
			return res.Factor > 2, nil
		}
		prot, err := newProtectedLab(policyFor("wemo", device.SmartPlugProfile()))
		if err != nil {
			return false, err
		}
		defer prot.stop()
		plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.40"), device.Appliance{Name: "x"})
		if _, err := prot.platform.AddDevice(plug.Device); err != nil {
			return false, err
		}
		if err := plug.StartDNSResolver(20); err != nil {
			return false, err
		}
		victimAddr := packet.MustParseIPv4("10.0.0.99")
		victimStack := netsimStack("victim", victimAddr)
		prot.platform.AttachHost(victimStack)
		prot.hosts = append(prot.hosts, victimStack)
		victim, err := attack.NewVictim(victimStack, 7777)
		if err != nil {
			return false, err
		}
		prot.platform.Start()
		res, err := attack.AmplifyDNS(prot.attacker.Stack, plug.IP(), victimIP, 7777, 30)
		if err != nil {
			return false, err
		}
		time.Sleep(150 * time.Millisecond)
		res.Finalize(victim)
		return res.Factor > 2, nil
	}
	bare, err := run(false)
	if err != nil {
		return false, false, err
	}
	protected, err := run(true)
	return bare, protected, err
}

func runRow7WemoBackdoor() (bool, bool, error) {
	raw := newRawLab()
	plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.50"), device.Appliance{Name: "oven"})
	if err := raw.add(plug.Device); err != nil {
		return false, false, err
	}
	raw.start()
	bare := raw.attacker.TryBackdoor(plug.IP(), "ON", device.PlugBackdoorToken).Success
	raw.stop()

	prot, err := newProtectedLab(policyFor("wemo", device.SmartPlugProfile()))
	if err != nil {
		return false, false, err
	}
	defer prot.stop()
	plug2 := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.50"), device.Appliance{Name: "oven"})
	if _, err := prot.platform.AddDevice(plug2.Device); err != nil {
		return false, false, err
	}
	// The community signature for the backdoor token (from the
	// crowdsourced repository) arms the IDS module.
	sig := `block tcp any any -> any 80 (msg:"wemo backdoor token"; content:"` + device.PlugBackdoorToken + `"; sid:9001;)`
	if err := prot.platform.AddSignatureRule(plug2.Profile.SKU, sig); err != nil {
		return false, false, err
	}
	prot.platform.Start()
	settle()
	protected := prot.attacker.TryBackdoor(plug2.IP(), "ON", device.PlugBackdoorToken).Success
	return bare, protected, nil
}
