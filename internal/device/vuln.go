package device

// VulnerabilityClass names the flaw categories of the paper's Table 1.
type VulnerabilityClass string

// Vulnerability classes.
const (
	// VulnDefaultCredentials: hardcoded factory username/password the
	// user cannot change (Table 1 row 1: Avtech cameras,
	// "admin/admin"; also the Fig 4 D-Link camera).
	VulnDefaultCredentials VulnerabilityClass = "default-credentials"
	// VulnOpenAccess: management interface reachable with no
	// credentials at all (rows 2, 3, 5: set-top boxes, refrigerators,
	// traffic lights).
	VulnOpenAccess VulnerabilityClass = "open-access"
	// VulnExposedKey: private key material extractable from firmware
	// (row 4: CCTV RSA key pairs) — one extraction compromises every
	// device of the SKU.
	VulnExposedKey VulnerabilityClass = "exposed-key"
	// VulnOpenDNSResolver: device answers recursive DNS for anyone,
	// usable as a DDoS amplifier (row 6: Belkin Wemo).
	VulnOpenDNSResolver VulnerabilityClass = "open-dns-resolver"
	// VulnBackdoor: undocumented remote command path that bypasses
	// authentication entirely (row 7: Wemo exposed access bypassing
	// the app; Fig 3's fire-alarm backdoor).
	VulnBackdoor VulnerabilityClass = "backdoor"
	// VulnWeakPassword: short/guessable password susceptible to
	// online brute force (Fig 3's window actuator).
	VulnWeakPassword VulnerabilityClass = "weak-password"
)

// Vulnerability describes one flaw instance on a device SKU.
type Vulnerability struct {
	Class VulnerabilityClass
	// Detail carries class-specific data: the default user:pass, the
	// backdoor token, the exposed key, ...
	Detail string
}

// Profile describes a device SKU: what the crowdsourced repository and
// the model library key on. The paper stresses that signatures are
// per-SKU ("Google Nest version XYZ rather than 'thermostat'").
type Profile struct {
	SKU    string // e.g. "avtech-cam-fw1.2"
	Class  string // e.g. "camera"
	Vendor string
	Vulns  []Vulnerability
}

// HasVuln reports whether the profile carries a flaw of the class.
func (p Profile) HasVuln(c VulnerabilityClass) bool {
	for _, v := range p.Vulns {
		if v.Class == c {
			return true
		}
	}
	return false
}

// VulnDetail returns the detail string of the first flaw of the class.
func (p Profile) VulnDetail(c VulnerabilityClass) string {
	for _, v := range p.Vulns {
		if v.Class == c {
			return v.Detail
		}
	}
	return ""
}
