package packet

import (
	"encoding/binary"
	"fmt"
)

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

const arpLen = 28 // Ethernet/IPv4 ARP body

// ARP is an Ethernet/IPv4 ARP message.
type ARP struct {
	base
	Operation uint16
	SenderMAC MACAddress
	SenderIP  IPv4Address
	TargetMAC MACAddress
	TargetIP  IPv4Address
}

// LayerType implements Layer.
func (a *ARP) LayerType() LayerType { return LayerTypeARP }

// DecodeFromBytes implements DecodingLayer.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < arpLen {
		return fmt.Errorf("arp: %w (%d bytes)", ErrTruncated, len(data))
	}
	if htype := binary.BigEndian.Uint16(data[0:2]); htype != 1 {
		return fmt.Errorf("arp: unsupported hardware type %d", htype)
	}
	if ptype := EtherType(binary.BigEndian.Uint16(data[2:4])); ptype != EtherTypeIPv4 {
		return fmt.Errorf("arp: unsupported protocol type %s", ptype)
	}
	a.Operation = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetMAC[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	a.contents = data[:arpLen]
	a.payload = data[arpLen:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (a *ARP) NextLayerType() LayerType { return LayerTypePayload }

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b *SerializeBuffer) error {
	hdr, err := b.Prepend(arpLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(hdr[0:2], 1) // Ethernet
	binary.BigEndian.PutUint16(hdr[2:4], uint16(EtherTypeIPv4))
	hdr[4] = 6 // MAC length
	hdr[5] = 4 // IPv4 length
	binary.BigEndian.PutUint16(hdr[6:8], a.Operation)
	copy(hdr[8:14], a.SenderMAC[:])
	copy(hdr[14:18], a.SenderIP[:])
	copy(hdr[18:24], a.TargetMAC[:])
	copy(hdr[24:28], a.TargetIP[:])
	return nil
}

// String summarizes the ARP message.
func (a *ARP) String() string {
	op := "request"
	if a.Operation == ARPReply {
		op = "reply"
	}
	return fmt.Sprintf("ARP %s %s(%s) > %s(%s)", op, a.SenderIP, a.SenderMAC, a.TargetIP, a.TargetMAC)
}
