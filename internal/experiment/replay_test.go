package experiment

import (
	"encoding/json"
	"testing"
	"time"

	"iotsec/internal/core"
	"iotsec/internal/device"
	"iotsec/internal/forensics"
	"iotsec/internal/ids"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

// TestReplayRoundTrip is the A13 loop end to end: a live deployment
// suffers an anomaly, the forensics plane captures and seals the
// chain, the sealed incident exports as a scenario, and replaying the
// scenario re-fires every chain stage within the SLO.
func TestReplayRoundTrip(t *testing.T) {
	const dev = "cam"
	d := policy.NewDomain()
	d.AddDevice(dev, policy.ContextNormal, policy.ContextSuspicious, policy.ContextCompromised)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:     "baseline-" + dev,
		Device:   dev,
		Posture:  policy.Posture{Modules: []policy.ModuleSpec{{Kind: "stateful-fw"}}},
		Priority: 1,
	})
	f.AddRule(policy.Rule{
		Name:       "quarantine-" + dev,
		Conditions: []policy.Condition{policy.DeviceIs(dev, policy.ContextSuspicious)},
		Device:     dev,
		Posture:    policy.Posture{Isolate: true},
		Priority:   10,
	})
	prot, err := newProtectedLab(f)
	if err != nil {
		t.Fatal(err)
	}
	defer prot.stop()
	victim := device.NewCamera(dev, packet.MustParseIPv4("10.0.0.30"))
	if _, err := prot.platform.AddDevice(victim.Device); err != nil {
		t.Fatal(err)
	}
	sb, err := prot.platform.AttachSouthbound(core.SouthboundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	prot.platform.Start()
	if !sb.Steering.WaitForSwitch(2 * time.Second) {
		t.Fatal("southbound switch never connected")
	}

	store, err := forensics.OpenStore(t.TempDir(), forensics.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	capt := prot.platform.EnableForensics(forensics.Options{
		Store:      store,
		Shard:      "shard-test",
		Quiet:      100 * time.Millisecond,
		SweepEvery: 20 * time.Millisecond,
	})
	defer capt.Close()

	// The real incident: a rate anomaly that quarantines the camera.
	prot.platform.ReportAnomaly(ids.Anomaly{
		Device: dev, Kind: ids.AnomalyRate, Detail: "beacon burst", Score: 0.99,
	})

	// Wait for the chain to seal into the durable store.
	var inc *forensics.Incident
	if !waitUntil(func() bool {
		capt.Sync()
		for _, dg := range store.Digests() {
			if dg.Device == dev {
				inc, _ = store.Get(dg.ID)
				return inc != nil
			}
		}
		return false
	}, 5*time.Second) {
		t.Fatalf("incident never sealed; capturer stats %+v", capt.Stats())
	}
	if !inc.Complete {
		t.Fatalf("captured chain incomplete: %+v", inc.Timeline().Chain())
	}

	// Export, round-trip through JSON (what mboxctl incidents export
	// writes and iotsim -replay reads), and validate.
	sc := forensics.ExportScenario(inc, 0)
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := forensics.LoadScenario(b)
	if err != nil {
		t.Fatalf("exported scenario does not load: %v", err)
	}
	if loaded.Device != dev || loaded.Kind != forensics.KindAnomaly {
		t.Fatalf("scenario identity wrong: %s/%s", loaded.Device, loaded.Kind)
	}
	hasStage := func(stages []string, want string) bool {
		for _, s := range stages {
			if s == want {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"detect", "policy"} {
		if !hasStage(loaded.ExpectedStages, want) {
			t.Fatalf("expected stages %v missing %q", loaded.ExpectedStages, want)
		}
	}

	// Replay: the same stages must re-fire, on a fresh trace, in SLO.
	res, err := RunReplay(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("replay failed: %s (observed %v)", res.Error, res.Observed)
	}
	if !res.WithinSLO {
		t.Fatalf("replay blew the SLO: %.3fs > %.3fs", res.ElapsedSeconds, res.SLOSeconds)
	}
	if res.TraceID == 0 || res.TraceID == inc.TraceID {
		t.Fatalf("replay trace %d must be fresh (original %d)", res.TraceID, inc.TraceID)
	}
	if !res.Recaptured {
		t.Fatal("replayed chain was not re-captured by the replay deployment's forensics plane")
	}
	if len(res.Missing) != 0 {
		t.Fatalf("missing stages after replay: %v", res.Missing)
	}
}

// TestReplayFailoverScenario: a controller-failover scenario re-drives
// a supervised kill and completes the recovery chain within the SLO.
func TestReplayFailoverScenario(t *testing.T) {
	sc := &forensics.Scenario{
		Version:    forensics.ScenarioVersion,
		Incident:   "inc-00000000000000aa",
		Kind:       forensics.KindFailover,
		SLOSeconds: 5,
		ExpectedStages: []string{
			"controller-failover", "partition-rehomed", "recovery-complete",
		},
	}
	// Guard against drift between the literal stage names above and
	// the exporter's canonical list.
	if exp := forensics.ExportScenario(&forensics.Incident{
		ID: sc.Incident, Kind: forensics.KindFailover,
	}, 0); len(exp.ExpectedStages) != len(sc.ExpectedStages) {
		t.Fatalf("exporter failover stages %v; update this test", exp.ExpectedStages)
	}
	res, err := RunReplay(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed || !res.WithinSLO {
		t.Fatalf("failover replay failed: %+v", res)
	}
	if res.TraceID == 0 {
		t.Fatal("failover replay did not surface the recovery trace")
	}
}

// TestReplayRejectsInvalid: malformed scenarios fail fast, before any
// deployment is built.
func TestReplayRejectsInvalid(t *testing.T) {
	if _, err := RunReplay(&forensics.Scenario{Version: 99}); err == nil {
		t.Fatal("wrong-version scenario accepted")
	}
	if _, err := RunReplayFile("/nonexistent/scenario.json"); err == nil {
		t.Fatal("missing scenario file accepted")
	}
}
