package core

import (
	"net/http"
	"runtime"
	"testing"
	"time"

	"iotsec/internal/telemetry"
)

// waitGoroutines polls until the goroutine count returns near base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonStyleShutdownNoGoroutineLeak assembles the full iotsecd
// shape — demo platform, admin API, telemetry server — scrapes it
// once, then tears everything down and verifies no goroutine outlives
// the shutdown.
func TestDaemonStyleShutdownNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	p, err := DemoHome()
	if err != nil {
		t.Fatal(err)
	}
	p.Start()

	admin, _, err := p.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.Switch.ExportTelemetry(telemetry.Default)
	tsrv, taddr, err := telemetry.Default.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// One real scrape over HTTP while the fabric is live.
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + taddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}

	if err := tsrv.Close(); err != nil {
		t.Fatal(err)
	}
	admin.Close()
	p.Stop()
	waitGoroutines(t, base)
}
