package openflow

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/resilience"
)

// ErrUnknownDatapath reports a send to a switch that never connected or
// has disconnected.
var ErrUnknownDatapath = errors.New("openflow: unknown datapath")

// SwitchHandler receives asynchronous events from connected switches.
// Implementations must be safe for concurrent calls (one reader
// goroutine per switch).
type SwitchHandler interface {
	// SwitchConnected fires after the feature handshake.
	SwitchConnected(dpid uint64, ports []uint16)
	// SwitchDisconnected fires when a switch connection drops.
	SwitchDisconnected(dpid uint64)
	// HandlePacketIn fires for each punted packet.
	HandlePacketIn(pi *PacketIn)
	// HandleFlowRemoved fires when a switch expires an entry.
	HandleFlowRemoved(fr *FlowRemoved)
}

// ControllerEndpoint is the southbound listener of an SDN controller.
// It accepts switch connections, performs the Hello/Features handshake
// and routes events to the handler.
//
// Sessions are actively probed: a per-session heartbeat loop sends
// ECHO requests on a configurable interval and reaps the session once
// the missed-beat threshold is crossed, so half-dead connections
// (one-way partitions, silently dropped peers) surface as
// SwitchDisconnected instead of lingering forever.
type ControllerEndpoint struct {
	handler SwitchHandler
	logger  *log.Logger

	// Heartbeat configuration; set before Listen.
	hbInterval time.Duration
	hbMisses   int
	clock      resilience.Clock

	mu       sync.RWMutex
	ln       net.Listener
	switches map[uint64]*switchSession
	closed   bool
	wg       sync.WaitGroup
}

type switchSession struct {
	conn  *Conn
	dpid  uint64
	ports []uint16

	// pending counts heartbeat ECHOs sent since the last reply; the
	// read loop zeroes it on every ECHO_REPLY.
	pending atomic.Int32
	// done closes when the session's read loop exits, stopping the
	// heartbeat goroutine.
	done chan struct{}

	barrierMu sync.Mutex
	barriers  map[uint32]chan struct{}
}

// Heartbeat defaults: probe every 5s, reap after 3 unanswered beats.
const (
	DefaultHeartbeatInterval = 5 * time.Second
	DefaultHeartbeatMisses   = 3
)

// NewControllerEndpoint creates an endpoint dispatching to handler.
// logger may be nil to discard diagnostics.
func NewControllerEndpoint(handler SwitchHandler, logger *log.Logger) *ControllerEndpoint {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	return &ControllerEndpoint{
		handler:    handler,
		logger:     logger,
		hbInterval: DefaultHeartbeatInterval,
		hbMisses:   DefaultHeartbeatMisses,
		clock:      resilience.System,
		switches:   make(map[uint64]*switchSession),
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// SetHeartbeat tunes the liveness probe: an ECHO every interval,
// reaping the session after misses consecutive unanswered beats.
// interval <= 0 disables probing. Call before Listen.
func (c *ControllerEndpoint) SetHeartbeat(interval time.Duration, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hbInterval = interval
	if misses < 1 {
		misses = 1
	}
	c.hbMisses = misses
}

// SetClock substitutes the time source driving heartbeats (frozen
// clocks in tests). Call before Listen.
func (c *ControllerEndpoint) SetClock(clk resilience.Clock) {
	if clk == nil {
		clk = resilience.System
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clk
}

// Listen starts accepting switch connections on addr ("host:port";
// use port 0 for an ephemeral port) and returns the bound address.
// After an Interrupt, Listen may be called again (typically on the
// previously bound address) to resume accepting.
func (c *ControllerEndpoint) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("openflow: listen: %w", err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("openflow: endpoint closed")
	}
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(1)
	go c.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (c *ControllerEndpoint) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	for {
		raw, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.serveSwitch(NewConn(raw))
	}
}

// serveSwitch performs the handshake then pumps events until EOF.
func (c *ControllerEndpoint) serveSwitch(conn *Conn) {
	defer c.wg.Done()
	defer conn.Close()

	if _, err := conn.Send(&Hello{}); err != nil {
		return
	}
	m, _, err := conn.Receive()
	if err != nil || m.Type() != TypeHello {
		c.logger.Printf("openflow: handshake with %v failed: %v", conn.RemoteAddr(), err)
		return
	}
	if _, err := conn.Send(&FeaturesRequest{}); err != nil {
		return
	}
	m, _, err = conn.Receive()
	if err != nil {
		return
	}
	feats, ok := m.(*FeaturesReply)
	if !ok {
		c.logger.Printf("openflow: expected FEATURES_REPLY, got %s", m.Type())
		return
	}

	sess := &switchSession{
		conn:     conn,
		dpid:     feats.DatapathID,
		ports:    feats.Ports,
		done:     make(chan struct{}),
		barriers: make(map[uint32]chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	// A reconnecting switch can race its own half-dead predecessor:
	// replace the registration and kill the stale conn so its reader
	// exits (its deferred cleanup sees it is no longer current and
	// does NOT fire SwitchDisconnected for the live dpid).
	stale := c.switches[sess.dpid]
	c.switches[sess.dpid] = sess
	hbInterval, hbMisses, clock := c.hbInterval, c.hbMisses, c.clock
	c.mu.Unlock()
	if stale != nil {
		_ = stale.conn.Close()
	}
	mSessions.Inc()
	journal.RecordTrace(0, journal.TypeSouthUp, journal.Info, "",
		fmt.Sprintf("controller: switch dpid %d session established (%d ports)", sess.dpid, len(sess.ports)))

	if hbInterval > 0 {
		c.wg.Add(1)
		go c.heartbeat(sess, hbInterval, hbMisses, clock)
	}

	c.handler.SwitchConnected(sess.dpid, sess.ports)
	defer func() {
		close(sess.done)
		c.mu.Lock()
		current := c.switches[sess.dpid] == sess
		if current {
			delete(c.switches, sess.dpid)
		}
		c.mu.Unlock()
		mSessions.Dec()
		if current {
			journal.RecordTrace(0, journal.TypeSouthDown, journal.Warn, "",
				fmt.Sprintf("controller: switch dpid %d session lost", sess.dpid))
			c.handler.SwitchDisconnected(sess.dpid)
		}
	}()

	for {
		m, xid, err := conn.Receive()
		if err != nil {
			return
		}
		switch msg := m.(type) {
		case *PacketIn:
			c.handler.HandlePacketIn(msg)
		case *FlowRemoved:
			c.handler.HandleFlowRemoved(msg)
		case *Echo:
			if msg.Reply {
				// Pong: the peer is alive; reset the missed-beat count.
				sess.pending.Store(0)
			} else {
				_ = conn.SendWithXID(&Echo{Reply: true, Payload: msg.Payload}, xid)
			}
		case *BarrierReply:
			sess.barrierMu.Lock()
			if ch, ok := sess.barriers[xid]; ok {
				close(ch)
				delete(sess.barriers, xid)
			}
			sess.barrierMu.Unlock()
		case *ErrorMsg:
			c.logger.Printf("openflow: switch %d error %d: %s", sess.dpid, msg.Code, msg.Text)
		default:
			c.logger.Printf("openflow: unexpected %s from switch %d", m.Type(), sess.dpid)
		}
	}
}

// heartbeat probes one session with periodic ECHO requests, reaping
// it once the missed-beat threshold is crossed. Closing the conn
// unblocks the session's read loop, which performs the normal
// disconnect path (journal + SwitchDisconnected), so a reaped session
// is indistinguishable from a dropped one downstream.
func (c *ControllerEndpoint) heartbeat(sess *switchSession, interval time.Duration, misses int, clock resilience.Clock) {
	defer c.wg.Done()
	t := clock.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-sess.done:
			return
		case <-t.C():
			outstanding := sess.pending.Load()
			if outstanding > 0 {
				// The previous beat went unanswered.
				mHeartbeatMisses.Inc()
			}
			if int(outstanding) >= misses {
				mSessionsReaped.Inc()
				journal.RecordTrace(0, journal.TypeSouthDown, journal.Warn, "",
					fmt.Sprintf("controller: switch dpid %d reaped after %d missed heartbeats", sess.dpid, outstanding))
				c.logger.Printf("openflow: reaping switch %d after %d missed heartbeats", sess.dpid, outstanding)
				_ = sess.conn.Close()
				return
			}
			sess.pending.Add(1)
			if _, err := sess.conn.Send(&Echo{Payload: []byte("hb")}); err != nil {
				_ = sess.conn.Close()
				return
			}
		}
	}
}

func (c *ControllerEndpoint) session(dpid uint64) (*switchSession, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.switches[dpid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownDatapath, dpid)
	}
	return s, nil
}

// SendFlowMod programs the given switch.
func (c *ControllerEndpoint) SendFlowMod(dpid uint64, fm *FlowMod) error {
	s, err := c.session(dpid)
	if err != nil {
		return err
	}
	_, err = s.conn.Send(fm)
	return err
}

// SendPacketOut injects a packet at the given switch.
func (c *ControllerEndpoint) SendPacketOut(dpid uint64, po *PacketOut) error {
	s, err := c.session(dpid)
	if err != nil {
		return err
	}
	_, err = s.conn.Send(po)
	return err
}

// Barrier sends a barrier and waits (up to timeout) for the switch to
// acknowledge that all preceding messages were processed.
//
// Do not call Barrier from within a SwitchHandler callback: callbacks
// run on the switch's receive goroutine, which must stay free to
// deliver the reply Barrier waits for.
func (c *ControllerEndpoint) Barrier(dpid uint64, timeout time.Duration) error {
	s, err := c.session(dpid)
	if err != nil {
		return err
	}
	// Register the waiter BEFORE sending: the reply can arrive on the
	// reader goroutine before Send even returns.
	ch := make(chan struct{})
	xid := s.conn.NextXID()
	s.barrierMu.Lock()
	s.barriers[xid] = ch
	s.barrierMu.Unlock()
	if err := s.conn.SendWithXID(&BarrierRequest{}, xid); err != nil {
		s.barrierMu.Lock()
		delete(s.barriers, xid)
		s.barrierMu.Unlock()
		return err
	}
	select {
	case <-ch:
		return nil
	case <-time.After(timeout):
		s.barrierMu.Lock()
		delete(s.barriers, xid)
		s.barrierMu.Unlock()
		return fmt.Errorf("openflow: barrier to switch %d timed out after %v", dpid, timeout)
	}
}

// Switches lists the datapath IDs currently connected.
func (c *ControllerEndpoint) Switches() []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]uint64, 0, len(c.switches))
	for dpid := range c.switches {
		out = append(out, dpid)
	}
	return out
}

// Interrupt models a controller crash for chaos tests and rolling
// restarts: it drops the listener and every switch connection but
// leaves the endpoint reusable — a subsequent Listen (normally on the
// same address) resumes accepting, and reconnecting switches re-run
// the handshake, triggering the handler's SwitchConnected re-sync
// path (full table + standing quarantine re-push).
func (c *ControllerEndpoint) Interrupt() {
	c.mu.Lock()
	ln := c.ln
	c.ln = nil
	sessions := make([]*switchSession, 0, len(c.switches))
	for _, s := range c.switches {
		sessions = append(sessions, s)
	}
	c.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, s := range sessions {
		_ = s.conn.Close()
	}
}

// Close stops the listener and drops all switch connections, waiting
// for the serving goroutines to exit.
func (c *ControllerEndpoint) Close() error {
	c.mu.Lock()
	c.closed = true
	ln := c.ln
	c.ln = nil
	sessions := make([]*switchSession, 0, len(c.switches))
	for _, s := range c.switches {
		sessions = append(sessions, s)
	}
	c.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, s := range sessions {
		_ = s.conn.Close()
	}
	c.wg.Wait()
	return nil
}
