package telemetry

import (
	"math"
	"testing"
)

// TestQuantileEmptyHistogram: no observations → 0 at every quantile.
func TestQuantileEmptyHistogram(t *testing.T) {
	h := newHistogram(meta{name: "t_empty"}, []float64{0.1, 1, 10})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%g) on empty histogram = %g, want 0", q, got)
		}
	}
}

// TestQuantileSingleBucket: every observation in one bucket
// interpolates within that bucket's bounds.
func TestQuantileSingleBucket(t *testing.T) {
	h := newHistogram(meta{name: "t_single"}, []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(1.5) // all in bucket (1, 2]
	}
	got := h.Quantile(0.5)
	if got <= 1 || got > 2 {
		t.Fatalf("Quantile(0.5) = %g, want within (1, 2]", got)
	}
	// q=1 must land exactly on the bucket's upper bound.
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("Quantile(1) = %g, want 2", got)
	}
}

// TestQuantileExtremes: q=0 and q=1 stay within the observed bucket
// range rather than extrapolating.
func TestQuantileExtremes(t *testing.T) {
	h := newHistogram(meta{name: "t_extremes"}, []float64{1, 2, 4, 8})
	h.Observe(0.5) // bucket ≤1
	h.Observe(3)   // bucket (2,4]
	h.Observe(7)   // bucket (4,8]
	if got := h.Quantile(0); got < 0 || got > 1 {
		t.Fatalf("Quantile(0) = %g, want within [0, 1]", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Fatalf("Quantile(1) = %g, want 8 (upper bound of last occupied bucket)", got)
	}
}

// TestQuantileInfBucket: observations above every finite bound land in
// the implicit +Inf bucket; quantiles falling there report the last
// finite bound (nothing better is known).
func TestQuantileInfBucket(t *testing.T) {
	h := newHistogram(meta{name: "t_inf"}, []float64{1, 2})
	for i := 0; i < 4; i++ {
		h.Observe(100) // +Inf bucket
	}
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("Quantile(0.99) with all mass at +Inf = %g, want last finite bound 2", got)
	}
	// Mixed: half under 1, half at +Inf — median interpolates in the
	// finite range, p99 saturates at the last bound.
	h2 := newHistogram(meta{name: "t_inf2"}, []float64{1, 2})
	for i := 0; i < 5; i++ {
		h2.Observe(0.5)
		h2.Observe(50)
	}
	if got := h2.Quantile(0.25); got > 1 {
		t.Fatalf("Quantile(0.25) = %g, want ≤ 1", got)
	}
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("Quantile(0.99) = %g, want 2", got)
	}
}

// TestQuantileFromBucketsEdges drives the exported helper directly:
// empty counts, zero-count winning buckets, counts slices with and
// without the +Inf entry.
func TestQuantileFromBucketsEdges(t *testing.T) {
	bounds := []float64{1, 2, 4}
	if got := QuantileFromBuckets(bounds, nil, 0.5); got != 0 {
		t.Fatalf("nil buckets = %g, want 0", got)
	}
	if got := QuantileFromBuckets(bounds, []uint64{0, 0, 0, 0}, 0.5); got != 0 {
		t.Fatalf("all-zero buckets = %g, want 0", got)
	}
	// Rank falls on a zero-count bucket boundary: returns the bucket's
	// upper bound instead of dividing by zero.
	got := QuantileFromBuckets(bounds, []uint64{1, 0, 1, 0}, 0.5)
	if math.IsNaN(got) || got < 1 || got > 4 {
		t.Fatalf("zero-count middle bucket = %g, want finite within [1, 4]", got)
	}
	// No bounds at all (degenerate histogram): only the +Inf bucket.
	if got := QuantileFromBuckets(nil, []uint64{7}, 0.9); got != 0 {
		t.Fatalf("boundless histogram = %g, want 0", got)
	}
	// Counts without the +Inf entry still work.
	if got := QuantileFromBuckets(bounds, []uint64{10, 0, 0}, 1); got != 1 {
		t.Fatalf("no-inf counts q=1 = %g, want 1", got)
	}
}

// TestHistogramSnapshotAndBounds: the exported snapshot matches the
// observation distribution and Bounds returns a defensive copy.
func TestHistogramSnapshotAndBounds(t *testing.T) {
	h := newHistogram(meta{name: "t_snap"}, []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	count, sum, buckets := h.Snapshot()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if sum != 11 {
		t.Fatalf("sum = %g, want 11", sum)
	}
	if len(buckets) != 3 || buckets[0] != 1 || buckets[1] != 1 || buckets[2] != 1 {
		t.Fatalf("buckets = %v, want [1 1 1]", buckets)
	}
	b := h.Bounds()
	b[0] = 99
	if h.Bounds()[0] != 1 {
		t.Fatal("Bounds must return a copy, not the internal slice")
	}
}

// TestHistogramVecLabelRoundTrip: With(values...) children expose
// samples whose labels round-trip through the join/split encoding,
// including values with spaces, commas, quotes and empty strings.
func TestHistogramVecLabelRoundTrip(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewHistogramVec("t_vec_seconds", "test", []float64{1}, "stage", "device")
	cases := [][2]string{
		{"posture", "wemo"},
		{"flow-mod", "camera 1"},
		{"a,b", `quo"ted`},
		{"", "empty-first"},
	}
	for _, c := range cases {
		v.With(c[0], c[1]).Observe(0.5)
	}
	// Same label values must resolve to the same child.
	if v.With("posture", "wemo") != v.With("posture", "wemo") {
		t.Fatal("With must be stable for equal label values")
	}
	found := map[[2]string]bool{}
	for _, s := range v.Samples() {
		if s.Suffix != "_count" {
			continue
		}
		var stage, device string
		for _, l := range s.Labels {
			switch l.Key {
			case "stage":
				stage = l.Value
			case "device":
				device = l.Value
			}
		}
		found[[2]string{stage, device}] = true
		if s.Value != 1 {
			t.Fatalf("child %v count = %g, want 1", s.Labels, s.Value)
		}
	}
	for _, c := range cases {
		if !found[c] {
			t.Fatalf("labels %q did not round-trip; got %v", c, found)
		}
	}
}

// TestJoinSplitLabels exercises the raw codec.
func TestJoinSplitLabels(t *testing.T) {
	keys := []string{"a", "b", "c"}
	vals := []string{"x", "", "z z"}
	got := splitLabels(keys, joinLabelValues(vals))
	if len(got) != 3 {
		t.Fatalf("split returned %d labels, want 3", len(got))
	}
	for i, l := range got {
		if l.Key != keys[i] || l.Value != vals[i] {
			t.Fatalf("label %d = %+v, want {%s %s}", i, l, keys[i], vals[i])
		}
	}
}
