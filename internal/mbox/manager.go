package mbox

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/telemetry"
)

// PlatformKind models what the µmbox instance boots as; the relative
// boot costs follow the systems the paper cites (§5.2): ClickOS-style
// micro-VMs boot in tens of milliseconds, full VMs in seconds.
type PlatformKind string

// Platform kinds and their modeled boot latencies.
const (
	PlatformMicroVM PlatformKind = "microvm" // ClickOS-class, ~30ms
	PlatformFullVM  PlatformKind = "fullvm"  // Ubuntu-VM-class, ~3s
	PlatformProcess PlatformKind = "process" // bare process, ~5ms
)

// BootLatency returns the modeled boot cost.
func BootLatency(k PlatformKind) time.Duration {
	switch k {
	case PlatformMicroVM:
		return 30 * time.Millisecond
	case PlatformFullVM:
		return 3 * time.Second
	case PlatformProcess:
		return 5 * time.Millisecond
	default:
		return 100 * time.Millisecond
	}
}

// sleepModeled charges a scaled boot delay. Sub-millisecond waits are
// yield-spun: time.Sleep rounds short requests up to the kernel tick
// (~1ms on typical hosts), which would swamp a compressed boot model.
func sleepModeled(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= 2*time.Millisecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Errors from the manager.
var (
	ErrNoCapacity    = errors.New("mbox: cluster out of capacity")
	ErrUnknownMbox   = errors.New("mbox: unknown instance")
	ErrDuplicateMbox = errors.New("mbox: instance name already in use")
)

// Server is one machine in the on-premise cluster.
type Server struct {
	Name  string
	Slots int
}

// Instance is a launched µmbox with its placement and lifecycle
// metadata.
type Instance struct {
	Mbox     *Mbox
	Platform PlatformKind
	Server   string
	BootedAt time.Time
	BootTook time.Duration
}

// Manager places and boots µmbox instances on a simulated cluster,
// tracking the instantiation-latency metrics the §5.2 ablation
// reports. Boot latency is modeled by sleeping scaled simulated time.
type Manager struct {
	mu        sync.Mutex
	servers   []Server
	used      map[string]int // server → slots in use
	instances map[string]*Instance

	// TimeScale compresses modeled boot latencies (0.01 = 100×
	// faster than modeled); benchmarks report modeled time. Default 1.
	TimeScale float64

	bootCount   int
	bootTotal   time.Duration // modeled
	reconfCount int
}

// NewManager builds a manager over the given cluster.
func NewManager(servers ...Server) *Manager {
	if len(servers) == 0 {
		servers = []Server{{Name: "server0", Slots: 64}}
	}
	return &Manager{
		servers:   servers,
		used:      make(map[string]int),
		instances: make(map[string]*Instance),
		TimeScale: 1,
	}
}

// place finds a server with a free slot (first fit).
func (m *Manager) place() (string, error) {
	for _, s := range m.servers {
		if m.used[s.Name] < s.Slots {
			return s.Name, nil
		}
	}
	return "", ErrNoCapacity
}

// Launch boots a new µmbox around the pipeline, blocking for the
// (scaled) boot latency — the cost Figure 2's "dynamically launch
// µmbox" arrow pays. The context carries the causal trace of whatever
// decision requested the boot.
func (m *Manager) Launch(ctx context.Context, name string, platform PlatformKind, pipeline *Pipeline) (*Instance, error) {
	ctx, span := telemetry.StartSpan(ctx, "mbox.launch")
	span.SetAttr("mbox", name)
	span.SetAttr("platform", string(platform))
	defer span.End()
	m.mu.Lock()
	if _, dup := m.instances[name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDuplicateMbox, name)
	}
	server, err := m.place()
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.used[server]++
	// Reserve the name while booting.
	m.instances[name] = nil
	scale := m.TimeScale
	m.mu.Unlock()

	modeled := BootLatency(platform)
	if scale > 0 {
		sleepModeled(time.Duration(float64(modeled) * scale))
	}

	inst := &Instance{
		Mbox:     NewMbox(name, pipeline),
		Platform: platform,
		Server:   server,
		BootedAt: time.Now(),
		BootTook: modeled,
	}
	m.mu.Lock()
	m.instances[name] = inst
	m.bootCount++
	m.bootTotal += modeled
	m.mu.Unlock()
	mBoots.Inc()
	mBootSeconds.Observe(modeled.Seconds())
	mInstances.Inc()
	journal.Record(ctx, journal.TypeMboxBoot, journal.Info, name,
		fmt.Sprintf("%s on %s (boot %s)", platform, server, modeled))
	return inst, nil
}

// Reconfigure swaps an instance's pipeline live (no reboot, no
// traffic interruption) — the agility §5.2 demands. The context
// carries the causal trace of the posture change that requested it.
func (m *Manager) Reconfigure(ctx context.Context, name string, elements ...Element) error {
	ctx, span := telemetry.StartSpan(ctx, "mbox.reconfigure")
	span.SetAttr("mbox", name)
	defer span.End()
	m.mu.Lock()
	inst := m.instances[name]
	if inst == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownMbox, name)
	}
	m.reconfCount++
	m.mu.Unlock()
	inst.Mbox.Pipeline().Replace(elements...)
	mReconfigures.Inc()
	journal.Record(ctx, journal.TypeMboxReconfig, journal.Info, name,
		fmt.Sprintf("pipeline swapped to %d elements", len(elements)))
	return nil
}

// Terminate destroys an instance, freeing its slot.
func (m *Manager) Terminate(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.instances[name]
	if !ok || inst == nil {
		return fmt.Errorf("%w: %s", ErrUnknownMbox, name)
	}
	delete(m.instances, name)
	m.used[inst.Server]--
	mInstances.Dec()
	return nil
}

// Instance looks up a booted instance.
func (m *Manager) Instance(name string) (*Instance, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.instances[name]
	return inst, ok && inst != nil
}

// Metrics reports boots, mean modeled boot latency, and live
// reconfiguration count.
func (m *Manager) Metrics() (boots int, meanBoot time.Duration, reconfigs int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mean := time.Duration(0)
	if m.bootCount > 0 {
		mean = m.bootTotal / time.Duration(m.bootCount)
	}
	return m.bootCount, mean, m.reconfCount
}

// Capacity reports total and used slots.
func (m *Manager) Capacity() (total, used int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.servers {
		total += s.Slots
		used += m.used[s.Name]
	}
	return total, used
}

// SetFailModeAll flips every launched instance's pipeline fail mode —
// the SLO watchdog's escalation lever: sustained detect→enforce burn
// means enforcement can no longer be trusted to land in time, so the
// µmboxes drop rather than forward when an element misbehaves.
// Returns how many pipelines were switched.
func (m *Manager) SetFailModeAll(mode FailMode) int {
	m.mu.Lock()
	insts := make([]*Instance, 0, len(m.instances))
	for _, inst := range m.instances {
		if inst != nil {
			insts = append(insts, inst)
		}
	}
	m.mu.Unlock()
	n := 0
	for _, inst := range insts {
		p := inst.Mbox.Pipeline()
		if p.FailMode() != mode {
			p.SetFailMode(mode)
			n++
		}
	}
	return n
}

// Instances snapshots the launched instance names (sorted order not
// guaranteed).
func (m *Manager) Instances() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.instances))
	for name, inst := range m.instances {
		if inst != nil {
			out = append(out, name)
		}
	}
	return out
}
