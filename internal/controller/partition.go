package controller

import (
	"sort"
)

// InteractionEdge weights how often two devices interact (explicitly
// or through the environment) — the signal §5.1 proposes partitioning
// on.
type InteractionEdge struct {
	A, B   string
	Weight float64
}

// Partitioning assigns devices to local controllers so that
// frequently interacting devices share one, minimizing traffic that
// must escalate to the global controller.
type Partitioning struct {
	// Groups lists the device sets, one per local controller.
	Groups [][]string
	// assignment maps device → group index.
	assignment map[string]int
	// CutWeight sums edge weights crossing partitions.
	CutWeight float64
	// InternalWeight sums edge weights kept local.
	InternalWeight float64
}

// GroupOf reports a device's partition (-1 if unknown).
func (p *Partitioning) GroupOf(device string) int {
	if g, ok := p.assignment[device]; ok {
		return g
	}
	return -1
}

// SameGroup reports whether two devices share a local controller.
func (p *Partitioning) SameGroup(a, b string) bool {
	ga, ok1 := p.assignment[a]
	gb, ok2 := p.assignment[b]
	return ok1 && ok2 && ga == gb
}

// Partition greedily merges the heaviest edges first (Kruskal-style
// with a size cap): devices joined by heavy interaction end up
// together unless the group would exceed maxGroupSize.
func Partition(devices []string, edges []InteractionEdge, maxGroupSize int) *Partitioning {
	if maxGroupSize <= 0 {
		maxGroupSize = 8
	}
	parent := make(map[string]string, len(devices))
	size := make(map[string]int, len(devices))
	for _, d := range devices {
		parent[d] = d
		size[d] = 1
	}
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	sorted := append([]InteractionEdge(nil), edges...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Weight > sorted[j].Weight })

	for _, e := range sorted {
		ra, rb := find(e.A), find(e.B)
		if ra == rb {
			continue
		}
		if size[ra]+size[rb] > maxGroupSize {
			continue
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}

	groupIdx := make(map[string]int)
	p := &Partitioning{assignment: make(map[string]int, len(devices))}
	for _, d := range devices {
		root := find(d)
		idx, ok := groupIdx[root]
		if !ok {
			idx = len(p.Groups)
			groupIdx[root] = idx
			p.Groups = append(p.Groups, nil)
		}
		p.Groups[idx] = append(p.Groups[idx], d)
		p.assignment[d] = idx
	}
	for i := range p.Groups {
		sort.Strings(p.Groups[i])
	}
	for _, e := range edges {
		if p.SameGroup(e.A, e.B) {
			p.InternalWeight += e.Weight
		} else {
			p.CutWeight += e.Weight
		}
	}
	return p
}

// LocalityRatio reports the fraction of interaction weight handled
// locally (1.0 = everything local).
func (p *Partitioning) LocalityRatio() float64 {
	total := p.InternalWeight + p.CutWeight
	if total == 0 {
		return 1
	}
	return p.InternalWeight / total
}
