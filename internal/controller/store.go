package controller

import (
	"sync"
)

// Store is a versioned key-value state store providing the strong
// consistency semantics §5.1 argues critical IoT security state needs
// (unlike the weakly consistent stores traditional SDN scales with):
// a single total order of updates, monotonic-reads, and ordered
// watch delivery.
type Store struct {
	mu       sync.Mutex
	version  uint64
	values   map[string]versioned
	watchers []chan Update
	log      []Update
	// LogLimit bounds the retained update log (default 4096).
	LogLimit int
}

type versioned struct {
	value   string
	version uint64
}

// Update is one committed write.
type Update struct {
	Key     string
	Value   string
	Version uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{values: make(map[string]versioned), LogLimit: 4096}
}

// Put commits a write, returning its (globally ordered) version.
func (s *Store) Put(key, value string) uint64 {
	s.mu.Lock()
	s.version++
	v := s.version
	s.values[key] = versioned{value: value, version: v}
	u := Update{Key: key, Value: value, Version: v}
	s.log = append(s.log, u)
	if s.LogLimit > 0 && len(s.log) > s.LogLimit {
		s.log = s.log[len(s.log)-s.LogLimit:]
	}
	watchers := append([]chan Update(nil), s.watchers...)
	s.mu.Unlock()
	mStoreCommits.Inc()
	for _, w := range watchers {
		// Watch channels are buffered; a full watcher loses its
		// guarantee and must Resync.
		select {
		case w <- u:
		default:
			mStoreWatchDrops.Inc()
		}
	}
	return v
}

// Get reads a key with the version that wrote it.
func (s *Store) Get(key string) (value string, version uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.values[key]
	return v.value, v.version, ok
}

// Version reports the newest committed version.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Watch subscribes to updates committed after the call; the channel
// is buffered with the given depth.
func (s *Store) Watch(buffer int) <-chan Update {
	if buffer <= 0 {
		buffer = 256
	}
	ch := make(chan Update, buffer)
	s.mu.Lock()
	s.watchers = append(s.watchers, ch)
	s.mu.Unlock()
	return ch
}

// Since returns retained updates with Version > after, in order; ok
// is false if the log no longer reaches back that far (caller must
// snapshot instead).
func (s *Store) Since(after uint64) (updates []Update, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.log) > 0 && s.log[0].Version > after+1 {
		return nil, false
	}
	for _, u := range s.log {
		if u.Version > after {
			updates = append(updates, u)
		}
	}
	return updates, true
}

// Snapshot returns a consistent copy of all keys at the current
// version.
func (s *Store) Snapshot() (map[string]string, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.values))
	for k, v := range s.values {
		out[k] = v.value
	}
	return out, s.version
}
