package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/device"
	"iotsec/internal/journal"
	"iotsec/internal/policy"
)

// FailoverOptions parameterizes the control-plane failover chaos
// harness (A12).
type FailoverOptions struct {
	// Sizes lists the fleet sizes to sweep (default 1e3, 1e4, 1e5).
	Sizes []int
	// ShardSize is the devices-per-local-controller cap (default 64).
	ShardSize int
	// KillShards is how many local controllers are crashed
	// mid-quarantine (default 3, clamped to shards-1 so a survivor
	// exists).
	KillShards int
	// FailMode selects re-home vs fail-global (default re-home).
	FailMode controller.FailMode
	// RecoverySLO is the per-partition recovery objective the measured
	// p99 is judged against (default 1s).
	RecoverySLO time.Duration
	// Progress, when set, receives one line as each size completes.
	Progress io.Writer
}

// FailoverResult is one fleet size's chaos outcome.
type FailoverResult struct {
	Size     int                 `json:"size"`
	Shards   int                 `json:"shards"`
	Killed   int                 `json:"killed"`
	FailMode controller.FailMode `json:"fail_mode"`

	// Quarantined is the standing quarantine intent across killed
	// shards (pre- and post-checkpoint installs).
	Quarantined int `json:"quarantined"`
	// QuarantinesRepushed sums the fail-closed re-pushes across
	// failovers (must cover the checkpoint ∪ readback union).
	QuarantinesRepushed int `json:"quarantines_repushed"`
	// VarsRestored / EventsReplayed sum the state rebuild across
	// failovers.
	VarsRestored   int `json:"vars_restored"`
	EventsReplayed int `json:"events_replayed"`

	// WindowFrames were pumped at quarantined devices between the crash
	// and the last recovery; ViolatingFrames is how many got through
	// (the acceptance bar is 0).
	WindowFrames    uint64 `json:"window_frames"`
	ViolatingFrames uint64 `json:"violating_frames"`

	// DetectSeconds is crash → last recovery-complete (includes the
	// deadman detection window); RecoveryP99Seconds is the p99 of the
	// per-partition detection→recovery MTTR.
	DetectSeconds      float64 `json:"detect_seconds"`
	RecoveryP99Seconds float64 `json:"recovery_p99_seconds"`
	WithinSLO          bool    `json:"within_slo"`

	// TracesComplete reports every failover journaled
	// controller-failover → partition-rehomed → recovery-complete in
	// order on one trace.
	TracesComplete bool `json:"traces_complete"`
	// StateMatch reports the post-recovery enforcement state
	// (per-device postures + switch-resident quarantine drops) is
	// byte-identical to a never-failed control run of the same event
	// sequence.
	StateMatch  bool   `json:"state_match"`
	Fingerprint string `json:"fingerprint"`
	ControlFP   string `json:"control_fingerprint"`
	// FailedOverShards is what the fleet rollup view surfaces.
	FailedOverShards int `json:"failed_over_shards"`

	Records []controller.FailoverRecord `json:"records"`
}

// RunFailover (A12) kills local controllers mid-quarantine at fleet
// scale and proves bounded-MTTR recovery: no frame reaches a
// quarantined device during the failover window, re-homing completes
// within the recovery SLO, and post-recovery enforcement state is
// byte-equal to a control run that never failed.
func RunFailover(o FailoverOptions) (*Table, []FailoverResult, error) {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{1_000, 10_000, 100_000}
	}
	if o.ShardSize <= 0 {
		o.ShardSize = 64
	}
	if o.KillShards <= 0 {
		o.KillShards = 3
	}
	if o.FailMode == "" {
		o.FailMode = controller.FailModeRehome
	}
	if o.RecoverySLO <= 0 {
		o.RecoverySLO = time.Second
	}

	t := &Table{
		ID:    "A12",
		Title: fmt.Sprintf("Control-plane failover: %d locals killed mid-quarantine (%s, shard %d)", o.KillShards, o.FailMode, o.ShardSize),
		Columns: []string{
			"Devices", "Shards", "Killed", "Quarantined", "Re-pushed",
			"Replayed", "Window frames", "Violations", "Recovery p99", "State",
		},
	}
	var results []FailoverResult
	for _, size := range o.Sizes {
		if size <= 0 {
			return nil, nil, fmt.Errorf("experiment: failover fleet size %d", size)
		}
		control, err := runFailoverOnce(size, o, false)
		if err != nil {
			return nil, nil, err
		}
		r, err := runFailoverOnce(size, o, true)
		if err != nil {
			return nil, nil, err
		}
		r.ControlFP = control.Fingerprint
		r.StateMatch = r.Fingerprint == control.Fingerprint
		results = append(results, r)
		state := "MATCH"
		if !r.StateMatch {
			state = "DIVERGED"
		}
		t.AddRow(r.Size, r.Shards, r.Killed, r.Quarantined, r.QuarantinesRepushed,
			r.EventsReplayed, r.WindowFrames, r.ViolatingFrames,
			fmtSeconds(r.RecoveryP99Seconds), state)
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, "failover %d: %d shards killed, %d quarantines re-pushed, %d/%d window frames leaked, recovery p99 %s, state %s\n",
				r.Size, r.Killed, r.QuarantinesRepushed, r.ViolatingFrames, r.WindowFrames,
				fmtSeconds(r.RecoveryP99Seconds), state)
		}
		if r.ViolatingFrames > 0 {
			return t, results, fmt.Errorf("experiment: failover %d: %d frames delivered to quarantined devices during the failover window", size, r.ViolatingFrames)
		}
		if !r.StateMatch {
			return t, results, fmt.Errorf("experiment: failover %d: post-recovery state diverged from control run (%s != %s)", size, r.Fingerprint, r.ControlFP)
		}
		if !r.WithinSLO {
			return t, results, fmt.Errorf("experiment: failover %d: recovery p99 %.3fs over SLO %s", size, r.RecoveryP99Seconds, o.RecoverySLO)
		}
		if !r.TracesComplete {
			return t, results, fmt.Errorf("experiment: failover %d: incomplete failover journal trace", size)
		}
	}
	t.Note("every row is a chaos run: quarantines installed, checkpoint taken, more quarantines installed, then locals crashed")
	t.Note("Violations counts frames reaching quarantined devices between crash and recovery-complete (bar: 0)")
	t.Note("State compares post-recovery postures + switch-resident drops against a never-failed control run (byte equality)")
	return t, results, nil
}

// quarLedger models the switches' flow tables and data plane: a
// quarantine drop, once installed, keeps dropping frames regardless of
// controller health (switch-resident state survives the control
// plane). Frames pumped at a device with quarantine *intent* but no
// installed drop are violations.
type quarLedger struct {
	mu         sync.Mutex
	drops      map[string]bool
	intent     map[string]bool
	frames     uint64
	violations uint64
}

func newQuarLedger() *quarLedger {
	return &quarLedger{drops: make(map[string]bool), intent: make(map[string]bool)}
}

func (l *quarLedger) Install(dev string) {
	l.mu.Lock()
	l.drops[dev] = true
	l.mu.Unlock()
}

func (l *quarLedger) Remove(dev string) {
	l.mu.Lock()
	delete(l.drops, dev)
	l.mu.Unlock()
}

func (l *quarLedger) SetIntent(dev string) {
	l.mu.Lock()
	l.intent[dev] = true
	l.mu.Unlock()
}

// Frame delivers one frame toward dev: dropped if a quarantine rule is
// installed, a violation if the device should be quarantined but the
// rule is missing.
func (l *quarLedger) Frame(dev string) {
	l.mu.Lock()
	l.frames++
	if !l.drops[dev] && l.intent[dev] {
		l.violations++
	}
	l.mu.Unlock()
}

func (l *quarLedger) Installed() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.drops))
	for dev := range l.drops {
		out = append(out, dev)
	}
	sort.Strings(out)
	return out
}

func (l *quarLedger) Stats() (frames, violations uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frames, l.violations
}

// runFailoverOnce drives one fleet through the quarantine + crash
// scenario. kill=false is the control run: identical event sequence,
// no crash, no supervisor — its final enforcement state is the
// byte-equality reference.
func runFailoverOnce(n int, o FailoverOptions, kill bool) (FailoverResult, error) {
	devs := make([]string, n)
	d := policy.NewDomain()
	f := policy.NewFSM(d)
	for i := range devs {
		devs[i] = fmt.Sprintf("dev%06d", i)
		d.AddDevice(devs[i], policy.ContextNormal, policy.ContextSuspicious)
		d.AddEnvVar(devs[i]+"_attr", "a", "b", "q")
		// Fully local rules: attr=b blocks commands, attr=q quarantines.
		// Nothing escalates, so the global controller stays quiescent and
		// the crash/recovery path is isolated to the partition tier.
		f.AddRule(policy.Rule{
			Name:       "local-" + devs[i],
			Conditions: []policy.Condition{policy.EnvIs(devs[i]+"_attr", "b")},
			Device:     devs[i],
			Posture:    policy.Posture{BlockCommands: []string{"ON"}},
			Priority:   5,
		})
		f.AddRule(policy.Rule{
			Name:       "quar-" + devs[i],
			Conditions: []policy.Condition{policy.EnvIs(devs[i]+"_attr", "q")},
			Device:     devs[i],
			Posture:    policy.Posture{Isolate: true},
			Priority:   9,
		})
	}
	edges := make([]controller.InteractionEdge, 0, n)
	for i, dev := range devs {
		if anchor := i - i%o.ShardSize; anchor != i {
			edges = append(edges, controller.InteractionEdge{A: devs[anchor], B: dev, Weight: 1})
		}
	}
	part := controller.Partition(devs, edges, o.ShardSize)
	envLocality := make(map[string]int, n)
	for _, dev := range devs {
		envLocality[dev+"_attr"] = part.GroupOf(dev)
	}

	ledger := newQuarLedger()
	var postureMu sync.Mutex
	lastPosture := make(map[string]string, n)
	sink := func(ctx context.Context, dev string, p policy.Posture, _ uint64) {
		postureMu.Lock()
		lastPosture[dev] = p.Key()
		postureMu.Unlock()
		if p.Isolate {
			ledger.Install(dev)
		} else {
			ledger.Remove(dev)
		}
	}

	h := controller.NewHierarchy(f, part, envLocality, sink)
	h.EnableFleetStats()
	agg := h.Global.Fleet()

	res := FailoverResult{Size: n, Shards: h.Locals(), FailMode: o.FailMode}

	// Victims: the lowest KillShards partitions, leaving at least one
	// survivor for re-homing.
	killCount := o.KillShards
	if killCount > h.Locals()-1 {
		killCount = h.Locals() - 1
	}
	if killCount < 1 {
		return res, fmt.Errorf("experiment: failover needs ≥2 shards, got %d", h.Locals())
	}
	victims := make([]int, 0, killCount)
	for g := 0; g < len(part.Groups) && len(victims) < killCount; g++ {
		if h.LocalFor(g) != nil {
			victims = append(victims, g)
		}
	}
	var mu sync.Mutex
	var records []controller.FailoverRecord
	recovered := make(chan struct{}, killCount)
	sup := h.Supervise(controller.SupervisorOptions{
		Heartbeat:       2 * time.Millisecond,
		Misses:          2,
		CheckpointEvery: -1, // harness checkpoints explicitly
		FailMode:        o.FailMode,
		Fleet:           agg,
		QuarantinedOf: func(group int) []string {
			var out []string
			ledger.mu.Lock()
			for dev := range ledger.intent {
				if part.GroupOf(dev) == group {
					out = append(out, dev)
				}
			}
			ledger.mu.Unlock()
			sort.Strings(out)
			return out
		},
		ReadbackQuarantines: func(group int) []string {
			var out []string
			for _, dev := range ledger.Installed() {
				if part.GroupOf(dev) == group {
					out = append(out, dev)
				}
			}
			return out
		},
		RepushQuarantine: func(_ context.Context, dev string) { ledger.Install(dev) },
		OnFailover: func(r controller.FailoverRecord) {
			mu.Lock()
			records = append(records, r)
			mu.Unlock()
			select {
			case recovered <- struct{}{}:
			default:
			}
		},
	})

	// Phase 1: every device reports attr=b → Block posture everywhere.
	ctx := context.Background()
	for _, dev := range devs {
		h.HandleDeviceEvent(ctx, device.Event{Device: dev, Kind: device.EventStateChange, Detail: "attr=b"})
	}
	// Phase 2: quarantine the first quarter of each victim shard, then
	// checkpoint — this state travels via snapshot.
	quarantine := func(dev string) {
		ledger.SetIntent(dev)
		h.HandleDeviceEvent(ctx, device.Event{Device: dev, Kind: device.EventStateChange, Detail: "attr=q"})
	}
	for _, g := range victims {
		grp := part.Groups[g]
		for i := 0; i < len(grp)/4; i++ {
			quarantine(grp[i])
		}
	}
	sup.Checkpoint()
	// Phase 3 (post-checkpoint, travels via journal replay): a second
	// quarantine wave plus attr flips in the victim shards.
	for _, g := range victims {
		grp := part.Groups[g]
		for i := len(grp) / 4; i < len(grp)/2; i++ {
			quarantine(grp[i])
		}
		for i := len(grp) / 2; i < 3*len(grp)/4; i++ {
			h.HandleDeviceEvent(ctx, device.Event{Device: grp[i], Kind: device.EventStateChange, Detail: "attr=a"})
		}
	}
	ledger.mu.Lock()
	res.Quarantined = len(ledger.intent)
	ledger.mu.Unlock()

	if kill {
		// Crash mid-quarantine: drops for both waves are on the switches;
		// the controllers holding the state that installed them die.
		preFrames, _ := ledger.Stats()
		crashAt := time.Now()
		for _, g := range victims {
			h.LocalFor(g).Kill()
		}
		// Pump frames at every quarantined device while the deadman
		// detects and recovery runs: the switch-resident drops must hold
		// the line the whole window.
		stopPump := make(chan struct{})
		var pumpWG sync.WaitGroup
		pumpWG.Add(1)
		go func() {
			defer pumpWG.Done()
			ledger.mu.Lock()
			targets := make([]string, 0, len(ledger.intent))
			for dev := range ledger.intent {
				targets = append(targets, dev)
			}
			ledger.mu.Unlock()
			sort.Strings(targets)
			for {
				select {
				case <-stopPump:
					return
				default:
				}
				for _, dev := range targets {
					ledger.Frame(dev)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()

		deadline := time.After(10 * time.Second)
		for done := 0; done < len(victims); {
			sup.Tick()
			select {
			case <-recovered:
				done++
			case <-deadline:
				close(stopPump)
				pumpWG.Wait()
				return res, fmt.Errorf("experiment: failover %d: only %d/%d partitions recovered in 10s", n, done, len(victims))
			case <-time.After(time.Millisecond):
			}
		}
		res.DetectSeconds = time.Since(crashAt).Seconds()
		close(stopPump)
		pumpWG.Wait()
		frames, violations := ledger.Stats()
		res.WindowFrames = frames - preFrames
		res.ViolatingFrames = violations
	}

	mu.Lock()
	res.Records = append([]controller.FailoverRecord(nil), records...)
	mu.Unlock()
	res.Killed = len(res.Records)
	recoveries := make([]float64, 0, len(res.Records))
	res.TracesComplete = true
	for _, r := range res.Records {
		res.QuarantinesRepushed += r.QuarantinesRepushed
		res.VarsRestored += r.VarsRestored
		res.EventsReplayed += r.EventsReplayed
		recoveries = append(recoveries, r.Recovery.Seconds())
		if !failoverTraceComplete(r.TraceID) {
			res.TracesComplete = false
		}
	}
	sort.Float64s(recoveries)
	if len(recoveries) > 0 {
		res.RecoveryP99Seconds = recoveries[(len(recoveries)*99)/100]
	}
	res.WithinSLO = res.RecoveryP99Seconds <= o.RecoverySLO.Seconds()
	res.FailedOverShards = agg.View().Fleet.FailedOverShards
	res.Fingerprint = enforcementFingerprint(devs, lastPosture, &postureMu, ledger)
	if !kill {
		// Control runs have no failovers by construction.
		res.TracesComplete = true
		res.WithinSLO = true
	}
	return res, nil
}

// failoverTraceComplete checks the forensic journal carries the full
// failover → rehomed → recovered sequence, in order, on one trace.
func failoverTraceComplete(traceID uint64) bool {
	if traceID == 0 {
		return false
	}
	events := journal.Default.Snapshot(journal.Filter{TraceID: traceID})
	want := []journal.Type{journal.TypeCtrlFailover, journal.TypeCtrlRehomed, journal.TypeCtrlRecovered}
	i := 0
	for _, e := range events {
		if i < len(want) && e.Type == want[i] {
			i++
		}
	}
	return i == len(want)
}

// enforcementFingerprint hashes the externally observable enforcement
// state: each device's last delivered posture key plus the sorted
// switch-resident quarantine drops. Byte equality of two runs means
// recovery reconverged exactly.
func enforcementFingerprint(devs []string, lastPosture map[string]string, mu *sync.Mutex, ledger *quarLedger) string {
	var b strings.Builder
	mu.Lock()
	for _, dev := range devs {
		b.WriteString(dev)
		b.WriteByte('=')
		b.WriteString(lastPosture[dev])
		b.WriteByte('\n')
	}
	mu.Unlock()
	b.WriteString("drops:")
	for _, dev := range ledger.Installed() {
		b.WriteByte(' ')
		b.WriteString(dev)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
