// Crossdevice: the paper's §2.1 implicit-coupling attack, end to end:
//
//  1. model fuzzing DISCOVERS that the smart plug can open the window
//     through the room's temperature (no network path between them);
//  2. attack-graph search turns that into a concrete multi-stage
//     break-in plan;
//  3. the derived IoTSec mitigation (Figure 5's context gate) is
//     verified to cut the attack, in the abstract model AND on the
//     live emulated deployment.
package main

import (
	"fmt"
	"log"
	"time"

	"iotsec/internal/core"
	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/learn"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

// buildWorld assembles the abstract model of the deployment.
func buildWorld() *learn.World {
	lib := learn.StandardLibrary()
	w := learn.NewWorld(map[string]string{
		"temperature": "normal", "light": "dark", "smoke": "no",
		"window": "closed", "door": "locked",
	})
	for _, spec := range []struct{ name, class string }{
		{"plug", "plug"}, {"window", "window"}, {"firealarm", "fire-alarm"},
	} {
		m, _ := lib.Get(spec.class)
		w.AddInstance(spec.name, m)
	}
	return w
}

func main() {
	fmt.Println("--- step 1: fuzz the abstract device models (§4.2) ---")
	result := learn.NewFuzzer(buildWorld, 42).Run(200)
	for _, in := range result.Interactions() {
		fmt.Printf("  discovered: %s\n", in)
	}

	fmt.Println("\n--- step 2: attack-graph search to the break-in goal ---")
	search := &learn.AttackSearch{
		Build:      buildWorld,
		Vulnerable: map[string]bool{"plug": true}, // the Wemo backdoor
		MaxDepth:   8,
	}
	path, _ := search.FindAttack(learn.GoalEnv("window", "open"))
	if path == nil {
		log.Fatal("no attack found — models broken")
	}
	fmt.Print(learn.DescribeAttack(path))

	fmt.Println("--- step 3: verify the mitigation cuts the graph ---")
	blocked, exhausted := search.FindAttackWithMitigations(
		learn.GoalEnv("window", "open"),
		[]learn.Mitigation{{Device: "plug", Cmd: "ON"}},
	)
	if blocked == nil && exhausted {
		fmt.Println("  blocking plug.ON severs every route to the goal ✔")
	} else {
		log.Fatalf("mitigation insufficient: %s", learn.PathString(blocked))
	}

	fmt.Println("\n--- step 4: enforce it on the live deployment ---")
	domain := policy.NewDomain()
	domain.AddDevice("plug")
	domain.AddEnvVar(envsim.VarOccupancy, "away", "home")
	fsm := policy.NewFSM(domain)
	fsm.AddRule(policy.Rule{
		Name:   "plug-on-needs-person",
		Device: "plug",
		Posture: policy.Posture{Modules: []policy.ModuleSpec{{
			Kind: "context-gate",
			Config: map[string]string{
				"guard": "ON", "require_env": envsim.VarOccupancy, "require_value": "home",
			},
		}}},
		Priority: 1,
	})
	platform, err := core.New(core.Options{Policy: fsm})
	if err != nil {
		log.Fatal(err)
	}
	plug := device.NewSmartPlug("plug", packet.MustParseIPv4("10.0.0.30"), device.Appliance{
		Name: "heater", PowerVar: "oven_power", Watts: 2000, HeatVar: "oven_heat_rate", HeatRate: 0.02,
	})
	if _, err := platform.AddDevice(plug.Device); err != nil {
		log.Fatal(err)
	}
	attackerIP := packet.MustParseIPv4("10.0.0.66")
	attacker := netsim.NewStack("attacker", device.MACFor(attackerIP), attackerIP)
	platform.AttachHost(attacker)
	platform.Env.Set(envsim.VarOccupancy, 0) // nobody home
	platform.Start()
	defer platform.Stop()
	platform.RunEnvironment(1)
	time.Sleep(20 * time.Millisecond)

	client := &device.Client{Stack: attacker, Timeout: time.Second}
	fmt.Println("  remote attacker fires the backdoor ON while nobody is home...")
	if _, err := client.Call(plug.IP(), device.Request{Cmd: "ON", Args: []string{device.PlugBackdoorToken}}); err != nil {
		fmt.Printf("  -> BLOCKED by the context gate (%v)\n", err)
	} else {
		log.Fatal("  -> the attack went through!")
	}
	fmt.Printf("  plug state: %s, room temperature: %.1f°C — the window stays shut.\n",
		plug.Get("power"), platform.Env.Get(envsim.VarTemperature))
}
