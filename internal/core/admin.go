package core

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"

	"iotsec/internal/ids"
	"iotsec/internal/policy"
	"iotsec/internal/telemetry"
)

// Admin exposes a running Platform over a small JSON-over-TCP
// interface — what cmd/iotsecd serves and cmd/mboxctl talks to.
type Admin struct {
	platform *Platform

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// AdminRequest is one CLI command.
type AdminRequest struct {
	Op     string `json:"op"` // status | env | set-env | set-context | inject-anomaly
	Var    string `json:"var,omitempty"`
	Value  string `json:"value,omitempty"`
	Device string `json:"device,omitempty"`
}

// DeviceStatus describes one managed device.
type DeviceStatus struct {
	Name     string   `json:"name"`
	SKU      string   `json:"sku"`
	IP       string   `json:"ip"`
	Context  string   `json:"context"`
	Posture  string   `json:"posture"`
	Pipeline []string `json:"pipeline"`
	State    string   `json:"state"`
}

// AdminResponse answers one request.
type AdminResponse struct {
	OK      bool              `json:"ok"`
	Error   string            `json:"error,omitempty"`
	Devices []DeviceStatus    `json:"devices,omitempty"`
	Env     map[string]string `json:"env,omitempty"`
	Boots   int               `json:"boots,omitempty"`
	Reconf  uint64            `json:"reconfigures,omitempty"`
	Version uint64            `json:"view_version,omitempty"`
}

// ServeAdmin starts the admin listener, returning the bound address.
func (p *Platform) ServeAdmin(addr string) (*Admin, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("core: admin listen: %w", err)
	}
	a := &Admin{platform: p, ln: ln}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, ln.Addr().String(), nil
}

func (a *Admin) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.wg.Add(1)
		go a.serve(conn)
	}
}

func (a *Admin) serve(conn net.Conn) {
	defer a.wg.Done()
	defer conn.Close()
	enc := json.NewEncoder(conn)
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		var req AdminRequest
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			_ = enc.Encode(AdminResponse{Error: "bad request: " + err.Error()})
			continue
		}
		_ = enc.Encode(a.handle(req))
	}
}

func (a *Admin) handle(req AdminRequest) AdminResponse {
	p := a.platform
	switch req.Op {
	case "status":
		resp := AdminResponse{OK: true}
		p.mu.Lock()
		names := make([]string, 0, len(p.devices))
		for n := range p.devices {
			names = append(names, n)
		}
		p.mu.Unlock()
		sort.Strings(names)
		for _, n := range names {
			m, _ := p.Device(n)
			resp.Devices = append(resp.Devices, DeviceStatus{
				Name:     n,
				SKU:      m.Device.Profile.SKU,
				IP:       m.Device.IP().String(),
				Context:  string(p.Global.View.DeviceContext(n)),
				Posture:  m.CurrentPosture.String(),
				Pipeline: m.Instance.Mbox.Pipeline().Elements(),
				State:    m.Device.StateString(),
			})
		}
		boots, _, _ := p.Manager.Metrics()
		resp.Boots = boots
		resp.Reconf, resp.Version = p.Metrics()
		return resp
	case "env":
		s := p.Env.Snapshot()
		env := make(map[string]string)
		for _, name := range s.Names() {
			env[name] = strconv.FormatFloat(s.Get(name), 'f', 2, 64)
		}
		return AdminResponse{OK: true, Env: env}
	case "set-env":
		v, err := strconv.ParseFloat(req.Value, 64)
		if err != nil {
			return AdminResponse{Error: "set-env: value must be numeric"}
		}
		p.Env.Set(req.Var, v)
		p.Env.Step()
		return AdminResponse{OK: true}
	case "set-context":
		sc := policy.SecurityContext(req.Value)
		switch sc {
		case policy.ContextNormal, policy.ContextSuspicious, policy.ContextCompromised, policy.ContextUnpatched:
		default:
			return AdminResponse{Error: "set-context: unknown context " + req.Value}
		}
		// Operator actions start fresh causal chains too: an admin
		// quarantine shows up in the journal with its own trace ID.
		ctx, span := telemetry.StartSpan(context.Background(), "core.admin.set_context")
		span.SetAttr("device", req.Device)
		p.Global.View.SetDeviceContext(ctx, req.Device, sc, "admin")
		span.End()
		return AdminResponse{OK: true}
	case "inject-anomaly":
		// Forensic drill: drive a synthetic anomaly through the real
		// detect→policy→enforce path so operators (and the restart
		// smoke test) can exercise incident capture end to end.
		if _, ok := p.Device(req.Device); !ok {
			return AdminResponse{Error: "inject-anomaly: unknown device " + req.Device}
		}
		detail := req.Value
		if detail == "" {
			detail = "admin-injected anomaly drill"
		}
		p.ReportAnomaly(ids.Anomaly{
			Device: req.Device,
			Kind:   ids.AnomalyRate,
			Detail: detail,
			Score:  0.95,
		})
		return AdminResponse{OK: true}
	default:
		return AdminResponse{Error: "unknown op " + req.Op}
	}
}

// Close stops the admin listener.
func (a *Admin) Close() {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		_ = a.ln.Close()
	}
	a.mu.Unlock()
}

// AdminCall is the client side: one request/response over a fresh
// connection.
func AdminCall(addr string, req AdminRequest) (AdminResponse, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return AdminResponse{}, err
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return AdminResponse{}, err
	}
	var resp AdminResponse
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !scanner.Scan() {
		return AdminResponse{}, fmt.Errorf("core: admin connection closed")
	}
	if err := json.Unmarshal(scanner.Bytes(), &resp); err != nil {
		return AdminResponse{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("core: admin: %s", resp.Error)
	}
	return resp, nil
}
