package core

import (
	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

// DemoHome assembles the reference smart-home deployment used by
// cmd/iotsecd and the documentation: five devices under the combined
// Figure 3/4/5 policy, with the community backdoor signature armed.
func DemoHome() (*Platform, error) {
	d := policy.NewDomain()
	for _, dev := range []string{"cam", "wemo", "firealarm", "window", "thermostat"} {
		d.AddDevice(dev, policy.ContextNormal, policy.ContextSuspicious, policy.ContextCompromised)
	}
	d.AddEnvVar(envsim.VarOccupancy, "away", "home")
	d.AddEnvVar(envsim.VarSmoke, "no", "yes")

	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{ // Figure 4
		Name:   "cam-password-proxy",
		Device: "cam",
		Posture: policy.Posture{Modules: []policy.ModuleSpec{{
			Kind:   "password-proxy",
			Config: map[string]string{"user": "homeadmin", "pass": "Str0ng!pass"},
		}}},
		Priority: 1,
	})
	f.AddRule(policy.Rule{ // Figure 5 + community IDS signatures
		Name:   "oven-needs-person",
		Device: "wemo",
		Posture: policy.Posture{Modules: []policy.ModuleSpec{
			{Kind: "ids"}, // sees traffic before the gate so signatures escalate context
			{
				Kind:   "context-gate",
				Config: map[string]string{"guard": "ON", "require_env": envsim.VarOccupancy, "require_value": "home"},
			},
		}},
		Priority: 1,
	})
	f.AddRule(policy.Rule{ // Figure 3 arrow 1
		Name:       "alarm-suspicious-blocks-window",
		Conditions: []policy.Condition{policy.DeviceIs("firealarm", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{BlockCommands: []string{"OPEN"}},
		Priority:   10,
	})
	f.AddRule(policy.Rule{ // Figure 3 arrow 2
		Name:       "window-suspicious-robot-check",
		Conditions: []policy.Condition{policy.DeviceIs("window", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{Modules: []policy.ModuleSpec{{Kind: "robot-check"}}},
		Priority:   10,
	})
	f.AddRule(policy.Rule{ // quarantine anything compromised
		Name:       "quarantine-wemo",
		Conditions: []policy.Condition{policy.DeviceIs("wemo", policy.ContextCompromised)},
		Device:     "wemo",
		Posture:    policy.Posture{Isolate: true},
		Priority:   20,
	})

	p, err := New(Options{Policy: f})
	if err != nil {
		return nil, err
	}
	devices := []*device.Device{
		device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10")).Device,
		device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.11"), device.Appliance{
			Name: "oven", PowerVar: "oven_power", Watts: 1800, HeatVar: "oven_heat_rate", HeatRate: 0.02,
		}).Device,
		device.NewFireAlarm("firealarm", packet.MustParseIPv4("10.0.0.12")).Device,
		device.NewWindowActuator("window", packet.MustParseIPv4("10.0.0.13")).Device,
		device.NewThermostat("thermostat", packet.MustParseIPv4("10.0.0.14")).Device,
	}
	for _, dev := range devices {
		if _, err := p.AddDevice(dev); err != nil {
			return nil, err
		}
	}
	sig := `block tcp any any -> any 80 (msg:"wemo backdoor token"; content:"` + device.PlugBackdoorToken + `"; sid:9001;)`
	if err := p.AddSignatureRule(device.SmartPlugProfile().SKU, sig); err != nil {
		return nil, err
	}
	return p, nil
}
