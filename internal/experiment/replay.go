package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"iotsec/internal/core"
	"iotsec/internal/device"
	"iotsec/internal/forensics"
	"iotsec/internal/ids"
	"iotsec/internal/journal"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
	"iotsec/internal/telemetry"
)

// ReplayResult is the verdict of re-driving one captured incident
// scenario (A13): did the same chain stages re-fire, on one trace,
// within the incident's SLO?
type ReplayResult struct {
	Incident string `json:"incident_id"`
	Kind     string `json:"kind"`
	Device   string `json:"device,omitempty"`
	// TraceID is the REPLAY's causal chain (a fresh trace, not the
	// original capture's).
	TraceID uint64 `json:"trace_id"`

	Expected []string `json:"expected_stages"`
	Observed []string `json:"observed_stages"`
	Missing  []string `json:"missing_stages,omitempty"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
	SLOSeconds     float64 `json:"slo_seconds"`
	WithinSLO      bool    `json:"within_slo"`
	// Recaptured reports a live capturer re-pinned the replayed chain
	// as an incident — the forensics plane closes over its own replays.
	Recaptured bool `json:"recaptured"`
	Passed     bool `json:"passed"`
	// Chain renders the replayed trace for human diffing against the
	// scenario's original events.
	Chain string `json:"chain,omitempty"`
	Error string `json:"error,omitempty"`
}

// kindOpeners maps an incident kind to its opening event type, for
// scenarios whose capture predates trigger extraction.
var kindOpeners = map[string]journal.Type{
	forensics.KindAnomaly:          journal.TypeAnomaly,
	forensics.KindProfileViolation: journal.TypeProfileViolation,
	forensics.KindRogueQuarantine:  journal.TypeRogueQuarantine,
	forensics.KindSLOBurn:          journal.TypeSLOBurn,
}

// RunReplay re-drives a captured incident as a regression check.
// Detection kinds rebuild a minimal protected deployment around the
// scenario's device, re-inject the trigger, and require every expected
// chain stage to re-fire on one trace within the SLO. Failover
// scenarios re-run a supervised controller kill and require the
// failover→rehomed→recovered chain to complete within the SLO.
func RunReplay(s *forensics.Scenario) (*ReplayResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Kind == forensics.KindFailover {
		return replayFailover(s)
	}
	return replayDetection(s)
}

// RunReplayFile loads a scenario document and replays it.
func RunReplayFile(path string) (*ReplayResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: replay: %w", err)
	}
	s, err := forensics.LoadScenario(b)
	if err != nil {
		return nil, err
	}
	return RunReplay(s)
}

// replayDetection rebuilds the smallest deployment that can re-close
// the loop: the scenario device behind the platform, a quarantine
// rule armed on suspicion, and a live southbound so the isolation
// reaches the wire as a FLOW_MOD.
func replayDetection(s *forensics.Scenario) (*ReplayResult, error) {
	res := &ReplayResult{
		Incident:   s.Incident,
		Kind:       s.Kind,
		Device:     s.Device,
		Expected:   append([]string(nil), s.ExpectedStages...),
		SLOSeconds: s.SLO().Seconds(),
	}

	d := policy.NewDomain()
	d.AddDevice(s.Device, policy.ContextNormal, policy.ContextSuspicious, policy.ContextCompromised)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:     "replay-baseline-" + s.Device,
		Device:   s.Device,
		Posture:  policy.Posture{Modules: []policy.ModuleSpec{{Kind: "stateful-fw"}}},
		Priority: 1,
	})
	f.AddRule(policy.Rule{
		Name:       "replay-quarantine-" + s.Device,
		Conditions: []policy.Condition{policy.DeviceIs(s.Device, policy.ContextSuspicious)},
		Device:     s.Device,
		Posture:    policy.Posture{Isolate: true},
		Priority:   10,
	})
	prot, err := newProtectedLab(f)
	if err != nil {
		return nil, err
	}
	defer prot.stop()
	victim := device.NewCamera(s.Device, packet.MustParseIPv4("10.0.0.30"))
	if _, err := prot.platform.AddDevice(victim.Device); err != nil {
		return nil, err
	}
	sb, err := prot.platform.AttachSouthbound(core.SouthboundOptions{})
	if err != nil {
		return nil, err
	}
	defer sb.Close()
	prot.platform.Start()
	sb.Steering.WaitForSwitch(2 * time.Second)
	capt := prot.platform.EnableForensics(forensics.Options{Shard: "replay"})
	defer capt.Close()

	// Re-inject the trigger and drive the view, on one fresh trace —
	// the same shape the live detectors produce.
	trigger := s.Trigger.Type
	if trigger == "" {
		trigger = kindOpeners[s.Kind]
	}
	detail := s.Trigger.Detail
	if detail == "" {
		detail = "replay of " + s.Incident
	}
	sev := journal.Warn
	if s.Kind == forensics.KindRogueQuarantine {
		sev = journal.Critical
	}
	ctx, span := telemetry.StartSpan(context.Background(), "experiment.replay")
	span.SetAttr("incident", s.Incident)
	res.TraceID = telemetry.TraceID(ctx)
	start := time.Now()
	journal.Record(ctx, trigger, sev, s.Device, detail)
	if trigger != journal.TypeAnomaly {
		// Detection kinds imply an anomaly (profile violations escalate
		// through the anomaly path); re-journal it so the detect stage
		// re-fires exactly as in the original chain.
		journal.Record(ctx, journal.TypeAnomaly, journal.Warn, s.Device,
			fmt.Sprintf("replay: %s (score 1.00)", detail))
	}
	prot.platform.Global.View.HandleAnomaly(ctx, ids.Anomaly{
		Device: s.Device,
		Kind:   ids.AnomalyProfile,
		Detail: "replay of " + s.Incident,
		Score:  1,
		When:   start,
	})
	span.End()

	res.WithinSLO = waitUntil(func() bool {
		return len(missingStages(res.TraceID, res.Expected)) == 0
	}, s.SLO())
	res.ElapsedSeconds = time.Since(start).Seconds()
	res.Missing = missingStages(res.TraceID, res.Expected)
	res.Observed = observedStages(res.TraceID)
	if tl := journal.Reconstruct(journal.Default.Snapshot(journal.Filter{TraceID: res.TraceID}), res.TraceID); tl != nil {
		res.Chain = tl.Chain()
	}
	capt.Sync()
	_, res.Recaptured = capt.Get(forensics.IncidentID(res.TraceID))
	res.Passed = res.WithinSLO && len(res.Missing) == 0
	if !res.Passed {
		res.Error = fmt.Sprintf("missing stages %v after %.3fs (SLO %.3fs)",
			res.Missing, res.ElapsedSeconds, res.SLOSeconds)
	}
	return res, nil
}

// replayFailover re-drives a supervised controller kill and holds it
// to the scenario's SLO.
func replayFailover(s *forensics.Scenario) (*ReplayResult, error) {
	res := &ReplayResult{
		Incident:   s.Incident,
		Kind:       s.Kind,
		Expected:   append([]string(nil), s.ExpectedStages...),
		SLOSeconds: s.SLO().Seconds(),
	}
	start := time.Now()
	_, results, err := RunFailover(FailoverOptions{
		Sizes:       []int{256},
		KillShards:  1,
		RecoverySLO: s.SLO(),
	})
	res.ElapsedSeconds = time.Since(start).Seconds()
	if len(results) > 0 {
		r := results[len(results)-1]
		if len(r.Records) > 0 {
			res.TraceID = r.Records[0].TraceID
		}
		res.WithinSLO = r.WithinSLO
		if r.TracesComplete {
			res.Observed = append([]string(nil), res.Expected...)
		} else {
			res.Missing = missingStages(res.TraceID, res.Expected)
			res.Observed = observedStages(res.TraceID)
		}
		res.Passed = err == nil && r.WithinSLO && r.TracesComplete
	}
	if err != nil {
		res.Error = err.Error()
	} else if !res.Passed {
		res.Error = fmt.Sprintf("failover chain incomplete or over SLO (missing %v)", res.Missing)
	}
	return res, nil
}

// RunA13 is the self-contained A13 drill (iotsim -exp a13): a live
// deployment suffers a real anomaly, the forensics plane seals the
// chain into a durable store, the incident exports as a scenario, the
// scenario round-trips through JSON (the mboxctl-export / iotsim-replay
// wire format), and replaying it must re-fire every chain stage on a
// fresh trace within the captured SLO. A second row re-drives a
// controller-failover scenario through the A12 harness.
func RunA13(progress io.Writer) (*Table, error) {
	t := &Table{
		ID:    "A13",
		Title: "incident forensics: capture -> seal -> export -> replay",
		Columns: []string{"scenario", "kind", "captured", "stages", "replay_trace",
			"elapsed", "slo", "recaptured", "verdict"},
	}

	// Row 1: detection round trip on a live capture.
	const dev = "cam"
	d := policy.NewDomain()
	d.AddDevice(dev, policy.ContextNormal, policy.ContextSuspicious, policy.ContextCompromised)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:     "a13-baseline-" + dev,
		Device:   dev,
		Posture:  policy.Posture{Modules: []policy.ModuleSpec{{Kind: "stateful-fw"}}},
		Priority: 1,
	})
	f.AddRule(policy.Rule{
		Name:       "a13-quarantine-" + dev,
		Conditions: []policy.Condition{policy.DeviceIs(dev, policy.ContextSuspicious)},
		Device:     dev,
		Posture:    policy.Posture{Isolate: true},
		Priority:   10,
	})
	loaded, err := func() (*forensics.Scenario, error) {
		prot, err := newProtectedLab(f)
		if err != nil {
			return nil, err
		}
		defer prot.stop()
		victim := device.NewCamera(dev, packet.MustParseIPv4("10.0.0.30"))
		if _, err := prot.platform.AddDevice(victim.Device); err != nil {
			return nil, err
		}
		sb, err := prot.platform.AttachSouthbound(core.SouthboundOptions{})
		if err != nil {
			return nil, err
		}
		defer sb.Close()
		prot.platform.Start()
		sb.Steering.WaitForSwitch(2 * time.Second)
		dir, err := os.MkdirTemp("", "iotsec-a13-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		store, err := forensics.OpenStore(dir, forensics.StoreOptions{})
		if err != nil {
			return nil, err
		}
		defer store.Close()
		capt := prot.platform.EnableForensics(forensics.Options{
			Store: store, Shard: "a13", Quiet: 100 * time.Millisecond, SweepEvery: 20 * time.Millisecond,
		})
		defer capt.Close()
		prot.platform.ReportAnomaly(ids.Anomaly{
			Device: dev, Kind: ids.AnomalyRate, Detail: "a13 beacon burst", Score: 0.99,
		})
		var inc *forensics.Incident
		if !waitUntil(func() bool {
			capt.Sync()
			for _, dg := range store.Digests() {
				if dg.Device == dev {
					inc, _ = store.Get(dg.ID)
					return inc != nil
				}
			}
			return false
		}, 5*time.Second) {
			return nil, fmt.Errorf("a13: incident never sealed (capturer %+v)", capt.Stats())
		}
		// Round-trip through the on-disk wire format.
		b, err := json.Marshal(forensics.ExportScenario(inc, 0))
		if err != nil {
			return nil, err
		}
		return forensics.LoadScenario(b)
	}()
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "a13: captured %s incident %s, replaying (SLO %.1fs)\n",
			loaded.Kind, loaded.Incident, loaded.SLOSeconds)
	}
	res, err := RunReplay(loaded)
	if err != nil {
		return nil, err
	}
	addReplayRow(t, "live capture round-trip", res)

	// Row 2: failover chain through the A12 harness.
	fo := &forensics.Scenario{
		Version:    forensics.ScenarioVersion,
		Incident:   "inc-a13-failover-drill",
		Kind:       forensics.KindFailover,
		SLOSeconds: 5,
		ExpectedStages: []string{
			string(journal.TypeCtrlFailover),
			string(journal.TypeCtrlRehomed),
			string(journal.TypeCtrlRecovered),
		},
	}
	if progress != nil {
		fmt.Fprintf(progress, "a13: replaying failover scenario via the A12 harness\n")
	}
	fres, err := RunReplay(fo)
	if err != nil {
		return nil, err
	}
	addReplayRow(t, "failover re-drive", fres)
	t.Note("replay runs on a fresh trace; verdict FAIL on any missing chain stage or SLO miss")
	t.Note("exported scenarios replay standalone: mboxctl incidents export -o f.json <id> && iotsim -replay f.json")
	if !res.Passed || !fres.Passed {
		return t, fmt.Errorf("a13: replay failed (detection passed=%v, failover passed=%v)", res.Passed, fres.Passed)
	}
	return t, nil
}

func addReplayRow(t *Table, label string, r *ReplayResult) {
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	t.AddRow(label, r.Kind, r.Incident,
		fmt.Sprintf("%d/%d", len(r.Expected)-len(r.Missing), len(r.Expected)),
		r.TraceID, fmtSeconds(r.ElapsedSeconds), fmtSeconds(r.SLOSeconds),
		r.Recaptured, verdict)
}

// stagesOf reduces a trace's journal events to the stage/type labels a
// scenario's expected-stage list speaks in: the Figure 2 stage bucket
// for pipeline events, the literal event type for everything else
// (failover chains are expressed as event types).
func stagesOf(traceID uint64) map[string]bool {
	got := make(map[string]bool)
	if traceID == 0 {
		return got
	}
	for _, e := range journal.Default.Snapshot(journal.Filter{TraceID: traceID}) {
		got[string(e.Type)] = true
		if stage := journal.Stage(e.Type); stage != "other" {
			got[stage] = true
		}
	}
	return got
}

// missingStages lists expected stages the trace has not yet fired.
func missingStages(traceID uint64, expected []string) []string {
	got := stagesOf(traceID)
	var missing []string
	for _, want := range expected {
		if !got[want] {
			missing = append(missing, want)
		}
	}
	return missing
}

// observedStages lists the trace's fired stage buckets in first-fire
// order.
func observedStages(traceID uint64) []string {
	if traceID == 0 {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, e := range journal.Default.Snapshot(journal.Filter{TraceID: traceID}) {
		stage := journal.Stage(e.Type)
		if stage == "other" {
			stage = string(e.Type)
		}
		if !seen[stage] {
			seen[stage] = true
			out = append(out, stage)
		}
	}
	return out
}
