package core

import (
	"fmt"
	"sort"

	"iotsec/internal/learn"
	"iotsec/internal/packet"
	"iotsec/internal/sigrepo"
)

// CrowdLink connects a platform to a signature repository: cleared
// signatures for any managed SKU flow into the running IDS µmboxes,
// and the platform can share what it observes.
type CrowdLink struct {
	platform *Platform
	client   *sigrepo.Client
}

// ConnectSigrepo dials the repository as the given identity and
// subscribes to every SKU currently under management. Pushed
// signatures are installed live.
func (p *Platform) ConnectSigrepo(addr, identity string) (*CrowdLink, error) {
	client, err := sigrepo.DialClient(addr, identity)
	if err != nil {
		return nil, fmt.Errorf("core: sigrepo: %w", err)
	}
	link := &CrowdLink{platform: p, client: client}
	client.OnNotify = func(sig sigrepo.Signature, priority bool) {
		// Installation failures (malformed community rules) must not
		// kill the notification loop.
		_ = p.AddSignatureRule(sig.SKU, sig.Rule)
	}

	for _, sku := range p.managedSKUs() {
		if err := client.Subscribe(sku); err != nil {
			client.Close()
			return nil, fmt.Errorf("core: sigrepo subscribe %s: %w", sku, err)
		}
		// Backfill already-cleared signatures.
		sigs, err := client.Fetch(sku)
		if err != nil {
			client.Close()
			return nil, fmt.Errorf("core: sigrepo fetch %s: %w", sku, err)
		}
		for _, sig := range sigs {
			_ = p.AddSignatureRule(sig.SKU, sig.Rule)
		}
	}
	return link, nil
}

// managedSKUs lists distinct SKUs under management, sorted.
func (p *Platform) managedSKUs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[string]bool{}
	for _, m := range p.devices {
		seen[m.Device.Profile.SKU] = true
	}
	out := make([]string, 0, len(seen))
	for sku := range seen {
		out = append(out, sku)
	}
	sort.Strings(out)
	return out
}

// DistillSignature runs the §4.1 post-incident analysis against the
// platform's capture: the attacker's management traffic toward the
// device is contrasted with everyone else's, and the distinguishing
// token becomes an ids-dialect block rule ready to Publish. Requires
// Options.Capture.
func (p *Platform) DistillSignature(deviceName string, attackerIP packet.IPv4Address, msg string, sid int) (string, error) {
	if p.recorder == nil {
		return "", fmt.Errorf("core: DistillSignature requires Options.Capture")
	}
	m, ok := p.Device(deviceName)
	if !ok {
		return "", fmt.Errorf("core: unknown device %s", deviceName)
	}
	frames := p.recorder.Frames()
	attack := learn.MgmtPayloadsFrom(frames, m.Device.IP(), attackerIP)
	benign := learn.MgmtPayloadsExcluding(frames, m.Device.IP(), attackerIP)
	if len(attack) == 0 {
		return "", fmt.Errorf("core: no captured traffic from %s to %s", attackerIP, deviceName)
	}
	return learn.GenerateRule(attack, benign, msg, sid)
}

// Publish shares a locally observed signature with the community.
func (l *CrowdLink) Publish(sku, rule, description string) (*sigrepo.Signature, error) {
	return l.client.Publish(sku, rule, description)
}

// Vote casts this deployment's verdict on a community signature.
func (l *CrowdLink) Vote(sigID string, up bool) error {
	_, err := l.client.Vote(sigID, up)
	return err
}

// Close drops the repository connection.
func (l *CrowdLink) Close() { l.client.Close() }
