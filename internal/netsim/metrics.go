package netsim

import (
	"fmt"
	"sort"

	"iotsec/internal/telemetry"
)

// Fabric-wide hot-path metrics. Counters are package-level aggregates
// across every network in the process (tests build many fabrics; the
// running daemons build one), so the write path is a single
// pre-resolved atomic increment.
var (
	mFramesDelivered = telemetry.NewCounter(
		"iotsec_netsim_frames_delivered_total",
		"Frames delivered across links (post-loss).")
	mBytesDelivered = telemetry.NewCounter(
		"iotsec_netsim_bytes_delivered_total",
		"Bytes delivered across links (post-loss).")
	mFramesLost = telemetry.NewCounter(
		"iotsec_netsim_frames_lost_total",
		"Frames dropped by modeled link loss.")
	mQueueDrops = telemetry.NewCounter(
		"iotsec_netsim_queue_drops_total",
		"Frames dropped on port inbox overflow.")
	mSwitchPacketsIn = telemetry.NewCounter(
		"iotsec_netsim_switch_packets_in_total",
		"Frames received by SDN switches.")
	mSwitchPacketsOut = telemetry.NewCounter(
		"iotsec_netsim_switch_packets_out_total",
		"Frames forwarded by SDN switches (unicast + flood copies).")
	mSwitchTableMiss = telemetry.NewCounter(
		"iotsec_netsim_switch_table_miss_total",
		"Frames that matched no flow entry.")
	mPortsOpen = telemetry.NewGauge(
		"iotsec_netsim_ports_open",
		"Ports currently attached to fabrics (delivery goroutines).")
)

// Southbound-channel resilience metrics (agent side). Aggregated
// across every supervised agent in the process.
var (
	mAgentReconnects = telemetry.NewCounter(
		"iotsec_southbound_reconnects_total",
		"Southbound sessions re-established by agent supervisors.")
	mAgentSendErrors = telemetry.NewCounter(
		"iotsec_southbound_send_errors_total",
		"Southbound sends that failed on a live session (tears the session down).")
	mPuntsDropped = telemetry.NewCounter(
		"iotsec_southbound_punts_dropped_total",
		"Punted frames dropped while disconnected (fail-closed mode or buffer eviction).")
	mBufferEvictions = telemetry.NewCounter(
		"iotsec_southbound_buffer_evictions_total",
		"Oldest buffered events evicted from full degradation rings.")
	mAgentReplayed = telemetry.NewCounter(
		"iotsec_southbound_replayed_total",
		"Buffered events replayed to the controller after re-handshake.")
	mReplayDepth = telemetry.NewGauge(
		"iotsec_southbound_replay_depth",
		"Events currently buffered in degradation rings awaiting replay.")
)

// ExportTelemetry registers a scrape-time collector on reg exposing
// this switch's per-port statistics as
// iotsec_netsim_port_{tx,rx}_{frames,bytes} and
// iotsec_netsim_port_drops{kind=...}, labeled by switch and port. The
// collector walks live port counters at scrape time — nothing is
// added to the forwarding path. Re-registering (e.g. after rebuilding
// a platform) replaces the previous collector for the same switch
// name.
func (s *Switch) ExportTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.Default
	}
	name := s.name
	reg.RegisterCollector("netsim-switch:"+name, func(emit func(string, telemetry.Kind, string, telemetry.Labels, float64)) {
		s.mu.RLock()
		ids := make([]uint16, 0, len(s.ports))
		for id := range s.ports {
			ids = append(ids, id)
		}
		ports := make(map[uint16]*Port, len(s.ports))
		for id, p := range s.ports {
			ports[id] = p
		}
		s.mu.RUnlock()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			st := ports[id].Stats()
			labels := telemetry.Labels{
				{Key: "switch", Value: name},
				{Key: "port", Value: fmt.Sprintf("%d", id)},
			}
			emit("iotsec_netsim_port_tx_frames", telemetry.KindGauge,
				"Frames transmitted by a switch port.", labels, float64(st.TxFrames))
			emit("iotsec_netsim_port_rx_frames", telemetry.KindGauge,
				"Frames received by a switch port.", labels, float64(st.RxFrames))
			emit("iotsec_netsim_port_tx_bytes", telemetry.KindGauge,
				"Bytes transmitted by a switch port.", labels, float64(st.TxBytes))
			emit("iotsec_netsim_port_rx_bytes", telemetry.KindGauge,
				"Bytes received by a switch port.", labels, float64(st.RxBytes))
			emit("iotsec_netsim_port_drops", telemetry.KindGauge,
				"Frames dropped at a switch port.",
				append(labels[:2:2], telemetry.Label{Key: "kind", Value: "queue"}), float64(st.DropsQueue))
			emit("iotsec_netsim_port_drops", telemetry.KindGauge,
				"Frames dropped at a switch port.",
				append(labels[:2:2], telemetry.Label{Key: "kind", Value: "loss"}), float64(st.DropsLoss))
		}
	})
}
