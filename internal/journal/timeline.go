package journal

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline is the causally ordered reconstruction of one trace: every
// journal event that shares the trace ID, oldest first. It is the
// operational form of the paper's §4 attack-chain story — "which
// sensor reading caused which rules and which µmbox swap".
type Timeline struct {
	TraceID uint64  `json:"trace_id"`
	Events  []Event `json:"events"`
}

// Reconstruct assembles the timeline for one trace ID from a set of
// events (e.g. a journal snapshot), sorting by sequence number.
func Reconstruct(events []Event, traceID uint64) *Timeline {
	t := &Timeline{TraceID: traceID}
	for _, e := range events {
		if e.TraceID == traceID {
			t.Events = append(t.Events, e)
		}
	}
	sort.Slice(t.Events, func(i, j int) bool { return t.Events[i].Seq < t.Events[j].Seq })
	return t
}

// ReconstructDevice groups a device's events by trace and returns one
// timeline per causal chain, ordered by first occurrence — the
// "everything that ever happened to this camera" forensic view.
func ReconstructDevice(events []Event, device string) []*Timeline {
	byTrace := make(map[uint64]*Timeline)
	var order []uint64
	for _, e := range events {
		if e.Device != device || e.TraceID == 0 {
			continue
		}
		t, ok := byTrace[e.TraceID]
		if !ok {
			t = &Timeline{TraceID: e.TraceID}
			byTrace[e.TraceID] = t
			order = append(order, e.TraceID)
		}
		t.Events = append(t.Events, e)
	}
	out := make([]*Timeline, 0, len(order))
	for _, id := range order {
		t := byTrace[id]
		sort.Slice(t.Events, func(i, j int) bool { return t.Events[i].Seq < t.Events[j].Seq })
		out = append(out, t)
	}
	return out
}

// Stage buckets event types into the Figure 2 loop stages used for
// chain rendering and completeness checks.
func Stage(t Type) string {
	switch t {
	case TypeDeviceEvent, TypeAnomaly, TypeAlert:
		return "detect"
	case TypeViewChange, TypePosture:
		return "policy"
	case TypeFlowMod, TypeFlowApplied:
		return "controller"
	case TypeMboxBoot, TypeMboxReconfig:
		return "mbox"
	case TypeSigPublish, TypeSigVote:
		return "sigrepo"
	default:
		return "other"
	}
}

// Complete reports whether the timeline closes the Figure 2 loop:
// a detection, a policy transition, and an enforcement action (flow
// rule or µmbox change).
func (t *Timeline) Complete() bool {
	var detect, policy, enforce bool
	for _, e := range t.Events {
		switch Stage(e.Type) {
		case "detect":
			detect = true
		case "policy":
			policy = true
		case "controller", "mbox":
			enforce = true
		}
	}
	return detect && policy && enforce
}

// Chain renders the causal chain in one line:
//
//	anomaly(wemo) -> posture(wemo) -> flow-mod(wemo) -> mbox-reconfig(wemo)
func (t *Timeline) Chain() string {
	parts := make([]string, 0, len(t.Events))
	for _, e := range t.Events {
		if e.Device != "" {
			parts = append(parts, string(e.Type)+"("+e.Device+")")
		} else {
			parts = append(parts, string(e.Type))
		}
	}
	return strings.Join(parts, " -> ")
}

// Render produces the multi-line forensic report: per-event offsets
// from the first event, severities and details.
func (t *Timeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d: %d events", t.TraceID, len(t.Events))
	if t.Complete() {
		b.WriteString(" (complete detect->policy->enforce chain)")
	}
	b.WriteByte('\n')
	if len(t.Events) == 0 {
		return b.String()
	}
	base := t.Events[0].Mono
	for _, e := range t.Events {
		fmt.Fprintf(&b, "  +%-12s %-10s %-13s %-12s %s\n",
			(e.Mono - base).String(), "["+e.Severity.String()+"]", e.Type, e.Device, e.Detail)
	}
	return b.String()
}
