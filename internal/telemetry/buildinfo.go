package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo is the resolved build identity exposed by
// iotsec_build_info and shown by mboxctl stats.
type BuildInfo struct {
	Component string `json:"component"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
}

// ReadBuildInfo resolves the running binary's identity from the
// embedded module build info. Version falls back through the module
// version ("(devel)" for local builds), then the vcs.revision setting
// (short hash), then "unknown" — binaries built straight from a
// checkout still get a usable answer.
func ReadBuildInfo(component string) BuildInfo {
	out := BuildInfo{Component: component, Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.GoVersion != "" {
		out.GoVersion = bi.GoVersion
	}
	if v := bi.Main.Version; v != "" {
		out.Version = v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 7 {
			rev := s.Value[:7]
			if out.Version == "unknown" || out.Version == "(devel)" {
				out.Version = rev
			}
			break
		}
	}
	return out
}

// RegisterBuildInfo registers the iotsec_build_info constant gauge on
// r (Default when nil):
//
//	iotsec_build_info{component="iotsecd",version="(devel)",go_version="go1.24.0"} 1
//
// The constant-1 gauge with identity labels is the standard Prometheus
// idiom for joining build metadata onto any other series. All three
// binaries call this at startup.
func RegisterBuildInfo(r *Registry, component string) BuildInfo {
	if r == nil {
		r = Default
	}
	bi := ReadBuildInfo(component)
	r.RegisterCollector("build-info:"+component, func(emit func(name string, kind Kind, help string, labels Labels, value float64)) {
		emit("iotsec_build_info", KindGauge,
			"Constant gauge carrying build identity labels.",
			Labels{
				{Key: "component", Value: bi.Component},
				{Key: "version", Value: bi.Version},
				{Key: "go_version", Value: bi.GoVersion},
			}, 1)
	})
	return bi
}
