package ids

import (
	"math/rand"
	"sort"
	"testing"

	"iotsec/internal/packet"
)

// naiveMatch is the pre-optimization matcher: every rule verified
// against every packet, no prefilter, no buckets. The staged engine
// must raise exactly the same alert set.
func naiveMatch(rules []*Rule, p *packet.Packet) []int {
	ip := p.IPv4()
	if ip == nil {
		return nil
	}
	v := pktView{ip: ip, payload: p.ApplicationPayload()}
	if t := p.TCP(); t != nil {
		v.hasTCP, v.srcPort, v.dstPort = true, t.SrcPort, t.DstPort
	} else if u := p.UDP(); u != nil {
		v.hasUDP, v.srcPort, v.dstPort = true, u.SrcPort, u.DstPort
	}
	var sids []int
	for _, r := range rules {
		if !r.Dsize.Matches(len(v.payload)) {
			continue
		}
		if !ruleContentsMatch(r, v.payload) {
			continue
		}
		if !headerMatch(r, &v) {
			continue
		}
		sids = append(sids, r.SID)
	}
	return sids
}

var stagedPatterns = [][]byte{
	[]byte("admin"), []byte("GET /"), []byte("backdoor"),
	[]byte("TEST"), []byte("xyzzy"), []byte("pass"),
	[]byte("ADMIN"), // uppercase twin to stress nocase
}

func randRule(rng *rand.Rand, sid int) *Rule {
	r := &Rule{Action: ActionAlert, SID: sid, Msg: "r"}
	if rng.Intn(4) == 0 {
		r.Action = ActionBlock
	}
	switch rng.Intn(3) {
	case 0:
		r.Proto = ProtoTCP
	case 1:
		r.Proto = ProtoUDP
	default:
		r.Proto = ProtoIP
	}
	randAddr := func() AddrSpec {
		switch rng.Intn(3) {
		case 0:
			return AddrSpec{Any: true}
		case 1:
			return AddrSpec{IP: packet.IPv4Address{10, 0, byte(rng.Intn(2)), 0}, Prefix: 24}
		default:
			return AddrSpec{IP: packet.IPv4Address{10, 0, byte(rng.Intn(2)), byte(rng.Intn(4))}}
		}
	}
	randPort := func() PortSpec {
		if rng.Intn(2) == 0 {
			return PortSpec{Any: true}
		}
		return PortSpec{Port: []uint16{80, 443, 53, 1234}[rng.Intn(4)]}
	}
	r.SrcIP, r.DstIP = randAddr(), randAddr()
	r.SrcPort, r.DstPort = randPort(), randPort()
	r.Bidir = rng.Intn(5) == 0
	nContents := rng.Intn(3)
	for i := 0; i < nContents; i++ {
		c := Content{Pattern: stagedPatterns[rng.Intn(len(stagedPatterns))]}
		if rng.Intn(4) == 0 {
			c.NoCase = true
			// nocase patterns are stored lowercased, as ParseRule does.
			lowered := make([]byte, len(c.Pattern))
			for j, ch := range c.Pattern {
				if ch >= 'A' && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				lowered[j] = ch
			}
			c.Pattern = lowered
		}
		if rng.Intn(4) == 0 {
			c.Negated = true
		}
		if rng.Intn(4) == 0 {
			c.Offset = rng.Intn(8)
		}
		if rng.Intn(4) == 0 {
			c.Depth = 4 + rng.Intn(20)
		}
		r.Contents = append(r.Contents, c)
	}
	if rng.Intn(4) == 0 {
		r.Dsize = Dsize{Op: []DsizeOp{DsizeEq, DsizeGT, DsizeLT}[rng.Intn(3)], N: rng.Intn(40)}
	}
	return r
}

func randStagedPacket(t testing.TB, rng *rand.Rand) *packet.Packet {
	t.Helper()
	srcIP := packet.IPv4Address{10, 0, byte(rng.Intn(2)), byte(rng.Intn(4))}
	dstIP := packet.IPv4Address{10, 0, byte(rng.Intn(2)), byte(rng.Intn(4))}
	// Payload stitched from rule patterns (varying case) and noise so
	// prefilter hits, near-hits and misses all occur.
	var payload []byte
	for i := rng.Intn(4); i > 0; i-- {
		pat := stagedPatterns[rng.Intn(len(stagedPatterns))]
		for _, ch := range pat {
			if rng.Intn(6) == 0 && ch >= 'a' && ch <= 'z' {
				ch -= 'a' - 'A'
			}
			payload = append(payload, ch)
		}
		for j := rng.Intn(6); j > 0; j-- {
			payload = append(payload, byte(rng.Intn(256)))
		}
	}
	b := packet.NewSerializeBuffer()
	var err error
	ports := []uint16{80, 443, 53, 1234, 9999}
	src, dst := ports[rng.Intn(len(ports))], ports[rng.Intn(len(ports))]
	switch rng.Intn(10) {
	case 0: // bare IP with unknown protocol: no transport ports at all
		err = packet.SerializeLayers(b,
			&packet.IPv4{SrcIP: srcIP, DstIP: dstIP, Protocol: packet.IPProtocol(0xfd)},
			packet.NewPayload(payload),
		)
	case 1, 2, 3:
		err = packet.SerializeLayers(b,
			&packet.IPv4{SrcIP: srcIP, DstIP: dstIP, Protocol: packet.IPProtocolUDP},
			&packet.UDP{SrcPort: src, DstPort: dst},
			packet.NewPayload(payload),
		)
	default:
		tcp := &packet.TCP{SrcPort: src, DstPort: dst, Flags: packet.TCPAck}
		tcp.SetNetworkForChecksum(srcIP, dstIP)
		err = packet.SerializeLayers(b,
			&packet.IPv4{SrcIP: srcIP, DstIP: dstIP, Protocol: packet.IPProtocolTCP},
			tcp,
			packet.NewPayload(payload),
		)
	}
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return packet.Decode(b.Bytes(), packet.LayerTypeIPv4)
}

// TestStagedMatchEquivalence: the staged engine (AC prefilter +
// proto/port buckets) must alert on exactly the rules the naive
// all-rules matcher selects, over randomized rulesets and packets.
func TestStagedMatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1d5))
	for trial := 0; trial < 20; trial++ {
		nRules := 1 + rng.Intn(50)
		rules := make([]*Rule, nRules)
		for i := range rules {
			rules[i] = randRule(rng, 1000+i)
		}
		e := NewEngine(rules)
		for pi := 0; pi < 400; pi++ {
			p := randStagedPacket(t, rng)
			want := naiveMatch(rules, p)
			var got []int
			for _, a := range e.Match(p) {
				got = append(got, a.SID)
			}
			sort.Ints(want)
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("trial %d packet %d: staged raised %v, naive %v", trial, pi, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d packet %d: staged raised %v, naive %v", trial, pi, got, want)
				}
			}
		}
	}
}

// TestStagedMatchParsedRules runs the equivalence over rules built by
// the real parser, covering the dialect end to end.
func TestStagedMatchParsedRules(t *testing.T) {
	lines := []string{
		`alert tcp any any -> any 80 (msg:"admin probe"; content:"admin"; nocase; sid:1;)`,
		`block tcp any any -> 10.0.0.0/24 any (msg:"backdoor"; content:"backdoor"; sid:2;)`,
		`alert udp any 53 <> any any (msg:"dns chatter"; sid:3;)`,
		`alert ip any any -> any any (msg:"big"; dsize:>64; sid:4;)`,
		`alert tcp any any -> any 1234 (msg:"no test"; content:!"TEST"; sid:5;)`,
		`alert tcp any any -> any any (msg:"get root"; content:"GET /"; content:"pass"; sid:6;)`,
	}
	var rules []*Rule
	for _, l := range lines {
		r, err := ParseRule(l)
		if err != nil {
			t.Fatalf("parse %q: %v", l, err)
		}
		rules = append(rules, r)
	}
	e := NewEngine(rules)
	rng := rand.New(rand.NewSource(99))
	for pi := 0; pi < 2000; pi++ {
		p := randStagedPacket(t, rng)
		want := naiveMatch(rules, p)
		var got []int
		for _, a := range e.Match(p) {
			got = append(got, a.SID)
		}
		sort.Ints(want)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("packet %d: staged %v, naive %v (%s)", pi, got, want, p)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("packet %d: staged %v, naive %v (%s)", pi, got, want, p)
			}
		}
	}
}
