package ids

// ahoCorasick is a multi-pattern string matcher: all patterns are
// compiled into one automaton and every payload byte is examined once
// regardless of ruleset size — the property that keeps per-µmbox IDS
// cheap enough to run per device (§5.2).
type ahoCorasick struct {
	// next[state][b] is the goto function (dense: byte-indexed).
	next [][256]int32
	// fail[state] is the failure link.
	fail []int32
	// output[state] lists pattern indices ending at this state.
	output [][]int
}

// newAhoCorasick compiles the automaton from the given patterns.
func newAhoCorasick(patterns [][]byte) *ahoCorasick {
	ac := &ahoCorasick{
		next:   make([][256]int32, 1),
		fail:   make([]int32, 1),
		output: make([][]int, 1),
	}
	for i := range ac.next[0] {
		ac.next[0][i] = -1
	}
	// Build the trie.
	for idx, pat := range patterns {
		state := int32(0)
		for _, b := range pat {
			if ac.next[state][b] == -1 {
				ac.next = append(ac.next, [256]int32{})
				for i := range ac.next[len(ac.next)-1] {
					ac.next[len(ac.next)-1][i] = -1
				}
				ac.fail = append(ac.fail, 0)
				ac.output = append(ac.output, nil)
				ac.next[state][b] = int32(len(ac.next) - 1)
			}
			state = ac.next[state][b]
		}
		ac.output[state] = append(ac.output[state], idx)
	}
	// BFS to compute failure links and convert to a full goto
	// function.
	queue := make([]int32, 0, len(ac.next))
	for b := 0; b < 256; b++ {
		if s := ac.next[0][b]; s == -1 {
			ac.next[0][b] = 0
		} else {
			ac.fail[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		state := queue[0]
		queue = queue[1:]
		for b := 0; b < 256; b++ {
			s := ac.next[state][b]
			if s == -1 {
				ac.next[state][b] = ac.next[ac.fail[state]][b]
				continue
			}
			ac.fail[s] = ac.next[ac.fail[state]][b]
			ac.output[s] = append(ac.output[s], ac.output[ac.fail[s]]...)
			queue = append(queue, s)
		}
	}
	return ac
}

// scan reports the set of pattern indices found in data.
func (ac *ahoCorasick) scan(data []byte, hits map[int]bool) {
	state := int32(0)
	for _, b := range data {
		state = ac.next[state][b]
		for _, idx := range ac.output[state] {
			hits[idx] = true
		}
	}
}

// scanInto runs the automaton over data, recording first-seen patterns
// and per-rule hit counts in the pooled scratch (the allocation-free
// fast path of scan).
func (e *Engine) scanInto(data []byte, s *matchScratch) {
	ac := e.ac
	state := int32(0)
	for _, b := range data {
		state = ac.next[state][b]
		for _, idx := range ac.output[state] {
			if s.patSeen[idx] {
				continue
			}
			s.patSeen[idx] = true
			s.touchedPats = append(s.touchedPats, int32(idx))
			ri := e.patIndex[idx].rule
			if s.ruleHits[ri] == 0 {
				s.touchedRul = append(s.touchedRul, ri)
			}
			s.ruleHits[ri]++
		}
	}
}

// containsNaive is the reference matcher used by property tests.
func containsNaive(haystack, needle []byte) bool {
	if len(needle) == 0 {
		return true
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j := range needle {
			if haystack[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}
