package controller

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/ids"
	"iotsec/internal/policy"
)

func TestStoreVersionsMonotonic(t *testing.T) {
	s := NewStore()
	v1 := s.Put("a", "1")
	v2 := s.Put("b", "2")
	v3 := s.Put("a", "3")
	if !(v1 < v2 && v2 < v3) {
		t.Errorf("versions = %d %d %d", v1, v2, v3)
	}
	val, ver, ok := s.Get("a")
	if !ok || val != "3" || ver != v3 {
		t.Errorf("get a = %q v%d %v", val, ver, ok)
	}
	if s.Version() != v3 {
		t.Errorf("store version = %d", s.Version())
	}
}

func TestStoreWatchOrdering(t *testing.T) {
	s := NewStore()
	w := s.Watch(16)
	for i := 0; i < 10; i++ {
		s.Put("k", fmt.Sprint(i))
	}
	var last uint64
	for i := 0; i < 10; i++ {
		select {
		case u := <-w:
			if u.Version <= last {
				t.Fatalf("out of order: %d after %d", u.Version, last)
			}
			last = u.Version
		case <-time.After(time.Second):
			t.Fatal("watch starved")
		}
	}
}

func TestStoreSinceAndSnapshot(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("k%d", i), "v")
	}
	ups, ok := s.Since(2)
	if !ok || len(ups) != 3 {
		t.Errorf("since(2) = %v ok=%v", ups, ok)
	}
	// Truncated log forces resync.
	s2 := NewStore()
	s2.LogLimit = 2
	for i := 0; i < 10; i++ {
		s2.Put("k", fmt.Sprint(i))
	}
	if _, ok := s2.Since(1); ok {
		t.Error("truncated log claimed completeness")
	}
	snap, ver := s2.Snapshot()
	if snap["k"] != "9" || ver != 10 {
		t.Errorf("snapshot = %v v%d", snap, ver)
	}
}

func TestStorePutGetProperty(t *testing.T) {
	s := NewStore()
	f := func(key, value string) bool {
		v := s.Put(key, value)
		got, ver, ok := s.Get(key)
		return ok && got == value && ver == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestViewEscalationRules(t *testing.T) {
	v := NewView()
	var changes []ViewChange
	var mu sync.Mutex
	v.Observe(func(_ context.Context, c ViewChange) {
		mu.Lock()
		changes = append(changes, c)
		mu.Unlock()
	})

	// Backdoor access flips to suspicious immediately.
	v.HandleDeviceEvent(context.Background(), device.Event{Device: "alarm", Kind: device.EventBackdoorAccess, Detail: "TEST"})
	if v.DeviceContext("alarm") != policy.ContextSuspicious {
		t.Error("backdoor did not escalate")
	}

	// Brute force needs the threshold.
	for i := 0; i < 4; i++ {
		v.HandleDeviceEvent(context.Background(), device.Event{Device: "window", Kind: device.EventAuthFailure})
	}
	if v.DeviceContext("window") != policy.ContextNormal {
		t.Error("escalated below threshold")
	}
	v.HandleDeviceEvent(context.Background(), device.Event{Device: "window", Kind: device.EventAuthFailure})
	if v.DeviceContext("window") != policy.ContextSuspicious {
		t.Error("brute force did not escalate at threshold")
	}

	// Success resets the counter.
	v2 := NewView()
	for i := 0; i < 4; i++ {
		v2.HandleDeviceEvent(context.Background(), device.Event{Device: "d", Kind: device.EventAuthFailure})
	}
	v2.HandleDeviceEvent(context.Background(), device.Event{Device: "d", Kind: device.EventAuthSuccess})
	for i := 0; i < 4; i++ {
		v2.HandleDeviceEvent(context.Background(), device.Event{Device: "d", Kind: device.EventAuthFailure})
	}
	if v2.DeviceContext("d") != policy.ContextNormal {
		t.Error("auth success did not reset the failure counter")
	}

	// State changes surface as env vars.
	v.HandleDeviceEvent(context.Background(), device.Event{Device: "cam", Kind: device.EventStateChange, Detail: "person=yes"})
	if v.Env("cam_person") != "yes" {
		t.Errorf("cam_person = %q", v.Env("cam_person"))
	}

	// Idempotent writes do not notify.
	mu.Lock()
	n := len(changes)
	mu.Unlock()
	v.HandleDeviceEvent(context.Background(), device.Event{Device: "cam", Kind: device.EventStateChange, Detail: "person=yes"})
	mu.Lock()
	if len(changes) != n {
		t.Error("idempotent write notified observers")
	}
	mu.Unlock()
}

func TestViewAlertsAndAnomalies(t *testing.T) {
	v := NewView()
	v.HandleAlert(context.Background(), "cam", ids.Alert{SID: 7, Action: ids.ActionAlert, Msg: "probe"})
	if v.DeviceContext("cam") != policy.ContextSuspicious {
		t.Error("alert did not mark suspicious")
	}
	v.HandleAlert(context.Background(), "cam", ids.Alert{SID: 8, Action: ids.ActionBlock, Msg: "exploit"})
	if v.DeviceContext("cam") != policy.ContextCompromised {
		t.Error("block alert did not mark compromised")
	}
	v.HandleAnomaly(context.Background(), ids.Anomaly{Device: "plug", Kind: ids.AnomalyRate, Detail: "burst"})
	if v.DeviceContext("plug") != policy.ContextSuspicious {
		t.Error("anomaly did not mark suspicious")
	}
}

func TestPartitioning(t *testing.T) {
	devices := []string{"a", "b", "c", "d", "e", "f"}
	edges := []InteractionEdge{
		{A: "a", B: "b", Weight: 100},
		{A: "b", B: "c", Weight: 90},
		{A: "d", B: "e", Weight: 80},
		{A: "c", B: "d", Weight: 1}, // light cross edge
	}
	p := Partition(devices, edges, 3)
	if !p.SameGroup("a", "b") || !p.SameGroup("b", "c") {
		t.Errorf("heavy triangle split: %v", p.Groups)
	}
	if !p.SameGroup("d", "e") {
		t.Errorf("d,e split: %v", p.Groups)
	}
	if p.SameGroup("c", "d") {
		t.Errorf("size cap violated: %v", p.Groups)
	}
	if p.GroupOf("ghost") != -1 {
		t.Error("unknown device got a group")
	}
	if r := p.LocalityRatio(); r < 0.98 {
		t.Errorf("locality = %.3f, want ~0.996", r)
	}
}

func TestGlobalControllerPostureDeltas(t *testing.T) {
	d := policy.NewDomain()
	d.AddDevice("window", policy.ContextNormal, policy.ContextSuspicious)
	d.AddDevice("alarm", policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "fig3",
		Conditions: []policy.Condition{policy.DeviceIs("alarm", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{BlockCommands: []string{"OPEN"}},
		Priority:   10,
	})

	type change struct {
		dev string
		p   policy.Posture
	}
	var mu sync.Mutex
	var changes []change
	g := NewGlobal(f, func(_ context.Context, dev string, p policy.Posture, _ uint64) {
		mu.Lock()
		changes = append(changes, change{dev, p})
		mu.Unlock()
	})

	g.View.HandleDeviceEvent(context.Background(), device.Event{Device: "alarm", Kind: device.EventBackdoorAccess})
	mu.Lock()
	defer mu.Unlock()
	var winChanged bool
	for _, c := range changes {
		if c.dev == "window" && len(c.p.BlockCommands) == 1 {
			winChanged = true
		}
	}
	if !winChanged {
		t.Errorf("posture deltas = %+v", changes)
	}
}

func TestHierarchyLocalVsGlobalRouting(t *testing.T) {
	// Two partitions: {cam, plug} and {alarm, window}. One local rule
	// per partition plus one global (cross-partition) rule.
	d := policy.NewDomain()
	for _, dev := range []string{"cam", "plug", "alarm", "window"} {
		d.AddDevice(dev, policy.ContextNormal, policy.ContextSuspicious)
	}
	d.AddEnvVar("cam_person", "yes", "no")
	f := policy.NewFSM(d)
	// Local to group 0: cam person drives plug gating.
	f.AddRule(policy.Rule{
		Name:       "local-g0",
		Conditions: []policy.Condition{policy.EnvIs("cam_person", "no")},
		Device:     "plug",
		Posture:    policy.Posture{BlockCommands: []string{"ON"}},
		Priority:   5,
	})
	// Global: alarm context drives window, but ALSO references plug
	// (cross-partition).
	f.AddRule(policy.Rule{
		Name: "global-cross",
		Conditions: []policy.Condition{
			policy.DeviceIs("alarm", policy.ContextSuspicious),
			policy.DeviceIs("plug", policy.ContextSuspicious),
		},
		Device:   "window",
		Posture:  policy.Posture{Isolate: true},
		Priority: 9,
	})

	part := Partition(
		[]string{"cam", "plug", "alarm", "window"},
		[]InteractionEdge{{A: "cam", B: "plug", Weight: 10}, {A: "alarm", B: "window", Weight: 10}},
		2,
	)
	envLocality := map[string]int{"cam_person": part.GroupOf("cam")}

	var mu sync.Mutex
	postures := map[string]policy.Posture{}
	h := NewHierarchy(f, part, envLocality, func(_ context.Context, dev string, p policy.Posture, _ uint64) {
		mu.Lock()
		postures[dev] = p
		mu.Unlock()
	})
	if h.Locals() != 1 {
		t.Errorf("local controllers = %d, want 1 (only group 0 has a fully local rule)", h.Locals())
	}

	// A cam state change is local: handled without escalation.
	h.HandleDeviceEvent(context.Background(), device.Event{Device: "cam", Kind: device.EventStateChange, Detail: "person=no"})
	local, escalated := h.Metrics()
	if local != 1 || escalated != 0 {
		t.Errorf("after local event: local=%d escalated=%d", local, escalated)
	}
	mu.Lock()
	if p, ok := postures["plug"]; !ok || len(p.BlockCommands) != 1 {
		t.Errorf("local rule did not fire: %+v", postures)
	}
	mu.Unlock()

	// Alarm backdoor is globally relevant (global rule references
	// dev:alarm): escalates.
	h.HandleDeviceEvent(context.Background(), device.Event{Device: "alarm", Kind: device.EventBackdoorAccess})
	_, escalated = h.Metrics()
	if escalated != 1 {
		t.Errorf("escalated = %d, want 1", escalated)
	}
	// Plug backdoor also escalates and completes the global rule.
	h.HandleDeviceEvent(context.Background(), device.Event{Device: "plug", Kind: device.EventBackdoorAccess})
	mu.Lock()
	if p, ok := postures["window"]; !ok || !p.Isolate {
		t.Errorf("global rule did not fire: %+v", postures)
	}
	mu.Unlock()
}

func TestHierarchyGlobalDelayAccounting(t *testing.T) {
	d := policy.NewDomain()
	d.AddDevice("a", policy.ContextNormal, policy.ContextSuspicious)
	d.AddDevice("b", policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	// Cross rule: references both devices → global.
	f.AddRule(policy.Rule{
		Name: "cross",
		Conditions: []policy.Condition{
			policy.DeviceIs("a", policy.ContextSuspicious),
			policy.DeviceIs("b", policy.ContextSuspicious),
		},
		Device:   "a",
		Posture:  policy.Posture{Isolate: true},
		Priority: 1,
	})
	part := Partition([]string{"a", "b"}, nil, 1)
	h := NewHierarchy(f, part, nil, nil)
	h.GlobalDelay = 20 * time.Millisecond

	start := time.Now()
	h.HandleDeviceEvent(context.Background(), device.Event{Device: "a", Kind: device.EventBackdoorAccess})
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("escalation did not pay the global delay: %v", elapsed)
	}
}
