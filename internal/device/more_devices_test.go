package device

import (
	"strings"
	"testing"
	"time"

	"iotsec/internal/envsim"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

func TestSmartLockAuthAndStates(t *testing.T) {
	tb := newTestbed(t)
	lock := NewSmartLock("lock1", packet.MustParseIPv4("10.0.0.60"), "owner", "X9!long")
	tb.add(t, lock.Device)
	tb.net.Start()

	if resp, _ := tb.client.Call(lock.IP(), Request{Cmd: "UNLOCK"}); resp.OK {
		t.Fatal("unauthenticated unlock accepted")
	}
	resp, err := tb.client.Call(lock.IP(), Request{Cmd: "UNLOCK", User: "owner", Pass: "X9!long"})
	if err != nil || !resp.OK {
		t.Fatalf("owner unlock: %v %+v", err, resp)
	}
	if lock.Get("lock") != "unlocked" {
		t.Error("lock state not updated")
	}
	if resp, _ := tb.client.Call(lock.IP(), Request{Cmd: "LOCK", User: "owner", Pass: "X9!long"}); !resp.OK {
		t.Errorf("lock back failed: %+v", resp)
	}
	if lock.Profile.HasVuln(VulnOpenAccess) {
		t.Error("lock should have no open-access flaw")
	}
}

func TestSmartBulbDrivesLightAndSensorReads(t *testing.T) {
	tb := newTestbed(t)
	bulb := NewSmartBulb("bulb1", packet.MustParseIPv4("10.0.0.61"))
	sensor := NewLightSensor("ls1", packet.MustParseIPv4("10.0.0.62"))
	tb.add(t, bulb.Device)
	tb.add(t, sensor.Device)
	tb.env.Set("daylight", 0)
	tb.net.Start()
	tb.env.Run(2)

	// Dark room: sensor reads near zero.
	resp, err := tb.client.Call(sensor.IP(), Request{Cmd: "READ"})
	if err != nil || !resp.OK {
		t.Fatalf("sensor read: %v %+v", err, resp)
	}
	if resp.Data != "light=0" {
		t.Errorf("dark reading = %q", resp.Data)
	}
	// Bulb on: the sensor sees it THROUGH THE ROOM.
	if resp, _ := tb.client.Call(bulb.IP(), Request{Cmd: "ON", User: "hue", Pass: "hue"}); !resp.OK {
		t.Fatalf("bulb on: %+v", resp)
	}
	tb.env.Run(2)
	resp, _ = tb.client.Call(sensor.IP(), Request{Cmd: "READ"})
	if resp.Data != "light=400" {
		t.Errorf("lit reading = %q", resp.Data)
	}
	if sensor.Get("light") != "lit" {
		t.Errorf("sensor state = %q", sensor.Get("light"))
	}
	// Off again.
	if resp, _ := tb.client.Call(bulb.IP(), Request{Cmd: "OFF", User: "hue", Pass: "hue"}); !resp.OK {
		t.Fatalf("bulb off: %+v", resp)
	}
	tb.env.Run(2)
	if sensor.Get("light") != "dark" {
		t.Errorf("sensor did not darken: %q", sensor.Get("light"))
	}
}

func TestSmartOvenHeatsRoom(t *testing.T) {
	tb := newTestbed(t)
	oven := NewSmartOven("oven1", packet.MustParseIPv4("10.0.0.63"))
	tb.add(t, oven.Device)
	tb.net.Start()

	if resp, _ := tb.client.Call(oven.IP(), Request{Cmd: "ON"}); resp.OK {
		t.Fatal("oven accepted unauthenticated ON")
	}
	resp, err := tb.client.Call(oven.IP(), Request{Cmd: "ON", User: "chef", Pass: "chef"})
	if err != nil || !resp.OK {
		t.Fatalf("oven on: %v %+v", err, resp)
	}
	if tb.env.Get("oven_heat_rate") != 0.02 {
		t.Errorf("heat rate = %v", tb.env.Get("oven_heat_rate"))
	}
	before := tb.env.Get(envsim.VarTemperature)
	tb.env.Run(120)
	if after := tb.env.Get(envsim.VarTemperature); after <= before {
		t.Errorf("oven did not heat the room: %.2f -> %.2f", before, after)
	}
	if resp, _ := tb.client.Call(oven.IP(), Request{Cmd: "OFF", User: "chef", Pass: "chef"}); !resp.OK {
		t.Fatalf("oven off: %+v", resp)
	}
	if tb.env.Get("oven_power") != 0 {
		t.Error("oven power still drawn")
	}
}

func TestMotionSensorTracksOccupancy(t *testing.T) {
	tb := newTestbed(t)
	ms := NewMotionSensor("ms1", packet.MustParseIPv4("10.0.0.64"))
	tb.add(t, ms.Device)
	tb.net.Start()

	events := make(chan Event, 8)
	ms.SetEventSink(func(e Event) {
		select {
		case events <- e:
		default:
		}
	})
	tb.env.Set(envsim.VarOccupancy, 1)
	tb.env.Run(1)
	if ms.Get("presence") != "home" {
		t.Errorf("presence = %q", ms.Get("presence"))
	}
	tb.env.Set(envsim.VarOccupancy, 0)
	tb.env.Run(1)
	if ms.Get("presence") != "away" {
		t.Errorf("presence = %q", ms.Get("presence"))
	}
	// The transition emitted sensor events.
	var sawPresence bool
	for {
		select {
		case e := <-events:
			if e.Kind == EventSensor && strings.HasPrefix(e.Detail, "presence=") {
				sawPresence = true
			}
			continue
		default:
		}
		break
	}
	if !sawPresence {
		t.Error("no presence events emitted")
	}
}

func TestHandheldScannerPivot(t *testing.T) {
	tb := newTestbed(t)
	hh := NewHandheldScanner("hh1", packet.MustParseIPv4("10.0.0.65"))
	tb.add(t, hh.Device)

	// A probe listener on the LAN counts the scanner's sweep.
	probeIP := packet.MustParseIPv4("10.0.0.7")
	probed := make(chan struct{}, 64)
	victim := newProbeHost(t, tb, probeIP, probed)
	_ = victim
	tb.net.Start()

	// The unauthenticated firmware update (the logistics-firm entry
	// point).
	resp, err := tb.client.Call(hh.IP(), Request{Cmd: "UPDATE", Args: []string{"6.6-evil"}})
	if err != nil || !resp.OK {
		t.Fatalf("update: %v %+v", err, resp)
	}
	if hh.Get("firmware") != "6.6-evil" {
		t.Errorf("firmware = %q", hh.Get("firmware"))
	}
	// The implanted firmware scans the internal network.
	resp, err = tb.client.Call(hh.IP(), Request{Cmd: "SCAN_NET", Args: []string{"10.0.0.0"}})
	if err != nil || !resp.OK {
		t.Fatalf("scan: %v %+v", err, resp)
	}
	select {
	case <-probed:
	case <-time.After(2 * time.Second):
		t.Fatal("scan probes never reached the LAN host")
	}
	if resp, _ := tb.client.Call(hh.IP(), Request{Cmd: "SCAN_NET", Args: []string{"not-an-ip"}}); resp.OK {
		t.Error("bad prefix accepted")
	}
}

// newProbeHost attaches a host that signals on UDP/7 probes.
func newProbeHost(t *testing.T, tb *testbed, ip packet.IPv4Address, ch chan struct{}) *Client {
	t.Helper()
	st := NewClientStack(t, tb, ip)
	if err := st.Stack.HandleUDP(7, func(packet.IPv4Address, uint16, []byte) {
		select {
		case ch <- struct{}{}:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	return st
}

// NewClientStack attaches an extra plain host to the testbed.
func NewClientStack(t *testing.T, tb *testbed, ip packet.IPv4Address) *Client {
	t.Helper()
	st := netsim.NewStack("host-"+ip.String(), MACFor(ip), ip)
	tb.connect(st.Attach(tb.net))
	t.Cleanup(st.Stop)
	return &Client{Stack: st}
}

func TestCCTVFirmwareHelper(t *testing.T) {
	c := NewCCTV("c", packet.MustParseIPv4("10.0.0.70"), "KEY")
	if !strings.Contains(c.Firmware(), "rsa_private=KEY") {
		t.Errorf("firmware = %q", c.Firmware())
	}
	c.Stop()
}

func TestStateStringDeterministic(t *testing.T) {
	d := New("x", Profile{SKU: "s"}, MACFor(packet.MustParseIPv4("10.0.0.71")), packet.MustParseIPv4("10.0.0.71"))
	d.Set("b", "2")
	d.Set("a", "1")
	d.Set("c", "3")
	if got := d.StateString(); got != "a=1,b=2,c=3" {
		t.Errorf("state string = %q", got)
	}
	d.Stop()
}
