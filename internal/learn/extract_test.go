package learn

import (
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// extractionTestbed wires one device and a client on a flooding
// switch with a standard home environment.
func extractionTestbed(t *testing.T, d *device.Device, stateKey, user, pass string) *Testbed {
	t.Helper()
	n := netsim.NewNetwork()
	sw := netsim.NewSwitch("sw", 1)
	sw.SetMissBehavior(netsim.MissFlood)
	env := envsim.StandardHome()

	port, err := d.Attach(n)
	if err != nil {
		t.Fatal(err)
	}
	n.Connect(port, sw.AttachPort(n, 1), netsim.LinkOptions{})
	d.BindEnvironment(env)

	clientIP := packet.MustParseIPv4("10.0.0.200")
	st := netsim.NewStack("probe", device.MACFor(clientIP), clientIP)
	n.Connect(st.Attach(n), sw.AttachPort(n, 2), netsim.LinkOptions{})
	n.Start()
	t.Cleanup(func() {
		st.Stop()
		d.Stop()
		n.Stop()
	})
	return &Testbed{
		Client:   &device.Client{Stack: st, Timeout: time.Second},
		Device:   d,
		Env:      env,
		Disc:     envsim.StandardDiscretizer(),
		StateKey: stateKey,
		User:     user,
		Pass:     pass,
	}
}

func TestExtractBulbModel(t *testing.T) {
	bulb := device.NewSmartBulb("bulb", packet.MustParseIPv4("10.0.0.10"))
	tb := extractionTestbed(t, bulb.Device, "light", "hue", "hue")
	// Darken the ambient so the lamp's effect is observable.
	tb.Env.Set("daylight", 0)

	m, err := ExtractModel(tb, "bulb-extracted", []string{"ON", "OFF"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Initial != "off" {
		t.Errorf("initial = %q", m.Initial)
	}
	if got := m.Transitions["ON"]["off"]; got != "on" {
		t.Errorf("ON from off -> %q", got)
	}
	if got := m.Transitions["OFF"]["on"]; got != "off" {
		t.Errorf("OFF from on -> %q", got)
	}
	// The empirical effect: while on, the room is lit.
	var lit bool
	for _, e := range m.Effects["on"] {
		if e.Var == envsim.VarLight && e.Level == "lit" {
			lit = true
		}
	}
	if !lit {
		t.Errorf("effects[on] = %v, want light=lit", m.Effects["on"])
	}
}

func TestExtractWindowModel(t *testing.T) {
	win := device.NewWindowActuator("win", packet.MustParseIPv4("10.0.0.11"))
	tb := extractionTestbed(t, win.Device, "window", "admin", device.WindowPassword)

	m, err := ExtractModel(tb, "window-extracted", []string{"OPEN", "CLOSE"})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Transitions["OPEN"]["closed"]; got != "open" {
		t.Errorf("OPEN from closed -> %q", got)
	}
	var opens bool
	for _, e := range m.Effects["open"] {
		if e.Var == envsim.VarWindowOpen && e.Level == "open" {
			opens = true
		}
	}
	if !opens {
		t.Errorf("effects[open] = %v", m.Effects["open"])
	}
}

func TestExtractedModelUsableByFuzzerAndSearch(t *testing.T) {
	// Extract a live bulb, then plug the model into the abstract
	// world next to the hand-written light sensor: the implicit
	// coupling must still be discoverable.
	bulb := device.NewSmartBulb("bulb", packet.MustParseIPv4("10.0.0.12"))
	tb := extractionTestbed(t, bulb.Device, "light", "hue", "hue")
	tb.Env.Set("daylight", 0)
	extracted, err := ExtractModel(tb, "bulb-extracted", []string{"ON", "OFF"})
	if err != nil {
		t.Fatal(err)
	}

	lib := StandardLibrary()
	sensorModel, _ := lib.Get("light-sensor")
	build := func() *World {
		w := NewWorld(map[string]string{"light": "dark"})
		w.AddInstance("bulb", extracted)
		w.AddInstance("sensor", sensorModel)
		return w
	}
	result := NewFuzzer(build, 9).Run(100)
	if _, ok := result.Discovered["bulb.ON->sensor=lit"]; !ok {
		t.Errorf("extracted model missed the implicit coupling: %v", result.Interactions())
	}
}

func TestExtractModelRejectsUnauthorized(t *testing.T) {
	bulb := device.NewSmartBulb("bulb", packet.MustParseIPv4("10.0.0.13"))
	tb := extractionTestbed(t, bulb.Device, "light", "hue", "wrong-password")
	m, err := ExtractModel(tb, "bulb-x", []string{"ON", "OFF"})
	if err != nil {
		t.Fatalf("extraction errored: %v", err)
	}
	// Unauthorized commands are skipped, so no transitions are
	// learned — the model is just the initial state.
	if len(m.Transitions) != 0 {
		t.Errorf("transitions learned without credentials: %v", m.Transitions)
	}
}
