package mbox

import (
	"strings"
	"testing"

	"iotsec/internal/journal"
)

// bombElement panics on every frame — a stand-in for a buggy
// micro-security-function that must never take the gateway down.
type bombElement struct{ name string }

func (b *bombElement) Name() string             { return b.name }
func (b *bombElement) Process(*Context) Verdict { panic("boom: " + b.name) }

// TestPipelinePanicFailClosed: a panicking element is contained and
// the frame is dropped (the default fail-closed stance), downstream
// elements never see it, and the panic is counted and journaled.
func TestPipelinePanicFailClosed(t *testing.T) {
	journalStart, _ := journal.Default.Stats()
	bomb := &bombElement{name: "bomb"}
	after := &staticElement{name: "after", verdict: Forward}
	p := NewPipeline(bomb, after)
	if m := p.FailMode(); m != FailClosed {
		t.Fatalf("default fail mode = %v, want FailClosed", m)
	}
	if v := p.Process(testCtx(t, ToDevice, "x", 80)); v != Drop {
		t.Errorf("verdict = %v, want Drop (fail-closed)", v)
	}
	if after.callCount() != 0 {
		t.Errorf("downstream element ran %d times after panic+drop", after.callCount())
	}
	stats := p.Stats()
	if stats[0].Panics != 1 || stats[0].Dropped != 1 {
		t.Errorf("bomb stats = %+v, want 1 panic, 1 drop", stats[0])
	}

	// The containment event lands in the forensic journal.
	found := false
	for _, e := range journal.Default.Snapshot(journal.Filter{Type: journal.TypeMboxPanic}) {
		if e.Seq > journalStart && strings.Contains(e.Detail, "bomb") && strings.Contains(e.Detail, "fail-closed") {
			found = true
		}
	}
	if !found {
		t.Error("no mbox-panic journal event for fail-closed containment")
	}
}

// TestPipelinePanicFailStatic: with the availability-first stance the
// frame survives the panicking element unmodified and the rest of the
// chain still runs.
func TestPipelinePanicFailStatic(t *testing.T) {
	journalStart, _ := journal.Default.Stats()
	bomb := &bombElement{name: "bomb2"}
	after := &staticElement{name: "after", verdict: Forward}
	p := NewPipeline(bomb, after)
	p.SetFailMode(FailStatic)
	if m := p.FailMode(); m != FailStatic {
		t.Fatalf("fail mode = %v, want FailStatic", m)
	}
	for i := 0; i < 3; i++ {
		if v := p.Process(testCtx(t, ToDevice, "x", 80)); v != Forward {
			t.Errorf("verdict = %v, want Forward (fail-static)", v)
		}
	}
	if after.callCount() != 3 {
		t.Errorf("downstream element ran %d times, want 3 (fail-static keeps the chain alive)", after.callCount())
	}
	if stats := p.Stats(); stats[0].Panics != 3 {
		t.Errorf("bomb stats = %+v, want 3 panics", stats[0])
	}
	found := false
	for _, e := range journal.Default.Snapshot(journal.Filter{Type: journal.TypeMboxPanic}) {
		if e.Seq > journalStart && strings.Contains(e.Detail, "bomb2") && strings.Contains(e.Detail, "fail-static") {
			found = true
		}
	}
	if !found {
		t.Error("no mbox-panic journal event for fail-static containment")
	}
}
