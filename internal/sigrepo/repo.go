package sigrepo

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/telemetry"
)

// Notification announces a newly cleared signature to a subscriber.
type Notification struct {
	Signature Signature
	// Priority is true for contributors (the paper's incentive:
	// those who share get told first).
	Priority bool
}

// Subscriber receives notifications for a SKU. Must not block.
type Subscriber func(n Notification)

// Repository is the in-process core: per-SKU signature storage,
// validation, anonymization, reputation-weighted voting with
// quarantine, and contributor-priority notification. The TCP server
// wraps this.
type Repository struct {
	anon *Anonymizer
	rep  *ReputationSystem

	mu      sync.Mutex
	nextID  int
	bySKU   map[string][]*Signature
	byID    map[string]*Signature
	votes   map[string]map[string]bool // sigID → pseudonym → voted up?
	subs    map[string][]subscription
	contrib map[string]bool // pseudonyms that have ever contributed

	// ClearScore releases a quarantined signature at/above this
	// weighted score (default 1.0 ≈ two average-trust upvotes).
	ClearScore float64
	// RejectScore retires a signature at/below this (default -1.0).
	RejectScore float64
	// PriorityLag delays non-contributor notifications (incentive
	// mechanism); contributors get them immediately. Default 0 in
	// process-level use; the server sets a real lag.
	PriorityLag time.Duration
}

type subscription struct {
	pseudonym string
	fn        Subscriber
}

// NewRepository builds a repository.
func NewRepository(salt string) *Repository {
	return &Repository{
		anon:        NewAnonymizer(salt),
		rep:         NewReputationSystem(),
		bySKU:       make(map[string][]*Signature),
		byID:        make(map[string]*Signature),
		votes:       make(map[string]map[string]bool),
		subs:        make(map[string][]subscription),
		contrib:     make(map[string]bool),
		ClearScore:  1.0,
		RejectScore: -1.0,
	}
}

// Reputation exposes the reputation system (for experiments).
func (r *Repository) Reputation() *ReputationSystem { return r.rep }

// Pseudonym maps an identity (e.g., an enterprise account) to its
// anonymous handle.
func (r *Repository) Pseudonym(identity string) string { return r.anon.Pseudonym(identity) }

// Publish validates, anonymizes and stores a signature. It enters
// quarantined unless the contributor's reputation already exceeds the
// clear threshold's worth of trust. The context carries the causal
// trace of the detection that distilled the signature.
func (r *Repository) Publish(ctx context.Context, identity, sku, ruleText, description string) (*Signature, error) {
	ctx, span := telemetry.StartSpan(ctx, "sigrepo.publish")
	span.SetAttr("sku", sku)
	defer span.End()
	scrubbed := r.anon.ScrubRule(ruleText)
	if err := Validate(sku, scrubbed); err != nil {
		mPublishRejected.Inc()
		return nil, err
	}
	pseudo := r.anon.Pseudonym(identity)

	r.mu.Lock()
	r.nextID++
	sig := &Signature{
		ID:          fmt.Sprintf("sig-%06d", r.nextID),
		SKU:         sku,
		Rule:        scrubbed,
		Description: r.anon.ScrubDescription(description),
		Contributor: pseudo,
		Submitted:   time.Now(),
		Quarantined: true,
	}
	// Highly trusted contributors skip quarantine: their track record
	// is the evidence.
	if r.rep.Score(pseudo) >= 0.8 {
		sig.Quarantined = false
	}
	r.bySKU[sku] = append(r.bySKU[sku], sig)
	r.byID[sig.ID] = sig
	r.votes[sig.ID] = make(map[string]bool)
	r.contrib[pseudo] = true
	cleared := !sig.Quarantined
	cp := *sig
	r.mu.Unlock()

	mPublishes.Inc()
	journal.Record(ctx, journal.TypeSigPublish, journal.Info, sku,
		fmt.Sprintf("%s by %s (quarantined=%v)", cp.ID, pseudo, cp.Quarantined))
	if cleared {
		mCleared.Inc()
		r.notify(cp)
	}
	return &cp, nil
}

// Vote records a reputation-weighted community verdict on a
// signature. When the accumulated score clears or rejects the
// signature, contributor reputations update and (on clearing)
// subscribers are notified.
func (r *Repository) Vote(ctx context.Context, identity, sigID string, up bool) (*Signature, error) {
	ctx, span := telemetry.StartSpan(ctx, "sigrepo.vote")
	span.SetAttr("sig", sigID)
	defer span.End()
	pseudo := r.anon.Pseudonym(identity)
	weight := r.rep.VoteWeight(pseudo)

	r.mu.Lock()
	sig, ok := r.byID[sigID]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownSignature, sigID)
	}
	if _, dup := r.votes[sigID][pseudo]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s on %s", ErrDuplicateVote, pseudo, sigID)
	}
	if sig.Contributor == pseudo {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: self-vote on %s", ErrDuplicateVote, sigID)
	}
	r.votes[sigID][pseudo] = up
	if up {
		sig.Score += weight
	} else {
		sig.Score -= weight
	}

	var clearedCopy *Signature
	var outcome *bool
	switch {
	case sig.Quarantined && sig.Score >= r.ClearScore:
		sig.Quarantined = false
		cp := *sig
		clearedCopy = &cp
		v := true
		outcome = &v
	case sig.Score <= r.RejectScore:
		// Retire: remove from the SKU feed.
		skuSigs := r.bySKU[sig.SKU]
		for i, s := range skuSigs {
			if s.ID == sigID {
				r.bySKU[sig.SKU] = append(skuSigs[:i], skuSigs[i+1:]...)
				break
			}
		}
		delete(r.byID, sigID)
		v := false
		outcome = &v
	}
	contributor := sig.Contributor
	var voterSides map[string]bool
	if outcome != nil {
		voterSides = make(map[string]bool, len(r.votes[sigID]))
		for voter, votedUp := range r.votes[sigID] {
			voterSides[voter] = votedUp
		}
	}
	cp := *sig
	r.mu.Unlock()

	mVotes.Inc()
	verdict := "down"
	if up {
		verdict = "up"
	}
	journal.Record(ctx, journal.TypeSigVote, journal.Debug, cp.SKU,
		fmt.Sprintf("%s %s by %s (score %.2f)", sigID, verdict, pseudo, cp.Score))
	if outcome != nil {
		if *outcome {
			mCleared.Inc()
		} else {
			mRetired.Inc()
		}
		r.rep.RecordOutcome(contributor, *outcome)
		// Credence-style voter accountability: voters on the wrong
		// side of the settled outcome burn reputation, voters on the
		// right side earn it. Sock puppets that upvote poison lose
		// their voting power after the first refutation.
		for voter, votedUp := range voterSides {
			r.rep.RecordOutcome(voter, votedUp == *outcome)
		}
	}
	if clearedCopy != nil {
		r.notify(*clearedCopy)
	}
	return &cp, nil
}

// Subscribe registers for cleared signatures on a SKU. The returned
// cancel removes the subscription.
func (r *Repository) Subscribe(identity, sku string, fn Subscriber) (cancel func()) {
	pseudo := r.anon.Pseudonym(identity)
	sub := subscription{pseudonym: pseudo, fn: fn}
	r.mu.Lock()
	r.subs[sku] = append(r.subs[sku], sub)
	idx := len(r.subs[sku]) - 1
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		subs := r.subs[sku]
		if idx < len(subs) && subs[idx].pseudonym == pseudo {
			r.subs[sku] = append(subs[:idx], subs[idx+1:]...)
		}
	}
}

// notify fans a cleared signature out: contributors first, others
// after PriorityLag.
func (r *Repository) notify(sig Signature) {
	r.mu.Lock()
	subs := append([]subscription(nil), r.subs[sig.SKU]...)
	lag := r.PriorityLag
	contrib := make(map[string]bool, len(subs))
	for _, s := range subs {
		contrib[s.pseudonym] = r.contrib[s.pseudonym]
	}
	r.mu.Unlock()

	for _, s := range subs {
		isContrib := contrib[s.pseudonym]
		n := Notification{Signature: sig, Priority: isContrib}
		mNotifies.Inc()
		if isContrib || lag == 0 {
			s.fn(n)
			continue
		}
		sub := s
		time.AfterFunc(lag, func() { sub.fn(n) })
	}
}

// Fetch lists cleared signatures for a SKU, newest first.
func (r *Repository) Fetch(sku string) []Signature {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Signature
	for _, s := range r.bySKU[sku] {
		if !s.Quarantined {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Submitted.After(out[j].Submitted) })
	return out
}

// SKUs lists SKUs with at least one signature (cleared or not).
func (r *Repository) SKUs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.bySKU))
	for sku, sigs := range r.bySKU {
		if len(sigs) > 0 {
			out = append(out, sku)
		}
	}
	sort.Strings(out)
	return out
}

// Stats reports totals for diagnostics.
func (r *Repository) Stats() (total, quarantined int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.byID {
		total++
		if s.Quarantined {
			quarantined++
		}
	}
	return total, quarantined
}
