package iotsec_test

import (
	"fmt"
	"testing"
	"time"

	"iotsec/internal/experiment"
	"iotsec/internal/ids"
	"iotsec/internal/learn"
	"iotsec/internal/mbox"
	"iotsec/internal/openflow"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
	"iotsec/internal/telemetry"
)

// --- Paper tables & figures: one benchmark per artifact. Each runs
// the full experiment driver and asserts its headline outcome, so
// `go test -bench=.` regenerates every row the paper reports. ---

func BenchmarkTable1VulnerabilityCases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) != 7 {
			b.Fatalf("rows = %d", len(tbl.Rows))
		}
	}
}

func BenchmarkTable2CrossDevicePolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiment.RunTable2(int64(i + 1))
		if len(tbl.Rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFigure1DefenseComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2Architecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3PolicyFSM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4PasswordProxy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5CrossDevicePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure5(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

func BenchmarkAblationStatePruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.RunAblationStatePruning()
	}
}

func BenchmarkAblationHierarchicalControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.RunAblationHierarchy(2*time.Millisecond, 11)
	}
}

func BenchmarkAblationMicroMbox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAblationMicroMbox(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFuzzCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.RunAblationFuzzCoverage(5)
	}
}

func BenchmarkAblationReputation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.RunAblationReputation(int64(i + 3))
	}
}

func BenchmarkAblationConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.RunAblationConsistency(int64(i + 7))
	}
}

// --- Component microbenchmarks: the per-packet costs that determine
// whether per-device µmboxes are affordable (§5.2). ---

func benchPacket() []byte {
	src, dst := packet.MustParseIPv4("10.0.0.1"), packet.MustParseIPv4("10.0.0.2")
	tcp := &packet.TCP{SrcPort: 40000, DstPort: 80, Flags: packet.TCPPsh | packet.TCPAck}
	tcp.SetNetworkForChecksum(src, dst)
	buf := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(buf,
		&packet.Ethernet{SrcMAC: packet.MACAddress{2, 0, 0, 0, 0, 1}, DstMAC: packet.MACAddress{2, 0, 0, 0, 0, 2}, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
		tcp,
		packet.NewPayload([]byte("IOT/1 STATUS\nauth: admin:admin\n")),
	)
	if err != nil {
		panic(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func BenchmarkPacketDecode(b *testing.B) {
	raw := benchPacket()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := packet.Decode(raw, packet.LayerTypeEthernet)
		if p.TCP() == nil {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkPacketSerialize(b *testing.B) {
	src, dst := packet.MustParseIPv4("10.0.0.1"), packet.MustParseIPv4("10.0.0.2")
	payload := packet.NewPayload([]byte("IOT/1 STATUS\n"))
	buf := packet.NewSerializeBuffer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tcp := &packet.TCP{SrcPort: 40000, DstPort: 80}
		tcp.SetNetworkForChecksum(src, dst)
		err := packet.SerializeLayers(buf,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
			tcp, payload,
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowTableLookup(b *testing.B) {
	raw := benchPacket()
	decoded := packet.Decode(raw, packet.LayerTypeEthernet)
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			tbl := openflow.NewFlowTable()
			for i := 0; i < size; i++ {
				tbl.Insert(openflow.FlowEntry{
					Match:    openflow.MatchAll().WithTpDst(uint16(i + 1000)),
					Priority: uint16(i),
					Actions:  []openflow.Action{openflow.Output(1)},
				})
			}
			// The matching entry sits at the bottom.
			tbl.Insert(openflow.FlowEntry{
				Match:   openflow.MatchAll().WithTpDst(80),
				Actions: []openflow.Action{openflow.Output(2)},
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := tbl.Lookup(decoded, 1, len(raw)); !ok {
					b.Fatal("miss")
				}
			}
		})
	}
}

func BenchmarkIDSEngine(b *testing.B) {
	raw := benchPacket()
	decoded := packet.Decode(raw, packet.LayerTypeEthernet)
	for _, nRules := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("rules=%d", nRules), func(b *testing.B) {
			rules := make([]*ids.Rule, 0, nRules)
			for i := 0; i < nRules; i++ {
				r, err := ids.ParseRule(fmt.Sprintf(
					`alert tcp any any -> any 80 (msg:"r%d"; content:"needle%04d"; sid:%d;)`, i, i, i+1))
				if err != nil {
					b.Fatal(err)
				}
				rules = append(rules, r)
			}
			// One rule that actually matches.
			hit, _ := ids.ParseRule(`alert tcp any any -> any 80 (msg:"creds"; content:"admin:admin"; sid:99999;)`)
			rules = append(rules, hit)
			engine := ids.NewEngine(rules)
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(engine.Match(decoded)) != 1 {
					b.Fatal("wrong alert count")
				}
			}
		})
	}
}

func BenchmarkMboxPipeline(b *testing.B) {
	raw := benchPacket()
	rules, _ := ids.ParseRules(`alert tcp any any -> any 80 (msg:"creds"; content:"admin:admin"; sid:1;)`)
	pipe := mbox.NewPipeline(
		&mbox.Logger{},
		mbox.NewStatefulFirewall(80),
		&mbox.IDSElement{Engine: ids.NewEngine(rules)},
	)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &mbox.Context{
			Frame:  raw,
			Packet: packet.Decode(raw, packet.LayerTypeEthernet),
			Dir:    mbox.ToDevice,
		}
		pipe.Process(ctx)
	}
}

func BenchmarkPolicyLookup(b *testing.B) {
	d := policy.NewDomain()
	for i := 0; i < 40; i++ {
		d.AddDevice(fmt.Sprintf("dev%02d", i))
	}
	d.AddEnvVar("occupancy", "away", "home")
	f := policy.NewFSM(d)
	for i := 0; i < 10; i++ {
		f.AddRule(policy.Rule{
			Name:       fmt.Sprintf("r%d", i),
			Conditions: []policy.Condition{policy.DeviceIs(fmt.Sprintf("dev%02d", i), policy.ContextSuspicious)},
			Device:     fmt.Sprintf("dev%02d", (i+1)%40),
			Posture:    policy.Posture{BlockCommands: []string{"ON"}},
			Priority:   5,
		})
	}
	state := d.DefaultState()
	compiled, _ := f.Compile(0)

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = f.Lookup(state)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = compiled.Lookup(state)
		}
	})
}

// BenchmarkTelemetryOverhead quantifies the cost of the observability
// subsystem on the hot path: a bare counter increment, and the µmbox
// pipeline with instrumentation on vs off. The paper's per-device
// µmbox argument (§5.2) only holds if telemetry is close to free —
// the counter increment must stay under 20ns and the instrumented
// pipeline within 5% of the bare one.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("counter-inc", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		c := reg.NewCounter("iotsec_bench_ops_total", "bench counter")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})

	mkPipe := func() (*mbox.Pipeline, *mbox.Context) {
		raw := benchPacket()
		rules, _ := ids.ParseRules(`alert tcp any any -> any 80 (msg:"creds"; content:"admin:admin"; sid:1;)`)
		pipe := mbox.NewPipeline(
			&mbox.Logger{},
			mbox.NewStatefulFirewall(80),
			&mbox.IDSElement{Engine: ids.NewEngine(rules)},
		)
		ctx := &mbox.Context{
			Frame:  raw,
			Packet: packet.Decode(raw, packet.LayerTypeEthernet),
			Dir:    mbox.ToDevice,
		}
		return pipe, ctx
	}

	b.Run("pipeline-bare", func(b *testing.B) {
		pipe, ctx := mkPipe()
		pipe.Instrument(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipe.Process(ctx)
		}
	})
	b.Run("pipeline-instrumented", func(b *testing.B) {
		pipe, ctx := mkPipe()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipe.Process(ctx)
		}
	})
}

func BenchmarkAttackGraphSearch(b *testing.B) {
	build := func() *learn.World {
		lib := learn.StandardLibrary()
		w := learn.NewWorld(map[string]string{
			"temperature": "normal", "light": "dark", "smoke": "no",
			"window": "closed", "door": "locked",
		})
		for _, spec := range []struct{ name, class string }{
			{"plug", "plug"}, {"window", "window"}, {"bulb", "bulb"},
			{"firealarm", "fire-alarm"}, {"oven", "oven"}, {"lock", "lock"},
		} {
			m, _ := lib.Get(spec.class)
			w.AddInstance(spec.name, m)
		}
		return w
	}
	search := &learn.AttackSearch{
		Build:      build,
		Vulnerable: map[string]bool{"plug": true},
		MaxDepth:   8,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path, _ := search.FindAttack(learn.GoalEnv("window", "open"))
		if path == nil {
			b.Fatal("attack not found")
		}
	}
}
