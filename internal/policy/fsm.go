package policy

import (
	"fmt"
	"sort"
	"strings"
)

// Condition is one equality predicate over a state variable.
type Condition struct {
	// Var uses the "dev:<name>" or "env:<name>" convention.
	Var string
	// Value is the required context/level.
	Value string
}

// DeviceIs builds a device-context condition.
func DeviceIs(device string, ctx SecurityContext) Condition {
	return Condition{Var: "dev:" + device, Value: string(ctx)}
}

// EnvIs builds an environment-level condition.
func EnvIs(envVar, level string) Condition {
	return Condition{Var: "env:" + envVar, Value: level}
}

// holds evaluates the condition against a state.
func (c Condition) holds(s State) bool {
	if name, ok := strings.CutPrefix(c.Var, "dev:"); ok {
		return string(s.Contexts[name]) == c.Value
	}
	if name, ok := strings.CutPrefix(c.Var, "env:"); ok {
		return s.Env[name] == c.Value
	}
	return false
}

// Rule assigns a device a posture in every state satisfying all its
// conditions (an empty condition list matches every state — the
// baseline posture).
type Rule struct {
	Name       string
	Conditions []Condition
	Device     string
	Posture    Posture
	// Priority orders rules: the highest priority matching rule's
	// posture wins; same-priority compatible postures merge;
	// same-priority conflicting postures are reported by Conflicts.
	Priority int
}

// matches evaluates the full conjunction.
func (r Rule) matches(s State) bool {
	for _, c := range r.Conditions {
		if !c.holds(s) {
			return false
		}
	}
	return true
}

// FSM is the compiled policy: a domain plus rules. Lookup resolves
// the posture of every device in a given state.
type FSM struct {
	Domain *Domain
	rules  []Rule
}

// NewFSM builds an empty policy over the domain.
func NewFSM(d *Domain) *FSM { return &FSM{Domain: d} }

// AddRule appends a rule.
func (f *FSM) AddRule(r Rule) { f.rules = append(f.rules, r) }

// Rules lists the rules.
func (f *FSM) Rules() []Rule { return f.rules }

// Lookup resolves every declared device's posture in state s: per
// device, the highest-priority matching rules win; equal-priority
// winners merge. Devices with no matching rule get the zero (allow)
// posture.
func (f *FSM) Lookup(s State) map[string]Posture {
	out := make(map[string]Posture, len(f.Domain.deviceContexts))
	type winner struct {
		priority int
		posture  Posture
		found    bool
	}
	best := make(map[string]*winner)
	for _, r := range f.rules {
		if !r.matches(s) {
			continue
		}
		w := best[r.Device]
		switch {
		case w == nil || r.Priority > w.priority:
			best[r.Device] = &winner{priority: r.Priority, posture: r.Posture, found: true}
		case r.Priority == w.priority:
			w.posture = w.posture.Merge(r.Posture)
		}
	}
	for dev := range f.Domain.deviceContexts {
		if w := best[dev]; w != nil {
			out[dev] = w.posture
		} else {
			out[dev] = Posture{}
		}
	}
	return out
}

// ReferencedVars lists the state variables any rule conditions on —
// the support of the policy function. Everything else is independent
// and prunable.
func (f *FSM) ReferencedVars() []string {
	seen := map[string]bool{}
	for _, r := range f.rules {
		for _, c := range r.Conditions {
			seen[c.Var] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Conflict reports two same-priority rules that can both match some
// state yet assign the same device incompatible postures. (Merge
// handles compatible overlaps; a conflict means merging is still
// order-dependent or semantically contradictory — here: differing
// Isolate flags, or one blocking a command the other's modules must
// pass.)
type Conflict struct {
	RuleA, RuleB string
	Device       string
	Example      State
	Reason       string
}

// Conflicts analyzes all rule pairs.
func (f *FSM) Conflicts() []Conflict {
	var out []Conflict
	for i := 0; i < len(f.rules); i++ {
		for j := i + 1; j < len(f.rules); j++ {
			a, b := f.rules[i], f.rules[j]
			if a.Device != b.Device || a.Priority != b.Priority {
				continue
			}
			ex, compatible := jointState(f.Domain, a, b)
			if !compatible {
				continue
			}
			if reason := incompatible(a.Posture, b.Posture); reason != "" {
				out = append(out, Conflict{
					RuleA: a.Name, RuleB: b.Name, Device: a.Device,
					Example: ex, Reason: reason,
				})
			}
		}
	}
	return out
}

// jointState finds a state satisfying both rules' conditions, if the
// conjunction is satisfiable.
func jointState(d *Domain, a, b Rule) (State, bool) {
	required := map[string]string{}
	for _, c := range append(append([]Condition{}, a.Conditions...), b.Conditions...) {
		if prev, ok := required[c.Var]; ok && prev != c.Value {
			return State{}, false
		}
		required[c.Var] = c.Value
	}
	s := d.defaultState()
	for v, val := range required {
		if name, ok := strings.CutPrefix(v, "dev:"); ok {
			s.Contexts[name] = SecurityContext(val)
		} else if name, ok := strings.CutPrefix(v, "env:"); ok {
			s.Env[name] = val
		}
	}
	return s, true
}

// incompatible explains why two postures cannot merge cleanly ("" if
// they can).
func incompatible(p, q Posture) string {
	if p.Isolate != q.Isolate {
		return "one rule isolates the device, the other serves it"
	}
	// A command blocked by one but required passable by the other's
	// context-gate config is contradictory.
	blocked := map[string]bool{}
	for _, c := range p.BlockCommands {
		blocked[c] = true
	}
	for _, m := range q.Modules {
		if m.Kind == "context-gate" {
			if allow, ok := m.Config["allow"]; ok && blocked[allow] {
				return fmt.Sprintf("command %s both blocked and explicitly allowed", allow)
			}
		}
	}
	for _, c := range q.BlockCommands {
		for _, m := range p.Modules {
			if m.Kind == "context-gate" {
				if allow, ok := m.Config["allow"]; ok && allow == c {
					return fmt.Sprintf("command %s both blocked and explicitly allowed", c)
				}
			}
		}
	}
	return ""
}
