package forensics

import (
	"strings"
	"testing"
	"time"

	"iotsec/internal/journal"
)

// TestAssembleFleetTimeline: events for one trace scattered across two
// shard journals merge into a single wall-clock-ordered story, with
// per-shard sequence order preserved and chain completeness evaluated
// on the union — the failover-crosses-a-rehoming case.
func TestAssembleFleetTimeline(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	ev := func(seq uint64, at time.Duration, typ journal.Type, dev string) journal.Event {
		return journal.Event{Seq: seq, TraceID: 7, Wall: base.Add(at), Type: typ,
			Severity: journal.Warn, Device: dev}
	}
	byShard := map[string][]journal.Event{
		// The dying shard saw the detection; its local seqs are HIGH
		// (long-lived journal) while the survivor's are low — cross-shard
		// order must come from wall clocks, not sequence numbers.
		"shard-a": {
			ev(9001, 0, journal.TypeAnomaly, "cam"),
			ev(9002, 10*time.Millisecond, journal.TypePosture, "cam"),
		},
		"shard-b": {
			ev(3, 20*time.Millisecond, journal.TypeFlowMod, "cam"),
			ev(4, 30*time.Millisecond, journal.TypeMboxReconfig, "cam"),
		},
		// A shard with no events for this trace contributes nothing.
		"shard-c": {
			{Seq: 1, TraceID: 99, Wall: base, Type: journal.TypeAnomaly, Device: "other"},
		},
	}
	tl := AssembleFleetTimeline(7, byShard)
	if len(tl.Shards) != 2 || tl.Shards[0] != "shard-a" || tl.Shards[1] != "shard-b" {
		t.Fatalf("Shards = %v, want the two contributors sorted", tl.Shards)
	}
	if len(tl.Events) != 4 {
		t.Fatalf("merged %d events, want 4", len(tl.Events))
	}
	wantOrder := []journal.Type{journal.TypeAnomaly, journal.TypePosture, journal.TypeFlowMod, journal.TypeMboxReconfig}
	for i, typ := range wantOrder {
		if tl.Events[i].Type != typ {
			t.Fatalf("event[%d] = %s, want %s (wall-clock merge order)", i, tl.Events[i].Type, typ)
		}
	}
	if tl.Kind != KindAnomaly {
		t.Fatalf("Kind = %s, want anomaly (from the opening event)", tl.Kind)
	}
	if !tl.Complete {
		t.Fatal("union closes detect→policy→enforce; Complete must be true across shards")
	}
	chain := tl.Chain()
	if !strings.Contains(chain, "shard-a:anomaly(cam)") || !strings.Contains(chain, "shard-b:flow-mod(cam)") {
		t.Fatalf("Chain rendering lost shard tags: %s", chain)
	}
}

// TestAssembleFleetTimelineTieBreaks: equal wall clocks resolve by
// shard then sequence, deterministically.
func TestAssembleFleetTimelineTieBreaks(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	byShard := map[string][]journal.Event{
		"b": {{Seq: 1, TraceID: 5, Wall: base, Type: journal.TypePosture}},
		"a": {
			{Seq: 2, TraceID: 5, Wall: base, Type: journal.TypeAnomaly},
			{Seq: 1, TraceID: 5, Wall: base, Type: journal.TypeDeviceEvent},
		},
	}
	tl := AssembleFleetTimeline(5, byShard)
	if len(tl.Events) != 3 {
		t.Fatalf("merged %d events, want 3", len(tl.Events))
	}
	// All same wall: a/1, a/2, b/1.
	if tl.Events[0].Shard != "a" || tl.Events[0].Seq != 1 ||
		tl.Events[1].Shard != "a" || tl.Events[1].Seq != 2 ||
		tl.Events[2].Shard != "b" {
		t.Fatalf("tie-break order wrong: %s", tl.Chain())
	}
	// Determinism: re-assembly from the same inputs is identical.
	if again := AssembleFleetTimeline(5, byShard); again.Chain() != tl.Chain() {
		t.Fatal("assembly is not deterministic")
	}
}

// TestAssembleFleetTimelineFailoverKind: a recovery chain spanning the
// supervisor (survivor shard) and the re-homed partition is classified
// and completeness-checked as a failover.
func TestAssembleFleetTimelineFailoverKind(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	byShard := map[string][]journal.Event{
		"global": {
			{Seq: 1, TraceID: 3, Wall: base, Type: journal.TypeCtrlFailover, Severity: journal.Critical},
			{Seq: 2, TraceID: 3, Wall: base.Add(time.Millisecond), Type: journal.TypeFlowMod},
		},
		"survivor": {
			{Seq: 1, TraceID: 3, Wall: base.Add(2 * time.Millisecond), Type: journal.TypeCtrlRehomed},
			{Seq: 2, TraceID: 3, Wall: base.Add(3 * time.Millisecond), Type: journal.TypeCtrlRecovered},
		},
	}
	tl := AssembleFleetTimeline(3, byShard)
	if tl.Kind != KindFailover {
		t.Fatalf("Kind = %s, want controller-failover", tl.Kind)
	}
	if !tl.Complete {
		t.Fatal("failover→rehomed→recovered union must be complete")
	}
	// Drop the recovery tail: incomplete.
	byShard["survivor"] = byShard["survivor"][:1]
	if tl := AssembleFleetTimeline(3, byShard); tl.Complete {
		t.Fatal("chain without recovery-complete must not be complete")
	}
}
