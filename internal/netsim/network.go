package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// activity counts fabric work in flight: frames queued on port
// inboxes, frames delayed on link latency/bandwidth timers, and
// frames currently inside a HandleFrame call. Because every frame a
// handler emits is counted before the handler's own frame is
// released, the counter only reaches zero when the whole causal
// cascade has drained — which is exactly the barrier Quiesce needs.
type activity struct {
	n atomic.Int64
}

func (a *activity) add(d int64) { a.n.Add(d) }
func (a *activity) idle() bool  { return a.n.Load() == 0 }

// Tap observes every frame crossing a link, before loss is applied.
// Taps must be fast and must not modify the frame.
type Tap func(src, dst *Port, frame Frame)

// tapSet fans frames out to registered taps.
type tapSet struct {
	mu   sync.RWMutex
	taps []Tap
}

func (t *tapSet) observe(src, dst *Port, frame Frame) {
	t.mu.RLock()
	taps := t.taps
	t.mu.RUnlock()
	for _, tap := range taps {
		tap(src, dst, frame)
	}
}

// Network is the virtual fabric: a registry of nodes and the links
// between their ports.
type Network struct {
	mu      sync.Mutex
	nodes   map[string]Node
	ports   []*Port
	links   []*Link
	started bool
	taps    tapSet
	act     activity
}

// NewNetwork returns an empty fabric.
func NewNetwork() *Network {
	return &Network{nodes: make(map[string]Node)}
}

// AddNode registers a node. Node names must be unique.
func (n *Network) AddNode(node Node) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	name := node.NodeName()
	if _, dup := n.nodes[name]; dup {
		return fmt.Errorf("netsim: duplicate node name %q", name)
	}
	n.nodes[name] = node
	return nil
}

// NewPort allocates a port owned by node with the given port ID and
// default queue length. The port starts delivering once Start runs
// (or immediately if the network is already started).
func (n *Network) NewPort(owner Node, id uint16) *Port {
	return n.newPortOpts(owner, id, 0)
}

func (n *Network) newPortOpts(owner Node, id uint16, queueLen int) *Port {
	p := newPort(owner, id, queueLen)
	p.act = &n.act
	n.mu.Lock()
	n.ports = append(n.ports, p)
	started := n.started
	n.mu.Unlock()
	if started {
		go p.run()
	}
	return p
}

// Connect wires two ports with the given link options.
func (n *Network) Connect(a, b *Port, opts LinkOptions) *Link {
	l := newLink(a, b, opts, &n.taps, &n.act)
	n.mu.Lock()
	n.links = append(n.links, l)
	n.mu.Unlock()
	return l
}

// AddTap registers a frame observer across all links.
func (n *Network) AddTap(t Tap) {
	n.taps.mu.Lock()
	defer n.taps.mu.Unlock()
	n.taps.taps = append(n.taps.taps, t)
}

// Start begins frame delivery on all ports.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	for _, p := range n.ports {
		go p.run()
	}
}

// Stop halts all port delivery goroutines. Frames in flight are
// discarded.
func (n *Network) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.ports {
		p.close()
	}
	n.started = false
}

// Quiesce blocks until the fabric is idle — no frames queued on port
// inboxes, none pending on link latency/bandwidth timers, and no
// handler mid-frame — or the timeout expires, reporting whether
// idleness was reached. It is the explicit drain barrier callers use
// instead of sleeping "long enough" for in-flight traffic: because a
// handler's emissions are counted before its own frame is released,
// Quiesce only returns true once the entire causal cascade has
// drained. Only meaningful while the network is running (after Stop,
// undelivered frames may keep the fabric counted as busy).
func (n *Network) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	wait := 50 * time.Microsecond
	for {
		if n.act.idle() {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		// Event-free backoff wait (timer channel, not a sleep) so the
		// barrier costs nothing when the fabric drains quickly.
		t := time.NewTimer(wait)
		<-t.C
		if wait < 2*time.Millisecond {
			wait *= 2
		}
	}
}

// Node looks a node up by name.
func (n *Network) Node(name string) (Node, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[name]
	return node, ok
}

// NodeCount reports how many nodes are registered.
func (n *Network) NodeCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.nodes)
}
