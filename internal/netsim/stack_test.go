package netsim

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"iotsec/internal/packet"
)

// lanPair wires two stacks through a flooding switch (so ARP works)
// and returns them started.
func lanPair(t *testing.T, opts LinkOptions) (*Stack, *Stack, func()) {
	t.Helper()
	stacks, cleanup := lan(t, opts, 2)
	return stacks[0], stacks[1], cleanup
}

// lan builds count stacks on one flooding switch.
func lan(t *testing.T, opts LinkOptions, count int) ([]*Stack, func()) {
	t.Helper()
	n := NewNetwork()
	sw := NewSwitch("sw", 1)
	sw.SetMissBehavior(MissFlood)
	stacks := make([]*Stack, count)
	for i := 0; i < count; i++ {
		mac := packet.MACAddress{2, 0, 0, 0, 1, byte(i + 1)}
		ip := packet.IPv4Address{10, 0, 0, byte(i + 1)}
		st := NewStack(fmt.Sprintf("host%d", i+1), mac, ip)
		sp := sw.AttachPort(n, uint16(i+1))
		hp := st.Attach(n)
		n.Connect(hp, sp, opts)
		stacks[i] = st
	}
	n.Start()
	return stacks, func() {
		for _, st := range stacks {
			st.Stop()
		}
		n.Stop()
	}
}

func TestStackUDPExchange(t *testing.T) {
	a, b, cleanup := lanPair(t, LinkOptions{})
	defer cleanup()

	got := make(chan string, 1)
	if err := b.HandleUDP(7, func(srcIP packet.IPv4Address, srcPort uint16, payload []byte) {
		got <- fmt.Sprintf("%s:%d %s", srcIP, srcPort, payload)
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.SendUDP(b.IP(), 7, 5000, []byte("echo")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "10.0.0.1:5000 echo" {
			t.Errorf("udp receive = %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("udp datagram never arrived (ARP resolution broken?)")
	}
}

func TestStackUDPDuplicateBindRejected(t *testing.T) {
	a, _, cleanup := lanPair(t, LinkOptions{})
	defer cleanup()
	if err := a.HandleUDP(53, func(packet.IPv4Address, uint16, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.HandleUDP(53, func(packet.IPv4Address, uint16, []byte) {}); err == nil {
		t.Error("duplicate UDP bind accepted")
	}
}

func TestStreamEchoSession(t *testing.T) {
	a, b, cleanup := lanPair(t, LinkOptions{})
	defer cleanup()

	// b echoes every message back.
	if err := b.Listen(80, func(st *Stream) {
		st.OnMessage(func(msg []byte) {
			_ = st.Send(append([]byte("echo:"), msg...))
		})
	}); err != nil {
		t.Fatal(err)
	}

	conn, err := a.Dial(b.IP(), 80, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	replies := make(chan string, 8)
	conn.OnMessage(func(msg []byte) { replies <- string(msg) })

	for i := 0; i < 3; i++ {
		if err := conn.Send([]byte(fmt.Sprintf("msg%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case r := <-replies:
			if r != fmt.Sprintf("echo:msg%d", i) {
				t.Errorf("reply %d = %q (ordering broken?)", i, r)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("reply %d never arrived", i)
		}
	}
	conn.Close()
}

func TestStreamDialRefusedWithoutListener(t *testing.T) {
	a, b, cleanup := lanPair(t, LinkOptions{})
	defer cleanup()
	_, err := a.Dial(b.IP(), 81, 500*time.Millisecond)
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestStreamDialTimeoutToDeadAddress(t *testing.T) {
	a, _, cleanup := lanPair(t, LinkOptions{})
	defer cleanup()
	start := time.Now()
	_, err := a.Dial(packet.MustParseIPv4("10.0.0.200"), 80, 200*time.Millisecond)
	if err == nil {
		t.Fatal("dial to nonexistent host succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("dial timeout took far too long")
	}
}

func TestStreamSurvivesLoss(t *testing.T) {
	// 30% loss in both directions: retransmission must still deliver
	// every message exactly once, in order.
	a, b, cleanup := lanPair(t, LinkOptions{LossRate: 0.3, Seed: 7})
	defer cleanup()
	a.RetransmitInterval = 10 * time.Millisecond
	a.MaxRetransmits = 30
	b.RetransmitInterval = 10 * time.Millisecond
	b.MaxRetransmits = 30

	var mu sync.Mutex
	var received []string
	if err := b.Listen(80, func(st *Stream) {
		st.OnMessage(func(msg []byte) {
			mu.Lock()
			received = append(received, string(msg))
			mu.Unlock()
		})
	}); err != nil {
		t.Fatal(err)
	}

	var conn *Stream
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		conn, err = a.Dial(b.IP(), 80, 2*time.Second)
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("dial through loss: %v", err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		if err := conn.Send([]byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(received)
		mu.Unlock()
		if n >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d messages delivered", n, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, msg := range received[:total] {
		if msg != fmt.Sprintf("m%02d", i) {
			t.Errorf("position %d = %q: order or dedup violated", i, msg)
		}
	}
}

func TestStreamCloseNotifiesPeer(t *testing.T) {
	a, b, cleanup := lanPair(t, LinkOptions{})
	defer cleanup()

	peerClosed := make(chan error, 1)
	if err := b.Listen(80, func(st *Stream) {
		st.OnClose(func(err error) { peerClosed <- err })
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := a.Dial(b.IP(), 80, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	select {
	case err := <-peerClosed:
		if err != nil {
			t.Errorf("graceful close reported error %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never observed close")
	}
	if err := conn.Send([]byte("after close")); err == nil {
		t.Error("send after close succeeded")
	}
}

func TestStackStopAbortsStreams(t *testing.T) {
	a, b, cleanup := lanPair(t, LinkOptions{})
	defer cleanup()
	if err := b.Listen(80, func(st *Stream) {}); err != nil {
		t.Fatal(err)
	}
	conn, err := a.Dial(b.IP(), 80, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a.Stop()
	if err := conn.Send([]byte("x")); err == nil {
		t.Error("send on stopped stack succeeded")
	}
}

func TestManyStacksConcurrentSessions(t *testing.T) {
	const hosts = 8
	stacks, cleanup := lan(t, LinkOptions{}, hosts)
	defer cleanup()

	server := stacks[0]
	var hits sync.WaitGroup
	if err := server.Listen(80, func(st *Stream) {
		st.OnMessage(func(msg []byte) {
			_ = st.Send(msg)
		})
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, hosts)
	for i := 1; i < hosts; i++ {
		wg.Add(1)
		go func(st *Stack) {
			defer wg.Done()
			conn, err := st.Dial(server.IP(), 80, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			gotReply := make(chan struct{})
			conn.OnMessage(func([]byte) { close(gotReply) })
			if err := conn.Send([]byte(st.NodeName())); err != nil {
				errs <- err
				return
			}
			select {
			case <-gotReply:
			case <-time.After(2 * time.Second):
				errs <- fmt.Errorf("%s: no echo", st.NodeName())
			}
			conn.Close()
		}(stacks[i])
	}
	wg.Wait()
	hits.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
